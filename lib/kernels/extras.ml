open Ujam_ir.Build

let mmijk ?(n = 46) () =
  let d = 3 in
  let i = var d 0 and j = var d 1 and k = var d 2 in
  nest "mmijk"
    [ loop d "I" ~level:0 ~lo:1 ~hi:n ();
      loop d "J" ~level:1 ~lo:1 ~hi:n ();
      loop d "K" ~level:2 ~lo:1 ~hi:n () ]
    [ aref "C" [ i; j ] <<- rd "C" [ i; j ] +: (rd "A" [ i; k ] *: rd "B" [ k; j ]) ]

let mmikj ?(n = 46) () =
  let d = 3 in
  let i = var d 0 and k = var d 1 and j = var d 2 in
  nest "mmikj"
    [ loop d "I" ~level:0 ~lo:1 ~hi:n ();
      loop d "K" ~level:1 ~lo:1 ~hi:n ();
      loop d "J" ~level:2 ~lo:1 ~hi:n () ]
    [ aref "C" [ i; j ] <<- rd "C" [ i; j ] +: (rd "A" [ i; k ] *: rd "B" [ k; j ]) ]

let transpose ?(n = 130) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "transpose"
    [ loop d "J" ~level:0 ~lo:1 ~hi:n (); loop d "I" ~level:1 ~lo:1 ~hi:n () ]
    [ aref "B" [ i; j ] <<- rd "A" [ j; i ] ]

let stencil27 ?(n = 34) () =
  let d = 3 in
  let k = var d 0 and j = var d 1 and i = var d 2 in
  nest "stencil7p"
    [ loop d "K" ~level:0 ~lo:2 ~hi:(n - 1) ();
      loop d "J" ~level:1 ~lo:2 ~hi:(n - 1) ();
      loop d "I" ~level:2 ~lo:2 ~hi:(n - 1) () ]
    [ aref "U" [ i; j; k ]
      <<- s "C0" *: rd "V" [ i; j; k ]
          +: (s "C1"
             *: (rd "V" [ i -$ 1; j; k ] +: rd "V" [ i +$ 1; j; k ]
                +: rd "V" [ i; j -$ 1; k ] +: rd "V" [ i; j +$ 1; k ]
                +: rd "V" [ i; j; k -$ 1 ] +: rd "V" [ i; j; k +$ 1 ])) ]

let conv2d ?(n = 40) ?(k = 3) () =
  let d = 4 in
  let j = var d 0 and i = var d 1 and q = var d 2 and p = var d 3 in
  nest "conv2d"
    [ loop d "J" ~level:0 ~lo:1 ~hi:n ();
      loop d "I" ~level:1 ~lo:1 ~hi:n ();
      loop d "Q" ~level:2 ~lo:1 ~hi:k ();
      loop d "P" ~level:3 ~lo:1 ~hi:k () ]
    [ aref "OUT" [ i; j ]
      <<- rd "OUT" [ i; j ] +: (rd "IMG" [ i ++$ p; j ++$ q ] *: rd "KER" [ p; q ]) ]

let lufact ?(n = 40) () =
  let d = 3 in
  let k = var d 0 and j = var d 1 and i = var d 2 in
  nest "lufact"
    [ loop d "K" ~level:0 ~lo:1 ~hi:n ();
      loop d "J" ~level:1 ~lo:1 ~hi:n ();
      loop d "I" ~level:2 ~lo:1 ~hi:n () ]
    [ aref "A" [ i; j ] <<- rd "A" [ i; j ] -: (rd "L" [ i; k ] *: rd "U" [ k; j ]) ]

let dot ?(n = 130) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "dot"
    [ loop d "J" ~level:0 ~lo:1 ~hi:n (); loop d "I" ~level:1 ~lo:1 ~hi:n () ]
    [ aref "S" [ j ] <<- rd "S" [ j ] +: (rd "X" [ i; j ] *: rd "Y" [ i; j ]) ]

let saxpy_bands ?(n = 130) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "saxpy_bands"
    [ loop d "J" ~level:0 ~lo:2 ~hi:(n - 1) ();
      loop d "I" ~level:1 ~lo:1 ~hi:n () ]
    [ aref "Y" [ i; j ]
      <<- rd "Y" [ i; j ]
          +: (rd "A" [ j ] *: rd "X" [ i; j -$ 1 ])
          +: (rd "B" [ j ] *: rd "X" [ i; j +$ 1 ]) ]

let skewrec ?(n = 16) () =
  let d = 2 in
  let i = var d 0 and j = var d 1 in
  nest "skewrec"
    [ loop d "I" ~level:0 ~lo:1 ~hi:n (); loop d "J" ~level:1 ~lo:1 ~hi:n () ]
    [ aref "A" [ i; j ]
      <<- (rd "A" [ i -$ 1; j +$ 1 ] *: s "S") +: rd "B" [ i; j ] ]

let all =
  [ ("mmijk", mmijk); ("mmikj", mmikj); ("transpose", transpose);
    ("stencil7p", stencil27); ("conv2d", fun ?n () -> conv2d ?n ());
    ("lufact", lufact); ("dot", dot); ("saxpy_bands", saxpy_bands);
    ("skewrec", skewrec) ]
