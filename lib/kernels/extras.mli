(** Kernels beyond Table 2: classical loops used by the examples, the
    documentation and the broader test surface.  Same conventions as
    {!Kernels} (column-major, first subscript contiguous). *)

open Ujam_ir

val mmijk : ?n:int -> unit -> Nest.t
(** Matrix multiply in IJK order (row-walking: the order that needs
    permutation). *)

val mmikj : ?n:int -> unit -> Nest.t
(** Matrix multiply in IKJ order. *)

val transpose : ?n:int -> unit -> Nest.t
(** [B(I,J) = A(J,I)] — no reuse to exploit, a tiling candidate. *)

val stencil27 : ?n:int -> unit -> Nest.t
(** 3-D 7-point stencil (the 3-D jacobi). *)

val conv2d : ?n:int -> ?k:int -> unit -> Nest.t
(** 2-D convolution with a [k x k] kernel (4-deep nest, coupled-free). *)

val lufact : ?n:int -> unit -> Nest.t
(** LU rank-1 update with split factors (the gmtry.3 shape at depth 3). *)

val dot : ?n:int -> unit -> Nest.t
(** Dot-product reduction under an outer batch loop. *)

val saxpy_bands : ?n:int -> unit -> Nest.t
(** Banded triad: [Y(I,J) = Y(I,J) + A(J) * X(I,J-1) + B(J) * X(I,J+1)]. *)

val skewrec : ?n:int -> unit -> Nest.t
(** Anti-diagonal recurrence [A(I,J) = A(I-1,J+1)*S + B(I,J)]: the
    [(1,-1)] carried distance fences the outer loop at 0 extra copies,
    so plain unroll-and-jam degrades to the untransformed nest; a
    factor-1 skew of [J] by [I] straightens the distance to [(1,0)] and
    reopens the space (the [--seq] showcase). *)

val all : (string * (?n:int -> unit -> Nest.t)) list
