open Ujam_linalg
open Ujam_ir

type bucket = { distance : float; weight : float }

type profile = {
  ugs : Ugs.t;
  accesses : float;
  near : float;
  near_distance : float;
  buckets : bucket list;
  cold : float;
  write_only : float;
}

let eps = 1e-9

(* Suffix localized space S_k = span{k, .., d-1}: reuse carried by loops
   k..d-1 is exploitable when the cache holds one sweep of them. *)
let suffix_space ~dim k = Subspace.span_dims ~dim (List.init (dim - k) (fun i -> k + i))

(* Column-major array strides, mirroring Sim.Layout's interval analysis
   (the inter-array stagger is irrelevant here: it moves bases, not
   strides).  Needed because the boolean kernel classification cannot
   see that a walk whose address stride is smaller than the line — a
   column walk under a TLB-size "line" — is effectively spatial. *)
let affine_interval (a : Affine.t) ivals =
  let lo = ref a.Affine.const and hi = ref a.Affine.const in
  Array.iteri
    (fun k c ->
      let l, h = ivals.(k) in
      if c >= 0 then begin
        lo := !lo + (c * l);
        hi := !hi + (c * h)
      end
      else begin
        lo := !lo + (c * h);
        hi := !hi + (c * l)
      end)
    a.Affine.coefs;
  (!lo, !hi)

let array_strides nest =
  let loops = Nest.loops nest in
  let d = Array.length loops in
  let ivals = Array.make d (0, 0) in
  for k = 0 to d - 1 do
    let l = loops.(k) in
    let lo, _ = affine_interval l.Loop.lo ivals in
    let _, hi = affine_interval l.Loop.hi ivals in
    ivals.(k) <- (lo, max lo hi)
  done;
  let ranges : (string, (int * int) array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r, _) ->
      let b = Aref.base r in
      let cur =
        match Hashtbl.find_opt ranges b with
        | Some cur -> cur
        | None ->
            let cur = Array.make (Aref.rank r) (max_int, min_int) in
            Hashtbl.add ranges b cur;
            cur
      in
      Array.iteri
        (fun i s ->
          let lo, hi = affine_interval s ivals in
          let clo, chi = cur.(i) in
          cur.(i) <- (min clo lo, max chi hi))
        r.Aref.subs)
    (Nest.refs nest);
  let strides = Hashtbl.create 8 in
  Hashtbl.iter
    (fun b rng ->
      let dims = Array.length rng in
      let st = Array.make dims 1 in
      for i = 1 to dims - 1 do
        let lo, hi = rng.(i - 1) in
        st.(i) <- st.(i - 1) * (hi - lo + 1)
      done;
      Hashtbl.add strides b st)
    ranges;
  (strides, ivals)

(* Address span (in elements) each base covers while loops k..d-1 sweep
   with loops 0..k-1 held fixed.  This bounds the distinct lines a sweep
   can touch, which in turn bounds its reuse distance: a sweep that
   re-fetches the same few lines over and over has a small stack
   distance no matter how many fetches it issues. *)
let sweep_spans nest ~strides ~ivals =
  let d = Array.length ivals in
  let spans : (string, int array) Hashtbl.t = Hashtbl.create 8 in
  for k = 0 to d - 1 do
    (* collapse the fixed outer loops to a point; only k..d-1 vary *)
    let ivals_k =
      Array.mapi (fun j (lo, hi) -> if j < k then (lo, lo) else (lo, hi)) ivals
    in
    let ranges : (string, (int * int) array) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (r, _) ->
        let b = Aref.base r in
        let cur =
          match Hashtbl.find_opt ranges b with
          | Some cur -> cur
          | None ->
              let cur = Array.make (Aref.rank r) (max_int, min_int) in
              Hashtbl.add ranges b cur;
              cur
        in
        Array.iteri
          (fun i s ->
            let lo, hi = affine_interval s ivals_k in
            let clo, chi = cur.(i) in
            cur.(i) <- (min clo lo, max chi hi))
          r.Aref.subs)
      (Nest.refs nest);
    Hashtbl.iter
      (fun b rng ->
        let st =
          match Hashtbl.find_opt strides b with
          | Some st -> st
          | None -> Array.make (Array.length rng) 1
        in
        let span =
          let acc = ref 0 in
          Array.iteri
            (fun i (lo, hi) ->
              if hi >= lo then acc := !acc + ((hi - lo) * st.(i)))
            rng;
          !acc
        in
        let cur =
          match Hashtbl.find_opt spans b with
          | Some cur -> cur
          | None ->
              let cur = Array.make d 0 in
              Hashtbl.add spans b cur;
              cur
        in
        cur.(k) <- span)
      ranges
  done;
  spans

(* |address delta| of one innermost-loop step for the UGS's access shape
   (all members share H, hence the stride). *)
let inner_stride ~strides (u : Ugs.t) =
  match u.Ugs.members with
  | [] -> max_int
  | (s : Site.t) :: _ -> (
      let r = s.Site.ref_ in
      match Hashtbl.find_opt strides (Aref.base r) with
      | None -> max_int
      | Some st ->
          let d = Aref.depth r in
          let acc = ref 0 in
          Array.iteri
            (fun i (sub : Affine.t) ->
              if d > 0 && Array.length sub.Affine.coefs = d then
                acc := !acc + (sub.Affine.coefs.(d - 1) * st.(i)))
            r.Aref.subs;
          abs !acc)

(* Mass a no-allocate (write-through) level can never retain: spatial
   classes containing no read under the FULL localized space.  A write
   class that merges with a read class when every loop is localized has
   its lines installed by those reads at some finite distance, so its
   misses are governed by the ordinary histogram fold, not charged
   unconditionally. *)
let write_only_weight ~localized (u : Ugs.t) =
  let p = Groups.group_spatial ~localized u in
  List.fold_left
    (fun acc cls ->
      if List.exists (fun s -> not (Site.is_write s)) cls then acc
      else acc +. float_of_int (List.length cls))
    0.0 p.Groups.classes

let profiles ?groups ~line nest =
  match Nest.trip_counts nest with
  | None -> None
  | Some trips ->
      let d = Nest.depth nest in
      let groups = match groups with Some g -> g | None -> Ugs.of_nest nest in
      let spaces = Array.init d (fun k -> suffix_space ~dim:d k) in
      let strides, ivals = array_strides nest in
      let spans = sweep_spans nest ~strides ~ivals in
      (* distinct lines all bases together can touch during a sweep of
         loops k..d-1: the footprint bound on that sweep's reuse distance *)
      let footprint_lines k =
        Hashtbl.fold
          (fun _ sp acc -> acc +. (float_of_int sp.(k) /. float_of_int line) +. 1.0)
          spans 0.0
      in
      let total_iters =
        Array.fold_left (fun acc t -> acc *. float_of_int t) 1.0 trips
      in
      let sweep_iters k =
        let it = ref 1.0 in
        for j = k to d - 1 do
          it := !it *. float_of_int trips.(j)
        done;
        !it
      in
      let base_span_fp k b =
        match Hashtbl.find_opt spans b with
        | Some sp -> (float_of_int sp.(k) /. float_of_int line) +. 1.0
        | None -> Float.infinity
      in
      (* Distinct lines one UGS's orbit can land on while loops k..d-1
         sweep.  The span bound counts every line under the swept
         interval, but a loop whose address stride exceeds the line
         skips lines: each loop contributes at most min(trips, its own
         span in lines) landing positions.  Members are constant
         offsets of one orbit; an offset below the line only adds the
         boundary-crossing fraction spread/line. *)
      let orbit_lines k (u : Ugs.t) =
        match u.Ugs.members with
        | [] -> Float.infinity
        | (s : Site.t) :: _ -> (
            let r = s.Site.ref_ in
            match Hashtbl.find_opt strides (Aref.base r) with
            | None -> Float.infinity
            | Some st when Array.length st <> Aref.rank r -> Float.infinity
            | Some st ->
                let dep = Aref.depth r in
                if dep <> d then Float.infinity
                else
                  let prod = ref 1.0 in
                  for j = k to d - 1 do
                    let sj = ref 0 in
                    Array.iteri
                      (fun i (sub : Affine.t) ->
                        if Array.length sub.Affine.coefs = d then
                          sj := !sj + (sub.Affine.coefs.(j) * st.(i)))
                      r.Aref.subs;
                    let tj = float_of_int trips.(j) in
                    let span_lines =
                      (float_of_int (abs !sj) *. (tj -. 1.0)
                       /. float_of_int line)
                      +. 1.0
                    in
                    prod := !prod *. Float.min tj span_lines
                  done;
                  let offset (s : Site.t) =
                    let acc = ref 0 in
                    Array.iteri
                      (fun i (sub : Affine.t) ->
                        acc := !acc + (sub.Affine.const * st.(i)))
                      s.Site.ref_.Aref.subs;
                    !acc
                  in
                  let offs = List.map offset u.Ugs.members in
                  let spread =
                    List.fold_left Int.max min_int offs
                    - List.fold_left Int.min max_int offs
                  in
                  !prod *. (1.0 +. (float_of_int spread /. float_of_int line)))
      in
      let ugs_lines k (u : Ugs.t) =
        let span =
          match u.Ugs.members with
          | (s : Site.t) :: _ -> base_span_fp k (Aref.base s.Site.ref_)
          | [] -> Float.infinity
        in
        Float.min span (orbit_lines k u)
      in
      (* distinct lines all groups together can touch during a sweep of
         loops k..d-1 — every touched line belongs to some group's
         orbit, so the per-group sum is an upper bound too; take the
         tighter of the two *)
      let ugs_footprint k =
        List.fold_left (fun acc u -> acc +. ugs_lines k u) 0.0 groups
      in
      (* cost.(k).(g): line fetches per innermost iteration of UGS g with
         reuse inside S_k exploited (Equation 1); monotone non-increasing
         in localization, so the differences are the histogram weights.
         Two corrections Equation 1's boolean classification cannot see:
         a No_reuse stream stepping less than a line per iteration is a
         strided spatial walk (scale by stride/line), and under the
         localized-space premise — the cache holds one S_k sweep — a
         sweep fetches at most its distinct-line footprint, so the rate
         is capped by footprint / sweep iterations (a middle loop whose
         address stride is below a page keeps re-touching the same pages
         even though it never walks the line dimension). *)
      let cost =
        Array.mapi
          (fun k localized ->
            let iters = sweep_iters k in
            Array.of_list
              (List.map
                 (fun (u : Ugs.t) ->
                   let c = Locality.ugs_cost ~line ~localized u in
                   let eq1 =
                     match c.Locality.stream with
                     | Locality.No_reuse ->
                         let s = inner_stride ~strides u in
                         if s < line then
                           c.Locality.accesses *. float_of_int s
                           /. float_of_int line
                         else c.Locality.accesses
                     | _ -> c.Locality.accesses
                   in
                   let fp_rate = ugs_lines k u /. iters in
                   Float.min eq1 fp_rate)
                 groups))
          spaces
      in
      (* the interval clamps can locally invert the chain (a span is not
         sub-multiplicative in the trip counts); restore monotonicity —
         localizing more loops never costs more *)
      for k = d - 2 downto 0 do
        Array.iteri
          (fun g c_k -> cost.(k).(g) <- Float.min c_k cost.(k + 1).(g))
          cost.(k)
      done;
      let vol_per_iter = Array.map (Array.fold_left ( +. ) 0.0) cost in
      (* Lines touched during one full sweep of loops k..d-1 — the reuse
         distance seen by references whose reuse loop k-1 carries. *)
      let sweep_volume k =
        let iters = ref 1.0 in
        for j = k to d - 1 do
          iters := !iters *. float_of_int trips.(j)
        done;
        (* fetch count over the sweep, capped by the sweep's distinct-line
           footprint: re-fetching the same lines does not deepen the stack *)
        Float.min
          (vol_per_iter.(k) *. !iters)
          (Float.min (footprint_lines k) (ugs_footprint k))
      in
      let near_distance = Float.max 1.0 (2.0 *. vol_per_iter.(d - 1)) in
      let profile_of idx (u : Ugs.t) =
        let n = float_of_int (List.length u.Ugs.members) in
        let c k = cost.(k).(idx) in
        let near = Float.max 0.0 (n -. c (d - 1)) in
        (* compulsory mass cannot exceed the base's distinct lines *)
        let base_lines =
          match u.Ugs.members with
          | (s : Site.t) :: _ -> (
              match Hashtbl.find_opt spans (Aref.base s.Site.ref_) with
              | Some sp ->
                  (float_of_int sp.(0) /. float_of_int line) +. 1.0
              | None -> Float.infinity)
          | [] -> Float.infinity
        in
        let cold = ref (c 0) in
        let buckets = ref [] in
        for k = d - 1 downto 1 do
          let w = c k -. c (k - 1) in
          if w > eps then
            if trips.(k - 1) <= 1 then
              (* the carrying loop never comes around: those fetches are
                 compulsory, not capacity-sensitive *)
              cold := !cold +. w
            else buckets := { distance = sweep_volume k; weight = w } :: !buckets
        done;
        { ugs = u;
          accesses = n;
          near;
          near_distance;
          buckets = List.sort (fun a b -> Float.compare a.distance b.distance) !buckets;
          cold = Float.min !cold (base_lines /. total_iters);
          write_only = write_only_weight ~localized:spaces.(0) u }
      in
      Some (List.mapi profile_of groups)

(* A bucket misses when its reuse distance strictly exceeds the
   capacity: a working set of exactly [capacity_lines] distinct lines
   still hits under LRU.  [slack > 1] demands the distance clear the
   capacity by that factor, yielding a confident lower bound — the
   distances are interval-analysis overestimates, so a bucket sitting
   just past the capacity may in truth fit. *)
let miss_ratio ?(write_through = false) ?(slack = 1.0) ~capacity_lines p =
  if p.accesses <= eps then 0.0
  else
    let cap = slack *. capacity_lines in
    let missed =
      p.cold
      +. (if p.near_distance > cap then p.near else 0.0)
      +. List.fold_left
           (fun acc b -> if b.distance > cap then acc +. b.weight else acc)
           0.0 p.buckets
    in
    let base = Float.min 1.0 (Float.max 0.0 (missed /. p.accesses)) in
    if write_through then
      let fw = Float.min 1.0 (p.write_only /. p.accesses) in
      Float.min 1.0 (fw +. ((1.0 -. fw) *. base))
    else base

let nest_miss_ratio ?write_through ?slack ~capacity_lines ps =
  let num, den =
    List.fold_left
      (fun (num, den) p ->
        ( num +. (miss_ratio ?write_through ?slack ~capacity_lines p *. p.accesses),
          den +. p.accesses ))
      (0.0, 0.0) ps
  in
  if den <= eps then 0.0 else num /. den

let dominant_distance p =
  match
    List.fold_left
      (fun best b ->
        match best with
        | Some bb when bb.weight >= b.weight -> best
        | _ -> Some b)
      None p.buckets
  with
  | Some b -> Some b.distance
  | None -> None

let pp ppf p =
  Format.fprintf ppf "%s: n=%.0f near=%.2f@%.1f cold=%.2f wo=%.1f [%a]"
    p.ugs.Ugs.base p.accesses p.near p.near_distance p.cold p.write_only
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf b -> Format.fprintf ppf "%.2f@%.0f" b.weight b.distance))
    p.buckets
