(** The Wolf–Lam memory-cost equation (the paper's Equation 1) and the
    loop ranking used to choose which loops to unroll.

    For a UGS with [g_T] group-temporal and [g_S] group-spatial sets in
    localized space [L], and a cache line of [line] array elements:

    {v accesses/iteration = (g_S + (g_T - g_S)/line) * base v}

    where [base] is 0 for an invariant stream (self-temporal reuse in
    [L]), [1/line] for a unit-stride stream (self-spatial reuse in [L]),
    and 1 otherwise.  Group-temporal sets beyond their group-spatial
    leader cost only the [1/line] line-boundary term; invariant streams
    stay in registers. *)

open Ujam_linalg

type stream = Invariant | Unit_stride | No_reuse

type ugs_cost = {
  ugs : Ugs.t;
  g_t : int;
  g_s : int;
  stream : stream;
  accesses : float;  (** memory accesses per localized iteration *)
}

val ugs_cost : line:int -> localized:Subspace.t -> Ugs.t -> ugs_cost

val nest_accesses :
  ?groups:Ugs.t list -> line:int -> localized:Subspace.t -> Ujam_ir.Nest.t -> float
(** Sum of {!ugs_cost} over all UGSs of the nest.  [groups] supplies a
    precomputed UGS partition (e.g. from an analysis context) so the
    partition is not rebuilt per call. *)

val innermost_localized : Ujam_ir.Nest.t -> Subspace.t

val rank_outer_loops :
  ?groups:Ugs.t list -> line:int -> Ujam_ir.Nest.t -> (int * float) list
(** Candidate outer levels ordered by the memory cost of the nest when
    that loop joins the innermost loop in the localized space — best
    (lowest-cost, i.e. most reuse carried) first.  The paper unrolls the
    best one or two. *)

val pp_stream : Format.formatter -> stream -> unit

val permutation_cost : line:int -> Ujam_ir.Nest.t -> int array -> float
(** Memory cost per innermost iteration when the nest is permuted by the
    given level order (innermost-localized Equation 1 on the permuted
    nest) — the McKinley–Carr–Tseng loop-cost ranking. *)

val rank_permutations : line:int -> Ujam_ir.Nest.t -> (int array * float) list
(** All level permutations ordered by {!permutation_cost}, best first.
    Legality is the caller's concern
    ({!Ujam_depend.Safety.legal_permutation}). *)
