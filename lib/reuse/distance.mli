(** Static reuse-distance profiles (after arXiv:2411.13854, recast on
    the paper's UGS algebra).

    No trace is taken.  For each UGS the Equation-1 memory cost is
    evaluated at every suffix localized space [S_k = span{k..d-1}]; the
    costs are monotone non-increasing as more loops join the localized
    space, and each difference [c(S_k) - c(S_{k-1})] is exactly the
    per-iteration weight of accesses whose reuse loop [k-1] carries.
    Such an access finds its previous use one full sweep of loops
    [k..d-1] away, so its reuse distance is the line volume of that
    sweep — a closed form over the iteration box (trip counts), no
    enumeration.  The volume is the sweep's fetch count capped by its
    distinct-line footprint (from interval analysis of the subscripts):
    re-fetching the same lines does not deepen the LRU stack.  The
    floor [c(S_0)] is the compulsory (cold) mass, itself capped by the
    base array's total footprint.

    Folding the histogram against a capacity of [C] lines yields a
    predicted miss ratio: a bucket hits iff its distance is [<= C]
    (Mattson's LRU-stack criterion, see {!Ujam_sim}'s [Cache.Stack]);
    cold mass always misses.  Distances are in cache lines of the
    geometry the profile was built for, so the fold must use the same
    [line].  Because the distances are interval overestimates, the fold
    also accepts a [slack] factor: folding at [slack > 1] counts only
    buckets that clear the capacity confidently, giving a lower bound
    on the ratio — the [(floor, predicted)] interval the calibration
    oracle checks the simulator against. *)

type bucket = {
  distance : float;  (** reuse distance, lines of the profiled geometry *)
  weight : float;    (** accesses per innermost iteration *)
}

type profile = {
  ugs : Ugs.t;
  accesses : float;  (** member accesses per innermost iteration *)
  near : float;
      (** mass reused within the innermost localized space (registers /
          same-line walks): distance [near_distance] *)
  near_distance : float;
  buckets : bucket list;  (** outer-carried mass, ascending distance *)
  cold : float;  (** compulsory mass, amortized per iteration *)
  write_only : float;
      (** accesses from group-spatial classes containing no read under
          the full localized space — the mass a write-through
          (no-allocate) level can never retain.  A write class some
          outer loop spatially merges with a read class is excluded:
          those reads install its lines, so its misses follow the
          ordinary histogram fold. *)
}

val profiles :
  ?groups:Ugs.t list -> line:int -> Ujam_ir.Nest.t -> profile list option
(** One profile per UGS; [None] when the nest's trip counts are not
    compile-time constant.  [groups] supplies a precomputed partition. *)

val miss_ratio :
  ?write_through:bool -> ?slack:float -> capacity_lines:float -> profile -> float
(** Fold one profile against a capacity (in lines of the profiled
    geometry).  With [write_through], the [write_only] mass misses
    unconditionally and the rest scales.  [slack] (default 1.0) demands
    each bucket's distance exceed [slack *. capacity_lines] to count as
    a miss — see the interval discussion above. *)

val nest_miss_ratio :
  ?write_through:bool ->
  ?slack:float ->
  capacity_lines:float ->
  profile list ->
  float
(** Access-weighted mean over the UGS profiles: predicted misses per
    reference for the whole nest. *)

val dominant_distance : profile -> float option
(** The heaviest capacity-sensitive bucket's distance — what the lint
    layer compares against level capacities ("reuse distance 1.9x L1"). *)

val pp : Format.formatter -> profile -> unit
