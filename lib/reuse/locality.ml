open Ujam_linalg
open Ujam_ir

type stream = Invariant | Unit_stride | No_reuse

type ugs_cost = {
  ugs : Ugs.t;
  g_t : int;
  g_s : int;
  stream : stream;
  accesses : float;
}

let ugs_cost ~line ~localized (u : Ugs.t) =
  if line <= 0 then invalid_arg "Locality.ugs_cost: line size";
  let g_t = Groups.count (Groups.group_temporal ~localized u) in
  let g_s = Groups.count (Groups.group_spatial ~localized u) in
  let stream =
    if Selfreuse.has_self_temporal ~localized u.Ugs.h then Invariant
    else if Selfreuse.has_self_spatial ~localized u.Ugs.h then Unit_stride
    else No_reuse
  in
  let l = float_of_int line in
  let groups = float_of_int g_s +. (float_of_int (g_t - g_s) /. l) in
  let base =
    match stream with Invariant -> 0.0 | Unit_stride -> 1.0 /. l | No_reuse -> 1.0
  in
  { ugs = u; g_t; g_s; stream; accesses = groups *. base }

let nest_accesses ?groups ~line ~localized nest =
  let groups =
    match groups with Some gs -> gs | None -> Ugs.of_nest nest
  in
  List.fold_left
    (fun acc u -> acc +. (ugs_cost ~line ~localized u).accesses)
    0.0 groups

let innermost_localized nest =
  let d = Nest.depth nest in
  Subspace.span_dims ~dim:d [ d - 1 ]

let rank_outer_loops ?groups ~line nest =
  let d = Nest.depth nest in
  let groups =
    match groups with Some gs -> gs | None -> Ugs.of_nest nest
  in
  let costs =
    List.init (d - 1) (fun level ->
        let localized = Subspace.span_dims ~dim:d [ level; d - 1 ] in
        (level, nest_accesses ~groups ~line ~localized nest))
  in
  List.stable_sort (fun (_, a) (_, b) -> Float.compare a b) costs

let pp_stream ppf s =
  Format.pp_print_string ppf
    (match s with
    | Invariant -> "invariant"
    | Unit_stride -> "unit-stride"
    | No_reuse -> "no-reuse")

let permutation_cost ~line nest perm =
  let permuted = Ujam_ir.Interchange.apply nest perm in
  let d = Nest.depth permuted in
  nest_accesses ~line ~localized:(Subspace.span_dims ~dim:d [ d - 1 ]) permuted

let rank_permutations ~line nest =
  let d = Nest.depth nest in
  Ujam_ir.Interchange.permutations d
  |> List.filter_map (fun perm ->
         match permutation_cost ~line nest perm with
         | cost -> Some (perm, cost)
         | exception Invalid_argument _ -> None)
  |> List.stable_sort (fun (_, a) (_, b) -> Float.compare a b)
