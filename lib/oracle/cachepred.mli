(** Oracle layer 5: the static per-level miss-ratio predictor vs. the
    hierarchy simulator.

    For every level of the machine's memory hierarchy, compare the
    closed-form [(floor, predicted)] interval from
    {!Ujam_analysis.Cachecheck.predicted_ratios} against the measured
    miss ratio of a full trace replay
    ({!Ujam_sim.Runner.run_levels}), and flag:

    - {b overprediction}: even the confident floor (buckets clearing
      the capacity by {!Ujam_analysis.Cachecheck.confidence_slack})
      sits clearly above the measurement — the model claims misses the
      cache does not take;
    - {b underprediction}, but only at levels associative enough for
      the LRU-stack model to be an upper bound (fully associative or
      at least 4-way): the measurement sits clearly above the
      {e ceiling} (the fold counting every bucket within a
      confidence factor of the capacity — a knife-edge working set
      may in truth overflow).  At a direct-mapped level the gap is
      conflict misses, which live outside any stack-distance model,
      so only the overprediction direction is checked there.

    "Clearly" is [abs_tol +. rel_tol *. max] — the same significance
    shape as {!Simcheck}. *)

type outcome = {
  levels_checked : int;  (** hierarchy levels actually compared *)
  mismatches : Mismatch.t list;
}

val check :
  ?rel_tol:float ->
  ?abs_tol:float ->
  ?max_accesses:int ->
  ?warmup:float ->
  ?strict:bool ->
  ?steal_lines:int ->
  machine:Ujam_machine.Machine.t ->
  Ujam_ir.Nest.t ->
  outcome
(** Defaults: [rel_tol] 0.5, [abs_tol] 0.05, [max_accesses] 200_000
    replayed references (larger nests and nests without constant trip
    counts are skipped, reported via [levels_checked = 0]).  The
    profile predicts steady-state ratios, so each level is compared
    only when the trace is at least [warmup] (default 10) times its
    compulsory transient — the nest's footprint in that level's lines;
    shorter runs are dominated by cold misses the closed form
    amortizes away.

    [strict] (default false) makes the underprediction direction
    compare against the point prediction instead of the ceiling.  The
    interval is deliberately blind to knife-edge working sets (within
    a {!Ujam_analysis.Cachecheck.confidence_slack} factor of the
    capacity the model cannot know which side the hardware lands on),
    so the shipped fuzz layer keeps [strict] off; the oracle
    self-test turns it on for a nest whose distances are exact.
    [steal_lines] forwards the deliberate capacity fault of
    {!Ujam_sim.Cache.create} to the simulated hierarchy — together
    they prove this layer catches an off-by-one-line geometry bug. *)
