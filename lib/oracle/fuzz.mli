(** The fuzzing front end: generate nests, run the oracle layers over
    the engine's parallel work queue, shrink failures, report.

    A run draws routines from {!Ujam_workload.Generator} under a seed,
    checks each nest with the configured layers ({!Recount},
    {!Simcheck}, {!Crossmodel}, and the transformation verifier
    {!Ujam_analysis.Verify} over every materialised unroll vector), and — when a check reports an
    unexplained mismatch or an analysis crash — greedily shrinks the
    nest to a minimal reproducer ({!Shrink}) emitted as an OCaml
    snippet plus JSON.  Results are deterministic for a given config:
    generation is sequential, checks are pure, and the work queue slots
    results by input index whatever the domain count. *)

open Ujam_linalg

type layer = Recount | Sim | Cross_model | Verify | Native | Cachepred

val layer_name : layer -> string

val all_layers : layer list
(** The default layer set.  {!Native} is not in it: compiling and
    executing each nest through the host toolchain ({!Ujam_native}) is
    orders of magnitude slower than the analytical layers, so the
    ground-truth column stays opt-in ([ujc fuzz --native]).  Without a
    toolchain the layer degrades to a skip count, never a failure.
    {!Cachepred} (the static per-level miss-ratio predictor vs. the
    hierarchy simulator, {!Cachepred.check}) is in it. *)

type config = {
  n : int;  (** nests to check *)
  seed : int;
  max_depth : int;  (** deeper generated nests are skipped *)
  bound : int;  (** per-level unroll bound of the searched space *)
  max_loops : int;
  machine : Ujam_machine.Machine.t;
  domains : int;
  layers : layer list;
  shrink : bool;
  deep : bool;
      (** deep-space mode: the generator also draws 4-deep nests;
          combine with a raised [bound]/[max_depth] (the CLI's
          [--deep-space] sets bound >= 8, max_depth >= 4) *)
  recurrent : bool;
      (** recurrent mode: the generator draws fence-binding
          anti-diagonal and cross-statement recurrences instead of the
          corpus mix — fodder for the skew/retime sequence legalizer *)
  dedup : bool;
      (** skip generated nests whose {!Ujam_ir.Canon.digest} was
          already queued this run — duplicates re-check nothing, so the
          [n] budget buys [n] distinct problems *)
}

val default_config : ?machine:Ujam_machine.Machine.t -> unit -> config
(** n 200, seed 1997, max_depth 3, bound 4, max_loops 2, machine alpha,
    domains 1, all layers (verify included), shrinking on, deep-space,
    recurrent and dedup off. *)

type failure = {
  routine : string;
  nest : Ujam_ir.Nest.t;
  error : Ujam_engine.Error.t option;  (** a layer crashed outright *)
  mismatches : Mismatch.t list;
  reduced : Ujam_ir.Nest.t option;  (** shrunk reproducer *)
}

type report = {
  config : config;
  nests : int;  (** nests checked *)
  routines : int;  (** routines drawn *)
  draws : int;  (** generator nest draws, including re-rolls *)
  rejected : int;  (** out-of-class draws re-rolled by the generator *)
  skipped_depth : int;  (** nests over [max_depth], not checked *)
  deduped : int;  (** canonical duplicates skipped (0 unless [dedup]) *)
  digest_s : float;
      (** time spent consing and digesting drawn nests (0 unless
          [dedup]); duplicates intern to an already-digested
          representative, so this grows with {e distinct} nests only *)
  digest_unique : int;
      (** distinct digests actually computed during the draw loop
          ({!Ujam_ir.Canon.memo_stats} miss delta; 0 unless [dedup]) *)
  digest_reused : int;
      (** digest requests served O(1) from the memo — the re-encodes
          the run did {e not} pay for (0 unless [dedup]) *)
  fenced : int;
      (** emitted nests whose safety cap binds at a non-innermost level
          (only counted in recurrent mode) *)
  sim_checked : int;  (** nests the simulator layer replayed *)
  cachepred_checked : int;
      (** nests whose per-level miss predictions the cachepred layer
          compared against the hierarchy simulator *)
  verify_checked : int;  (** unrolled bodies checked by the verifier *)
  verify_failed : int;  (** verifier rejections (multiset mismatches) *)
  native_checked : int;
      (** variants compiled, executed and checksum-validated by the
          native layer (0 unless {!Native} is configured) *)
  native_skipped : int;
      (** nests the native layer skipped for lack of a toolchain *)
  total_mismatches : int;
  unexplained : int;
  failures : failure list;
}

val run :
  ?perturb:(Vec.t -> Counts.t -> Counts.t) ->
  ?native_drop_copy:bool ->
  config ->
  report
(** [perturb] is threaded to the recount layer and [native_drop_copy]
    to the native layer's emitter (it drops the final statement of every
    multi-statement body — the classic lost-jammed-copy bug); both are
    fault injection for the oracle's own regression tests.  Shrinking
    re-runs failing layers with the same injections. *)

val ok : report -> bool
(** No unexplained mismatch and no crashed layer. *)

val pp : Format.formatter -> report -> unit
val to_json : report -> Ujam_engine.Json.t
