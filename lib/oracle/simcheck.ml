open Ujam_ir
open Ujam_core
open Ujam_machine

type outcome = { simulated : int; mismatches : Mismatch.t list }

let nothing = { simulated = 0; mismatches = [] }

(* Up to [n] indices spread evenly over [0 .. len-1], endpoints
   included: the predicted-best, predicted-worst and interior points. *)
let spread ~n len =
  if len <= n then List.init len Fun.id
  else
    List.sort_uniq compare
      (List.init n (fun i -> i * (len - 1) / (n - 1)))

let check ?(bound = 4) ?(max_loops = 2) ?(candidates = 4) ?(rel_tol = 0.5)
    ?(abs_tol = 0.02) ?(max_accesses = 150_000) ~machine nest =
  match Nest.iterations nest with
  | None -> nothing (* affine bounds: trip counts unknown, cannot replay *)
  | Some iterations ->
      let ctx = Analysis_ctx.create ~bound ~max_loops ~machine nest in
      let bal = Analysis_ctx.balance ctx in
      let space = Analysis_ctx.space ctx in
      let rate u =
        Balance.misses bal u /. float_of_int (Unroll_space.copies u)
      in
      let ranked =
        Unroll_space.fold space [] (fun acc u ->
            if Unroll.divides nest u then (u, rate u) :: acc else acc)
        |> List.sort (fun (ua, ra) (ub, rb) ->
               let c = Float.compare ra rb in
               if c <> 0 then c else Ujam_linalg.Vec.compare ua ub)
      in
      if List.length ranked < 2 then nothing
      else
        let picked =
          List.filteri
            (fun i _ -> List.mem i (spread ~n:candidates (List.length ranked)))
            ranked
        in
        let measured =
          List.filter_map
            (fun (u, predicted) ->
              let unrolled = Transform.apply_exn (Transform.Unroll u) nest in
              let plan = Scalar_replace.plan unrolled in
              let accesses =
                iterations / Unroll_space.copies u * List.length plan.Scalar_replace.kept
              in
              if accesses > max_accesses then None
              else
                let r = Ujam_sim.Runner.run ~machine ~plan unrolled in
                Some
                  (u, predicted,
                   float_of_int r.Ujam_sim.Runner.misses
                   /. float_of_int iterations))
            picked
        in
        let clearly_above a b =
          a -. b > abs_tol +. (rel_tol *. Float.max a b)
        in
        let mismatches = ref [] in
        let rec pairs = function
          | [] -> ()
          | (u_b, pred_b, meas_b) :: rest ->
              List.iter
                (fun (u_w, pred_w, meas_w) ->
                  (* [rest] is predicted no better than the head; flag the
                     pair when the prediction gap and the measured
                     inversion are both significant. *)
                  if clearly_above pred_w pred_b && clearly_above meas_b meas_w
                  then
                    mismatches :=
                      Mismatch.make ~nest:(Nest.name nest)
                        ~machine:machine.Machine.name
                        (Mismatch.Sim_order
                           { u_better = u_b;
                             u_worse = u_w;
                             predicted_better = pred_b;
                             predicted_worse = pred_w;
                             measured_better = meas_b;
                             measured_worse = meas_w })
                      :: !mismatches)
                rest;
              pairs rest
        in
        pairs measured;
        { simulated = List.length measured; mismatches = List.rev !mismatches }
