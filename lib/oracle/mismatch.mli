(** Typed oracle disagreements.

    Each of the three oracle layers reports its findings in one shape so
    the fuzz report, the JSON emitter, and the regression tests can treat
    them uniformly.  A mismatch may carry an [explained] note: the
    comparison diverged for a documented modelling reason (e.g. the
    dependence-based strategy is a coarser approximation), so it counts
    as expected rather than as a table bug. *)

open Ujam_linalg

type kind =
  | Recount of { u : Vec.t; field : string; predicted : int; measured : int }
      (** A UGS-table prediction disagrees with the recount on the
          materialized unrolled body. *)
  | Sim_order of {
      u_better : Vec.t;
      u_worse : Vec.t;
      predicted_better : float;
      predicted_worse : float;
      measured_better : float;
      measured_worse : float;
    }
      (** The miss tables ranked [u_better] clearly ahead of [u_worse],
          but the cache simulator measured the opposite order (rates are
          misses per original iteration). *)
  | Model_divergence of {
      model : string;
      u : Vec.t;
      objective : float;
      reference_u : Vec.t;
      reference_objective : float;
    }
      (** A strategy's chosen vector lands measurably farther from
          machine balance than the exhaustive reference choice. *)
  | Verify of { u : Vec.t; rule : string; detail : string }
      (** The transformation verifier ({!Ujam_analysis.Verify})
          rejected the materialised unroll-and-jam at [u]: the
          transformed nest does not preserve the per-array access
          multisets.  [rule] is the diagnostic id (UJ020). *)
  | Native of {
      variant : string;
      array_name : string;
      native : float;
      expected : float;
    }
      (** The compiled-and-executed variant's checksum for one array
          disagrees with the reference interpreter run of the same
          nest beyond the native tolerance ([native] is NaN when the
          emitted program never reported the array at all). *)
  | Cachepred of {
      level : string;
      floor : float;
      predicted : float;
      measured : float;
    }
      (** The static reuse-distance predictor's
          [[floor, predicted]] miss-ratio interval for one hierarchy
          level ({!Ujam_analysis.Cachecheck.predicted_ratios}) misses
          the hierarchy simulator's measurement beyond the calibration
          tolerance. *)

type t = {
  nest : string;
  machine : string;
  kind : kind;
  explained : string option;
}

val make :
  nest:string -> machine:string -> ?explained:string -> kind -> t

val is_explained : t -> bool

val layer : t -> string
(** ["recount"], ["sim"], ["cross-model"], ["verify"], ["native"] or
    ["cachepred"]. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Ujam_engine.Json.t
