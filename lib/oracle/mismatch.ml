open Ujam_linalg
open Ujam_engine

type kind =
  | Recount of { u : Vec.t; field : string; predicted : int; measured : int }
  | Sim_order of {
      u_better : Vec.t;
      u_worse : Vec.t;
      predicted_better : float;
      predicted_worse : float;
      measured_better : float;
      measured_worse : float;
    }
  | Model_divergence of {
      model : string;
      u : Vec.t;
      objective : float;
      reference_u : Vec.t;
      reference_objective : float;
    }
  | Verify of { u : Vec.t; rule : string; detail : string }
  | Native of {
      variant : string;
      array_name : string;
      native : float;
      expected : float;
    }
  | Cachepred of {
      level : string;
      floor : float;
      predicted : float;
      measured : float;
    }

type t = {
  nest : string;
  machine : string;
  kind : kind;
  explained : string option;
}

let make ~nest ~machine ?explained kind = { nest; machine; kind; explained }
let is_explained m = m.explained <> None

let layer m =
  match m.kind with
  | Recount _ -> "recount"
  | Sim_order _ -> "sim"
  | Model_divergence _ -> "cross-model"
  | Verify _ -> "verify"
  | Native _ -> "native"
  | Cachepred _ -> "cachepred"

let pp_f ppf v =
  if Float.is_integer v && Float.abs v < 1e9 then
    Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%.4g" v

let pp ppf m =
  (match m.kind with
  | Recount { u; field; predicted; measured } ->
      Format.fprintf ppf "%s [recount] %s at u=%a: tables say %d, unrolled body has %d"
        m.nest field Vec.pp u predicted measured
  | Sim_order { u_better; u_worse; predicted_better; predicted_worse;
                measured_better; measured_worse } ->
      Format.fprintf ppf
        "%s [sim] tables rank u=%a (%a misses/iter) ahead of u=%a (%a), simulator measured %a vs %a"
        m.nest Vec.pp u_better pp_f predicted_better Vec.pp u_worse pp_f
        predicted_worse pp_f measured_better pp_f measured_worse
  | Model_divergence { model; u; objective; reference_u; reference_objective } ->
      Format.fprintf ppf
        "%s [cross-model] %s chose u=%a (objective %a) but u=%a achieves %a"
        m.nest model Vec.pp u pp_f objective Vec.pp reference_u pp_f
        reference_objective
  | Verify { u; rule; detail } ->
      Format.fprintf ppf "%s [verify] %s at u=%a: %s" m.nest rule Vec.pp u
        detail
  | Native { variant; array_name; native; expected } ->
      Format.fprintf ppf
        "%s [native] variant %s array %s: compiled run says %a, interpreter \
         says %a"
        m.nest variant array_name pp_f native pp_f expected
  | Cachepred { level; floor; predicted; measured } ->
      Format.fprintf ppf
        "%s [cachepred] %s miss ratio predicted in [%.3f, %.3f], hierarchy \
         simulator measured %.3f"
        m.nest level floor predicted measured);
  match m.explained with
  | Some why -> Format.fprintf ppf " (explained: %s)" why
  | None -> ()

let json_f v = if Float.is_finite v then Json.Float v else Json.Null

let to_json m =
  let kind_fields =
    match m.kind with
    | Recount { u; field; predicted; measured } ->
        [ ("kind", Json.Str "recount");
          ("u", Json.of_vec u);
          ("field", Json.Str field);
          ("predicted", Json.Int predicted);
          ("measured", Json.Int measured) ]
    | Sim_order { u_better; u_worse; predicted_better; predicted_worse;
                  measured_better; measured_worse } ->
        [ ("kind", Json.Str "sim-order");
          ("u_better", Json.of_vec u_better);
          ("u_worse", Json.of_vec u_worse);
          ("predicted_better", json_f predicted_better);
          ("predicted_worse", json_f predicted_worse);
          ("measured_better", json_f measured_better);
          ("measured_worse", json_f measured_worse) ]
    | Model_divergence { model; u; objective; reference_u; reference_objective }
      ->
        [ ("kind", Json.Str "cross-model");
          ("model", Json.Str model);
          ("u", Json.of_vec u);
          ("objective", json_f objective);
          ("reference_u", Json.of_vec reference_u);
          ("reference_objective", json_f reference_objective) ]
    | Verify { u; rule; detail } ->
        [ ("kind", Json.Str "verify");
          ("rule", Json.Str rule);
          ("u", Json.of_vec u);
          ("detail", Json.Str detail) ]
    | Native { variant; array_name; native; expected } ->
        [ ("kind", Json.Str "native");
          ("variant", Json.Str variant);
          ("array", Json.Str array_name);
          ("native", json_f native);
          ("expected", json_f expected) ]
    | Cachepred { level; floor; predicted; measured } ->
        [ ("kind", Json.Str "cachepred");
          ("level", Json.Str level);
          ("floor", json_f floor);
          ("predicted", json_f predicted);
          ("measured", json_f measured) ]
  in
  Json.Obj
    (("nest", Json.Str m.nest) :: ("machine", Json.Str m.machine)
     :: kind_fields
    @ [ ("explained",
         match m.explained with Some s -> Json.Str s | None -> Json.Null) ])
