(** Delta-debugging for failing nests.

    Given a predicate that re-runs the failing oracle check, greedily
    apply structure-removing rewrites — drop a statement, prune an
    expression, delete a whole loop level (substituting its lower
    bound), zero or halve subscript constants, reduce coefficient-2
    strides, halve trip counts — keeping a rewrite only while the
    predicate still fails, until a fixpoint or the step budget.  The
    result is a minimal-ish reproducer; [to_snippet] renders it as a
    self-contained OCaml fragment over {!Ujam_ir.Build} and [to_json]
    as structured data, so a bug report is replayable without the
    generator seed. *)

val run :
  ?max_steps:int ->
  still_fails:(Ujam_ir.Nest.t -> bool) ->
  Ujam_ir.Nest.t ->
  Ujam_ir.Nest.t
(** Greedy first-improvement descent; [max_steps] (default 300) bounds
    the number of predicate evaluations.  A predicate that raises is
    treated as "does not fail" (a different failure is not the failure
    being minimised). *)

val to_snippet : Ujam_ir.Nest.t -> string
(** A compilable OCaml expression of type [Ujam_ir.Nest.t] over the
    {!Ujam_ir.Build} combinators. *)

val to_json : Ujam_ir.Nest.t -> Ujam_engine.Json.t
