open Ujam_ir
open Ujam_core
open Ujam_machine

let check ?(bound = 4) ?(max_loops = 2) ?perturb ~machine nest =
  let ctx = Analysis_ctx.create ~bound ~max_loops ~machine nest in
  let bal = Analysis_ctx.balance ctx in
  let space = Analysis_ctx.space ctx in
  let mismatches = ref [] in
  Unroll_space.iter space (fun u ->
      let predicted = Counts.predicted bal u in
      let predicted =
        match perturb with None -> predicted | Some f -> f u predicted
      in
      let measured = Counts.measured nest u in
      if not (Counts.equal predicted measured) then
        List.iter
          (fun (field, get) ->
            if get predicted <> get measured then
              mismatches :=
                Mismatch.make ~nest:(Nest.name nest)
                  ~machine:machine.Machine.name
                  (Mismatch.Recount
                     { u;
                       field;
                       predicted = get predicted;
                       measured = get measured })
                :: !mismatches)
          Counts.fields);
  List.rev !mismatches
