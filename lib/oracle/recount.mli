(** Oracle layer 1: tables vs. materialized unrolls.

    For every vector in the nest's bounded unroll space, compare the
    UGS-table predictions (memory operations after scalar replacement,
    register pressure, flops — the numbers the paper computes without
    unrolling anything) against a recount on the body actually produced
    by {!Ujam_ir.Unroll.unroll_and_jam}.  On the supported nest class the
    two constructions are provably the same partition, so any difference
    is a hard failure — there are no "explained" recount mismatches.

    [perturb] post-processes each table prediction before comparison;
    the regression suite uses it to inject a known table bug and assert
    the oracle catches and shrinks it. *)

open Ujam_linalg

val check :
  ?bound:int ->
  ?max_loops:int ->
  ?perturb:(Vec.t -> Counts.t -> Counts.t) ->
  machine:Ujam_machine.Machine.t ->
  Ujam_ir.Nest.t ->
  Mismatch.t list
(** Defaults match {!Ujam_engine.Engine.analyze}: [bound] 4,
    [max_loops] 2. *)
