(** Oracle layer 2: miss tables vs. the cache simulator.

    The GTS/GSS tables only have to *rank* unroll vectors well — the
    search minimises a balance objective built from them — so the oracle
    checks order, not absolute miss counts: pick a spread of candidate
    vectors across the predicted-miss range, replay each materialized
    unrolled body (after scalar replacement) through the cache model of
    [lib/sim], and flag pairs where the tables claim a clear advantage
    and the simulator measures a clear advantage the other way.

    Absolute rates differ legitimately (the table is a steady-state
    estimate; the simulator sees cold misses, conflicts and finite
    capacity), hence the relative/absolute significance margins.  Only
    candidates whose unroll factors divide the trip counts are replayed,
    so the simulated body is semantically the original nest. *)

type outcome = {
  simulated : int;  (** candidate vectors actually replayed *)
  mismatches : Mismatch.t list;
}

val check :
  ?bound:int ->
  ?max_loops:int ->
  ?candidates:int ->
  ?rel_tol:float ->
  ?abs_tol:float ->
  ?max_accesses:int ->
  machine:Ujam_machine.Machine.t ->
  Ujam_ir.Nest.t ->
  outcome
(** Defaults: [candidates] 4, [rel_tol] 0.5, [abs_tol] 0.02 misses per
    original iteration, [max_accesses] 150_000 simulated references per
    candidate (larger nests are skipped, reported via [simulated = 0]).
    [bound]/[max_loops] default to the engine's 4/2. *)
