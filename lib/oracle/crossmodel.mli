(** Oracle layer 3: N-way differential check across the model registry.

    Every registered strategy ({!Ujam_engine.Model.all}) analyzes the
    same shared {!Ujam_core.Analysis_ctx}; each chosen unroll vector is
    then *measured* with {!Ujam_core.Bruteforce.metrics} — materialize,
    recount, evaluate balance — and compared against the exhaustive
    Wolf–Maydan–Chen choice over the same space under the same cache
    flavour.  A strategy whose measured objective (distance from machine
    balance) is worse than the reference's by more than [eps], or whose
    chosen vector breaks the register file in truth, is reported.

    The ["ugs"] and ["no-cache"] table strategies compute the exact same
    quantities as the reference on the supported class, so for them any
    divergence is an unexplained table bug even at tight [eps].  The
    ["dep"] strategy is a documented coarser approximation (Carr,
    PACT'96); its divergences carry an [explained] note.  The reference
    itself is skipped. *)

val check :
  ?bound:int ->
  ?max_loops:int ->
  ?eps:float ->
  machine:Ujam_machine.Machine.t ->
  Ujam_ir.Nest.t ->
  Mismatch.t list
(** Defaults: [eps] 1e-6; [bound]/[max_loops] the engine's 4/2. *)
