open Ujam_linalg
open Ujam_ir

type t = { memory_ops : int; registers : int; flops : int }

let predicted bal u =
  { memory_ops = Ujam_core.Balance.memory_ops bal u;
    registers = Ujam_core.Balance.registers bal u;
    flops = Ujam_core.Balance.flops bal u }

let measured nest u =
  let unrolled = Transform.apply_exn (Transform.Unroll u) nest in
  let d = Nest.depth unrolled in
  let localized = Subspace.span_dims ~dim:d [ d - 1 ] in
  let summary =
    Ujam_core.Streams.summarize (Ujam_core.Streams.of_body ~localized unrolled)
  in
  { memory_ops = summary.Ujam_core.Streams.memory_ops;
    registers = summary.Ujam_core.Streams.registers;
    flops = Nest.flops_per_iteration unrolled }

let equal a b =
  a.memory_ops = b.memory_ops && a.registers = b.registers && a.flops = b.flops

let fields =
  [ ("memory_ops", fun c -> c.memory_ops);
    ("registers", fun c -> c.registers);
    ("flops", fun c -> c.flops) ]

let pp ppf c =
  Format.fprintf ppf "{mem=%d regs=%d flops=%d}" c.memory_ops c.registers
    c.flops
