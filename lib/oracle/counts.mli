(** The quantities the differential oracle compares: per-unrolled-
    iteration memory operations (after scalar replacement), floating-
    point registers, and floating-point operations.

    [predicted] reads the UGS-table side ({!Ujam_core.Balance}) — the
    numbers the paper computes without ever materialising an unrolled
    body.  [measured] is the Wolf–Maydan–Chen ground truth: materialise
    the unroll with {!Ujam_ir.Unroll.unroll_and_jam} and recount on the
    unrolled body's value streams. *)

open Ujam_linalg

type t = { memory_ops : int; registers : int; flops : int }

val predicted : Ujam_core.Balance.t -> Vec.t -> t

val measured : Ujam_ir.Nest.t -> Vec.t -> t
(** Materialise [nest] unrolled by [u] and recount (innermost-localized,
    as everywhere in the pipeline). *)

val equal : t -> t -> bool

val fields : (string * (t -> int)) list
(** Named accessors, for per-field mismatch reports. *)

val pp : Format.formatter -> t -> unit
