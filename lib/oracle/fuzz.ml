open Ujam_ir
open Ujam_machine
open Ujam_engine
open Ujam_workload
module Obs = Ujam_obs.Obs

(* Oracle metrics: no-ops until the observability sink is enabled. *)
let m_nests = Obs.counter "oracle.nests"
let m_mismatches = Obs.counter "oracle.mismatches"
let m_unexplained = Obs.counter "oracle.unexplained"
let m_failures = Obs.counter "oracle.failures"
let m_verify_checked = Obs.counter "oracle.verify.checked"
let m_verify_failed = Obs.counter "oracle.verify.failed"
let m_native_checked = Obs.counter "oracle.native.checked"
let m_native_skipped = Obs.counter "oracle.native.skipped"

type layer = Recount | Sim | Cross_model | Verify | Native | Cachepred

let layer_name = function
  | Recount -> "recount"
  | Sim -> "sim"
  | Cross_model -> "cross-model"
  | Verify -> "verify"
  | Native -> "native"
  | Cachepred -> "cachepred"

(* The native layer stays opt-in: it forks the host toolchain per nest,
   which is orders of magnitude slower than the analytical layers. *)
let all_layers = [ Recount; Sim; Cross_model; Verify; Cachepred ]

type config = {
  n : int;
  seed : int;
  max_depth : int;
  bound : int;
  max_loops : int;
  machine : Machine.t;
  domains : int;
  layers : layer list;
  shrink : bool;
  deep : bool;  (** deep-space mode: 4-deep generator nests admitted *)
  recurrent : bool;
      (** recurrent mode: draw fence-binding recurrence nests instead
          of the corpus mix *)
  dedup : bool;  (** skip nests whose canonical digest was already drawn *)
}

let default_config ?(machine = Presets.alpha) () =
  { n = 200;
    seed = 1997;
    max_depth = 3;
    bound = 4;
    max_loops = 2;
    machine;
    domains = 1;
    layers = all_layers;
    shrink = true;
    deep = false;
    recurrent = false;
    dedup = false }

type failure = {
  routine : string;
  nest : Nest.t;
  error : Error.t option;
  mismatches : Mismatch.t list;
  reduced : Nest.t option;
}

type report = {
  config : config;
  nests : int;
  routines : int;
  draws : int;
  rejected : int;
  skipped_depth : int;
  deduped : int;
  digest_s : float;
  digest_unique : int;
  digest_reused : int;
  fenced : int;
  sim_checked : int;
  cachepred_checked : int;
  verify_checked : int;
  verify_failed : int;
  native_checked : int;
  native_skipped : int;
  total_mismatches : int;
  unexplained : int;
  failures : failure list;
}

(* ---- one nest through one layer -------------------------------------- *)

type layer_result = {
  lr_mismatches : Mismatch.t list;
  lr_simulated : int;
  lr_cachepred : int;  (** hierarchy levels compared by the cachepred layer *)
  lr_verified : int;
  lr_native : int;  (** variants validated by the native backend *)
  lr_native_skipped : int;  (** 1 when the toolchain was unavailable *)
  lr_error : Error.t option;
}

let empty_lr =
  { lr_mismatches = [];
    lr_simulated = 0;
    lr_cachepred = 0;
    lr_verified = 0;
    lr_native = 0;
    lr_native_skipped = 0;
    lr_error = None }

(* The verify layer: materialise every unroll vector of the searched
   space through the gated pipeline ({!Ujam_analysis.Passes.apply_seq}
   — the legality gate, the structural transform, and the index-algebra
   post-condition all run per vector); any diagnostic is a mismatch the
   tables could never have caught (they never materialise code).  The
   dependence graph is built once per nest and reused for every
   vector's legality gate. *)
let verify_check ~bound ~max_loops ~machine nest =
  let ctx = Ujam_core.Analysis_ctx.create ~bound ~max_loops ~machine nest in
  let space = Ujam_core.Analysis_ctx.space ctx in
  let graph = Ujam_core.Analysis_ctx.graph ctx in
  let ms = ref [] and checked = ref 0 in
  Ujam_core.Unroll_space.iter space (fun u ->
      incr checked;
      match
        Ujam_analysis.Passes.apply_seq ~graph nest
          [ Ujam_ir.Transform.Unroll u ]
      with
      | Ok _ -> ()
      | Error diags ->
          List.iter
            (fun (d : Ujam_analysis.Diagnostic.t) ->
              ms :=
                Mismatch.make ~nest:(Nest.name nest)
                  ~machine:machine.Machine.name
                  (Mismatch.Verify
                     { u;
                       rule = d.Ujam_analysis.Diagnostic.rule;
                       detail = d.Ujam_analysis.Diagnostic.message })
                :: !ms)
            diags);
  (List.rev !ms, !checked)

(* The native layer: lower the original nest plus a deterministic
   sample of its legalized unroll variants to one compiled program
   ({!Ujam_native}) and demand that every variant's per-array checksums
   match the reference interpreter run of that same variant.  A missing
   toolchain is a skip, never a failure — the analytical layers keep
   their verdicts. *)
let native_max_variants = 4

let native_check ?(drop_copy = false) ~cfg ~routine:_ nest =
  match Ujam_native.Toolchain.find () with
  | Error _ -> { empty_lr with lr_native_skipped = 1 }
  | Ok tc ->
      let { bound; max_loops; machine; seed; _ } = cfg in
      let ctx = Ujam_core.Analysis_ctx.create ~bound ~max_loops ~machine nest in
      let space = Ujam_core.Analysis_ctx.space ctx in
      let graph = Ujam_core.Analysis_ctx.graph ctx in
      let legal = ref [] in
      Ujam_core.Unroll_space.iter space (fun u ->
          if not (Ujam_linalg.Vec.is_zero u) then
            match
              Ujam_analysis.Passes.apply_seq ~graph nest
                [ Ujam_ir.Transform.Unroll u ]
            with
            | Ok (nest', _) -> legal := (u, nest') :: !legal
            | Error _ -> ());
      let legal = List.rev !legal in
      (* deterministic, evenly spaced sample: compiling every vector of
         the space per nest would swamp the run *)
      let sampled =
        let n = List.length legal in
        if n <= native_max_variants then legal
        else
          List.filteri
            (fun i _ ->
              i * native_max_variants / n
              <> (i + 1) * native_max_variants / n)
            legal
      in
      let variants =
        { Ujam_native.Emit.vname = "orig"; nest }
        :: List.map
             (fun (u, nest') ->
               { Ujam_native.Emit.vname = "u=" ^ Ujam_linalg.Vec.to_string u;
                 nest = nest' })
             sampled
      in
      let spec =
        { Ujam_native.Emit.uname = Nest.name nest;
          seed;
          repeats = 1;
          variants }
      in
      (match Ujam_native.Native.run_units ~drop_last_stmt:drop_copy tc [ spec ] with
      | Error msg -> failwith msg
      | Ok [ res ] ->
          let eqs = Ujam_native.Native.equivalences spec res in
          let ms =
            List.concat_map
              (fun (e : Ujam_native.Native.equivalence) ->
                List.map
                  (fun (d : Ujam_native.Native.diff) ->
                    Mismatch.make ~nest:(Nest.name nest)
                      ~machine:machine.Machine.name
                      (Mismatch.Native
                         { variant = e.Ujam_native.Native.vname;
                           array_name = d.Ujam_native.Native.array_name;
                           native = d.Ujam_native.Native.native;
                           expected = d.Ujam_native.Native.expected }))
                  e.Ujam_native.Native.diffs)
              eqs
          in
          { empty_lr with
            lr_mismatches = ms;
            lr_native = List.length variants }
      | Ok _ -> failwith "native program returned wrong unit count")

let check_layer ?perturb ?(native_drop_copy = false) ~cfg ~routine layer nest =
  let { bound; max_loops; machine; _ } = cfg in
  let guard stage f =
    match Error.guard ~stage ~routine f with
    | Ok r -> r
    | Error e -> { empty_lr with lr_error = Some e }
  in
  match layer with
  | Recount ->
      guard Error.Tables (fun () ->
          let ms =
            Recount.check ~bound ~max_loops ?perturb ~machine nest
          in
          { empty_lr with lr_mismatches = ms })
  | Sim ->
      guard Error.Sim (fun () ->
          let o = Simcheck.check ~bound ~max_loops ~machine nest in
          { empty_lr with
            lr_mismatches = o.Simcheck.mismatches;
            lr_simulated = o.Simcheck.simulated })
  | Cross_model ->
      guard Error.Search (fun () ->
          let ms = Crossmodel.check ~bound ~max_loops ~machine nest in
          { empty_lr with lr_mismatches = ms })
  | Verify ->
      guard Error.Transform (fun () ->
          let ms, checked = verify_check ~bound ~max_loops ~machine nest in
          { empty_lr with lr_mismatches = ms; lr_verified = checked })
  | Native ->
      guard Error.Native (fun () ->
          native_check ~drop_copy:native_drop_copy ~cfg ~routine nest)
  | Cachepred ->
      guard Error.Sim (fun () ->
          let o = Cachepred.check ~machine nest in
          { empty_lr with
            lr_mismatches = o.Cachepred.mismatches;
            lr_cachepred = o.Cachepred.levels_checked })

let unexplained_of ms = List.filter (fun m -> not (Mismatch.is_explained m)) ms

(* ---- one nest through all layers, with shrinking --------------------- *)

type job_result = {
  jr_simulated : bool;
  jr_cachepred : bool;
  jr_verified : int;
  jr_native : int;
  jr_native_skipped : int;
  jr_failure : failure option;
}

let check_nest ?perturb ?native_drop_copy ~cfg ~routine nest =
  let results =
    List.map
      (fun l ->
        (l, check_layer ?perturb ?native_drop_copy ~cfg ~routine l nest))
      cfg.layers
  in
  let mismatches = List.concat_map (fun (_, r) -> r.lr_mismatches) results in
  let error = List.find_map (fun (_, r) -> r.lr_error) results in
  let simulated =
    List.exists (fun (_, r) -> r.lr_simulated > 0) results
  in
  let cachepred =
    List.exists (fun (_, r) -> r.lr_cachepred > 0) results
  in
  let verified =
    List.fold_left (fun acc (_, r) -> acc + r.lr_verified) 0 results
  in
  let native =
    List.fold_left (fun acc (_, r) -> acc + r.lr_native) 0 results
  in
  let native_skipped =
    List.fold_left (fun acc (_, r) -> acc + r.lr_native_skipped) 0 results
  in
  let bad = unexplained_of mismatches <> [] || error <> None in
  if not bad then
    { jr_simulated = simulated;
      jr_cachepred = cachepred;
      jr_verified = verified;
      jr_native = native;
      jr_native_skipped = native_skipped;
      jr_failure = None }
  else
    let reduced =
      if not cfg.shrink then None
      else
        (* Re-run only the layers that failed; an analysis crash counts as
           the same failure only when the original run also crashed (and
           produced no unexplained mismatch — mismatches take priority). *)
        let want_error = error <> None && unexplained_of mismatches = [] in
        let fail_layers =
          if want_error then
            List.filter_map
              (fun (l, r) -> if r.lr_error <> None then Some l else None)
              results
          else
            List.filter_map
              (fun (l, r) ->
                if unexplained_of r.lr_mismatches <> [] then Some l else None)
              results
        in
        let still_fails n =
          List.exists
            (fun l ->
              let r = check_layer ?perturb ?native_drop_copy ~cfg ~routine l n in
              if want_error then r.lr_error <> None
              else unexplained_of r.lr_mismatches <> [])
            fail_layers
        in
        Some (Shrink.run ~still_fails nest)
    in
    { jr_simulated = simulated;
      jr_cachepred = cachepred;
      jr_verified = verified;
      jr_native = native;
      jr_native_skipped = native_skipped;
      jr_failure = Some { routine; nest; error; mismatches; reduced } }

(* ---- the run ---------------------------------------------------------- *)

let run ?perturb ?native_drop_copy cfg =
  let stats = Generator.stats () in
  let st = Random.State.make [| cfg.seed |] in
  let jobs = ref [] in
  let count = ref 0 and idx = ref 0 and skipped_depth = ref 0 in
  let deduped = ref 0 and digest_s = ref 0.0 in
  let memo_hits0, memo_misses0 = Canon.memo_stats () in
  let seen = Hashtbl.create 64 in
  let max_draws = (cfg.n * 8) + 16 in
  while !count < cfg.n && !idx < max_draws do
    let r =
      Generator.routine ~deep:cfg.deep ~recurrent:cfg.recurrent ~stats st !idx
    in
    incr idx;
    List.iter
      (fun nest ->
        if !count < cfg.n then
          if Nest.depth nest > cfg.max_depth then incr skipped_depth
          else begin
            (* duplicate-skipping: a nest whose canonical digest was
               already queued re-checks nothing — skip it and let the
               loop draw a fresh one in its place.  Consing the nest
               first means a structural duplicate interns to the same
               representative, so its digest is an O(1) memo hit
               instead of a full re-encode: each distinct nest is
               digested exactly once per run. *)
            let nest, dup =
              if not cfg.dedup then (nest, false)
              else begin
                let t0 = Sys.time () in
                let nest = Hashcons.nest_no_digest nest in
                let d = Canon.digest nest in
                digest_s := !digest_s +. (Sys.time () -. t0);
                if Hashtbl.mem seen d then (nest, true)
                else begin
                  Hashtbl.add seen d ();
                  (nest, false)
                end
              end
            in
            if dup then incr deduped
            else begin
              incr count;
              jobs := (r.Generator.name, nest) :: !jobs
            end
          end)
      r.Generator.nests
  done;
  let jobs = Array.of_list (List.rev !jobs) in
  let memo_hits1, memo_misses1 = Canon.memo_stats () in
  let results =
    Engine.parallel_map ~domains:cfg.domains
      ~f:(fun ~domain:_ (routine, nest) ->
        check_nest ?perturb ?native_drop_copy ~cfg ~routine nest)
      jobs
  in
  let failures =
    Array.to_list results |> List.filter_map (fun r -> r.jr_failure)
  in
  let total_mismatches =
    List.fold_left (fun acc f -> acc + List.length f.mismatches) 0 failures
  in
  let unexplained =
    List.fold_left
      (fun acc f -> acc + List.length (unexplained_of f.mismatches))
      0 failures
  in
  let verify_checked =
    Array.fold_left (fun acc r -> acc + r.jr_verified) 0 results
  in
  let native_checked =
    Array.fold_left (fun acc r -> acc + r.jr_native) 0 results
  in
  let native_skipped =
    Array.fold_left (fun acc r -> acc + r.jr_native_skipped) 0 results
  in
  let verify_failed =
    List.fold_left
      (fun acc f ->
        acc
        + List.length
            (List.filter (fun m -> Mismatch.layer m = "verify") f.mismatches))
      0 failures
  in
  Obs.Counter.add m_nests (Array.length jobs);
  Obs.Counter.add m_mismatches total_mismatches;
  Obs.Counter.add m_unexplained unexplained;
  Obs.Counter.add m_failures (List.length failures);
  Obs.Counter.add m_verify_checked verify_checked;
  Obs.Counter.add m_verify_failed verify_failed;
  Obs.Counter.add m_native_checked native_checked;
  Obs.Counter.add m_native_skipped native_skipped;
  { config = cfg;
    nests = Array.length jobs;
    routines = !idx;
    draws = stats.Generator.generated;
    rejected = stats.Generator.rejected;
    skipped_depth = !skipped_depth;
    deduped = !deduped;
    digest_s = !digest_s;
    digest_unique = memo_misses1 - memo_misses0;
    digest_reused = memo_hits1 - memo_hits0;
    fenced = stats.Generator.fenced;
    sim_checked =
      Array.fold_left
        (fun acc r -> if r.jr_simulated then acc + 1 else acc)
        0 results;
    cachepred_checked =
      Array.fold_left
        (fun acc r -> if r.jr_cachepred then acc + 1 else acc)
        0 results;
    verify_checked;
    verify_failed;
    native_checked;
    native_skipped;
    total_mismatches;
    unexplained;
    failures }

let ok r = r.unexplained = 0 && List.for_all (fun f -> f.error = None) r.failures

(* ---- rendering -------------------------------------------------------- *)

let pp ppf r =
  let c = r.config in
  Format.fprintf ppf
    "differential oracle: seed=%d machine=%s bound=%d depth<=%d layers=%s%s@."
    c.seed c.machine.Machine.name c.bound c.max_depth
    (String.concat "," (List.map layer_name c.layers))
    ((if c.deep then " deep-space" else "")
    ^ if c.recurrent then " recurrent" else "");
  Format.fprintf ppf
    "nests: %d checked (%d routines, %d draws, %d out-of-class re-rolls, %d over depth limit)@."
    r.nests r.routines r.draws r.rejected r.skipped_depth;
  if c.dedup then
    Format.fprintf ppf
      "dedup: %d duplicate nests skipped by canonical digest (%d digests \
       computed, %d re-encodes avoided by the memo)@."
      r.deduped r.digest_unique r.digest_reused;
  if c.recurrent then
    Format.fprintf ppf
      "recurrent mode: %d of %d emitted nests have a binding safety fence@."
      r.fenced r.nests;
  Format.fprintf ppf "sim layer: %d nests replayed through the cache model@."
    r.sim_checked;
  Format.fprintf ppf
    "cachepred layer: %d nests checked against the hierarchy simulator@."
    r.cachepred_checked;
  Format.fprintf ppf
    "verify layer: %d unrolled bodies checked, %d rejected@."
    r.verify_checked r.verify_failed;
  if List.mem Native c.layers then
    if r.native_skipped > 0 && r.native_checked = 0 then
      Format.fprintf ppf
        "native layer: native_skipped (no toolchain, %d nests not compiled)@."
        r.native_skipped
    else
      Format.fprintf ppf
        "native layer: %d variants compiled and validated (%d nests skipped)@."
        r.native_checked r.native_skipped;
  Format.fprintf ppf "mismatches: %d total, %d unexplained@."
    r.total_mismatches r.unexplained;
  List.iter
    (fun f ->
      Format.fprintf ppf "@.failure: %s (%s)@." (Nest.name f.nest) f.routine;
      (match f.error with
      | Some e -> Format.fprintf ppf "  error: %a@." Error.pp e
      | None -> ());
      let shown, rest =
        let rec split k = function
          | [] -> ([], [])
          | l when k = 0 -> ([], l)
          | m :: tl ->
              let a, b = split (k - 1) tl in
              (m :: a, b)
        in
        split 5 f.mismatches
      in
      List.iter (fun m -> Format.fprintf ppf "  %a@." Mismatch.pp m) shown;
      if rest <> [] then
        Format.fprintf ppf "  ... and %d more@." (List.length rest);
      match f.reduced with
      | None -> ()
      | Some n ->
          Format.fprintf ppf "  reduced reproducer:@.";
          String.split_on_char '\n' (Nest.to_string n)
          |> List.iter (fun line ->
                 if line <> "" then Format.fprintf ppf "    %s@." line);
          Format.fprintf ppf "  rebuild with:@.";
          String.split_on_char '\n' (Shrink.to_snippet n)
          |> List.iter (fun line ->
                 if line <> "" then Format.fprintf ppf "    %s@." line))
    r.failures;
  Format.fprintf ppf "result: %s@."
    (if ok r then "ok"
     else Printf.sprintf "%d unexplained mismatch(es), %d error(s)"
         r.unexplained
         (List.length (List.filter (fun f -> f.error <> None) r.failures)))

let failure_to_json f =
  Json.Obj
    [ ("routine", Json.Str f.routine);
      ("nest", Json.Str (Nest.name f.nest));
      ( "error",
        match f.error with
        | Some e -> Json.Str (Error.to_string e)
        | None -> Json.Null );
      ("mismatches", Json.List (List.map Mismatch.to_json f.mismatches));
      ( "reduced",
        match f.reduced with
        | Some n -> Shrink.to_json n
        | None -> Json.Null ) ]

let to_json r =
  let c = r.config in
  Json.Obj
    ([ ("seed", Json.Int c.seed);
      ("n", Json.Int c.n);
      ("machine", Json.Str c.machine.Machine.name);
      ("bound", Json.Int c.bound);
      ("max_depth", Json.Int c.max_depth);
      ("deep", Json.Bool c.deep);
      ("recurrent", Json.Bool c.recurrent);
      ( "layers",
        Json.List (List.map (fun l -> Json.Str (layer_name l)) c.layers) );
      ("nests", Json.Int r.nests);
      ("routines", Json.Int r.routines);
      ("draws", Json.Int r.draws);
      ("rejected", Json.Int r.rejected);
      ("skipped_depth", Json.Int r.skipped_depth);
      ("deduped", Json.Int r.deduped) ]
    (* digest accounting appears only under [--dedup], keeping the
       pinned default-run JSON byte-stable (the native fields below
       follow the same rule) *)
    @ (if c.dedup then
         [ ("digest_s", Json.Float r.digest_s);
           ("digest_unique", Json.Int r.digest_unique);
           ("digest_reused", Json.Int r.digest_reused) ]
       else [])
    @ [ ("fenced", Json.Int r.fenced);
      ("sim_checked", Json.Int r.sim_checked);
      ("cachepred_checked", Json.Int r.cachepred_checked);
      ("verify_checked", Json.Int r.verify_checked);
      ("verify_failed", Json.Int r.verify_failed) ]
    (* native fields appear only when the layer was configured, so the
       pinned default-run JSON stays byte-stable *)
    @ (if List.mem Native c.layers then
         [ ("native_checked", Json.Int r.native_checked);
           ("native_skipped", Json.Int r.native_skipped) ]
       else [])
    @ [ ("mismatches", Json.Int r.total_mismatches);
      ("unexplained", Json.Int r.unexplained);
      ("ok", Json.Bool (ok r));
      ("failures", Json.List (List.map failure_to_json r.failures)) ])
