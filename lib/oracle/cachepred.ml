open Ujam_ir
open Ujam_machine

type outcome = { levels_checked : int; mismatches : Mismatch.t list }

let nothing = { levels_checked = 0; mismatches = [] }

(* A level associative enough for the LRU-stack model to bound misses
   from above: fully associative, or at least 4-way.  At a direct-mapped
   (or 2-way) level conflict misses sit on top of the capacity model, so
   only overprediction is checkable there. *)
let stack_like (l : Machine.Level.t) =
  l.Machine.Level.assoc >= 4
  || l.Machine.Level.size / (l.Machine.Level.line * l.Machine.Level.assoc) <= 1

let check ?(rel_tol = 0.5) ?(abs_tol = 0.05) ?(max_accesses = 200_000)
    ?(warmup = 10.0) ?(strict = false) ?steal_lines ~machine nest =
  match Nest.iterations nest with
  | None -> nothing (* affine bounds: no closed form and no replay *)
  | Some iterations -> (
      let accesses = iterations * List.length (Site.of_nest nest) in
      if accesses = 0 || accesses > max_accesses then nothing
      else
        match Ujam_analysis.Cachecheck.run ~machine nest with
        | None -> nothing
        | Some t ->
            (* the profile predicts steady-state ratios: a level is only
               comparable once the run is long enough to amortize its
               compulsory transient (the whole footprint fetched once) *)
            let warm (l : Machine.Level.t) =
              let line = l.Machine.Level.line in
              let lay = Ujam_sim.Layout.of_nest nest ~line in
              let lines = (Ujam_sim.Layout.footprint lay / line) + 1 in
              float_of_int accesses >= warmup *. float_of_int lines
            in
            let stats = Ujam_sim.Runner.run_levels ?steal_lines ~machine nest in
            let preds = Ujam_analysis.Cachecheck.predicted_ratios t in
            let band a b = abs_tol +. (rel_tol *. Float.max a b) in
            let mismatches, levels_checked =
              List.fold_left2
                (fun (ms, ck) ((l : Machine.Level.t), floor, predicted, ceiling)
                     (_, acc, miss) ->
                  if not (warm l) then (ms, ck)
                  else
                    let m = float_of_int miss /. float_of_int acc in
                    let over = floor -. m > band floor m in
                    (* strict mode drops the knife-edge allowance: for
                       self-tests on nests whose distances are exact,
                       compare against the point prediction so a
                       one-line geometry fault is still visible *)
                    let upper = if strict then predicted else ceiling in
                    let under =
                      stack_like l && m -. upper > band upper m
                    in
                    if over || under then
                      ( Mismatch.make ~nest:(Nest.name nest)
                          ~machine:machine.Machine.name
                          (Mismatch.Cachepred
                             { level = l.Machine.Level.name;
                               floor;
                               predicted;
                               measured = m })
                        :: ms,
                        ck + 1 )
                    else (ms, ck + 1))
                ([], 0) preds stats
            in
            { levels_checked; mismatches = List.rev mismatches })
