open Ujam_ir
open Ujam_core
open Ujam_machine
open Ujam_engine

let dep_note =
  "dependence-based reuse is a coarser approximation than the UGS tables"


let check ?(bound = 4) ?(max_loops = 2) ?(eps = 1e-6) ~machine nest =
  let ctx = Analysis_ctx.create ~bound ~max_loops ~machine nest in
  let space = Analysis_ctx.space ctx in
  let beta_m = Machine.balance machine in
  (* One materialized sweep serves every comparison: both cache flavours
     of the measured objective, and both exhaustive reference choices. *)
  let sweep =
    lazy
      (List.rev
         (Unroll_space.fold space [] (fun acc u ->
              (u, Bruteforce.metrics ~machine nest u) :: acc)))
  in
  (* Measured objective of a candidate: materialize, recount, evaluate.
     A register-infeasible choice is infinitely bad — the search is
     constrained to the FP register file. *)
  let objective ~cache (m : Bruteforce.metrics) =
    if m.Bruteforce.registers > machine.Machine.fp_registers then infinity
    else
      Float.abs
        ((if cache then m.Bruteforce.balance_cache
          else m.Bruteforce.balance_nocache)
        -. beta_m)
  in
  let measure ~cache u =
    match
      List.find_opt (fun (u', _) -> Ujam_linalg.Vec.equal u u') (Lazy.force sweep)
    with
    | Some (_, m) -> objective ~cache m
    | None -> objective ~cache (Bruteforce.metrics ~machine nest u)
  in
  (* The exhaustive choice under {!Bruteforce.best}'s tie-breaking:
     objective, then fewer body copies, then lexicographic order. *)
  let reference ~cache =
    let best =
      List.fold_left
        (fun best (u, m) ->
          if m.Bruteforce.registers > machine.Machine.fp_registers then best
          else
            let o = objective ~cache m in
            match best with
            | None -> Some (u, o)
            | Some (bu, bo) ->
                let c = Float.compare o bo in
                let wins =
                  if c <> 0 then c < 0
                  else
                    let c = compare (Unroll_space.copies u) (Unroll_space.copies bu) in
                    if c <> 0 then c < 0 else Ujam_linalg.Vec.compare u bu < 0
                in
                if wins then Some (u, o) else best)
        None (Lazy.force sweep)
    in
    match best with
    | Some r -> r
    | None ->
        let u0 = Ujam_linalg.Vec.zero (Unroll_space.depth space) in
        (u0, measure ~cache u0)
  in
  let ref_cache = lazy (reference ~cache:true) in
  let ref_nocache = lazy (reference ~cache:false) in
  List.filter_map
    (fun (module M : Model.MODEL) ->
      if M.name = Model.Brute_force.name then None
      else
        let choice = M.analyze ctx in
        let u = choice.Search.u in
        let reference_u, reference_objective =
          Lazy.force (if M.cache then ref_cache else ref_nocache)
        in
        let objective = measure ~cache:M.cache u in
        if objective > reference_objective +. eps then
          let explained =
            if M.name = Model.Dep_based.name then Some dep_note else None
          in
          Some
            (Mismatch.make ~nest:(Nest.name nest) ~machine:machine.Machine.name
               ?explained
               (Mismatch.Model_divergence
                  { model = M.name;
                    u;
                    objective;
                    reference_u;
                    reference_objective }))
        else None)
    Model.all
