open Ujam_ir
open Ujam_engine

(* ---- candidate rewrites ---------------------------------------------- *)

(* All one-step prunings of an expression, biggest cut first. *)
let rec reductions e =
  match e with
  | Expr.Bin (op, a, b) ->
      (a :: b :: List.map (fun a' -> Expr.Bin (op, a', b)) (reductions a))
      @ List.map (fun b' -> Expr.Bin (op, a, b')) (reductions b)
  | Expr.Neg a -> a :: List.map (fun a' -> Expr.Neg a') (reductions a)
  | _ -> []

(* Rewrite the [j]-th array reference of the body (rhs reads in traversal
   order, then the lhs write, per statement). *)
let map_ref_at nest j f =
  let i = ref (-1) in
  let g r =
    incr i;
    if !i = j then f r else r
  in
  let body =
    List.map
      (fun (st : Stmt.t) ->
        let rhs = Expr.map_refs g st.Stmt.rhs in
        let lhs =
          match st.Stmt.lhs with
          | Stmt.Array_elt r -> Stmt.Array_elt (g r)
          | lhs -> lhs
        in
        Stmt.assign lhs rhs)
      (Nest.body nest)
  in
  Nest.with_body nest body

let nrefs nest = List.length (Nest.refs nest)

let ref_at nest j =
  match List.nth_opt (Nest.refs nest) j with
  | Some (r, _) -> r
  | None -> invalid_arg "Shrink.ref_at"

(* Delete loop level [k]: substitute its (constant) lower bound for the
   index everywhere and renumber the remaining levels.  Requires no other
   loop bound to depend on level [k]. *)
let drop_level nest k =
  let loops = Nest.loops nest in
  let d = Array.length loops in
  if d < 2 then None
  else
    let l = loops.(k) in
    if not (Affine.is_constant l.Loop.lo) then None
    else if
      Array.exists
        (fun (l' : Loop.t) ->
          l'.Loop.level <> k
          && (Affine.uses_level l'.Loop.lo k || Affine.uses_level l'.Loop.hi k))
        loops
    then None
    else
      let v = l.Loop.lo.Affine.const in
      let narrow (a : Affine.t) =
        let const = a.Affine.const + (a.Affine.coefs.(k) * v) in
        let coefs =
          Array.init (d - 1) (fun i ->
              a.Affine.coefs.(if i < k then i else i + 1))
        in
        Affine.make ~coefs ~const
      in
      let loops' =
        Array.to_list loops
        |> List.filter (fun (l' : Loop.t) -> l'.Loop.level <> k)
        |> List.map (fun (l' : Loop.t) ->
               Loop.make ~var:l'.Loop.var
                 ~level:(if l'.Loop.level < k then l'.Loop.level
                         else l'.Loop.level - 1)
                 ~lo:(narrow l'.Loop.lo) ~hi:(narrow l'.Loop.hi)
                 ~step:l'.Loop.step)
      in
      let body =
        List.map
          (Stmt.map_refs (fun r ->
               Aref.make (Aref.base r)
                 (List.map narrow (Array.to_list r.Aref.subs))))
          (Nest.body nest)
      in
      Some (Nest.make ~name:(Nest.name nest) ~loops:loops' ~body)

let with_trip nest k trip' =
  let loops = Nest.loops nest in
  let l = loops.(k) in
  if not (Affine.is_constant l.Loop.lo && Affine.is_constant l.Loop.hi) then
    None
  else
    let lo = l.Loop.lo.Affine.const in
    let trip = l.Loop.hi.Affine.const - lo + 1 in
    if trip' >= trip || trip' < 1 then None
    else
      let d = Array.length loops in
      let hi = Affine.const ~depth:d (lo + trip' - 1) in
      let loops =
        Array.mapi (fun i l' -> if i = k then { l with Loop.hi } else l') loops
      in
      Some (Nest.with_loops nest loops)

(* The candidate queue for one nest, most aggressive rewrites first.
   Each candidate is a thunk; IR validation failures discard it. *)
let candidates nest =
  let d = Nest.depth nest in
  let body = Nest.body nest in
  let n_stmts = List.length body in
  let guard f = match f () with exception _ -> None | c -> c in
  let drop_stmts =
    if n_stmts < 2 then []
    else
      List.init n_stmts (fun i () ->
          guard (fun () ->
              Some
                (Nest.with_body nest
                   (List.filteri (fun j _ -> j <> i) body))))
  in
  let drop_levels =
    List.init d (fun k () -> guard (fun () -> drop_level nest k))
  in
  let prune_rhs =
    List.concat
      (List.mapi
         (fun i (st : Stmt.t) ->
           List.map
             (fun rhs' () ->
               guard (fun () ->
                   Some
                     (Nest.with_body nest
                        (List.mapi
                           (fun j st' ->
                             if j = i then Stmt.assign st.Stmt.lhs rhs'
                             else st')
                           body))))
             (reductions st.Stmt.rhs))
         body)
  in
  let trips_to n =
    List.init d (fun k () -> guard (fun () -> with_trip nest k n))
  in
  let halve_trips =
    List.init d (fun k () ->
        guard (fun () ->
            let l = (Nest.loops nest).(k) in
            match (Affine.is_constant l.Loop.lo, Affine.is_constant l.Loop.hi)
            with
            | true, true ->
                let trip =
                  l.Loop.hi.Affine.const - l.Loop.lo.Affine.const + 1
                in
                with_trip nest k (trip / 2)
            | _ -> None))
  in
  let per_subscript f =
    List.concat
      (List.init (nrefs nest) (fun j ->
           let r = ref_at nest j in
           List.concat
             (List.init (Aref.rank r) (fun dim ->
                  f j r r.Aref.subs.(dim) dim))))
  in
  let sub_with r dim sub' =
    Aref.make (Aref.base r)
      (List.mapi
         (fun i s -> if i = dim then sub' else s)
         (Array.to_list r.Aref.subs))
  in
  let zero_consts =
    per_subscript (fun j _ (sub : Affine.t) dim ->
        if sub.Affine.const = 0 then []
        else
          [ (fun () ->
              guard (fun () ->
                  Some
                    (map_ref_at nest j (fun r ->
                         sub_with r dim
                           (Affine.make ~coefs:sub.Affine.coefs ~const:0)))))
          ])
  in
  let shrink_coefs =
    per_subscript (fun j _ (sub : Affine.t) dim ->
        List.concat
          (List.init (Array.length sub.Affine.coefs) (fun k ->
               let c = sub.Affine.coefs.(k) in
               let set v () =
                 guard (fun () ->
                     let coefs = Array.copy sub.Affine.coefs in
                     coefs.(k) <- v;
                     Some
                       (map_ref_at nest j (fun r ->
                            sub_with r dim
                              (Affine.make ~coefs ~const:sub.Affine.const))))
               in
               if c = 0 then []
               else if abs c > 1 then [ set 0; set (c / abs c) ]
               else [ set 0 ])))
  in
  let halve_consts =
    per_subscript (fun j _ (sub : Affine.t) dim ->
        if abs sub.Affine.const < 2 then []
        else
          [ (fun () ->
              guard (fun () ->
                  Some
                    (map_ref_at nest j (fun r ->
                         sub_with r dim
                           (Affine.make ~coefs:sub.Affine.coefs
                              ~const:(sub.Affine.const / 2))))))
          ])
  in
  List.concat
    [ drop_stmts; drop_levels; prune_rhs; trips_to 4; zero_consts;
      shrink_coefs; halve_trips; halve_consts ]

(* ---- the greedy descent ---------------------------------------------- *)

let m_steps = Ujam_obs.Obs.counter "oracle.shrink.steps"

let run ?(max_steps = 300) ~still_fails nest =
  let fails n =
    Ujam_obs.Obs.Counter.incr m_steps;
    match still_fails n with ok -> ok | exception _ -> false
  in
  let steps = ref 0 in
  let rec go nest =
    let next =
      List.find_map
        (fun cand ->
          if !steps >= max_steps then None
          else
            match cand () with
            | None -> None
            | Some n' ->
                incr steps;
                if fails n' then Some n' else None)
        (candidates nest)
    in
    match next with Some n' -> go n' | None -> nest
  in
  go nest

(* ---- reproducer output ----------------------------------------------- *)

let affine_snippet (a : Affine.t) =
  let terms =
    List.concat
      (List.mapi
         (fun k c ->
           if c = 0 then []
           else if c = 1 then [ Printf.sprintf "var d %d" k ]
           else [ Printf.sprintf "(%d *$ var d %d)" c k ])
         (Array.to_list a.Affine.coefs))
  in
  match (terms, a.Affine.const) with
  | [], c -> Printf.sprintf "cst d %d" c
  | ts, 0 -> String.concat " ++$ " ts
  | ts, c when c > 0 -> Printf.sprintf "%s +$ %d" (String.concat " ++$ " ts) c
  | ts, c -> Printf.sprintf "%s -$ %d" (String.concat " ++$ " ts) (-c)

let subs_snippet subs =
  String.concat "; " (List.map affine_snippet (Array.to_list subs))

let rec expr_snippet e =
  match e with
  | Expr.Const v -> Printf.sprintf "f (%s)" (string_of_float v)
  | Expr.Scalar name -> Printf.sprintf "s %S" name
  | Expr.Read r ->
      Printf.sprintf "rd %S [ %s ]" (Aref.base r) (subs_snippet r.Aref.subs)
  | Expr.Neg a -> Printf.sprintf "Ujam_ir.Expr.Neg (%s)" (expr_snippet a)
  | Expr.Bin (op, a, b) ->
      let sym =
        match op with
        | Expr.Add -> "+:"
        | Expr.Sub -> "-:"
        | Expr.Mul -> "*:"
        | Expr.Div -> "/:"
      in
      Printf.sprintf "(%s %s %s)" (expr_snippet a) sym (expr_snippet b)

let stmt_snippet (st : Stmt.t) =
  match st.Stmt.lhs with
  | Stmt.Array_elt r ->
      Printf.sprintf "aref %S [ %s ] <<- %s" (Aref.base r)
        (subs_snippet r.Aref.subs)
        (expr_snippet st.Stmt.rhs)
  | Stmt.Scalar_var name ->
      Printf.sprintf "%S <<~ %s" name (expr_snippet st.Stmt.rhs)

let loop_snippet (l : Loop.t) =
  if Affine.is_constant l.Loop.lo && Affine.is_constant l.Loop.hi then
    Printf.sprintf "loop d %S ~level:%d ~lo:%d ~hi:%d%s ()" l.Loop.var
      l.Loop.level l.Loop.lo.Affine.const l.Loop.hi.Affine.const
      (if l.Loop.step = 1 then "" else Printf.sprintf " ~step:%d" l.Loop.step)
  else
    Printf.sprintf "loop_aff %S ~level:%d ~lo:(%s) ~hi:(%s)%s ()" l.Loop.var
      l.Loop.level
      (affine_snippet l.Loop.lo)
      (affine_snippet l.Loop.hi)
      (if l.Loop.step = 1 then "" else Printf.sprintf " ~step:%d" l.Loop.step)

let to_snippet nest =
  let b = Buffer.create 256 in
  Buffer.add_string b "let open Ujam_ir.Build in\n";
  Buffer.add_string b (Printf.sprintf "let d = %d in\n" (Nest.depth nest));
  Buffer.add_string b (Printf.sprintf "nest %S\n" (Nest.name nest));
  Buffer.add_string b
    (Printf.sprintf "  [ %s ]\n"
       (String.concat ";\n    "
          (List.map loop_snippet (Array.to_list (Nest.loops nest)))));
  Buffer.add_string b
    (Printf.sprintf "  [ %s ]\n"
       (String.concat ";\n    " (List.map stmt_snippet (Nest.body nest))));
  Buffer.contents b

let affine_json (a : Affine.t) =
  Json.Obj
    [ ("coefs", Json.List (List.map (fun c -> Json.Int c)
                             (Array.to_list a.Affine.coefs)));
      ("const", Json.Int a.Affine.const) ]

let to_json nest =
  let var_name = Nest.var_name nest in
  Json.Obj
    [ ("name", Json.Str (Nest.name nest));
      ("depth", Json.Int (Nest.depth nest));
      ( "loops",
        Json.List
          (Array.to_list (Nest.loops nest)
          |> List.map (fun (l : Loop.t) ->
                 Json.Obj
                   [ ("var", Json.Str l.Loop.var);
                     ("level", Json.Int l.Loop.level);
                     ("lo", affine_json l.Loop.lo);
                     ("hi", affine_json l.Loop.hi);
                     ("step", Json.Int l.Loop.step) ])) );
      ( "body",
        Json.List
          (List.map
             (fun st ->
               Json.Str (Format.asprintf "%a" (Stmt.pp ~var_name) st))
             (Nest.body nest)) );
      ("snippet", Json.Str (to_snippet nest)) ]
