open Ujam_ir
module Json = Ujam_obs.Json

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  rule : string;
  severity : severity;
  loc : Loc.t;
  message : string;
  notes : (Loc.t * string) list;
}

let make ~rule ~severity ?(loc = Loc.none) ?(notes = []) message =
  { rule; severity; loc; message; notes }

let is_error d = d.severity = Error

let count ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else String.compare (Loc.to_string a.loc) (Loc.to_string b.loc)

let pp ppf d =
  if Loc.is_none d.loc then
    Format.fprintf ppf "%s %s: %s" (severity_name d.severity) d.rule d.message
  else
    Format.fprintf ppf "%s %s %a: %s" (severity_name d.severity) d.rule Loc.pp
      d.loc d.message;
  List.iter
    (fun (loc, note) ->
      if Loc.is_none loc then Format.fprintf ppf "@,  note: %s" note
      else Format.fprintf ppf "@,  note %a: %s" Loc.pp loc note)
    d.notes

let loc_to_json loc =
  let fields =
    (match loc.Loc.nest with
    | Some n -> [ ("nest", Json.Str n) ]
    | None -> [])
    @ List.map (fun (k, v) -> (k, Json.Int v)) (Loc.to_fields loc)
  in
  Json.Obj fields

let to_json d =
  let base =
    [ ("rule", Json.Str d.rule);
      ("severity", Json.Str (severity_name d.severity));
      ("loc", loc_to_json d.loc);
      ("message", Json.Str d.message) ]
  in
  let notes =
    if d.notes = [] then []
    else
      [ ( "notes",
          Json.List
            (List.map
               (fun (loc, m) ->
                 Json.Obj [ ("loc", loc_to_json loc); ("message", Json.Str m) ])
               d.notes) ) ]
  in
  Json.Obj (base @ notes)
