open Ujam_ir
open Ujam_core
open Ujam_linalg
module Json = Ujam_obs.Json

type t = {
  nest : string;
  machine : string;
  depth : int;
  flops : int;
  supported : string option;
  coupled_sites : int;
  star_edges : int;
  safety : int array;
  ranked : (int * float) list;
  unroll_levels : int list;
  box : int array;
  clamped : (int * int) list;
  monotone : Monotone.violation option;
  choice : Search.choice option;
  choice_no_cache : Search.choice option;
  model : string;
  sequence : Passes.step list;
  reasons : string list;
  diagnostics : Diagnostic.t list;
  cache : Cachecheck.t option;
}

let model_of t = t.model
let choice_u t = Option.map (fun (c : Search.choice) -> c.Search.u) t.choice

let run ?bound ?max_loops ?level ?(seq = false) ~machine nest =
  let name = Nest.name nest in
  let flops = Nest.flops_per_iteration nest in
  let coupled_sites =
    List.length
      (List.filter
         (fun (s : Site.t) -> not (Aref.is_separable_siv s.Site.ref_))
         (Site.of_nest nest))
  in
  let supported =
    Option.map (Supported.message nest) (Supported.find_violation nest)
  in
  let base reasons model =
    { nest = name;
      machine = machine.Ujam_machine.Machine.name;
      depth = Nest.depth nest;
      flops;
      supported;
      coupled_sites;
      star_edges = 0;
      safety = [||];
      ranked = [];
      unroll_levels = [];
      box = [||];
      clamped = [];
      monotone = None;
      choice = None;
      choice_no_cache = None;
      model;
      sequence = [];
      reasons;
      diagnostics = [];
      cache = None;
    }
  in
  match supported with
  | Some why ->
      let diagnostics = Lint.run ?bound ?max_loops ~machine nest in
      { (base [ why; "no table model applies; the nest is left alone" ]
           "unsupported")
        with diagnostics }
  | None ->
      let ctx = Analysis_ctx.create ?bound ?max_loops ~machine nest in
      let safety = Analysis_ctx.safety ctx in
      let star_edges =
        List.length
          (List.filter
             (fun (e : Ujam_depend.Graph.edge) ->
               Array.exists
                 (fun c -> c = Ujam_depend.Depvec.Star)
                 e.Ujam_depend.Graph.dvec)
             (Analysis_ctx.graph ctx).Ujam_depend.Graph.edges)
      in
      let space = Analysis_ctx.space ctx in
      let box = Unroll_space.bounds space in
      let request = Analysis_ctx.bound ctx in
      let clamped =
        List.filter_map
          (fun level ->
            if safety.(level) < request then Some (level, safety.(level))
            else None)
          (Analysis_ctx.unroll_levels ctx)
      in
      let choice, monotone =
        Monotone.search ~cache:true (Analysis_ctx.balance ctx)
      in
      let choice_no_cache =
        Search.best ~prune:(monotone = None) ~cache:false
          (Analysis_ctx.balance ctx)
      in
      let trivial = Unroll_space.card space = 1 in
      (* Sequence mode: when the fence binds, report the legalizing
         skew/retime prefix the seq search would choose (and why each
         step was legal) alongside the plain analysis. *)
      let seq_outcome =
        if seq && Seqsearch.fence_binds ctx then
          let o = Seqsearch.search ?bound ?max_loops ~machine nest in
          if o.Seqsearch.sequence = [] then None else Some o
        else None
      in
      let sequence =
        match seq_outcome with
        | Some o -> o.Seqsearch.sequence
        | None -> []
      in
      let model =
        if seq_outcome <> None then "ugs+seq"
        else if flops = 0 || trivial then "trivial"
        else if monotone <> None then "ugs-exhaustive"
        else "ugs"
      in
      let reasons =
        (if flops = 0 then
           [ "no floating-point work: loop balance is undefined and there is \
              nothing to improve" ]
         else [])
        @ (if trivial then
             [ (if Nest.depth nest < 2 then
                  "a depth-1 nest has no outer loop to jam"
                else "legality caps every candidate loop at 0 extra copies") ]
           else [])
        @ List.map
            (fun (level, cap) ->
              Printf.sprintf
                "a carried dependence clamps loop %s to %d extra cop%s \
                 (requested %d)"
                (Nest.var_name nest level) cap
                (if cap = 1 then "y" else "ies")
                request)
            clamped
        @ (if coupled_sites > 0 then
             [ Printf.sprintf
                 "%d coupled subscript site%s: the UGS model still counts \
                  them, but distances may go inconsistent (*)"
                 coupled_sites
                 (if coupled_sites = 1 then "" else "s") ]
           else [])
        @ (if star_edges > 0 then
             [ Printf.sprintf
                 "%d dependence%s with unknown (*) components; legality uses \
                  direction information only"
                 star_edges
                 (if star_edges = 1 then "" else "s") ]
           else [])
        @ (match monotone with
          | Some v ->
              [ Printf.sprintf
                  "register table not monotone at %s (axis %d: %d < %d); \
                   pruned search degraded to the exhaustive scan"
                  (Vec.to_string v.Monotone.u) v.Monotone.axis v.Monotone.at
                  v.Monotone.below ]
          | None -> [ "register table certified monotone; pruned search is sound" ])
        @ (match seq_outcome with
          | Some o ->
              List.map
                (fun d -> d.Diagnostic.message)
                o.Seqsearch.diagnostics
          | None ->
              if seq then
                [ (if Seqsearch.fence_binds ctx then
                     "seq search engaged: no verified prefix beat the \
                      untransformed baseline"
                   else
                     "seq search not engaged: no outer loop is fully fenced")
                ]
              else [])
        @
        if not trivial then
          if Vec.equal choice.Search.u choice_no_cache.Search.u then
            [ Printf.sprintf
                "the cache-miss term does not move the choice: with or \
                 without it the search picks %s"
                (Vec.to_string choice.Search.u) ]
          else
            [ Printf.sprintf
                "the cache-miss term moves the choice: %s with it, %s without"
                (Vec.to_string choice.Search.u)
                (Vec.to_string choice_no_cache.Search.u) ]
        else []
      in
      let cache =
        let u =
          match seq_outcome with
          | Some o -> o.Seqsearch.choice.Search.u
          | None -> choice.Search.u
        in
        match Cachecheck.run ~u ~machine nest with
        | None -> None
        | Some c ->
            Some
              (match level with
              | Some k -> Cachecheck.select_level k c
              | None -> c)
      in
      { (base reasons model) with
        cache;
        star_edges;
        safety;
        ranked = Analysis_ctx.ranked ctx;
        unroll_levels = Analysis_ctx.unroll_levels ctx;
        box;
        clamped;
        monotone;
        choice =
          (match seq_outcome with
          | Some o -> Some o.Seqsearch.choice
          | None -> Some choice);
        choice_no_cache = Some choice_no_cache;
        sequence;
        diagnostics =
          (match seq_outcome with
          | Some o -> o.Seqsearch.diagnostics @ Lint.run_ctx ?level ctx
          | None -> Lint.run_ctx ?level ctx);
      }

let pp_cap ppf c =
  if c = max_int then Format.pp_print_string ppf "inf"
  else Format.pp_print_int ppf c

let pp ppf t =
  let open Format in
  fprintf ppf "@[<v>%s on %s: model %s@," t.nest t.machine t.model;
  fprintf ppf "  depth %d, %d flops/iteration" t.depth t.flops;
  (match t.supported with
  | Some why -> fprintf ppf "@,  unsupported: %s" why
  | None ->
      fprintf ppf "@,  legality caps: [%a]"
        (pp_print_array ~pp_sep:(fun ppf () -> pp_print_string ppf "; ") pp_cap)
        t.safety;
      if t.ranked <> [] then
        fprintf ppf "@,  reuse ranking: %a"
          (pp_print_list
             ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
             (fun ppf (level, cost) -> fprintf ppf "loop%d (%.3g)" level cost))
          t.ranked;
      fprintf ppf "@,  search box: %s over loops {%s}"
        (if Array.length t.box = 0 then "-"
         else
           "["
           ^ String.concat "; " (Array.to_list (Array.map string_of_int t.box))
           ^ "]")
        (String.concat "," (List.map string_of_int t.unroll_levels));
      if t.sequence <> [] then begin
        fprintf ppf "@,  sequence:";
        List.iter
          (fun (st : Passes.step) ->
            fprintf ppf "@,    - %s: %s"
              (Ujam_ir.Transform.to_string st.Passes.transform)
              st.Passes.note)
          t.sequence
      end;
      match t.choice with
      | Some c ->
          fprintf ppf "@,  chosen: u=%s balance %.3g, objective %.3g, %d regs"
            (Vec.to_string c.Search.u) c.Search.balance c.Search.objective
            c.Search.registers
      | None -> ());
  (match t.cache with
  | Some c -> fprintf ppf "@,%a" Cachecheck.pp_table c
  | None -> ());
  if t.reasons <> [] then begin
    fprintf ppf "@,  why:";
    List.iter (fun r -> fprintf ppf "@,    - %s" r) t.reasons
  end;
  if t.diagnostics <> [] then begin
    fprintf ppf "@,  diagnostics:";
    List.iter (fun d -> fprintf ppf "@,    %a" Diagnostic.pp d) t.diagnostics
  end;
  fprintf ppf "@]"

let choice_to_json (c : Search.choice) =
  Json.Obj
    [ ("u", Json.List (List.map (fun x -> Json.Int x) (Array.to_list (Vec.to_array c.Search.u))));
      ("balance", Json.Float c.Search.balance);
      ("objective", Json.Float c.Search.objective);
      ("registers", Json.Int c.Search.registers) ]

let to_json t =
  let opt name f = function None -> [] | Some x -> [ (name, f x) ] in
  let cap c = if c = max_int then Json.Str "inf" else Json.Int c in
  Json.Obj
    ([ ("nest", Json.Str t.nest);
       ("machine", Json.Str t.machine);
       ("model", Json.Str t.model);
       ("depth", Json.Int t.depth);
       ("flops", Json.Int t.flops) ]
    @ opt "unsupported" (fun s -> Json.Str s) t.supported
    @ [ ("coupled_sites", Json.Int t.coupled_sites);
        ("star_edges", Json.Int t.star_edges);
        ("safety", Json.List (List.map cap (Array.to_list t.safety)));
        ( "unroll_levels",
          Json.List (List.map (fun l -> Json.Int l) t.unroll_levels) );
        ("box", Json.List (List.map (fun b -> Json.Int b) (Array.to_list t.box)));
        ( "clamped",
          Json.List
            (List.map
               (fun (level, c) ->
                 Json.Obj [ ("level", Json.Int level); ("cap", Json.Int c) ])
               t.clamped) );
        ("monotone", Json.Bool (t.monotone = None)) ]
    @ opt "choice" choice_to_json t.choice
    @ opt "choice_no_cache" choice_to_json t.choice_no_cache
    @ (if t.sequence = [] then []
       else [ ("sequence", Seqsearch.steps_json t.sequence) ])
    @ opt "cache" Cachecheck.to_json t.cache
    @ [ ("reasons", Json.List (List.map (fun r -> Json.Str r) t.reasons));
        ( "diagnostics",
          Json.List (List.map Diagnostic.to_json t.diagnostics) ) ])
