(** The gated transformation pipeline.

    {!Ujam_ir.Transform} is purely structural; this module is where a
    sequence of transforms meets the dependence analysis.  Each step of
    {!apply_seq} runs three gates, in order:

    + {b legality} — the step must preserve every data dependence of the
      nest it is applied to: {!Ujam_depend.Safety.is_safe} for unroll,
      {!Ujam_depend.Safety.legal_permutation} for interchange (and for
      the controller hoist of tiling, on the strip-mined nest), the
      unit-lower-triangular shape for skew (such a skew maps every
      distance [d] to [S d] with the leading nonzero unchanged, so it is
      legal by construction), and lexicographic non-negativity of every
      shifted cross-statement distance for retiming;
    + {b structure} — {!Ujam_ir.Transform.apply} must accept the step;
    + {b post-condition} — {!Verify.step} must certify the result.

    A step failing the legality or structure gate is a [UJ025] Error; a
    failed post-condition keeps its own rule id ([UJ020]–[UJ024]).  On
    success every step carries a human-readable note saying *why* it was
    legal — `ujc explain` and the seq search surface these. *)

open Ujam_ir

type step = {
  transform : Transform.t;
  after : Nest.t;  (** nest state after this step *)
  note : string;   (** why the step was legal *)
}

val legality :
  graph:Ujam_depend.Graph.t -> Transform.t -> (string, string) result
(** [Ok why] when the transform preserves every dependence of the graph's
    nest, [Error reason] otherwise.  The graph must be of the nest the
    transform is about to be applied to (flow/anti/output edges;
    input edges are irrelevant to legality and merely tolerated). *)

val apply_seq :
  ?graph:Ujam_depend.Graph.t ->
  Nest.t ->
  Transform.t list ->
  (Nest.t * step list, Diagnostic.t list) result
(** Run the sequence left to right with all three gates per step.
    [graph], if given, must be the dependence graph of the input nest
    and saves rebuilding it for the first step (later steps always
    rebuild on the intermediate nests).  The error payload is never
    empty and always contains at least one [Error]-severity
    diagnostic. *)

val transform_to_json : Transform.t -> Ujam_obs.Json.t
(** Structured rendering for reports:
    [{"pass": name, "spec": printed-form}]. *)
