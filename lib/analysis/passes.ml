open Ujam_ir
open Ujam_depend

type step = { transform : Transform.t; after : Nest.t; note : string }

(* ---- legality --------------------------------------------------------- *)

let lex_nonneg_shifted ~src_stmt ~dst_stmt dvec diff =
  (* Retimed distance d' = d + (r_dst - r_src); legal when it stays
     lexicographically non-negative, with ties broken by textual order
     (a zero distance needs the source to come first in the body). *)
  if Array.for_all (fun x -> x = 0) diff then Ok ()
  else if Array.exists (fun e -> e = Depvec.Star) dvec then
    Error "an unknown (Star) distance component cannot be retimed safely"
  else begin
    let d' =
      Array.mapi
        (fun k e -> match e with Depvec.Exact v -> v + diff.(k) | Depvec.Star -> 0)
        dvec
    in
    let rec scan k =
      if k = Array.length d' then
        if src_stmt <= dst_stmt then Ok ()
        else
          Error
            (Printf.sprintf
               "shifts make a dependence loop-independent against textual \
                order (stmt %d before stmt %d)"
               src_stmt dst_stmt)
      else if d'.(k) > 0 then Ok ()
      else if d'.(k) < 0 then
        Error
          (Printf.sprintf
             "a shifted distance goes lexicographically negative at level %d" k)
      else scan (k + 1)
    in
    scan 0
  end

let legality ~graph t =
  match (t : Transform.t) with
  | Transform.Unroll u ->
      if Safety.is_safe graph u then
        Ok
          (Printf.sprintf
             "unroll %s within every per-level safety cap: no carried \
              dependence is reversed by jamming"
             (Ujam_linalg.Vec.to_string u))
      else
        Error
          (Printf.sprintf
             "unroll %s exceeds a safety cap: a dependence carried by an \
              unrolled loop has a lexicographically negative inner suffix"
             (Ujam_linalg.Vec.to_string u))
  | Transform.Interchange perm ->
      if Safety.legal_permutation graph perm then
        Ok "permutation keeps every distance vector lexicographically non-negative"
      else Error "permutation would reverse a dependence"
  | Transform.Tile { levels; sizes } -> (
      (* Strip-mining never reorders iterations; the controller hoist is
         the permutation Tile performs on the strip-mined nest. *)
      match Tile.plan graph.Graph.nest ~levels ~sizes with
      | exception Invalid_argument reason -> Error reason
      | mined, hoist ->
          let mined_graph = Graph.build ~include_input:false mined in
          if Safety.legal_permutation mined_graph hoist then
            Ok
              "strip-mining preserves order; the controller hoist is a legal \
               permutation of the strip-mined nest"
          else Error "the controller hoist would reverse a dependence")
  | Transform.Skew s ->
      if Skew.is_unit_lower_triangular s then
        Ok
          "unit lower-triangular skew maps each distance d to S d, whose \
           leading nonzero component is d's — lexicographic order is \
           preserved by construction"
      else Error "skew matrix is not unit lower triangular"
  | Transform.Retime shifts ->
      let body_n = List.length (Nest.body graph.Graph.nest) in
      let d = Nest.depth graph.Graph.nest in
      if
        Array.length shifts <> body_n
        || Array.exists (fun r -> Array.length r <> d) shifts
      then Error "retiming needs one depth-sized shift vector per statement"
      else begin
        let bad =
          List.find_map
            (fun (e : Graph.edge) ->
              match e.Graph.kind with
              | Graph.Input -> None
              | Graph.Flow | Graph.Anti | Graph.Output -> (
                  let src_stmt = e.Graph.src.Site.stmt
                  and dst_stmt = e.Graph.dst.Site.stmt in
                  let diff =
                    Array.init d (fun k ->
                        shifts.(dst_stmt).(k) - shifts.(src_stmt).(k))
                  in
                  match
                    lex_nonneg_shifted ~src_stmt ~dst_stmt e.Graph.dvec diff
                  with
                  | Ok () -> None
                  | Error why -> Some why))
            graph.Graph.edges
        in
        match bad with
        | Some why -> Error why
        | None ->
            Ok
              "every cross-statement distance plus its shift difference stays \
               lexicographically non-negative"
      end

(* ---- the gated pipeline ----------------------------------------------- *)

let rejected ~i ~t ~nest ?loc reason =
  let loc = match loc with Some l -> l | None -> Loc.nest (Nest.name nest) in
  [ Diagnostic.make ~rule:"UJ025" ~severity:Diagnostic.Error ~loc
      (Printf.sprintf "sequence step %d (%s) rejected: %s" i
         (Transform.to_string t) reason) ]

let apply_seq ?graph nest steps =
  let rec go i nest graph acc = function
    | [] -> Ok (nest, List.rev acc)
    | t :: rest -> (
        let g =
          match graph with
          | Some g -> g
          | None -> Graph.build ~include_input:false nest
        in
        match legality ~graph:g t with
        | Error reason -> Error (rejected ~i ~t ~nest reason)
        | Ok note -> (
            match Transform.apply t nest with
            | Error { Transform.loc; reason } ->
                Error (rejected ~i ~t ~nest ~loc reason)
            | Ok nest' ->
                let diags = Verify.step ~original:nest t nest' in
                if List.exists Diagnostic.is_error diags then Error diags
                else
                  go (i + 1) nest' None
                    ({ transform = t; after = nest'; note } :: acc)
                    rest))
  in
  go 0 nest graph [] steps

let transform_to_json t =
  Ujam_obs.Json.Obj
    [ ("pass", Ujam_obs.Json.Str (Transform.name t));
      ("spec", Ujam_obs.Json.Str (Transform.to_string t)) ]
