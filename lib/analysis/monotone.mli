(** Register-table monotonicity: the soundness guard behind the pruned
    search.

    [Search.best] prunes the upward box above any vector whose register
    count exceeds the register file.  That is sound exactly when [R] is
    pointwise non-decreasing over the unroll space — an invariant the
    sweep-based table engine is supposed to deliver but that nothing
    checked at the point of use.  [check] certifies it in O(d·|U|)
    integer table lookups (compare each cell against its predecessor
    along every axis); [search] is the guarded entry point: pruned on a
    certified table, degraded to the exhaustive scan (with the
    violation reported as a [UJ010] warning) otherwise, so a broken
    table costs wall-clock time instead of returning a wrong vector. *)

open Ujam_linalg
open Ujam_core

type violation = {
  u : Vec.t;      (** the cell where monotonicity breaks *)
  axis : int;     (** the axis along which it breaks *)
  below : int;    (** value at [u - e_axis] *)
  at : int;       (** value at [u]; [at < below] *)
}

val check : Unroll_space.t -> (Vec.t -> int) -> violation option
(** First violation in lexicographic cell order (axes scanned in
    order), or [None] when [f] is pointwise non-decreasing. *)

val check_registers : Balance.t -> violation option
(** [check] on the prepared register table. *)

val diagnostic : nest:string -> violation -> Diagnostic.t
(** The [UJ010] warning describing the violation and the degradation. *)

val search : cache:bool -> Balance.t -> Search.choice * violation option
(** Guarded unroll search: [Search.best ~prune:true] when the register
    table certifies monotone, [Search.best ~prune:false] (plus the
    violation) when it does not.  Either way the returned choice is the
    true optimum of the table contents. *)
