open Ujam_ir
open Ujam_core
module Obs = Ujam_obs.Obs

let rules =
  [ ("UJ000", Diagnostic.Error, "parse failure");
    ("UJ001", Diagnostic.Error, "malformed IR: level order, bound depth, empty body");
    ("UJ002", Diagnostic.Warning, "loop with a non-positive constant trip count");
    ("UJ003", Diagnostic.Error, "subscript depth differs from the nest depth");
    ("UJ004", Diagnostic.Error, "non-unit loop step");
    ("UJ005", Diagnostic.Error, "subscript coefficient above the supported bound");
    ("UJ006", Diagnostic.Warning, "coupled (non-separable-SIV) subscripts");
    ("UJ007", Diagnostic.Info, "dependences with unknown (*) components");
    ("UJ008", Diagnostic.Warning, "search box clamped by the legality cap");
    ("UJ009", Diagnostic.Warning, "chosen unroll vector overflows the register file");
    ("UJ010", Diagnostic.Warning, "register table not monotone; search degraded");
    ("UJ011", Diagnostic.Info, "no floating-point work; balance undefined");
    ("UJ020", Diagnostic.Error, "unroll-and-jam changed the access multiset");
    ("UJ021", Diagnostic.Error, "interchange changed the access multiset");
    ("UJ022", Diagnostic.Error, "tiling changed the access multiset");
    ("UJ027", Diagnostic.Warning, "UGS reuse distance thrashes a cache level");
    ("UJ028", Diagnostic.Info, "no carried reuse fits a cache level");
    ("UJ029", Diagnostic.Warning, "chosen vector degrades a predicted miss ratio");
    ("UJ030", Diagnostic.Error, "invalid cache geometry in the machine description") ]

let error = Diagnostic.Error
let warning = Diagnostic.Warning
let info = Diagnostic.Info
let diag ~rule ~severity ?loc ?notes fmt =
  Format.kasprintf (fun m -> Diagnostic.make ~rule ~severity ?loc ?notes m) fmt

let of_parse_error (e : Parse.error) =
  Diagnostic.make ~rule:"UJ000" ~severity:error ~loc:e.Parse.loc e.Parse.message

(* ---- structure phase --------------------------------------------------- *)

let rule_structure nest =
  let name = Nest.name nest in
  let d = Nest.depth nest in
  let ds = ref [] in
  let emit x = ds := x :: !ds in
  Array.iteri
    (fun k (l : Loop.t) ->
      if l.Loop.level <> k then
        emit
          (diag ~rule:"UJ001" ~severity:error ~loc:(Loc.level ~nest:name k)
             "loop %s records level %d but sits at position %d" l.Loop.var
             l.Loop.level k);
      if Affine.depth l.Loop.lo <> d || Affine.depth l.Loop.hi <> d then
        emit
          (diag ~rule:"UJ001" ~severity:error ~loc:(Loc.level ~nest:name k)
             "loop %s: bound expressions have depth %d/%d, nest depth %d"
             l.Loop.var (Affine.depth l.Loop.lo) (Affine.depth l.Loop.hi) d))
    (Nest.loops nest);
  if Nest.body nest = [] then
    emit
      (diag ~rule:"UJ001" ~severity:error ~loc:(Loc.nest name)
         "nest has an empty body");
  List.rev !ds

let rule_trip nest =
  let name = Nest.name nest in
  Array.to_list (Nest.loops nest)
  |> List.filter_map (fun (l : Loop.t) ->
         match Loop.trip_const l with
         | Some t when t < 1 ->
             Some
               (diag ~rule:"UJ002" ~severity:warning
                  ~loc:(Loc.level ~nest:name l.Loop.level)
                  "loop %s runs %d iterations; the nest body is dead" l.Loop.var
                  t)
         | _ -> None)

let rule_subscript_depth nest =
  let name = Nest.name nest in
  let d = Nest.depth nest in
  List.filter_map
    (fun (s : Site.t) ->
      if Aref.depth s.Site.ref_ <> d then
        Some
          (diag ~rule:"UJ003" ~severity:error
             ~loc:(Loc.stmt ~nest:name ~site:s.Site.id s.Site.stmt)
             "%s subscripts range over %d loops, nest depth %d"
             (Aref.base s.Site.ref_) (Aref.depth s.Site.ref_) d)
      else None)
    (Site.of_nest nest)

let rule_supported nest =
  let name = Nest.name nest in
  let steps =
    Array.to_list (Nest.loops nest)
    |> List.filter_map (fun (l : Loop.t) ->
           if l.Loop.step <> 1 then
             Some
               (diag ~rule:"UJ004" ~severity:error
                  ~loc:(Loc.level ~nest:name l.Loop.level)
                  "loop %s has step %d; the supported class is unit-step"
                  l.Loop.var l.Loop.step)
           else None)
  in
  let coefs =
    List.concat_map
      (fun (s : Site.t) ->
        let (r : Aref.t) = s.Site.ref_ in
        List.concat
          (List.init (Aref.rank r) (fun i ->
               let sub = r.Aref.subs.(i) in
               Array.to_list sub.Affine.coefs
               |> List.filteri (fun _ c -> abs c > Supported.max_coefficient)
               |> List.map (fun c ->
                      diag ~rule:"UJ005" ~severity:error
                        ~loc:(Loc.stmt ~nest:name ~site:s.Site.id s.Site.stmt)
                        "%s: subscript %d uses coefficient %d (supported class \
                         allows |a| <= %d)"
                        (Aref.base r) i c Supported.max_coefficient))))
      (Site.of_nest nest)
  in
  steps @ coefs

let rule_coupled nest =
  let name = Nest.name nest in
  List.filter_map
    (fun (s : Site.t) ->
      if not (Aref.is_separable_siv s.Site.ref_) then
        Some
          (diag ~rule:"UJ006" ~severity:warning
             ~loc:(Loc.stmt ~nest:name ~site:s.Site.id s.Site.stmt)
             "%s has coupled subscripts; dependence distances may be \
              inconsistent (*) and over-constrain legality"
             (Aref.base s.Site.ref_))
      else None)
    (Site.of_nest nest)

let rule_flops nest =
  if Nest.body nest <> [] && Nest.flops_per_iteration nest = 0 then
    [ diag ~rule:"UJ011" ~severity:info ~loc:(Loc.nest (Nest.name nest))
        "no floating-point work: loop balance is undefined and unroll-and-jam \
         has nothing to improve" ]
  else []

let structure_phase nest =
  rule_structure nest @ rule_trip nest @ rule_subscript_depth nest
  @ rule_supported nest @ rule_coupled nest @ rule_flops nest

let check_supported = rule_supported

(* ---- analysis phase ---------------------------------------------------- *)

let rule_star ctx =
  let g = Analysis_ctx.graph ctx in
  let star =
    List.filter
      (fun (e : Ujam_depend.Graph.edge) ->
        Array.exists (fun c -> c = Ujam_depend.Depvec.Star) e.Ujam_depend.Graph.dvec)
      g.Ujam_depend.Graph.edges
  in
  if star = [] then []
  else
    let arrays =
      List.sort_uniq String.compare
        (List.map
           (fun (e : Ujam_depend.Graph.edge) ->
             Aref.base e.Ujam_depend.Graph.src.Site.ref_)
           star)
    in
    [ diag ~rule:"UJ007" ~severity:info
        ~loc:(Loc.nest (Nest.name (Analysis_ctx.nest ctx)))
        "%d dependence%s on %s carr%s unknown (*) components; legality uses \
         direction information only"
        (List.length star)
        (if List.length star = 1 then "" else "s")
        (String.concat ", " arrays)
        (if List.length star = 1 then "ies" else "y") ]

let rule_clamped ctx =
  let nest = Analysis_ctx.nest ctx in
  let name = Nest.name nest in
  let bound = Analysis_ctx.bound ctx in
  let safety = Analysis_ctx.safety ctx in
  List.filter_map
    (fun level ->
      if safety.(level) < bound then
        Some
          (diag ~rule:"UJ008" ~severity:warning ~loc:(Loc.level ~nest:name level)
             "search box at loop %s clamped to %d extra cop%s (requested %d) \
              by a carried dependence"
             (Nest.var_name nest level) safety.(level)
             (if safety.(level) = 1 then "y" else "ies")
             bound)
      else None)
    (Analysis_ctx.unroll_levels ctx)

(* The guarded search, shared by UJ009/UJ010 so it runs once. *)
let guarded_search ctx =
  Analysis_ctx.timed ctx Analysis_ctx.Search (fun () ->
      Monotone.search ~cache:true (Analysis_ctx.balance ctx))

let rule_search ctx (choice, violation) =
  let nest = Analysis_ctx.nest ctx in
  let name = Nest.name nest in
  let machine = Analysis_ctx.machine ctx in
  let pressure =
    if choice.Search.registers > machine.Ujam_machine.Machine.fp_registers then
      [ diag ~rule:"UJ009" ~severity:warning ~loc:(Loc.nest name)
          "chosen unroll vector %s wants %d floating-point registers; %s has \
           %d — scalar replacement will spill"
          (Ujam_linalg.Vec.to_string choice.Search.u)
          choice.Search.registers machine.Ujam_machine.Machine.name
          machine.Ujam_machine.Machine.fp_registers ]
    else []
  in
  let monotone =
    match violation with
    | None -> []
    | Some v -> [ Monotone.diagnostic ~nest:name v ]
  in
  pressure @ monotone

(* The miss-profile verdicts (UJ027-UJ029): judge the nest at the vector
   the guarded search chose, against every hierarchy level (or the one
   [level] selects). *)
let rule_cache ?level ctx (choice, _violation) =
  let nest = Analysis_ctx.nest ctx in
  let machine = Analysis_ctx.machine ctx in
  Cachecheck.diagnostics ?level ~u:choice.Search.u ~machine nest

let analysis_phase ?level ctx =
  let search = guarded_search ctx in
  rule_star ctx @ rule_clamped ctx @ rule_search ctx search
  @ rule_cache ?level ctx search

(* ---- driver ------------------------------------------------------------ *)

let finish ?rules:selected ds =
  let ds =
    match selected with
    | None -> ds
    | Some ids -> List.filter (fun (d : Diagnostic.t) -> List.mem d.Diagnostic.rule ids) ds
  in
  if Obs.enabled () then
    List.iter
      (fun (d : Diagnostic.t) ->
        Obs.Counter.incr (Obs.counter ("lint.rule." ^ d.Diagnostic.rule)))
      ds;
  List.stable_sort Diagnostic.compare ds

let run_ctx ?rules ?level ctx =
  let nest = Analysis_ctx.nest ctx in
  let machine = Analysis_ctx.machine ctx in
  let geometry = Cachecheck.geometry_diagnostics ~machine nest in
  let structure = structure_phase nest in
  let ds =
    if List.exists Diagnostic.is_error (geometry @ structure) then
      geometry @ structure
    else geometry @ structure @ analysis_phase ?level ctx
  in
  finish ?rules ds

let run ?rules ?level ?bound ?max_loops ~machine nest =
  let geometry = Cachecheck.geometry_diagnostics ~machine nest in
  let structure = structure_phase nest in
  let ds =
    if List.exists Diagnostic.is_error (geometry @ structure) then
      geometry @ structure
    else
      let ctx = Analysis_ctx.create ?bound ?max_loops ~machine nest in
      geometry @ structure @ analysis_phase ?level ctx
  in
  finish ?rules ds
