(** Transformation post-condition verifiers.

    Each verifier checks, symbolically (no interpretation, no
    simulation), that a transformed nest preserves the per-array access
    multisets of the original under the transformation's index map:

    - {!unroll}: unroll-and-jam by [u] must multiply each step by
      [u_k + 1], keep bounds, and replace the body by one shifted copy
      per offset [0 <= o <= u] — so the transformed reference multiset
      must equal the original's shifted by [o * step] for every offset.
    - {!interchange}: permuting loops permutes subscript coefficient
      columns and nothing else.
    - {!tile}: controller loops must never appear in subscripts, and
      deleting the controller dimensions must recover the original
      multiset exactly.

    - {!skew}: substituting [i' = S i] into the skewed nest must
      recover the original subscripts exactly and the original bounds
      up to the skew relabelling term — an independent derivation, not
      a re-run of the transformation.
    - {!retime}: loop headers untouched, and each transformed statement
      shifted *forward* by its shift vector must equal the original
      statement.

    A verified transform is the Huang–Meyer unrolling post-condition
    made checkable: the paper's tables predict counts *without*
    materialising code, and these checks certify that the code that
    eventually is materialised agrees with the model's index algebra.
    Failures are [UJ020]–[UJ024] Error diagnostics; an empty list means
    verified.  Every diagnostic carries the most precise {!Loc.t} known:
    loop-header problems point at the loop level, statement problems at
    the statement, and multiset-mismatch notes at the statement holding
    the missing (original) or unexpected (transformed) reference. *)

open Ujam_ir

val unroll : original:Nest.t -> u:Ujam_linalg.Vec.t -> Nest.t -> Diagnostic.t list
val interchange : original:Nest.t -> perm:int array -> Nest.t -> Diagnostic.t list

val tile :
  original:Nest.t -> levels:int list -> sizes:int list -> Nest.t -> Diagnostic.t list
(** [levels]/[sizes] as given to {!Ujam_ir.Tile.tile}. *)

val skew : original:Nest.t -> s:int array array -> Nest.t -> Diagnostic.t list
(** [s] as given to {!Ujam_ir.Skew.apply}; failures are [UJ023]. *)

val retime : original:Nest.t -> shifts:int array array -> Nest.t -> Diagnostic.t list
(** [shifts] as given to {!Ujam_ir.Retime.apply}; failures are [UJ024]. *)

val step : original:Nest.t -> Transform.t -> Nest.t -> Diagnostic.t list
(** Dispatch on the transform's constructor — the per-step gate
    [Passes.apply_seq] runs after every step. *)
