(** Transformation post-condition verifiers.

    Each verifier checks, symbolically (no interpretation, no
    simulation), that a transformed nest preserves the per-array access
    multisets of the original under the transformation's index map:

    - {!unroll}: unroll-and-jam by [u] must multiply each step by
      [u_k + 1], keep bounds, and replace the body by one shifted copy
      per offset [0 <= o <= u] — so the transformed reference multiset
      must equal the original's shifted by [o * step] for every offset.
    - {!interchange}: permuting loops permutes subscript coefficient
      columns and nothing else.
    - {!tile}: controller loops must never appear in subscripts, and
      deleting the controller dimensions must recover the original
      multiset exactly.

    A verified transform is the Huang–Meyer unrolling post-condition
    made checkable: the paper's tables predict counts *without*
    materialising code, and these checks certify that the code that
    eventually is materialised agrees with the model's index algebra.
    Failures are [UJ020]/[UJ021]/[UJ022] Error diagnostics; an empty
    list means verified. *)

open Ujam_ir

val unroll : original:Nest.t -> u:Ujam_linalg.Vec.t -> Nest.t -> Diagnostic.t list
val interchange : original:Nest.t -> perm:int array -> Nest.t -> Diagnostic.t list

val tile :
  original:Nest.t -> levels:int list -> sizes:int list -> Nest.t -> Diagnostic.t list
(** [levels]/[sizes] as given to {!Ujam_ir.Tile.tile}. *)
