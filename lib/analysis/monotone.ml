open Ujam_linalg
open Ujam_core
module Obs = Ujam_obs.Obs

let m_checks = Obs.counter "analysis.monotone.checks"
let m_degraded = Obs.counter "analysis.monotone.degraded"

type violation = { u : Vec.t; axis : int; below : int; at : int }

let check space f =
  let found = ref None in
  Unroll_space.iter space (fun u ->
      if !found = None then
        let d = Vec.dim u in
        let at = f u in
        for k = 0 to d - 1 do
          if !found = None && Vec.get u k > 0 then begin
            let below = f (Vec.set u k (Vec.get u k - 1)) in
            if at < below then found := Some { u; axis = k; below; at }
          end
        done);
  !found

let check_registers b =
  if Obs.enabled () then Obs.Counter.incr m_checks;
  check (Balance.space b) (Balance.registers b)

let diagnostic ~nest v =
  Diagnostic.make ~rule:"UJ010" ~severity:Diagnostic.Warning
    ~loc:(Ujam_ir.Loc.nest nest)
    (Printf.sprintf
       "register table is not pointwise non-decreasing: R%s = %d < R at the \
        cell below along axis %d (%d); pruned search is unsound here — \
        degraded to the exhaustive scan"
       (Vec.to_string v.u) v.at v.axis v.below)

let search ~cache b =
  match check_registers b with
  | None -> (Search.best ~prune:true ~cache b, None)
  | Some v ->
      if Obs.enabled () then Obs.Counter.incr m_degraded;
      (Search.best ~prune:false ~cache b, Some v)
