(** The rule engine: located diagnostics over a loop nest.

    Rules run in two phases.  {e Structure} rules need only the IR —
    level ordering, trip counts, subscript shape, the supported-class
    fence (steps and coefficient magnitudes), separability, flop
    presence.  {e Analysis} rules need the dependence graph and the
    balance tables — Star directions, safety clamping of the search
    box, register pressure, and the table-monotonicity guard — and are
    skipped when the structure phase reports any Error, because the
    analysis pipeline's own precondition is exactly "no structural
    error".  Consequently a supported, well-formed nest can only
    collect Warnings and Infos: zero Error diagnostics on a clean
    routine is part of the contract and pinned by the test suite.

    Rule catalogue (stable ids):

    - [UJ000] Error — parse failure (see {!of_parse_error}).
    - [UJ001] Error — malformed IR: loop levels out of order, bound
      depth mismatch, empty body.
    - [UJ002] Warning — a loop with a non-positive constant trip count.
    - [UJ003] Error — subscript depth differs from the nest depth.
    - [UJ004] Error — non-unit loop step (outside the supported class).
    - [UJ005] Error — subscript coefficient above
      {!Ujam_ir.Supported.max_coefficient}, located at the site.
    - [UJ006] Warning — coupled (non-separable-SIV) subscripts: the
      UGS model still counts them, but dependence distances may go
      inconsistent ([Star]) and cost more legality than necessary.
    - [UJ007] Info — dependences with unknown ([*]) components;
      legality falls back to direction information only.
    - [UJ008] Warning — the requested search box was clamped by
      {!Ujam_depend.Safety.max_safe_unroll} (a carried dependence caps
      the legal unroll below the requested bound).
    - [UJ009] Warning — register pressure: even the chosen unroll
      vector wants more floating-point registers than the machine has.
    - [UJ010] Warning — register-table monotonicity violation; the
      pruned search is degraded to the exhaustive scan (see
      {!Monotone}).
    - [UJ011] Info — no floating-point work; loop balance is undefined
      and unroll-and-jam has nothing to improve.

    - [UJ027] Warning — a UGS the nest loads heavily has its dominant
      reuse distance beyond a cache level's capacity at the chosen
      unroll vector (see {!Cachecheck}).
    - [UJ028] Info — no carried reuse fits a cache level: every reuse
      distance in the nest's profile exceeds that level's capacity.
    - [UJ029] Warning — the chosen unroll vector degrades a level's
      predicted miss ratio relative to the nest as written.
    - [UJ030] Error — invalid cache geometry in the machine
      description ({!Ujam_machine.Machine.validate_levels}); checked
      before both phases, and the only Error a well-formed nest on a
      well-formed machine can never collect.

    [UJ020]–[UJ022] (transformation post-conditions) are produced by
    {!Verify}, not by [run].  Every fired rule bumps the Obs counter
    [lint.rule.<id>]. *)

val rules : (string * Diagnostic.severity * string) list
(** The catalogue above as [(id, severity, one-line description)],
    in id order — the source of truth for [--rules] validation and the
    DESIGN.md table. *)

val run :
  ?rules:string list ->
  ?level:int ->
  ?bound:int ->
  ?max_loops:int ->
  machine:Ujam_machine.Machine.t ->
  Ujam_ir.Nest.t ->
  Diagnostic.t list
(** Run both phases over one nest.  [rules] restricts the output to
    the given ids (default: all); [level] restricts the miss-profile
    rules (UJ027–UJ029) to one 1-based hierarchy level.
    [bound]/[max_loops] shape the search box exactly as in
    {!Ujam_core.Analysis_ctx.create}, so UJ008/UJ009/UJ010 describe
    the same search the engine would run.  Diagnostics come back
    sorted by severity, then rule id, then location. *)

val run_ctx :
  ?rules:string list -> ?level:int -> Ujam_core.Analysis_ctx.t -> Diagnostic.t list
(** Same, reusing an existing context (and its memoised tables). *)

val check_supported : Ujam_ir.Nest.t -> Diagnostic.t list
(** Just the supported-class fence (UJ004/UJ005) — the located
    replacement for the boolean {!Ujam_ir.Supported.check} path. *)

val of_parse_error : Ujam_ir.Parse.error -> Diagnostic.t
(** A parse failure as a located [UJ000] Error. *)
