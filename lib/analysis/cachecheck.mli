(** Per-level miss-ratio prediction: fold the static reuse-distance
    profiles ({!Ujam_reuse.Distance}) of a nest — and optionally of its
    unroll-and-jammed form at a chosen vector — against every level of a
    machine's memory hierarchy, and surface the capacity verdicts as
    located diagnostics UJ027-UJ030.

    One code path renders the result: [pp_table] for [ujc explain]'s
    text output, [to_json] for its JSON, [diagnostics] for [ujc lint]. *)

open Ujam_linalg

type level_report = {
  level : Ujam_machine.Machine.Level.t;
  capacity_lines : float;
  predicted : float;  (** nest miss ratio: misses per reference *)
  floor : float;
      (** confident lower bound: only buckets clearing the capacity by
          {!confidence_slack} count (the distances are interval
          estimates, so knife-edge buckets may in truth fit) *)
  ceiling : float;
      (** confident upper bound: buckets within a {!confidence_slack}
          factor of the capacity on the near side also count — a
          knife-edge working set may in truth overflow *)
  per_ugs : (Ujam_reuse.Distance.profile * float) list;
      (** each UGS's profile (at this level's line) and predicted ratio *)
}

val confidence_slack : float

type t = {
  nest : string;
  machine : string;
  u : Vec.t option;
  original : level_report list;
  transformed : level_report list option;  (** at [u], when given *)
}

val run : ?u:Vec.t -> machine:Ujam_machine.Machine.t -> Ujam_ir.Nest.t -> t option
(** [None] when the nest's trip counts are not compile-time constant
    (the iteration box is unknown, so there is no closed form). *)

val diagnostics :
  ?level:int ->
  ?u:Vec.t ->
  machine:Ujam_machine.Machine.t ->
  Ujam_ir.Nest.t ->
  Diagnostic.t list
(** UJ027 (a UGS's dominant reuse distance exceeds a level it loads
    heavily), UJ028 (no carried reuse fits a level), UJ029 (the chosen
    vector degrades a level's predicted ratio), UJ030 (invalid machine
    geometry — the only Error, and the only rule that can fire on an
    unparseable hierarchy).  [level] restricts to one 1-based level. *)

val geometry_diagnostics :
  machine:Ujam_machine.Machine.t -> Ujam_ir.Nest.t -> Diagnostic.t list
(** Just the UJ030 geometry validation ({!Ujam_machine.Machine.validate_levels})
    as a located Error — runs even when the nest itself is unsupported. *)

val pp_table : Format.formatter -> t -> unit
val to_json : t -> Ujam_obs.Json.t

val predicted_ratios :
  t -> (Ujam_machine.Machine.Level.t * float * float * float) list
(** The original nest's per-level [(level, floor, predicted, ceiling)]
    intervals — what the oracle layer checks the hierarchy simulator
    against: the measured ratio must not sit far below [floor]
    (overprediction), nor far above [ceiling] at a level associative
    enough for the LRU-stack model to bound misses from above
    (underprediction at a direct-mapped level is conflict misses,
    outside the model). *)

val select_level : int -> t -> t
(** Restrict a report to one 1-based level (empty when out of range). *)
