open Ujam_ir
open Ujam_linalg
open Ujam_reuse
module Machine = Ujam_machine.Machine
module Json = Ujam_obs.Json

type level_report = {
  level : Machine.Level.t;
  capacity_lines : float;
  predicted : float;
  floor : float;
  ceiling : float;
  per_ugs : (Distance.profile * float) list;
}

(* Reuse distances are interval estimates; the confident [floor] only
   counts buckets clearing the capacity by this factor, the [ceiling]
   also counts buckets within a factor of it on the near side.  A
   working set sitting inside the [cap/1.4, cap*1.4] uncertainty band
   lands between the two bounds, so neither direction of the
   calibration oracle flags it. *)
let confidence_slack = 1.4

type t = {
  nest : string;
  machine : string;
  u : Vec.t option;
  original : level_report list;
  transformed : level_report list option;
}

let write_through (l : Machine.Level.t) =
  match l.Machine.Level.write with
  | Machine.Level.Write_through -> true
  | Machine.Level.Write_allocate -> false

(* Profiles are line-relative, so each level gets its own histogram pass
   (an L1 line and a TLB page are three orders of magnitude apart). *)
let report_levels ~levels nest =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | (l : Machine.Level.t) :: rest -> (
        match Distance.profiles ~line:l.Machine.Level.line nest with
        | None -> None
        | Some ps ->
            let capacity_lines =
              float_of_int (l.Machine.Level.size / l.Machine.Level.line)
            in
            let wt = write_through l in
            let per_ugs =
              List.map
                (fun p ->
                  (p, Distance.miss_ratio ~write_through:wt ~capacity_lines p))
                ps
            in
            let predicted =
              Distance.nest_miss_ratio ~write_through:wt ~capacity_lines ps
            in
            let floor =
              Distance.nest_miss_ratio ~write_through:wt ~slack:confidence_slack
                ~capacity_lines ps
            in
            let ceiling =
              Distance.nest_miss_ratio ~write_through:wt
                ~slack:(1.0 /. confidence_slack) ~capacity_lines ps
            in
            go
              ({ level = l; capacity_lines; predicted; floor; ceiling; per_ugs }
              :: acc)
              rest)
  in
  go [] levels

let run ?u ~machine nest =
  let levels = Machine.effective_levels machine in
  match report_levels ~levels nest with
  | None -> None
  | Some original ->
      let transformed =
        match u with
        | None -> None
        | Some u -> (
            match Unroll.unroll_and_jam nest (Unroll.clamp_divisible nest u) with
            | exception Invalid_argument _ -> None
            | jammed -> report_levels ~levels jammed)
      in
      Some
        { nest = Nest.name nest;
          machine = machine.Machine.name;
          u;
          original;
          transformed }

(* ---- located diagnostics UJ027-UJ030 ----------------------------------- *)

let diag ~rule ~severity ?loc ?notes fmt =
  Format.kasprintf (fun m -> Diagnostic.make ~rule ~severity ?loc ?notes m) fmt

let site_loc ~nest (p : Distance.profile) =
  match p.Distance.ugs.Ugs.members with
  | (s : Site.t) :: _ -> Loc.stmt ~nest ~site:s.Site.id s.Site.stmt
  | [] -> Loc.nest nest

let thrash_threshold = 0.33
let degrade_threshold = 0.1

let geometry_diagnostics ~machine nest =
  match Machine.validate_levels machine.Machine.levels with
  | Ok () -> []
  | Error e ->
      [ diag ~rule:"UJ030" ~severity:Diagnostic.Error
          ~loc:(Loc.nest (Nest.name nest))
          "machine %s: %s" machine.Machine.name (Machine.geometry_message e) ]

let level_diagnostics ~nest ?u report =
  let lname = report.level.Machine.Level.name in
  let at_u =
    match u with
    | None -> ""
    | Some u -> Printf.sprintf " at u=%s" (Vec.to_string u)
  in
  let thrash =
    List.filter_map
      (fun ((p : Distance.profile), ratio) ->
        match Distance.dominant_distance p with
        | Some dist
          when ratio >= thrash_threshold && dist >= report.capacity_lines ->
            Some
              (diag ~rule:"UJ027" ~severity:Diagnostic.Warning
                 ~loc:(site_loc ~nest p)
                 "UGS %s thrashes %s%s: predicted miss ratio %.2f vs capacity \
                  reuse distance %.1fx %s"
                 p.Distance.ugs.Ugs.base lname at_u ratio
                 (dist /. Float.max 1.0 report.capacity_lines)
                 lname)
        | _ -> None)
      report.per_ugs
  in
  let no_fit =
    let buckets =
      List.concat_map (fun (p, _) -> p.Distance.buckets) report.per_ugs
    in
    if
      buckets <> []
      && List.for_all
           (fun (b : Distance.bucket) ->
             b.Distance.distance >= report.capacity_lines)
           buckets
    then
      [ diag ~rule:"UJ028" ~severity:Diagnostic.Info ~loc:(Loc.nest nest)
          "no carried reuse fits %s%s: every reuse distance exceeds its %.0f \
           lines"
          lname at_u report.capacity_lines ]
    else []
  in
  thrash @ no_fit

let diagnostics ?level ?u ~machine nest =
  let geometry = geometry_diagnostics ~machine nest in
  if geometry <> [] then geometry
  else
    match run ?u ~machine nest with
    | None -> []
    | Some t ->
        let name = t.nest in
        let reports, reports_u =
          match t.transformed with
          | Some tr -> (t.original, tr)
          | None -> (t.original, t.original)
        in
        let select rs =
          match level with
          | None -> rs
          | Some k -> (
              match List.nth_opt rs (k - 1) with Some r -> [ r ] | None -> [])
        in
        let located =
          (* judge the nest as it will run: at the chosen vector when
             one is known, else as written *)
          List.concat_map
            (level_diagnostics ~nest:name ?u:t.u)
            (select (if t.transformed = None then reports else reports_u))
        in
        let degraded =
          List.concat
            (List.map2
               (fun orig tr ->
                 if tr.predicted -. orig.predicted > degrade_threshold then
                   [ diag ~rule:"UJ029" ~severity:Diagnostic.Warning
                       ~loc:(Loc.nest name)
                       "unroll-and-jam%s degrades the predicted %s miss \
                        ratio: %.2f -> %.2f"
                       (match t.u with
                       | Some u -> Printf.sprintf " at u=%s" (Vec.to_string u)
                       | None -> "")
                       orig.level.Machine.Level.name orig.predicted tr.predicted ]
                 else [])
               (select reports) (select reports_u))
        in
        located @ degraded

(* ---- rendering: one code path for ujc explain text and JSON ------------ *)

let pp_table ppf t =
  let open Format in
  let row reports =
    List.iter
      (fun r ->
        fprintf ppf "@,    %-4s %8.0f %9.3f  %s" r.level.Machine.Level.name
          r.capacity_lines r.predicted
          (String.concat ", "
             (List.map
                (fun ((p : Distance.profile), ratio) ->
                  Printf.sprintf "%s=%.3f" p.Distance.ugs.Ugs.base ratio)
                r.per_ugs)))
      reports
  in
  fprintf ppf "@[<v>  miss profile (%s):" t.machine;
  fprintf ppf "@,    lvl  cap(lin)  predicted  per-UGS";
  row t.original;
  (match (t.u, t.transformed) with
  | Some u, Some tr ->
      fprintf ppf "@,    at u=%s:" (Vec.to_string u);
      row tr
  | _ -> ());
  fprintf ppf "@]"

let level_report_to_json r =
  Json.Obj
    [ ("level", Json.Str r.level.Machine.Level.name);
      ("line", Json.Int r.level.Machine.Level.line);
      ("capacity_lines", Json.Float r.capacity_lines);
      ("predicted", Json.Float r.predicted);
      ( "per_ugs",
        Json.List
          (List.map
             (fun ((p : Distance.profile), ratio) ->
               Json.Obj
                 [ ("ugs", Json.Str p.Distance.ugs.Ugs.base);
                   ("accesses", Json.Float p.Distance.accesses);
                   ("cold", Json.Float p.Distance.cold);
                   ("predicted", Json.Float ratio) ])
             r.per_ugs) ) ]

let to_json t =
  Json.Obj
    ([ ("machine", Json.Str t.machine);
       ("levels", Json.List (List.map level_report_to_json t.original)) ]
    @
    match t.transformed with
    | Some tr ->
        [ ("levels_at_u", Json.List (List.map level_report_to_json tr)) ]
    | None -> [])

let predicted_ratios t =
  List.map (fun r -> (r.level, r.floor, r.predicted, r.ceiling)) t.original

let select_level k t =
  let pick rs =
    match List.nth_opt rs (k - 1) with Some r -> [ r ] | None -> []
  in
  { t with original = pick t.original; transformed = Option.map pick t.transformed }
