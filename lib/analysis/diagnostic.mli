(** Located diagnostics with stable rule ids.

    Every finding the analyzer produces — a lint rule firing, a failed
    transformation post-condition, a parse failure surfaced through the
    lint front end — is one of these: a stable rule id ([UJ001]...), a
    severity, a structured {!Ujam_ir.Loc.t} location, a message, and
    optional related notes (each itself located).  The id is the
    contract: tools filter and suppress by id, the rule catalogue in
    DESIGN.md section 10 documents them, and the JSON rendering is
    pinned by the cram suite. *)

type severity = Error | Warning | Info

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_rank : severity -> int
(** For ordering: [Error] 0, [Warning] 1, [Info] 2. *)

type t = {
  rule : string;  (** stable id, e.g. ["UJ005"] *)
  severity : severity;
  loc : Ujam_ir.Loc.t;
  message : string;
  notes : (Ujam_ir.Loc.t * string) list;
}

val make :
  rule:string ->
  severity:severity ->
  ?loc:Ujam_ir.Loc.t ->
  ?notes:(Ujam_ir.Loc.t * string) list ->
  string ->
  t

val is_error : t -> bool

val count : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val compare : t -> t -> int
(** Severity rank, then rule id, then location rendering — a
    deterministic report order independent of rule execution order. *)

val pp : Format.formatter -> t -> unit
(** One line per diagnostic ([severity id loc: message]) plus one
    indented line per note. *)

val to_json : t -> Ujam_obs.Json.t
val loc_to_json : Ujam_ir.Loc.t -> Ujam_obs.Json.t
