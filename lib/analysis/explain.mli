(** Model-degradation explain mode: {e why} did the analyzer pick (or
    refuse) an unroll vector for this nest?

    [run] assembles one report from the same memoised context the
    engine uses: supported status, coupled sites, Star dependences,
    the per-level legality caps and reuse ranking, the clamped search
    box, the monotonicity guard's verdict, and the chosen vector under
    the cache model (plus what the cache-less model would have chosen,
    to show whether the cache term mattered).  The [model] field names
    the effective search path:

    - ["unsupported"] — outside the supported class (or malformed);
      no table model applies and the nest is left alone.
    - ["trivial"] — supported, but every legal box is the single
      point [0]: legality (or a depth-1 nest) leaves nothing to
      unroll.
    - ["ugs"] — the paper's path: UGS tables + pruned search.
    - ["ugs-exhaustive"] — UGS tables, but the register table failed
      the monotonicity guard, so the pruned search was degraded to the
      exhaustive scan (see {!Monotone}).

    [reasons] collects the human-readable causes in rendering order;
    [diagnostics] carries the underlying located lint output. *)

open Ujam_linalg

type t = {
  nest : string;
  machine : string;
  depth : int;
  flops : int;                       (** per iteration *)
  supported : string option;         (** violation message when outside *)
  coupled_sites : int;
  star_edges : int;
  safety : int array;                (** per-level legality caps *)
  ranked : (int * float) list;       (** reuse ranking of outer levels *)
  unroll_levels : int list;
  box : int array;                   (** search-box bounds actually used *)
  clamped : (int * int) list;        (** (level, cap) where box < request *)
  monotone : Monotone.violation option;
  choice : Ujam_core.Search.choice option;          (** cache model *)
  choice_no_cache : Ujam_core.Search.choice option; (** cache-less model *)
  model : string;
  sequence : Passes.step list;
      (** legalizing prefix the seq search chose (with per-step
          why-legal notes); non-empty only with [~seq:true] *)
  reasons : string list;
  diagnostics : Diagnostic.t list;
  cache : Cachecheck.t option;
      (** per-level miss profile at the chosen vector ({!Cachecheck});
          [None] when unsupported or the iteration box is unknown *)
}

val run :
  ?bound:int ->
  ?max_loops:int ->
  ?level:int ->
  ?seq:bool ->
  machine:Ujam_machine.Machine.t ->
  Ujam_ir.Nest.t ->
  t
(** With [~seq:true] the report additionally runs
    {!Seqsearch.search}: a winning prefix switches [model] to
    ["ugs+seq"], fills [sequence], repoints [choice] at the legalized
    nest's vector, and adds the [UJ026] certificate to [diagnostics];
    otherwise a reason records why no prefix applied. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Ujam_obs.Json.t

val model_of : t -> string
(** [t.model]; exported for tests. *)

val choice_u : t -> Vec.t option
