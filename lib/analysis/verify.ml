open Ujam_ir
open Ujam_linalg

(* ---- shared helpers --------------------------------------------------- *)

(* A reference with its access kind; multisets are compared per kind so
   a read turning into a write cannot cancel out. *)
let tagged_refs nest =
  List.map
    (fun (r, k) -> ((if k = `Write then 1 else 0), r))
    (Nest.refs nest)

let sort_refs rs =
  List.sort
    (fun (ka, a) (kb, b) ->
      let c = Int.compare ka kb in
      if c <> 0 then c else Aref.compare a b)
    rs

let pp_ref nest (kind, r) =
  Format.asprintf "%s %a"
    (if kind = 1 then "write" else "read")
    (Aref.pp ~var_name:(Nest.var_name nest))
    r

(* Multiset difference: elements of [a] not matched in [b] (both sorted). *)
let rec unmatched a b =
  match (a, b) with
  | [], _ -> []
  | rest, [] -> rest
  | x :: xs, y :: ys ->
      let c =
        let (kx, rx), (ky, ry) = (x, y) in
        let c = Int.compare kx ky in
        if c <> 0 then c else Aref.compare rx ry
      in
      if c = 0 then unmatched xs ys
      else if c < 0 then x :: unmatched xs (y :: ys)
      else unmatched (x :: xs) ys

let fail ~rule ~nest ?(notes = []) fmt =
  Format.kasprintf
    (fun message ->
      [ Diagnostic.make ~rule ~severity:Diagnostic.Error
          ~loc:(Loc.nest (Nest.name nest)) ~notes message ])
    fmt

(* Compare transformed refs (mapped back into the original index space
   by [map_back]) against an expected multiset over the original space. *)
let check_multisets ~rule ~pp_nest ~label original_refs mapped =
  let expected = sort_refs original_refs in
  let actual = sort_refs mapped in
  if List.equal (fun (ka, a) (kb, b) -> ka = kb && Aref.equal a b) expected actual
  then []
  else begin
    let missing = unmatched expected actual
    and extra = unmatched actual expected in
    let take n l = List.filteri (fun i _ -> i < n) l in
    let notes =
      List.map
        (fun r -> (Loc.none, "missing " ^ pp_ref pp_nest r))
        (take 3 missing)
      @ List.map
          (fun r -> (Loc.none, "unexpected " ^ pp_ref pp_nest r))
          (take 3 extra)
    in
    fail ~rule ~nest:pp_nest ~notes
      "%s does not preserve the per-array access multiset (%d expected, %d \
       found; %d missing, %d unexpected)"
      label (List.length expected) (List.length actual) (List.length missing)
      (List.length extra)
  end

(* ---- unroll-and-jam --------------------------------------------------- *)

let unroll ~original ~u transformed =
  let rule = "UJ020" in
  let d = Nest.depth original in
  if Vec.dim u <> d then
    fail ~rule ~nest:original "unroll vector has dimension %d, nest depth %d"
      (Vec.dim u) d
  else if Nest.depth transformed <> d then
    fail ~rule ~nest:original
      "unroll-and-jam changed the nest depth (%d -> %d)" d
      (Nest.depth transformed)
  else begin
    let orig_loops = Nest.loops original and tr_loops = Nest.loops transformed in
    let loop_problems =
      List.concat
        (List.init d (fun k ->
             let o = orig_loops.(k) and t = tr_loops.(k) in
             let want_step = o.Loop.step * (Vec.get u k + 1) in
             if t.Loop.var <> o.Loop.var then
               fail ~rule ~nest:original
                 "loop %d renamed (%s -> %s) by unroll-and-jam" k o.Loop.var
                 t.Loop.var
             else if t.Loop.step <> want_step then
               fail ~rule ~nest:original
                 "loop %s: step %d after unrolling by %d copies (expected %d)"
                 o.Loop.var t.Loop.step (Vec.get u k + 1) want_step
             else if
               not
                 (Affine.equal t.Loop.lo o.Loop.lo
                 && Affine.equal t.Loop.hi o.Loop.hi)
             then
               fail ~rule ~nest:original
                 "loop %s: bounds changed by unroll-and-jam" o.Loop.var
             else []))
    in
    if loop_problems <> [] then loop_problems
    else begin
      let copies = Ujam_core.Unroll_space.copies u in
      let body_n = List.length (Nest.body original) in
      if List.length (Nest.body transformed) <> copies * body_n then
        fail ~rule ~nest:original
          "body has %d statements after unrolling (expected %d copies x %d)"
          (List.length (Nest.body transformed))
          copies body_n
      else begin
        let expected =
          List.concat_map
            (fun o ->
              let shift =
                Array.init d (fun k -> Vec.get o k * orig_loops.(k).Loop.step)
              in
              List.map
                (fun (kind, r) -> (kind, Aref.shift r shift))
                (tagged_refs original))
            (Unroll.offsets u)
        in
        check_multisets ~rule ~pp_nest:original ~label:"unroll-and-jam" expected
          (tagged_refs transformed)
      end
    end
  end

(* ---- interchange ------------------------------------------------------ *)

let interchange ~original ~perm transformed =
  let rule = "UJ021" in
  let d = Nest.depth original in
  if Array.length perm <> d || Nest.depth transformed <> d then
    fail ~rule ~nest:original
      "permutation rank %d does not match nest depths (%d -> %d)"
      (Array.length perm) d (Nest.depth transformed)
  else begin
    let orig_loops = Nest.loops original and tr_loops = Nest.loops transformed in
    let renamed =
      List.concat
        (List.init d (fun k ->
             let o = orig_loops.(perm.(k)) and t = tr_loops.(k) in
             if t.Loop.var <> o.Loop.var || t.Loop.step <> o.Loop.step then
               fail ~rule ~nest:original
                 "new level %d should run loop %s (step %d); found %s (step %d)"
                 k o.Loop.var o.Loop.step t.Loop.var t.Loop.step
             else []))
    in
    if renamed <> [] then renamed
    else begin
      (* transformed coefs.(k) came from original coefs.(perm.(k)); undo *)
      let unpermute (a : Affine.t) =
        let coefs = Array.make d 0 in
        Array.iteri (fun k old -> coefs.(old) <- a.Affine.coefs.(k)) perm;
        Affine.make ~coefs ~const:a.Affine.const
      in
      let mapped =
        List.map
          (fun (kind, (r : Aref.t)) ->
            (kind, { r with Aref.subs = Array.map unpermute r.Aref.subs }))
          (tagged_refs transformed)
      in
      check_multisets ~rule ~pp_nest:original ~label:"interchange"
        (tagged_refs original) mapped
    end
  end

(* ---- tiling ----------------------------------------------------------- *)

let tile ~original ~levels ~sizes transformed =
  let rule = "UJ022" in
  let d = Nest.depth original in
  let m = List.length levels in
  if List.length sizes <> m then
    fail ~rule ~nest:original "levels and sizes do not pair up"
  else if Nest.depth transformed <> d + m then
    fail ~rule ~nest:original
      "tiling %d levels should deepen the nest %d -> %d; found depth %d" m d
      (d + m)
      (Nest.depth transformed)
  else begin
    (* Controllers land first, in ascending original-level order; the
       remaining positions run the original loops in order. *)
    let pairs = List.sort compare (List.combine levels sizes) in
    let orig_loops = Nest.loops original and tr_loops = Nest.loops transformed in
    let ctrl_problems =
      List.concat
        (List.mapi
           (fun i (level, size) ->
             let o = orig_loops.(level) and t = tr_loops.(i) in
             let want_var = Tile.controller_var o.Loop.var in
             if t.Loop.var <> want_var then
               fail ~rule ~nest:original
                 "controller %d should be %s; found %s" i want_var t.Loop.var
             else if t.Loop.step <> size * o.Loop.step then
               fail ~rule ~nest:original
                 "controller %s: step %d (expected tile size %d x step %d)"
                 t.Loop.var t.Loop.step size o.Loop.step
             else [])
           pairs)
    in
    let elt_problems =
      List.concat
        (List.init d (fun j ->
             let o = orig_loops.(j) and t = tr_loops.(m + j) in
             if t.Loop.var <> o.Loop.var || t.Loop.step <> o.Loop.step then
               fail ~rule ~nest:original
                 "level %d should still run loop %s (step %d); found %s (step \
                  %d)"
                 (m + j) o.Loop.var o.Loop.step t.Loop.var t.Loop.step
             else []))
    in
    if ctrl_problems <> [] || elt_problems <> [] then
      ctrl_problems @ elt_problems
    else begin
      (* Subscripts must ignore the controllers; dropping the controller
         dimensions recovers the original index space. *)
      let bad_ctrl = ref [] in
      let project (a : Affine.t) =
        Array.iteri
          (fun k c ->
            if k < m && c <> 0 && not (List.mem k !bad_ctrl) then
              bad_ctrl := k :: !bad_ctrl)
          a.Affine.coefs;
        Affine.make
          ~coefs:(Array.init d (fun j -> a.Affine.coefs.(m + j)))
          ~const:a.Affine.const
      in
      let mapped =
        List.map
          (fun (kind, (r : Aref.t)) ->
            (kind, { r with Aref.subs = Array.map project r.Aref.subs }))
          (tagged_refs transformed)
      in
      if !bad_ctrl <> [] then
        fail ~rule ~nest:original
          "a subscript references controller loop(s) %s — tiling must not \
           change the accessed elements"
          (String.concat ","
             (List.map string_of_int (List.sort compare !bad_ctrl)))
      else
        check_multisets ~rule ~pp_nest:original ~label:"tiling"
          (tagged_refs original) mapped
    end
  end
