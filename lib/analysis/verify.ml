open Ujam_ir
open Ujam_linalg

(* ---- shared helpers --------------------------------------------------- *)

(* A reference with its access kind and the location of the statement it
   sits in; multisets are compared per kind so a read turning into a
   write cannot cancel out, and every mismatch note can point at the
   statement that produced the offending reference. *)
let located_refs nest =
  let name = Nest.name nest in
  List.concat
    (List.mapi
       (fun j stmt ->
         let loc = Loc.stmt ~nest:name j in
         List.map (fun r -> (0, r, loc)) (Stmt.reads stmt)
         @ List.map (fun r -> (1, r, loc)) (Stmt.writes stmt))
       (Nest.body nest))

let sort_refs rs =
  List.sort
    (fun (ka, a, _) (kb, b, _) ->
      let c = Int.compare ka kb in
      if c <> 0 then c else Aref.compare a b)
    rs

let pp_ref nest (kind, r, _) =
  Format.asprintf "%s %a"
    (if kind = 1 then "write" else "read")
    (Aref.pp ~var_name:(Nest.var_name nest))
    r

(* Multiset difference: elements of [a] not matched in [b] (both sorted);
   locations ride along and do not take part in matching. *)
let rec unmatched a b =
  match (a, b) with
  | [], _ -> []
  | rest, [] -> rest
  | x :: xs, y :: ys ->
      let c =
        let (kx, rx, _), (ky, ry, _) = (x, y) in
        let c = Int.compare kx ky in
        if c <> 0 then c else Aref.compare rx ry
      in
      if c = 0 then unmatched xs ys
      else if c < 0 then x :: unmatched xs (y :: ys)
      else unmatched (x :: xs) ys

let fail ~rule ~nest ?loc ?(notes = []) fmt =
  let loc =
    match loc with Some l -> l | None -> Loc.nest (Nest.name nest)
  in
  Format.kasprintf
    (fun message ->
      [ Diagnostic.make ~rule ~severity:Diagnostic.Error ~loc ~notes message ])
    fmt

(* Compare transformed refs (mapped back into the original index space
   by the caller) against an expected multiset over the original space.
   Both sides carry statement locations: a missing reference points at
   the original statement, an unexpected one at the transformed. *)
let check_multisets ~rule ~pp_nest ~label expected_refs mapped =
  let expected = sort_refs expected_refs in
  let actual = sort_refs mapped in
  if
    List.equal
      (fun (ka, a, _) (kb, b, _) -> ka = kb && Aref.equal a b)
      expected actual
  then []
  else begin
    let missing = unmatched expected actual
    and extra = unmatched actual expected in
    let take n l = List.filteri (fun i _ -> i < n) l in
    let note tag ((_, _, loc) as r) = (loc, tag ^ " " ^ pp_ref pp_nest r) in
    let notes =
      List.map (note "missing") (take 3 missing)
      @ List.map (note "unexpected") (take 3 extra)
    in
    fail ~rule ~nest:pp_nest ~notes
      "%s does not preserve the per-array access multiset (%d expected, %d \
       found; %d missing, %d unexpected)"
      label (List.length expected) (List.length actual) (List.length missing)
      (List.length extra)
  end

(* ---- unroll-and-jam --------------------------------------------------- *)

let unroll ~original ~u transformed =
  let rule = "UJ020" in
  let d = Nest.depth original in
  let nest_name = Nest.name original in
  if Vec.dim u <> d then
    fail ~rule ~nest:original "unroll vector has dimension %d, nest depth %d"
      (Vec.dim u) d
  else if Nest.depth transformed <> d then
    fail ~rule ~nest:original
      "unroll-and-jam changed the nest depth (%d -> %d)" d
      (Nest.depth transformed)
  else begin
    let orig_loops = Nest.loops original and tr_loops = Nest.loops transformed in
    let loop_problems =
      List.concat
        (List.init d (fun k ->
             let o = orig_loops.(k) and t = tr_loops.(k) in
             let loc = Loc.level ~nest:nest_name k in
             let want_step = o.Loop.step * (Vec.get u k + 1) in
             if t.Loop.var <> o.Loop.var then
               fail ~rule ~nest:original ~loc
                 "loop %d renamed (%s -> %s) by unroll-and-jam" k o.Loop.var
                 t.Loop.var
             else if t.Loop.step <> want_step then
               fail ~rule ~nest:original ~loc
                 "loop %s: step %d after unrolling by %d copies (expected %d)"
                 o.Loop.var t.Loop.step (Vec.get u k + 1) want_step
             else if
               not
                 (Affine.equal t.Loop.lo o.Loop.lo
                 && Affine.equal t.Loop.hi o.Loop.hi)
             then
               fail ~rule ~nest:original ~loc
                 "loop %s: bounds changed by unroll-and-jam" o.Loop.var
             else []))
    in
    if loop_problems <> [] then loop_problems
    else begin
      let copies = Ujam_core.Unroll_space.copies u in
      let body_n = List.length (Nest.body original) in
      if List.length (Nest.body transformed) <> copies * body_n then
        fail ~rule ~nest:original
          "body has %d statements after unrolling (expected %d copies x %d)"
          (List.length (Nest.body transformed))
          copies body_n
      else begin
        let expected =
          List.concat_map
            (fun o ->
              let shift =
                Array.init d (fun k -> Vec.get o k * orig_loops.(k).Loop.step)
              in
              List.map
                (fun (kind, r, loc) -> (kind, Aref.shift r shift, loc))
                (located_refs original))
            (Unroll.offsets u)
        in
        check_multisets ~rule ~pp_nest:original ~label:"unroll-and-jam" expected
          (located_refs transformed)
      end
    end
  end

(* ---- interchange ------------------------------------------------------ *)

let interchange ~original ~perm transformed =
  let rule = "UJ021" in
  let d = Nest.depth original in
  let nest_name = Nest.name original in
  if Array.length perm <> d || Nest.depth transformed <> d then
    fail ~rule ~nest:original
      "permutation rank %d does not match nest depths (%d -> %d)"
      (Array.length perm) d (Nest.depth transformed)
  else begin
    let orig_loops = Nest.loops original and tr_loops = Nest.loops transformed in
    let renamed =
      List.concat
        (List.init d (fun k ->
             let o = orig_loops.(perm.(k)) and t = tr_loops.(k) in
             if t.Loop.var <> o.Loop.var || t.Loop.step <> o.Loop.step then
               fail ~rule ~nest:original ~loc:(Loc.level ~nest:nest_name k)
                 "new level %d should run loop %s (step %d); found %s (step %d)"
                 k o.Loop.var o.Loop.step t.Loop.var t.Loop.step
             else []))
    in
    if renamed <> [] then renamed
    else begin
      (* transformed coefs.(k) came from original coefs.(perm.(k)); undo *)
      let unpermute (a : Affine.t) =
        let coefs = Array.make d 0 in
        Array.iteri (fun k old -> coefs.(old) <- a.Affine.coefs.(k)) perm;
        Affine.make ~coefs ~const:a.Affine.const
      in
      let mapped =
        List.map
          (fun (kind, (r : Aref.t), loc) ->
            (kind, { r with Aref.subs = Array.map unpermute r.Aref.subs }, loc))
          (located_refs transformed)
      in
      check_multisets ~rule ~pp_nest:original ~label:"interchange"
        (located_refs original) mapped
    end
  end

(* ---- tiling ----------------------------------------------------------- *)

let tile ~original ~levels ~sizes transformed =
  let rule = "UJ022" in
  let d = Nest.depth original in
  let nest_name = Nest.name original in
  let m = List.length levels in
  if List.length sizes <> m then
    fail ~rule ~nest:original "levels and sizes do not pair up"
  else if Nest.depth transformed <> d + m then
    fail ~rule ~nest:original
      "tiling %d levels should deepen the nest %d -> %d; found depth %d" m d
      (d + m)
      (Nest.depth transformed)
  else begin
    (* Controllers land first, in ascending original-level order; the
       remaining positions run the original loops in order. *)
    let pairs = List.sort compare (List.combine levels sizes) in
    let orig_loops = Nest.loops original and tr_loops = Nest.loops transformed in
    let ctrl_problems =
      List.concat
        (List.mapi
           (fun i (level, size) ->
             let o = orig_loops.(level) and t = tr_loops.(i) in
             let loc = Loc.level ~nest:nest_name i in
             let want_var = Tile.controller_var o.Loop.var in
             if t.Loop.var <> want_var then
               fail ~rule ~nest:original ~loc
                 "controller %d should be %s; found %s" i want_var t.Loop.var
             else if t.Loop.step <> size * o.Loop.step then
               fail ~rule ~nest:original ~loc
                 "controller %s: step %d (expected tile size %d x step %d)"
                 t.Loop.var t.Loop.step size o.Loop.step
             else [])
           pairs)
    in
    let elt_problems =
      List.concat
        (List.init d (fun j ->
             let o = orig_loops.(j) and t = tr_loops.(m + j) in
             if t.Loop.var <> o.Loop.var || t.Loop.step <> o.Loop.step then
               fail ~rule ~nest:original ~loc:(Loc.level ~nest:nest_name (m + j))
                 "level %d should still run loop %s (step %d); found %s (step \
                  %d)"
                 (m + j) o.Loop.var o.Loop.step t.Loop.var t.Loop.step
             else []))
    in
    if ctrl_problems <> [] || elt_problems <> [] then
      ctrl_problems @ elt_problems
    else begin
      (* Subscripts must ignore the controllers; dropping the controller
         dimensions recovers the original index space. *)
      let bad_ctrl = ref [] in
      let project (a : Affine.t) =
        Array.iteri
          (fun k c ->
            if k < m && c <> 0 && not (List.mem k !bad_ctrl) then
              bad_ctrl := k :: !bad_ctrl)
          a.Affine.coefs;
        Affine.make
          ~coefs:(Array.init d (fun j -> a.Affine.coefs.(m + j)))
          ~const:a.Affine.const
      in
      let mapped =
        List.map
          (fun (kind, (r : Aref.t), loc) ->
            (kind, { r with Aref.subs = Array.map project r.Aref.subs }, loc))
          (located_refs transformed)
      in
      if !bad_ctrl <> [] then
        fail ~rule ~nest:original
          "a subscript references controller loop(s) %s — tiling must not \
           change the accessed elements"
          (String.concat ","
             (List.map string_of_int (List.sort compare !bad_ctrl)))
      else
        check_multisets ~rule ~pp_nest:original ~label:"tiling"
          (located_refs original) mapped
    end
  end

(* ---- skewing ---------------------------------------------------------- *)

let skew ~original ~s transformed =
  let rule = "UJ023" in
  let d = Nest.depth original in
  let nest_name = Nest.name original in
  if
    Array.length s <> d
    || not (Skew.is_unit_lower_triangular s)
  then
    fail ~rule ~nest:original
      "skew matrix is not unit lower triangular of the nest depth (%d)" d
  else if Nest.depth transformed <> d then
    fail ~rule ~nest:original "skewing changed the nest depth (%d -> %d)" d
      (Nest.depth transformed)
  else begin
    (* Substituting [i' = S i] must recover the original index algebra:
       for subscripts exactly, for the bound of level [k] up to the skew
       term [(row_k(S) - e_k) · i] that relabelling adds. *)
    let rows_of_s =
      Array.init d (fun k -> Affine.make ~coefs:(Array.copy s.(k)) ~const:0)
    in
    let back (a : Affine.t) = Affine.subst a rows_of_s in
    let orig_loops = Nest.loops original and tr_loops = Nest.loops transformed in
    let loop_problems =
      List.concat
        (List.init d (fun k ->
             let o = orig_loops.(k) and t = tr_loops.(k) in
             let loc = Loc.level ~nest:nest_name k in
             let skew_term =
               Affine.make
                 ~coefs:(Array.init d (fun j -> s.(k).(j) - if j = k then 1 else 0))
                 ~const:0
             in
             if t.Loop.var <> o.Loop.var then
               fail ~rule ~nest:original ~loc "loop %d renamed (%s -> %s) by skewing"
                 k o.Loop.var t.Loop.var
             else if t.Loop.step <> o.Loop.step then
               fail ~rule ~nest:original ~loc "loop %s: step changed by skewing"
                 o.Loop.var
             else if
               not
                 (Affine.equal (back t.Loop.lo) (Affine.add o.Loop.lo skew_term)
                 && Affine.equal (back t.Loop.hi) (Affine.add o.Loop.hi skew_term))
             then
               fail ~rule ~nest:original ~loc
                 "loop %s: bounds do not relabel the original iteration space \
                  under the skew"
                 o.Loop.var
             else []))
    in
    if loop_problems <> [] then loop_problems
    else begin
      let mapped =
        List.map
          (fun (kind, (r : Aref.t), loc) ->
            (kind, { r with Aref.subs = Array.map back r.Aref.subs }, loc))
          (located_refs transformed)
      in
      check_multisets ~rule ~pp_nest:original ~label:"skewing"
        (located_refs original) mapped
    end
  end

(* ---- retiming --------------------------------------------------------- *)

let retime ~original ~shifts transformed =
  let rule = "UJ024" in
  let d = Nest.depth original in
  let nest_name = Nest.name original in
  let body = Nest.body original and body' = Nest.body transformed in
  if
    Array.length shifts <> List.length body
    || Array.exists (fun r -> Array.length r <> d) shifts
  then
    fail ~rule ~nest:original
      "retiming needs one depth-%d shift vector per statement (%d given for \
       %d statements)"
      d (Array.length shifts) (List.length body)
  else if Nest.depth transformed <> d then
    fail ~rule ~nest:original "retiming changed the nest depth (%d -> %d)" d
      (Nest.depth transformed)
  else begin
    let orig_loops = Nest.loops original and tr_loops = Nest.loops transformed in
    let loop_problems =
      List.concat
        (List.init d (fun k ->
             let o = orig_loops.(k) and t = tr_loops.(k) in
             if
               t.Loop.var <> o.Loop.var || t.Loop.step <> o.Loop.step
               || not
                    (Affine.equal t.Loop.lo o.Loop.lo
                    && Affine.equal t.Loop.hi o.Loop.hi)
             then
               fail ~rule ~nest:original ~loc:(Loc.level ~nest:nest_name k)
                 "loop %s changed by retiming (headers must be untouched)"
                 o.Loop.var
             else []))
    in
    if loop_problems <> [] then loop_problems
    else if List.length body' <> List.length body then
      fail ~rule ~nest:original
        "retiming changed the statement count (%d -> %d)" (List.length body)
        (List.length body')
    else
      List.concat
        (List.mapi
           (fun j (orig_stmt, tr_stmt) ->
             (* Undo the shift: statement [j] moved by [-r_j] iterations,
                so shifting the transformed statement by [+r_j * step]
                must give back the original exactly. *)
             let forward =
               Array.init d (fun k -> shifts.(j).(k) * orig_loops.(k).Loop.step)
             in
             if Stmt.equal (Stmt.shift tr_stmt forward) orig_stmt then []
             else
               fail ~rule ~nest:original ~loc:(Loc.stmt ~nest:nest_name j)
                 "statement %d is not the original delayed by its shift vector"
                 j)
           (List.combine body body'))
  end

(* ---- sequence-step dispatcher ----------------------------------------- *)

let step ~original t transformed =
  match (t : Transform.t) with
  | Transform.Unroll u -> unroll ~original ~u transformed
  | Transform.Interchange perm -> interchange ~original ~perm transformed
  | Transform.Tile { levels; sizes } -> tile ~original ~levels ~sizes transformed
  | Transform.Skew s -> skew ~original ~s transformed
  | Transform.Retime shifts -> retime ~original ~shifts transformed
