open Ujam_ir
open Ujam_core
open Ujam_depend
module Obs = Ujam_obs.Obs

let m_engaged = Obs.counter "seq.engaged"
let m_candidates = Obs.counter "seq.candidates"
let m_legalized = Obs.counter "seq.legalized"

type outcome = {
  baseline : Search.choice;
  sequence : Passes.step list;
  nest : Nest.t;
  choice : Search.choice;
  candidates : int;
  diagnostics : Diagnostic.t list;
}

(* ---- candidate derivation from the dependence cone -------------------- *)

let exact_dvec (e : Graph.edge) =
  let ok = ref true in
  let d =
    Array.map
      (function
        | Depvec.Exact v -> v
        | Depvec.Star ->
            ok := false;
            0)
      e.Graph.dvec
  in
  if !ok then Some d else None

(* An edge caps the unroll of its carried level [l] when some deeper
   component is negative (the lexicographically negative suffix of the
   safety rule).  Each such (l, k) corner of the dependence cone
   suggests the elementary skew rotating the suffix up to non-negative:
   level [k] by [ceil(-d_k / d_l)] copies of level [l]. *)
let skew_candidates graph =
  let depth = Nest.depth graph.Graph.nest in
  let wanted = Hashtbl.create 8 in
  List.iter
    (fun (e : Graph.edge) ->
      match (e.Graph.kind, exact_dvec e) with
      | Graph.Input, _ | _, None -> ()
      | _, Some d -> (
          match Depvec.carried_level e.Graph.dvec with
          | None -> ()
          | Some l ->
              for k = l + 1 to depth - 1 do
                if d.(k) < 0 && d.(l) > 0 then begin
                  (* smallest factor making d_k + f*d_l >= 0 *)
                  let f = (-d.(k) + d.(l) - 1) / d.(l) in
                  let prev =
                    Option.value ~default:0 (Hashtbl.find_opt wanted (l, k))
                  in
                  Hashtbl.replace wanted (l, k) (max prev f)
                end
              done))
    graph.Graph.edges;
  Hashtbl.fold
    (fun (l, k) f acc ->
      (* Factors above the supported-class coefficient cap would push
         the skewed subscripts out of the modelled class; skip them. *)
      if f >= 1 && f <= Supported.max_coefficient then
        Transform.Skew (Skew.elementary ~depth ~target:k ~source:l ~factor:f)
        :: acc
      else acc)
    wanted []
  |> List.sort (fun a b -> compare (Transform.to_string a) (Transform.to_string b))

(* Per-statement shifts making every exact cross-statement distance
   componentwise non-negative — stronger than the lexicographic
   condition the gate checks, but a simple difference-constraint
   fixpoint (Bellman–Ford on x_dst - x_src >= -d per level). *)
let retime_candidate graph =
  let nest = graph.Graph.nest in
  let depth = Nest.depth nest in
  let n = List.length (Nest.body nest) in
  if n < 2 then None
  else begin
    let cross =
      List.filter_map
        (fun (e : Graph.edge) ->
          match (e.Graph.kind, exact_dvec e) with
          | Graph.Input, _ | _, None -> None
          | _, Some d ->
              let s = e.Graph.src.Site.stmt and t = e.Graph.dst.Site.stmt in
              if s = t then None else Some (s, t, d))
        graph.Graph.edges
    in
    if not (List.exists (fun (_, _, d) -> Array.exists (fun v -> v < 0) d) cross)
    then None
    else begin
      let shifts = Array.init n (fun _ -> Array.make depth 0) in
      let changed = ref true and rounds = ref 0 and cyclic = ref false in
      while !changed && not !cyclic do
        changed := false;
        incr rounds;
        List.iter
          (fun (s, t, d) ->
            for k = 0 to depth - 1 do
              let need = shifts.(s).(k) - d.(k) in
              if shifts.(t).(k) < need then begin
                shifts.(t).(k) <- need;
                changed := true
              end
            done)
          cross;
        if !rounds > n then cyclic := true
      done;
      if !cyclic || Array.for_all (Array.for_all (fun v -> v = 0)) shifts then
        None
      else Some (Transform.Retime shifts)
    end
  end

let candidates graph =
  skew_candidates graph @ Option.to_list (retime_candidate graph)

(* ---- the search ------------------------------------------------------- *)

(* Engage only when legality truncates the searchable space: some outer
   level is fully fenced (zero legal copies).  Cheap — needs only the
   dependence graph, no tables. *)
let fence_binds ctx =
  let safety = Analysis_ctx.safety ctx in
  let d = Array.length safety in
  d >= 2
  &&
  let binds = ref false in
  for k = 0 to d - 2 do
    if safety.(k) = 0 then binds := true
  done;
  !binds

let cap_str c = if c = max_int then "inf" else string_of_int c
let caps_str caps = String.concat "," (Array.to_list (Array.map cap_str caps))

let search ?(bound = 10) ?(max_loops = 2) ?(cache = true) ?(max_candidates = 12)
    ~machine nest =
  let ctx0 = Analysis_ctx.create ~bound ~max_loops ~machine nest in
  let baseline = Search.best ~cache (Analysis_ctx.balance ctx0) in
  let unchanged =
    { baseline; sequence = []; nest; choice = baseline; candidates = 0;
      diagnostics = [] }
  in
  if not (fence_binds ctx0) then unchanged
  else begin
    Obs.Counter.incr m_engaged;
    let graph0 = Analysis_ctx.graph ctx0 in
    (* Depth 1: prefixes from the original cone; depth 2: extend each
       structurally viable prefix with candidates derived from the
       *transformed* nest's cone. *)
    let singles = List.map (fun t -> [ t ]) (candidates graph0) in
    let extend seq =
      match Passes.apply_seq ~graph:graph0 nest seq with
      | Error _ -> []
      | Ok (nest', _) ->
          let g' = Graph.build ~include_input:false nest' in
          List.map (fun t -> seq @ [ t ]) (candidates g')
    in
    let pairs = List.concat_map extend singles in
    let take n l = List.filteri (fun i _ -> i < n) l in
    let all = take max_candidates (singles @ pairs) in
    let n_cands = List.length all in
    Obs.Counter.add m_candidates n_cands;
    (* Score each viable prefix: gate the whole sequence, keep the
       result only if it stays in the supported class, then run the
       pruned table search on the transformed nest. *)
    let scored =
      List.filter_map
        (fun seq ->
          match Passes.apply_seq ~graph:graph0 nest seq with
          | Error _ -> None
          | Ok (nest', trace) -> (
              match Supported.check nest' with
              | Error _ -> None
              | Ok () -> (
                  let ctx' =
                    Analysis_ctx.create ~bound ~max_loops ~machine nest'
                  in
                  match Search.best ~cache (Analysis_ctx.balance ctx') with
                  | choice -> Some (seq, nest', trace, choice)
                  | exception _ -> None)))
        all
    in
    let best =
      List.fold_left
        (fun acc ((_, _, _, choice) as cand) ->
          match acc with
          | Some (_, _, _, (b : Search.choice))
            when b.Search.objective <= choice.Search.objective +. 1e-9 ->
              acc
          | _ -> Some cand)
        None scored
    in
    match best with
    | Some (seq, nest', trace, choice)
      when choice.Search.objective +. 1e-9 < baseline.Search.objective ->
        Obs.Counter.incr m_legalized;
        let loc = Loc.nest (Nest.name nest) in
        let notes =
          List.map (fun (st : Passes.step) -> (loc, st.Passes.note)) trace
        in
        let caps_after =
          Safety.max_safe_unroll (Graph.build ~include_input:false nest')
        in
        let info =
          Diagnostic.make ~rule:"UJ026" ~severity:Diagnostic.Info ~loc ~notes
            (Printf.sprintf
               "legalized by %s: objective %.4f -> %.4f, safety caps %s -> %s"
               (String.concat "; " (List.map Transform.to_string seq))
               baseline.Search.objective choice.Search.objective
               (caps_str (Analysis_ctx.safety ctx0))
               (caps_str caps_after))
        in
        { baseline; sequence = trace; nest = nest'; choice;
          candidates = n_cands; diagnostics = [ info ] }
    | _ -> { unchanged with candidates = n_cands }
  end

let steps_json steps =
  Ujam_obs.Json.List
    (List.map
       (fun (st : Passes.step) ->
         match Passes.transform_to_json st.Passes.transform with
         | Ujam_obs.Json.Obj fields ->
             Ujam_obs.Json.Obj
               (fields @ [ ("why", Ujam_obs.Json.Str st.Passes.note) ])
         | other -> other)
       steps)
