(** Search over short legalizing transformation prefixes.

    The safety rule caps the unroll of a level at [d_l - 1] when a
    dependence it carries has a lexicographically negative suffix —
    a recurrence like [A(I,J) = A(I-1,J+1)] fences the outer loop
    completely ([d = (1,-1)], cap 0) and the engine degrades to the
    untransformed nest.  This module derives, from the dependence cone
    itself, the short skew/retime prefixes that straighten such
    distances, gates each through {!Passes.apply_seq} (legality +
    structure + {!Verify}), scores the survivors with the same balance
    tables and pruned search the engine uses, and keeps a prefix only
    when its objective strictly beats the untransformed baseline.

    Candidates (ISSUE 6's depth-≤2 enumeration):
    - an elementary skew per capping cone corner [(l, k)]: level [k] by
      [ceil(-d_k / d_l)] copies of level [l], factors above the
      supported-class coefficient cap discarded;
    - one retiming from the componentwise difference-constraint solve
      over cross-statement edges;
    - each single prefix extended once by the candidates of the
      transformed nest's own cone.

    The search engages only when {!fence_binds} — some outer level has
    zero legal copies; everything else costs one graph inspection. *)

open Ujam_ir
open Ujam_core

type outcome = {
  baseline : Search.choice;     (** pruned search on the original nest *)
  sequence : Passes.step list;  (** chosen prefix with why-legal notes;
                                    empty when no prefix improved *)
  nest : Nest.t;                (** the legalized nest ([= input] when
                                    [sequence] is empty) *)
  choice : Search.choice;       (** pruned search on [nest] *)
  candidates : int;             (** prefixes enumerated *)
  diagnostics : Diagnostic.t list;
      (** one [UJ026] Info (with per-step notes) when a prefix won *)
}

val fence_binds : Analysis_ctx.t -> bool
(** Some non-innermost level has safety cap 0. *)

val candidates : Ujam_depend.Graph.t -> Transform.t list
(** The depth-1 candidate transforms for this cone (exposed for tests
    and [ujc explain]). *)

val search :
  ?bound:int ->
  ?max_loops:int ->
  ?cache:bool ->
  ?max_candidates:int ->
  machine:Ujam_machine.Machine.t ->
  Nest.t ->
  outcome
(** Defaults match {!Ujam_core.Driver.optimize}: [bound] 10,
    [max_loops] 2, [cache] true; [max_candidates] (default 12) bounds
    the enumeration. *)

val steps_json : Passes.step list -> Ujam_obs.Json.t
(** [[{"pass": .., "spec": .., "why": ..}, ...]] — the rendering the
    engine and [ujc] embed in reports. *)
