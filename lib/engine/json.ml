(* The JSON representation now lives in [Ujam_obs.Json] (the
   observability layer sits below every other library and needs it for
   traces and metric dumps); re-export it here so engine/oracle callers
   and the pinned CLI formats are untouched. *)

include Ujam_obs.Json

let of_vec v = List (List.map (fun x -> Int x) (Ujam_linalg.Vec.to_list v))
