type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  (* JSON has no Infinity/NaN literals; the balance of a flop-free nest
     is infinite, so render non-finite values as null. *)
  if Float.is_finite f then
    let s = Printf.sprintf "%.6g" f in
    (* "%.6g" may yield "1e+06"-style exponents, valid JSON as-is. *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"
  else "null"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let of_vec v = List (List.map (fun x -> Int x) (Ujam_linalg.Vec.to_list v))
