open Ujam_core

module type MODEL = sig
  val name : string
  val description : string

  val cache : bool
  (** Whether the strategy's balance includes the cache-miss term (used
      to evaluate the original loop under the same objective). *)

  val prunes : bool
  (** Whether [analyze] uses the pruned register-bound search, i.e.
      depends on the register table being pointwise monotone. *)

  val analyze : ?exhaustive:bool -> Analysis_ctx.t -> Search.choice
end

(* The dependence-based and brute-force baselines report their own
   metrics record; fold it into the common choice shape so all four
   strategies are interchangeable downstream. *)
let choice_of_metrics ~machine ~cache (u, (m : Bruteforce.metrics)) =
  let beta_m = Ujam_machine.Machine.balance machine in
  let balance =
    if cache then m.Bruteforce.balance_cache else m.Bruteforce.balance_nocache
  in
  { Search.u;
    balance;
    objective = Float.abs (balance -. beta_m);
    registers = m.Bruteforce.registers;
    memory_ops = m.Bruteforce.memory_ops;
    flops = m.Bruteforce.flops }

module Ugs_tables = struct
  let name = "ugs"
  let description = "UGS tables + balance search (the paper's model)"
  let cache = true
  let prunes = true

  let analyze ?(exhaustive = false) ctx =
    let balance = Analysis_ctx.balance ctx in
    Analysis_ctx.timed ctx Analysis_ctx.Search (fun () ->
        Search.best ~prune:(not exhaustive) ~cache balance)
end

module No_cache = struct
  let name = "no-cache"
  let description = "UGS tables under the all-hits Carr-Kennedy balance"
  let cache = false
  let prunes = true

  let analyze ?(exhaustive = false) ctx =
    let balance = Analysis_ctx.balance ctx in
    Analysis_ctx.timed ctx Analysis_ctx.Search (fun () ->
        Search.best ~prune:(not exhaustive) ~cache balance)
end

module Dep_based = struct
  let name = "dep"
  let description = "dependence-graph reuse model (Carr PACT'96 baseline)"
  let cache = true
  let prunes = false

  let analyze ?exhaustive:_ ctx =
    let machine = Analysis_ctx.machine ctx in
    let space = Analysis_ctx.space ctx in
    let nest = Analysis_ctx.nest ctx in
    Analysis_ctx.timed ctx Analysis_ctx.Search (fun () ->
        choice_of_metrics ~machine ~cache
          (Depmodel.best ~cache ~machine space nest))
end

module Brute_force = struct
  let name = "brute"
  let description = "materialise every unrolled body (Wolf-Maydan-Chen)"
  let cache = true
  let prunes = false

  let analyze ?exhaustive:_ ctx =
    let machine = Analysis_ctx.machine ctx in
    let space = Analysis_ctx.space ctx in
    let nest = Analysis_ctx.nest ctx in
    Analysis_ctx.timed ctx Analysis_ctx.Search (fun () ->
        choice_of_metrics ~machine ~cache
          (Bruteforce.best ~cache ~machine space nest))
end

(* UGS tables with the balance priced at one hierarchy level (the
   tables are line-independent, see [Balance.misses_with]); falls back
   to the deepest available level when the machine is shallower. *)
let at_level k : (module MODEL) =
  (module struct
    let name = Printf.sprintf "ugs-l%d" k
    let description =
      Printf.sprintf "UGS tables, balance priced at hierarchy level %d" k
    let cache = true
    let prunes = true

    let analyze ?(exhaustive = false) ctx =
      let machine = Analysis_ctx.machine ctx in
      let levels = Ujam_machine.Machine.effective_levels machine in
      let level =
        match Ujam_machine.Machine.level_at machine k with
        | Some l -> l
        | None -> List.nth levels (List.length levels - 1)
      in
      let balance = Analysis_ctx.balance ctx in
      Analysis_ctx.timed ctx Analysis_ctx.Search (fun () ->
          Search.best ~prune:(not exhaustive) ~level ~cache balance)
  end)

module Ugs_l2 = (val at_level 2)

let all : (module MODEL) list =
  [ (module Ugs_tables); (module Dep_based); (module Brute_force);
    (module No_cache); (module Ugs_l2) ]

let name (module M : MODEL) = M.name

let names = List.map name all

let find s =
  let s = String.lowercase_ascii s in
  let canonical =
    match s with
    | "ugs" | "ugs-tables" | "tables" -> Some "ugs"
    | "dep" | "dep-based" | "dependence" -> Some "dep"
    | "brute" | "brute-force" | "bruteforce" -> Some "brute"
    | "no-cache" | "nocache" | "carr-kennedy" -> Some "no-cache"
    | "ugs-l2" | "l2" -> Some "ugs-l2"
    | _ -> None
  in
  Option.bind canonical (fun c ->
      List.find_opt (fun (module M : MODEL) -> String.equal M.name c) all)
