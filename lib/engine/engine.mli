(** The unified selection pipeline.

    One entry point analyzes a nest with any registered strategy
    ({!Model.MODEL}) over a shared {!Ujam_core.Analysis_ctx};
    {!run_corpus} scales that to routine batches on an OCaml 5
    domain-based work queue with deterministic result ordering — the
    report for routine [i] lands in slot [i] whatever the domain count,
    so 1-domain and N-domain runs render byte-identically.  Failures
    degrade to per-routine {!Error.t} records; the batch always
    completes. *)

open Ujam_linalg

type nest_report = {
  nest_name : string;
  model : string;
  u : Vec.t;                 (** chosen unroll vector *)
  balance_before : float;
  balance_after : float;
  objective : float;         (** |beta_L - beta_M| at the choice *)
  registers : int;
  memory_ops : int;
  flops : int;
  speedup : float;           (** modelled cycles before / after *)
  sequence : Ujam_analysis.Passes.step list;
      (** legalizing transformation prefix chosen by the [seq] search
          (with per-step why-legal notes); empty unless [~seq:true]
          found a strict improvement, and omitted from {!pp}/JSON when
          empty *)
  diagnostics : Ujam_analysis.Diagnostic.t list;
      (** analyzer findings attached to this nest (e.g. the [UJ010]
          monotonicity-guard degradation); empty on a clean run and
          omitted from {!pp}/JSON when empty *)
}

type nest_outcome = (nest_report, Error.t) result

type routine_report = { routine : string; nests : nest_outcome list }

type corpus_report = {
  model : string;
  domains : int;
  bound : int;
  routines : routine_report array;  (** input order, one slot per routine *)
  ok : int;
  failed : int;
  deduped : int;
      (** nests answered by copying a canonical-class representative's
          outcome instead of re-analyzing (0 unless [~dedup:true]);
          omitted from {!pp}/{!to_json} when 0 *)
  timings : Ujam_core.Analysis_ctx.timings;  (** summed per-stage counters *)
  elapsed_s : float;
}

val analyze :
  ?bound:int ->
  ?max_loops:int ->
  ?model:(module Model.MODEL) ->
  ?seq:bool ->
  machine:Ujam_machine.Machine.t ->
  ?routine:string ->
  Ujam_ir.Nest.t ->
  nest_outcome
(** Analyze one nest ([bound] defaults to 4, [model] to
    {!Model.Ugs_tables}).  With [~seq:true], a binding safety fence
    first triggers {!Ujam_analysis.Seqsearch}: if a short verified
    skew/retime prefix strictly improves the objective, the pipeline
    runs on the legalized nest and the report carries the sequence plus
    its [UJ026] certificate.  Never raises on unsupported input: the
    outcome carries a typed {!Error.t} instead. *)

val analyze_cached :
  cache:nest_outcome Result_cache.t ->
  ?op:string ->
  ?bound:int ->
  ?max_loops:int ->
  ?model:(module Model.MODEL) ->
  ?seq:bool ->
  machine:Ujam_machine.Machine.t ->
  ?routine:string ->
  Ujam_ir.Nest.t ->
  nest_outcome * bool
(** {!analyze} behind a {!Result_cache}: the outcome plus whether it was
    served from the cache.  The key is {!Result_cache.fingerprint} of
    the full option tuple, so hits are exact re-asks of one problem
    (possibly under another nest name — the returned report and any
    error record carry {e this} call's [routine]/nest name, making the
    hit and miss paths render identically).  Not thread-safe: confine
    one cache to one thread of control. *)

val memo_clear : unit -> unit
(** Empty the process-wide outcome memo.  Every analysis entry point
    consults a fingerprint-keyed LRU memo of {e clean} Ok outcomes
    (no diagnostics, no sequence — anything name-bearing recomputes),
    so repeated problems cost a digest lookup.  Benchmarks clear it
    between timed runs to keep measurements independent. *)

val memo_stats : unit -> Result_cache.stats
(** Hit/miss/size counters of the outcome memo since process start or
    the last {!memo_clear}. *)

val parallel_map :
  ?domains:int -> f:(domain:int -> 'a -> 'b) -> 'a array -> 'b array
(** The engine's deterministic work queue on its own: run [f] over the
    jobs on [domains] OCaml 5 domains (default 1, clamped to the job
    count), slotting result [i] from job [i] whatever the interleaving.
    [f] receives the worker-domain index so callers can keep per-domain
    accumulators ({!run_corpus} threads its timing counters this way);
    the oracle's fuzz loop batches nest checks on the same queue. *)

val run_corpus :
  ?domains:int ->
  ?bound:int ->
  ?max_loops:int ->
  ?model:(module Model.MODEL) ->
  ?seq:bool ->
  ?dedup:bool ->
  machine:Ujam_machine.Machine.t ->
  Ujam_workload.Generator.routine list ->
  corpus_report
(** Analyze a routine batch on [domains] parallel domains (default 1).
    Results are slotted by input index, so the rendered report is
    independent of the domain count; the timing counters are the only
    run-dependent fields and are excluded from {!pp}/{!to_json} unless
    requested.  With [~dedup:true], nests sharing a
    {!Ujam_ir.Canon.digest} are analyzed once — duplicates receive the
    representative's outcome under their own names, and the report's
    [deduped] field counts the skipped analyses. *)

val routines_of_catalogue :
  ?n:int -> unit -> Ujam_workload.Generator.routine list
(** The 19 Table-2 kernels wrapped as single-nest routines. *)

val pp : Format.formatter -> corpus_report -> unit
val pp_nest_outcome : Format.formatter -> nest_outcome -> unit
val pp_timings : Format.formatter -> corpus_report -> unit
val to_string : corpus_report -> string

val nest_outcome_to_json : nest_outcome -> Json.t
val to_json : ?timings:bool -> corpus_report -> Json.t
