open Ujam_ir
module Diagnostic = Ujam_analysis.Diagnostic

type stage = Validate | Parse | Graph | Tables | Search | Transform | Sim | Native

type t = {
  stage : stage;
  routine : string;
  message : string;
  diagnostics : Diagnostic.t list;
}

let make ~stage ~routine ?(diagnostics = []) message =
  { stage; routine; message; diagnostics }

let stage_name = function
  | Validate -> "validate"
  | Parse -> "parse"
  | Graph -> "graph"
  | Tables -> "tables"
  | Search -> "search"
  | Transform -> "transform"
  | Sim -> "sim"
  | Native -> "native"

let pp ppf e =
  Format.fprintf ppf "ERROR [%s] %s: %s" (stage_name e.stage) e.routine
    e.message;
  List.iter
    (fun d -> Format.fprintf ppf "@,  %a" Diagnostic.pp d)
    e.diagnostics

let to_string e = Format.asprintf "%a" pp e

let guard ~stage ~routine f =
  match f () with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (make ~stage ~routine msg)
  | exception Failure msg -> Error (make ~stage ~routine msg)
  | exception Not_found -> Error (make ~stage ~routine "internal lookup failed")
  | exception Stack_overflow -> Error (make ~stage ~routine "stack overflow")

(* The supported subscript class is defined once, in the IR layer
   ({!Ujam_ir.Supported}), so the workload generator and the oracle agree
   with the engine on what "supported" means; here a violation becomes a
   typed Validate error instead of feeding the lattice solvers inputs
   they do not model. *)
let max_coefficient = Supported.max_coefficient

let check_supported ~routine nest =
  match Supported.check nest with
  | Ok () -> Ok ()
  | Error message ->
      (* The boolean fence stays the source of truth; the lint rules
         re-locate each violation (UJ004/UJ005) for the report. *)
      let diagnostics = Ujam_analysis.Lint.check_supported nest in
      Error (make ~stage:Validate ~routine ~diagnostics message)
