open Ujam_ir

type stage = Validate | Parse | Graph | Tables | Search | Transform | Sim

type t = { stage : stage; routine : string; message : string }

let make ~stage ~routine message = { stage; routine; message }

let stage_name = function
  | Validate -> "validate"
  | Parse -> "parse"
  | Graph -> "graph"
  | Tables -> "tables"
  | Search -> "search"
  | Transform -> "transform"
  | Sim -> "sim"

let pp ppf e =
  Format.fprintf ppf "ERROR [%s] %s: %s" (stage_name e.stage) e.routine e.message

let to_string e = Format.asprintf "%a" pp e

let guard ~stage ~routine f =
  match f () with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (make ~stage ~routine msg)
  | exception Failure msg -> Error (make ~stage ~routine msg)
  | exception Not_found -> Error (make ~stage ~routine "internal lookup failed")
  | exception Stack_overflow -> Error (make ~stage ~routine "stack overflow")

(* The reuse model covers the paper's subscript class (Sec. 3.5): affine
   subscripts over unit-step loops, with the doubled (multigrid
   restriction/interpolation) stride as the largest modelled coefficient.
   Anything beyond that is rejected up front with a typed error instead
   of feeding the lattice solvers inputs they do not model. *)
let max_coefficient = 2

let check_supported ~routine nest =
  let err message = Error (make ~stage:Validate ~routine message) in
  let bad_step =
    Array.find_opt (fun (l : Loop.t) -> l.Loop.step <> 1) (Nest.loops nest)
  in
  match bad_step with
  | Some l ->
      err
        (Printf.sprintf "%s: loop %s has step %d; only unit-step loops are modelled"
           (Nest.name nest) l.Loop.var l.Loop.step)
  | None ->
      let bad_ref =
        List.find_opt
          (fun ((r : Aref.t), _) ->
            Array.exists
              (fun (s : Affine.t) ->
                Array.exists (fun c -> abs c > max_coefficient) s.Affine.coefs)
              r.Aref.subs)
          (Nest.refs nest)
      in
      (match bad_ref with
      | Some (r, _) ->
          err
            (Printf.sprintf
               "%s: subscript of %s has a coefficient beyond the modelled stride \
                range (|c| <= %d)"
               (Nest.name nest) (Aref.base r) max_coefficient)
      | None -> Ok ())
