open Ujam_linalg
open Ujam_ir
open Ujam_core
module Obs = Ujam_obs.Obs
module Diagnostic = Ujam_analysis.Diagnostic

(* Engine metrics: no-ops until the observability sink is enabled. *)
let m_nests_ok = Obs.counter "engine.nests.ok"
let m_nests_failed = Obs.counter "engine.nests.failed"
let m_routines = Obs.counter "engine.jobs.claimed"
let m_steals = Obs.counter "engine.jobs.stolen"
let g_queue = Obs.gauge "engine.queue.remaining"
let h_routine = Obs.histogram "engine.routine_s"

let h_graph = Obs.histogram "engine.stage.graph_s"
let h_tables = Obs.histogram "engine.stage.tables_s"
let h_search = Obs.histogram "engine.stage.search_s"
let h_sim = Obs.histogram "engine.stage.sim_s"

type nest_report = {
  nest_name : string;
  model : string;
  u : Vec.t;
  balance_before : float;
  balance_after : float;
  objective : float;
  registers : int;
  memory_ops : int;
  flops : int;
  speedup : float;
  sequence : Ujam_analysis.Passes.step list;
  diagnostics : Diagnostic.t list;
}

type nest_outcome = (nest_report, Error.t) result

type routine_report = { routine : string; nests : nest_outcome list }

type corpus_report = {
  model : string;
  domains : int;
  bound : int;
  routines : routine_report array;
  ok : int;
  failed : int;
  deduped : int;
  timings : Analysis_ctx.timings;
  elapsed_s : float;
}

let default_model : (module Model.MODEL) = (module Model.Ugs_tables)

let outcome_with_name ~routine nest outcome =
  match outcome with
  | Ok r -> Ok { r with nest_name = Nest.name nest }
  | Error e -> Error { e with Error.routine }

(* Process-wide outcome memo, keyed by the content fingerprint.  With
   hash-consed nests the digest inside the fingerprint is an O(1)
   memo hit, so asking "have we solved this problem already?" costs a
   hash lookup — repeated structures across a corpus, a fuzz run, or a
   serve session are analyzed once per process (LRU-bounded).

   Only {e clean} Ok outcomes are memoized: diagnostics and sequence
   notes embed the originating nest's name, which must not leak into a
   different nest's report ([outcome_with_name] patches the top-level
   name only).  Errors also recompute — they are rare and carry
   routine-specific context.  Guarded by its own mutex ([Result_cache]
   itself is not thread-safe). *)

let memo_lock = Mutex.create ()
let memo : nest_outcome Result_cache.t = Result_cache.create ~capacity:8192 ()

let memo_find key =
  Mutex.lock memo_lock;
  let r = Result_cache.find memo key in
  Mutex.unlock memo_lock;
  r

let memo_store key v =
  Mutex.lock memo_lock;
  Result_cache.store memo key v;
  Mutex.unlock memo_lock

let memo_clear () =
  Mutex.lock memo_lock;
  Result_cache.clear memo;
  Mutex.unlock memo_lock

let memo_stats () =
  Mutex.lock memo_lock;
  let s = Result_cache.stats memo in
  Mutex.unlock memo_lock;
  s

let add_timings (acc : Analysis_ctx.timings) (t : Analysis_ctx.timings) =
  acc.Analysis_ctx.graph_s <- acc.Analysis_ctx.graph_s +. t.Analysis_ctx.graph_s;
  acc.Analysis_ctx.tables_s <- acc.Analysis_ctx.tables_s +. t.Analysis_ctx.tables_s;
  acc.Analysis_ctx.search_s <- acc.Analysis_ctx.search_s +. t.Analysis_ctx.search_s;
  acc.Analysis_ctx.sim_s <- acc.Analysis_ctx.sim_s +. t.Analysis_ctx.sim_s

let analyze_fresh ?into ~bound ~max_loops ~model ~seq ~machine ~routine nest =
  let module M = (val model : Model.MODEL) in
  let ( let* ) = Result.bind in
  let outcome =
    let* () = Error.check_supported ~routine nest in
    let guard stage f = Error.guard ~stage ~routine f in
    (* Sequence mode: when the safety fence binds, look for a short
       skew/retime prefix that legalizes more of the unroll space; the
       rest of the pipeline then runs on the legalized nest, carrying
       the chosen steps (and their UJ026 certificate) in the report. *)
    let* legalized =
      if not seq then Ok None
      else
        guard Error.Search (fun () ->
            let o =
              Ujam_analysis.Seqsearch.search ~bound ~max_loops ~machine nest
            in
            if o.Ujam_analysis.Seqsearch.sequence = [] then None else Some o)
    in
    let target, sequence, seq_diags =
      match legalized with
      | None -> (nest, [], [])
      | Some o ->
          ( o.Ujam_analysis.Seqsearch.nest,
            o.Ujam_analysis.Seqsearch.sequence,
            o.Ujam_analysis.Seqsearch.diagnostics )
    in
    let ctx = Analysis_ctx.create ~bound ~max_loops ~machine target in
    let result =
      let* _safety = guard Error.Graph (fun () -> Analysis_ctx.safety ctx) in
      let* balance = guard Error.Tables (fun () -> Analysis_ctx.balance ctx) in
      (* Monotonicity guard: strategies that prune the search box rely
         on the register table being pointwise non-decreasing.  Certify
         it (O(d*|U|) lookups); on failure degrade that strategy to the
         exhaustive scan and surface the violation as a UJ010 warning
         instead of risking a wrong vector. *)
      let* violation =
        if M.prunes then
          guard Error.Search (fun () ->
              Ujam_analysis.Monotone.check_registers balance)
        else Ok None
      in
      let* choice =
        guard Error.Search (fun () ->
            M.analyze ~exhaustive:(violation <> None) ctx)
      in
      let* original =
        guard Error.Search (fun () ->
            Search.evaluate ~cache:M.cache balance
              (Vec.zero (Nest.depth target)))
      in
      let* speedup =
        guard Error.Search (fun () ->
            Driver.speedup ~machine balance ~original ~choice)
      in
      Ok
        { nest_name = Nest.name nest;
          model = M.name;
          u = choice.Search.u;
          balance_before = original.Search.balance;
          balance_after = choice.Search.balance;
          objective = choice.Search.objective;
          registers = choice.Search.registers;
          memory_ops = choice.Search.memory_ops;
          flops = choice.Search.flops;
          speedup;
          sequence;
          diagnostics =
            (seq_diags
            @
            match violation with
            | Some v ->
                [ Ujam_analysis.Monotone.diagnostic ~nest:(Nest.name nest) v ]
            | None -> []) }
    in
    Option.iter (fun acc -> add_timings acc (Analysis_ctx.timings ctx)) into;
    if Obs.enabled () then begin
      let t = Analysis_ctx.timings ctx in
      Obs.Histogram.record h_graph t.Analysis_ctx.graph_s;
      Obs.Histogram.record h_tables t.Analysis_ctx.tables_s;
      Obs.Histogram.record h_search t.Analysis_ctx.search_s;
      Obs.Histogram.record h_sim t.Analysis_ctx.sim_s;
      match result with
      | Ok _ -> Obs.Counter.incr m_nests_ok
      | Error _ -> Obs.Counter.incr m_nests_failed
    end;
    result
  in
  outcome

let analyze_into ?into ?(bound = 4) ?(max_loops = 2) ?(model = default_model)
    ?(seq = false) ~machine ~routine nest =
  let module M = (val model : Model.MODEL) in
  let key =
    Result_cache.fingerprint ~op:"memo" ~machine ~bound ~max_loops
      ~model:M.name ~seq nest
  in
  match memo_find key with
  | Some outcome -> outcome_with_name ~routine nest outcome
  | None ->
      let outcome =
        analyze_fresh ?into ~bound ~max_loops ~model ~seq ~machine ~routine
          nest
      in
      (match outcome with
      | Ok r when r.diagnostics = [] && r.sequence = [] ->
          memo_store key outcome
      | Ok _ | Error _ -> ());
      outcome

let analyze ?bound ?max_loops ?model ?seq ~machine ?(routine = "<nest>") nest =
  analyze_into ?bound ?max_loops ?model ?seq ~machine ~routine nest

let analyze_cached ~cache ?(op = "optimize") ?(bound = 4) ?(max_loops = 2)
    ?(model = default_model) ?(seq = false) ~machine ?(routine = "<nest>") nest
    =
  let module M = (val model : Model.MODEL) in
  let key =
    Result_cache.fingerprint ~op ~machine ~bound ~max_loops ~model:M.name ~seq
      nest
  in
  match Result_cache.find cache key with
  | Some outcome -> (outcome_with_name ~routine nest outcome, true)
  | None ->
      let outcome =
        analyze_into ~bound ~max_loops ~model ~seq ~machine ~routine nest
      in
      Result_cache.store cache key outcome;
      (outcome, false)

(* ------------------------------------------------------------------ *)
(* Deterministic parallel work queue: the slot-ordered atomic queue now
   lives in core ([Par], so [Balance.prepare] can use it too); the
   engine layers its queue-occupancy metrics on via the claim hook.
   [run_corpus] and the oracle's fuzz loop both run on this. *)

let clamp_domains = Par.clamp_domains

let parallel_map ?(domains = 1) ~f jobs =
  Par.map ~domains
    ~on_claim:(fun ~remaining ->
      (* work-queue occupancy: jobs claimed and jobs still unclaimed *)
      if Obs.enabled () then begin
        Obs.Counter.incr m_routines;
        Obs.Gauge.set g_queue (float_of_int remaining)
      end)
    ~on_steal:(fun ~thief:_ ~victim:_ ~count ->
      if Obs.enabled () then Obs.Counter.add m_steals count)
    ~f jobs

let run_corpus ?(domains = 1) ?(bound = 4) ?(max_loops = 2)
    ?(model = default_model) ?seq ?(dedup = false) ~machine
    (routines : Ujam_workload.Generator.routine list) =
  let module M = (val model : Model.MODEL) in
  let jobs = Array.of_list routines in
  let per_domain =
    Array.init (max 1 domains) (fun _ -> Analysis_ctx.zero_timings ())
  in
  let t0 = Unix.gettimeofday () in
  let run_direct () =
    let domains = clamp_domains domains (Array.length jobs) in
    ( domains,
      0,
      Obs.Span.with_ "corpus" (fun () ->
          parallel_map ~domains
            ~f:(fun ~domain (r : Ujam_workload.Generator.routine) ->
              let work () =
                { routine = r.Ujam_workload.Generator.name;
                  nests =
                    List.map
                      (fun nest ->
                        analyze_into ~into:per_domain.(domain) ~bound
                          ~max_loops ~model ?seq ~machine
                          ~routine:r.Ujam_workload.Generator.name nest)
                      r.Ujam_workload.Generator.nests }
              in
              if not (Obs.enabled ()) then work ()
              else
                Obs.Span.with_ r.Ujam_workload.Generator.name (fun () ->
                    let rt0 = Unix.gettimeofday () in
                    let report = work () in
                    Obs.Histogram.record h_routine
                      (Unix.gettimeofday () -. rt0);
                    report))
            jobs) )
  in
  (* Dedup: analyze one representative per canonical class, then give
     every duplicate slot a copy of its class outcome with the slot's
     own nest/routine names patched back in — the rendered report keeps
     the corpus shape while the analysis runs once per distinct
     problem. *)
  let run_dedup () =
    (* One digest per nest: the classification pass records each
       slot's class index alongside the nest, so the patch-back pass
       below never re-digests (the digest itself is memoized for
       consed nests, but duplicates here may be distinct objects). *)
    let index = Hashtbl.create 64 in
    let uniq = ref [] and n_uniq = ref 0 and total = ref 0 in
    let slotted =
      Array.map
        (fun (r : Ujam_workload.Generator.routine) ->
          List.map
            (fun nest ->
              incr total;
              let d = Ujam_ir.Canon.digest nest in
              match Hashtbl.find_opt index d with
              | Some slot -> (nest, slot)
              | None ->
                  let slot = !n_uniq in
                  Hashtbl.add index d slot;
                  uniq := (r.Ujam_workload.Generator.name, nest) :: !uniq;
                  incr n_uniq;
                  (nest, slot))
            r.Ujam_workload.Generator.nests)
        jobs
    in
    let uniq = Array.of_list (List.rev !uniq) in
    let domains = clamp_domains domains (Array.length uniq) in
    let results =
      Obs.Span.with_ "corpus" (fun () ->
          parallel_map ~domains
            ~f:(fun ~domain (routine, nest) ->
              analyze_into ~into:per_domain.(domain) ~bound ~max_loops ~model
                ?seq ~machine ~routine nest)
            uniq)
    in
    let out =
      Array.map2
        (fun (r : Ujam_workload.Generator.routine) slots ->
          { routine = r.Ujam_workload.Generator.name;
            nests =
              List.map
                (fun (nest, slot) ->
                  outcome_with_name ~routine:r.Ujam_workload.Generator.name
                    nest results.(slot))
                slots })
        jobs slotted
    in
    (domains, !total - Array.length uniq, out)
  in
  let domains, deduped, out = if dedup then run_dedup () else run_direct () in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let timings = Analysis_ctx.zero_timings () in
  Array.iter (add_timings timings) per_domain;
  let ok = ref 0 and failed = ref 0 in
  Array.iter
    (fun r ->
      List.iter
        (function Ok _ -> incr ok | Error _ -> incr failed)
        r.nests)
    out;
  { model = M.name; domains; bound; routines = out; ok = !ok; failed = !failed;
    deduped; timings; elapsed_s }

let routines_of_catalogue ?n () =
  List.map
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest =
        match n with
        | Some n -> e.Ujam_kernels.Catalogue.build ~n ()
        | None -> e.Ujam_kernels.Catalogue.build ()
      in
      { Ujam_workload.Generator.name = e.Ujam_kernels.Catalogue.name;
        nests = [ nest ] })
    Ujam_kernels.Catalogue.all

(* ------------------------------------------------------------------ *)
(* Rendering.  The default printers exclude the timing counters so runs
   with different domain counts stay byte-identical; print timings
   separately with [pp_timings]. *)

let pp_nest_outcome ppf = function
  | Ok r ->
      Format.fprintf ppf
        "%s: u=%s balance %.3f->%.3f regs %d V_M %d V_F %d speedup %.2f"
        r.nest_name (Vec.to_string r.u) r.balance_before r.balance_after
        r.registers r.memory_ops r.flops r.speedup;
      List.iter
        (fun (st : Ujam_analysis.Passes.step) ->
          Format.fprintf ppf "@,  seq %s: %s"
            (Ujam_ir.Transform.to_string st.Ujam_analysis.Passes.transform)
            st.Ujam_analysis.Passes.note)
        r.sequence;
      List.iter
        (fun d -> Format.fprintf ppf "@,  %a" Diagnostic.pp d)
        r.diagnostics
  | Error e -> Error.pp ppf e

let pp_routine ppf r =
  List.iter
    (fun outcome ->
      Format.fprintf ppf "%-12s %a@," r.routine pp_nest_outcome outcome)
    r.nests

let pp ppf report =
  Format.fprintf ppf "@[<v>";
  Array.iter (fun r -> pp_routine ppf r) report.routines;
  Format.fprintf ppf "corpus: %d routines, %d nests ok, %d failed%s (model %s)@]"
    (Array.length report.routines) report.ok report.failed
    (if report.deduped > 0 then Printf.sprintf ", %d deduped" report.deduped
     else "")
    report.model

let pp_timings ppf report =
  Format.fprintf ppf "stages: %a; wall %.3fs (%d domains)"
    Analysis_ctx.pp_timings report.timings report.elapsed_s report.domains

let to_string report = Format.asprintf "%a" pp report

(* ------------------------------------------------------------------ *)
(* JSON. *)

let nest_outcome_to_json = function
  | Ok r ->
      Json.Obj
        ([ ("nest", Json.Str r.nest_name);
          ("model", Json.Str r.model);
          ("u", Json.of_vec r.u);
          ("balance_before", Json.Float r.balance_before);
          ("balance_after", Json.Float r.balance_after);
          ("objective", Json.Float r.objective);
          ("registers", Json.Int r.registers);
          ("memory_ops", Json.Int r.memory_ops);
          ("flops", Json.Int r.flops);
          ("speedup", Json.Float r.speedup) ]
         @ (if r.sequence = [] then []
            else
              [ ( "sequence",
                  Ujam_analysis.Seqsearch.steps_json r.sequence ) ])
         @
         if r.diagnostics = [] then []
         else
           [ ( "diagnostics",
               Json.List (List.map Diagnostic.to_json r.diagnostics) ) ])
  | Error e ->
      Json.Obj
        [ ("error",
           Json.Obj
             ([ ("stage", Json.Str (Error.stage_name e.Error.stage));
                ("routine", Json.Str e.Error.routine);
                ("message", Json.Str e.Error.message) ]
             @
             if e.Error.diagnostics = [] then []
             else
               [ ( "diagnostics",
                   Json.List
                     (List.map Diagnostic.to_json e.Error.diagnostics) ) ])) ]

let routine_to_json r =
  Json.Obj
    [ ("routine", Json.Str r.routine);
      ("nests", Json.List (List.map nest_outcome_to_json r.nests)) ]

let timings_to_json (t : Analysis_ctx.timings) =
  Json.Obj
    [ ("graph_s", Json.Float t.Analysis_ctx.graph_s);
      ("tables_s", Json.Float t.Analysis_ctx.tables_s);
      ("search_s", Json.Float t.Analysis_ctx.search_s);
      ("sim_s", Json.Float t.Analysis_ctx.sim_s) ]

let to_json ?(timings = false) report =
  let base =
    [ ("model", Json.Str report.model);
      ("bound", Json.Int report.bound);
      ("routines",
       Json.List (Array.to_list (Array.map routine_to_json report.routines)));
      ("ok", Json.Int report.ok);
      ("failed", Json.Int report.failed) ]
    @ if report.deduped > 0 then [ ("deduped", Json.Int report.deduped) ] else []
  in
  let extra =
    if timings then
      [ ("domains", Json.Int report.domains);
        ("timings", timings_to_json report.timings);
        ("elapsed_s", Json.Float report.elapsed_s) ]
    else []
  in
  Json.Obj (base @ extra)
