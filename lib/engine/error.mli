(** Typed pipeline errors.

    A corpus run over hundreds of routines must degrade per-routine: a
    nest the model does not support becomes an error record in that
    routine's report, never a process-killing exception.  [guard] is the
    boundary adaptor — it converts the [Invalid_argument]/[Failure]
    invariant exits of the analysis layers into a value tagged with the
    pipeline stage that failed; [check_supported] rejects nests outside
    the modelled subscript class up front. *)

type stage =
  | Validate   (** nest outside the supported subscript class *)
  | Parse      (** source text did not parse *)
  | Graph      (** dependence graph / safety analysis *)
  | Tables     (** UGS partition or table construction *)
  | Search     (** unroll-vector selection *)
  | Transform  (** unroll-and-jam / scalar replacement *)
  | Sim        (** cache/CPU simulation *)
  | Native     (** native backend: emit / compile / execute *)

type t = {
  stage : stage;
  routine : string;
  message : string;
  diagnostics : Ujam_analysis.Diagnostic.t list;
      (** located findings behind the failure (empty when the stage has
          no rule coverage); rendered by {!pp} and the JSON emitters
          only when non-empty *)
}

val make :
  stage:stage ->
  routine:string ->
  ?diagnostics:Ujam_analysis.Diagnostic.t list ->
  string ->
  t

val stage_name : stage -> string

val pp : Format.formatter -> t -> unit
(** One line for the error itself, plus one indented line per attached
    diagnostic — callers printing multiple errors should wrap in a
    vertical box. *)

val to_string : t -> string

val guard : stage:stage -> routine:string -> (unit -> 'a) -> ('a, t) result
(** Run a pipeline stage, converting its exceptions into a typed error. *)

val max_coefficient : int
(** Largest modelled subscript coefficient magnitude; alias of
    {!Ujam_ir.Supported.max_coefficient}. *)

val check_supported : routine:string -> Ujam_ir.Nest.t -> (unit, t) result
(** Reject nests the reuse model does not cover (non-unit loop steps and
    subscript coefficients beyond {!max_coefficient}) with a typed
    [Validate] error; the class itself is defined by
    {!Ujam_ir.Supported.check}, and every violation is attached as a
    located [UJ004]/[UJ005] diagnostic
    ({!Ujam_analysis.Lint.check_supported}). *)
