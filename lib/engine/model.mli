(** The four selection strategies behind one module signature.

    Each strategy consumes a shared {!Ujam_core.Analysis_ctx} — so every
    comparison (and every timing) runs on identical precomputed inputs —
    and produces the common {!Ujam_core.Search.choice} shape.  Callers
    select strategies by name through {!find} instead of hard-wiring
    divergent call paths. *)

module type MODEL = sig
  val name : string
  val description : string

  val cache : bool
  (** Whether the strategy's balance includes the cache-miss term. *)

  val prunes : bool
  (** Whether [analyze] relies on the pruned register-bound search —
      i.e. on the register table being pointwise monotone.  The engine
      runs {!Ujam_analysis.Monotone.check_registers} for exactly these
      strategies and forces [~exhaustive:true] when the certificate
      fails. *)

  val analyze :
    ?exhaustive:bool -> Ujam_core.Analysis_ctx.t -> Ujam_core.Search.choice
  (** [exhaustive] (default false) forces the unpruned scan; meaningful
      only when {!prunes}, ignored by the other strategies. *)
end

module Ugs_tables : MODEL
(** The paper's model: GTS/GSS/RRS tables plus the balance search. *)

module Dep_based : MODEL
(** The dependence-based reuse model (Carr, PACT'96) — rebuilds the
    dependence graph of every unrolled candidate. *)

module Brute_force : MODEL
(** Materialise and re-analyse every unrolled body (Wolf-Maydan-Chen). *)

module No_cache : MODEL
(** UGS tables under the all-hits Carr-Kennedy balance model. *)

module Ugs_l2 : MODEL
(** UGS tables with the balance priced at hierarchy level 2
    ({!Ujam_core.Balance.loop_balance_level}) — jam for the L2 working
    set instead of the L1.  Falls back to the machine's deepest level
    when no level 2 exists. *)

val at_level : int -> (module MODEL)
(** Generalisation of {!Ugs_l2} to any 1-based level. *)

val all : (module MODEL) list
(** The registry, in presentation order. *)

val name : (module MODEL) -> string
val names : string list

val find : string -> (module MODEL) option
(** Look a strategy up by name or alias ("ugs", "dep", "brute",
    "no-cache", ...). *)

val choice_of_metrics :
  machine:Ujam_machine.Machine.t ->
  cache:bool ->
  Ujam_linalg.Vec.t * Ujam_core.Bruteforce.metrics ->
  Ujam_core.Search.choice
