module Obs = Ujam_obs.Obs
module Machine = Ujam_machine.Machine

(* Intrusive doubly-linked recency list over hash-table nodes: head is
   most recent, tail is next to evict.  A sentinel-free list with
   option links keeps the node type self-contained. *)
type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* towards head / more recent *)
  mutable next : 'v node option;  (* towards tail / less recent *)
}

type 'v t = {
  capacity : int;
  table : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  m_hits : Obs.Counter.t option;
  m_misses : Obs.Counter.t option;
  m_evictions : Obs.Counter.t option;
}

let create ?metrics_prefix ~capacity () =
  if capacity <= 0 then
    invalid_arg "Result_cache.create: capacity must be positive";
  let counter suffix =
    Option.map (fun p -> Obs.counter (p ^ suffix)) metrics_prefix
  in
  { capacity;
    table = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    m_hits = counter ".hits";
    m_misses = counter ".misses";
    m_evictions = counter ".evictions" }

let bump c = if Obs.enabled () then Option.iter Obs.Counter.incr c

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  if t.tail = None then t.tail <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.hits <- t.hits + 1;
      bump t.m_hits;
      if t.head != Some node then begin
        unlink t node;
        push_front t node
      end;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      bump t.m_misses;
      None

let store t key value =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      node.value <- value;
      if t.head != Some node then begin
        unlink t node;
        push_front t node
      end
  | None ->
      if Hashtbl.length t.table >= t.capacity then begin
        match t.tail with
        | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.key;
            t.evictions <- t.evictions + 1;
            bump t.m_evictions
        | None -> ()
      end;
      let node = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node

let fold t ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some node -> go (f acc node.key node.value) node.next
  in
  go init t.head

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let stats (t : _ t) =
  { hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    size = Hashtbl.length t.table;
    capacity = t.capacity }

let fingerprint ~op ~(machine : Machine.t) ~bound ~max_loops ~model ~seq
    ?(extra = "") nest =
  let buf = Buffer.create 160 in
  let str s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  let int i =
    Buffer.add_string buf (string_of_int i);
    Buffer.add_char buf ';'
  in
  str op;
  (* every machine field the analysis reads; the name is advisory but
     two same-name machines with different geometry must not collide *)
  str machine.Machine.name;
  int machine.Machine.mem_issue;
  int machine.Machine.fp_issue;
  int machine.Machine.fp_latency;
  int machine.Machine.fp_registers;
  int machine.Machine.cache_size;
  int machine.Machine.cache_line;
  int machine.Machine.associativity;
  int machine.Machine.cache_access;
  int machine.Machine.miss_penalty;
  Buffer.add_string buf
    (Printf.sprintf "%Lx;" (Int64.bits_of_float machine.Machine.prefetch_bandwidth));
  (* the hierarchy, when present: two machines differing only in their
     levels must not share analysis results *)
  List.iter
    (fun (l : Machine.Level.t) ->
      str l.Machine.Level.name;
      int l.Machine.Level.size;
      int l.Machine.Level.line;
      int l.Machine.Level.assoc;
      int l.Machine.Level.access;
      int l.Machine.Level.penalty;
      Buffer.add_char buf
        (match l.Machine.Level.write with
        | Machine.Level.Write_allocate -> 'A'
        | Machine.Level.Write_through -> 'T'))
    machine.Machine.levels;
  int bound;
  int max_loops;
  str model;
  Buffer.add_char buf (if seq then 'S' else '-');
  str extra;
  Buffer.add_string buf (Ujam_ir.Canon.digest nest);
  Digest.to_hex (Digest.string (Buffer.contents buf))
