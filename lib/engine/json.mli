(** Minimal JSON emitter for machine-readable batch output.

    Only construction and compact serialisation — the CLI pins its
    output format with cram tests, so stability matters more than
    features.  Non-finite floats render as [null] (JSON has no
    [Infinity] literal). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val of_vec : Ujam_linalg.Vec.t -> t
