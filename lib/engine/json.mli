(** Minimal JSON emitter for machine-readable batch output.

    An alias of {!Ujam_obs.Json} (the representation moved down with
    the observability layer) plus the engine-level vector helper.  The
    CLI pins its output format with cram tests, so stability matters
    more than features.  Non-finite floats render as [null] (JSON has
    no [Infinity] literal). *)

type t = Ujam_obs.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val of_string : string -> (t, string) result
val member : string -> t -> t option
val to_float_opt : t -> float option
val of_vec : Ujam_linalg.Vec.t -> t
