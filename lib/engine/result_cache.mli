(** Bounded content-addressed result cache with LRU eviction.

    The serve daemon's fast path: analysis outcomes keyed by
    {!fingerprint} — an MD5 over the machine description, the request
    options, and the {!Ujam_ir.Canon.digest} of the nest — so a repeated
    optimization problem is answered without touching the table search,
    whatever the nest was called or how its commutative operands were
    spelled.  Capacity is a hard bound: inserting into a full cache
    evicts the least-recently-used entry.  [find] and [store] are O(1)
    (hash table plus an intrusive recency list) and {e not}
    thread-safe; the daemon confines all cache access to its
    accept/dispatch thread and ships only pure closures to worker
    domains. *)

type 'v t

val create : ?metrics_prefix:string -> capacity:int -> unit -> 'v t
(** [capacity] must be positive.  When [metrics_prefix] is given (e.g.
    ["serve.cache"]), hit/miss/eviction counters are registered with
    {!Ujam_obs.Obs} under [prefix ^ ".hits"] etc. — registration
    happens here, at cache creation, so programs that never build a
    cache keep their metrics registry unchanged. *)

val find : 'v t -> string -> 'v option
(** Lookup by key; a hit refreshes the entry's recency. *)

val store : 'v t -> string -> 'v -> unit
(** Insert or overwrite; evicts the LRU entry when full. *)

val fold : 'v t -> init:'a -> f:('a -> string -> 'v -> 'a) -> 'a
(** Fold over live entries from most- to least-recently used, without
    touching recency — the serve daemon's persistence walk. *)

val clear : 'v t -> unit
(** Drop every entry (recency list included); counters are kept. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val stats : 'v t -> stats

val fingerprint :
  op:string ->
  machine:Ujam_machine.Machine.t ->
  bound:int ->
  max_loops:int ->
  model:string ->
  seq:bool ->
  ?extra:string ->
  Ujam_ir.Nest.t ->
  string
(** The cache key: MD5 hex over every machine field that feeds the
    analysis, the option tuple, [op] (the request method — an
    [optimize] result must never answer a [lint]), an optional [extra]
    discriminator (e.g. the lint rule selection), and the canonical
    nest digest.  Display names are excluded by construction, so
    renamed copies of one problem share an entry. *)
