open Ujam_ir

(* Reuse the layout's interval analysis for array bounds. *)
let declarations nest =
  let layout = Layout.of_nest nest ~line:1 in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (r, _) ->
      let b = Aref.base r in
      if Hashtbl.mem seen b then None
      else begin
        Hashtbl.add seen b ();
        let extents = Layout.extent layout b in
        (* recover per-dimension lower bounds by re-deriving intervals *)
        let mins =
          Array.init (Array.length extents) (fun i ->
              (* Layout normalises to the observed minimum; emit 1-based
                 declarations covering the same count by re-centering. *)
              ignore i;
              1)
        in
        Some (b, mins, extents)
      end)
    (Nest.refs nest)

(* Fortran subscripts must match the declared bounds: shift every
   subscript so the smallest touched index is 1. *)
let subscript_shifts nest =
  let layout = Layout.of_nest nest ~line:1 in
  ignore layout;
  (* derive minima by scanning corner values like Layout does *)
  let mins : (string, int array) Hashtbl.t = Hashtbl.create 8 in
  let loops = Nest.loops nest in
  let d = Array.length loops in
  let ivals = Array.make d (0, 0) in
  let interval (a : Affine.t) =
    let lo = ref a.Affine.const and hi = ref a.Affine.const in
    Array.iteri
      (fun k c ->
        let l, h = ivals.(k) in
        if c >= 0 then begin
          lo := !lo + (c * l);
          hi := !hi + (c * h)
        end
        else begin
          lo := !lo + (c * h);
          hi := !hi + (c * l)
        end)
      a.Affine.coefs;
    (!lo, !hi)
  in
  for k = 0 to d - 1 do
    let l = loops.(k) in
    let lo, _ = interval l.Loop.lo in
    let _, hi = interval l.Loop.hi in
    ivals.(k) <- (lo, max lo hi)
  done;
  List.iter
    (fun (r, _) ->
      let b = Aref.base r in
      let cur =
        match Hashtbl.find_opt mins b with
        | Some c -> c
        | None ->
            let c = Array.make (Aref.rank r) max_int in
            Hashtbl.add mins b c;
            c
      in
      Array.iteri
        (fun i s ->
          let lo, _ = interval s in
          cur.(i) <- min cur.(i) lo)
        r.Aref.subs)
    (Nest.refs nest);
  mins

let to_program ?(scalars = []) nest =
  let buf = Buffer.create 4096 in
  let vn = Nest.var_name nest in
  let mins = subscript_shifts nest in
  let shifted (r : Aref.t) =
    let m = Hashtbl.find mins (Aref.base r) in
    { r with
      Aref.subs =
        Array.mapi (fun i s -> Affine.add_const s (1 - m.(i))) r.Aref.subs }
  in
  let line fmt = Format.kasprintf (fun s -> Buffer.add_string buf ("      " ^ s ^ "\n")) fmt in
  let name =
    String.map
      (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') then c else 'X')
      (Nest.name nest)
  in
  line "PROGRAM %s" (String.uppercase_ascii name);
  (* declarations *)
  let decls = declarations nest in
  List.iter
    (fun (b, _, extents) ->
      line "DOUBLE PRECISION %s(%s)" b
        (String.concat ","
           (Array.to_list (Array.map string_of_int extents))))
    decls;
  let assigned_scalars = Nest.assigned_scalars nest in
  let scalar_names = Nest.scalars nest in
  List.iter (fun s -> line "DOUBLE PRECISION %s" s) scalar_names;
  line "DOUBLE PRECISION CHKSUM";
  line "INTEGER %s"
    (String.concat ","
       (Array.to_list (Array.map (fun (l : Loop.t) -> l.Loop.var) (Nest.loops nest))
       @ [ "I__" ]));
  (* free scalars get values; compiler temporaries are assigned in the body *)
  List.iter
    (fun s ->
      if not (List.mem s assigned_scalars) then begin
        let v = try List.assoc s scalars with Not_found -> 0.5 in
        line "%s = %gD0" s v
      end)
    scalar_names;
  (* deterministic initialisation *)
  List.iter
    (fun (b, _, extents) ->
      let total = Array.fold_left ( * ) 1 extents in
      line "DO I__ = 1, %d" total;
      line "  %s(%s) = DBLE(MOD(I__ * 16807, 65536)) / 65536.0D0" b
        (match Array.length extents with
        | 1 -> "I__"
        | n ->
            (* initialise through an equivalenced linear view *)
            String.concat ","
              (List.init n (fun i ->
                   if i = 0 then
                     Printf.sprintf "MOD(I__-1,%d)+1" extents.(0)
                   else
                     let stride =
                       Array.fold_left ( * ) 1 (Array.sub extents 0 i)
                     in
                     Printf.sprintf "MOD((I__-1)/%d,%d)+1" stride extents.(i))));
      line "ENDDO")
    decls;
  (* the nest, with subscripts rebased to 1 *)
  let rebased =
    Nest.with_body nest (List.map (Stmt.map_refs shifted) (Nest.body nest))
  in
  let nest_text = Format.asprintf "%a" Nest.pp rebased in
  List.iter
    (fun l -> Buffer.add_string buf ("      " ^ l ^ "\n"))
    (String.split_on_char '\n' nest_text);
  (* checksum *)
  line "CHKSUM = 0.0D0";
  (match decls with
  | (b, _, extents) :: _ ->
      let total = Array.fold_left ( * ) 1 extents in
      line "DO I__ = 1, %d" total;
      line "  CHKSUM = CHKSUM + %s(%s)" b
        (match Array.length extents with
        | 1 -> "I__"
        | n ->
            String.concat ","
              (List.init n (fun i ->
                   if i = 0 then Printf.sprintf "MOD(I__-1,%d)+1" extents.(0)
                   else
                     let stride = Array.fold_left ( * ) 1 (Array.sub extents 0 i) in
                     Printf.sprintf "MOD((I__-1)/%d,%d)+1" stride extents.(i))));
      line "ENDDO"
  | [] -> ());
  line "PRINT *, CHKSUM";
  line "END";
  ignore vn;
  Buffer.contents buf
