open Ujam_ir

type store = {
  arrays : (string * int list, float) Hashtbl.t;  (* written locations *)
  scalars : (string, float) Hashtbl.t;
  seed : int;
}

(* ---- deterministic seeded initialisation --------------------------------

   Array elements and free scalars are initialised from one explicit
   PRNG state: a splitmix64-style finalizer folded over the seed, the
   base name, and the index vector.  The point of spelling the mixer
   out (rather than using [Hashtbl.hash]) is that the native backend
   ({!Ujam_native.Emit}) embeds a textually identical copy in every
   emitted program, so the interpreter and a natively compiled nest see
   bit-identical inputs.  Any edit here must be mirrored in
   [Emit.runtime_src]; the pinned kernel equivalences in
   [test/test_native.ml] enforce the sync. *)

let default_seed = 1997

let mix z =
  let z = z lxor (z lsr 30) in
  let z = z * 0x4be98134a5976fd3 in
  let z = z lxor (z lsr 29) in
  let z = z * 0x3bc0993a5ad19a13 in
  z lxor (z lsr 32)

let fold_string h s =
  let h = ref h in
  String.iter (fun c -> h := mix (!h + Char.code c)) s;
  !h

let init_element ~seed base idx =
  let h = List.fold_left (fun h i -> mix (h + i)) (fold_string (mix seed) base) idx in
  0.25 +. (float_of_int (h land 0xFFFF) /. 131072.0)

let init_scalar ~seed name =
  0.25 +. (float_of_int (fold_string (mix (seed + 1)) name land 0xFF) /. 512.0)

let cell_weight base idx =
  let h = List.fold_left (fun h i -> mix (h + i)) (fold_string 0 base) idx in
  1.0 +. (float_of_int (h land 0xFFFF) /. 65536.0)

let key (r : Aref.t) iv =
  (Aref.base r, Array.to_list (Array.map (fun s -> Affine.eval s iv) r.Aref.subs))

let run ?preheader ?(seed = default_seed) nest =
  let store =
    { arrays = Hashtbl.create 4096; scalars = Hashtbl.create 16; seed }
  in
  let read_array r iv =
    let k = key r iv in
    match Hashtbl.find_opt store.arrays k with
    | Some x -> x
    | None ->
        let base, idx = k in
        init_element ~seed base idx
  in
  let read_scalar name =
    match Hashtbl.find_opt store.scalars name with
    | Some x -> x
    | None -> init_scalar ~seed name
  in
  let rec eval iv = function
    | Expr.Const f -> f
    | Expr.Scalar s -> read_scalar s
    | Expr.Read r -> read_array r iv
    | Expr.Neg e -> -.eval iv e
    | Expr.Bin (op, a, b) -> (
        let x = eval iv a and y = eval iv b in
        match op with
        | Expr.Add -> x +. y
        | Expr.Sub -> x -. y
        | Expr.Mul -> x *. y
        | Expr.Div -> x /. (y +. 1.0) (* keep divisions finite *))
  in
  let exec iv (st : Stmt.t) =
    let value = eval iv st.Stmt.rhs in
    match st.Stmt.lhs with
    | Stmt.Array_elt r -> Hashtbl.replace store.arrays (key r iv) value
    | Stmt.Scalar_var s -> Hashtbl.replace store.scalars s value
  in
  let loops = Nest.loops nest in
  let d = Array.length loops in
  let body = Nest.body nest in
  let iv = Array.make d 0 in
  let rec go k =
    let l = loops.(k) in
    let lo = Affine.eval l.Loop.lo iv and hi = Affine.eval l.Loop.hi iv in
    if k = d - 1 then begin
      (match preheader with
      | Some f ->
          iv.(k) <- lo;
          List.iter (exec iv) (f iv)
      | None -> ());
      let i = ref lo in
      while !i <= hi do
        iv.(k) <- !i;
        List.iter (exec iv) body;
        i := !i + l.Loop.step
      done
    end
    else begin
      let i = ref lo in
      while !i <= hi do
        iv.(k) <- !i;
        go (k + 1);
        i := !i + l.Loop.step
      done
    end
  in
  go 0;
  store

let checksum store =
  Hashtbl.fold
    (fun (base, subs) v acc -> acc +. (v *. cell_weight base subs))
    store.arrays 0.0

let value_equal eps v v' =
  (* identical computations produce identical bits, including NaN and
     infinities; the epsilon only covers reassociation-free float noise *)
  Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float v')
  || Float.abs (v -. v') <= eps *. Float.max 1.0 (Float.abs v)

let equal ?(eps = 1e-9) a b =
  Hashtbl.length a.arrays = Hashtbl.length b.arrays
  && Hashtbl.fold
       (fun k v acc ->
         acc
         &&
         match Hashtbl.find_opt b.arrays k with
         | Some v' -> value_equal eps v v'
         | None -> false)
       a.arrays true

let read store base subs = Hashtbl.find_opt store.arrays (base, subs)

let final_value store base subs =
  match Hashtbl.find_opt store.arrays (base, subs) with
  | Some v -> v
  | None -> init_element ~seed:store.seed base subs

let written store = Hashtbl.length store.arrays
