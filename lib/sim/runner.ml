open Ujam_ir
open Ujam_machine

type result = {
  iterations : int;
  mem_ops_per_iteration : int;
  accesses : int;
  misses : int;
  issue_cycles : float;
  stall_cycles : float;
  cycles : float;
  cycles_per_iteration : float;
}

let run ~machine ?plan ?sites nest =
  let layout = Layout.of_nest nest ~line:machine.Machine.cache_line in
  let cache = Cache.of_machine machine in
  let sites = match sites with Some s -> s | None -> Site.of_nest nest in
  let memory_sites =
    match plan with
    | None -> sites
    | Some p -> List.filter (Ujam_core.Scalar_replace.issues_memory p) sites
  in
  let refs = Array.of_list (List.map (fun (s : Site.t) -> s.Site.ref_) memory_sites) in
  let iterations = ref 0 in
  Nest.iter_index_vectors nest (fun iv ->
      incr iterations;
      Array.iter (fun r -> ignore (Cache.access cache (Layout.address layout r iv))) refs);
  let iterations = !iterations in
  let mem_ops = Array.length refs in
  let per_iter = Cpu.cycles_per_iteration machine nest ~mem_ops in
  let issue = per_iter *. float_of_int iterations in
  let misses = Cache.misses cache in
  let hidden = machine.Machine.prefetch_bandwidth *. issue in
  let unhidden = Float.max 0.0 (float_of_int misses -. hidden) in
  let stall = unhidden *. float_of_int machine.Machine.miss_penalty in
  { iterations;
    mem_ops_per_iteration = mem_ops;
    accesses = Cache.accesses cache;
    misses;
    issue_cycles = issue;
    stall_cycles = stall;
    cycles = issue +. stall;
    cycles_per_iteration =
      (if iterations = 0 then 0.0 else (issue +. stall) /. float_of_int iterations) }

let run_levels ?steal_lines ~machine ?sites nest =
  let layout = Layout.of_nest nest ~line:machine.Machine.cache_line in
  let hierarchy = Cache.Hierarchy.of_machine ?steal_lines machine in
  let sites = match sites with Some s -> s | None -> Site.of_nest nest in
  let refs =
    Array.of_list
      (List.map (fun (s : Site.t) -> (s.Site.ref_, Site.is_write s)) sites)
  in
  Nest.iter_index_vectors nest (fun iv ->
      Array.iter
        (fun (r, write) ->
          Cache.Hierarchy.access hierarchy ~write (Layout.address layout r iv))
        refs);
  Cache.Hierarchy.stats hierarchy

let normalized ~baseline r =
  if baseline.cycles = 0.0 then 1.0 else r.cycles /. baseline.cycles

let pp ppf r =
  Format.fprintf ppf
    "iterations=%d mem/iter=%d accesses=%d misses=%d issue=%.0f stall=%.0f \
     cycles=%.0f (%.2f/iter)"
    r.iterations r.mem_ops_per_iteration r.accesses r.misses r.issue_cycles
    r.stall_cycles r.cycles r.cycles_per_iteration
