(** Reference interpreter: execute a nest over a floating-point store.

    Array contents and free scalars are initialised deterministically
    from one explicit PRNG state (a seeded splitmix-style mixer over the
    element's base name and index vector), so two semantically
    equivalent loops produce identical stores — the oracle behind
    `ujc verify`, the transformation tests, and the native backend's
    semantic-equivalence column ({!Ujam_native}): the emitted programs
    embed the same mixer, making interpreted and natively executed runs
    bit-identical on their inputs.  Compiler temporaries (scalar
    assignments in the body) live in a mutable environment that persists
    across iterations, which is exactly what a rotating register chain
    needs. *)

type store

val default_seed : int
(** The initialisation seed used when [?seed] is omitted (1997). *)

val init_element : seed:int -> string -> int list -> float
(** The initial value of one array element, a pure function of the
    seed, the array's base name, and the (raw, pre-layout) subscript
    vector.  Strictly positive and O(1) by construction, so generated
    arithmetic stays finite. *)

val init_scalar : seed:int -> string -> float
(** The initial value of a free scalar, a pure function of seed and
    name. *)

val cell_weight : string -> int list -> float
(** The per-location weight the order-insensitive digests use: a pure
    function of base name and subscript vector in [1, 2).  Shared with
    the native backend's emitted checksum loops so both sides integrate
    the same functional. *)

val run :
  ?preheader:(int array -> Ujam_ir.Stmt.t list) ->
  ?seed:int ->
  Ujam_ir.Nest.t ->
  store
(** Execute the nest.  When [preheader] is given, its statements run
    before each entry of the innermost loop (receiving the index vector
    with the innermost component at its lower bound) — the chain-priming
    hook used by {!Ujam_core.Scalar_replace} lowering.  [seed] selects
    the initial store contents (default {!default_seed}). *)

val checksum : store -> float
(** Order-insensitive digest of the final array contents. *)

val equal : ?eps:float -> store -> store -> bool
(** Same locations written and values equal within [eps] (relative). *)

val read : store -> string -> int list -> float option
(** Final value of one element, if it was written. *)

val final_value : store -> string -> int list -> float
(** Final value of one element: the written value, or its seeded
    initial value when the nest never stored there — the cell-level
    semantics the native backend's per-array checksums integrate
    over. *)

val written : store -> int
(** Number of distinct locations written. *)
