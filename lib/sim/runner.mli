(** Whole-loop simulation: interpret the nest's address trace through the
    cache and combine with the CPU cycle model.

    The [plan] argument restricts the trace to the memory operations left
    by scalar replacement — register-resident references never reach the
    memory system.  Misses overlappable by prefetching (when the machine
    has prefetch bandwidth) are subtracted before stall accounting. *)

type result = {
  iterations : int;
  mem_ops_per_iteration : int;
  accesses : int;
  misses : int;
  issue_cycles : float;
  stall_cycles : float;
  cycles : float;
  cycles_per_iteration : float;  (** total cycles / iterations *)
}

val run :
  machine:Ujam_machine.Machine.t ->
  ?plan:Ujam_core.Scalar_replace.plan ->
  ?sites:Ujam_ir.Site.t list ->
  Ujam_ir.Nest.t ->
  result
(** [sites] supplies the nest's precomputed reference sites (e.g. from
    [Analysis_ctx.sites]) so a baseline run does not re-enumerate them. *)

val run_levels :
  ?steal_lines:int ->
  machine:Ujam_machine.Machine.t ->
  ?sites:Ujam_ir.Site.t list ->
  Ujam_ir.Nest.t ->
  (Ujam_machine.Machine.Level.t * int * int) list
(** Replay the full (unreplaced) address trace through the machine's
    memory hierarchy ({!Cache.Hierarchy.of_machine}); per level:
    (level, accesses, misses).  Writes respect each level's write
    policy.  This is the ground truth the static reuse-distance
    predictor is calibrated against.  [steal_lines] injects the
    capacity fault of {!Cache.create} (oracle self-tests only). *)

val normalized : baseline:result -> result -> float
(** Execution time relative to [baseline], correcting for the number of
    original iterations each body covers (cycles-per-element ratio). *)

val pp : Format.formatter -> result -> unit
