(* Optional process-wide counters: no-ops (one atomic flag read) until
   the observability sink is enabled, so the simulator hot loop pays
   ~nothing by default. *)
module Obs = Ujam_obs.Obs

let m_accesses = Obs.counter "sim.cache.accesses"
let m_misses = Obs.counter "sim.cache.misses"
let m_evictions = Obs.counter "sim.cache.evictions"

type t = {
  line : int;
  sets : int;
  assoc : int;
  tags : int array;   (* sets * assoc; -1 = invalid *)
  ages : int array;   (* LRU stamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ~size ~line ~assoc =
  if line <= 0 || assoc <= 0 || size <= 0 then invalid_arg "Cache.create";
  if size mod (line * assoc) <> 0 then
    invalid_arg "Cache.create: size not a multiple of line * assoc";
  let sets = size / (line * assoc) in
  { line;
    sets;
    assoc;
    tags = Array.make (sets * assoc) (-1);
    ages = Array.make (sets * assoc) 0;
    clock = 0;
    accesses = 0;
    misses = 0 }

let of_machine (m : Ujam_machine.Machine.t) =
  create ~size:m.Ujam_machine.Machine.cache_size ~line:m.Ujam_machine.Machine.cache_line
    ~assoc:m.Ujam_machine.Machine.associativity

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let block = if addr >= 0 then addr / t.line else (addr - t.line + 1) / t.line in
  let set = ((block mod t.sets) + t.sets) mod t.sets in
  let base = set * t.assoc in
  let hit = ref false in
  (try
     for w = base to base + t.assoc - 1 do
       if t.tags.(w) = block then begin
         t.ages.(w) <- t.clock;
         hit := true;
         raise Exit
       end
     done
   with Exit -> ());
  let evicted = ref false in
  if not !hit then begin
    t.misses <- t.misses + 1;
    (* Fill the LRU way. *)
    let victim = ref base in
    for w = base + 1 to base + t.assoc - 1 do
      if t.ages.(w) < t.ages.(!victim) then victim := w
    done;
    evicted := t.tags.(!victim) >= 0;
    t.tags.(!victim) <- block;
    t.ages.(!victim) <- t.clock
  end;
  if Obs.enabled () then begin
    Obs.Counter.incr m_accesses;
    if not !hit then begin
      Obs.Counter.incr m_misses;
      if !evicted then Obs.Counter.incr m_evictions
    end
  end;
  !hit

let accesses t = t.accesses
let misses t = t.misses
let miss_rate t = if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0
