(* Optional process-wide counters: no-ops (one atomic flag read) until
   the observability sink is enabled, so the simulator hot loop pays
   ~nothing by default. *)
module Obs = Ujam_obs.Obs

let m_accesses = Obs.counter "sim.cache.accesses"
let m_misses = Obs.counter "sim.cache.misses"
let m_evictions = Obs.counter "sim.cache.evictions"

type t = {
  line : int;
  sets : int;
  assoc : int;
  steal : int;        (* fault injection: ways disabled in the last set *)
  tags : int array;   (* sets * assoc; -1 = invalid *)
  ages : int array;   (* LRU stamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ?(steal_lines = 0) ~size ~line ~assoc () =
  if line <= 0 || assoc <= 0 || size <= 0 then invalid_arg "Cache.create";
  if size mod (line * assoc) <> 0 then
    invalid_arg "Cache.create: size not a multiple of line * assoc";
  if steal_lines < 0 || steal_lines >= assoc then
    invalid_arg "Cache.create: steal_lines out of range";
  let sets = size / (line * assoc) in
  { line;
    sets;
    assoc;
    steal = steal_lines;
    tags = Array.make (sets * assoc) (-1);
    ages = Array.make (sets * assoc) 0;
    clock = 0;
    accesses = 0;
    misses = 0 }

let of_machine (m : Ujam_machine.Machine.t) =
  create ~size:m.Ujam_machine.Machine.cache_size ~line:m.Ujam_machine.Machine.cache_line
    ~assoc:m.Ujam_machine.Machine.associativity ()

let access_gen ~allocate t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let block = if addr >= 0 then addr / t.line else (addr - t.line + 1) / t.line in
  let set = ((block mod t.sets) + t.sets) mod t.sets in
  let base = set * t.assoc in
  (* injected-fault support: the last set loses [steal] ways *)
  let ways = if set = t.sets - 1 then t.assoc - t.steal else t.assoc in
  let hit = ref false in
  (try
     for w = base to base + ways - 1 do
       if t.tags.(w) = block then begin
         t.ages.(w) <- t.clock;
         hit := true;
         raise Exit
       end
     done
   with Exit -> ());
  let evicted = ref false in
  if not !hit then begin
    t.misses <- t.misses + 1;
    if allocate then begin
      (* Fill the LRU way. *)
      let victim = ref base in
      for w = base + 1 to base + ways - 1 do
        if t.ages.(w) < t.ages.(!victim) then victim := w
      done;
      evicted := t.tags.(!victim) >= 0;
      t.tags.(!victim) <- block;
      t.ages.(!victim) <- t.clock
    end
  end;
  if Obs.enabled () then begin
    Obs.Counter.incr m_accesses;
    if not !hit then begin
      Obs.Counter.incr m_misses;
      if !evicted then Obs.Counter.incr m_evictions
    end
  end;
  !hit

let access t addr = access_gen ~allocate:true t addr

let accesses t = t.accesses
let misses t = t.misses
let miss_rate t = if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0

(* Reference LRU stack: the textbook stack-distance algorithm (Mattson
   et al.).  A fully-associative LRU cache of capacity [C] lines hits
   exactly the accesses whose stack distance is < C, which is both the
   QCheck cross-check for the set-associative simulator above and the
   semantic ground the static predictor's histograms stand on. *)
module Stack = struct
  type nonrec t = { line : int; mutable stack : int list }

  let create ~line =
    if line <= 0 then invalid_arg "Cache.Stack.create";
    { line; stack = [] }

  let access t addr =
    let block =
      if addr >= 0 then addr / t.line else (addr - t.line + 1) / t.line
    in
    let rec pull i acc = function
      | [] -> (None, List.rev acc)
      | b :: rest when b = block -> (Some i, List.rev_append acc rest)
      | b :: rest -> pull (i + 1) (b :: acc) rest
    in
    let d, rest = pull 0 [] t.stack in
    t.stack <- block :: rest;
    d

  let depth t = List.length t.stack
end

(* Multi-level hierarchy: every level observes the full reference
   stream independently (for same-line LRU levels this equals the
   probe-on-miss chain by stack inclusion, and it is the only sane
   semantics once a TLB-style level with a different "line" joins the
   list).  Write-through levels do not allocate on write misses. *)
module Hierarchy = struct
  module Level = Ujam_machine.Machine.Level

  type nonrec t = { caches : (Level.t * t) array }

  let create ?steal_lines levels =
    (match Ujam_machine.Machine.validate_levels levels with
    | Ok () -> ()
    | Error e ->
        invalid_arg
          ("Cache.Hierarchy.create: " ^ Ujam_machine.Machine.geometry_message e));
    { caches =
        Array.of_list
          (List.map
             (fun (l : Level.t) ->
               ( l,
                 create ?steal_lines ~size:l.Level.size ~line:l.Level.line
                   ~assoc:l.Level.assoc () ))
             levels) }

  let of_machine ?steal_lines m =
    create ?steal_lines (Ujam_machine.Machine.effective_levels m)

  let access t ?(write = false) addr =
    Array.iter
      (fun ((l : Level.t), c) ->
        let allocate =
          match l.Level.write with
          | Level.Write_allocate -> true
          | Level.Write_through -> not write
        in
        ignore (access_gen ~allocate c addr))
      t.caches

  let stats t =
    Array.to_list
      (Array.map (fun (l, c) -> (l, c.accesses, c.misses)) t.caches)

  let miss_ratios t =
    Array.to_list
      (Array.map
         (fun ((l : Level.t), c) ->
           ( l,
             if c.accesses = 0 then 0.0
             else float_of_int c.misses /. float_of_int c.accesses ))
         t.caches)

  let reset t = Array.iter (fun (_, c) -> reset c) t.caches
end
