(** Set-associative LRU cache simulator.

    Addresses are in array elements (8-byte words); geometry comes from
    {!Ujam_machine.Machine}. *)

type t

val create : size:int -> line:int -> assoc:int -> t
(** All quantities in elements; [size] must be a multiple of
    [line * assoc]. *)

val of_machine : Ujam_machine.Machine.t -> t

val access : t -> int -> bool
(** [access t addr] touches the element at [addr]; returns [true] on a
    hit.  Misses fill the line (LRU eviction).  When the observability
    sink is enabled ({!Ujam_obs.Obs.enable}), every access also bumps
    the process-wide [sim.cache.accesses] / [sim.cache.misses] /
    [sim.cache.evictions] counters (an eviction is a miss that
    displaces a valid line). *)

val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset : t -> unit
