(** Set-associative LRU cache simulator.

    Addresses are in array elements (8-byte words); geometry comes from
    {!Ujam_machine.Machine}. *)

type t

val create : ?steal_lines:int -> size:int -> line:int -> assoc:int -> unit -> t
(** All quantities in elements; [size] must be a multiple of
    [line * assoc].  [steal_lines] (default 0, must be [< assoc])
    disables that many ways in the last set — a deliberate
    off-by-[n]-lines capacity fault for oracle self-tests. *)

val of_machine : Ujam_machine.Machine.t -> t

val access : t -> int -> bool
(** [access t addr] touches the element at [addr]; returns [true] on a
    hit.  Misses fill the line (LRU eviction).  When the observability
    sink is enabled ({!Ujam_obs.Obs.enable}), every access also bumps
    the process-wide [sim.cache.accesses] / [sim.cache.misses] /
    [sim.cache.evictions] counters (an eviction is a miss that
    displaces a valid line). *)

val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset : t -> unit

(** Reference stack-distance implementation (Mattson's LRU stack): a
    fully-associative LRU cache of capacity [C] lines hits exactly the
    accesses whose stack distance is [< C].  O(stack depth) per access —
    a specification, not a fast path; the property tests cross-check the
    set-associative simulator against it. *)
module Stack : sig
  type t

  val create : line:int -> t

  val access : t -> int -> int option
  (** Stack distance (in distinct lines touched since the previous
      access to this line) of the element at [addr]; [None] on a cold
      (first-ever) access.  Updates the stack. *)

  val depth : t -> int
  (** Distinct lines seen so far. *)
end

(** Multi-level memory hierarchy.  Every level observes the full
    reference stream independently: for same-line LRU levels this
    coincides with the probe-next-level-on-miss chain (stack inclusion),
    and it remains well-defined for TLB-style levels whose "line" is the
    page.  {!Ujam_machine.Machine.Level.Write_through} levels do not
    allocate on write misses (write-around). *)
module Hierarchy : sig
  type t

  val create : ?steal_lines:int -> Ujam_machine.Machine.Level.t list -> t
  (** Raises [Invalid_argument] on an invalid geometry
      ({!Ujam_machine.Machine.validate_levels}).  [steal_lines] injects
      the capacity fault of {!val:create} into every level. *)

  val of_machine : ?steal_lines:int -> Ujam_machine.Machine.t -> t
  (** Levels from {!Ujam_machine.Machine.effective_levels}: the flat
      single-level geometry when the machine carries no hierarchy. *)

  val access : t -> ?write:bool -> int -> unit

  val stats : t -> (Ujam_machine.Machine.Level.t * int * int) list
  (** Per level: (level, accesses, misses). *)

  val miss_ratios : t -> (Ujam_machine.Machine.Level.t * float) list
  (** Per level: misses / total references (all levels see every
      reference, so the denominators agree). *)

  val reset : t -> unit
end
