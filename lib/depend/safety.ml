open Ujam_linalg

(* Lexicographic sign of the suffix of a dependence vector strictly after
   level [k]; `Neg and `Ambiguous both block fusion across the carried
   distance. *)
let suffix_blocks (dvec : Depvec.t) k =
  let rec go m =
    if m >= Depvec.dim dvec then false
    else
      match dvec.(m) with
      | Depvec.Exact 0 -> go (m + 1)
      | Depvec.Exact x -> x < 0
      | Depvec.Star -> true
  in
  go (k + 1)

let cap_levels bound (dvec : Depvec.t) =
  for k = 0 to Array.length bound - 2 do
    match dvec.(k) with
    | Depvec.Exact x when x > 0 ->
        if suffix_blocks dvec k then bound.(k) <- min bound.(k) (x - 1)
    | Depvec.Star ->
        (* The Star stands for the whole solution set along loop k;
           its members with a negative k-component are the same
           dependence in the other orientation, with the suffix's
           sign flipped.  Any non-zero suffix therefore blocks. *)
        let suffix_nonzero =
          let rec go m =
            m < Depvec.dim dvec
            && (match dvec.(m) with
               | Depvec.Exact 0 -> go (m + 1)
               | Depvec.Exact _ | Depvec.Star -> true)
          in
          go (k + 1)
        in
        if suffix_nonzero then bound.(k) <- 0
    | Depvec.Exact _ -> ()
  done

let max_safe_unroll (g : Graph.t) =
  let depth = Ujam_ir.Nest.depth g.Graph.nest in
  let bound = Array.make depth max_int in
  bound.(depth - 1) <- 0;
  List.iter
    (fun (e : Graph.edge) ->
      cap_levels bound e.Graph.dvec;
      (* A lex-ambiguous vector (a Star before the first non-zero exact
         component) is stored in one orientation but its solution set
         contains both: the members whose leading Star takes a value
         that makes the vector lexicographically negative are the same
         dependence reversed, i.e. the negated vector with the
         endpoints swapped.  Jamming legality only reads distances, so
         cap against the mirror too — e.g. an anti edge [*,-1,2] hides
         the flow members [*,1,-2], which forbid jamming the middle
         loop (caught by the native ground-truth column on a generated
         nest). *)
      match Depvec.lex_sign e.Graph.dvec with
      | `Ambiguous -> cap_levels bound (Depvec.negate e.Graph.dvec)
      | `Pos | `Neg | `Zero -> ())
    g.Graph.edges;
  bound

let is_safe g u =
  let bound = max_safe_unroll g in
  Vec.dim u = Array.length bound
  && Array.for_all2 (fun b x -> x <= b) bound (Vec.to_array u)

let legal_permutation (g : Graph.t) perm =
  let permuted (dvec : Depvec.t) = Array.map (fun old -> dvec.(old)) perm in
  (* position of original component k in the permuted order *)
  let placement = Array.make (Array.length perm) 0 in
  Array.iteri (fun newpos old -> placement.(old) <- newpos) perm;
  List.for_all
    (fun (e : Graph.edge) ->
      let dvec = e.Graph.dvec in
      let has_star =
        Array.exists (function Depvec.Star -> true | Depvec.Exact _ -> false) dvec
      in
      if not has_star then
        (* the distance is known exactly: the reordered vector must stay
           lexicographically non-negative *)
        match Depvec.lex_sign (permuted dvec) with
        | `Pos | `Zero -> true
        | `Neg | `Ambiguous -> false
      else begin
        (* A Star edge stands for a whole solution set (both orientations
           may occur among its members).  Every member's lexicographic
           sign is preserved when the permutation keeps the relative
           order of all significant components — the Stars and the
           non-zero Exacts — since each member's leading non-zero then
           stays the same component. *)
        let significant =
          List.filter
            (fun k ->
              match dvec.(k) with
              | Depvec.Star -> true
              | Depvec.Exact x -> x <> 0)
            (List.init (Array.length dvec) Fun.id)
        in
        let rec monotone = function
          | a :: (b :: _ as rest) -> placement.(a) < placement.(b) && monotone rest
          | [ _ ] | [] -> true
        in
        monotone significant
      end)
    g.Graph.edges
