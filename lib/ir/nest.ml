type t = { name : string; loops : Loop.t array; body : Stmt.t list }

let depth t = Array.length t.loops

let make ~name ~loops ~body =
  let loops = Array.of_list loops in
  let d = Array.length loops in
  if d = 0 then invalid_arg "Nest.make: empty nest";
  Array.iteri
    (fun k (l : Loop.t) ->
      if l.Loop.level <> k then invalid_arg "Nest.make: loop levels out of order";
      if Affine.depth l.Loop.lo <> d || Affine.depth l.Loop.hi <> d then
        invalid_arg "Nest.make: bound depth mismatch")
    loops;
  List.iter
    (fun s ->
      List.iter
        (fun r -> if Aref.depth r <> d then invalid_arg "Nest.make: subscript depth mismatch")
        (Stmt.reads s @ Stmt.writes s))
    body;
  { name; loops; body }

let name t = t.name
let body t = t.body
let loops t = t.loops
let var_name t k = t.loops.(k).Loop.var

let level_of_var t v =
  let found = ref None in
  Array.iteri (fun k (l : Loop.t) -> if String.equal l.Loop.var v then found := Some k) t.loops;
  !found

let flops_per_iteration t = List.fold_left (fun acc s -> acc + Stmt.flops s) 0 t.body

let refs t =
  List.concat_map
    (fun s ->
      List.map (fun r -> (r, `Read)) (Stmt.reads s)
      @ List.map (fun r -> (r, `Write)) (Stmt.writes s))
    t.body

let arrays t =
  List.fold_left
    (fun acc (r, _) ->
      let b = Aref.base r in
      if List.mem b acc then acc else acc @ [ b ])
    [] (refs t)

let assigned_scalars t =
  List.filter_map
    (fun (s : Stmt.t) ->
      match s.Stmt.lhs with
      | Stmt.Scalar_var v -> Some v
      | Stmt.Array_elt _ -> None)
    t.body
  |> List.sort_uniq String.compare

let scalars t =
  assigned_scalars t
  @ List.concat_map (fun (s : Stmt.t) -> Expr.scalars s.Stmt.rhs) t.body
  |> List.sort_uniq String.compare

let free_scalars t =
  let assigned = assigned_scalars t in
  List.filter (fun s -> not (List.mem s assigned)) (scalars t)

let trip_counts t =
  let trips = Array.map Loop.trip_const t.loops in
  if Array.for_all Option.is_some trips then Some (Array.map Option.get trips)
  else None

let iterations t =
  Option.map (Array.fold_left (fun acc n -> acc * n) 1) (trip_counts t)

let with_body t body = { t with body }
let with_loops t loops = { t with loops }

let iter_index_vectors t f =
  let d = depth t in
  let iv = Array.make d 0 in
  let rec go k =
    if k = d then f iv
    else begin
      let l = t.loops.(k) in
      let lo = Affine.eval l.Loop.lo iv and hi = Affine.eval l.Loop.hi iv in
      let i = ref lo in
      while !i <= hi do
        iv.(k) <- !i;
        go (k + 1);
        i := !i + l.Loop.step
      done
    end
  in
  go 0

let pp ppf t =
  let vn = var_name t in
  let d = depth t in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun k (l : Loop.t) ->
      if k > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%sDO %s = %a, %a%s" (String.make (2 * k) ' ') l.Loop.var
        (Affine.pp ~var_name:vn) l.Loop.lo (Affine.pp ~var_name:vn) l.Loop.hi
        (if l.Loop.step = 1 then "" else Printf.sprintf ", %d" l.Loop.step))
    t.loops;
  List.iter
    (fun s ->
      Format.fprintf ppf "@,%s%a" (String.make (2 * d) ' ') (Stmt.pp ~var_name:vn) s)
    t.body;
  for k = d - 1 downto 0 do
    Format.fprintf ppf "@,%sENDDO" (String.make (2 * k) ' ')
  done;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
