type binop = Add | Sub | Mul | Div

type t =
  | Const of float
  | Scalar of string
  | Read of Aref.t
  | Neg of t
  | Bin of binop * t * t

let rec flops = function
  | Const _ | Scalar _ | Read _ -> 0
  | Neg e -> flops e
  | Bin (_, a, b) -> 1 + flops a + flops b

let reads e =
  let rec go acc = function
    | Const _ | Scalar _ -> acc
    | Read r -> r :: acc
    | Neg e -> go acc e
    | Bin (_, a, b) -> go (go acc a) b
  in
  List.rev (go [] e)

let scalars e =
  let rec go acc = function
    | Const _ | Read _ -> acc
    | Scalar s -> s :: acc
    | Neg e -> go acc e
    | Bin (_, a, b) -> go (go acc a) b
  in
  List.rev (go [] e)

(* Rebuilds preserve physical identity when [f] does: an unchanged
   subtree comes back as the same object, so zero-offset shifts of
   consed expressions share wholesale. *)
let rec map_refs f = function
  | (Const _ | Scalar _) as e -> e
  | Read r as e ->
      let r' = f r in
      if r' == r then e else Read r'
  | Neg a as e ->
      let a' = map_refs f a in
      if a' == a then e else Neg a'
  | Bin (op, a, b) as e ->
      let a' = map_refs f a in
      let b' = map_refs f b in
      if a' == a && b' == b then e else Bin (op, a', b')

(* Callers thread state through [f] in textual read order, so the
   traversal must be explicitly left-to-right (constructor arguments
   evaluate right-to-left in OCaml). *)
let rec substitute f = function
  | (Const _ | Scalar _) as e -> e
  | Read r as e -> ( match f r with Some v -> v | None -> e)
  | Neg a as e ->
      let a' = substitute f a in
      if a' == a then e else Neg a'
  | Bin (op, a, b) as e ->
      let a' = substitute f a in
      let b' = substitute f b in
      if a' == a && b' == b then e else Bin (op, a', b')

let shift e o = map_refs (fun r -> Aref.shift r o) e

let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Const x, Const y -> Float.equal x y
  | Scalar x, Scalar y -> String.equal x y
  | Read x, Read y -> Aref.equal x y
  | Neg x, Neg y -> equal x y
  | Bin (o1, a1, b1), Bin (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | (Const _ | Scalar _ | Read _ | Neg _ | Bin _), _ -> false

let pp_binop ppf op =
  Format.pp_print_string ppf
    (match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/")

let prec = function Add | Sub -> 1 | Mul | Div -> 2

let pp ~var_name ppf e =
  let rec go ctx ppf = function
    | Const f ->
        if Float.is_integer f && Float.abs f < 1e6 then
          Format.fprintf ppf "%.1f" f
        else Format.fprintf ppf "%g" f
    | Scalar s -> Format.pp_print_string ppf s
    | Read r -> Aref.pp ~var_name ppf r
    | Neg e -> Format.fprintf ppf "-%a" (go 3) e
    | Bin (op, a, b) ->
        let p = prec op in
        let body ppf () =
          Format.fprintf ppf "%a %a %a" (go p) a pp_binop op (go (p + 1)) b
        in
        if p < ctx then Format.fprintf ppf "(%a)" body ()
        else body ppf ()
  in
  go 0 ppf e
