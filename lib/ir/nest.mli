(** Perfect loop nests.

    A nest is a stack of loops (outermost first) around a straight-line
    body of statements; unroll-and-jam maps perfect nests to perfect
    nests with larger bodies, so this form is closed under every
    transformation in the library. *)

type t = { name : string; loops : Loop.t array; body : Stmt.t list }

val make : name:string -> loops:Loop.t list -> body:Stmt.t list -> t
(** @raise Invalid_argument if loop levels are not [0..depth-1] in order
    or if any subscript depth disagrees with the nest depth. *)

val depth : t -> int
val name : t -> string
val body : t -> Stmt.t list
val loops : t -> Loop.t array
val var_name : t -> int -> string
val level_of_var : t -> string -> int option

val flops_per_iteration : t -> int

val refs : t -> (Aref.t * [ `Read | `Write ]) list
(** All array references in textual order (per statement: reads of the
    rhs left-to-right, then the write). *)

val arrays : t -> string list
(** Distinct array base names, in order of first appearance. *)

val scalars : t -> string list
(** Every scalar name appearing in the body (assigned or read),
    sorted and deduplicated. *)

val assigned_scalars : t -> string list
(** Scalars the body assigns (compiler temporaries), sorted. *)

val free_scalars : t -> string list
(** Scalars the body reads but never assigns (loop-invariant inputs),
    sorted — these take seeded initial values in the interpreter and
    the native backend. *)

val trip_counts : t -> int array option
(** Trip count per level when all bounds are constant. *)

val iterations : t -> int option
(** Product of constant trip counts. *)

val with_body : t -> Stmt.t list -> t
val with_loops : t -> Loop.t array -> t

val iter_index_vectors : t -> (int array -> unit) -> unit
(** Enumerate the iteration space in loop order, evaluating affine bounds
    as it descends.  The callback receives the current full index vector
    (valid only for the duration of the call). *)

val pp : Format.formatter -> t -> unit
(** Fortran-style rendering. *)

val to_string : t -> string
