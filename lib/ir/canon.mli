(** Canonical forms and content digests of loop nests.

    Two nests that differ only in loop-variable names, the nest label,
    or the operand order of commutative floating-point operations
    describe the same optimization problem: every analysis in the
    library addresses loops by {e level} and references by their
    [H]-matrix/constant structure, never by spelling.  [canon] maps a
    nest to the representative of its equivalence class — loop
    variables alpha-renamed to [i0..i{d-1}], the name dropped, and the
    operand pairs of [+] and [*] sorted under a total structural order
    (IEEE addition and multiplication are commutative, so the
    representative computes the same values) — and [digest] hashes a
    self-delimiting encoding of that representative.

    The digest is the content address used by the serve daemon's
    result cache ({!Ujam_engine.Result_cache}), the engine's
    corpus-level work deduplication, and the fuzz harness's duplicate
    skipping: equal digests mean the cached analysis transfers
    verbatim.  Collisions beyond structural equality would require an
    MD5 collision between two valid encodings; the property suite pins
    digest stability under alpha-renaming and idempotence of [canon]. *)

val canon : Nest.t -> Nest.t
(** The canonical representative: variables renamed to [i0..i{d-1}],
    name set to [""], commutative operand pairs sorted.  Idempotent;
    the result is only meant for hashing and equality, never for
    further transformation (the spelling of the original is lost). *)

val encode : Nest.t -> string
(** A stable, self-delimiting encoding of a nest {e as given} (no
    canonicalization): loop headers with exact affine coefficients,
    statements in order, float literals by their IEEE bit pattern.
    [encode a = encode b] iff the two nests are structurally equal
    including names. *)

val digest : Nest.t -> string
(** [digest n] is the MD5 hex digest of [encode (canon n)] — stable
    under alpha-renaming, relabeling, and commutative operand order.
    Memoized per nest {e object} (identity-keyed, weak, Domain-safe):
    the first call on a given value pays the full canonicalize+hash
    cost, later calls on the same value are O(1).  {!Hashcons.nest}
    collapses structurally equal nests to one object, making the memo
    effective across the whole process. *)

val digest_uncached : Nest.t -> string
(** [digest] bypassing the memo — for measuring the amortization. *)

val memo_stats : unit -> int * int
(** [(hits, misses)] of the digest memo since start or {!memo_clear}. *)

val memo_clear : unit -> unit

val equal : Nest.t -> Nest.t -> bool
(** Structural equality of canonical forms: [digest a = digest b]
    without the hashing.  Physically equal nests short-circuit. *)
