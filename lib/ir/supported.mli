(** The modelled subscript class (the paper's Sec. 3.5), as a check any
    layer can consult.

    The reuse model covers affine subscripts over unit-step loops, with
    the doubled (multigrid restriction/interpolation) stride as the
    largest modelled coefficient.  This lives in the IR layer — below
    both the engine (which wraps violations in typed pipeline errors)
    and the workload generator (which must never emit, or must tag,
    nests outside the class) — so the producers and consumers of nests
    agree on one definition of "supported". *)

val max_coefficient : int
(** Largest modelled subscript coefficient magnitude (2: the doubled
    multigrid stride, the largest the paper's subscript class uses). *)

type violation =
  | Bad_step of Loop.t          (** a loop with a non-unit step *)
  | Bad_coefficient of Aref.t   (** a subscript coefficient beyond
                                    {!max_coefficient} *)

val find_violation : Nest.t -> violation option
(** First violation in loop order, then textual reference order. *)

val message : Nest.t -> violation -> string
(** Human-readable description, prefixed with the nest name. *)

val check : Nest.t -> (unit, string) result
(** [Ok ()] iff the nest is inside the modelled class. *)
