(** The modelled subscript class (the paper's Sec. 3.5), as a check any
    layer can consult.

    The reuse model covers affine subscripts over unit-step loops, with
    the doubled (multigrid restriction/interpolation) stride as the
    largest modelled coefficient.  This lives in the IR layer — below
    both the engine (which wraps violations in typed pipeline errors)
    and the workload generator (which must never emit, or must tag,
    nests outside the class) — so the producers and consumers of nests
    agree on one definition of "supported".  Violations are located:
    a bad coefficient names the offending reference site and subscript
    dimension, not just the nest. *)

val max_coefficient : int
(** Largest modelled subscript coefficient magnitude (2: the doubled
    multigrid stride, the largest the paper's subscript class uses). *)

type violation =
  | Bad_step of Loop.t
      (** a loop with a non-unit step *)
  | Bad_coefficient of { site : Site.t; dim : int; coef : int }
      (** subscript [dim] of the reference at [site] has coefficient
          [coef] with [|coef| > max_coefficient] *)

val find_violation : Nest.t -> violation option
(** First violation in loop order, then textual site order. *)

val message : Nest.t -> violation -> string
(** Human-readable description, prefixed with the nest name. *)

val locate : Nest.t -> violation -> Loc.t
(** The violation's structured location: the loop level for
    [Bad_step], the statement and site for [Bad_coefficient]. *)

val check : Nest.t -> (unit, string) result
(** [Ok ()] iff the nest is inside the modelled class. *)
