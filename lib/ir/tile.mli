(** Strip-mining and tiling.

    [strip_mine nest level size] splits the loop at [level] into a
    controller that advances in steps of [size] and an element loop that
    walks one strip, leaving the nest perfect:

    {v
    DO I = 1, N            DO II = 1, N, 32
      ...            =>      DO I = II, MIN-free: II+31
    v}

    (the element loop's upper bound is [II + size*step - step]; trip
    counts are assumed divisible by the tile size, as everywhere in this
    library).  [tile] strip-mines several loops and hoists all the
    controllers outward in the given order — the classical tiling
    transformation, legal exactly when that reordering is a legal
    permutation ({!Ujam_depend.Safety.legal_permutation} on the
    strip-mined nest). *)

val strip_mine : Nest.t -> level:int -> size:int -> Nest.t
(** @raise Invalid_argument for non-positive sizes, out-of-range levels,
    or a loop whose bounds other loops depend on in a way the split
    cannot express. *)

val plan : Nest.t -> levels:int list -> sizes:int list -> Nest.t * int array
(** The strip-mined (not yet hoisted) nest and the controller-hoisting
    permutation [tile] applies to it — exposed so a legality gate can
    run {!Ujam_depend.Safety.legal_permutation} on exactly the
    permutation the transformation performs. *)

val tile : Nest.t -> levels:int list -> sizes:int list -> Nest.t
(** Strip-mine each listed level (outermost-first order) and move all
    controller loops to the outside, preserving their relative order.
    Returns the tiled nest; legality is the caller's concern. *)

val controller_var : string -> string
(** Name given to the controller of loop [v] (e.g. ["I"] -> ["I_T"]). *)
