(** Hash-consing side tables for the IR.

    The IR types stay plain variants and records; this module interns
    values into per-type weak tables so that structurally equal
    subtrees of consed values are physically equal ([==]).  Interning
    is bottom-up and idempotent: consing an already-consed value
    returns it unchanged (a pure table hit).

    Contract (see DESIGN.md §14 for the full discussion):

    - {b Sharing.}  After [nest n], every subtree of the result shares
      with every other consed value that is structurally equal to it,
      so identity-keyed memos (the {!Canon} digest memo, per-subtree
      analysis caches) hit across nests within one process.
    - {b Lifetime.}  Tables are weak; representatives and their ids
      die with the last outside reference.  Ids are unique per process
      while live, are never reused for a different structure while
      live, and are {e not} stable across processes or after a value
      is collected and re-interned — never persist them.
    - {b Domain safety.}  All operations are serialized by one global
      mutex and may be called from any domain.

    Float constants intern by IEEE bit pattern ([-0.0] ≠ [0.0], NaN
    payloads distinct), matching {!Canon.compare_expr} and the
    printers. *)

val affine : Affine.t -> Affine.t
val aref : Aref.t -> Aref.t
val expr : Expr.t -> Expr.t
val stmt : Stmt.t -> Stmt.t

val body : Stmt.t list -> Stmt.t list
(** Interns every statement under a single lock acquisition — the
    form transformation passes use for rebuilt bodies. *)

val loop : Loop.t -> Loop.t

val nest : Nest.t -> Nest.t
(** Interns the nest and all its subtrees, then precomputes its
    {!Canon.digest} so later digest calls are O(1) memo hits. *)

val nest_no_digest : Nest.t -> Nest.t
(** [nest] without the digest precomputation — for callers that will
    never fingerprint the result. *)

(** {2 Ids}

    The unique id of a representative, or [None] if the value was
    never interned (or is a non-representative copy).  O(1). *)

val id_affine : Affine.t -> int option
val id_aref : Aref.t -> int option
val id_expr : Expr.t -> int option
val id_stmt : Stmt.t -> int option
val id_loop : Loop.t -> int option
val id_nest : Nest.t -> int option

val is_consed_nest : Nest.t -> bool

(** {2 Introspection} *)

type stats = { hits : int; misses : int; live : int }

val stats : unit -> (string * stats) list
(** Per-table intern hit/miss counters and live representative counts,
    keyed ["affine"], ["aref"], ["expr"], ["stmt"], ["loop"],
    ["nest"]. *)

val sharing_ratio : unit -> float
(** Fraction of intern operations (across all tables, since the last
    {!reset_stats}) answered by an existing representative; 0.0 when
    no operations have run. *)

val reset_stats : unit -> unit

val clear : unit -> unit
(** Drop all tables (test isolation).  Live consed values keep their
    physical sharing but lose their ids; re-interning assigns fresh
    ones. *)
