(* Hash-consing side tables for the IR.

   The IR types stay plain variants/records — every existing pattern
   match keeps working — and sharing lives in per-type weak sets of
   representatives.  The [cons] family walks a value bottom-up,
   replacing each subtree by the unique live representative of its
   structural class, so equal subtrees of consed values are physically
   equal ([==]) and downstream layers can key identity-based memos
   (the digest memo in {!Canon}, per-subtree analysis results) on the
   node itself.

   Three invariants carry the design (DESIGN.md §14):

   - {b Children first.}  A node is only interned once its children
     are representatives.  Structural equality of two such nodes
     therefore reduces to [==] on the children plus atom comparison,
     and the bucket hash of a node is derived from its children's ids
     — an O(1) lookup, not a subtree walk.

   - {b Weak lifetime.}  The sets hold representatives weakly and the
     id maps are ephemerons keyed by the representative: entries die
     with the last outside reference, so a long-lived process (the
     serve daemon) cannot leak one table entry per nest it ever saw.
     The flip side: ids are only stable while the value is live, and
     never across processes — nothing persisted may key on them.

   - {b Domain safety.}  One global mutex guards every table
     operation.  Consing is pure bookkeeping (no user code runs under
     the lock), so the critical sections are short; worker domains
     consing identical subtrees converge on one representative instead
     of racing to duplicate it.

   Float atoms intern by IEEE bit pattern, not [Float.equal]: [-0.0]
   and [0.0] are distinct constants to {!Canon.compare_expr} and to
   the printers, so merging them would change digests and rendered
   output.  (The bucket hash may still conflate them — a collision is
   harmless, a merge is not.) *)

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

(* Unique ids across all node kinds; 0 is never assigned. *)
let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

type stats = { hits : int; misses : int; live : int }

let mix a b = (a * 0x9e3779b1) lxor b

(* Identity-keyed rep → id map.  Only representatives are ever
   inserted, so structural hash collisions between distinct objects
   cannot arise from probes. *)
module Ids (T : sig
  type t
end) =
struct
  module E = Ephemeron.K1.Make (struct
    type t = T.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

  let tbl : int E.t = E.create 512
  let find x = E.find_opt tbl x

  (* The id of a known-consed child, used by parent hash functions.  A
     miss can only mean the children-first invariant was broken. *)
  let exn x =
    match E.find_opt tbl x with
    | Some i -> i
    | None -> invalid_arg "Hashcons: child is not a representative"

  let set x i = E.replace tbl x i
  let clear () = E.clear tbl
end

(* Weak set of representatives with hit/miss accounting.  [H.equal]
   and [H.hash] are only ever applied to values whose children are
   already representatives (probes included), where shallow [==]
   equality agrees with full structural equality. *)
module Set (H : Hashtbl.HashedType) = struct
  module W = Weak.Make (H)

  let set = W.create 512
  let hits = ref 0
  let misses = ref 0

  let intern ~on_new x =
    match W.find_opt set x with
    | Some r ->
        incr hits;
        r
    | None ->
        incr misses;
        on_new x;
        W.add set x;
        x

  let stats () = { hits = !hits; misses = !misses; live = W.count set }

  let reset_stats () =
    hits := 0;
    misses := 0

  let clear () =
    W.clear set;
    reset_stats ()
end

(* ---- per-type tables, bottom-up -------------------------------------- *)

module Affine_ids = Ids (struct
  type t = Affine.t
end)

module Affine_set = Set (struct
  type t = Affine.t

  (* Length-guarded: unlike [Affine.equal] this must tolerate probes
     of different depths landing in one bucket. *)
  let equal (a : Affine.t) (b : Affine.t) =
    a.Affine.const = b.Affine.const
    && Array.length a.Affine.coefs = Array.length b.Affine.coefs
    && Array.for_all2 ( = ) a.Affine.coefs b.Affine.coefs

  let hash (a : Affine.t) = Hashtbl.hash (a.Affine.coefs, a.Affine.const)
end)

module Aref_ids = Ids (struct
  type t = Aref.t
end)

module Aref_set = Set (struct
  type t = Aref.t

  let equal (a : Aref.t) (b : Aref.t) =
    String.equal a.Aref.base b.Aref.base
    && Array.length a.Aref.subs = Array.length b.Aref.subs
    && Array.for_all2 ( == ) a.Aref.subs b.Aref.subs

  let hash (a : Aref.t) =
    Array.fold_left
      (fun acc s -> mix acc (Affine_ids.exn s))
      (Hashtbl.hash a.Aref.base) a.Aref.subs
end)

module Expr_ids = Ids (struct
  type t = Expr.t
end)

module Expr_set = Set (struct
  type t = Expr.t

  let equal (a : Expr.t) (b : Expr.t) =
    match (a, b) with
    | Expr.Const x, Expr.Const y ->
        Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
    | Expr.Scalar x, Expr.Scalar y -> String.equal x y
    | Expr.Read x, Expr.Read y -> x == y
    | Expr.Neg x, Expr.Neg y -> x == y
    | Expr.Bin (o1, a1, b1), Expr.Bin (o2, a2, b2) ->
        o1 = o2 && a1 == a2 && b1 == b2
    | (Expr.Const _ | Expr.Scalar _ | Expr.Read _ | Expr.Neg _ | Expr.Bin _), _
      ->
        false

  let hash (e : Expr.t) =
    match e with
    | Expr.Const f -> mix 1 (Hashtbl.hash (Int64.bits_of_float f))
    | Expr.Scalar s -> mix 2 (Hashtbl.hash s)
    | Expr.Read r -> mix 3 (Aref_ids.exn r)
    | Expr.Neg a -> mix 4 (Expr_ids.exn a)
    | Expr.Bin (op, a, b) ->
        mix (mix (Hashtbl.hash op) (Expr_ids.exn a)) (Expr_ids.exn b)
end)

module Stmt_ids = Ids (struct
  type t = Stmt.t
end)

module Stmt_set = Set (struct
  type t = Stmt.t

  let equal (a : Stmt.t) (b : Stmt.t) =
    a.Stmt.rhs == b.Stmt.rhs
    &&
    match (a.Stmt.lhs, b.Stmt.lhs) with
    | Stmt.Array_elt x, Stmt.Array_elt y -> x == y
    | Stmt.Scalar_var x, Stmt.Scalar_var y -> String.equal x y
    | (Stmt.Array_elt _ | Stmt.Scalar_var _), _ -> false

  let hash (s : Stmt.t) =
    let lhs =
      match s.Stmt.lhs with
      | Stmt.Array_elt r -> mix 5 (Aref_ids.exn r)
      | Stmt.Scalar_var v -> mix 6 (Hashtbl.hash v)
    in
    mix lhs (Expr_ids.exn s.Stmt.rhs)
end)

module Loop_ids = Ids (struct
  type t = Loop.t
end)

module Loop_set = Set (struct
  type t = Loop.t

  let equal (a : Loop.t) (b : Loop.t) =
    String.equal a.Loop.var b.Loop.var
    && a.Loop.level = b.Loop.level
    && a.Loop.step = b.Loop.step
    && a.Loop.lo == b.Loop.lo
    && a.Loop.hi == b.Loop.hi

  let hash (l : Loop.t) =
    mix
      (mix
         (Hashtbl.hash (l.Loop.var, l.Loop.level, l.Loop.step))
         (Affine_ids.exn l.Loop.lo))
      (Affine_ids.exn l.Loop.hi)
end)

module Nest_ids = Ids (struct
  type t = Nest.t
end)

module Nest_set = Set (struct
  type t = Nest.t

  let equal (a : Nest.t) (b : Nest.t) =
    String.equal (Nest.name a) (Nest.name b)
    && Array.length (Nest.loops a) = Array.length (Nest.loops b)
    && Array.for_all2 ( == ) (Nest.loops a) (Nest.loops b)
    && List.equal ( == ) (Nest.body a) (Nest.body b)

  let hash (n : Nest.t) =
    let h =
      Array.fold_left
        (fun acc l -> mix acc (Loop_ids.exn l))
        (Hashtbl.hash (Nest.name n))
        (Nest.loops n)
    in
    List.fold_left (fun acc s -> mix acc (Stmt_ids.exn s)) h (Nest.body n)
end)

(* ---- bottom-up consing (all [cons_*] run with the lock held) ---------- *)

let cons_affine a =
  Affine_set.intern ~on_new:(fun x -> Affine_ids.set x (fresh_id ())) a

let cons_aref (r : Aref.t) =
  let subs = Array.map cons_affine r.Aref.subs in
  let r =
    if Array.for_all2 ( == ) subs r.Aref.subs then r else { r with Aref.subs }
  in
  Aref_set.intern ~on_new:(fun x -> Aref_ids.set x (fresh_id ())) r

let rec cons_expr (e : Expr.t) =
  let e =
    match e with
    | Expr.Const _ | Expr.Scalar _ -> e
    | Expr.Read r ->
        let r' = cons_aref r in
        if r' == r then e else Expr.Read r'
    | Expr.Neg a ->
        let a' = cons_expr a in
        if a' == a then e else Expr.Neg a'
    | Expr.Bin (op, a, b) ->
        let a' = cons_expr a in
        let b' = cons_expr b in
        if a' == a && b' == b then e else Expr.Bin (op, a', b')
  in
  Expr_set.intern ~on_new:(fun x -> Expr_ids.set x (fresh_id ())) e

let cons_stmt (s : Stmt.t) =
  let lhs =
    match s.Stmt.lhs with
    | Stmt.Array_elt r ->
        let r' = cons_aref r in
        if r' == r then s.Stmt.lhs else Stmt.Array_elt r'
    | Stmt.Scalar_var _ -> s.Stmt.lhs
  in
  let rhs = cons_expr s.Stmt.rhs in
  let s =
    if lhs == s.Stmt.lhs && rhs == s.Stmt.rhs then s else { Stmt.lhs; rhs }
  in
  Stmt_set.intern ~on_new:(fun x -> Stmt_ids.set x (fresh_id ())) s

let cons_loop (l : Loop.t) =
  let lo = cons_affine l.Loop.lo in
  let hi = cons_affine l.Loop.hi in
  let l =
    if lo == l.Loop.lo && hi == l.Loop.hi then l else { l with Loop.lo; hi }
  in
  Loop_set.intern ~on_new:(fun x -> Loop_ids.set x (fresh_id ())) l

let cons_nest (n : Nest.t) =
  let loops = Array.map cons_loop (Nest.loops n) in
  let body = List.map cons_stmt (Nest.body n) in
  let n =
    if
      Array.for_all2 ( == ) loops (Nest.loops n)
      && List.equal ( == ) body (Nest.body n)
    then n
    else Nest.with_loops (Nest.with_body n body) loops
  in
  Nest_set.intern ~on_new:(fun x -> Nest_ids.set x (fresh_id ())) n

(* ---- public API ------------------------------------------------------- *)

let affine a = with_lock (fun () -> cons_affine a)
let aref r = with_lock (fun () -> cons_aref r)
let expr e = with_lock (fun () -> cons_expr e)
let stmt s = with_lock (fun () -> cons_stmt s)
let body ss = with_lock (fun () -> List.map cons_stmt ss)
let loop l = with_lock (fun () -> cons_loop l)
let nest_no_digest n = with_lock (fun () -> cons_nest n)

(* Precompute the canonical digest outside the table lock (Canon has
   its own memo lock; never nest the two) so a consed nest answers
   [Canon.digest] in O(1) from its first use on. *)
let nest n =
  let r = nest_no_digest n in
  ignore (Canon.digest r : string);
  r

let id_affine a = with_lock (fun () -> Affine_ids.find a)
let id_aref r = with_lock (fun () -> Aref_ids.find r)
let id_expr e = with_lock (fun () -> Expr_ids.find e)
let id_stmt s = with_lock (fun () -> Stmt_ids.find s)
let id_loop l = with_lock (fun () -> Loop_ids.find l)
let id_nest n = with_lock (fun () -> Nest_ids.find n)
let is_consed_nest n = Option.is_some (id_nest n)

let stats () =
  with_lock (fun () ->
      [
        ("affine", Affine_set.stats ());
        ("aref", Aref_set.stats ());
        ("expr", Expr_set.stats ());
        ("stmt", Stmt_set.stats ());
        ("loop", Loop_set.stats ());
        ("nest", Nest_set.stats ());
      ])

(* Fraction of intern operations answered by an existing
   representative: the sharing the tables are buying process-wide. *)
let sharing_ratio () =
  let hits, total =
    List.fold_left
      (fun (h, t) (_, s) -> (h + s.hits, t + s.hits + s.misses))
      (0, 0) (stats ())
  in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let reset_stats () =
  with_lock (fun () ->
      Affine_set.reset_stats ();
      Aref_set.reset_stats ();
      Expr_set.reset_stats ();
      Stmt_set.reset_stats ();
      Loop_set.reset_stats ();
      Nest_set.reset_stats ())

let clear () =
  with_lock (fun () ->
      Affine_set.clear ();
      Affine_ids.clear ();
      Aref_set.clear ();
      Aref_ids.clear ();
      Expr_set.clear ();
      Expr_ids.clear ();
      Stmt_set.clear ();
      Stmt_ids.clear ();
      Loop_set.clear ();
      Loop_ids.clear ();
      Nest_set.clear ();
      Nest_ids.clear ())
