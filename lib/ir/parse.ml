type error = { loc : Loc.t; message : string }

let pp_error ppf e =
  if Loc.is_none e.loc then Format.pp_print_string ppf e.message
  else Format.fprintf ppf "%a: %s" Loc.pp e.loc e.message

exception Fail of error

let fail line fmt =
  Format.kasprintf (fun message -> raise (Fail { loc = Loc.line line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Lparen
  | Rparen
  | Comma
  | Equal
  | Plus
  | Minus
  | Star
  | Slash

let is_ident_char c =
  (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_'

let is_digit c = c >= '0' && c <= '9'

let tokenize ~line s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '!' then i := n (* comment *)
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do incr i done;
      let is_float =
        !i < n
        && (s.[!i] = '.'
           || ((s.[!i] = 'e' || s.[!i] = 'E')
              && !i + 1 < n
              && (is_digit s.[!i + 1] || s.[!i + 1] = '-' || s.[!i + 1] = '+')))
      in
      if is_float then begin
        if !i < n && s.[!i] = '.' then begin
          incr i;
          while !i < n && is_digit s.[!i] do incr i done
        end;
        if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
          incr i;
          if !i < n && (s.[!i] = '-' || s.[!i] = '+') then incr i;
          while !i < n && is_digit s.[!i] do incr i done
        end;
        toks := Float (float_of_string (String.sub s start (!i - start))) :: !toks
      end
      else toks := Int (int_of_string (String.sub s start (!i - start))) :: !toks
    end
    else if is_ident_char c && not (is_digit c) then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      toks := Ident (String.sub s start (!i - start)) :: !toks
    end
    else begin
      incr i;
      toks :=
        (match c with
        | '(' -> Lparen
        | ')' -> Rparen
        | ',' -> Comma
        | '=' -> Equal
        | '+' -> Plus
        | '-' -> Minus
        | '*' -> Star
        | '/' -> Slash
        | _ -> fail line "unexpected character %C" c)
        :: !toks
    end
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Token-stream helpers                                                *)

type stream = { mutable toks : token list; line : int }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st =
  match st.toks with
  | [] -> fail st.line "unexpected end of line"
  | t :: rest ->
      st.toks <- rest;
      t

let expect st tok what =
  let got = advance st in
  if got <> tok then fail st.line "expected %s" what

(* ------------------------------------------------------------------ *)
(* Affine subscript / bound expressions over loop variables            *)

(* term := [-] (int [* ident] | ident [* int] | int)
   affine := term ((+|-) term)* *)
let parse_affine st ~depth ~level_of =
  let term sign =
    match advance st with
    | Int k -> (
        match peek st with
        | Some Star -> (
            ignore (advance st);
            match advance st with
            | Ident v -> (
                match level_of v with
                | Some level ->
                    Affine.scale (sign * k) (Affine.var ~depth level)
                | None -> fail st.line "unknown loop variable %s" v)
            | _ -> fail st.line "expected loop variable after %d*" k)
        | _ -> Affine.const ~depth (sign * k))
    | Ident v -> (
        let base =
          match level_of v with
          | Some level -> Affine.var ~depth level
          | None -> fail st.line "unknown loop variable %s in subscript" v
        in
        match peek st with
        | Some Star -> (
            ignore (advance st);
            match advance st with
            | Int k -> Affine.scale (sign * k) base
            | _ -> fail st.line "expected integer after %s*" v)
        | _ -> Affine.scale sign base)
    | Minus -> fail st.line "double sign in subscript"
    | _ -> fail st.line "expected subscript term"
  in
  let first =
    match peek st with
    | Some Minus ->
        ignore (advance st);
        term (-1)
    | _ -> term 1
  in
  let rec more acc =
    match peek st with
    | Some Plus ->
        ignore (advance st);
        more (Affine.add acc (term 1))
    | Some Minus ->
        ignore (advance st);
        more (Affine.add acc (term (-1)))
    | _ -> acc
  in
  more first

(* ------------------------------------------------------------------ *)
(* Right-hand-side expressions                                         *)

let rec parse_expr st ~depth ~level_of =
  let lhs = parse_term st ~depth ~level_of in
  let rec more acc =
    match peek st with
    | Some Plus ->
        ignore (advance st);
        more (Expr.Bin (Expr.Add, acc, parse_term st ~depth ~level_of))
    | Some Minus ->
        ignore (advance st);
        more (Expr.Bin (Expr.Sub, acc, parse_term st ~depth ~level_of))
    | _ -> acc
  in
  more lhs

and parse_term st ~depth ~level_of =
  let lhs = parse_factor st ~depth ~level_of in
  let rec more acc =
    match peek st with
    | Some Star ->
        ignore (advance st);
        more (Expr.Bin (Expr.Mul, acc, parse_factor st ~depth ~level_of))
    | Some Slash ->
        ignore (advance st);
        more (Expr.Bin (Expr.Div, acc, parse_factor st ~depth ~level_of))
    | _ -> acc
  in
  more lhs

and parse_factor st ~depth ~level_of =
  match advance st with
  | Minus -> Expr.Neg (parse_factor st ~depth ~level_of)
  | Float f -> Expr.Const f
  | Int k -> Expr.Const (float_of_int k)
  | Lparen ->
      let e = parse_expr st ~depth ~level_of in
      expect st Rparen "')'";
      e
  | Ident name -> (
      match peek st with
      | Some Lparen ->
          ignore (advance st);
          Expr.Read (Aref.make name (parse_subscripts st ~depth ~level_of))
      | _ -> Expr.Scalar name)
  | _ -> fail st.line "expected expression"

and parse_subscripts st ~depth ~level_of =
  let first = parse_affine st ~depth ~level_of in
  let rec more acc =
    match advance st with
    | Comma -> more (parse_affine st ~depth ~level_of :: acc)
    | Rparen -> List.rev acc
    | _ -> fail st.line "expected ',' or ')' in subscript list"
  in
  more [ first ]

(* ------------------------------------------------------------------ *)
(* Lines and structure                                                 *)

type parsed_line =
  | L_do of string * token list  (* var, tokens after '=' *)
  | L_enddo
  | L_assign of token list
  | L_blank

let classify ~line toks =
  match toks with
  | [] -> L_blank
  | Ident kw :: rest when String.uppercase_ascii kw = "DO" -> (
      match rest with
      | Ident v :: Equal :: bounds -> L_do (v, bounds)
      | _ -> fail line "malformed DO header")
  | [ Ident kw ] when String.uppercase_ascii kw = "ENDDO" -> L_enddo
  | toks -> L_assign toks

let split_bounds ~line toks =
  (* bounds: affine , affine [, int] — split at top-level commas *)
  let rec go depth acc cur = function
    | [] -> List.rev (List.rev cur :: acc)
    | Comma :: rest when depth = 0 -> go depth (List.rev cur :: acc) [] rest
    | (Lparen as t) :: rest -> go (depth + 1) acc (t :: cur) rest
    | (Rparen as t) :: rest -> go (depth - 1) acc (t :: cur) rest
    | t :: rest -> go depth acc (t :: cur) rest
  in
  match go 0 [] [] toks with
  | [ lo; hi ] -> (lo, hi, None)
  | [ lo; hi; [ Int s ] ] -> (lo, hi, Some s)
  | _ -> fail line "expected 'DO var = lo, hi[, step]'"

let nest ?(name = "parsed") text =
  try
    let lines =
      String.split_on_char '\n' text
      |> List.mapi (fun i l -> (i + 1, l))
      |> List.map (fun (ln, l) -> (ln, classify ~line:ln (tokenize ~line:ln l)))
      |> List.filter (fun (_, c) -> c <> L_blank)
    in
    (* headers *)
    let rec take_headers acc = function
      | (ln, L_do (v, bounds)) :: rest -> take_headers ((ln, v, bounds) :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let headers, rest = take_headers [] lines in
    let depth = List.length headers in
    if depth = 0 then
      fail (match lines with (ln, _) :: _ -> ln | [] -> 1) "no DO header found";
    let vars = List.map (fun (_, v, _) -> v) headers in
    (match List.sort_uniq compare vars with
    | unique when List.length unique <> depth ->
        fail 1 "duplicate loop variable"
    | _ -> ());
    let level_of_upto k v =
      let rec go i = function
        | [] -> None
        | v' :: _ when String.equal v v' && i < k -> Some i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 vars
    in
    let level_of v =
      let rec go i = function
        | [] -> None
        | v' :: _ when String.equal v v' -> Some i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 vars
    in
    let loops =
      List.mapi
        (fun k (ln, v, bounds) ->
          let lo_t, hi_t, step = split_bounds ~line:ln bounds in
          let parse_bound toks =
            let st = { toks; line = ln } in
            let a = parse_affine st ~depth ~level_of:(level_of_upto k) in
            if st.toks <> [] then fail ln "trailing tokens in loop bound";
            a
          in
          Loop.make ~var:v ~level:k ~lo:(parse_bound lo_t) ~hi:(parse_bound hi_t)
            ~step:(Option.value step ~default:1))
        headers
    in
    (* body, then exactly [depth] ENDDOs *)
    let rec take_body acc = function
      | (ln, L_assign toks) :: rest ->
          let st = { toks; line = ln } in
          let stmt =
            match advance st with
            | Ident name -> (
                match advance st with
                | Lparen ->
                    let subs = parse_subscripts st ~depth ~level_of in
                    expect st Equal "'='";
                    let rhs = parse_expr st ~depth ~level_of in
                    if st.toks <> [] then fail ln "trailing tokens after statement";
                    Stmt.store (Aref.make name subs) rhs
                | Equal ->
                    let rhs = parse_expr st ~depth ~level_of in
                    if st.toks <> [] then fail ln "trailing tokens after statement";
                    Stmt.set_scalar name rhs
                | _ -> fail ln "expected '(' or '=' after identifier")
            | _ -> fail ln "statement must start with an identifier"
          in
          take_body (stmt :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let body, rest = take_body [] rest in
    if body = [] then fail 1 "empty loop body";
    let rec take_enddos k = function
      | (_, L_enddo) :: rest -> take_enddos (k + 1) rest
      | rest -> (k, rest)
    in
    let closed, rest = take_enddos 0 rest in
    if closed <> depth then
      fail 1 "expected %d ENDDO, found %d" depth closed;
    (match rest with
    | (ln, _) :: _ -> fail ln "trailing input after the nest"
    | [] -> ());
    Ok (Nest.make ~name ~loops ~body)
  with
  | Fail e -> Error { e with loc = Loc.with_nest e.loc name }
  | Invalid_argument m -> Error { loc = Loc.nest name; message = m }

let nest_exn ?name text =
  match nest ?name text with
  | Ok n -> n
  | Error e -> invalid_arg (Format.asprintf "Parse.nest: %a" pp_error e)
