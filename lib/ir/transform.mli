(** First-class loop transformations and their composition algebra.

    Every structural transformation the library performs — unroll-and-jam,
    interchange, tiling, skewing, retiming — is a value of {!t}, applied
    through one entry point instead of five ad-hoc module calls.  A
    sequence of transforms is a program over nests; {!apply_seq} runs it
    left to right ([apply_seq [a; b] == apply b ∘ apply a]), and
    {!normalize} rewrites a sequence to a canonical form (identity steps
    dropped, adjacent like steps fused) without changing its meaning.

    This layer is purely structural: a transform either produces a nest
    or is rejected with a located reason (dimension mismatch, non-unit
    step, ...).  *Legality* with respect to data dependences and
    post-condition *verification* live above the IR — see
    [Ujam_analysis.Passes], which gates each step with the dependence
    tests and [Verify] and turns rejections into diagnostics. *)

type t =
  | Unroll of Ujam_linalg.Vec.t
      (** Unroll-and-jam by vector [u] ({!Unroll.unroll_and_jam}). *)
  | Interchange of int array
      (** Permutation: new level [k] runs old level [perm.(k)]. *)
  | Tile of { levels : int list; sizes : int list }
      (** Strip-mine + hoist controllers ({!Tile.tile}). *)
  | Skew of int array array
      (** Unit lower-triangular skew matrix ({!Skew.apply}). *)
  | Retime of int array array
      (** Per-statement iteration shifts ({!Retime.apply}). *)

type reject = { loc : Loc.t; reason : string }
(** A structural rejection: where, and the underlying reason (the
    message of the [Invalid_argument] the one-shot module raised). *)

val apply_exn : t -> Nest.t -> Nest.t
(** Dispatch to the underlying module; raises exactly what it raises
    (the pinned [Invalid_argument] messages are preserved). *)

val apply : t -> Nest.t -> (Nest.t, reject) result

val apply_seq : t list -> Nest.t -> (Nest.t, int * t * reject) result
(** Left-to-right composition; on rejection returns the failing step's
    index and transform alongside the reject. *)

val is_identity : t -> bool
(** Zero unroll vector, identity permutation / skew matrix, empty tile
    spec, all-zero shifts. *)

val fuse : t -> t -> t option
(** [fuse a b] is a single transform equivalent to [a] then [b], when
    one exists: unroll vectors compose as
    [(u ⊕ v)_k = (u_k + 1)(v_k + 1) - 1], permutations and skew
    matrices compose by (matrix) product, retimings add pointwise.
    Tiles, and mixed pairs, do not fuse.  A fused unroll emits the same
    body copies as the pair but in one combined lexicographic offset
    order, so the equivalence is up to the order of statements within
    the jammed body; the other fusions are structurally exact. *)

val normalize : t list -> t list
(** Canonical form: drop identity steps, fuse adjacent fusable steps,
    repeat to fixpoint.  [apply_seq (normalize s)] produces the same
    nest as [apply_seq s] up to the order of jammed body copies (see
    {!fuse}), and [normalize] is idempotent. *)

val equal : t -> t -> bool
val name : t -> string
(** ["unroll" | "interchange" | "tile" | "skew" | "retime"]. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering, e.g. [unroll(1,0)], [skew[[1,0],[1,1]]]. *)

val to_string : t -> string
