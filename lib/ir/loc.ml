type t = {
  nest : string option;
  line : int option;
  level : int option;
  stmt : int option;
  site : int option;
}

let none = { nest = None; line = None; level = None; stmt = None; site = None }

let nest n = { none with nest = Some n }
let line ?nest n = { none with nest; line = Some n }
let level ?nest k = { none with nest; level = Some k }
let stmt ?nest ?site k = { none with nest; stmt = Some k; site }

let with_nest t n =
  match t.nest with Some _ -> t | None -> { t with nest = Some n }

let is_none t = t = none

let equal (a : t) (b : t) = a = b

let to_fields t =
  List.filter_map
    (fun (k, v) -> Option.map (fun v -> (k, v)) v)
    [ ("line", t.line); ("level", t.level); ("stmt", t.stmt); ("site", t.site) ]

let pp ppf t =
  if is_none t then Format.pp_print_string ppf "<no location>"
  else begin
    let first = ref true in
    let sep () =
      if !first then first := false else Format.pp_print_char ppf ':'
    in
    Option.iter
      (fun n ->
        sep ();
        Format.pp_print_string ppf n)
      t.nest;
    (* "line 3" reads better than "line3" when it stands alone *)
    Option.iter
      (fun l ->
        sep ();
        Format.fprintf ppf "line %d" l)
      t.line;
    List.iter
      (fun (k, v) ->
        if k <> "line" then begin
          sep ();
          Format.fprintf ppf "%s%d" (if k = "level" then "loop" else k) v
        end)
      (to_fields t)
  end

let to_string t = Format.asprintf "%a" pp t
