(** The unroll-and-jam transformation.

    Unrolling by vector [u] (component [k] = number of *extra* body
    copies of loop [k]; the innermost component must be 0) multiplies the
    step of loop [k] by [u_k + 1] and replicates the body once per offset
    vector [o], [0 <= o <= u] pointwise, with index [i_k] substituted by
    [i_k + o_k * step_k].  Copies are emitted in lexicographic offset
    order, preserving statement order within a copy — the "jam" of
    classical unroll-and-jam.

    Iteration counts are assumed divisible by the unroll factors (the
    standard assumption; a cleanup loop is the code generator's business
    and does not affect balance). *)

val offsets : Ujam_linalg.Vec.t -> Ujam_linalg.Vec.t list
(** All offset vectors [0 <= o <= u], lexicographically sorted. *)

val divides : Nest.t -> Ujam_linalg.Vec.t -> bool
(** Whether every unrolled level's factor [u_k + 1] divides that loop's
    constant trip count — the divisibility assumption under which
    {!unroll_and_jam} preserves semantics exactly (no cleanup loop
    needed).  Vacuously true when trip counts are not constant. *)

val clamp_divisible : Nest.t -> Ujam_linalg.Vec.t -> Ujam_linalg.Vec.t
(** Largest pointwise [u' <= u] such that [divides nest u'] (identity
    when trip counts are not constant) — used before interpreting a
    transformed nest, since the remainder loop lives outside the
    perfect-nest IR. *)

val unroll_and_jam : Nest.t -> Ujam_linalg.Vec.t -> Nest.t
(** @raise Invalid_argument if [u] has a non-zero innermost component, a
    negative component, or the wrong dimension. *)
