(** Affine functions of the loop-index vector.

    Within a nest of depth [d], an affine expression is
    [sum_k coefs.(k) * i_k + const] where [i_k] is the index of the loop
    at level [k] (0 = outermost).  Array subscripts, and loop bounds that
    depend on outer indices, are affine. *)

type t = { coefs : int array; const : int }

val make : coefs:int array -> const:int -> t
val const : depth:int -> int -> t
val var : depth:int -> int -> t
(** [var ~depth k] is the index of loop level [k]. *)

val depth : t -> int
val eval : t -> int array -> int
(** [eval t iv] for a full index vector [iv]. *)

val add : t -> t -> t
val add_const : t -> int -> t
val scale : int -> t -> t

val shift : t -> int array -> t
(** [shift t o] substitutes [i_k + o.(k)] for every [i_k]: the result of
    peeling the body copy at iteration offset [o] (coefficients are
    unchanged, the constant absorbs [sum coefs.(k) * o.(k)]). *)

val subst : t -> t array -> t
(** [subst t images] substitutes [images.(k)] for every [i_k]: the
    result is the composition [t ∘ images] over the index space of the
    images (which must all share one depth).  Skewing rewrites every
    subscript and bound this way, with the images the rows of the
    inverse skew matrix. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val uses_level : t -> int -> bool
val is_constant : t -> bool

val pp : var_name:(int -> string) -> Format.formatter -> t -> unit
