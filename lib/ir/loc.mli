(** Structured source locations inside a loop nest.

    A location names the smallest enclosing program object a message is
    about: the nest, optionally a loop level, a body statement, a
    reference site within that statement, and — for nests that came
    through the textual front end — a source line.  Every field is
    optional so producers state exactly what they know; {!pp} renders
    whatever is present.  The parser's located errors and the analyzer's
    diagnostics share this one type, so a parse failure and a lint
    finding print and serialise the same way. *)

type t = {
  nest : string option;  (** nest name *)
  line : int option;     (** 1-based source line (parsed inputs only) *)
  level : int option;    (** loop level, 0 = outermost *)
  stmt : int option;     (** statement index in the body, 0-based *)
  site : int option;     (** reference-site id ({!Site.t}) *)
}

val none : t

val nest : string -> t
val line : ?nest:string -> int -> t
val level : ?nest:string -> int -> t
val stmt : ?nest:string -> ?site:int -> int -> t

val with_nest : t -> string -> t
(** Fill in the nest name unless one is already present. *)

val is_none : t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Compact rendering of the known fields, outermost first, e.g.
    ["dmxpy0:loop1"], ["jacobi:stmt0:site2"], ["line 3"]. *)

val to_string : t -> string

val to_fields : t -> (string * int) list
(** The present positional fields as [(key, value)] pairs in rendering
    order (["line"], ["level"], ["stmt"], ["site"]) — the JSON emitters
    in higher layers build objects from these without depending on a
    JSON type here. *)
