(** Loop skewing by a unimodular lower-triangular matrix.

    Skewing relabels the iteration space: the new indices are
    [i' = S i] for a unit lower-triangular integer matrix [S] (ones on
    the diagonal, zeros above), so each new index adds multiples of
    *outer* indices to an original one.  The transformation is always
    legal — [S] maps every dependence distance [d] to [S d], whose
    first nonzero component equals [d]'s, preserving lexicographic
    order — and it is the standard way to turn an anti-diagonal
    recurrence distance such as [(1, -1)] into the non-negative
    [(1, 0)], lifting the unroll safety cap that the negative inner
    component imposes (cf. Wolf–Lam; arXiv:1205.4672 uses the same
    device to expose full parallelism in uniform nests).

    Subscripts and bounds are rewritten with [S^{-1}] (computed exactly
    — a unit lower-triangular integer matrix has a unit lower-triangular
    integer inverse), so the set of accessed elements is untouched:
    iteration [i'] of the skewed nest performs exactly the work of
    iteration [S^{-1} i'] of the original. *)

val is_unit_lower_triangular : int array array -> bool
(** Square, ones on the diagonal, zeros strictly above. *)

val inverse : int array array -> int array array
(** Exact integer inverse of a unit lower-triangular matrix (forward
    substitution).  @raise Invalid_argument if the matrix is not unit
    lower triangular. *)

val elementary : depth:int -> target:int -> source:int -> factor:int -> int array array
(** The matrix skewing loop [target] by [factor] copies of the *outer*
    loop [source] ([source < target]): identity plus [factor] at row
    [target], column [source]. *)

val apply : Nest.t -> int array array -> Nest.t
(** [apply nest s] skews [nest] by [s].

    @raise Invalid_argument if [s] is not unit lower triangular of the
    nest's depth, or if any loop has a non-unit step (skewed bounds only
    make sense over unit-step iteration spaces; the supported class is
    unit-step anyway). *)
