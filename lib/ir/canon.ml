(* Canonical forms and content digests of loop nests.

   The canonical representative renames loop variables positionally,
   drops the nest label, and sorts the operand pairs of commutative
   floating-point operations under a total structural order.  Sorting
   is pairwise (no reassociation), so the representative evaluates to
   bit-identical results: IEEE addition and multiplication commute.
   The encoding is self-delimiting — every variable-length field is
   length-prefixed or bracketed — so distinct structures cannot encode
   to one string, and the MD5 digest of the canonical encoding is a
   content address for the whole optimization problem. *)

(* Total structural order on expressions: constructor rank first, then
   componentwise.  Float literals compare by IEEE bit pattern so 0.0
   and -0.0 (different constants in the IR) stay distinct. *)
let rec compare_expr (a : Expr.t) (b : Expr.t) =
  let rank = function
    | Expr.Const _ -> 0
    | Expr.Scalar _ -> 1
    | Expr.Read _ -> 2
    | Expr.Neg _ -> 3
    | Expr.Bin _ -> 4
  in
  match (a, b) with
  | Expr.Const x, Expr.Const y ->
      Int64.compare (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Expr.Scalar x, Expr.Scalar y -> String.compare x y
  | Expr.Read x, Expr.Read y -> Aref.compare x y
  | Expr.Neg x, Expr.Neg y -> compare_expr x y
  | Expr.Bin (op, x1, x2), Expr.Bin (oq, y1, y2) ->
      let c = Stdlib.compare op oq in
      if c <> 0 then c
      else
        let c = compare_expr x1 y1 in
        if c <> 0 then c else compare_expr x2 y2
  | _ -> Int.compare (rank a) (rank b)

let rec canon_expr (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Scalar _ | Expr.Read _ -> e
  | Expr.Neg a -> Expr.Neg (canon_expr a)
  | Expr.Bin (op, a, b) ->
      let a = canon_expr a and b = canon_expr b in
      let commutative = match op with
        | Expr.Add | Expr.Mul -> true
        | Expr.Sub | Expr.Div -> false
      in
      if commutative && compare_expr b a < 0 then Expr.Bin (op, b, a)
      else Expr.Bin (op, a, b)

let canon (n : Nest.t) =
  let loops =
    Array.to_list (Nest.loops n)
    |> List.map (fun (l : Loop.t) ->
           Loop.make
             ~var:(Printf.sprintf "i%d" l.Loop.level)
             ~level:l.Loop.level ~lo:l.Loop.lo ~hi:l.Loop.hi ~step:l.Loop.step)
  in
  let body =
    List.map
      (fun (s : Stmt.t) -> Stmt.assign s.Stmt.lhs (canon_expr s.Stmt.rhs))
      (Nest.body n)
  in
  Nest.make ~name:"" ~loops ~body

(* ---- encoding ------------------------------------------------------- *)

let enc_str buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let enc_affine buf (a : Affine.t) =
  Buffer.add_char buf '[';
  Array.iter
    (fun c ->
      Buffer.add_string buf (string_of_int c);
      Buffer.add_char buf ',')
    a.Affine.coefs;
  Buffer.add_char buf '+';
  Buffer.add_string buf (string_of_int a.Affine.const);
  Buffer.add_char buf ']'

let enc_aref buf (r : Aref.t) =
  Buffer.add_char buf 'A';
  enc_str buf r.Aref.base;
  Buffer.add_char buf '(';
  Array.iter (enc_affine buf) r.Aref.subs;
  Buffer.add_char buf ')'

let rec enc_expr buf (e : Expr.t) =
  match e with
  | Expr.Const f ->
      Buffer.add_char buf '#';
      Buffer.add_string buf (Printf.sprintf "%Lx" (Int64.bits_of_float f))
  | Expr.Scalar s ->
      Buffer.add_char buf '$';
      enc_str buf s
  | Expr.Read r -> enc_aref buf r
  | Expr.Neg a ->
      Buffer.add_char buf '~';
      enc_expr buf a
  | Expr.Bin (op, a, b) ->
      Buffer.add_char buf
        (match op with
        | Expr.Add -> '+'
        | Expr.Sub -> '-'
        | Expr.Mul -> '*'
        | Expr.Div -> '/');
      Buffer.add_char buf '(';
      enc_expr buf a;
      Buffer.add_char buf ';';
      enc_expr buf b;
      Buffer.add_char buf ')'

let encode (n : Nest.t) =
  let buf = Buffer.create 256 in
  Buffer.add_char buf 'N';
  enc_str buf (Nest.name n);
  Buffer.add_string buf (string_of_int (Nest.depth n));
  Array.iter
    (fun (l : Loop.t) ->
      Buffer.add_char buf 'L';
      enc_str buf l.Loop.var;
      enc_affine buf l.Loop.lo;
      enc_affine buf l.Loop.hi;
      Buffer.add_string buf (string_of_int l.Loop.step))
    (Nest.loops n);
  List.iter
    (fun (s : Stmt.t) ->
      (match s.Stmt.lhs with
      | Stmt.Array_elt r ->
          Buffer.add_char buf 'W';
          enc_aref buf r
      | Stmt.Scalar_var v ->
          Buffer.add_char buf 'V';
          enc_str buf v);
      Buffer.add_char buf '=';
      enc_expr buf s.Stmt.rhs)
    (Nest.body n);
  Buffer.contents buf

(* ---- digest memo ----------------------------------------------------- *)

(* Identity-keyed (ephemeron) memo: a digest computed for a given nest
   *object* is cached for that object's lifetime.  On its own this
   only helps callers that re-digest the same value; hash-consing
   ([Hashcons.nest]) makes it global — structurally equal nests
   collapse to one representative, so every layer's digest of that
   structure is a single memo entry computed once per process.

   Keyed by identity, not structure: the memo must never answer for a
   structurally-equal-but-distinct object, because that would make the
   memo itself a (non-weak, unbounded) hashcons table.  [Hashtbl.hash]
   has bounded traversal, so lookups stay O(1) in nest size.  The memo
   has its own lock; nothing here calls back into user code or into
   [Hashcons], so no lock ordering issues arise. *)

let digest_uncached n = Digest.to_hex (Digest.string (encode (canon n)))

module Memo = Ephemeron.K1.Make (struct
  type t = Nest.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let memo_lock = Mutex.create ()
let memo : string Memo.t = Memo.create 1024
let memo_hits = ref 0
let memo_misses = ref 0

let digest n =
  Mutex.lock memo_lock;
  let cached = Memo.find_opt memo n in
  (match cached with
  | Some _ -> incr memo_hits
  | None -> incr memo_misses);
  Mutex.unlock memo_lock;
  match cached with
  | Some d -> d
  | None ->
      (* Encode outside the lock: digesting is the expensive part and
         must not serialize other domains' memo hits. *)
      let d = digest_uncached n in
      Mutex.lock memo_lock;
      Memo.replace memo n d;
      Mutex.unlock memo_lock;
      d

let memo_stats () =
  Mutex.lock memo_lock;
  let r = (!memo_hits, !memo_misses) in
  Mutex.unlock memo_lock;
  r

let memo_clear () =
  Mutex.lock memo_lock;
  Memo.clear memo;
  memo_hits := 0;
  memo_misses := 0;
  Mutex.unlock memo_lock

let equal a b = a == b || String.equal (encode (canon a)) (encode (canon b))
