(** Statement-level retiming (index-set shifting).

    Retiming delays each body statement by its own iteration offset: with
    shift vector [r_j] for statement [j], the retimed nest executes, at
    iteration [i], the instance [i - r_j] of statement [j] — every
    subscript of statement [j] is shifted by [-r_j * step].  The set of
    statement instances is unchanged up to a bounded prologue/epilogue at
    the iteration-space boundary, which the library assumes away exactly
    as it assumes divisibility for unroll-and-jam.

    The payoff is on *cross-statement* dependences: an edge from
    statement [a] to statement [b] with distance [d] becomes
    [d + r_b - r_a], so shifts solving a small difference-constraint
    system can make every carried distance lexicographically
    non-negative where the original nest had a negative inner component
    (the classic retiming legalization of arXiv:1205.4672, applied here
    per statement rather than per DFG node).  Same-statement distances
    are invariant — those need {!Skew}. *)

val apply : Nest.t -> int array array -> Nest.t
(** [apply nest shifts] with [shifts.(j)] the per-level iteration shift
    of statement [j].

    @raise Invalid_argument if the outer length differs from the number
    of body statements or any inner length from the nest depth. *)
