open Ujam_linalg

type t =
  | Unroll of Vec.t
  | Interchange of int array
  | Tile of { levels : int list; sizes : int list }
  | Skew of int array array
  | Retime of int array array

type reject = { loc : Loc.t; reason : string }

let name = function
  | Unroll _ -> "unroll"
  | Interchange _ -> "interchange"
  | Tile _ -> "tile"
  | Skew _ -> "skew"
  | Retime _ -> "retime"

let apply_exn t nest =
  match t with
  | Unroll u -> Unroll.unroll_and_jam nest u
  | Interchange perm -> Interchange.apply nest perm
  | Tile { levels; sizes } -> Tile.tile nest ~levels ~sizes
  | Skew s -> Skew.apply nest s
  | Retime shifts -> Retime.apply nest shifts

let apply t nest =
  match apply_exn t nest with
  | nest' -> Ok nest'
  | exception Invalid_argument reason ->
      Error { loc = Loc.nest (Nest.name nest); reason }

let apply_seq steps nest =
  let rec go i nest = function
    | [] -> Ok nest
    | step :: rest -> (
        match apply step nest with
        | Ok nest' -> go (i + 1) nest' rest
        | Error r -> Error (i, step, r))
  in
  go 0 nest steps

let is_identity = function
  | Unroll u -> Vec.is_zero u
  | Interchange perm ->
      let id = ref true in
      Array.iteri (fun k p -> if p <> k then id := false) perm;
      !id
  | Tile { levels; sizes = _ } -> levels = []
  | Skew s ->
      let id = ref true in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j c -> if c <> (if i = j then 1 else 0) then id := false)
            row)
        s;
      !id
  | Retime shifts ->
      Array.for_all (fun r -> Array.for_all (fun x -> x = 0) r) shifts

let matmul a b =
  (* (a * b).(i).(j) = sum_k a.(i).(k) * b.(k).(j) *)
  let n = Array.length a in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let s = ref 0 in
          for k = 0 to n - 1 do
            s := !s + (a.(i).(k) * b.(k).(j))
          done;
          !s))

let fuse a b =
  match (a, b) with
  | Unroll u, Unroll v when Vec.dim u = Vec.dim v ->
      (* Unrolling by [v] a nest already unrolled by [u] copies each
         level (u_k+1)(v_k+1) times in total. *)
      Some (Unroll (Vec.map2 (fun x y -> ((x + 1) * (y + 1)) - 1) u v))
  | Interchange p, Interchange q when Array.length p = Array.length q ->
      (* After [p] then [q]: new level k runs p.(q.(k)). *)
      Some (Interchange (Array.map (fun k -> p.(k)) q))
  | Skew s1, Skew s2 when Array.length s1 = Array.length s2 ->
      (* i'' = s2 (s1 i). *)
      Some (Skew (matmul s2 s1))
  | Retime r1, Retime r2
    when Array.length r1 = Array.length r2
         && Array.for_all2 (fun a b -> Array.length a = Array.length b) r1 r2 ->
      Some (Retime (Array.map2 (Array.map2 ( + )) r1 r2))
  | _ -> None

let normalize steps =
  let rec fuse_pass = function
    | a :: b :: rest -> (
        match fuse a b with
        | Some c -> fuse_pass (c :: rest)
        | None -> a :: fuse_pass (b :: rest))
    | short -> short
  in
  let rec fix steps =
    let steps' = fuse_pass (List.filter (fun s -> not (is_identity s)) steps) in
    if List.length steps' = List.length steps then steps' else fix steps'
  in
  fix steps

let equal a b =
  match (a, b) with
  | Unroll u, Unroll v -> Vec.equal u v
  | Interchange p, Interchange q -> p = q
  | Tile a, Tile b -> a.levels = b.levels && a.sizes = b.sizes
  | Skew s1, Skew s2 -> s1 = s2
  | Retime r1, Retime r2 -> r1 = r2
  | _ -> false

let pp_int_list ppf l =
  Format.fprintf ppf "(%s)" (String.concat "," (List.map string_of_int l))

let pp_matrix ppf m =
  Format.fprintf ppf "[%s]"
    (String.concat ";"
       (Array.to_list
          (Array.map
             (fun row ->
               "[" ^ String.concat "," (Array.to_list (Array.map string_of_int row)) ^ "]")
             m)))

let pp ppf t =
  match t with
  | Unroll u -> Format.fprintf ppf "unroll%a" pp_int_list (Vec.to_list u)
  | Interchange perm ->
      Format.fprintf ppf "interchange%a" pp_int_list (Array.to_list perm)
  | Tile { levels; sizes } ->
      Format.fprintf ppf "tile(levels%a,sizes%a)" pp_int_list levels pp_int_list
        sizes
  | Skew s -> Format.fprintf ppf "skew%a" pp_matrix s
  | Retime shifts -> Format.fprintf ppf "retime%a" pp_matrix shifts

let to_string t = Format.asprintf "%a" pp t
