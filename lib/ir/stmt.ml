type lhs = Array_elt of Aref.t | Scalar_var of string

type t = { lhs : lhs; rhs : Expr.t }

let assign lhs rhs = { lhs; rhs }
let store r e = { lhs = Array_elt r; rhs = e }
let set_scalar s e = { lhs = Scalar_var s; rhs = e }

let flops t = Expr.flops t.rhs
let writes t = match t.lhs with Array_elt r -> [ r ] | Scalar_var _ -> []
let reads t = Expr.reads t.rhs

let map_refs f t =
  let lhs =
    match t.lhs with
    | Array_elt r ->
        let r' = f r in
        if r' == r then t.lhs else Array_elt r'
    | Scalar_var _ as l -> l
  in
  let rhs = Expr.map_refs f t.rhs in
  if lhs == t.lhs && rhs == t.rhs then t else { lhs; rhs }

let shift t o = map_refs (fun r -> Aref.shift r o) t

let equal a b =
  a == b
  || Expr.equal a.rhs b.rhs
     &&
  match (a.lhs, b.lhs) with
  | Array_elt x, Array_elt y -> Aref.equal x y
  | Scalar_var x, Scalar_var y -> String.equal x y
  | (Array_elt _ | Scalar_var _), _ -> false

let pp ~var_name ppf t =
  (match t.lhs with
  | Array_elt r -> Aref.pp ~var_name ppf r
  | Scalar_var s -> Format.pp_print_string ppf s);
  Format.fprintf ppf " = %a" (Expr.pp ~var_name) t.rhs
