open Ujam_linalg

type t = { base : string; subs : Affine.t array }

let make base subs =
  let subs = Array.of_list subs in
  if Array.length subs = 0 then invalid_arg "Aref.make: no subscripts";
  let d = Affine.depth subs.(0) in
  Array.iter
    (fun s -> if Affine.depth s <> d then invalid_arg "Aref.make: mixed depths")
    subs;
  { base; subs }

let base t = t.base
let rank t = Array.length t.subs
let depth t = Affine.depth t.subs.(0)

let h_matrix t = Mat.of_rows (Array.map (fun (s : Affine.t) -> s.Affine.coefs) t.subs)
let c_vector t = Vec.init (rank t) (fun i -> t.subs.(i).Affine.const)

let shift t o =
  let subs = Array.map (fun s -> Affine.shift s o) t.subs in
  if Array.for_all2 ( == ) subs t.subs then t else { t with subs }

let equal a b =
  a == b
  || String.equal a.base b.base
     && Array.length a.subs = Array.length b.subs
     && Array.for_all2 Affine.equal a.subs b.subs

let compare a b =
  let c = String.compare a.base b.base in
  if c <> 0 then c
  else
    let c = Stdlib.compare (Array.length a.subs) (Array.length b.subs) in
    if c <> 0 then c
    else
      let r = ref 0 in
      (try
         Array.iter2
           (fun x y ->
             let c = Affine.compare x y in
             if c <> 0 then begin
               r := c;
               raise Exit
             end)
           a.subs b.subs
       with Exit -> ());
      !r

let uses_level t k = Array.exists (fun s -> Affine.uses_level s k) t.subs

let is_separable_siv t = Mat.is_separable_siv (h_matrix t)

let pp ~var_name ppf t =
  Format.fprintf ppf "%s(%a)" t.base
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (Affine.pp ~var_name))
    (Array.to_list t.subs)
