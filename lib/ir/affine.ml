type t = { coefs : int array; const : int }

let make ~coefs ~const = { coefs = Array.copy coefs; const }
let const ~depth c = { coefs = Array.make depth 0; const = c }

let var ~depth k =
  if k < 0 || k >= depth then invalid_arg "Affine.var: level out of range";
  let coefs = Array.make depth 0 in
  coefs.(k) <- 1;
  { coefs; const = 0 }

let depth t = Array.length t.coefs

let eval t iv =
  let s = ref t.const in
  Array.iteri (fun k c -> s := !s + (c * iv.(k))) t.coefs;
  !s

let add a b =
  if depth a <> depth b then invalid_arg "Affine.add: depth";
  { coefs = Array.map2 ( + ) a.coefs b.coefs; const = a.const + b.const }

let add_const t c = { t with const = t.const + c }
let scale k t = { coefs = Array.map (fun c -> k * c) t.coefs; const = k * t.const }

let shift t o =
  if Array.length o <> depth t then invalid_arg "Affine.shift: depth";
  let delta = ref 0 in
  Array.iteri (fun k c -> delta := !delta + (c * o.(k))) t.coefs;
  (* Zero-offset shifts (every unchanged copy in an unroll-and-jam
     body) return the original so consed subtrees keep sharing. *)
  if !delta = 0 then t else { t with const = t.const + !delta }

let subst t images =
  if Array.length images <> depth t then invalid_arg "Affine.subst: depth";
  let out_depth =
    if Array.length images = 0 then 0 else depth images.(0)
  in
  Array.iter
    (fun im -> if depth im <> out_depth then invalid_arg "Affine.subst: image depth")
    images;
  let coefs = Array.make out_depth 0 in
  let const = ref t.const in
  Array.iteri
    (fun k c ->
      if c <> 0 then begin
        Array.iteri (fun j cj -> coefs.(j) <- coefs.(j) + (c * cj)) images.(k).coefs;
        const := !const + (c * images.(k).const)
      end)
    t.coefs;
  { coefs; const = !const }

let equal a b =
  a == b || (a.const = b.const && Array.for_all2 ( = ) a.coefs b.coefs)
let compare a b = Stdlib.compare (a.coefs, a.const) (b.coefs, b.const)

let uses_level t k = t.coefs.(k) <> 0
let is_constant t = Array.for_all (fun c -> c = 0) t.coefs

let pp ~var_name ppf t =
  let first = ref true in
  let emit fmt =
    Format.kasprintf
      (fun s ->
        if !first then first := false
        else if String.length s > 0 && s.[0] <> '-' then Format.pp_print_string ppf "+";
        Format.pp_print_string ppf s)
      fmt
  in
  Array.iteri
    (fun k c ->
      if c <> 0 then
        if c = 1 then emit "%s" (var_name k)
        else if c = -1 then emit "-%s" (var_name k)
        else emit "%d*%s" c (var_name k))
    t.coefs;
  if t.const <> 0 || !first then emit "%d" t.const
