let controller_var v = v ^ "_T"

(* Remap an affine form when a new dimension is inserted: old level
   [level] becomes the element loop at [level + 1]; levels after shift
   by one; the controller at [level] is fresh (coefficient via
   [controller_coef]). *)
let remap_affine ~level ~controller_coef (a : Affine.t) =
  let d = Array.length a.Affine.coefs in
  let coefs = Array.make (d + 1) 0 in
  Array.iteri
    (fun k c ->
      if k < level then coefs.(k) <- c
      else if k = level then coefs.(level + 1) <- c
      else coefs.(k + 1) <- c)
    a.Affine.coefs;
  coefs.(level) <- controller_coef;
  Affine.make ~coefs ~const:a.Affine.const

let strip_mine nest ~level ~size =
  let d = Nest.depth nest in
  if size <= 0 then invalid_arg "Tile.strip_mine: size must be positive";
  if level < 0 || level >= d then invalid_arg "Tile.strip_mine: level out of range";
  let loops = Nest.loops nest in
  let target = loops.(level) in
  let remap a = remap_affine ~level ~controller_coef:0 a in
  let new_loops =
    List.concat
      (List.mapi
         (fun k (l : Loop.t) ->
           if k < level then
             [ Loop.make ~var:l.Loop.var ~level:k ~lo:(remap l.Loop.lo)
                 ~hi:(remap l.Loop.hi) ~step:l.Loop.step ]
           else if k = level then begin
             let controller =
               Loop.make
                 ~var:(controller_var target.Loop.var)
                 ~level ~lo:(remap target.Loop.lo) ~hi:(remap target.Loop.hi)
                 ~step:(size * target.Loop.step)
             in
             let elt_lo =
               remap_affine ~level ~controller_coef:1
                 (Affine.const ~depth:d 0)
             in
             let elt_hi = Affine.add_const elt_lo ((size - 1) * target.Loop.step) in
             let element =
               Loop.make ~var:target.Loop.var ~level:(level + 1) ~lo:elt_lo
                 ~hi:elt_hi ~step:target.Loop.step
             in
             [ controller; element ]
           end
           else
             [ Loop.make ~var:l.Loop.var ~level:(k + 1) ~lo:(remap l.Loop.lo)
                 ~hi:(remap l.Loop.hi) ~step:l.Loop.step ])
         (Array.to_list loops))
  in
  let remap_ref (r : Aref.t) =
    { r with Aref.subs = Array.map remap r.Aref.subs }
  in
  let body = List.map (Stmt.map_refs remap_ref) (Nest.body nest) in
  Nest.make ~name:(Nest.name nest) ~loops:new_loops ~body

let plan nest ~levels ~sizes =
  if List.length levels <> List.length sizes then
    invalid_arg "Tile.tile: levels and sizes must pair up";
  if List.sort_uniq compare levels <> List.sort compare levels then
    invalid_arg "Tile.tile: duplicate levels";
  (* Strip-mine from the innermost listed level outward so earlier
     indices stay valid; track where each controller lands. *)
  let pairs =
    List.sort (fun (a, _) (b, _) -> compare b a) (List.combine levels sizes)
  in
  let nest, controllers =
    List.fold_left
      (fun (n, ctrls) (level, size) ->
        (* previous mines at deeper levels shifted nothing at <= level *)
        let n = strip_mine n ~level ~size in
        (* the new controller sits at [level]; controllers recorded
           earlier sat deeper and moved one slot inward *)
        (n, level :: List.map (fun c -> c + 1) ctrls))
      (nest, []) pairs
  in
  (* controllers (in outermost-first order) to the front, everything
     else in original order *)
  let d = Nest.depth nest in
  let ctrls = List.sort compare controllers in
  let rest = List.filter (fun k -> not (List.mem k ctrls)) (List.init d Fun.id) in
  (nest, Array.of_list (ctrls @ rest))

let tile nest ~levels ~sizes =
  let mined, hoist = plan nest ~levels ~sizes in
  Interchange.apply mined hoist
