let is_unit_lower_triangular s =
  let d = Array.length s in
  Array.for_all (fun row -> Array.length row = d) s
  &&
  let ok = ref true in
  for k = 0 to d - 1 do
    if s.(k).(k) <> 1 then ok := false;
    for j = k + 1 to d - 1 do
      if s.(k).(j) <> 0 then ok := false
    done
  done;
  !ok

let inverse s =
  if not (is_unit_lower_triangular s) then
    invalid_arg "Skew.inverse: not unit lower triangular";
  let d = Array.length s in
  let inv = Array.make_matrix d d 0 in
  (* Column j of the inverse solves [s x = e_j] by forward substitution;
     unit diagonal keeps everything integral. *)
  for j = 0 to d - 1 do
    inv.(j).(j) <- 1;
    for i = j + 1 to d - 1 do
      let acc = ref 0 in
      for k = j to i - 1 do
        acc := !acc + (s.(i).(k) * inv.(k).(j))
      done;
      inv.(i).(j) <- - !acc
    done
  done;
  inv

let elementary ~depth ~target ~source ~factor =
  if source < 0 || target >= depth || source >= target then
    invalid_arg "Skew.elementary: need 0 <= source < target < depth";
  let s = Array.init depth (fun i -> Array.init depth (fun j -> if i = j then 1 else 0)) in
  s.(target).(source) <- factor;
  s

let apply nest s =
  let d = Nest.depth nest in
  if Array.length s <> d || not (is_unit_lower_triangular s) then
    invalid_arg "Skew.apply: matrix must be unit lower triangular of the nest depth";
  let loops = Nest.loops nest in
  Array.iter
    (fun (l : Loop.t) ->
      if l.Loop.step <> 1 then invalid_arg "Skew.apply: non-unit step")
    loops;
  let inv = inverse s in
  (* Original indices in terms of the new ones: [i = S^{-1} i']. *)
  let images =
    Array.init d (fun k -> Affine.make ~coefs:(Array.copy inv.(k)) ~const:0)
  in
  let subst_back a = Affine.subst a images in
  (* New bounds for level [k]: the original bound composed with [S^{-1}]
     plus the skew term.  With [t_k = row_k(S) - e_k] the added term is
     [t_k · i = (t_k S^{-1}) · i' = (e_k - row_k(S^{-1})) · i'], which
     mentions only *outer* new indices since [S^{-1}] is unit lower
     triangular — the result is again a valid affine bound. *)
  let skew_term k =
    Affine.make
      ~coefs:(Array.init d (fun j -> (if j = k then 1 else 0) - inv.(k).(j)))
      ~const:0
  in
  let loops' =
    Array.mapi
      (fun k (l : Loop.t) ->
        let lo = Affine.add (subst_back l.Loop.lo) (skew_term k) in
        let hi = Affine.add (subst_back l.Loop.hi) (skew_term k) in
        Loop.make ~var:l.Loop.var ~level:k ~lo ~hi ~step:1)
      loops
  in
  let body' =
    List.map
      (Stmt.map_refs (fun (r : Aref.t) ->
           { r with Aref.subs = Array.map subst_back r.Aref.subs }))
      (Nest.body nest)
  in
  Nest.make ~name:(Nest.name nest)
    ~loops:(Array.to_list loops')
    ~body:body'
