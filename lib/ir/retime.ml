let apply nest shifts =
  let d = Nest.depth nest in
  let body = Nest.body nest in
  if Array.length shifts <> List.length body then
    invalid_arg "Retime.apply: one shift vector per statement";
  Array.iter
    (fun r -> if Array.length r <> d then invalid_arg "Retime.apply: shift dimension")
    shifts;
  let loops = Nest.loops nest in
  let body' =
    List.mapi
      (fun j stmt ->
        (* Statement [j] at iteration [i] performs instance [i - r_j]:
           shift its indices by [-r_j] iterations, i.e. [-r_j * step]. *)
        let off =
          Array.init d (fun k -> -shifts.(j).(k) * loops.(k).Loop.step)
        in
        Stmt.shift stmt off)
      body
  in
  Nest.with_body nest body'
