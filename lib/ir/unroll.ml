open Ujam_linalg

let offsets u =
  let d = Vec.dim u in
  let rec go k =
    if k = d then [ [] ]
    else
      let rest = go (k + 1) in
      List.concat_map
        (fun o -> List.map (fun tl -> o :: tl) rest)
        (List.init (Vec.get u k + 1) Fun.id)
  in
  List.map Vec.of_list (go 0)

let validate nest u =
  let d = Nest.depth nest in
  if Vec.dim u <> d then invalid_arg "Unroll.unroll_and_jam: dimension";
  if Vec.exists (fun x -> x < 0) u then
    invalid_arg "Unroll.unroll_and_jam: negative unroll amount";
  if Vec.get u (d - 1) <> 0 then
    invalid_arg "Unroll.unroll_and_jam: innermost loop must not be unrolled"

let divides nest u =
  match Nest.trip_counts nest with
  | None -> true
  | Some trips ->
      let ok = ref true in
      Array.iteri
        (fun k trip ->
          let f = Vec.get u k + 1 in
          if f > 1 && (trip <= 0 || trip mod f <> 0) then ok := false)
        trips;
      !ok

let clamp_divisible nest u =
  match Nest.trip_counts nest with
  | None -> u
  | Some trips ->
      Vec.init (Nest.depth nest) (fun k ->
          let want = Vec.get u k + 1 in
          let rec fit f = if trips.(k) mod f = 0 then f else fit (f - 1) in
          fit (max 1 (min want trips.(k))) - 1)

let unroll_and_jam nest u =
  validate nest u;
  if Vec.is_zero u then nest
  else begin
    let loops =
      Array.map
        (fun (l : Loop.t) ->
          let f = Vec.get u l.Loop.level + 1 in
          if f = 1 then l else Loop.with_step l (l.Loop.step * f))
        (Nest.loops nest)
    in
    let body =
      (* Interning the jammed body makes the copies share: the
         zero-offset copy is physically the original ([Stmt.shift] is
         identity-preserving on zero deltas), and repeated structure
         across nonzero offsets collapses to one representative per
         class, so downstream equality checks short-circuit on [==]. *)
      Hashcons.body
        (List.concat_map
           (fun o ->
             let shift_iters =
               Array.mapi
                 (fun k ok -> ok * (Nest.loops nest).(k).Loop.step)
                 (Vec.to_array o)
             in
             List.map (fun s -> Stmt.shift s shift_iters) (Nest.body nest))
           (offsets u))
    in
    Nest.with_loops (Nest.with_body nest body) loops
  end
