(** Parser for the Fortran-style loop-nest syntax the pretty-printer
    emits, so kernels can live in files and round-trip through tools:

    {v
    DO J = 1, N, 2
      DO I = 1, 100
        A(I,J) = A(I,J) + 0.25 * (B(I-1,J) + B(I+1,J))
      ENDDO
    ENDDO
    v}

    Accepted language: a single perfect nest of [DO var = lo, hi[, step]]
    headers (bounds are integer literals or affine expressions in outer
    loop variables), a body of assignments whose left side is an array
    element and whose right side is an arithmetic expression over array
    elements, scalar identifiers, and numeric literals with [+ - * /],
    unary minus and parentheses.  Case-insensitive keywords; [!] starts a
    comment.  Subscripts must be affine in the loop variables. *)

type error = { loc : Loc.t; message : string }
(** A located parse failure: [loc] carries the source line (and the
    nest name when one was supplied), in the same {!Loc.t} shape the
    static analyzer's diagnostics use, so front ends report parse
    failures and lint findings uniformly. *)

val nest : ?name:string -> string -> (Nest.t, error) result
(** Parse a complete nest from a string. *)

val nest_exn : ?name:string -> string -> Nest.t
(** @raise Invalid_argument with a located message on parse errors. *)

val pp_error : Format.formatter -> error -> unit
