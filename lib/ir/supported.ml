let max_coefficient = 2

type violation = Bad_step of Loop.t | Bad_coefficient of Aref.t

let find_violation nest =
  match
    Array.find_opt (fun (l : Loop.t) -> l.Loop.step <> 1) (Nest.loops nest)
  with
  | Some l -> Some (Bad_step l)
  | None ->
      List.find_map
        (fun ((r : Aref.t), _) ->
          if
            Array.exists
              (fun (s : Affine.t) ->
                Array.exists (fun c -> abs c > max_coefficient) s.Affine.coefs)
              r.Aref.subs
          then Some (Bad_coefficient r)
          else None)
        (Nest.refs nest)

let message nest = function
  | Bad_step l ->
      Printf.sprintf "%s: loop %s has step %d; only unit-step loops are modelled"
        (Nest.name nest) l.Loop.var l.Loop.step
  | Bad_coefficient r ->
      Printf.sprintf
        "%s: subscript of %s has a coefficient beyond the modelled stride \
         range (|c| <= %d)"
        (Nest.name nest) (Aref.base r) max_coefficient

let check nest =
  match find_violation nest with
  | None -> Ok ()
  | Some v -> Error (message nest v)
