let max_coefficient = 2

type violation =
  | Bad_step of Loop.t
  | Bad_coefficient of { site : Site.t; dim : int; coef : int }

let find_violation nest =
  match
    Array.find_opt (fun (l : Loop.t) -> l.Loop.step <> 1) (Nest.loops nest)
  with
  | Some l -> Some (Bad_step l)
  | None ->
      List.find_map
        (fun (s : Site.t) ->
          let subs = s.Site.ref_.Aref.subs in
          let bad = ref None in
          Array.iteri
            (fun dim (sub : Affine.t) ->
              if !bad = None then
                Array.iter
                  (fun c ->
                    if !bad = None && abs c > max_coefficient then
                      bad := Some (Bad_coefficient { site = s; dim; coef = c }))
                  sub.Affine.coefs)
            subs;
          !bad)
        (Site.of_nest nest)

let message nest = function
  | Bad_step l ->
      Printf.sprintf "%s: loop %s has step %d; only unit-step loops are modelled"
        (Nest.name nest) l.Loop.var l.Loop.step
  | Bad_coefficient { site; dim; coef } ->
      Printf.sprintf
        "%s: subscript %d of %s has coefficient %d beyond the modelled stride \
         range (|c| <= %d)"
        (Nest.name nest) dim
        (Aref.base site.Site.ref_)
        coef max_coefficient

let locate nest = function
  | Bad_step l -> Loc.level ~nest:(Nest.name nest) l.Loop.level
  | Bad_coefficient { site; _ } ->
      Loc.stmt ~nest:(Nest.name nest) ~site:site.Site.id site.Site.stmt

let check nest =
  match find_violation nest with
  | None -> Ok ()
  | Some v -> Error (message nest v)
