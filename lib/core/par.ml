(* Deterministic parallel work queue.

   A lock-free queue over an atomic index: each domain claims the next
   unprocessed job and writes its result into that job's slot, so the
   result ordering is the input ordering no matter how many domains run
   or how the scheduler interleaves them.  Lives in core so that
   [Balance.prepare] can fan its table builds out without depending on
   the engine layer; [Engine.parallel_map] delegates here and layers its
   queue metrics on via [on_claim]. *)

let clamp_domains domains n = max 1 (min domains (max 1 n))

let map ?(domains = 1) ?(on_claim = fun ~remaining:_ -> ()) ~f jobs =
  let n = Array.length jobs in
  let out = Array.make n None in
  let domains = clamp_domains domains n in
  let next = Atomic.make 0 in
  let worker dom () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        on_claim ~remaining:(max 0 (n - i - 1));
        out.(i) <- Some (f ~domain:dom jobs.(i));
        loop ()
      end
    in
    loop ()
  in
  if domains = 1 then worker 0 ()
  else begin
    let spawned =
      List.init (domains - 1) (fun k ->
          Domain.spawn (fun () -> worker (k + 1) ()))
    in
    worker 0 ();
    List.iter Domain.join spawned
  end;
  Array.map (fun slot -> Option.get slot) out
