(* Deterministic work-stealing parallel map.

   Each domain owns a deque holding a contiguous index range; owners
   pop one index at a time from the low end, idle domains steal the
   high half of a victim's range.  Results are written into their
   input slots, so the output ordering is the input ordering no matter
   how many domains run or how the scheduler interleaves them.

   Compared to the previous single shared atomic counter, contiguous
   per-domain ranges mean a domain's claims are cache-local and the
   only cross-domain traffic is the (rare) steal — memo-hit workloads
   with very short per-job cost no longer serialize on one cache line.

   Lock discipline: a thief holds at most one deque lock at a time —
   it removes the stolen range under the victim's lock, releases it,
   then installs the range under its own lock.  Holding both would
   deadlock when two domains steal from each other simultaneously.

   Termination: a global [unclaimed] counter is decremented at claim
   time.  A stolen range in flight (removed from the victim, not yet
   installed at the thief) keeps [unclaimed] positive, so no worker
   can exit while work exists anywhere; workers spin with
   [Domain.cpu_relax] only when every remaining job is claimed or in
   flight.

   Lives in core so that [Balance.prepare] can fan its table builds
   out without depending on the engine layer; [Engine.parallel_map]
   delegates here and layers its queue metrics on via [on_claim]. *)

let clamp_domains domains n = max 1 (min domains (max 1 n))

(* Half-open index range [lo, hi), guarded by [lock]. *)
type deque = { lock : Mutex.t; mutable lo : int; mutable hi : int }

let map ?(domains = 1) ?(on_claim = fun ~remaining:_ -> ())
    ?(on_steal = fun ~thief:_ ~victim:_ ~count:_ -> ()) ~f jobs =
  let n = Array.length jobs in
  let out = Array.make n None in
  let domains = clamp_domains domains n in
  if domains = 1 then begin
    (* Sequential fast path: no locks, no atomics beyond the hook. *)
    for i = 0 to n - 1 do
      on_claim ~remaining:(n - i - 1);
      out.(i) <- Some (f ~domain:0 jobs.(i))
    done;
    Array.map (fun slot -> Option.get slot) out
  end
  else begin
    let deques =
      Array.init domains (fun d ->
          (* Contiguous initial chunks; the first [n mod domains]
             domains take one extra. *)
          let base = n / domains and extra = n mod domains in
          let lo = (d * base) + min d extra in
          let hi = lo + base + (if d < extra then 1 else 0) in
          { lock = Mutex.create (); lo; hi })
    in
    let unclaimed = Atomic.make n in
    (* Owner pop: one index off the low end, or None if empty. *)
    let pop (dq : deque) =
      Mutex.lock dq.lock;
      let r =
        if dq.lo < dq.hi then begin
          let i = dq.lo in
          dq.lo <- i + 1;
          Some i
        end
        else None
      in
      Mutex.unlock dq.lock;
      r
    in
    (* Steal: remove the high half of [victim]'s range (at least one
       index) under its lock alone; the caller installs it under its
       own lock afterwards. *)
    let steal (victim : deque) =
      Mutex.lock victim.lock;
      let r =
        let avail = victim.hi - victim.lo in
        if avail <= 0 then None
        else begin
          let take = max 1 (avail / 2) in
          victim.hi <- victim.hi - take;
          Some (victim.hi, victim.hi + take)
        end
      in
      Mutex.unlock victim.lock;
      r
    in
    let worker dom () =
      let mine = deques.(dom) in
      let run_job i =
        on_claim ~remaining:(Atomic.fetch_and_add unclaimed (-1) - 1);
        out.(i) <- Some (f ~domain:dom jobs.(i))
      in
      let rec drain () =
        match pop mine with
        | Some i ->
            run_job i;
            drain ()
        | None -> hunt 0
      and hunt tries =
        if Atomic.get unclaimed > 0 then begin
          (* Cycle through the other domains, starting at our right
             neighbour; never probes self. *)
          let victim = (dom + 1 + (tries mod (domains - 1))) mod domains in
          match steal deques.(victim) with
          | Some (lo, hi) ->
              Mutex.lock mine.lock;
              mine.lo <- lo;
              mine.hi <- hi;
              Mutex.unlock mine.lock;
              on_steal ~thief:dom ~victim ~count:(hi - lo);
              drain ()
          | None ->
              Domain.cpu_relax ();
              hunt (tries + 1)
        end
      in
      drain ()
    in
    let spawned =
      List.init (domains - 1) (fun k ->
          Domain.spawn (fun () -> worker (k + 1) ()))
    in
    worker 0 ();
    List.iter Domain.join spawned;
    Array.map (fun slot -> Option.get slot) out
  end
