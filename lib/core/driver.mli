(** End-to-end unroll-and-jam driver (Sec. 4.5).

    Pipeline: true-dependence safety bounds, locality ranking of the
    outer loops (at most the best two are unrolled), table construction
    over the bounded unroll space, balance search, transformation, scalar
    replacement. *)

type report = {
  nest : Ujam_ir.Nest.t;
  machine : Ujam_machine.Machine.t;
  cache_model : bool;
  ctx : Analysis_ctx.t;            (** the shared analysis context; holds
                                       the prepared balance tables *)
  safety : int array;              (** per-level legal extra copies *)
  ranked : (int * float) list;     (** locality ranking of outer levels *)
  unroll_levels : int list;        (** levels chosen for unrolling *)
  space : Unroll_space.t;
  choice : Search.choice;
  original : Search.choice;        (** evaluation at the zero vector *)
  transformed : Ujam_ir.Nest.t;
  plan : Scalar_replace.plan;      (** scalar replacement on the result *)
}

val optimize :
  ?bound:int ->
  ?cache:bool ->
  ?max_loops:int ->
  ?ctx:Analysis_ctx.t ->
  machine:Ujam_machine.Machine.t ->
  Ujam_ir.Nest.t ->
  report
(** [bound] (default 10, the paper caps the unroll space per dimension)
    limits extra copies per unrolled loop before the safety bounds are
    applied.  [cache] (default [true]) selects the cache-aware balance
    model; [false] reproduces the all-hits model of [Carr–Kennedy].
    [max_loops] (default 2, "in practice we limit unroll-and-jam to at
    most 2 loops", Sec. 4.5) caps how many outer loops join the unroll
    space.  [ctx] supplies an existing {!Analysis_ctx} for the same
    (nest, machine) pair — its graphs, ranking and tables are reused and
    its [bound]/[max_loops] take precedence over the optional
    arguments. *)

val speedup_estimate : report -> float
(** Ratio of modelled cycles per original iteration, before vs after.
    Reads the balance tables cached in the report's context instead of
    rebuilding them. *)

val speedup :
  machine:Ujam_machine.Machine.t ->
  Balance.t ->
  original:Search.choice ->
  choice:Search.choice ->
  float
(** The underlying estimate on explicit inputs (used by the engine). *)

val pp : Format.formatter -> report -> unit
