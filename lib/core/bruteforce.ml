open Ujam_linalg
open Ujam_ir
open Ujam_reuse
open Ujam_machine

type metrics = {
  streams : int;
  memory_ops : int;
  registers : int;
  flops : int;
  misses : float;
  balance_cache : float;
  balance_nocache : float;
}

let metrics ~machine nest u =
  let unrolled = Transform.apply_exn (Transform.Unroll u) nest in
  let d = Nest.depth unrolled in
  let localized = Subspace.span_dims ~dim:d [ d - 1 ] in
  let summary = Streams.summarize (Streams.of_body ~localized unrolled) in
  let flops = Nest.flops_per_iteration unrolled in
  let misses =
    Locality.nest_accesses ~line:machine.Machine.cache_line ~localized unrolled
  in
  let v_m = float_of_int summary.Streams.memory_ops in
  let v_f = float_of_int flops in
  let balance_nocache = if v_f = 0.0 then infinity else v_m /. v_f in
  let balance_cache =
    if v_f = 0.0 then infinity
    else begin
      let cycles =
        Float.max
          (v_m /. float_of_int machine.Machine.mem_issue)
          (v_f /. float_of_int machine.Machine.fp_issue)
      in
      let serviced = machine.Machine.prefetch_bandwidth *. cycles in
      let unserviced = Float.max 0.0 (misses -. serviced) in
      (v_m +. (unserviced *. Machine.miss_ratio_cost machine)) /. v_f
    end
  in
  { streams = summary.Streams.streams;
    memory_ops = summary.Streams.memory_ops;
    registers = summary.Streams.registers;
    flops;
    misses;
    balance_cache;
    balance_nocache }

let copies = Unroll_space.copies

let best ~cache ~machine space nest =
  let beta_m = Machine.balance machine in
  let objective m = Float.abs ((if cache then m.balance_cache else m.balance_nocache) -. beta_m) in
  let best = ref None in
  Unroll_space.iter space (fun u ->
      let m = metrics ~machine nest u in
      if m.registers <= machine.Machine.fp_registers then
        match !best with
        | None -> best := Some (u, m)
        | Some (bu, bm) ->
            let c = Float.compare (objective m) (objective bm) in
            let wins =
              if c <> 0 then c < 0
              else
                let c = compare (copies u) (copies bu) in
                if c <> 0 then c < 0 else Vec.compare u bu < 0
            in
            if wins then best := Some (u, m));
  match !best with
  | Some r -> r
  | None ->
      let u0 = Vec.zero (Unroll_space.depth space) in
      (u0, metrics ~machine nest u0)
