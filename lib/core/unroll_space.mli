(** The bounded unroll space [%U] and dense tables over it.

    An unroll vector gives the number of *extra* body copies per loop
    level; the innermost level is never unrolled, so its bound is 0.
    The space is the pointwise box [0 <= u <= bounds].  Tables indexed by
    unroll vectors are the paper's central data structure: they are
    filled once from the UGS structure and then answer every candidate
    [u] during the search.

    Tables are backed by a flat array plus a pending difference layer:
    region writes ([add_from]/[add_region]/[add_cover]) cost O(corners)
    and are folded into per-cell values by d running-sum sweeps
    (O(d·card) total) on the first read after a write; prefix sums are
    answered in O(1) from a cached summed-area table.  The pre-sweep
    per-cell implementation survives as {!Reference} for differential
    testing and benchmarking. *)

open Ujam_linalg

type t

val make : bounds:int array -> t
(** @raise Invalid_argument if any bound is negative or the last bound is
    non-zero. *)

val uniform : depth:int -> bound:int -> unroll_levels:int list -> t
(** Bound [bound] on each level in [unroll_levels], 0 elsewhere. *)

val depth : t -> int
val bounds : t -> int array
val card : t -> int
val mem : t -> Vec.t -> bool
val unroll_levels : t -> int list
(** Levels with a non-zero bound. *)

val copies : Vec.t -> int
(** Body copies made by unroll vector [u]: product of [u_k + 1]. *)

val iter : t -> (Vec.t -> unit) -> unit
(** Lexicographic enumeration of all vectors in the space. *)

val fold : t -> 'a -> ('a -> Vec.t -> 'a) -> 'a
(** [fold t init f] folds [f] over the space in lexicographic order. *)

val iter_pruned : t -> prune:(Vec.t -> bool) -> (Vec.t -> unit) -> int
(** Lexicographic enumeration with monotone subtree pruning.  At each
    enumeration node the pointwise-minimal completion of the current
    prefix is offered to [prune]; if it answers [true], the node's
    subtree and all later siblings at that level (whose minimal
    completions are pointwise above it) are skipped.  Sound whenever
    [prune] is upward-closed: [prune u && u <= u'] implies [prune u'].
    Returns the number of vectors skipped. *)

val vectors : t -> Vec.t list

module Table : sig
  type space = t
  type t

  val create : space -> int -> t
  val space : t -> space
  val get : t -> Vec.t -> int
  val set : t -> Vec.t -> int -> unit
  val add : t -> Vec.t -> int -> unit

  val add_from : t -> Vec.t -> int -> unit
  (** [add_from t lo delta] adds [delta] at every [u >= lo] pointwise.
      O(1): a single corner update on the pending difference layer. *)

  val add_region : t -> from_:Vec.t -> excluding:Vec.t option -> int -> unit
  (** Adds on [{u >= from_} \ {u >= excluding}]: the paper's "between the
      newly computed merge point and the previous superleader's".  At
      most two corner updates. *)

  val add_cover : t -> Vec.t list -> int -> unit
  (** [add_cover t points delta] adds [delta] once at every [u] above at
      least one of [points] (the union of their upward boxes).  One or
      two corner updates for antichains of size <= 2, otherwise a single
      O(d·card) OR-sweep — never a per-point scan. *)

  val prefix_sum : t -> Vec.t -> int
  (** [sum over 0 <= u' <= u of t[u']] — the paper's [Sum] function.
      O(1) per query after a one-time summed-area sweep. *)

  val merge_add : t -> t -> t
  (** Pointwise sum; spaces must agree. *)

  val fold : t -> 'a -> ('a -> Vec.t -> int -> 'a) -> 'a
  (** Folds over [(vector, value)] pairs in lexicographic order. *)

  val to_alist : t -> (Vec.t * int) list
end

module Reference : sig
  (** The original per-cell table semantics: every region write and every
      prefix sum is a full-space scan.  Kept as the differential-testing
      oracle for the sweep engine above and as the benchmark baseline. *)

  type space = t
  type t

  val create : space -> int -> t
  val space : t -> space
  val get : t -> Vec.t -> int
  val set : t -> Vec.t -> int -> unit
  val add : t -> Vec.t -> int -> unit
  val add_from : t -> Vec.t -> int -> unit
  val add_region : t -> from_:Vec.t -> excluding:Vec.t option -> int -> unit
  val add_cover : t -> Vec.t list -> int -> unit
  val prefix_sum : t -> Vec.t -> int
  val to_alist : t -> (Vec.t * int) list
end
