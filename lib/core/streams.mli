(** Value streams: register-reuse sets (Figure 4) generalised to unrolled
    bodies.

    A stream is a maximal run of references to the same moving location
    that can share one register chain in the innermost loop: the members
    of a group-temporal set ordered by the time they touch a location
    (larger constants touch a fixed location earlier), split at every
    definition because a store regenerates the value (Sec. 4.3).

    Two equivalent constructions are provided: [of_body] materialises a
    (possibly unrolled) body and partitions its sites — the ground truth
    — while [of_ugs_unrolled] derives the streams of the unrolled loop
    from the original UGS structure and an unroll vector alone, which is
    the paper's point: no unrolled data structure is ever built. *)

open Ujam_linalg
open Ujam_reuse

type member = {
  site : Ujam_ir.Site.t;
  delta : int;  (** innermost-loop time offset within the stream *)
  is_def : bool;
  copy : int;
      (** textual rank of the body copy the member comes from (0 in an
          already-materialised body, whose statement indices encode it) *)
}

type stream = {
  base : string;
  h : Ujam_linalg.Mat.t;
  invariant : bool;
  members : member list;
}

val registers : stream -> int
(** Registers needed by scalar replacement: delta span + 1; 1 for an
    invariant stream. *)

val memory_ops : stream -> int
(** Memory operations per innermost iteration after scalar replacement:
    one per stream (the generating load or store); 0 when invariant. *)

val build :
  base:string -> h:Ujam_linalg.Mat.t -> invariant:bool -> member list -> stream list
(** Time-sort the members and split at definitions; building block for
    alternative analyses (e.g. the dependence-based model) that derive
    the member sets by other means. *)

val of_body : localized:Subspace.t -> Ujam_ir.Nest.t -> stream list

val of_ugs_unrolled :
  Unroll_space.t -> localized:Subspace.t -> Ugs.t -> Vec.t -> stream list

val unrolled_fn :
  Unroll_space.t -> localized:Subspace.t -> Ugs.t -> Vec.t -> stream list
(** Partial application of {!of_ugs_unrolled}: the class decomposition,
    merge keys and member offsets are resolved once; the returned closure
    only enumerates the offset boxes for each queried vector.  Use when
    filling whole tables. *)

val of_nest_unrolled :
  Unroll_space.t -> localized:Subspace.t -> Ujam_ir.Nest.t -> Vec.t -> stream list

type summary = { streams : int; memory_ops : int; registers : int }

val summarize : stream list -> summary

val unrolled_summary_fn :
  Unroll_space.t -> localized:Subspace.t -> Ugs.t -> Vec.t -> summary
(** [summarize (unrolled_fn space ~localized ugs u)] without building
    the streams: the deposit partition and its time order are computed
    once over the full space box (they are independent of [u]), and each
    query is an allocation-free walk that filters offsets outside
    [0..u].  Table fills ({!Rrs.summary_tables}) run on this; the test
    suite pins its agreement with the materialised construction. *)
