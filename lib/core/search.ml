open Ujam_linalg
module Obs = Ujam_obs.Obs

(* Cells skipped per search by the monotone-register pruning. *)
let h_pruned = Obs.histogram "search.pruned_cells"

type choice = {
  u : Vec.t;
  balance : float;
  objective : float;
  registers : int;
  memory_ops : int;
  flops : int;
}

let evaluate ?level ~cache b u =
  let beta_m = Ujam_machine.Machine.balance (Balance.machine b) in
  let balance =
    match level with
    | Some l -> Balance.loop_balance_level b ~level:l u
    | None -> Balance.loop_balance b ~cache u
  in
  { u;
    balance;
    objective = Float.abs (balance -. beta_m);
    registers = Balance.registers b u;
    memory_ops = Balance.memory_ops b u;
    flops = Balance.flops b u }

let better a b =
  (* Smaller objective wins; ties prefer fewer copies, then lex order. *)
  let c = Float.compare a.objective b.objective in
  if c <> 0 then c < 0
  else
    let c =
      compare (Unroll_space.copies a.u) (Unroll_space.copies b.u)
    in
    if c <> 0 then c < 0 else Vec.compare a.u b.u < 0

(* R(u) is pointwise monotone in u (unrolling more never frees a
   register), so the infeasible set {u | R(u) > max_regs} is upward
   closed and [iter_pruned] may skip whole boxes above the first
   violation.  Feasible candidates are enumerated in the same lex order
   as the plain [iter], so pruning never changes the chosen vector —
   the QCheck soundness suite and [~prune:false] keep that honest. *)
let best ?(prune = true) ?level ~cache b =
  let max_regs = (Balance.machine b).Ujam_machine.Machine.fp_registers in
  let best = ref None in
  let consider u =
    let c = evaluate ?level ~cache b u in
    if c.registers <= max_regs then
      match !best with
      | None -> best := Some c
      | Some cur -> if better c cur then best := Some c
  in
  let pruned =
    if prune then
      Unroll_space.iter_pruned (Balance.space b)
        ~prune:(fun u -> Balance.registers b u > max_regs)
        consider
    else begin
      Unroll_space.iter (Balance.space b) consider;
      0
    end
  in
  Obs.Histogram.record h_pruned (float_of_int pruned);
  match !best with
  | Some c -> c
  | None ->
      evaluate ?level ~cache b (Vec.zero (Unroll_space.depth (Balance.space b)))
