open Ujam_ir
open Ujam_machine

type stage = Graph | Tables | Search | Sim

type timings = {
  mutable graph_s : float;
  mutable tables_s : float;
  mutable search_s : float;
  mutable sim_s : float;
}

type t = {
  nest : Nest.t;
  machine : Machine.t;
  bound : int;
  max_loops : int;
  timings : timings;
  table_builds : int ref;
  graph : Ujam_depend.Graph.t Lazy.t;
  graph_with_input : Ujam_depend.Graph.t Lazy.t;
  safety : int array Lazy.t;
  ugs : Ujam_reuse.Ugs.t list Lazy.t;
  sites : Site.t list Lazy.t;
  ranked : (int * float) list Lazy.t;
  levels_and_space : (int list * Unroll_space.t) Lazy.t;
  balance : Balance.t Lazy.t;
}

let zero_timings () = { graph_s = 0.0; tables_s = 0.0; search_s = 0.0; sim_s = 0.0 }

let stage_name = function
  | Graph -> "graph"
  | Tables -> "tables"
  | Search -> "search"
  | Sim -> "sim"

let record timings stage dt =
  match stage with
  | Graph -> timings.graph_s <- timings.graph_s +. dt
  | Tables -> timings.tables_s <- timings.tables_s +. dt
  | Search -> timings.search_s <- timings.search_s +. dt
  | Sim -> timings.sim_s <- timings.sim_s +. dt

(* Each stage timer is also a span: the same [t0]/[dt] pair feeds both
   the timing counter and the trace event, so the sum of span durations
   per stage equals the counter exactly (a golden test pins this). *)
let timed_into timings stage f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      record timings stage dt;
      Ujam_obs.Obs.Span.emit ~name:(stage_name stage) ~t0 ~dur:dt)
    f

let create ?(bound = 10) ?(max_loops = 2) ?(table_domains = 1) ~machine nest =
  let timings = zero_timings () in
  let table_builds = ref 0 in
  let graph =
    lazy
      (timed_into timings Graph (fun () ->
           Ujam_depend.Graph.build ~include_input:false nest))
  in
  let graph_with_input =
    lazy
      (timed_into timings Graph (fun () ->
           Ujam_depend.Graph.build ~include_input:true nest))
  in
  let safety =
    lazy
      (timed_into timings Graph (fun () ->
           Ujam_depend.Safety.max_safe_unroll (Lazy.force graph)))
  in
  let ugs = lazy (Ujam_reuse.Ugs.of_nest nest) in
  let sites = lazy (Site.of_nest nest) in
  let ranked =
    lazy
      (Ujam_reuse.Locality.rank_outer_loops ~groups:(Lazy.force ugs)
         ~line:machine.Machine.cache_line nest)
  in
  let levels_and_space =
    lazy
      (let d = Nest.depth nest in
       let safety = Lazy.force safety in
       let levels =
         Lazy.force ranked
         |> List.filter (fun (level, _) -> safety.(level) > 0)
         |> List.filteri (fun i _ -> i < max_loops)
         |> List.map fst
       in
       let bounds = Array.make d 0 in
       List.iter (fun level -> bounds.(level) <- min bound safety.(level)) levels;
       (levels, Unroll_space.make ~bounds))
  in
  let balance =
    lazy
      (incr table_builds;
       timed_into timings Tables (fun () ->
           let _, space = Lazy.force levels_and_space in
           Balance.prepare ~domains:table_domains ~groups:(Lazy.force ugs)
             ~machine space nest))
  in
  { nest; machine; bound; max_loops; timings; table_builds; graph;
    graph_with_input; safety; ugs; sites; ranked; levels_and_space; balance }

let nest t = t.nest
let machine t = t.machine
let bound t = t.bound
let max_loops t = t.max_loops
let graph t = Lazy.force t.graph
let graph_with_input t = Lazy.force t.graph_with_input
let safety t = Array.copy (Lazy.force t.safety)
let ugs t = Lazy.force t.ugs
let sites t = Lazy.force t.sites
let ranked t = Lazy.force t.ranked
let unroll_levels t = fst (Lazy.force t.levels_and_space)
let space t = snd (Lazy.force t.levels_and_space)
let balance t = Lazy.force t.balance
let table_builds t = !(t.table_builds)
let timed t stage f = timed_into t.timings stage f
let timings t = t.timings

let pp_timings ppf t =
  Format.fprintf ppf "graph %.3fs, tables %.3fs, search %.3fs, sim %.3fs"
    t.graph_s t.tables_s t.search_s t.sim_s
