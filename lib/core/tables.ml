open Ujam_linalg
open Ujam_reuse

let total = Unroll_space.Table.prefix_sum

(* Partition leaders into merge components: two leaders are in the same
   component when the solver connects them; keys are offsets relative to
   the component root.  Solvability differences add, so scanning against
   roots is enough. *)
let components ~dim ~solver leaders =
  let comps : (Vec.t * (Vec.t * Vec.t) list ref) list ref = ref [] in
  List.iter
    (fun c ->
      let rec place = function
        | [] -> comps := !comps @ [ (c, ref [ (c, Vec.zero dim) ]) ]
        | (root, members) :: rest -> (
            match solver ~c_from:root ~c_to:c with
            | Some { Solvers.m; _ } -> members := !members @ [ (c, m) ]
            | None -> place rest)
      in
      place !comps)
    leaders;
  List.map (fun (_, members) -> !members) !comps

(* Per-copy group table.  T[u'] counts the leaders whose copy at offset
   u' starts a new group: leader j's copy at u' duplicates an earlier
   copy exactly when u' >= d for some merge point d of j — the offset
   difference to a leader with a pointwise-larger key, or a self-merge
   along a kernel direction of the unroll space, possibly shifted by the
   kernel lattice.  Summing T over u' <= u (the paper's Sum) yields the
   group count after unrolling by u. *)
let compute_table space ~solver ~kernel_gens leaders =
  let dim = Unroll_space.depth space in
  let n = List.length leaders in
  let t = Unroll_space.Table.create space n in
  let max_bound = Array.fold_left max 0 (Unroll_space.bounds space) in
  (* Lattice shifts of a base difference: base + sum a_i * g_i for small
     coefficients, keeping non-negative in-space non-zero points. *)
  let variants base =
    let rec expand acc = function
      | [] -> acc
      | g :: rest ->
          let shifted =
            List.concat_map
              (fun v ->
                List.init
                  ((2 * (max_bound + 1)) + 1)
                  (fun a -> Vec.add v (Vec.scale (a - max_bound - 1) g)))
              acc
          in
          expand shifted rest
    in
    expand [ base ] kernel_gens
    |> List.filter (fun v ->
           (not (Vec.is_zero v)) && Unroll_space.mem space v)
  in
  List.iter
    (fun members ->
      let keys = List.map snd members in
      List.iter
        (fun kj ->
          let merge_points =
            List.concat_map (fun ki -> variants (Vec.sub ki kj)) keys
          in
          (* -1 on the union of the upward boxes of the merge points:
             one sweep (or corner update) instead of a per-cell scan. *)
          Unroll_space.Table.add_cover t merge_points (-1))
        keys)
    (components ~dim ~solver leaders);
  t

let iter_box u f =
  let d = Vec.dim u in
  let o = Array.make d 0 in
  let rec go k =
    if k = d then f (Vec.make o)
    else
      for x = 0 to Vec.get u k do
        o.(k) <- x;
        go (k + 1)
      done
  in
  go 0

let exact_count space ~solver ~equiv leaders u =
  if not (Unroll_space.mem space u) then
    invalid_arg "Tables.exact_count: unroll vector out of space";
  let count = ref 0 in
  List.iter
    (fun members ->
      (* Distinct points modulo the kernel directions of the unroll
         space: two offsets are one group when [equiv] relates them. *)
      let reps : Vec.t list ref = ref [] in
      List.iter
        (fun (_, m) ->
          iter_box u (fun o ->
              let p = Vec.add m o in
              if not (List.exists (fun r -> Option.is_some (equiv p r)) !reps)
              then begin
                reps := p :: !reps;
                incr count
              end))
        members)
    (components ~dim:(Unroll_space.depth space) ~solver leaders);
  !count

let orientable v =
  Vec.for_all (fun x -> x >= 0) v || Vec.for_all (fun x -> x <= 0) v

let applicable space ~solver ~kernel_gens leaders =
  List.for_all orientable kernel_gens
  && List.for_all
       (fun members ->
         let keys = List.map snd members in
         List.for_all
           (fun ki ->
             List.for_all (fun kj -> orientable (Vec.sub ki kj)) keys)
           keys)
       (components ~dim:(Unroll_space.depth space) ~solver leaders)

let gts_leaders ~localized (ugs : Ugs.t) =
  List.map
    (fun (s : Ujam_ir.Site.t) -> Ujam_ir.Aref.c_vector s.Ujam_ir.Site.ref_)
    (Groups.leaders (Groups.group_temporal ~localized ugs))

let gss_leaders ~localized (ugs : Ugs.t) =
  List.map
    (fun (s : Ujam_ir.Site.t) -> Ujam_ir.Aref.c_vector s.Ujam_ir.Site.ref_)
    (Groups.leaders (Groups.group_spatial ~localized ugs))

let temporal_solver space ~localized (ugs : Ugs.t) =
  Solvers.temporal ~h:ugs.Ugs.h ~localized
    ~unroll_levels:(Unroll_space.unroll_levels space)

let spatial_solver space ~localized (ugs : Ugs.t) =
  Solvers.spatial ~h:ugs.Ugs.h ~localized
    ~unroll_levels:(Unroll_space.unroll_levels space)

let gts_table space ~localized ugs =
  compute_table space
    ~solver:(temporal_solver space ~localized ugs)
    ~kernel_gens:
      (Solvers.kernel_moves ~h:ugs.Ugs.h ~localized
         ~unroll_levels:(Unroll_space.unroll_levels space))
    (gts_leaders ~localized ugs)

let gss_table space ~localized ugs =
  compute_table space
    ~solver:(spatial_solver space ~localized ugs)
    ~kernel_gens:
      (Solvers.kernel_moves
         ~h:(Ujam_reuse.Selfreuse.spatial_matrix ugs.Ugs.h)
         ~localized
         ~unroll_levels:(Unroll_space.unroll_levels space))
    (gss_leaders ~localized ugs)

let gts_applicable space ~localized ugs =
  applicable space
    ~solver:(temporal_solver space ~localized ugs)
    ~kernel_gens:
      (Solvers.kernel_moves ~h:ugs.Ugs.h ~localized
         ~unroll_levels:(Unroll_space.unroll_levels space))
    (gts_leaders ~localized ugs)

(* Exact totals without the per-[u] rescan.  [equiv] is an equivalence
   (membership of the difference in a lattice), so the copy points
   [m + o] partition into classes independently of which box they are
   observed in: restricting to the box [o <= u] just restricts each
   class to its offsets inside the box.  Hence the table value at [u]
   is the number of classes with at least one offset [<= u] — each
   class contributes +1 on the union of the upward boxes of its
   offsets ([add_cover]).  One partition of the full space per
   component replaces |U| partitions of sub-boxes. *)
let exact_totals_table space ~solver ~equiv leaders =
  let comps = components ~dim:(Unroll_space.depth space) ~solver leaders in
  let t = Unroll_space.Table.create space 0 in
  List.iter
    (fun members ->
      let reps : (Vec.t * Vec.t list ref) list ref = ref [] in
      List.iter
        (fun (_, m) ->
          Unroll_space.iter space (fun o ->
              let p = Vec.add m o in
              let rec place = function
                | [] -> reps := (p, ref [ o ]) :: !reps
                | (r, offsets) :: rest ->
                    if Option.is_some (equiv p r) then offsets := o :: !offsets
                    else place rest
              in
              place !reps))
        members;
      List.iter
        (fun (_, offsets) -> Unroll_space.Table.add_cover t !offsets 1)
        !reps)
    comps;
  t

let gts_exact_table space ~localized ugs =
  exact_totals_table space
    ~solver:(temporal_solver space ~localized ugs)
    ~equiv:(Solvers.temporal_point_equiv ~h:ugs.Ujam_reuse.Ugs.h ~localized)
    (gts_leaders ~localized ugs)

let gss_exact_table space ~localized ugs =
  exact_totals_table space
    ~solver:(spatial_solver space ~localized ugs)
    ~equiv:(Solvers.spatial_point_equiv ~h:ugs.Ujam_reuse.Ugs.h ~localized)
    (gss_leaders ~localized ugs)

let gts_exact space ~localized ugs u =
  exact_count space
    ~solver:(temporal_solver space ~localized ugs)
    ~equiv:(Solvers.temporal_point_equiv ~h:ugs.Ugs.h ~localized)
    (gts_leaders ~localized ugs) u

let gss_exact space ~localized ugs u =
  exact_count space
    ~solver:(spatial_solver space ~localized ugs)
    ~equiv:(Solvers.spatial_point_equiv ~h:ugs.Ugs.h ~localized)
    (gss_leaders ~localized ugs) u
