(** Shared, memoized analysis context for one (nest, machine) pair.

    Every selection strategy consumes the same derived facts: the
    dependence graph (with and without input edges), the safety vector,
    the locality ranking of the outer loops, the UGS partition, the
    bounded unroll space, and the GTS/GSS/RRS balance tables.  Before
    this module each code path re-derived them from scratch (and
    [Driver.speedup_estimate] rebuilt the balance tables a second time on
    data its report already held).  A context computes each fact at most
    once, behind lazy memo fields, and exposes per-stage wall-clock
    counters so corpus runs can report where analysis time goes. *)

type stage = Graph | Tables | Search | Sim

val stage_name : stage -> string
(** The span / report name of a stage: ["graph"], ["tables"],
    ["search"], ["sim"]. *)

type timings = {
  mutable graph_s : float;   (** dependence graphs + safety *)
  mutable tables_s : float;  (** UGS tables (GTS/GSS/RRS) *)
  mutable search_s : float;  (** unroll-vector selection *)
  mutable sim_s : float;     (** cache/CPU simulation *)
}

type t

val create :
  ?bound:int ->
  ?max_loops:int ->
  ?table_domains:int ->
  machine:Ujam_machine.Machine.t ->
  Ujam_ir.Nest.t ->
  t
(** Defaults match {!Driver.optimize}: [bound] 10, [max_loops] 2.
    Nothing is computed until the corresponding accessor is first
    called.  [table_domains] (default 1) fans the balance-table builds
    out over {!Balance.prepare}'s Domain work queue — meant for
    single-nest callers; corpus runners already parallelise across
    nests and should leave it at 1. *)

val nest : t -> Ujam_ir.Nest.t
val machine : t -> Ujam_machine.Machine.t
val bound : t -> int
val max_loops : t -> int

val graph : t -> Ujam_depend.Graph.t
(** Dependence graph without input edges (safety analysis). *)

val graph_with_input : t -> Ujam_depend.Graph.t
(** Dependence graph including read-read edges (dependence model,
    Table-1 statistics). *)

val safety : t -> int array
(** Per-level legal extra copies ({!Ujam_depend.Safety.max_safe_unroll}). *)

val ugs : t -> Ujam_reuse.Ugs.t list
(** The UGS partition of the nest, computed once and shared by the
    locality ranking and the balance tables. *)

val sites : t -> Ujam_ir.Site.t list
(** All reference sites of the nest in textual order. *)

val ranked : t -> (int * float) list
(** Locality ranking of the outer loops, best first. *)

val unroll_levels : t -> int list
(** The levels joining the unroll space: the best [max_loops] ranked
    levels with non-zero safety bounds. *)

val space : t -> Unroll_space.t
(** The bounded unroll space over {!unroll_levels}. *)

val balance : t -> Balance.t
(** The prepared balance tables; built at most once per context. *)

val table_builds : t -> int
(** How many times this context built its balance tables — at most 1;
    exposed so tests can pin the "tables built exactly once" invariant. *)

val timed : t -> stage -> (unit -> 'a) -> 'a
(** Run a computation, charging its wall-clock time to a stage
    counter. *)

val timings : t -> timings
val zero_timings : unit -> timings
val pp_timings : Format.formatter -> timings -> unit
