open Ujam_linalg
open Ujam_ir
open Ujam_reuse

type member = { site : Site.t; delta : int; is_def : bool; copy : int }

type stream = { base : string; h : Mat.t; invariant : bool; members : member list }

let span members =
  match members with
  | [] -> 0
  | m :: rest ->
      let mn, mx =
        List.fold_left
          (fun (mn, mx) m -> (min mn m.delta, max mx m.delta))
          (m.delta, m.delta) rest
      in
      mx - mn

let registers s = if s.invariant then 1 else span s.members + 1
let memory_ops s = if s.invariant then 0 else 1

(* Time order: larger delta touches a fixed location earlier; within one
   iteration, body-copy order then statement order, and a statement's
   reads execute before its write. *)
let time_sort members =
  let rank m =
    (m.copy, m.site.Site.stmt, (if m.is_def then 1 else 0), m.site.Site.id)
  in
  List.stable_sort
    (fun a b ->
      let c = compare b.delta a.delta in
      if c <> 0 then c else compare (rank a) (rank b))
    members

(* A definition regenerates the value, so it begins a new stream. *)
let split_at_defs ~base ~h ~invariant members =
  if invariant then
    match members with [] -> [] | ms -> [ { base; h; invariant; members = ms } ]
  else begin
    let finished = ref [] in
    let current = ref [] in
    let flush () =
      if !current <> [] then begin
        finished := { base; h; invariant; members = List.rev !current } :: !finished;
        current := []
      end
    in
    List.iter
      (fun m ->
        if m.is_def then flush ();
        current := m :: !current)
      members;
    flush ();
    List.rev !finished
  end

let build ~base ~h ~invariant members = split_at_defs ~base ~h ~invariant (time_sort members)

let class_streams ~h ~localized ~base (sites : Site.t list) =
  match sites with
  | [] -> []
  | leader :: _ ->
      let invariant = Selfreuse.has_self_temporal ~localized h in
      let c0 = Aref.c_vector leader.Site.ref_ in
      let members =
        List.map
          (fun (s : Site.t) ->
            let delta =
              match
                Subspace.solution_in h (Vec.sub (Aref.c_vector s.Site.ref_) c0) localized
              with
              | Some x -> Vec.get x (Vec.dim x - 1)
              | None -> 0 (* unreachable: sites come from one GTS class *)
            in
            { site = s; delta; is_def = Site.is_write s; copy = 0 })
          sites
      in
      split_at_defs ~base ~h ~invariant (time_sort members)

let of_body ~localized nest =
  List.concat_map
    (fun (u : Ugs.t) ->
      let part = Groups.group_temporal ~localized u in
      List.concat_map
        (fun cls -> class_streams ~h:u.Ugs.h ~localized ~base:u.Ugs.base cls)
        part.Groups.classes)
    (Ugs.of_nest nest)

let iter_box u f =
  let d = Vec.dim u in
  let o = Array.make d 0 in
  let rec go k =
    if k = d then f (Vec.make o)
    else
      for x = 0 to Vec.get u k do
        o.(k) <- x;
        go (k + 1)
      done
  in
  go 0

(* Streams of the unrolled loop, from the original UGS alone.  Each GTS
   class of the original body gets a merge key (m over the unroll levels,
   delta on the innermost loop) relative to its component root; after
   unrolling by [u] the classes of the unrolled body are the points of
   the union of the key-shifted boxes, and each covering class deposits
   its members there, time-shifted by its key delta.  The component
   decomposition and per-member offsets depend only on the UGS, so
   [unrolled_fn] computes them once and returns a per-[u] closure. *)
let unrolled_parts space ~localized (ugs : Ugs.t) =
  let h = ugs.Ugs.h in
  let solver =
    Solvers.temporal ~h ~localized ~unroll_levels:(Unroll_space.unroll_levels space)
  in
  let classes = (Groups.group_temporal ~localized ugs).Groups.classes in
  (* Pre-resolve each member's time offset relative to its class leader. *)
  let resolved_classes =
    List.map
      (fun cls ->
        let c0 = Aref.c_vector (List.hd cls).Site.ref_ in
        ( c0,
          List.map
            (fun (s : Site.t) ->
              let d_rel =
                match
                  Subspace.solution_in h (Vec.sub (Aref.c_vector s.Site.ref_) c0)
                    localized
                with
                | Some x -> Vec.get x (Vec.dim x - 1)
                | None -> 0
              in
              (s, d_rel, Site.is_write s))
            cls ))
      classes
  in
  (* Component decomposition with keys relative to component roots. *)
  let comps :
      (Vec.t * ((Site.t * int * bool) list * Solvers.key) list ref) list ref =
    ref []
  in
  List.iter
    (fun (c0, members) ->
      let rec place = function
        | [] ->
            let key = { Solvers.m = Vec.zero (Unroll_space.depth space); delta = 0 } in
            comps := !comps @ [ (c0, ref [ (members, key) ]) ]
        | (root, cell) :: rest -> (
            match solver ~c_from:root ~c_to:c0 with
            | Some key -> cell := !cell @ [ (members, key) ]
            | None -> place rest)
      in
      place !comps)
    resolved_classes;
  let invariant = Selfreuse.has_self_temporal ~localized h in
  let equiv = Solvers.temporal_point_equiv ~h ~localized in
  (comps, invariant, equiv)

let unrolled_fn space ~localized (ugs : Ugs.t) =
  let h = ugs.Ugs.h in
  let comps, invariant, equiv = unrolled_parts space ~localized ugs in
  fun u ->
    if not (Unroll_space.mem space u) then
      invalid_arg "Streams.of_ugs_unrolled: unroll vector out of space";
    List.concat_map
      (fun (_, cell) ->
        (* Points of the union of shifted boxes, modulo the unroll-space
           kernel directions; copies at equivalent points pool into the
           representative's member set, time-shifted by the witness. *)
        (* Newest rep first; classes are pairwise inequivalent, so at
           most one rep can match a point and the scan order is
           irrelevant — a final reverse restores discovery order
           without the quadratic append-per-rep. *)
        let reps : (Vec.t * member list ref) list ref = ref [] in
        List.iter
          (fun (members, { Solvers.m; delta }) ->
            (* iter_box enumerates offsets lexicographically: the running
               index is the textual rank of the body copy. *)
            let copy_rank = ref (-1) in
            iter_box u (fun o ->
                incr copy_rank;
                let p = Vec.add m o in
                let rec find = function
                  | [] ->
                      let cell = ref [] in
                      reps := (p, cell) :: !reps;
                      (cell, 0)
                  | (r, cell) :: rest -> (
                      match equiv p r with
                      | Some shift -> (cell, shift)
                      | None -> find rest)
                in
                let cell, shift = find !reps in
                List.iter
                  (fun (s, d_rel, is_def) ->
                    cell :=
                      { site = s;
                        delta = delta + d_rel + shift;
                        is_def;
                        copy = !copy_rank }
                      :: !cell)
                  members))
          !cell;
        List.concat_map
          (fun (_, cell) ->
            split_at_defs ~base:ugs.Ugs.base ~h ~invariant (time_sort (List.rev !cell)))
          (List.rev !reps))
      !comps

let of_ugs_unrolled space ~localized ugs u = unrolled_fn space ~localized ugs u

let of_nest_unrolled space ~localized nest u =
  List.concat_map
    (fun g -> of_ugs_unrolled space ~localized g u)
    (Ugs.of_nest nest)

type summary = { streams : int; memory_ops : int; registers : int }

let summarize ss =
  List.fold_left
    (fun acc s ->
      { streams = acc.streams + 1;
        memory_ops = acc.memory_ops + memory_ops s;
        registers = acc.registers + registers s })
    { streams = 0; memory_ops = 0; registers = 0 }
    ss

(* [summarize (unrolled_fn u)] without building streams per [u].

   Every ingredient of the per-[u] stream decomposition is independent
   of [u] once computed over the full space box: the class partition of
   the deposit points (equivalence classes restrict to sub-boxes), each
   deposit's time offset, and the total time order — [time_sort]'s key
   is (delta desc, body-copy rank, stmt, def, site id), and the copy
   rank of offset [o] within any box [0..u] orders exactly as lex([o]).
   So we partition and sort once, and each query walks the sorted
   deposit arrays, skipping entries whose offset lies outside [0..u],
   splitting at definitions and accumulating spans — no allocation, no
   hashing, no sorting per [u]. *)
type deposit = { off : int array; d_delta : int; d_stmt : int; d_def : bool; d_id : int }

let unrolled_summary_fn space ~localized (ugs : Ugs.t) =
  let comps, invariant, equiv = unrolled_parts space ~localized ugs in
  let compare_deposit a b =
    let c = compare b.d_delta a.d_delta in
    if c <> 0 then c
    else
      let c = compare a.off b.off in
      if c <> 0 then c
      else
        compare
          (a.d_stmt, a.d_def, a.d_id)
          (b.d_stmt, b.d_def, b.d_id)
  in
  (* One full-box partition per component cell (the analogue of one
     [unrolled_fn] query at the maximal vector). *)
  let cells =
    List.map
      (fun (_, cell) ->
        let reps : (Vec.t * deposit list ref) list ref = ref [] in
        List.iter
          (fun (members, { Solvers.m; delta }) ->
            Unroll_space.iter space (fun o ->
                let p = Vec.add m o in
                let rec find = function
                  | [] ->
                      let bucket = ref [] in
                      reps := (p, bucket) :: !reps;
                      (bucket, 0)
                  | (r, bucket) :: rest -> (
                      match equiv p r with
                      | Some shift -> (bucket, shift)
                      | None -> find rest)
                in
                let bucket, shift = find !reps in
                let off = Vec.to_array o in
                List.iter
                  (fun ((s : Site.t), d_rel, is_def) ->
                    bucket :=
                      { off;
                        d_delta = delta + d_rel + shift;
                        d_stmt = s.Site.stmt;
                        d_def = is_def;
                        d_id = s.Site.id }
                      :: !bucket)
                  members))
          !cell;
        List.map
          (fun (_, bucket) ->
            let a = Array.of_list !bucket in
            Array.sort compare_deposit a;
            a)
          !reps)
      !comps
  in
  let dim = Unroll_space.depth space in
  fun u ->
    if not (Unroll_space.mem space u) then
      invalid_arg "Streams.of_ugs_unrolled: unroll vector out of space";
    let ub = Vec.to_array u in
    let inside off =
      let ok = ref true in
      for k = 0 to dim - 1 do
        if off.(k) > ub.(k) then ok := false
      done;
      !ok
    in
    let streams = ref 0 and mem = ref 0 and regs = ref 0 in
    List.iter
      (List.iter (fun deposits ->
           if invariant then begin
             if Array.exists (fun e -> inside e.off) deposits then begin
               incr streams;
               incr regs
             end
           end
           else begin
             (* walk in time order, splitting at defs: mirrors
                [split_at_defs] + [summarize] on the filtered list *)
             let open_ = ref false and mn = ref 0 and mx = ref 0 in
             let close () =
               if !open_ then begin
                 incr streams;
                 incr mem;
                 regs := !regs + (!mx - !mn + 1);
                 open_ := false
               end
             in
             Array.iter
               (fun e ->
                 if inside e.off then
                   if e.d_def then begin
                     close ();
                     open_ := true;
                     mn := e.d_delta;
                     mx := e.d_delta
                   end
                   else if not !open_ then begin
                     open_ := true;
                     mn := e.d_delta;
                     mx := e.d_delta
                   end
                   else begin
                     if e.d_delta < !mn then mn := e.d_delta;
                     if e.d_delta > !mx then mx := e.d_delta
                   end)
               deposits;
             close ()
           end))
      cells;
    { streams = !streams; memory_ops = !mem; registers = !regs }
