open Ujam_linalg
open Ujam_ir
open Ujam_machine

type report = {
  nest : Nest.t;
  machine : Machine.t;
  cache_model : bool;
  ctx : Analysis_ctx.t;
  safety : int array;
  ranked : (int * float) list;
  unroll_levels : int list;
  space : Unroll_space.t;
  choice : Search.choice;
  original : Search.choice;
  transformed : Nest.t;
  plan : Scalar_replace.plan;
}

let optimize ?(bound = 10) ?(cache = true) ?(max_loops = 2) ?ctx ~machine nest =
  let ctx =
    match ctx with
    | Some ctx -> ctx
    | None -> Analysis_ctx.create ~bound ~max_loops ~machine nest
  in
  (* Safety needs only true/anti/output dependences: the context builds
     that graph without input edges. *)
  let safety = Analysis_ctx.safety ctx in
  let ranked = Analysis_ctx.ranked ctx in
  let unroll_levels = Analysis_ctx.unroll_levels ctx in
  let space = Analysis_ctx.space ctx in
  let balance = Analysis_ctx.balance ctx in
  let choice = Analysis_ctx.timed ctx Analysis_ctx.Search (fun () -> Search.best ~cache balance) in
  let original = Search.evaluate ~cache balance (Vec.zero (Nest.depth nest)) in
  let transformed = Transform.apply_exn (Transform.Unroll choice.Search.u) nest in
  let plan = Scalar_replace.plan transformed in
  { nest; machine; cache_model = cache; ctx; safety; ranked; unroll_levels;
    space; choice; original; transformed; plan }

(* Modelled cycles per *original* iteration: issue-bound cycles of the
   unrolled body plus unhidden miss stalls, normalised by the number of
   body copies. *)
let cycles_per_orig_iteration (machine : Machine.t) (c : Search.choice) misses =
  let copies = Unroll_space.copies c.Search.u in
  let issue =
    Float.max
      (float_of_int c.Search.memory_ops /. float_of_int machine.Machine.mem_issue)
      (float_of_int c.Search.flops /. float_of_int machine.Machine.fp_issue)
  in
  let stall = misses *. float_of_int machine.Machine.miss_penalty in
  (issue +. stall) /. float_of_int copies

let speedup ~machine balance ~original ~choice =
  let m_before = Balance.misses balance original.Search.u in
  let m_after = Balance.misses balance choice.Search.u in
  let before = cycles_per_orig_iteration machine original m_before in
  let after = cycles_per_orig_iteration machine choice m_after in
  if after = 0.0 then 1.0 else before /. after

let speedup_estimate r =
  (* The balance tables are cached in the report's context: no rebuild. *)
  let balance = Analysis_ctx.balance r.ctx in
  speedup ~machine:r.machine balance ~original:r.original ~choice:r.choice

let pp ppf r =
  let beta_m = Machine.balance r.machine in
  Format.fprintf ppf
    "@[<v>%s on %s (%s model)@,\
     beta_M = %.3f; original beta_L = %.3f; chosen u = %a; final beta_L = %.3f@,\
     registers %d/%d, V_M %d, V_F %d@,\
     safety bounds: %s; locality ranking: %s@,%a@]"
    (Nest.name r.nest) r.machine.Machine.name
    (if r.cache_model then "cache" else "no-cache")
    beta_m r.original.Search.balance Vec.pp r.choice.Search.u
    r.choice.Search.balance r.choice.Search.registers
    r.machine.Machine.fp_registers r.choice.Search.memory_ops
    r.choice.Search.flops
    (String.concat ","
       (Array.to_list
          (Array.map
             (fun b -> if b = max_int then "inf" else string_of_int b)
             r.safety)))
    (String.concat ","
       (List.map (fun (l, c) -> Printf.sprintf "L%d:%.2f" l c) r.ranked))
    Scalar_replace.pp_report r.plan
