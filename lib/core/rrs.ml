open Ujam_linalg
open Ujam_ir
open Ujam_reuse

let partition ~localized nest = Streams.of_body ~localized nest

let groups_of ?groups nest =
  match groups with Some gs -> gs | None -> Ugs.of_nest nest

(* One pass over the space fills all three summaries, and the summary
   closures skip stream materialisation entirely (one full-box
   partition per UGS, then an allocation-free walk per cell) — asking
   for the tables separately used to pay the per-[u] stream build three
   times. *)
let summary_tables ?groups space ~localized nest =
  let fns =
    List.map
      (fun g -> Streams.unrolled_summary_fn space ~localized g)
      (groups_of ?groups nest)
  in
  let streams = Unroll_space.Table.create space 0 in
  let mem = Unroll_space.Table.create space 0 in
  let reg = Unroll_space.Table.create space 0 in
  Unroll_space.iter space (fun u ->
      let st, m, r =
        List.fold_left
          (fun (st, m, r) fn ->
            let s = fn u in
            ( st + s.Streams.streams,
              m + s.Streams.memory_ops,
              r + s.Streams.registers ))
          (0, 0, 0) fns
      in
      Unroll_space.Table.set streams u st;
      Unroll_space.Table.set mem u m;
      Unroll_space.Table.set reg u r);
  (streams, mem, reg)

let stream_table ?groups space ~localized nest =
  let s, _, _ = summary_tables ?groups space ~localized nest in
  s

let memory_table ?groups space ~localized nest =
  let _, m, _ = summary_tables ?groups space ~localized nest in
  m

let register_table ?groups space ~localized nest =
  let _, _, r = summary_tables ?groups space ~localized nest in
  r

(* Figure 5: the number of register-reuse sets after unrolling, without
   materialising the body.  Every definition copy always generates its
   own stream (stores are never removed, Sec. 4.3).  A use-led (or
   invariant) leader's copy at offset u' is absorbed when a copy of
   another leader at offset u' - v generated the value at an earlier
   time (the Figure 6 condition, checked per lattice variant v of the
   merge key); for invariant streams any textually earlier coinciding
   copy absorbs.  Cells hold totals (read with [Unroll_space.Table.get]). *)
let incremental_rrs_table space ~localized nest =
  let unroll_levels = Unroll_space.unroll_levels space in
  let dim = Unroll_space.depth space in
  let max_bound = Array.fold_left max 0 (Unroll_space.bounds space) in
  let all_streams = Streams.of_body ~localized nest in
  let table = Unroll_space.Table.create space 0 in
  let in_box u v = Vec.for_all (fun x -> x >= 0) v && Vec.leq_pointwise v u in
  List.iter
    (fun (g : Ugs.t) ->
      let h = g.Ugs.h in
      let solver = Solvers.temporal ~h ~localized ~unroll_levels in
      let kernel_gens = Solvers.kernel_moves ~h ~localized ~unroll_levels in
      (* Signed lattice shifts of a base offset difference. *)
      let signed_variants base =
        let rec expand acc = function
          | [] -> acc
          | gen :: rest ->
              let shifted =
                List.concat_map
                  (fun v ->
                    List.init
                      ((4 * (max_bound + 1)) + 1)
                      (fun a -> Vec.add v (Vec.scale (a - (2 * (max_bound + 1))) gen)))
                  acc
              in
              expand shifted rest
        in
        expand [ base ] kernel_gens
        |> List.filter (fun v ->
               (not (Vec.is_zero v)) && Unroll_space.mem space (Vec.map abs v))
      in
      let leaders =
        all_streams
        |> List.filter (fun (s : Streams.stream) ->
               String.equal s.Streams.base g.Ugs.base && Mat.equal s.Streams.h g.Ugs.h)
        |> List.map (fun (s : Streams.stream) ->
               let m = List.hd s.Streams.members in
               (m, s.Streams.invariant))
      in
      (* Valid absorber offsets per leader: copy u' of j is absorbed when
         u' - v lies in the unroll box for some v here. *)
      let absorbers ((j : Streams.member), invariant_j) =
        if j.Streams.is_def && not invariant_j then []
        else begin
          let c_j = Aref.c_vector j.Streams.site.Site.ref_ in
          List.concat_map
            (fun ((i : Streams.member), _) ->
              let c_i = Aref.c_vector i.Streams.site.Site.ref_ in
              let self = i.Streams.site.Site.id = j.Streams.site.Site.id in
              let base =
                if self then Some (Vec.zero dim)
                else
                  Option.map
                    (fun (k : Solvers.key) -> k.Solvers.m)
                    (solver ~c_from:c_j ~c_to:c_i)
              in
              match base with
              | None -> []
              | Some base ->
                  signed_variants base
                  |> List.filter (fun v ->
                         (* Align copy of i at offset u' - v with copy of
                            j at u': the witness's innermost component is
                            i's generation time relative to j's use. *)
                         let rhs = Vec.sub (Vec.sub c_i c_j) (Mat.apply h v) in
                         match Subspace.solution_in h rhs localized with
                         | None -> false
                         | Some x ->
                             if invariant_j then
                               (* any coinciding, textually earlier copy *)
                               Vec.compare v (Vec.zero dim) > 0
                             else begin
                               let gen_time = Vec.get x (dim - 1) in
                               gen_time > 0
                               || (gen_time = 0
                                  && (Vec.compare v (Vec.zero dim) > 0
                                     || (Vec.is_zero v
                                        && i.Streams.site.Site.stmt
                                           < j.Streams.site.Site.stmt)))
                             end))
            leaders
        end
      in
      let leader_absorbers = List.map (fun l -> (l, absorbers l)) leaders in
      Unroll_space.iter space (fun u ->
          let count = ref 0 in
          let copies = Unroll_space.copies u in
          List.iter
            (fun (((j : Streams.member), invariant_j), abs_list) ->
              if j.Streams.is_def && not invariant_j then count := !count + copies
              else begin
                (* enumerate the copy box, skipping absorbed copies *)
                let o = Array.make dim 0 in
                let rec go k =
                  if k = dim then begin
                    let u' = Vec.make o in
                    let absorbed =
                      List.exists (fun v -> in_box u (Vec.sub u' v)) abs_list
                    in
                    if not absorbed then incr count
                  end
                  else
                    for x = 0 to Vec.get u k do
                      o.(k) <- x;
                      go (k + 1)
                    done
                in
                go 0
              end)
            leader_absorbers;
          Unroll_space.Table.add table u !count))
    (Ugs.of_nest nest);
  table
