open Ujam_linalg

type t = { bounds : int array; strides : int array; card : int }

let make ~bounds =
  let d = Array.length bounds in
  if d = 0 then invalid_arg "Unroll_space.make: empty";
  if Array.exists (fun b -> b < 0) bounds then
    invalid_arg "Unroll_space.make: negative bound";
  if bounds.(d - 1) <> 0 then
    invalid_arg "Unroll_space.make: innermost bound must be 0";
  (* Mixed-radix strides for dense indexing; radix per level is b+1. *)
  let strides = Array.make d 1 in
  for k = d - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * (bounds.(k + 1) + 1)
  done;
  let card = strides.(0) * (bounds.(0) + 1) in
  { bounds = Array.copy bounds; strides; card }

let uniform ~depth ~bound ~unroll_levels =
  let bounds = Array.make depth 0 in
  List.iter
    (fun k ->
      if k < 0 || k >= depth - 1 then
        invalid_arg "Unroll_space.uniform: level out of range";
      bounds.(k) <- bound)
    unroll_levels;
  make ~bounds

let depth t = Array.length t.bounds
let bounds t = Array.copy t.bounds
let card t = t.card

let mem t v =
  Vec.dim v = depth t
  && Array.for_all2 (fun b x -> x >= 0 && x <= b) t.bounds (Vec.to_array v)

let unroll_levels t =
  let acc = ref [] in
  Array.iteri (fun k b -> if b > 0 then acc := k :: !acc) t.bounds;
  List.rev !acc

let copies u = Vec.fold (fun acc x -> acc * (x + 1)) 1 u

let iter t f =
  let d = depth t in
  let v = Array.make d 0 in
  let rec go k =
    if k = d then f (Vec.make v)
    else
      for x = 0 to t.bounds.(k) do
        v.(k) <- x;
        go (k + 1)
      done
  in
  go 0

(* The dense index is the lexicographic rank, so decoding ascending
   indices enumerates the space in lex order. *)
let of_index t i = Vec.init (depth t) (fun k -> i / t.strides.(k) mod (t.bounds.(k) + 1))

let vectors t =
  let acc = ref [] in
  for i = t.card - 1 downto 0 do
    acc := of_index t i :: !acc
  done;
  !acc

let fold t init f =
  let acc = ref init in
  iter t (fun v -> acc := f !acc v);
  !acc

let iter_pruned t ~prune f =
  let d = depth t in
  let v = Array.make d 0 in
  let pruned = ref 0 in
  (* Invariant: entering [go k], components k.. of [v] are 0, so the
     vector passed to [prune] is the pointwise-minimal completion of the
     current prefix.  When it is pruned, every leaf of the subtree is
     pointwise above it — and so is every later sibling's subtree, since
     bumping component k only raises the minimal completion.  Both are
     skipped in one step; [strides.(k)] is the per-subtree leaf count. *)
  let rec go k =
    if k = d then f (Vec.make v)
    else begin
      let x = ref 0 in
      let stop = ref false in
      while (not !stop) && !x <= t.bounds.(k) do
        v.(k) <- !x;
        if prune (Vec.make v) then begin
          pruned := !pruned + ((t.bounds.(k) - !x + 1) * t.strides.(k));
          stop := true
        end
        else go (k + 1);
        incr x
      done;
      v.(k) <- 0
    end
  in
  go 0;
  !pruned

let index t v =
  let idx = ref 0 in
  Array.iteri (fun k s -> idx := !idx + (s * Vec.get v k)) t.strides;
  !idx

module Table = struct
  type space = t

  (* [cells] holds materialized values.  [pending] is the difference
     layer: a delta written at corner [lo] means "add it at every
     [u >= lo]", which one running-sum sweep per axis turns into
     per-cell values (the d-dimensional difference-array scheme).
     Region writes therefore cost O(corners), not O(cells); the sweeps
     run once per read-after-write, O(d * card) total no matter how
     many regions were accumulated.  [prefix] caches the summed-area
     table of [cells] so prefix sums are O(1) per query. *)
  type nonrec t = {
    space : space;
    cells : int array;
    pending : int array;
    mutable dirty : bool;
    mutable prefix : int array option;
  }

  let create space init =
    { space;
      cells = Array.make space.card init;
      pending = Array.make space.card 0;
      dirty = false;
      prefix = None }

  let space t = t.space
  let invalidate t = t.prefix <- None

  let check t v =
    if not (mem t.space v) then invalid_arg "Unroll_space.Table: out of space"

  (* One running pass per axis; composing all d of them replaces each
     entry with its downward-box accumulation (lex order guarantees the
     [i - stride] operand is already swept). *)
  let sweep_with op s arr =
    Array.iteri
      (fun k stride ->
        let radix = s.bounds.(k) + 1 in
        if radix > 1 then
          for i = 0 to s.card - 1 do
            if i / stride mod radix <> 0 then arr.(i) <- op arr.(i) arr.(i - stride)
          done)
      s.strides

  let materialize t =
    if t.dirty then begin
      sweep_with ( + ) t.space t.pending;
      Array.iteri
        (fun i d -> if d <> 0 then t.cells.(i) <- t.cells.(i) + d)
        t.pending;
      Array.fill t.pending 0 t.space.card 0;
      t.dirty <- false
    end

  let get t v =
    check t v;
    materialize t;
    t.cells.(index t.space v)

  let set t v x =
    check t v;
    materialize t;
    invalidate t;
    t.cells.(index t.space v) <- x

  let add t v x =
    check t v;
    materialize t;
    invalidate t;
    let i = index t.space v in
    t.cells.(i) <- t.cells.(i) + x

  (* Clip a corner into the space: negative components clamp to 0 (the
     box {u >= lo} meets the space in {u >= max(lo, 0)}); a component
     above its bound makes the box empty. *)
  let corner t lo =
    if Vec.dim lo <> depth t.space then
      invalid_arg "Unroll_space.Table: dimension mismatch";
    let clamped = Vec.map (fun x -> max 0 x) lo in
    if mem t.space clamped then Some clamped else None

  let add_from t lo delta =
    match corner t lo with
    | None -> ()
    | Some lo ->
        invalidate t;
        t.dirty <- true;
        let i = index t.space lo in
        t.pending.(i) <- t.pending.(i) + delta

  let add_region t ~from_ ~excluding delta =
    add_from t from_ delta;
    match excluding with
    | None -> ()
    | Some e ->
        (* {u >= from_} ∩ {u >= e} = {u >= max(from_, e)} — but only
           cancel when the outer box is non-empty in the space. *)
        if Option.is_some (corner t from_) then
          add_from t (Vec.map2 max from_ e) (-delta)

  let add_cover t points delta =
    let points = List.sort_uniq Vec.compare (List.filter_map (corner t) points) in
    (* The union of upward boxes depends only on the minimal antichain,
       and 1- and 2-point antichains take the O(1) corner path. *)
    let points =
      if List.compare_length_with points 128 > 0 then points
      else
        List.filter
          (fun p ->
            not
              (List.exists
                 (fun q -> Vec.compare q p <> 0 && Vec.leq_pointwise q p)
                 points))
          points
    in
    match points with
    | [] -> ()
    | [ p ] -> add_from t p delta
    | [ p; q ] ->
        (* inclusion–exclusion over two boxes *)
        add_from t p delta;
        add_from t q delta;
        add_from t (Vec.map2 max p q) (-delta)
    | points ->
        invalidate t;
        let cov = Array.make t.space.card 0 in
        List.iter (fun p -> cov.(index t.space p) <- 1) points;
        sweep_with ( lor ) t.space cov;
        Array.iteri
          (fun i c -> if c <> 0 then t.cells.(i) <- t.cells.(i) + delta)
          cov

  let prefix_table t =
    materialize t;
    match t.prefix with
    | Some p -> p
    | None ->
        let p = Array.copy t.cells in
        sweep_with ( + ) t.space p;
        t.prefix <- Some p;
        p

  let prefix_sum t v =
    check t v;
    (prefix_table t).(index t.space v)

  let merge_add a b =
    if a.space.bounds <> b.space.bounds then
      invalid_arg "Unroll_space.Table.merge_add: space mismatch";
    materialize a;
    materialize b;
    { space = a.space;
      cells = Array.map2 ( + ) a.cells b.cells;
      pending = Array.make a.space.card 0;
      dirty = false;
      prefix = None }

  let fold t init f =
    materialize t;
    let acc = ref init in
    for i = 0 to t.space.card - 1 do
      acc := f !acc (of_index t.space i) t.cells.(i)
    done;
    !acc

  let to_alist t =
    materialize t;
    let acc = ref [] in
    for i = t.space.card - 1 downto 0 do
      acc := (of_index t.space i, t.cells.(i)) :: !acc
    done;
    !acc
end

(* The pre-sweep per-cell implementation, kept verbatim as the parity
   oracle: every region write scans the whole space, every prefix sum
   scans it again.  The QCheck suite runs random write/read programs
   against both engines and the bench harness measures the gap. *)
module Reference = struct
  type space = t
  type nonrec t = { space : space; cells : int array }

  let create space init = { space; cells = Array.make space.card init }
  let space t = t.space

  let check t v =
    if not (mem t.space v) then invalid_arg "Unroll_space.Table: out of space"

  let get t v =
    check t v;
    t.cells.(index t.space v)

  let set t v x =
    check t v;
    t.cells.(index t.space v) <- x

  let add t v x =
    check t v;
    let i = index t.space v in
    t.cells.(i) <- t.cells.(i) + x

  let add_from t lo delta =
    iter t.space (fun u -> if Vec.leq_pointwise lo u then add t u delta)

  let add_region t ~from_ ~excluding delta =
    iter t.space (fun u ->
        if Vec.leq_pointwise from_ u then
          let excluded =
            match excluding with
            | Some e -> Vec.leq_pointwise e u
            | None -> false
          in
          if not excluded then add t u delta)

  let add_cover t points delta =
    iter t.space (fun u ->
        if List.exists (fun p -> Vec.leq_pointwise p u) points then
          add t u delta)

  let prefix_sum t v =
    check t v;
    let s = ref 0 in
    iter t.space (fun u -> if Vec.leq_pointwise u v then s := !s + get t u);
    !s

  let to_alist t = List.map (fun u -> (u, get t u)) (vectors t.space)
end
