(** Register-reuse-set tables (the paper's Figures 4, 5 and 7).

    These are the tables the unroll-amount search consults: for every
    unroll vector in the space, the number of value streams (RRSs), the
    memory operations left after scalar replacement (V_M), and the
    floating-point registers scalar replacement needs (R).  They are
    computed from the UGS structure of the *original* body only — no
    unrolled body is ever materialised, which is the contrast with the
    brute-force scheme of Wolf, Maydan and Chen.

    [memory_table], [register_table] and [stream_table] store totals per
    cell (read with [Unroll_space.Table.get]), derived from the stream
    closure.  [incremental_rrs_table] is the Figure 5 formulation: it
    works from the RRS leaders and their merge keys alone — definitions
    always regenerate their stream; a use-led leader's copy is absorbed
    from the offset at which an earlier generator's copy coincides with
    it (the Figure 6 condition).  It also stores totals per cell and is
    checked against the stream construction in the test suite. *)

open Ujam_linalg

val partition :
  localized:Subspace.t -> Ujam_ir.Nest.t -> Streams.stream list
(** Figure 4, [ComputeRRS], on the original body. *)

val summary_tables :
  ?groups:Ujam_reuse.Ugs.t list ->
  Unroll_space.t ->
  localized:Subspace.t ->
  Ujam_ir.Nest.t ->
  Unroll_space.Table.t * Unroll_space.Table.t * Unroll_space.Table.t
(** [(streams, memory_ops, registers)] from one pass over the space —
    building the unrolled stream closure dominates, so fused callers
    (e.g. {!Balance.prepare}) pay it once instead of per table. *)

val stream_table :
  ?groups:Ujam_reuse.Ugs.t list ->
  Unroll_space.t -> localized:Subspace.t -> Ujam_ir.Nest.t -> Unroll_space.Table.t

val memory_table :
  ?groups:Ujam_reuse.Ugs.t list ->
  Unroll_space.t -> localized:Subspace.t -> Ujam_ir.Nest.t -> Unroll_space.Table.t
(** [groups] supplies a precomputed UGS partition of the nest so the
    table builders do not re-partition per table. *)

val register_table :
  ?groups:Ujam_reuse.Ugs.t list ->
  Unroll_space.t -> localized:Subspace.t -> Ujam_ir.Nest.t -> Unroll_space.Table.t

val incremental_rrs_table :
  Unroll_space.t -> localized:Subspace.t -> Ujam_ir.Nest.t -> Unroll_space.Table.t
