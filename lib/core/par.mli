(** Deterministic Domain-parallel map over an array of jobs.

    Jobs are claimed from a lock-free atomic work queue and each result
    is written into its input slot, so the output ordering equals the
    input ordering regardless of domain count or scheduling — running
    with [domains:1] and [domains:n] is byte-identical. *)

val clamp_domains : int -> int -> int
(** [clamp_domains domains n] bounds the worker count to [1..n]. *)

val map :
  ?domains:int ->
  ?on_claim:(remaining:int -> unit) ->
  f:(domain:int -> 'a -> 'b) ->
  'a array ->
  'b array
(** [on_claim ~remaining] fires as each job is claimed (from the
    claiming domain) with the number of still-unclaimed jobs — the hook
    the engine uses for queue-occupancy metrics. *)
