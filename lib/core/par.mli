(** Deterministic Domain-parallel map over an array of jobs.

    Work is distributed as contiguous per-domain index ranges with
    half-range stealing: owners pop from the low end of their own
    deque, idle domains steal the high half of a victim's remaining
    range.  Each result is written into its input slot, so the output
    ordering equals the input ordering regardless of domain count or
    scheduling — running with [domains:1] and [domains:n] is
    byte-identical. *)

val clamp_domains : int -> int -> int
(** [clamp_domains domains n] bounds the worker count to [1..n]. *)

val map :
  ?domains:int ->
  ?on_claim:(remaining:int -> unit) ->
  ?on_steal:(thief:int -> victim:int -> count:int -> unit) ->
  f:(domain:int -> 'a -> 'b) ->
  'a array ->
  'b array
(** [on_claim ~remaining] fires as each job is claimed (from the
    claiming domain) with the number of still-unclaimed jobs — the
    hook the engine uses for queue-occupancy metrics.  [on_steal]
    fires on the thief after it has taken [count] jobs from [victim]'s
    deque (never its own); it never fires with [domains:1]. *)
