open Ujam_linalg
open Ujam_reuse
open Ujam_machine
module Obs = Ujam_obs.Obs

(* Wall time of one [prepare]: the whole analytic cost of a nest is
   table construction, so this histogram is the before/after evidence
   for the sweep engine. *)
let h_build = Obs.histogram "tables.build_s"

type ugs_tables = {
  ugs : Ugs.t;
  stream : Locality.stream;
  gts : Unroll_space.Table.t;  (* totals per cell *)
  gss : Unroll_space.Table.t;
}

type t = {
  space : Unroll_space.t;
  machine : Machine.t;
  flops_body : int;
  mem_table : Unroll_space.Table.t;
  reg_table : Unroll_space.Table.t;
  groups : ugs_tables list;
}

(* The per-UGS exact tables and the fused stream-summary tables are
   independent, so they form a job queue: one job per UGS plus one for
   the Rrs summaries (queued first — it is the heaviest).  [Par.map]
   keeps the output slot-ordered, so [domains] > 1 changes nothing but
   wall time. *)
let prepare ?(domains = 1) ?groups ~machine space nest =
  let t0 = Unix.gettimeofday () in
  let d = Ujam_ir.Nest.depth nest in
  let localized = Subspace.span_dims ~dim:d [ d - 1 ] in
  let partition =
    match groups with Some gs -> gs | None -> Ugs.of_nest nest
  in
  let build_group (g : Ugs.t) =
    let stream =
      (Locality.ugs_cost ~line:machine.Machine.cache_line ~localized g).Locality.stream
    in
    { ugs = g;
      stream;
      gts = Tables.gts_exact_table space ~localized g;
      gss = Tables.gss_exact_table space ~localized g }
  in
  let jobs =
    Array.of_list (`Summary :: List.map (fun g -> `Group g) partition)
  in
  let outs =
    Par.map ~domains
      ~f:(fun ~domain:_ -> function
        | `Summary ->
            let _, mem, reg =
              Rrs.summary_tables ~groups:partition space ~localized nest
            in
            `Summary (mem, reg)
        | `Group g -> `Group (build_group g))
      jobs
  in
  let mem_table, reg_table =
    match outs.(0) with `Summary (m, r) -> (m, r) | `Group _ -> assert false
  in
  let groups =
    Array.to_list outs
    |> List.filter_map (function `Group g -> Some g | `Summary _ -> None)
  in
  let t = {
    space;
    machine;
    flops_body = Ujam_ir.Nest.flops_per_iteration nest;
    mem_table;
    reg_table;
    groups }
  in
  Obs.Histogram.record h_build (Unix.gettimeofday () -. t0);
  t

let space t = t.space
let machine t = t.machine

(* Fault-injection hook for the monotonicity-guard tests: rebuild the
   register table pointwise through [f].  Everything else is shared. *)
let map_registers t f =
  let reg = Unroll_space.Table.create t.space 0 in
  Unroll_space.iter t.space (fun u ->
      Unroll_space.Table.set reg u (f u (Unroll_space.Table.get t.reg_table u)));
  { t with reg_table = reg }

let flops t u = t.flops_body * Unroll_space.copies u
let memory_ops t u = Unroll_space.Table.get t.mem_table u
let registers t u = Unroll_space.Table.get t.reg_table u

(* The per-UGS g_T/g_S tables are line-independent; the line enters
   only at fold time, so the same tables price any hierarchy level. *)
let misses_with ?line t u =
  let l =
    float_of_int
      (match line with Some l -> l | None -> t.machine.Machine.cache_line)
  in
  List.fold_left
    (fun acc g ->
      let g_t = Unroll_space.Table.get g.gts u in
      let g_s = Unroll_space.Table.get g.gss u in
      let groups = float_of_int g_s +. (float_of_int (g_t - g_s) /. l) in
      let base =
        match g.stream with
        | Locality.Invariant -> 0.0
        | Locality.Unit_stride -> 1.0 /. l
        | Locality.No_reuse -> 1.0
      in
      acc +. (groups *. base))
    0.0 t.groups

let misses t u = misses_with t u

let cycles t u =
  let m = t.machine in
  Float.max
    (float_of_int (memory_ops t u) /. float_of_int m.Machine.mem_issue)
    (float_of_int (flops t u) /. float_of_int m.Machine.fp_issue)

let loop_balance t ~cache u =
  let v_m = float_of_int (memory_ops t u) in
  let v_f = float_of_int (flops t u) in
  if v_f = 0.0 then infinity
  else if not cache then v_m /. v_f
  else begin
    let m = misses t u in
    let serviced = t.machine.Machine.prefetch_bandwidth *. cycles t u in
    let unserviced = Float.max 0.0 (m -. serviced) in
    (v_m +. (unserviced *. Machine.miss_ratio_cost t.machine)) /. v_f
  end

(* Same balance shape, priced at one hierarchy level: misses at that
   level's line, each unserviced miss charged its penalty over its
   access time.  With the flat machine's synthesized L1 this reduces to
   [loop_balance ~cache:true]. *)
let loop_balance_level t ~(level : Machine.Level.t) u =
  let v_m = float_of_int (memory_ops t u) in
  let v_f = float_of_int (flops t u) in
  if v_f = 0.0 then infinity
  else begin
    let m = misses_with ~line:level.Machine.Level.line t u in
    let serviced = t.machine.Machine.prefetch_bandwidth *. cycles t u in
    let unserviced = Float.max 0.0 (m -. serviced) in
    let cost =
      float_of_int level.Machine.Level.penalty
      /. float_of_int level.Machine.Level.access
    in
    (v_m +. (unserviced *. cost)) /. v_f
  end

let group_counts t u =
  List.map
    (fun g ->
      (g.ugs.Ugs.base, Unroll_space.Table.get g.gts u, Unroll_space.Table.get g.gss u))
    t.groups
