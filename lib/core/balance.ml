open Ujam_linalg
open Ujam_reuse
open Ujam_machine

type ugs_tables = {
  ugs : Ugs.t;
  stream : Locality.stream;
  gts : Unroll_space.Table.t;  (* totals per cell *)
  gss : Unroll_space.Table.t;
}

type t = {
  space : Unroll_space.t;
  machine : Machine.t;
  flops_body : int;
  mem_table : Unroll_space.Table.t;
  reg_table : Unroll_space.Table.t;
  groups : ugs_tables list;
}

let prepare ?groups ~machine space nest =
  let d = Ujam_ir.Nest.depth nest in
  let localized = Subspace.span_dims ~dim:d [ d - 1 ] in
  let partition =
    match groups with Some gs -> gs | None -> Ugs.of_nest nest
  in
  let groups =
    List.map
      (fun (g : Ugs.t) ->
        let stream =
          (Locality.ugs_cost ~line:machine.Machine.cache_line ~localized g).Locality.stream
        in
        { ugs = g;
          stream;
          gts = Tables.gts_exact_table space ~localized g;
          gss = Tables.gss_exact_table space ~localized g })
      partition
  in
  { space;
    machine;
    flops_body = Ujam_ir.Nest.flops_per_iteration nest;
    mem_table = Rrs.memory_table ~groups:partition space ~localized nest;
    reg_table = Rrs.register_table ~groups:partition space ~localized nest;
    groups }

let space t = t.space
let machine t = t.machine

let copies u = Vec.fold (fun acc x -> acc * (x + 1)) 1 u

let flops t u = t.flops_body * copies u
let memory_ops t u = Unroll_space.Table.get t.mem_table u
let registers t u = Unroll_space.Table.get t.reg_table u

let misses t u =
  let l = float_of_int t.machine.Machine.cache_line in
  List.fold_left
    (fun acc g ->
      let g_t = Unroll_space.Table.get g.gts u in
      let g_s = Unroll_space.Table.get g.gss u in
      let groups = float_of_int g_s +. (float_of_int (g_t - g_s) /. l) in
      let base =
        match g.stream with
        | Locality.Invariant -> 0.0
        | Locality.Unit_stride -> 1.0 /. l
        | Locality.No_reuse -> 1.0
      in
      acc +. (groups *. base))
    0.0 t.groups

let cycles t u =
  let m = t.machine in
  Float.max
    (float_of_int (memory_ops t u) /. float_of_int m.Machine.mem_issue)
    (float_of_int (flops t u) /. float_of_int m.Machine.fp_issue)

let loop_balance t ~cache u =
  let v_m = float_of_int (memory_ops t u) in
  let v_f = float_of_int (flops t u) in
  if v_f = 0.0 then infinity
  else if not cache then v_m /. v_f
  else begin
    let m = misses t u in
    let serviced = t.machine.Machine.prefetch_bandwidth *. cycles t u in
    let unserviced = Float.max 0.0 (m -. serviced) in
    (v_m +. (unserviced *. Machine.miss_ratio_cost t.machine)) /. v_f
  end

let group_counts t u =
  List.map
    (fun g ->
      (g.ugs.Ugs.base, Unroll_space.Table.get g.gts u, Unroll_space.Table.get g.gss u))
    t.groups
