(** The integer optimisation of Sec. 3.3: choose the unroll vector that
    brings loop balance closest to machine balance without exceeding the
    register file.

    {v min |beta_L(u) - beta_M|  s.t.  R(u) <= machine registers v}

    Ties prefer fewer body copies (less code growth), then lexicographic
    order.  If no vector satisfies the register constraint the zero
    vector is returned (the original loop). *)

open Ujam_linalg

type choice = {
  u : Vec.t;
  balance : float;
  objective : float;  (** |beta_L - beta_M| *)
  registers : int;
  memory_ops : int;
  flops : int;
}

val best :
  ?prune:bool ->
  ?level:Ujam_machine.Machine.Level.t ->
  cache:bool ->
  Balance.t ->
  choice
(** [prune] (default true) skips the upward box above any [u] whose
    register count already exceeds the register file — sound because
    [R] is pointwise monotone — and records the number of skipped cells
    in the [search.pruned_cells] histogram.  [~prune:false] forces the
    exhaustive scan; both return the same choice.  [level] prices the
    balance at one hierarchy level ({!Balance.loop_balance_level}),
    overriding [cache]. *)

val evaluate :
  ?level:Ujam_machine.Machine.Level.t ->
  cache:bool ->
  Balance.t ->
  Vec.t ->
  choice
