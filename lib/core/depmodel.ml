open Ujam_linalg
open Ujam_ir
open Ujam_depend
open Ujam_machine

(* Union-find over site ids. *)
module Uf = struct
  let create n = Array.init n Fun.id

  let rec find t i = if t.(i) = i then i else find t t.(i)

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then t.(ra) <- rb
end

type classes = {
  repr : int array;             (* site id -> class representative *)
  deltas : int array;           (* innermost time offset per site *)
  invariant : bool array;       (* per site *)
}

(* Partition the sites of [nest] by "distance zero outside the innermost
   loop" dependence edges — the dependence-based rendering of
   group-temporal reuse.  Requires input dependences in the graph. *)
let classify nest =
  let sites = Array.of_list (Site.of_nest nest) in
  let n = Array.length sites in
  let depth = Nest.depth nest in
  let uf = Uf.create n in
  let invariant = Array.make n false in
  let graph = Graph.build ~include_input:true nest in
  let joins = ref [] in
  List.iter
    (fun (e : Graph.edge) ->
      (* A Star component stands for the whole solution set along that
         loop, which includes distance 0, so it does not break innermost
         reuse. *)
      let zero_outside =
        let ok = ref true in
        for k = 0 to depth - 2 do
          match e.Graph.dvec.(k) with
          | Depvec.Exact 0 | Depvec.Star -> ()
          | Depvec.Exact _ -> ok := false
        done;
        !ok
      in
      if zero_outside then begin
        let a = e.Graph.src.Site.id and b = e.Graph.dst.Site.id in
        match e.Graph.dvec.(depth - 1) with
        | Depvec.Exact d ->
            if a <> b then begin
              Uf.union uf a b;
              (* dst touches a fixed location d iterations after src:
                 time offset of dst is src's minus d. *)
              joins := (a, b, d) :: !joins
            end
        | Depvec.Star ->
            invariant.(a) <- true;
            invariant.(b) <- true;
            if a <> b then begin
              Uf.union uf a b;
              joins := (a, b, 0) :: !joins
            end
      end)
    graph.Graph.edges;
  (* Propagate time offsets along join edges (BFS per component). *)
  let deltas = Array.make n 0 in
  let settled = Array.make n false in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b, d) ->
      adj.(a) <- (b, -d) :: adj.(a);
      adj.(b) <- (a, d) :: adj.(b))
    !joins;
  for s = 0 to n - 1 do
    if not settled.(s) then begin
      settled.(s) <- true;
      deltas.(s) <- 0;
      let queue = Queue.create () in
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.take queue in
        List.iter
          (fun (w, d) ->
            if not settled.(w) then begin
              settled.(w) <- true;
              deltas.(w) <- deltas.(v) + d;
              Queue.add w queue
            end)
          adj.(v)
      done
    end
  done;
  let repr = Array.init n (fun i -> Uf.find uf i) in
  ({ repr; deltas; invariant }, sites)

(* Nest with the contiguous (first) subscript of every reference zeroed:
   references on the same cache-line walk collapse together. *)
let truncate_nest nest =
  let truncate (r : Aref.t) =
    let subs = Array.copy r.Aref.subs in
    if Array.length subs > 0 then
      subs.(0) <- Affine.const ~depth:(Aref.depth r) 0;
    { r with Aref.subs }
  in
  Nest.with_body nest (List.map (Stmt.map_refs truncate) (Nest.body nest))

let class_members (c : classes) n =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  for i = 0 to n - 1 do
    let r = c.repr.(i) in
    (match Hashtbl.find_opt tbl r with
    | Some cell -> cell := i :: !cell
    | None ->
        Hashtbl.add tbl r (ref [ i ]);
        order := r :: !order)
  done;
  List.rev_map (fun r -> List.rev !(Hashtbl.find tbl r)) !order

let metrics ~machine nest u =
  let unrolled = Transform.apply_exn (Transform.Unroll u) nest in
  let temporal, sites = classify unrolled in
  let n = Array.length sites in
  let spatial, _ = classify (truncate_nest unrolled) in
  let flops = Nest.flops_per_iteration unrolled in
  (* Streams: def-splitting of each temporal class. *)
  let streams =
    List.concat_map
      (fun members ->
        let inv = List.exists (fun i -> temporal.invariant.(i)) members in
        let base = Aref.base sites.(List.hd members).Site.ref_ in
        let h = Aref.h_matrix sites.(List.hd members).Site.ref_ in
        let ms =
          List.map
            (fun i ->
              { Streams.site = sites.(i);
                delta = temporal.deltas.(i);
                is_def = Site.is_write sites.(i);
                copy = 0 })
            members
        in
        Streams.build ~base ~h ~invariant:inv ms)
      (class_members temporal n)
  in
  let summary = Streams.summarize streams in
  (* Equation 1 via the graphs: per spatial class, base factor times
     (1 + (temporal classes inside - 1) / line). *)
  let l = float_of_int machine.Machine.cache_line in
  let misses =
    List.fold_left
      (fun acc members ->
        let any_temporal_invariant =
          List.exists (fun i -> temporal.invariant.(i)) members
        in
        let any_spatial_invariant =
          List.exists (fun i -> spatial.invariant.(i)) members
        in
        let base =
          if any_temporal_invariant then 0.0
          else if any_spatial_invariant then 1.0 /. l
          else 1.0
        in
        let inner_temporal =
          List.sort_uniq compare (List.map (fun i -> temporal.repr.(i)) members)
        in
        let n_t = List.length inner_temporal in
        acc +. (base *. (1.0 +. (float_of_int (n_t - 1) /. l))))
      0.0 (class_members spatial n)
  in
  let v_m = float_of_int summary.Streams.memory_ops in
  let v_f = float_of_int flops in
  let balance_nocache = if v_f = 0.0 then infinity else v_m /. v_f in
  let balance_cache =
    if v_f = 0.0 then infinity
    else begin
      let cycles =
        Float.max
          (v_m /. float_of_int machine.Machine.mem_issue)
          (v_f /. float_of_int machine.Machine.fp_issue)
      in
      let serviced = machine.Machine.prefetch_bandwidth *. cycles in
      let unserviced = Float.max 0.0 (misses -. serviced) in
      (v_m +. (unserviced *. Machine.miss_ratio_cost machine)) /. v_f
    end
  in
  { Bruteforce.streams = summary.Streams.streams;
    memory_ops = summary.Streams.memory_ops;
    registers = summary.Streams.registers;
    flops;
    misses;
    balance_cache;
    balance_nocache }

let copies = Unroll_space.copies

let best ~cache ~machine space nest =
  let beta_m = Machine.balance machine in
  let balance_of (m : Bruteforce.metrics) =
    if cache then m.Bruteforce.balance_cache else m.Bruteforce.balance_nocache
  in
  let objective m = Float.abs (balance_of m -. beta_m) in
  let best = ref None in
  Unroll_space.iter space (fun u ->
      let m = metrics ~machine nest u in
      if m.Bruteforce.registers <= machine.Machine.fp_registers then
        match !best with
        | None -> best := Some (u, m)
        | Some (bu, bm) ->
            let c = Float.compare (objective m) (objective bm) in
            let wins =
              if c <> 0 then c < 0
              else
                let c = compare (copies u) (copies bu) in
                if c <> 0 then c < 0 else Vec.compare u bu < 0
            in
            if wins then best := Some (u, m));
  match !best with
  | Some r -> r
  | None ->
      let u0 = Vec.zero (Unroll_space.depth space) in
      (u0, metrics ~machine nest u0)

let graph_cost nest u =
  let unrolled = Transform.apply_exn (Transform.Unroll u) nest in
  let with_input = List.length (Graph.build ~include_input:true unrolled).Graph.edges in
  let without = List.length (Graph.build ~include_input:false unrolled).Graph.edges in
  (with_input, without)
