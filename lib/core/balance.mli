(** Loop balance as a function of the unroll vector (Sec. 3.2–3.3).

    [prepare] builds every table once from the UGS structure; evaluating
    a candidate unroll vector afterwards is a table lookup — this is the
    paper's replacement for re-analysing an unrolled body per candidate.

    With [cache:true] (the paper's model), unserviced cache misses are
    charged at [C_m / C_s] memory-operation equivalents; prefetch
    bandwidth hides [pi * cycles] of them per iteration.  With
    [cache:false] the model of [Carr–Kennedy TOPLAS'94] is used instead:
    every access is assumed to hit. *)

open Ujam_linalg

type t

val prepare :
  ?domains:int ->
  ?groups:Ujam_reuse.Ugs.t list ->
  machine:Ujam_machine.Machine.t ->
  Unroll_space.t ->
  Ujam_ir.Nest.t ->
  t
(** [groups] supplies a precomputed UGS partition of the nest (e.g. from
    {!Analysis_ctx}); without it the partition is rebuilt here.
    [domains] fans the independent table builds (per-UGS exact tables,
    fused stream summaries) out over a deterministic {!Par} work queue;
    the result is identical for any domain count. *)

val space : t -> Unroll_space.t
val machine : t -> Ujam_machine.Machine.t

val map_registers : t -> (Ujam_linalg.Vec.t -> int -> int) -> t
(** [map_registers t f] rebuilds the register table with [f u r] at
    every cell, sharing all other tables — a fault-injection hook for
    the analyzer's monotonicity guard and the differential oracle. *)

val flops : t -> Vec.t -> int
(** [V_F(u)]: floating-point operations per unrolled iteration. *)

val memory_ops : t -> Vec.t -> int
(** [V_M(u)]: memory operations per unrolled iteration after scalar
    replacement. *)

val registers : t -> Vec.t -> int
(** [R(u)]: floating-point registers scalar replacement needs. *)

val misses : t -> Vec.t -> float
(** Cache misses per unrolled iteration (Equation 1 over all UGSs). *)

val misses_with : ?line:int -> t -> Vec.t -> float
(** {!misses} folded at another line size.  The per-UGS tables are
    line-independent, so one [prepare] prices every hierarchy level. *)

val cycles : t -> Vec.t -> float
(** Steady-state issue-bound cycles per unrolled iteration. *)

val loop_balance : t -> cache:bool -> Vec.t -> float

val loop_balance_level :
  t -> level:Ujam_machine.Machine.Level.t -> Vec.t -> float
(** The cache balance priced at one hierarchy level: misses at the
    level's line, charged [penalty / access].  On the flat machine's
    synthesized L1 ({!Ujam_machine.Machine.effective_levels}) this
    coincides with [loop_balance ~cache:true]. *)

val group_counts : t -> Vec.t -> (string * int * int) list
(** Per UGS: base name, [g_T(u)], [g_S(u)] — exposed for reporting. *)
