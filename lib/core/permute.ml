open Ujam_ir
open Ujam_machine

type choice = {
  permutation : int array;
  cost : float;
  original_cost : float;
  permuted : Nest.t;
}

let best_legal ~machine nest =
  let line = machine.Machine.cache_line in
  let graph = Ujam_depend.Graph.build ~include_input:false nest in
  let d = Nest.depth nest in
  let identity = Array.init d Fun.id in
  let original_cost = Ujam_reuse.Locality.permutation_cost ~line nest identity in
  let ranked = Ujam_reuse.Locality.rank_permutations ~line nest in
  let rec pick = function
    | [] -> (identity, original_cost)
    | (perm, cost) :: rest ->
        if Ujam_depend.Safety.legal_permutation graph perm then (perm, cost)
        else pick rest
  in
  let permutation, cost = pick ranked in
  { permutation; cost; original_cost;
    permuted = Transform.apply_exn (Transform.Interchange permutation) nest }

let optimize ?bound ?cache ~machine nest =
  let choice = best_legal ~machine nest in
  (choice, Driver.optimize ?bound ?cache ~machine choice.permuted)
