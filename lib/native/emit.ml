open Ujam_ir

type variant = { vname : string; nest : Nest.t }

type unit_spec = {
  uname : string;
  seed : int;
  repeats : int;
  variants : variant list;
}

type box = {
  mins : int array;
  extents : int array;
  strides : int array;
  size : int;
}

(* ---- layout: union allocation box per array --------------------------- *)

(* Interval of an affine form given per-level index intervals (the same
   outside-in propagation Layout uses; re-derived here because the
   union must span several variants of differing depth). *)
let affine_interval (a : Affine.t) ivals =
  let lo = ref a.Affine.const and hi = ref a.Affine.const in
  Array.iteri
    (fun k c ->
      let l, h = ivals.(k) in
      if c >= 0 then begin
        lo := !lo + (c * l);
        hi := !hi + (c * h)
      end
      else begin
        lo := !lo + (c * h);
        hi := !hi + (c * l)
      end)
    a.Affine.coefs;
  (!lo, !hi)

let index_intervals nest =
  let loops = Nest.loops nest in
  let d = Array.length loops in
  let ivals = Array.make d (0, 0) in
  for k = 0 to d - 1 do
    let l = loops.(k) in
    let lo, _ = affine_interval l.Loop.lo ivals in
    let _, hi = affine_interval l.Loop.hi ivals in
    ivals.(k) <- (lo, max lo hi)
  done;
  ivals

let max_elements = 1 lsl 24

let unit_layout spec =
  let ranges : (string, (int * int) array) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun v ->
      let ivals = index_intervals v.nest in
      List.iter
        (fun (r, _) ->
          let b = Aref.base r in
          let cur =
            match Hashtbl.find_opt ranges b with
            | Some cur -> cur
            | None ->
                let cur = Array.make (Aref.rank r) (max_int, min_int) in
                Hashtbl.add ranges b cur;
                order := b :: !order;
                cur
          in
          if Array.length cur <> Aref.rank r then
            invalid_arg "Emit.unit_layout: rank mismatch across variants";
          Array.iteri
            (fun i s ->
              let lo, hi = affine_interval s ivals in
              let clo, chi = cur.(i) in
              cur.(i) <- (min clo lo, max chi hi))
            r.Aref.subs)
        (Nest.refs v.nest))
    spec.variants;
  List.rev_map
    (fun b ->
      let rng = Hashtbl.find ranges b in
      let dims = Array.length rng in
      let mins = Array.map fst rng in
      let extents = Array.map (fun (lo, hi) -> hi - lo + 1) rng in
      let strides = Array.make dims 1 in
      for i = 1 to dims - 1 do
        strides.(i) <- strides.(i - 1) * extents.(i - 1)
      done;
      let size = if dims = 0 then 1 else strides.(dims - 1) * extents.(dims - 1) in
      if size > max_elements then
        invalid_arg
          (Printf.sprintf "Emit.unit_layout: array %s needs %d elements" b size);
      (b, { mins; extents; strides; size }))
    !order

let box_iter box f =
  let dims = Array.length box.mins in
  let idx = Array.make dims 0 in
  let rec go i =
    if i = dims then f (Array.to_list idx)
    else
      for v = box.mins.(i) to box.mins.(i) + box.extents.(i) - 1 do
        idx.(i) <- v;
        go (i + 1)
      done
  in
  go 0

(* ---- code fragments ---------------------------------------------------- *)

let sanitize_word s =
  String.map (fun c -> if c = ' ' || c = '\t' || c = '\n' then '_' else c) s

let lit s = Printf.sprintf "\"%s\"" (String.escaped s)

(* An affine form over the loop variables i0..i(d-1), as an OCaml int
   expression. *)
let affine_code (a : Affine.t) =
  let terms =
    List.filter_map Fun.id
      (Array.to_list
         (Array.mapi
            (fun k c ->
              if c = 0 then None
              else if c = 1 then Some (Printf.sprintf "i%d" k)
              else Some (Printf.sprintf "(%d * i%d)" c k))
            a.Affine.coefs))
  in
  let terms = if a.Affine.const = 0 && terms <> [] then terms
    else terms @ [ Printf.sprintf "(%d)" a.Affine.const ] in
  match terms with
  | [ one ] -> one
  | many -> "(" ^ String.concat " + " many ^ ")"

(* The flat address of a reference is itself affine in the loop
   variables: fold the per-dimension strides and mins into one form. *)
let address_affine (box : box) (r : Aref.t) =
  let d = Aref.depth r in
  let coefs = Array.make d 0 in
  let const = ref 0 in
  Array.iteri
    (fun i (s : Affine.t) ->
      let w = box.strides.(i) in
      Array.iteri (fun k c -> coefs.(k) <- coefs.(k) + (w * c)) s.Affine.coefs;
      const := !const + (w * (s.Affine.const - box.mins.(i))))
    r.Aref.subs;
  { Affine.coefs; const = !const }

(* ---- body emission with store-aware load reuse ------------------------- *)

type ctx = {
  buf : Buffer.t;
  boxes : (string * box) list;
  array_var : string -> string;
  scalar_var : string -> string;
  mutable cache : (Aref.t * string) list;
      (* loads (and stored values) available this iteration *)
  mutable tmp : int;
}

let fresh ctx =
  let n = ctx.tmp in
  ctx.tmp <- n + 1;
  Printf.sprintf "t%d" n

let addr_code ctx r = affine_code (address_affine (List.assoc (Aref.base r) ctx.boxes) r)

let load ctx ind r =
  match List.find_opt (fun (r', _) -> Aref.equal r r') ctx.cache with
  | Some (_, v) -> v
  | None ->
      let v = fresh ctx in
      Buffer.add_string ctx.buf
        (Printf.sprintf "%slet %s = Bigarray.Array1.unsafe_get %s %s in\n" ind v
           (ctx.array_var (Aref.base r))
           (addr_code ctx r));
      ctx.cache <- (r, v) :: ctx.cache;
      v

let rec expr_code ctx ind = function
  | Expr.Const f -> Printf.sprintf "(%h)" f
  | Expr.Scalar s -> "!" ^ ctx.scalar_var s
  | Expr.Read r -> load ctx ind r
  | Expr.Neg e -> Printf.sprintf "(-. %s)" (expr_code ctx ind e)
  | Expr.Bin (op, a, b) ->
      let x = expr_code ctx ind a in
      let y = expr_code ctx ind b in
      (match op with
      | Expr.Add -> Printf.sprintf "(%s +. %s)" x y
      | Expr.Sub -> Printf.sprintf "(%s -. %s)" x y
      | Expr.Mul -> Printf.sprintf "(%s *. %s)" x y
      (* divisions stay finite, exactly as the interpreter evaluates them *)
      | Expr.Div -> Printf.sprintf "(%s /. (%s +. 1.0))" x y)

let stmt_code ctx ind (st : Stmt.t) =
  let rhs = expr_code ctx ind st.Stmt.rhs in
  match st.Stmt.lhs with
  | Stmt.Scalar_var s ->
      Buffer.add_string ctx.buf
        (Printf.sprintf "%s%s := %s;\n" ind (ctx.scalar_var s) rhs)
  | Stmt.Array_elt r ->
      let v = fresh ctx in
      Buffer.add_string ctx.buf (Printf.sprintf "%slet %s = %s in\n" ind v rhs);
      Buffer.add_string ctx.buf
        (Printf.sprintf "%sBigarray.Array1.unsafe_set %s %s %s;\n" ind
           (ctx.array_var (Aref.base r))
           (addr_code ctx r) v);
      (* a store may alias any cached load of the same base at a
         different subscript; keep only the stored value itself *)
      ctx.cache <-
        (r, v)
        :: List.filter (fun (r', _) -> Aref.base r' <> Aref.base r) ctx.cache

(* ---- one variant ------------------------------------------------------- *)

let variant_code buf ~uname ~seed ~repeats ~boxes ~drop_last_stmt v =
  let nest = v.nest in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let arrays = Nest.arrays nest in
  let scalars = Nest.scalars nest in
  let array_var =
    let tbl = List.mapi (fun i b -> (b, Printf.sprintf "a%d" i)) arrays in
    fun b -> List.assoc b tbl
  in
  let scalar_var =
    let tbl = List.mapi (fun i s -> (s, Printf.sprintf "s%d" i)) scalars in
    fun s -> List.assoc s tbl
  in
  let boxes = List.filter (fun (b, _) -> List.mem b arrays) boxes in
  add "\nlet () =\n";
  add "  (* unit %s, variant %s: %s *)\n" uname v.vname (Nest.name nest);
  add "  let seed = %d in\n" seed;
  (* allocation + seeded initialisation *)
  List.iter
    (fun (b, box) ->
      let dims = Array.length box.mins in
      add
        "  let %s = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout \
         %d in\n"
        (array_var b) box.size;
      add "  let () =\n";
      for i = 0 to dims - 1 do
        add "    %sfor i%d = %d to %d do\n" (String.make (2 * i) ' ') i
          box.mins.(i)
          (box.mins.(i) + box.extents.(i) - 1)
      done;
      let flat =
        String.concat " + "
          (List.init dims (fun i ->
               Printf.sprintf "((i%d - (%d)) * %d)" i box.mins.(i)
                 box.strides.(i)))
      in
      let idx =
        "[" ^ String.concat "; " (List.init dims (Printf.sprintf "i%d")) ^ "]"
      in
      add "    %sBigarray.Array1.unsafe_set %s (%s) (init_element seed %s %s);\n"
        (String.make (2 * dims) ' ')
        (array_var b) flat (lit b) idx;
      for i = dims - 1 downto 0 do
        add "    %sdone%s\n" (String.make (2 * i) ' ') (if i = 0 then "" else ";")
      done;
      add "  in\n")
    boxes;
  List.iter
    (fun s -> add "  let %s = ref (init_scalar seed %s) in\n" (scalar_var s) (lit s))
    scalars;
  (* the nest as nested tail-recursive loop functions *)
  add "  let run () =\n";
  let loops = Nest.loops nest in
  let d = Array.length loops in
  let body =
    let b = Nest.body nest in
    if drop_last_stmt && List.length b >= 2 then
      List.filteri (fun i _ -> i < List.length b - 1) b
    else b
  in
  let rec emit_level k ind =
    let l = loops.(k) in
    add "%slet rec l%d i%d =\n" ind k k;
    add "%s  if i%d > %s then () else begin\n" ind k (affine_code l.Loop.hi);
    let ind' = ind ^ "    " in
    if k = d - 1 then begin
      let ctx =
        { buf;
          boxes;
          array_var;
          scalar_var;
          cache = [];
          tmp = 0 }
      in
      List.iter (fun st -> stmt_code ctx ind' st) body;
      add "%sl%d (i%d + %d)\n" ind' k k l.Loop.step
    end
    else begin
      emit_level (k + 1) ind';
      add "%sl%d (i%d + %d)\n" ind' k k l.Loop.step
    end;
    add "%s  end\n" ind;
    add "%sin\n" ind;
    add "%sl%d %s%s\n" ind k (affine_code l.Loop.lo) (if k = 0 then "" else ";")
  in
  emit_level 0 "    ";
  add "  in\n";
  (* one run for semantics, checksums, then the timed repetitions *)
  add "  run ();\n";
  List.iteri
    (fun j (b, box) ->
      let dims = Array.length box.mins in
      add "  let c%d = ref 0.0 in\n" j;
      add "  let () =\n";
      for i = 0 to dims - 1 do
        add "    %sfor i%d = %d to %d do\n" (String.make (2 * i) ' ') i
          box.mins.(i)
          (box.mins.(i) + box.extents.(i) - 1)
      done;
      let flat =
        String.concat " + "
          (List.init dims (fun i ->
               Printf.sprintf "((i%d - (%d)) * %d)" i box.mins.(i)
                 box.strides.(i)))
      in
      let idx =
        "[" ^ String.concat "; " (List.init dims (Printf.sprintf "i%d")) ^ "]"
      in
      add
        "    %sc%d := !c%d +. (Bigarray.Array1.unsafe_get %s (%s) *. \
         cell_weight %s %s);\n"
        (String.make (2 * dims) ' ')
        j j (array_var b) flat (lit b) idx;
      for i = dims - 1 downto 0 do
        add "    %sdone%s\n" (String.make (2 * i) ' ') (if i = 0 then "" else ";")
      done;
      add "  in\n")
    boxes;
  add "  let t0 = Sys.time () in\n";
  add "  for _ = 1 to %d do run () done;\n" (max 1 repeats);
  add "  let t1 = Sys.time () in\n";
  add "  Printf.printf \"RESULT %s %s %%h\" ((t1 -. t0) /. %d.0);\n"
    (sanitize_word uname) (sanitize_word v.vname) (max 1 repeats);
  List.iteri
    (fun j (b, _) -> add "  Printf.printf \" %s=%%h\" !c%d;\n" (sanitize_word b) j)
    boxes;
  add "  print_newline ()\n"

let runtime_src =
  {|(* generated by ujc emit -- do not edit *)
(* Seeded initialisation: a textual mirror of Ujam_sim.Interp's mixer,
   so this program and the reference interpreter see bit-identical
   inputs.  Keep in sync. *)

let mix z =
  let z = z lxor (z lsr 30) in
  let z = z * 0x4be98134a5976fd3 in
  let z = z lxor (z lsr 29) in
  let z = z * 0x3bc0993a5ad19a13 in
  z lxor (z lsr 32)

let fold_string h s =
  let h = ref h in
  String.iter (fun c -> h := mix (!h + Char.code c)) s;
  !h

let init_element seed base idx =
  let h = List.fold_left (fun h i -> mix (h + i)) (fold_string (mix seed) base) idx in
  0.25 +. (float_of_int (h land 0xFFFF) /. 131072.0)

let init_scalar seed name =
  0.25 +. (float_of_int (fold_string (mix (seed + 1)) name land 0xFF) /. 512.0)

let cell_weight base idx =
  let h = List.fold_left (fun h i -> mix (h + i)) (fold_string 0 base) idx in
  1.0 +. (float_of_int (h land 0xFFFF) /. 65536.0)
|}

let program ?(drop_last_stmt = false) units =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf runtime_src;
  List.iter
    (fun u ->
      let boxes = unit_layout u in
      List.iter
        (fun v ->
          variant_code buf ~uname:u.uname ~seed:u.seed ~repeats:u.repeats
            ~boxes ~drop_last_stmt v)
        u.variants)
    units;
  Buffer.contents buf
