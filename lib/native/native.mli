(** The ground-truth column: compile emitted programs, run them, and
    compare their per-array checksums against the reference
    interpreter.

    The equivalence judgement is per {e variant}: a variant's native
    checksums must match {!Ujam_sim.Interp.run} {e of that same
    variant's nest} — this catches emitter and toolchain bugs on any
    nest, including triangular and non-divisible unrolls where the
    transformed nest is legitimately not element-wise equal to the
    original (the remainder iterations live outside the perfect-nest
    IR).  Original-vs-transformed equality is a separate claim made
    only where it holds exactly, i.e. {!check_choice} clamps the chosen
    vector with {!Ujam_ir.Unroll.clamp_divisible} first. *)

type outcome = {
  vname : string;
  seconds : float;  (** wall CPU seconds per timed repetition *)
  checksums : (string * float) list;  (** per array, emitted order *)
}

type unit_outcomes = { uname : string; outcomes : outcome list }

val default_tolerance : float
(** Relative checksum tolerance, [1e-9]. *)

val run_units :
  ?drop_last_stmt:bool ->
  Toolchain.t ->
  Emit.unit_spec list ->
  (unit_outcomes list, string) result
(** Emit one program for the units, compile it in a fresh temp
    directory, execute it, parse the RESULT lines.  [drop_last_stmt]
    threads the fault-injection hook through to {!Emit.program}. *)

val reference : Emit.unit_spec -> (string * (string * float) list) list
(** Interpreter-side checksums: for each variant (by name), each array's
    reduction of {!Ujam_sim.Interp.final_value} against
    {!Ujam_sim.Interp.cell_weight} over the unit's union box, visited in
    {!Emit.box_iter} order so the float sums associate identically. *)

type diff = { array_name : string; native : float; expected : float }

type equivalence = {
  vname : string;
  max_rel_err : float;
  diffs : diff list;  (** non-empty exactly when the variant failed *)
}

val equivalences :
  ?tol:float -> Emit.unit_spec -> unit_outcomes -> equivalence list
(** Pair native outcomes with {!reference} by variant name. *)

(* ---- the engine hook --------------------------------------------------- *)

type choice_check = {
  name : string;
  u : Ujam_linalg.Vec.t;  (** the vector actually validated *)
  clamped : bool;  (** chosen vector reduced to a divisible one *)
  equivalent : bool;
  max_rel_err : float;
  seconds_original : float;
  seconds_transformed : float;
  measured_speedup : float;  (** original time / transformed time *)
}

val check_choice :
  ?repeats:int ->
  ?seed:int ->
  ?tol:float ->
  Toolchain.t ->
  Ujam_core.Driver.report ->
  (choice_check, Ujam_engine.Error.t) result
(** Re-validate an optimizer decision on real hardware: compile and run
    the original nest and the chosen unroll (clamped to divisibility),
    check both against the interpreter, and measure the speedup the
    tables promised.  All failures (no usable transform, compile error,
    runtime error) are typed [Native]-stage errors. *)

val check_choice_to_json : choice_check -> Ujam_engine.Json.t
