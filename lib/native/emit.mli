(** Lowering nests to standalone OCaml programs over flat float arrays.

    One emitted program holds any number of {e units}; a unit is one
    problem (a seed, a repeat count, and a list of nest {e variants} —
    conventionally the original nest first, then the candidates a
    transformation produced).  Every variant becomes straight-line
    native code: one [Bigarray.Array1] of float64 per array (flattened
    through the same mins/strides box the cache layout uses, taken as
    the union over the unit's variants so all variants address one
    consistent footprint), tail-recursive loop functions with affine
    bounds, and a body with store-aware load reuse (a read already
    loaded this iteration is reused from its local unless an
    intervening store to the same base could alias it).

    The program initialises arrays and scalars with a textual copy of
    the interpreter's seeded mixer ({!runtime_src}, kept in sync with
    {!Ujam_sim.Interp} by the pinned kernel tests), runs each variant
    once for semantics, folds each array through the shared
    {!Ujam_sim.Interp.cell_weight} functional, then times [repeats]
    further runs, and prints one self-describing line per variant:

    {v RESULT <unit> <variant> <seconds-per-run> <array>=<checksum> ... v}

    with floats in hexadecimal ([%h]) so they round-trip exactly. *)

open Ujam_ir

type variant = { vname : string; nest : Nest.t }

type unit_spec = {
  uname : string;
  seed : int;  (** initial-store seed, as for {!Ujam_sim.Interp.run} *)
  repeats : int;  (** timed repetitions after the semantics run *)
  variants : variant list;
}

type box = {
  mins : int array;  (** smallest touched subscript per dimension *)
  extents : int array;
  strides : int array;  (** dimension 0 is contiguous, as in {!Ujam_sim.Layout} *)
  size : int;  (** flat element count *)
}

val unit_layout : unit_spec -> (string * box) list
(** Union allocation box per array across all the unit's variants, in
    order of first appearance.
    @raise Invalid_argument when the footprint is unreasonably large
    (over [2^24] elements per array) — callers guard this into a typed
    error. *)

val box_iter : box -> (int list -> unit) -> unit
(** Enumerate the box's raw subscript vectors, dimension 0 slowest —
    the exact order the emitted checksum loops accumulate in, so a
    reference reduction visiting the same order sums identically. *)

val program : ?drop_last_stmt:bool -> unit_spec list -> string
(** The complete program text.  [drop_last_stmt] (default false) is the
    fault-injection hook for the oracle's self-test: every variant with
    at least two body statements is emitted without its final statement,
    the classic lost-jammed-copy emitter bug. *)

val runtime_src : string
(** The seeded-initialisation / checksum preamble embedded in every
    program; a textual mirror of the interpreter's mixer. *)
