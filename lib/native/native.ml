open Ujam_ir
open Ujam_engine
module Interp = Ujam_sim.Interp
module Obs = Ujam_obs.Obs

let m_compiles = Obs.counter "native.compiles"
let m_runs = Obs.counter "native.runs"
let m_variants = Obs.counter "native.variants"

type outcome = {
  vname : string;
  seconds : float;
  checksums : (string * float) list;
}

type unit_outcomes = { uname : string; outcomes : outcome list }

let default_tolerance = 1e-9

(* ---- compile & run ----------------------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "ujc-native" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir)
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let write_file file text =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

(* RESULT <unit> <variant> <seconds> <array>=<checksum> ... with floats
   in %h form, which float_of_string round-trips exactly. *)
let parse_results text =
  let parse_line line =
    match String.split_on_char ' ' (String.trim line) with
    | "RESULT" :: uname :: vname :: secs :: pairs ->
        let checksums =
          List.filter_map
            (fun p ->
              match String.index_opt p '=' with
              | Some i ->
                  Some
                    ( String.sub p 0 i,
                      float_of_string
                        (String.sub p (i + 1) (String.length p - i - 1)) )
              | None -> None)
            pairs
        in
        Some (uname, { vname; seconds = float_of_string secs; checksums })
    | _ -> None
  in
  let rows =
    List.filter_map parse_line (String.split_on_char '\n' text)
  in
  (* group by unit, preserving first-appearance order *)
  let order = ref [] in
  let tbl : (string, outcome list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (u, o) ->
      match Hashtbl.find_opt tbl u with
      | Some l -> l := o :: !l
      | None ->
          Hashtbl.add tbl u (ref [ o ]);
          order := u :: !order)
    rows;
  List.rev_map
    (fun u -> { uname = u; outcomes = List.rev !(Hashtbl.find tbl u) })
    !order

let run_units ?drop_last_stmt tc units =
  let text = Emit.program ?drop_last_stmt units in
  with_temp_dir (fun dir ->
      let src = Filename.concat dir "prog.ml" in
      let exe = Filename.concat dir "prog.exe" in
      write_file src text;
      Obs.Counter.add m_compiles 1;
      match Toolchain.compile tc ~src ~exe with
      | Error _ as e -> e
      | Ok () -> (
          Obs.Counter.add m_runs 1;
          match Toolchain.run_exe exe with
          | Error _ as e -> e
          | Ok out ->
              let results = parse_results out in
              let expect =
                List.fold_left
                  (fun acc u -> acc + List.length u.Emit.variants)
                  0 units
              in
              let got =
                List.fold_left (fun acc u -> acc + List.length u.outcomes) 0
                  results
              in
              Obs.Counter.add m_variants got;
              if got <> expect then
                Error
                  (Printf.sprintf
                     "native program reported %d variants, expected %d" got
                     expect)
              else Ok results))

(* ---- interpreter-side reference ---------------------------------------- *)

let reference (spec : Emit.unit_spec) =
  let boxes = Emit.unit_layout spec in
  List.map
    (fun (v : Emit.variant) ->
      let store = Interp.run ~seed:spec.Emit.seed v.Emit.nest in
      let arrays = Nest.arrays v.Emit.nest in
      let sums =
        List.filter_map
          (fun (b, box) ->
            if not (List.mem b arrays) then None
            else begin
              let acc = ref 0.0 in
              Emit.box_iter box (fun idx ->
                  acc :=
                    !acc
                    +. (Interp.final_value store b idx
                       *. Interp.cell_weight b idx));
              Some (b, !acc)
            end)
          boxes
      in
      (v.Emit.vname, sums))
    spec.Emit.variants

(* ---- equivalence ------------------------------------------------------- *)

type diff = { array_name : string; native : float; expected : float }

type equivalence = {
  vname : string;
  max_rel_err : float;
  diffs : diff list;
}

let rel_err a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs b)

let equivalences ?(tol = default_tolerance) spec (res : unit_outcomes) =
  let refs = reference spec in
  List.map
    (fun (vname, expected) ->
      match
        List.find_opt
          (fun (o : outcome) -> String.equal o.vname vname)
          res.outcomes
      with
      | None ->
          { vname;
            max_rel_err = Float.infinity;
            diffs =
              List.map
                (fun (b, e) -> { array_name = b; native = Float.nan; expected = e })
                expected }
      | Some o ->
          let diffs, worst =
            List.fold_left
              (fun (ds, worst) (b, e) ->
                match List.assoc_opt b o.checksums with
                | None ->
                    ( { array_name = b; native = Float.nan; expected = e } :: ds,
                      Float.infinity )
                | Some n ->
                    let err = rel_err n e in
                    let ds =
                      if err > tol then
                        { array_name = b; native = n; expected = e } :: ds
                      else ds
                    in
                    (ds, Float.max worst err))
              ([], 0.0) expected
          in
          { vname; max_rel_err = worst; diffs = List.rev diffs })
    refs

(* ---- the engine hook --------------------------------------------------- *)

type choice_check = {
  name : string;
  u : Ujam_linalg.Vec.t;
  clamped : bool;
  equivalent : bool;
  max_rel_err : float;
  seconds_original : float;
  seconds_transformed : float;
  measured_speedup : float;
}

let check_choice ?(repeats = 3) ?(seed = Interp.default_seed) ?tol tc
    (report : Ujam_core.Driver.report) =
  let nest = report.Ujam_core.Driver.nest in
  let routine = Nest.name nest in
  Error.guard ~stage:Error.Native ~routine (fun () ->
      let chosen = report.Ujam_core.Driver.choice.Ujam_core.Search.u in
      let u = Unroll.clamp_divisible nest chosen in
      let clamped = not (Ujam_linalg.Vec.equal u chosen) in
      let transformed = Unroll.unroll_and_jam nest u in
      let spec =
        { Emit.uname = "choice";
          seed;
          repeats;
          variants =
            [ { Emit.vname = "orig"; nest };
              { Emit.vname = "unrolled"; nest = transformed } ] }
      in
      match run_units tc [ spec ] with
      | Error msg -> failwith msg
      | Ok [ res ] ->
          let eqs = equivalences ?tol spec res in
          let find v =
            match
              List.find_opt
                (fun (o : outcome) -> String.equal o.vname v)
                res.outcomes
            with
            | Some o -> o
            | None -> failwith ("missing native result for " ^ v)
          in
          let t_orig = (find "orig").seconds in
          let t_unrolled = (find "unrolled").seconds in
          { name = routine;
            u;
            clamped;
            equivalent = List.for_all (fun (e : equivalence) -> e.diffs = []) eqs;
            max_rel_err =
              List.fold_left
                (fun m (e : equivalence) -> Float.max m e.max_rel_err)
                0.0 eqs;
            seconds_original = t_orig;
            seconds_transformed = t_unrolled;
            measured_speedup =
              (if t_unrolled > 0.0 then t_orig /. t_unrolled else 1.0) }
      | Ok _ -> failwith "native program returned wrong unit count")

let check_choice_to_json c =
  Json.Obj
    [ ("kernel", Json.Str c.name);
      ("u", Json.of_vec c.u);
      ("clamped", Json.Bool c.clamped);
      ("equivalent", Json.Bool c.equivalent);
      ("max_rel_err", Json.Float c.max_rel_err);
      ("seconds_original", Json.Float c.seconds_original);
      ("seconds_transformed", Json.Float c.seconds_transformed);
      ("measured_speedup", Json.Float c.measured_speedup) ]
