(** Discovery and invocation of the host OCaml native toolchain.

    The ground-truth column compiles emitted programs with whatever the
    host provides — [ocamlfind ocamlopt] when findlib is installed,
    bare [ocamlopt] otherwise.  Discovery scans [PATH] once and caches
    the answer for the life of the process; a missing toolchain is a
    value ([Error _]), never an exception, so every native entry point
    degrades to a typed {!Ujam_engine.Error.t} and the rest of the
    pipeline keeps working on machines without a compiler. *)

type t = {
  command : string;  (** absolute path of the discovered executable *)
  via_ocamlfind : bool;
      (** when set, [command] is findlib and compiles run as
          [ocamlfind ocamlopt ...] *)
}

val probe : ?path:string -> unit -> (t, string) result
(** Scan a PATH string (default: the [UJC_NATIVE_COMPILER] environment
    override if set, else [$PATH]) for [ocamlfind], then [ocamlopt].
    Pure lookup — no caching, no compilation — so tests can probe
    scrubbed environments. *)

val find : unit -> (t, string) result
(** [probe] once, then cached for the whole process. *)

val description : t -> string
(** E.g. ["ocamlfind ocamlopt (/usr/bin/ocamlfind)"]. *)

val compile : t -> src:string -> exe:string -> (unit, string) result
(** Compile one self-contained source file to a native executable.  Runs
    in the source's directory (compiler droppings stay in the caller's
    temp dir); on failure returns the tail of the compiler's output. *)

val run_exe : string -> (string, string) result
(** Execute a compiled program, capturing stdout.  [Error _] carries the
    exit status and any output when the program fails. *)
