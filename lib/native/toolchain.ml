type t = { command : string; via_ocamlfind : bool }

let path_sep = if Sys.win32 then ';' else ':'

let executable_at dir name =
  let file = Filename.concat dir name in
  if Sys.file_exists file && not (Sys.is_directory file) then Some file
  else None

let search_path path name =
  List.find_map
    (fun dir -> if dir = "" then None else executable_at dir name)
    (String.split_on_char path_sep path)

let probe ?path () =
  match Sys.getenv_opt "UJC_NATIVE_COMPILER" with
  | Some cmd when cmd <> "" && path = None ->
      (* explicit override: trust the given command verbatim *)
      let via_ocamlfind =
        Filename.basename cmd |> String.lowercase_ascii
        |> String.starts_with ~prefix:"ocamlfind"
      in
      Ok { command = cmd; via_ocamlfind }
  | _ -> (
      let path =
        match path with
        | Some p -> p
        | None -> Option.value (Sys.getenv_opt "PATH") ~default:""
      in
      match search_path path "ocamlfind" with
      | Some cmd -> Ok { command = cmd; via_ocamlfind = true }
      | None -> (
          match search_path path "ocamlopt" with
          | Some cmd -> Ok { command = cmd; via_ocamlfind = false }
          | None ->
              Error
                "no OCaml native toolchain: neither ocamlfind nor ocamlopt \
                 found on PATH (set UJC_NATIVE_COMPILER to override)"))

let cached : (t, string) result option ref = ref None

let find () =
  match !cached with
  | Some r -> r
  | None ->
      let r = probe () in
      cached := Some r;
      r

let description t =
  if t.via_ocamlfind then
    Printf.sprintf "ocamlfind ocamlopt (%s)" t.command
  else Printf.sprintf "ocamlopt (%s)" t.command

let read_file file =
  try
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error _ -> ""

let tail ?(n = 2000) s =
  let s = String.trim s in
  if String.length s <= n then s
  else "..." ^ String.sub s (String.length s - n) n

(* All compiler warnings are disabled: the input is generated code and
   deliberately ignores style (unused bindings from the CSE cache,
   shadowing between units). *)
let compile t ~src ~exe =
  let dir = Filename.dirname src in
  let log = Filename.concat dir "compile.log" in
  let cmd =
    Printf.sprintf "cd %s && %s %s -w -a -o %s %s > %s 2>&1"
      (Filename.quote dir) (Filename.quote t.command)
      (if t.via_ocamlfind then "ocamlopt" else "")
      (Filename.quote exe)
      (Filename.quote (Filename.basename src))
      (Filename.quote log)
  in
  match Sys.command cmd with
  | 0 -> Ok ()
  | code ->
      Error
        (Printf.sprintf "native compile failed (exit %d): %s" code
           (tail (read_file log)))
  | exception Sys_error msg -> Error ("native compile failed: " ^ msg)

let run_exe exe =
  let out = exe ^ ".out" in
  let cmd =
    Printf.sprintf "%s > %s 2>&1" (Filename.quote exe) (Filename.quote out)
  in
  match Sys.command cmd with
  | 0 -> Ok (read_file out)
  | code ->
      Error
        (Printf.sprintf "native run failed (exit %d): %s" code
           (tail (read_file out)))
  | exception Sys_error msg -> Error ("native run failed: " ^ msg)
