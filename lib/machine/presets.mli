(** Machine presets used by the evaluation.

    [alpha] approximates the DEC Alpha 21064 of Figure 8: dual issue (one
    memory, one FP operation per cycle), 8 KB direct-mapped data cache
    with 32-byte lines, a long miss penalty, 32 FP registers.

    [hppa] approximates the HP PA-RISC 7100 of Figure 9: same issue
    shape but a fused multiply-add (twice the peak flop rate, so machine
    balance 0.5), a large off-chip direct-mapped cache, shorter relative
    miss penalty.

    [generic ()] is a configurable machine for examples and sweeps. *)

val alpha : Machine.t
val hppa : Machine.t

val alpha_mem : Machine.t
(** [alpha] with the memory hierarchy spelled out: 8 KB write-through L1,
    128 KB board L2, 32-entry TLB over 8 KB pages.  Flat fields match
    [alpha] so single-level consumers see the same machine. *)

val hppa_mem : Machine.t
(** [hppa] with an L1 + L2 + TLB hierarchy. *)

val generic :
  ?fp_registers:int -> ?miss_penalty:int -> ?prefetch_bandwidth:float -> unit -> Machine.t

val all : Machine.t list

val scenarios : Machine.t list
(** The multi-level scenario machines ([alpha_mem]; [hppa_mem]). *)
