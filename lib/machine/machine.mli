(** Target-machine descriptions.

    The balance model needs issue rates, the register file size, and the
    cache geometry; the simulator additionally uses latencies.  All cache
    quantities are in array elements (double words), matching the paper's
    convention that a word equals the floating-point precision.

    A machine may optionally carry a multi-level memory hierarchy
    ({!Level.t} list, outermost-first: L1, then L2, then a TLB-style
    level whose "line" is the page).  When [levels] is empty the legacy
    single-level fields describe the whole hierarchy, so every pinned
    format and preset is unchanged. *)

module Level : sig
  type write_policy =
    | Write_allocate  (** misses fill the line; writes behave like reads *)
    | Write_through
        (** write misses do not allocate (write-around): a pure-write
            stream never builds up residency at this level *)

  type t = {
    name : string;   (** e.g. "L1", "L2", "TLB" *)
    size : int;      (** capacity, elements *)
    line : int;      (** line (or page) size, elements *)
    assoc : int;     (** ways; [size / (line * assoc)] sets *)
    access : int;    (** hit cost, cycles *)
    penalty : int;   (** additional miss cost, cycles *)
    write : write_policy;
  }

  val make :
    name:string ->
    size:int ->
    ?line:int ->
    ?assoc:int ->
    ?access:int ->
    ?penalty:int ->
    ?write:write_policy ->
    unit ->
    t

  val pp : Format.formatter -> t -> unit
end

type geometry_error = {
  level : string;  (** offending level name; ["cache"] for the flat fields *)
  reason : string;
}
(** A typed cache-geometry rejection: produced by {!make_checked} /
    {!validate_levels} instead of [Sim.Cache.create] raising deep inside
    a run; the analysis layer surfaces it as a located diagnostic
    (UJ030). *)

val geometry_message : geometry_error -> string
val pp_geometry_error : Format.formatter -> geometry_error -> unit

val validate_levels : Level.t list -> (unit, geometry_error) result
(** Each level's size must be a positive multiple of [line * assoc], and
    capacities must be monotone non-decreasing from L1 outwards. *)

type t = {
  name : string;
  mem_issue : int;      (** memory operations issued per cycle *)
  fp_issue : int;       (** floating-point operations issued per cycle *)
  fp_latency : int;     (** cycles until an FP result is available *)
  fp_registers : int;
  cache_size : int;     (** elements *)
  cache_line : int;     (** elements *)
  associativity : int;  (** ways; [cache_size / (line * assoc)] sets *)
  cache_access : int;   (** hit cost [C_s], cycles *)
  miss_penalty : int;   (** additional miss cost [C_m], cycles *)
  prefetch_bandwidth : float;  (** prefetch issues per cycle; 0 = none *)
  levels : Level.t list;
      (** optional memory hierarchy, innermost (L1) first; [[]] means
          "use the flat [cache_*] fields as the only level" *)
}

val balance : t -> float
(** Machine balance [beta_M = mem_issue / fp_issue]: words fetched per
    flop at peak. *)

val miss_ratio_cost : t -> float
(** [C_m / C_s]: the unserviced-prefetch multiplier of Sec. 3.2. *)

val make :
  name:string ->
  ?mem_issue:int ->
  ?fp_issue:int ->
  ?fp_latency:int ->
  ?fp_registers:int ->
  ?cache_size:int ->
  ?cache_line:int ->
  ?associativity:int ->
  ?cache_access:int ->
  ?miss_penalty:int ->
  ?prefetch_bandwidth:float ->
  ?levels:Level.t list ->
  unit ->
  t
(** Raises [Invalid_argument] on a bad geometry (the rendered
    {!geometry_error}); use {!make_checked} for the typed variant. *)

val make_checked :
  name:string ->
  ?mem_issue:int ->
  ?fp_issue:int ->
  ?fp_latency:int ->
  ?fp_registers:int ->
  ?cache_size:int ->
  ?cache_line:int ->
  ?associativity:int ->
  ?cache_access:int ->
  ?miss_penalty:int ->
  ?prefetch_bandwidth:float ->
  ?levels:Level.t list ->
  unit ->
  (t, geometry_error) result

val effective_levels : t -> Level.t list
(** [levels] when non-empty, else the single level synthesised from the
    flat [cache_*] fields (named "L1").  Never empty. *)

val level_at : t -> int -> Level.t option
(** 1-based lookup into {!effective_levels}. *)

val pp : Format.formatter -> t -> unit
