(* Cache quantities are in 8-byte elements: a 32-byte line is 4 elements.
   The modelled cache is the board-level SRAM whose misses pay the DRAM
   penalty (the 21064's 8 KB on-chip cache sits in front of a 128 KB+
   board cache; the paper's balance model charges the expensive level). *)

let alpha =
  Machine.make ~name:"DEC-Alpha-21064" ~mem_issue:1 ~fp_issue:1 ~fp_latency:6
    ~fp_registers:32 ~cache_size:16384 ~cache_line:4 ~associativity:1
    ~cache_access:1 ~miss_penalty:24 ()

let hppa =
  Machine.make ~name:"HP-PA-RISC-7100" ~mem_issue:1 ~fp_issue:2 ~fp_latency:2
    ~fp_registers:32 ~cache_size:32768 ~cache_line:4 ~associativity:1
    ~cache_access:1 ~miss_penalty:12 ()

let generic ?(fp_registers = 32) ?(miss_penalty = 20) ?(prefetch_bandwidth = 0.0) () =
  Machine.make ~name:"generic" ~fp_registers ~miss_penalty ~prefetch_bandwidth
    ~cache_size:4096 ~cache_line:4 ()

(* Multi-level scenarios for the reuse-distance analysis.  [alpha_mem]
   spells out the hierarchy the flat [alpha] preset collapses: the 8 KB
   write-through on-chip cache (1024 elements), the 128 KB board cache,
   and a 32-entry TLB whose "line" is the 8 KB page.  The flat fields
   keep the board-cache geometry so the balance model and every pinned
   output are unchanged when the hierarchy is ignored. *)

let alpha_mem =
  Machine.make ~name:"DEC-Alpha-21064-mem" ~mem_issue:1 ~fp_issue:1
    ~fp_latency:6 ~fp_registers:32 ~cache_size:16384 ~cache_line:4
    ~associativity:1 ~cache_access:1 ~miss_penalty:24
    ~levels:
      [ Machine.Level.make ~name:"L1" ~size:1024 ~line:4 ~assoc:1 ~access:1
          ~penalty:5 ~write:Machine.Level.Write_through ();
        Machine.Level.make ~name:"L2" ~size:16384 ~line:4 ~assoc:1 ~access:6
          ~penalty:24 ();
        Machine.Level.make ~name:"TLB" ~size:32768 ~line:1024 ~assoc:32
          ~access:1 ~penalty:50 () ]
    ()

let hppa_mem =
  Machine.make ~name:"HP-PA-RISC-7100-mem" ~mem_issue:1 ~fp_issue:2
    ~fp_latency:2 ~fp_registers:32 ~cache_size:32768 ~cache_line:4
    ~associativity:1 ~cache_access:1 ~miss_penalty:12
    ~levels:
      [ Machine.Level.make ~name:"L1" ~size:2048 ~line:4 ~assoc:1 ~access:1
          ~penalty:4 ();
        Machine.Level.make ~name:"L2" ~size:32768 ~line:4 ~assoc:1 ~access:5
          ~penalty:12 ();
        Machine.Level.make ~name:"TLB" ~size:32768 ~line:512 ~assoc:64
          ~access:1 ~penalty:40 () ]
    ()

let all = [ alpha; hppa; generic () ]
let scenarios = [ alpha_mem; hppa_mem ]
