module Level = struct
  type write_policy = Write_allocate | Write_through

  type t = {
    name : string;
    size : int;
    line : int;
    assoc : int;
    access : int;
    penalty : int;
    write : write_policy;
  }

  let make ~name ~size ?(line = 4) ?(assoc = 1) ?(access = 1) ?(penalty = 20)
      ?(write = Write_allocate) () =
    { name; size; line; assoc; access; penalty; write }

  let pp_write ppf w =
    Format.pp_print_string ppf
      (match w with Write_allocate -> "wa" | Write_through -> "wt")

  let pp ppf l =
    Format.fprintf ppf "%s=%d/%d-elt %d-way hit=%dc miss=+%dc %a" l.name l.size
      l.line l.assoc l.access l.penalty pp_write l.write
end

type geometry_error = { level : string; reason : string }

let geometry_message e =
  Printf.sprintf "cache geometry (%s): %s" e.level e.reason

let pp_geometry_error ppf e = Format.pp_print_string ppf (geometry_message e)

(* One level's shape: positive line and associativity, size a positive
   multiple of [line * assoc] (so the set count is a whole number). *)
let validate_level_shape ~level ~size ~line ~assoc =
  if line <= 0 then Error { level; reason = "line size must be positive" }
  else if assoc <= 0 then
    Error { level; reason = "associativity must be positive" }
  else if size <= 0 then Error { level; reason = "size must be positive" }
  else if size mod (line * assoc) <> 0 then
    Error
      { level;
        reason =
          Printf.sprintf "size %d is not a multiple of line %d * assoc %d" size
            line assoc }
  else Ok ()

let validate_levels levels =
  let rec go prev = function
    | [] -> Ok ()
    | (l : Level.t) :: rest -> (
        match
          validate_level_shape ~level:l.Level.name ~size:l.Level.size
            ~line:l.Level.line ~assoc:l.Level.assoc
        with
        | Error _ as e -> e
        | Ok () -> (
            match prev with
            | Some (p : Level.t) when l.Level.size < p.Level.size ->
                Error
                  { level = l.Level.name;
                    reason =
                      Printf.sprintf
                        "capacity %d is smaller than the preceding level %s \
                         (%d): levels must be capacity-monotone"
                        l.Level.size p.Level.name p.Level.size }
            | _ -> go (Some l) rest))
  in
  go None levels

type t = {
  name : string;
  mem_issue : int;
  fp_issue : int;
  fp_latency : int;
  fp_registers : int;
  cache_size : int;
  cache_line : int;
  associativity : int;
  cache_access : int;
  miss_penalty : int;
  prefetch_bandwidth : float;
  levels : Level.t list;
}

let balance t = float_of_int t.mem_issue /. float_of_int t.fp_issue
let miss_ratio_cost t = float_of_int t.miss_penalty /. float_of_int t.cache_access

let validate ~name:_ ~mem_issue ~fp_issue ~cache_size ~cache_line ~associativity
    ~levels =
  if mem_issue <= 0 || fp_issue <= 0 then
    Error { level = "cpu"; reason = "issue rates must be positive" }
  else if cache_line <= 0 || cache_size < cache_line then
    Error { level = "cache"; reason = "size must be at least one line" }
  else
    match
      validate_level_shape ~level:"cache" ~size:cache_size ~line:cache_line
        ~assoc:associativity
    with
    | Error _ as e -> e
    | Ok () -> validate_levels levels

let make_checked ~name ?(mem_issue = 1) ?(fp_issue = 1) ?(fp_latency = 3)
    ?(fp_registers = 32) ?(cache_size = 1024) ?(cache_line = 4)
    ?(associativity = 1) ?(cache_access = 1) ?(miss_penalty = 20)
    ?(prefetch_bandwidth = 0.0) ?(levels = []) () =
  match
    validate ~name ~mem_issue ~fp_issue ~cache_size ~cache_line ~associativity
      ~levels
  with
  | Error _ as e -> e
  | Ok () ->
      Ok
        { name; mem_issue; fp_issue; fp_latency; fp_registers; cache_size;
          cache_line; associativity; cache_access; miss_penalty;
          prefetch_bandwidth; levels }

let make ~name ?mem_issue ?fp_issue ?fp_latency ?fp_registers ?cache_size
    ?cache_line ?associativity ?cache_access ?miss_penalty ?prefetch_bandwidth
    ?levels () =
  match
    make_checked ~name ?mem_issue ?fp_issue ?fp_latency ?fp_registers
      ?cache_size ?cache_line ?associativity ?cache_access ?miss_penalty
      ?prefetch_bandwidth ?levels ()
  with
  | Ok t -> t
  | Error e -> invalid_arg ("Machine.make: " ^ geometry_message e)

let effective_levels t =
  match t.levels with
  | [] ->
      [ { Level.name = "L1";
          size = t.cache_size;
          line = t.cache_line;
          assoc = t.associativity;
          access = t.cache_access;
          penalty = t.miss_penalty;
          write = Level.Write_allocate } ]
  | ls -> ls

let level_at t k =
  let ls = effective_levels t in
  List.nth_opt ls (k - 1)

let pp ppf t =
  Format.fprintf ppf
    "%s: beta_M=%.2f mem/cyc=%d fp/cyc=%d lat=%d regs=%d cache=%d/%d-elt \
     %d-way hit=%dc miss=+%dc prefetch=%.2f/cyc"
    t.name (balance t) t.mem_issue t.fp_issue t.fp_latency t.fp_registers
    t.cache_size t.cache_line t.associativity t.cache_access t.miss_penalty
    t.prefetch_bandwidth;
  match t.levels with
  | [] -> ()
  | ls ->
      Format.fprintf ppf " levels=[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           Level.pp)
        ls
