module Json = Ujam_engine.Json
module Obs = Ujam_obs.Obs
module Machine = Ujam_machine.Machine
module Presets = Ujam_machine.Presets
module Engine = Ujam_engine.Engine
module Model = Ujam_engine.Model
module Error = Ujam_engine.Error
module Result_cache = Ujam_engine.Result_cache
module Parse = Ujam_ir.Parse
module Catalogue = Ujam_kernels.Catalogue
module Lint = Ujam_analysis.Lint
module Explain = Ujam_analysis.Explain
module Diagnostic = Ujam_analysis.Diagnostic

type config = {
  machine : Machine.t;
  bound : int;
  max_loops : int;
  model : (module Model.MODEL);
  seq : bool;
  domains : int;
  cache_size : int;
  cache_file : string option;
  batch : int;
  timeout_ms : int;
  max_request_bytes : int;
  metrics_out : string option;
  trace_out : string option;
  quiet : bool;
}

let default_config ?(machine = Presets.alpha) () =
  { machine;
    bound = 4;
    max_loops = 2;
    model = (module Model.Ugs_tables : Model.MODEL);
    seq = false;
    domains = 1;
    cache_size = 1024;
    cache_file = None;
    batch = 32;
    timeout_ms = 30_000;
    max_request_bytes = 1 lsl 20;
    metrics_out = None;
    trace_out = None;
    quiet = false }

let machine_of_name = function
  | "alpha" -> Some Presets.alpha
  | "hppa" -> Some Presets.hppa
  | "generic" -> Some (Presets.generic ())
  | _ -> None

type summary = {
  requests : int;
  ok : int;
  errors : int;
  hits : int;
  misses : int;
  evictions : int;
}

(* ---- the loop's working state ---------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  cout : Unix.file_descr;
  buf : Buffer.t;
  mutable discarding : bool;  (* oversized line: drop bytes to newline *)
  mutable input_done : bool;
  mutable alive : bool;  (* write side usable *)
  borrowed : bool;  (* stdio fds: never close them *)
}

type job = {
  j_conn : conn;
  j_id : Json.t;
  j_key : string;
  j_arrival : float;
  j_deadline : float option;
  j_label : string;
  j_compute : unit -> bool * Json.t;
}

(* Tasks keep per-connection response order: every request — even one
   answered on the spot — rides the same FIFO, so a cache hit can never
   overtake an earlier miss from the same client.  [Thunk] defers
   rendering to the respond phase, after the round's cache-miss batch
   has been computed and stored — a [metrics] request queued in the
   same input chunk as an optimize still observes that optimize. *)
type task =
  | Ready of conn * bool * string
  | Thunk of conn * (unit -> bool * string)
  | Compute of job

type st = {
  cfg : config;
  cache : (bool * Json.t) Result_cache.t;
  pending : task Queue.t;
  mutable conns : conn list;
  mutable draining : bool;
  stop : bool Atomic.t;
  mutable n_requests : int;
  mutable n_ok : int;
  mutable n_err : int;
  m_requests : Obs.Counter.t;
  m_errors : Obs.Counter.t;
  h_batch : Obs.Histogram.t;
  h_request : Obs.Histogram.t;
}

let mk_conn ?(borrowed = false) fd cout =
  { fd;
    cout;
    buf = Buffer.create 512;
    discarding = false;
    input_done = false;
    alive = true;
    borrowed }

let write_line st conn ~is_ok line =
  if is_ok then st.n_ok <- st.n_ok + 1
  else begin
    st.n_err <- st.n_err + 1;
    Obs.Counter.incr st.m_errors
  end;
  if conn.alive then begin
    let s = line ^ "\n" in
    let n = String.length s in
    try
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write_substring conn.cout s !off (n - !off)
      done
    with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) | Sys_error _ ->
      (* mid-stream disconnect: this client is gone; everyone else's
         requests are unaffected *)
      conn.alive <- false;
      conn.input_done <- true
  end

(* ---- request dispatch ------------------------------------------------ *)

let metrics_payload st =
  let cs = Result_cache.stats st.cache in
  let cache_json =
    Json.Obj
      [ ("size", Json.Int cs.Result_cache.size);
        ("capacity", Json.Int cs.Result_cache.capacity);
        ("hits", Json.Int cs.Result_cache.hits);
        ("misses", Json.Int cs.Result_cache.misses);
        ("evictions", Json.Int cs.Result_cache.evictions) ]
  in
  match Obs.dump () with
  | Json.Obj fields -> Json.Obj (fields @ [ ("cache", cache_json) ])
  | other -> other

let safe_compute f () =
  try f ()
  with exn ->
    ( false,
      Protocol.error_payload ~kind:Protocol.Analysis
        ("analysis raised: " ^ Printexc.to_string exn) )

let compute_of ~(meth : Protocol.method_) ~bound ~max_loops ~model ~seq
    ~machine ~rules ~routine nest =
  match meth with
  | Protocol.Optimize ->
      fun () -> (
        match
          Engine.analyze ~bound ~max_loops ~model ~seq ~machine ~routine nest
        with
        | Ok _ as o -> (true, Engine.nest_outcome_to_json o)
        | Error e ->
            ( false,
              Protocol.error_payload ~kind:Protocol.Analysis
                ~diagnostics:
                  (List.map Diagnostic.to_json e.Error.diagnostics)
                (Error.to_string { e with Error.diagnostics = [] }) ))
  | Protocol.Explain ->
      fun () ->
        (true, Explain.to_json (Explain.run ~bound ~max_loops ~seq ~machine nest))
  | Protocol.Lint ->
      fun () ->
        let diags = Lint.run ?rules ~bound ~max_loops ~machine nest in
        let e, w, i = Diagnostic.count diags in
        ( true,
          Json.Obj
            [ ("nest", Json.Str routine);
              ("diagnostics", Json.List (List.map Diagnostic.to_json diags));
              ("errors", Json.Int e);
              ("warnings", Json.Int w);
              ("infos", Json.Int i) ] )
  | Protocol.Metrics | Protocol.Ping | Protocol.Shutdown ->
      fun () ->
        (false, Protocol.error_payload ~kind:Protocol.Protocol "not a job")

let enqueue_request st conn arrival (req : Protocol.request) =
  let id = req.Protocol.id in
  let perr msg =
    Queue.add
      (Ready (conn, false, Protocol.error_response ~id ~kind:Protocol.Protocol msg))
      st.pending
  in
  match req.Protocol.meth with
  | Protocol.Ping ->
      Queue.add
        (Ready
           (conn, true, Protocol.ok_response ~id (Json.Obj [ ("pong", Json.Bool true) ])))
        st.pending
  | Protocol.Metrics ->
      Queue.add
        (Thunk
           (conn, fun () -> (true, Protocol.ok_response ~id (metrics_payload st))))
        st.pending
  | Protocol.Shutdown ->
      st.draining <- true;
      Queue.add
        (Ready
           ( conn,
             true,
             Protocol.ok_response ~id (Json.Obj [ ("stopping", Json.Bool true) ]) ))
        st.pending
  | (Protocol.Optimize | Protocol.Explain | Protocol.Lint) as meth -> (
      let cfg = st.cfg in
      let machine_r =
        match req.Protocol.machine with
        | None -> Ok cfg.machine
        | Some name -> (
            match machine_of_name name with
            | Some m -> Ok m
            | None ->
                Error
                  (Printf.sprintf
                     "unknown machine %S (known: alpha, hppa, generic)" name))
      in
      let model_r =
        match req.Protocol.model with
        | None -> Ok cfg.model
        | Some name -> (
            match Model.find name with
            | Some m -> Ok m
            | None ->
                Error
                  (Printf.sprintf "unknown model %S (known: %s)" name
                     (String.concat ", " Model.names)))
      in
      match (machine_r, model_r) with
      | Error msg, _ | _, Error msg -> perr msg
      | Ok machine, Ok model -> (
          let bound = Option.value req.Protocol.bound ~default:cfg.bound in
          let max_loops =
            Option.value req.Protocol.max_loops ~default:cfg.max_loops
          in
          let seq = Option.value req.Protocol.seq ~default:cfg.seq in
          let nest_r =
            match req.Protocol.source with
            | None -> Error (`Protocol "params needs a nest or a kernel")
            | Some (Protocol.Kernel (k, n)) -> (
                match Catalogue.find k with
                | None -> Error (`Protocol (Printf.sprintf "unknown kernel %S" k))
                | Some e -> (
                    let name =
                      Option.value req.Protocol.name
                        ~default:e.Catalogue.name
                    in
                    try
                      Ok
                        ( name,
                          match n with
                          | Some n -> e.Catalogue.build ~n ()
                          | None -> e.Catalogue.build () )
                    with exn ->
                      Error
                        (`Protocol
                           (Printf.sprintf "kernel %S: %s" k
                              (Printexc.to_string exn)))))
            | Some (Protocol.Inline src) -> (
                let name = Option.value req.Protocol.name ~default:"nest" in
                match Parse.nest ~name src with
                | Ok nest -> Ok (name, nest)
                | Error pe ->
                    Error
                      (`Parse
                         ( Format.asprintf "%a" Parse.pp_error pe,
                           [ Diagnostic.to_json (Lint.of_parse_error pe) ] )))
          in
          match nest_r with
          | Error (`Protocol msg) -> perr msg
          | Error (`Parse (msg, diagnostics)) ->
              Queue.add
                (Ready
                   ( conn,
                     false,
                     Protocol.error_response ~id ~kind:Protocol.Parse
                       ~diagnostics msg ))
                st.pending
          | Ok (routine, nest) ->
              (* Intern the nest: repeated problems (however spelled)
                 collapse to one representative whose canonical digest
                 is memoized, so the fingerprint below — and any
                 re-ask of the same structure — costs a hash lookup
                 instead of a canonicalization. *)
              let nest = Ujam_ir.Hashcons.nest nest in
              let module M = (val model : Model.MODEL) in
              let extra =
                routine
                ^
                match req.Protocol.rules with
                | Some rules -> "|" ^ String.concat "," rules
                | None -> ""
              in
              let key =
                Result_cache.fingerprint
                  ~op:(Protocol.method_name meth)
                  ~machine ~bound ~max_loops ~model:M.name ~seq ~extra nest
              in
              let deadline =
                let spec =
                  Option.value req.Protocol.timeout_ms ~default:cfg.timeout_ms
                in
                if spec < 0 then None
                else Some (arrival +. (float_of_int spec /. 1000.))
              in
              Queue.add
                (Compute
                   { j_conn = conn;
                     j_id = id;
                     j_key = key;
                     j_arrival = arrival;
                     j_deadline = deadline;
                     j_label = Protocol.method_name meth;
                     j_compute =
                       safe_compute
                         (compute_of ~meth ~bound ~max_loops ~model ~seq
                            ~machine ~rules:req.Protocol.rules ~routine nest) })
                st.pending))

let handle_line st conn line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.trim line = "" then ()
  else begin
    st.n_requests <- st.n_requests + 1;
    Obs.Counter.incr st.m_requests;
    let arrival = Unix.gettimeofday () in
    if String.length line > st.cfg.max_request_bytes then
      Queue.add
        (Ready
           ( conn,
             false,
             Protocol.error_response ~id:Json.Null ~kind:Protocol.Oversized
               (Printf.sprintf "request line exceeds %d bytes"
                  st.cfg.max_request_bytes) ))
        st.pending
    else
      match Json.of_string line with
      | Error msg ->
          Queue.add
            (Ready
               ( conn,
                 false,
                 Protocol.error_response ~id:Json.Null ~kind:Protocol.Protocol
                   ("invalid JSON: " ^ msg) ))
            st.pending
      | Ok json -> (
          match Protocol.request_of_json json with
          | Error msg ->
              let id =
                Option.value (Json.member "id" json) ~default:Json.Null
              in
              Queue.add
                (Ready
                   ( conn,
                     false,
                     Protocol.error_response ~id ~kind:Protocol.Protocol msg ))
                st.pending
          | Ok req -> enqueue_request st conn arrival req)
  end

(* ---- buffered line extraction ---------------------------------------- *)

let rec extract_lines st conn =
  let s = Buffer.contents conn.buf in
  match String.index_opt s '\n' with
  | Some i ->
      Buffer.clear conn.buf;
      Buffer.add_substring conn.buf s (i + 1) (String.length s - i - 1);
      if conn.discarding then begin
        (* the newline ends the oversized line we already reported *)
        conn.discarding <- false
      end
      else handle_line st conn (String.sub s 0 i);
      extract_lines st conn
  | None ->
      if (not conn.discarding) && String.length s > st.cfg.max_request_bytes
      then begin
        (* no newline yet and already over budget: report once, then
           swallow bytes until the line ends *)
        conn.discarding <- true;
        Buffer.clear conn.buf;
        st.n_requests <- st.n_requests + 1;
        Obs.Counter.incr st.m_requests;
        Queue.add
          (Ready
             ( conn,
               false,
               Protocol.error_response ~id:Json.Null ~kind:Protocol.Oversized
                 (Printf.sprintf "request line exceeds %d bytes"
                    st.cfg.max_request_bytes) ))
          st.pending
      end

let read_chunk st conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.input_done <- true
  | n ->
      if conn.discarding then begin
        (* cheap fast path: drop everything before the ending newline *)
        match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
        | None -> ()
        | Some i ->
            conn.discarding <- false;
            Buffer.add_subbytes conn.buf chunk (i + 1) (n - i - 1);
            extract_lines st conn
      end
      else begin
        Buffer.add_subbytes conn.buf chunk 0 n;
        extract_lines st conn
      end
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
      conn.input_done <- true;
      conn.alive <- false
  | exception Unix.Unix_error (EINTR, _, _) -> ()

(* ---- batch dispatch --------------------------------------------------- *)

let round st =
  if not (Queue.is_empty st.pending) then begin
    (* pop every immediately-answerable task and up to [batch] compute
       jobs, preserving arrival order *)
    let popped = ref [] and jobs = ref 0 in
    let continue = ref true in
    while !continue && not (Queue.is_empty st.pending) do
      match Queue.peek st.pending with
      | Ready _ | Thunk _ -> popped := Queue.pop st.pending :: !popped
      | Compute _ ->
          if !jobs >= st.cfg.batch then continue := false
          else begin
            incr jobs;
            popped := Queue.pop st.pending :: !popped
          end
    done;
    let popped = List.rev !popped in
    let now = Unix.gettimeofday () in
    (* classify: immediate line, timeout, cache hit, or miss *)
    let classified =
      List.map
        (fun task ->
          match task with
          | Ready (c, is_ok, line) -> `Line (c, is_ok, line)
          | Thunk (c, render) -> `Th (c, render)
          | Compute j -> (
              match j.j_deadline with
              | Some d when now >= d ->
                  `Line
                    ( j.j_conn,
                      false,
                      Protocol.error_response ~id:j.j_id
                        ~kind:Protocol.Timeout
                        (Printf.sprintf
                           "request expired before dispatch (%.0f ms in queue)"
                           ((now -. j.j_arrival) *. 1000.)) )
              | _ -> (
                  match Result_cache.find st.cache j.j_key with
                  | Some (ok, payload) -> `Done (j, ok, payload)
                  | None -> `Miss j)))
        popped
    in
    (* dedupe misses inside the batch; compute each distinct key once *)
    let uniq = Hashtbl.create 16 in
    let miss_list = ref [] in
    List.iter
      (fun c ->
        match c with
        | `Miss j when not (Hashtbl.mem uniq j.j_key) ->
            Hashtbl.add uniq j.j_key ();
            miss_list := j :: !miss_list
        | _ -> ())
      classified;
    let misses = Array.of_list (List.rev !miss_list) in
    if Array.length misses > 0 then
      Obs.Histogram.record st.h_batch (float_of_int (Array.length misses));
    let computed =
      Engine.parallel_map
        ~domains:(min st.cfg.domains (max 1 (Array.length misses)))
        ~f:(fun ~domain:_ j -> (j.j_key, j.j_compute ()))
        misses
    in
    let results = Hashtbl.create 16 in
    Array.iter
      (fun (key, outcome) ->
        Result_cache.store st.cache key outcome;
        Hashtbl.replace results key outcome)
      computed;
    (* respond in arrival order *)
    let finish j ok payload =
      let line = Protocol.response_of_payload ~id:j.j_id ~ok payload in
      write_line st j.j_conn ~is_ok:ok line;
      let dur = Unix.gettimeofday () -. j.j_arrival in
      Obs.Histogram.record st.h_request dur;
      if st.cfg.trace_out <> None then
        Obs.Span.emit ~name:("serve." ^ j.j_label) ~t0:j.j_arrival ~dur
    in
    List.iter
      (fun c ->
        match c with
        | `Line (conn, is_ok, line) -> write_line st conn ~is_ok line
        | `Th (conn, render) ->
            let is_ok, line = render () in
            write_line st conn ~is_ok line
        | `Done (j, ok, payload) -> finish j ok payload
        | `Miss j ->
            let ok, payload = Hashtbl.find results j.j_key in
            finish j ok payload)
      classified;
    (* a long-lived daemon must not accumulate spans it will never
       export: without a trace destination, drop them every round *)
    if st.cfg.trace_out = None then Obs.Span.clear ()
  end

(* ---- the serve loop --------------------------------------------------- *)

let conn_referenced st conn =
  let found = ref false in
  Queue.iter
    (fun t ->
      match t with
      | Ready (c, _, _) | Thunk (c, _) -> if c == conn then found := true
      | Compute j -> if j.j_conn == conn then found := true)
    st.pending;
  !found

let close_conn conn =
  if not conn.borrowed then begin
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    if conn.cout != conn.fd then
      try Unix.close conn.cout with Unix.Unix_error _ -> ()
  end

let summary_of st =
  let cs = Result_cache.stats st.cache in
  { requests = st.n_requests;
    ok = st.n_ok;
    errors = st.n_err;
    hits = cs.Result_cache.hits;
    misses = cs.Result_cache.misses;
    evictions = cs.Result_cache.evictions }

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

(* ---- cache persistence ------------------------------------------------ *)

(* Line-delimited JSON, mirroring the wire format: a version header,
   then one {key, ok, payload} object per entry, most-recently-used
   first.  Keys are content fingerprints (machine + options + canonical
   digest), which are stable across processes — hashcons ids are not
   and never appear here (DESIGN.md §14). *)

let cache_header = Json.Obj [ ("ujc-serve-cache", Json.Int 1) ]

let save_cache cache path =
  let oc = open_out path in
  output_string oc (Json.to_string cache_header);
  output_char oc '\n';
  let n =
    Result_cache.fold cache ~init:0 ~f:(fun n key (ok, payload) ->
        output_string oc
          (Json.to_string
             (Json.Obj
                [ ("key", Json.Str key);
                  ("ok", Json.Bool ok);
                  ("payload", payload) ]));
        output_char oc '\n';
        n + 1)
  in
  close_out oc;
  n

let load_cache cache path =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    let loaded = ref 0 in
    (try
       (match Json.of_string (input_line ic) with
       | Ok h when Json.member "ujc-serve-cache" h = Some (Json.Int 1) ->
           (* Collect entries (file is MRU-first), then store oldest
              first so the rebuilt recency order matches the saved
              one; overflow beyond capacity evicts the oldest. *)
           let entries = ref [] in
           (try
              while true do
                match Json.of_string (input_line ic) with
                | Ok j -> (
                    match
                      ( Json.member "key" j,
                        Json.member "ok" j,
                        Json.member "payload" j )
                    with
                    | Some (Json.Str key), Some (Json.Bool ok), Some payload
                      ->
                        entries := (key, ok, payload) :: !entries
                    | _ -> ())
                | Error _ -> ()
              done
            with End_of_file -> ());
           List.iter
             (fun (key, ok, payload) ->
               incr loaded;
               Result_cache.store cache key (ok, payload))
             !entries
       | Ok _ | Error _ -> ())
     with End_of_file -> ());
    close_in ic;
    !loaded
  end

let run ?listen ?stdio ?(stop = Atomic.make false) cfg =
  let stdio = Option.value stdio ~default:(listen = None) in
  if listen = None && not stdio then
    invalid_arg "Serve.run: need a socket path or stdio";
  Obs.enable ();
  let st =
    { cfg;
      cache =
        Result_cache.create ~metrics_prefix:"serve.cache"
          ~capacity:(max 1 cfg.cache_size) ();
      pending = Queue.create ();
      conns = [];
      draining = false;
      stop;
      n_requests = 0;
      n_ok = 0;
      n_err = 0;
      m_requests = Obs.counter "serve.requests";
      m_errors = Obs.counter "serve.errors";
      h_batch = Obs.histogram "serve.batch_size";
      h_request = Obs.histogram "serve.request_s" }
  in
  let loaded =
    match cfg.cache_file with
    | Some path -> load_cache st.cache path
    | None -> 0
  in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let old_int =
    Sys.signal Sys.sigint
      (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let lfd =
    match listen with
    | None -> None
    | Some path ->
        if Sys.file_exists path then Unix.unlink path;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 16;
        Some fd
  in
  if stdio then st.conns <- [ mk_conn ~borrowed:true Unix.stdin Unix.stdout ];
  let running = ref true in
  while !running do
    if Atomic.get stop || st.draining then running := false
    else begin
      let read_fds =
        (match lfd with Some fd -> [ fd ] | None -> [])
        @ List.filter_map
            (fun c ->
              if c.alive && not c.input_done then Some c.fd else None)
            st.conns
      in
      if read_fds = [] && Queue.is_empty st.pending then running := false
      else begin
        let timeout = if Queue.is_empty st.pending then 0.2 else 0. in
        (match Unix.select read_fds [] [] timeout with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | ready, _, _ ->
            (match lfd with
            | Some fd when List.memq fd ready -> (
                match Unix.accept fd with
                | cfd, _ -> st.conns <- st.conns @ [ mk_conn cfd cfd ]
                | exception Unix.Unix_error _ -> ())
            | _ -> ());
            List.iter
              (fun c -> if List.memq c.fd ready then read_chunk st c)
              st.conns);
        round st;
        (* reap connections that are finished on both sides *)
        let dead, live =
          List.partition
            (fun c ->
              (c.input_done || not c.alive) && not (conn_referenced st c))
            st.conns
        in
        List.iter close_conn dead;
        st.conns <- live
      end
    end
  done;
  (* drain: answer everything already queued, then leave *)
  while not (Queue.is_empty st.pending) do
    round st
  done;
  List.iter close_conn st.conns;
  st.conns <- [];
  (match lfd with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Option.iter
        (fun path -> try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
        listen
  | None -> ());
  let saved =
    Option.map (fun path -> save_cache st.cache path) cfg.cache_file
  in
  Option.iter
    (fun path -> write_file path (Json.to_string (metrics_payload st)))
    cfg.metrics_out;
  Option.iter
    (fun path -> write_file path (Json.to_string (Obs.Span.to_chrome ())))
    cfg.trace_out;
  Sys.set_signal Sys.sigpipe old_pipe;
  Sys.set_signal Sys.sigint old_int;
  let s = summary_of st in
  if not cfg.quiet then begin
    Printf.eprintf
      "serve: %d requests, %d ok, %d errors, %d cache hits, %d misses, %d evictions\n"
      s.requests s.ok s.errors s.hits s.misses s.evictions;
    Option.iter
      (fun path ->
        Printf.eprintf "serve: loaded %d cached results from %s\n" loaded path)
      (if loaded > 0 then cfg.cache_file else None);
    Option.iter
      (fun n ->
        Printf.eprintf "serve: persisted %d cached results to %s\n" n
          (Option.get cfg.cache_file))
      saved;
    Option.iter
      (fun path -> Printf.eprintf "serve: wrote metrics to %s\n" path)
      cfg.metrics_out;
    Option.iter
      (fun path -> Printf.eprintf "serve: wrote trace to %s\n" path)
      cfg.trace_out;
    flush stderr
  end;
  s

(* ---- client ----------------------------------------------------------- *)

module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel }

  let connect ?(retries = 100) path =
    let rec go n =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> { fd; ic = Unix.in_channel_of_descr fd }
      | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when n > 0
        ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf 0.01;
          go (n - 1)
    in
    go retries

  let send_line t s =
    let s = s ^ "\n" in
    let n = String.length s in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write_substring t.fd s !off (n - !off)
    done

  let recv_line t = match input_line t.ic with
    | line -> Some line
    | exception End_of_file -> None

  let request t json =
    send_line t (Json.to_string json);
    match recv_line t with
    | None -> failwith "serve client: connection closed"
    | Some line -> (
        match Json.of_string line with
        | Ok j -> j
        | Error e -> failwith ("serve client: bad response: " ^ e))

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

(* ---- smoke ------------------------------------------------------------ *)

type smoke_report = {
  sk_requests : int;
  sk_ok : int;
  sk_expected_errors : int;
  sk_unexpected_errors : int;
  sk_order_violations : int;
  sk_hits : int;
}

let smoke_healthy r =
  r.sk_unexpected_errors = 0 && r.sk_order_violations = 0 && r.sk_hits > 0

let pp_smoke ppf r =
  Format.fprintf ppf
    "serve smoke: %d requests over 2 clients: %d ok, %d expected errors, %d unexpected errors, %d order violations, cache hits %d"
    r.sk_requests r.sk_ok r.sk_expected_errors r.sk_unexpected_errors
    r.sk_order_violations r.sk_hits

(* A deterministic mixed workload: kernel optimizes cycling through the
   catalogue (the second cycle repeats the first — cache fodder), inline
   nests sent twice, explains, lints, pings, and — every tenth request —
   a hostile probe (bad JSON, unknown method, unsupported nest, instant
   timeout, oversized line) that must produce exactly one error
   response and a still-living daemon. *)
let smoke_request kernels i =
  let opt_kernel k =
    `Req
      ( Json.Obj
          [ ("id", Json.Int i);
            ("method", Json.Str "optimize");
            ("params",
             Json.Obj [ ("kernel", Json.Str k); ("n", Json.Int 16) ]) ],
        true )
  in
  if i mod 10 = 7 then
    match i / 10 mod 5 with
    | 0 -> `Raw ("{\"id\":" ^ string_of_int i ^ ", not json", false)
    | 1 ->
        `Req
          ( Json.Obj
              [ ("id", Json.Int i); ("method", Json.Str "frobnicate") ],
            false )
    | 2 ->
        (* non-unit step: parses, then fails the supported-class fence *)
        `Req
          ( Json.Obj
              [ ("id", Json.Int i);
                ("method", Json.Str "optimize");
                ("params",
                 Json.Obj
                   [ ("name", Json.Str "stride2");
                     ("nest",
                      Json.Str "DO I = 1, 8, 2\n A(I) = A(I) + 1.0\nENDDO") ]) ],
            false )
    | 3 ->
        `Req
          ( Json.Obj
              [ ("id", Json.Int i);
                ("method", Json.Str "optimize");
                ("params",
                 Json.Obj
                   [ ("kernel", Json.Str (List.nth kernels 0));
                     ("timeout_ms", Json.Int 0) ]) ],
            false )
    | _ -> `Raw ("{\"pad\":\"" ^ String.make 5000 'x' ^ "\"}", false)
  else if i mod 10 = 3 then
    `Req
      ( Json.Obj
          [ ("id", Json.Int i);
            ("method", Json.Str "lint");
            ("params",
             Json.Obj
               [ ("name", Json.Str "smoke-lint");
                 ("nest",
                  Json.Str "DO I = 1, 16\n A(I) = A(I-1) + B(I)\nENDDO") ]) ],
        true )
  else if i mod 10 = 5 then
    `Req
      ( Json.Obj
          [ ("id", Json.Int i);
            ("method", Json.Str "explain");
            ("params",
             Json.Obj
               [ ("kernel",
                  Json.Str (List.nth kernels (i mod List.length kernels))) ]) ],
        true )
  else if i mod 10 = 9 then
    `Req (Json.Obj [ ("id", Json.Int i); ("method", Json.Str "ping") ], true)
  else opt_kernel (List.nth kernels (i mod List.length kernels))

let smoke ?(requests = 50) ?(domains = 1) () =
  let path = Filename.temp_file "ujam_serve" ".sock" in
  Sys.remove path;
  let cfg =
    { (default_config ()) with
      domains;
      quiet = true;
      max_request_bytes = 4096 }
  in
  let server = Domain.spawn (fun () -> run ~listen:path cfg) in
  let clients = [| Client.connect path; Client.connect path |] in
  let kernels =
    List.filteri (fun i _ -> i < 8) Catalogue.all
    |> List.map (fun e -> e.Catalogue.name)
  in
  let ok = ref 0
  and expected_err = ref 0
  and unexpected_err = ref 0
  and order = ref 0 in
  for i = 0 to requests - 1 do
    let client = clients.(i mod 2) in
    let expect_ok, resp =
      match smoke_request kernels i with
      | `Req (json, expect_ok) -> (expect_ok, Client.request client json)
      | `Raw (line, expect_ok) -> (
          Client.send_line client line;
          match Client.recv_line client with
          | None -> failwith "serve smoke: connection closed"
          | Some l -> (
              ( expect_ok,
                match Json.of_string l with
                | Ok j -> j
                | Error e -> failwith ("serve smoke: bad response: " ^ e) )))
    in
    let got_ok = Json.member "ok" resp = Some (Json.Bool true) in
    (* hostile probes answer with id null; everything else echoes i *)
    (match Json.member "id" resp with
    | Some (Json.Int j) when j = i -> ()
    | Some Json.Null when not expect_ok -> ()
    | _ -> incr order);
    if got_ok then incr ok
    else if expect_ok then incr unexpected_err
    else incr expected_err
  done;
  let metrics =
    Client.request clients.(0)
      (Json.Obj [ ("id", Json.Str "m"); ("method", Json.Str "metrics") ])
  in
  let hits =
    match
      Option.bind (Json.member "result" metrics) (fun r ->
          Option.bind (Json.member "cache" r) (Json.member "hits"))
    with
    | Some (Json.Int n) -> n
    | _ -> 0
  in
  (match
     Client.request clients.(0)
       (Json.Obj [ ("id", Json.Str "bye"); ("method", Json.Str "shutdown") ])
   with
  | _ -> ());
  let (_ : summary) = Domain.join server in
  Array.iter Client.close clients;
  { sk_requests = requests;
    sk_ok = !ok;
    sk_expected_errors = !expected_err;
    sk_unexpected_errors = !unexpected_err;
    sk_order_violations = !order;
    sk_hits = hits }
