(** The serve daemon's wire protocol: line-delimited JSON-RPC.

    One request per line, one response line per request, in request
    order per connection.  A request is an object with an ["id"]
    (echoed verbatim in the response; any JSON value), a ["method"],
    and an optional ["params"] object:

    {v
    {"id":1,"method":"optimize","params":{"kernel":"dmxpy","bound":4}}
    {"id":2,"method":"lint","params":{"nest":"DO I = 1, 8\n A(I)=A(I-1)\nENDDO","name":"rec"}}
    {"id":3,"method":"metrics"}
    v}

    Methods: [optimize], [explain], [lint] (analysis over an inline
    ["nest"] source or a catalogue ["kernel"] with optional ["n"]),
    plus [ping], [metrics] (live registry dump) and [shutdown] (drain
    and stop).  Analysis params mirror the CLI flags: ["machine"]
    (preset name), ["bound"], ["max_loops"], ["model"], ["seq"],
    ["rules"] (lint id filter), ["timeout_ms"], ["name"] (display
    name).  Unset params inherit the daemon's command-line defaults.

    Responses are [{"id":..,"ok":true,"result":..}] or
    [{"id":..,"ok":false,"error":{"kind":..,"message":..}}]; error
    kinds are the {!error_kind} variants, and [parse]/[analysis]
    errors attach located diagnostics in the analyzer's pinned JSON
    shape.  Malformed input yields an error {e response}, never a
    dropped connection: the protocol layer cannot make the daemon
    exit. *)

module Json = Ujam_engine.Json

type method_ = Optimize | Explain | Lint | Metrics | Ping | Shutdown

val method_name : method_ -> string
val method_names : string list

type source = Inline of string | Kernel of string * int option

type request = {
  id : Json.t;  (** echoed; [Null] when the client sent none *)
  meth : method_;
  name : string option;  (** display name for reports/diagnostics *)
  source : source option;
  machine : string option;
  bound : int option;
  max_loops : int option;
  model : string option;
  seq : bool option;
  rules : string list option;
  timeout_ms : int option;
}

type error_kind =
  | Protocol  (** not JSON, not an object, bad or missing envelope *)
  | Oversized  (** request line exceeded the byte bound *)
  | Parse  (** nest source did not parse (located UJ000) *)
  | Analysis  (** the pipeline degraded with a typed stage error *)
  | Timeout  (** deadline passed before the request was dispatched *)

val error_kind_name : error_kind -> string

val request_of_json : Json.t -> (request, string) result
(** Decode an envelope; [Error] messages name the offending field. *)

val ok_response : id:Json.t -> Json.t -> string
(** [{"id":id,"ok":true,"result":payload}] serialised, no newline. *)

val error_response :
  id:Json.t ->
  kind:error_kind ->
  ?diagnostics:Json.t list ->
  string ->
  string
(** [{"id":id,"ok":false,"error":{...}}] serialised, no newline. *)

val error_payload :
  kind:error_kind -> ?diagnostics:Json.t list -> string -> Json.t
(** Just the ["error"] member object, for cacheable error outcomes. *)

val response_of_payload : id:Json.t -> ok:bool -> Json.t -> string
(** Wrap a cached payload (a result on [ok], an error object
    otherwise) back into a response line — the single rendering path
    shared by cache hits and misses, so the two are byte-identical. *)
