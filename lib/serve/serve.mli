(** The long-lived optimization service.

    [run] owns an accept/read/dispatch loop over a Unix-domain listen
    socket and/or stdin, speaking the line-delimited protocol of
    {!Protocol}.  Analysis requests are answered from a bounded
    content-addressed {!Ujam_engine.Result_cache} when possible;
    misses are batched, deduplicated within the batch, and fanned out
    across a Domain worker pool ({!Ujam_engine.Engine.parallel_map}),
    with responses always written in request order per connection.
    The cache is touched only by the dispatch thread — worker domains
    evaluate pure closures — so no lock guards it.

    Robustness contract: a malformed line, an unparsable or
    unsupported nest, an oversized request, or a client that
    disconnects mid-stream each cost exactly one error response (or
    one closed connection) and nothing else; the loop never exits on
    request input.  It exits on SIGINT, a [shutdown] request, or
    end-of-input in stdio mode — in every case draining already-queued
    work, flushing a final metrics report to [metrics_out], and
    appending a one-line summary to stderr (suppressed by [quiet]).

    Live observability: the loop enables {!Ujam_obs.Obs} and maintains
    [serve.requests], [serve.errors], [serve.cache.{hits,misses,evictions}]
    counters and [serve.batch_size] / [serve.request_s] histograms — a
    [metrics] request dumps the registry plus cache occupancy.
    Per-request spans (and the engine's stage spans) are retained for
    a Chrome-trace dump only when [trace_out] is set; otherwise spans
    are discarded per batch so a long-lived daemon's memory stays
    bounded. *)

module Json = Ujam_engine.Json

type config = {
  machine : Ujam_machine.Machine.t;
  bound : int;
  max_loops : int;
  model : (module Ujam_engine.Model.MODEL);
  seq : bool;
  domains : int;  (** worker domains for cache-miss batches *)
  cache_size : int;  (** LRU capacity, entries *)
  cache_file : string option;
      (** when set, the result cache is reloaded from this path at
          startup and persisted back (most-recently-used first, keys
          are machine+options+canonical-digest fingerprints — never
          hashcons ids) after the drain, so warm-cache performance
          survives restarts; a missing or unreadable file starts
          cold *)
  batch : int;  (** max cache-miss jobs dispatched per round *)
  timeout_ms : int;
      (** default request deadline, measured from arrival to dispatch;
          [< 0] disables, [0] expires immediately (a typed-timeout
          probe); per-request [timeout_ms] overrides *)
  max_request_bytes : int;  (** longest accepted request line *)
  metrics_out : string option;  (** final registry dump destination *)
  trace_out : string option;  (** Chrome trace destination *)
  quiet : bool;
}

val default_config : ?machine:Ujam_machine.Machine.t -> unit -> config
(** alpha machine, bound 4, max_loops 2, ugs model, seq off, 1 domain,
    cache 1024 (not persisted), batch 32, timeout 30000 ms, 1 MiB
    lines, no dumps. *)

val machine_of_name : string -> Ujam_machine.Machine.t option
(** Preset lookup for the request ["machine"] field:
    ["alpha"], ["hppa"], ["generic"]. *)

type summary = {
  requests : int;  (** request lines consumed, well-formed or not *)
  ok : int;  (** [ok:true] responses written *)
  errors : int;  (** [ok:false] responses written *)
  hits : int;
  misses : int;
  evictions : int;
}

val run :
  ?listen:string -> ?stdio:bool -> ?stop:bool Atomic.t -> config -> summary
(** Serve until shutdown.  [listen] binds (and on exit unlinks) a Unix
    socket path; [stdio] (default: true iff [listen] is absent) also
    reads requests from stdin and answers on stdout.  [stop] is an
    external kill switch sharing the SIGINT path — tests flip it from
    another domain.  @raise Invalid_argument when given neither
    transport. *)

(** A minimal blocking client for tests, the bench load generator and
    the smoke driver: one request line out, one response line back. *)
module Client : sig
  type t

  val connect : ?retries:int -> string -> t
  (** Connect to a serve socket, retrying (100 x 10ms by default)
      while the daemon is still binding. *)

  val send_line : t -> string -> unit
  val recv_line : t -> string option

  val request : t -> Json.t -> Json.t
  (** [send_line] + [recv_line] + parse.
      @raise Failure on EOF or a response that is not JSON. *)

  val close : t -> unit
end

type smoke_report = {
  sk_requests : int;
  sk_ok : int;
  sk_expected_errors : int;  (** probes that must answer [ok:false] *)
  sk_unexpected_errors : int;
  sk_order_violations : int;  (** responses out of per-client order *)
  sk_hits : int;
}

val smoke : ?requests:int -> ?domains:int -> unit -> smoke_report
(** Self-contained smoke drive: start a daemon on a fresh temp socket
    (in its own Domain), replay a deterministic mixed workload —
    kernel and inline optimizes with repeats, explain, lint, pings,
    metrics, plus malformed/unsupported/oversized/timeout probes —
    over two interleaved client connections, shut the daemon down, and
    report.  Healthy iff [sk_unexpected_errors = 0],
    [sk_order_violations = 0] and [sk_hits > 0]. *)

val smoke_healthy : smoke_report -> bool
val pp_smoke : Format.formatter -> smoke_report -> unit
