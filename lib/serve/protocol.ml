module Json = Ujam_engine.Json

type method_ = Optimize | Explain | Lint | Metrics | Ping | Shutdown

let method_name = function
  | Optimize -> "optimize"
  | Explain -> "explain"
  | Lint -> "lint"
  | Metrics -> "metrics"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

let methods =
  [ Optimize; Explain; Lint; Metrics; Ping; Shutdown ]

let method_names = List.map method_name methods

let method_of_name s =
  List.find_opt (fun m -> String.equal (method_name m) s) methods

type source = Inline of string | Kernel of string * int option

type request = {
  id : Json.t;
  meth : method_;
  name : string option;
  source : source option;
  machine : string option;
  bound : int option;
  max_loops : int option;
  model : string option;
  seq : bool option;
  rules : string list option;
  timeout_ms : int option;
}

type error_kind = Protocol | Oversized | Parse | Analysis | Timeout

let error_kind_name = function
  | Protocol -> "protocol"
  | Oversized -> "oversized"
  | Parse -> "parse"
  | Analysis -> "analysis"
  | Timeout -> "timeout"

(* ---- decoding -------------------------------------------------------- *)

let ( let* ) = Result.bind

let str_field name params =
  match Json.member name params with
  | None | Some Json.Null -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "params.%s must be a string" name)

let int_field name params =
  match Json.member name params with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "params.%s must be an integer" name)

let bool_field name params =
  match Json.member name params with
  | None | Some Json.Null -> Ok None
  | Some (Json.Bool b) -> Ok (Some b)
  | Some _ -> Error (Printf.sprintf "params.%s must be a boolean" name)

let str_list_field name params =
  match Json.member name params with
  | None | Some Json.Null -> Ok None
  | Some (Json.List items) ->
      let* strs =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | Json.Str s -> Ok (s :: acc)
            | _ -> Error (Printf.sprintf "params.%s must list strings" name))
          (Ok []) items
      in
      Ok (Some (List.rev strs))
  | Some _ -> Error (Printf.sprintf "params.%s must be a list" name)

let request_of_json json =
  match json with
  | Json.Obj _ ->
      let id = Option.value (Json.member "id" json) ~default:Json.Null in
      let* meth =
        match Json.member "method" json with
        | Some (Json.Str s) -> (
            match method_of_name s with
            | Some m -> Ok m
            | None ->
                Error
                  (Printf.sprintf "unknown method %S (known: %s)" s
                     (String.concat ", " method_names)))
        | Some _ -> Error "method must be a string"
        | None ->
            Error
              (Printf.sprintf "missing method (known: %s)"
                 (String.concat ", " method_names))
      in
      let params =
        Option.value (Json.member "params" json) ~default:(Json.Obj [])
      in
      let* () =
        match params with
        | Json.Obj _ -> Ok ()
        | _ -> Error "params must be an object"
      in
      let* nest = str_field "nest" params in
      let* kernel = str_field "kernel" params in
      let* n = int_field "n" params in
      let* source =
        match (nest, kernel) with
        | Some _, Some _ -> Error "params has both nest and kernel"
        | Some src, None -> Ok (Some (Inline src))
        | None, Some k -> Ok (Some (Kernel (k, n)))
        | None, None -> Ok None
      in
      let* name = str_field "name" params in
      let* machine = str_field "machine" params in
      let* bound = int_field "bound" params in
      let* max_loops = int_field "max_loops" params in
      let* model = str_field "model" params in
      let* seq = bool_field "seq" params in
      let* rules = str_list_field "rules" params in
      let* timeout_ms = int_field "timeout_ms" params in
      Ok
        { id; meth; name; source; machine; bound; max_loops; model; seq;
          rules; timeout_ms }
  | _ -> Error "request must be a JSON object"

(* ---- encoding -------------------------------------------------------- *)

let response_of_payload ~id ~ok payload =
  Json.to_string
    (Json.Obj
       [ ("id", id);
         ("ok", Json.Bool ok);
         ((if ok then "result" else "error"), payload) ])

let ok_response ~id payload = response_of_payload ~id ~ok:true payload

let error_payload ~kind ?(diagnostics = []) message =
  Json.Obj
    ([ ("kind", Json.Str (error_kind_name kind));
       ("message", Json.Str message) ]
    @
    if diagnostics = [] then []
    else [ ("diagnostics", Json.List diagnostics) ])

let error_response ~id ~kind ?diagnostics message =
  response_of_payload ~id ~ok:false (error_payload ~kind ?diagnostics message)
