type t = int array

let make a = Array.copy a
let of_list = Array.of_list
let init = Array.init
let zero n = Array.make n 0
let unit n i = Array.init n (fun j -> if j = i then 1 else 0)

let dim = Array.length
let get = Array.get
let to_array = Array.copy
let to_list = Array.to_list

let set t i v =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.map2: dimension";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let map = Array.map
let add = map2 ( + )
let sub = map2 ( - )
let neg = map (fun x -> -x)
let scale k = map (fun x -> k * x)

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.dot: dimension";
  let s = ref 0 in
  for i = 0 to Array.length a - 1 do
    s := !s + (a.(i) * b.(i))
  done;
  !s

let exists = Array.exists
let for_all = Array.for_all
let fold = Array.fold_left

let is_zero = for_all (fun x -> x = 0)
let equal a b =
  a == b || (Array.length a = Array.length b && Array.for_all2 ( = ) a b)

let compare a b =
  let c = Stdlib.compare (Array.length a) (Array.length b) in
  if c <> 0 then c else Stdlib.compare a b

let compare_pointwise a b =
  if Array.length a <> Array.length b then None
  else begin
    let le = ref true and ge = ref true in
    for i = 0 to Array.length a - 1 do
      if a.(i) < b.(i) then ge := false;
      if a.(i) > b.(i) then le := false
    done;
    match (!le, !ge) with
    | true, true -> Some 0
    | true, false -> Some (-1)
    | false, true -> Some 1
    | false, false -> None
  end

let leq_pointwise a b =
  Array.length a = Array.length b && Array.for_all2 ( <= ) a b

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
