(** Seeded synthetic routine generator for the Table 1 corpus.

    The paper measured 1187 SPEC92 / Perfect / NAS / local routines; the
    originals are not redistributable, so this generator emits loop nests
    whose reference-pattern mix follows array-heavy scientific Fortran:
    stencils with small constant offsets, reductions over lower-dimension
    arrays, dense linear-algebra accesses (transposed and coefficient-2
    subscripts included), loop-invariant references, and a share of
    routines with no array reuse at all (the paper, too, found 538 of its
    1187 routines dependence-free).  Everything is driven by a seed, so
    the corpus is reproducible. *)

type routine = { name : string; nests : Ujam_ir.Nest.t list }

type stats = {
  mutable generated : int;
  mutable rejected : int;
  mutable fenced : int;
}
(** Draw counters: [generated] counts every nest drawn, [rejected] the
    draws outside {!Ujam_ir.Supported}'s modelled class that were
    re-rolled, and [fenced] the emitted recurrent-mode nests whose
    safety cap binds at a non-innermost level (i.e. the nests a plain
    unroll search degrades to the zero vector).  Every nest the
    generator actually emits passes [Supported.check]; the counters
    exist so fuzz harnesses can report the wasted-draw and
    fence-binding rates. *)

val stats : unit -> stats
val rejection_rate : stats -> float

val routine :
  ?deep:bool -> ?recurrent:bool -> ?stats:stats -> Random.State.t -> int ->
  routine
(** [routine st idx] generates one routine.  Emitted nests are always
    inside the supported class; out-of-class draws are re-rolled and
    counted in [stats].  [deep] (default false) widens the depth
    distribution to include 4-deep nests — the oracle's deep-space
    mode.  [recurrent] (default false) swaps the archetype mix for
    nests with loop-carried anti-diagonal or cross-statement
    recurrences that fence the unroll search — fodder for the
    skew/retime sequence legalizer; [stats.fenced] counts how many
    actually bind.  Leaving both off preserves the exact draw sequence
    the pinned corpora depend on. *)

val corpus :
  ?seed:int -> ?recurrent:bool -> ?stats:stats -> count:int -> unit ->
  routine list
(** [count] routines from the given [seed] (default 1997). *)
