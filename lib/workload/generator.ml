open Ujam_ir

type routine = { name : string; nests : Nest.t list }

type stats = {
  mutable generated : int;
  mutable rejected : int;
  mutable fenced : int;
}

let stats () = { generated = 0; rejected = 0; fenced = 0 }

let rejection_rate s =
  if s.generated = 0 then 0.0
  else float_of_int s.rejected /. float_of_int s.generated

let array_names = [| "A"; "B"; "C"; "D"; "E"; "F"; "G"; "W" |]
let loop_names = [| "I"; "J"; "K"; "L" |]

let pick st a = a.(Random.State.int st (Array.length a))

(* Weighted choice: [(weight, value); ...]. *)
let weighted st choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  let r = Random.State.int st total in
  let rec go acc = function
    | [] -> assert false
    | (w, v) :: rest -> if r < acc + w then v else go (acc + w) rest
  in
  go 0 choices

(* A subscript for one array dimension: usually a loop index plus a small
   stencil offset, sometimes doubled (multigrid), sometimes constant. *)
let subscript st ~depth ~level ~stencil =
  let base = Affine.var ~depth level in
  let base =
    if Random.State.int st 100 < 6 then Affine.scale 2 base else base
  in
  let offset =
    if stencil then weighted st [ (3, 0); (2, 1); (2, -1); (1, 2); (1, -2) ]
    else 0
  in
  Affine.add_const base offset

let constant_subscript st ~depth = Affine.const ~depth (1 + Random.State.int st 4)

(* One reference to [arr] of rank [rank] in a depth-[d] nest.  [levels]
   maps array dimensions to loop levels (injective). *)
let reference st ~depth ~levels ~stencil arr rank =
  let subs =
    List.init rank (fun dim ->
        match levels.(dim) with
        | Some level -> subscript st ~depth ~level ~stencil
        | None -> constant_subscript st ~depth)
  in
  Aref.make arr subs

let gen_nest st ~idx ~depth ~reuse_heavy =
  let bound = 8 + Random.State.int st 56 in
  let loops =
    List.init depth (fun level ->
        Loop.make_const ~var:loop_names.(level) ~level ~depth ~lo:1 ~hi:bound ())
  in
  let n_arrays = 1 + Random.State.int st 4 in
  let arrays =
    List.init n_arrays (fun i ->
        let name = array_names.((idx + i) mod Array.length array_names) in
        let rank = 1 + Random.State.int st (min depth 3) in
        (* Injective map from array dims to loop levels; missing dims are
           constants, unused levels make the reference loop-invariant in
           those loops (reduction shape). *)
        let perm = Array.init depth Fun.id in
        for k = depth - 1 downto 1 do
          let j = Random.State.int st (k + 1) in
          let t = perm.(k) in
          perm.(k) <- perm.(j);
          perm.(j) <- t
        done;
        let levels =
          Array.init rank (fun dim ->
              if dim < depth && Random.State.int st 100 < 92 then Some perm.(dim)
              else None)
        in
        (name, rank, levels))
    |> List.sort_uniq compare
  in
  let arrays = Array.of_list arrays in
  let n_stmts = 1 + Random.State.int st 3 in
  let body =
    List.init n_stmts (fun _ ->
        let lhs_name, lhs_rank, lhs_levels = pick st arrays in
        let lhs = reference st ~depth ~levels:lhs_levels ~stencil:false lhs_name lhs_rank in
        let n_reads = 1 + Random.State.int st 4 in
        let reads =
          List.init n_reads (fun _ ->
              let name, rank, levels = pick st arrays in
              let stencil = reuse_heavy && Random.State.int st 100 < 70 in
              Expr.Read (reference st ~depth ~levels ~stencil name rank))
        in
        let reads =
          (* Reductions read their own target. *)
          if reuse_heavy && Random.State.int st 100 < 40 then
            Expr.Read lhs :: reads
          else reads
        in
        let rhs =
          List.fold_left
            (fun acc r ->
              let op = weighted st [ (5, Expr.Add); (2, Expr.Sub); (4, Expr.Mul) ] in
              Expr.Bin (op, acc, r))
            (List.hd reads) (List.tl reads)
        in
        Stmt.store lhs rhs)
  in
  Nest.make ~name:(Printf.sprintf "nest%d" idx) ~loops ~body

(* Routine archetypes, mixed to follow the paper's corpus shape:
   roughly 45% of routines have no array dependences at all (they are
   excluded from the per-routine statistics, as in the paper); a sizeable
   group of stencil-style routines is dominated by input dependences
   (the 90-100% bucket); recurrence-style routines have dependences but
   no input ones (the 0% bucket); the rest mix reductions and reuse. *)

let distinct_arrays st ~count ~offset =
  let n = Array.length array_names in
  let start = Random.State.int st n in
  List.init count (fun i -> array_names.((start + offset + i) mod n))

(* Every array referenced exactly once: no dependences. *)
let streaming_nest st ~idx ~depth =
  let bound = 8 + Random.State.int st 56 in
  let loops =
    List.init depth (fun level ->
        Loop.make_const ~var:loop_names.(level) ~level ~depth ~lo:1 ~hi:bound ())
  in
  let n_reads = 1 + Random.State.int st 3 in
  let names = distinct_arrays st ~count:(n_reads + 1) ~offset:idx in
  let lhs_name = List.hd names and read_names = List.tl names in
  let ident name =
    Aref.make name (List.init depth (fun k -> Affine.var ~depth k))
  in
  let reads = List.map (fun nm -> Expr.Read (ident nm)) read_names in
  let rhs =
    List.fold_left (fun acc r -> Expr.Bin (Expr.Add, acc, r)) (List.hd reads)
      (List.tl reads)
  in
  Nest.make ~name:(Printf.sprintf "nest%d" idx) ~loops
    ~body:[ Stmt.store (ident lhs_name) rhs ]

(* One array updated from a shifted copy of itself: flow/anti/output
   dependences but no input dependences. *)
let recurrence_nest st ~idx ~depth =
  let bound = 8 + Random.State.int st 56 in
  let loops =
    List.init depth (fun level ->
        Loop.make_const ~var:loop_names.(level) ~level ~depth ~lo:3 ~hi:bound ())
  in
  let name = List.hd (distinct_arrays st ~count:1 ~offset:idx) in
  let lhs = Aref.make name (List.init depth (fun k -> Affine.var ~depth k)) in
  let shift = 1 + Random.State.int st 2 in
  let level = Random.State.int st depth in
  let shifted =
    Aref.make name
      (List.init depth (fun k ->
           let v = Affine.var ~depth k in
           if k = level then Affine.add_const v (-shift) else v))
  in
  Nest.make ~name:(Printf.sprintf "nest%d" idx) ~loops
    ~body:[ Stmt.store lhs (Expr.Bin (Expr.Mul, Expr.Read shifted, Expr.Scalar "S")) ]

(* Recurrence plus one repeated read pair: a few flow/anti/output edges
   and a single input edge — the low-input-share buckets. *)
let light_reuse_nest st ~idx ~depth =
  let bound = 8 + Random.State.int st 56 in
  let loops =
    List.init depth (fun level ->
        Loop.make_const ~var:loop_names.(level) ~level ~depth ~lo:3 ~hi:bound ())
  in
  let names = distinct_arrays st ~count:2 ~offset:idx in
  let a, b = (List.nth names 0, List.nth names 1) in
  let point offsets name =
    Aref.make name
      (List.init depth (fun k ->
           Affine.add_const (Affine.var ~depth k) offsets.(k)))
  in
  let z = Array.make depth 0 in
  let back = Array.make depth 0 in
  back.(Random.State.int st depth) <- -1 - Random.State.int st 2;
  let b_read () = Expr.Read (point z b) in
  Nest.make ~name:(Printf.sprintf "nest%d" idx) ~loops
    ~body:
      [ Stmt.store (point z a)
          (Expr.Bin (Expr.Add, Expr.Read (point back a), b_read ()));
        Stmt.store (point back b) (Expr.Bin (Expr.Mul, b_read (), Expr.Scalar "S")) ]

(* Many stencil reads of one or two arrays: input dependences dominate
   (every pair of reads of the same array is an input edge).  With
   [self_update] the target array is also read and carried, adding
   flow/anti/output edges that pull the share below 90%. *)
let stencil_nest st ~self_update ~idx ~depth =
  let bound = 8 + Random.State.int st 56 in
  let loops =
    List.init depth (fun level ->
        Loop.make_const ~var:loop_names.(level) ~level ~depth ~lo:3 ~hi:bound ())
  in
  let names = distinct_arrays st ~count:3 ~offset:idx in
  let lhs_name, read_names =
    match names with
    | lhs :: rest -> (lhs, rest)
    | [] -> assert false
  in
  let point offsets name =
    Aref.make name
      (List.init depth (fun k ->
           Affine.add_const (Affine.var ~depth k) offsets.(k)))
  in
  let n_stmts = 1 + Random.State.int st 3 in
  let body =
    List.init n_stmts (fun si ->
        let n_reads = 4 + Random.State.int st 6 in
        let reads =
          List.init n_reads (fun _ ->
              let name =
                List.nth read_names (Random.State.int st (List.length read_names))
              in
              let offsets =
                Array.init depth (fun _ ->
                    weighted st [ (3, 0); (2, 1); (2, -1); (1, 2); (1, -2) ])
          in
              Expr.Read (point offsets name))
        in
        let lhs = point (Array.make depth (-si)) lhs_name in
        let reads =
          if self_update then
            let back = Array.init depth (fun _ -> -1 - Random.State.int st 1) in
            Expr.Read lhs :: Expr.Read (point back lhs_name) :: reads
          else reads
        in
        let rhs =
          List.fold_left
            (fun acc r -> Expr.Bin (Expr.Add, acc, r))
            (List.hd reads) (List.tl reads)
        in
        Stmt.store lhs rhs)
  in
  Nest.make ~name:(Printf.sprintf "nest%d" idx) ~loops ~body

(* ---- recurrent mode --------------------------------------------------- *)

(* Nests whose loop-carried recurrence fences the unroll search: the
   safety cap ({!Ujam_depend.Safety.max_safe_unroll}) drives a
   non-innermost component to zero, so a plain unroll search degrades
   them to the zero vector unless a skew or retime prefix straightens
   the offending distance first — fuzz fodder for the sequence
   legalizer. *)

(* Self-recurrence with an anti-diagonal distance: the target array is
   read back at [(.., I_l - 1, .., I_k + t, ..)], giving distance
   [(.., 1, .., -t, ..)] whose negative suffix caps level [l] at zero
   extra copies; a factor-[t] elementary skew of [I_k] by [I_l]
   straightens it ([t <= Supported.max_coefficient]). *)
let antidiagonal_nest st ~idx ~depth =
  let depth = max 2 depth in
  let bound = 8 + Random.State.int st 24 in
  let loops =
    List.init depth (fun level ->
        Loop.make_const ~var:loop_names.(level) ~level ~depth ~lo:3 ~hi:bound ())
  in
  let name = List.hd (distinct_arrays st ~count:1 ~offset:idx) in
  let l = Random.State.int st (depth - 1) in
  let k = l + 1 + Random.State.int st (depth - 1 - l) in
  let t = 1 + Random.State.int st 2 in
  let lhs = Aref.make name (List.init depth (fun j -> Affine.var ~depth j)) in
  let read =
    Aref.make name
      (List.init depth (fun j ->
           let v = Affine.var ~depth j in
           if j = l then Affine.add_const v (-1)
           else if j = k then Affine.add_const v t
           else v))
  in
  Nest.make ~name:(Printf.sprintf "nest%d" idx) ~loops
    ~body:
      [ Stmt.store lhs (Expr.Bin (Expr.Mul, Expr.Read read, Expr.Scalar "S")) ]

(* Cross-statement recurrence: statement 0 reads what statement 1 wrote
   [(.., 1, .., -t, ..)] iterations earlier.  The carrying edge joins
   two different statements, so retiming statement 0 by [t] steps of
   loop [k] straightens it without touching the iteration space. *)
let cross_recurrence_nest st ~idx ~depth =
  let depth = max 2 depth in
  let bound = 8 + Random.State.int st 24 in
  let loops =
    List.init depth (fun level ->
        Loop.make_const ~var:loop_names.(level) ~level ~depth ~lo:3 ~hi:bound ())
  in
  let names = distinct_arrays st ~count:3 ~offset:idx in
  let a = List.nth names 0 and b = List.nth names 1 and c = List.nth names 2 in
  let l = Random.State.int st (depth - 1) in
  let k = l + 1 + Random.State.int st (depth - 1 - l) in
  let t = 1 + Random.State.int st 2 in
  let ident name = Aref.make name (List.init depth (fun j -> Affine.var ~depth j)) in
  let shifted name =
    Aref.make name
      (List.init depth (fun j ->
           let v = Affine.var ~depth j in
           if j = l then Affine.add_const v (-1)
           else if j = k then Affine.add_const v t
           else v))
  in
  Nest.make ~name:(Printf.sprintf "nest%d" idx) ~loops
    ~body:
      [ Stmt.store (ident a)
          (Expr.Bin (Expr.Add, Expr.Read (shifted b), Expr.Read (ident c)));
        Stmt.store (ident b)
          (Expr.Bin (Expr.Mul, Expr.Read (ident c), Expr.Scalar "S")) ]

(* Does the safety cap bind at some non-innermost level?  Such a nest is
   what the recurrent mode promises to deliver: a plain unroll search
   cannot move past the zero vector there. *)
let fence_binds nest =
  let graph = Ujam_depend.Graph.build ~include_input:false nest in
  let caps = Ujam_depend.Safety.max_safe_unroll graph in
  let d = Array.length caps in
  let binds = ref false in
  for kk = 0 to d - 2 do
    if caps.(kk) = 0 then binds := true
  done;
  d >= 2 && !binds

(* Every emitted nest must sit inside the modelled subscript class
   ({!Ujam_ir.Supported}) so downstream consumers — the engine, and
   especially the fuzzing oracle — never burn throughput on known-
   unsupported shapes.  The archetypes above only produce unit steps and
   coefficients <= 2, so a draw is re-rolled (and counted) only if an
   archetype ever grows an out-of-class shape; the supported path
   consumes no extra randomness, keeping pinned corpora stable. *)
let supported_nest ?stats st ~idx gen =
  let rec attempt tries =
    let nest = gen () in
    Option.iter (fun s -> s.generated <- s.generated + 1) stats;
    match Supported.check nest with
    | Ok () -> nest
    | Error _ when tries < 16 ->
        Option.iter (fun s -> s.rejected <- s.rejected + 1) stats;
        attempt (tries + 1)
    | Error _ ->
        Option.iter (fun s -> s.rejected <- s.rejected + 1) stats;
        (* deterministic in-class fallback *)
        streaming_nest st ~idx ~depth:1
  in
  attempt 0

let routine ?(deep = false) ?(recurrent = false) ?stats st idx =
  (* [deep] widens the depth distribution to 4-deep nests for the
     oracle's deep-space mode; [recurrent] swaps the archetype mix for
     fence-binding recurrences.  Both default off and the off path is
     the original draw sequence verbatim (pinned corpora depend on
     it). *)
  let depth =
    if deep then weighted st [ (12, 1); (36, 2); (32, 3); (20, 4) ]
    else weighted st [ (20, 1); (52, 2); (28, 3) ]
  in
  let kind =
    if recurrent then
      weighted st [ (60, `Antidiagonal); (40, `Cross_recurrence) ]
    else
      weighted st
        [ (44, `Streaming); (5, `Recurrence); (9, `Light); (15, `Stencil);
          (10, `Stencil_update); (17, `Mixed) ]
  in
  let n_nests = 1 + Random.State.int st 2 in
  let nests =
    List.init n_nests (fun k ->
        let idx = (idx * 3) + k in
        let nest =
          supported_nest ?stats st ~idx (fun () ->
              match kind with
              | `Streaming -> streaming_nest st ~idx ~depth
              | `Recurrence -> recurrence_nest st ~idx ~depth:(max 1 depth)
              | `Light -> light_reuse_nest st ~idx ~depth:(max 1 depth)
              | `Stencil ->
                  stencil_nest st ~self_update:false ~idx ~depth:(max 2 depth)
              | `Stencil_update ->
                  stencil_nest st ~self_update:true ~idx ~depth:(max 2 depth)
              | `Mixed -> gen_nest st ~idx ~depth ~reuse_heavy:true
              | `Antidiagonal -> antidiagonal_nest st ~idx ~depth
              | `Cross_recurrence -> cross_recurrence_nest st ~idx ~depth)
        in
        (match stats with
        | Some s when recurrent && fence_binds nest ->
            s.fenced <- s.fenced + 1
        | _ -> ());
        nest)
  in
  { name = Printf.sprintf "routine%04d" idx; nests }

let corpus ?(seed = 1997) ?recurrent ?stats ~count () =
  let st = Random.State.make [| seed |] in
  List.init count (fun idx -> routine ?recurrent ?stats st idx)
