(** Minimal JSON representation shared by the whole system.

    Construction and compact serialisation for machine-readable output
    (the CLI pins its formats with cram tests, so stability matters
    more than features), plus a small reader so the bench compare gate
    and the trace validator can load files the emitter wrote.
    Non-finite floats render as [null] (JSON has no [Infinity]
    literal). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse standard JSON.  Numbers with a fraction or exponent become
    [Float], others [Int]; [\uXXXX] escapes decode to UTF-8. *)

val member : string -> t -> t option
(** [member k (Obj fields)] looks up key [k]; [None] on other shapes. *)

val to_float_opt : t -> float option
(** Numeric coercion: [Float] as-is, [Int] widened, otherwise [None]. *)
