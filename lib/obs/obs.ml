(* Lock-free, Domain-safe metrics registry + lightweight span tracing.

   The hot paths are a single [Atomic.get] when the sink is the default
   no-op, and plain atomic read-modify-writes when the memory sink is
   enabled: counters use [fetch_and_add], histograms bump one atomic
   bucket, spans push onto an atomic list with a CAS loop.  The only
   mutex in the module guards metric *registration* (rare, cold). *)

(* ------------------------------------------------------------------ *)
(* The sink.  [Noop] (the default) makes every record a no-op behind
   one atomic flag read; [Memory] accumulates in-process. *)

type sink = Noop | Memory

let memory_sink = Atomic.make false
let epoch = Atomic.make 0.0

let enabled () = Atomic.get memory_sink

let sink () = if enabled () then Memory else Noop

let now () = Unix.gettimeofday ()

let set_sink = function
  | Memory ->
      if not (enabled ()) then begin
        Atomic.set epoch (now ());
        Atomic.set memory_sink true
      end
  | Noop -> Atomic.set memory_sink false

let enable () = set_sink Memory
let disable () = set_sink Noop

(* ------------------------------------------------------------------ *)
(* Counters: named monotonic integers. *)

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let create name = { name; v = Atomic.make 0 }
  let add t n = if enabled () then ignore (Atomic.fetch_and_add t.v n)
  let incr t = add t 1
  let value t = Atomic.get t.v
  let name t = t.name
  let reset t = Atomic.set t.v 0
end

(* ------------------------------------------------------------------ *)
(* Gauges: last-written float (queue depths, occupancy). *)

module Gauge = struct
  type t = { name : string; v : float Atomic.t }

  let create name = { name; v = Atomic.make 0.0 }
  let set t x = if enabled () then Atomic.set t.v x
  let value t = Atomic.get t.v
  let name t = t.name
  let reset t = Atomic.set t.v 0.0
end

(* ------------------------------------------------------------------ *)
(* Histograms: log-scale buckets over (0, +inf), tuned for latencies in
   seconds (1 ns .. 1000 s).  Every recorded fact is an integer bucket
   count or a CAS min/max, so summaries are exactly order-independent
   and merges are exactly associative — the property suite pins both.
   The mean is derived from bucket representatives (no float
   accumulation races in the hot path). *)

module Histogram = struct
  let buckets_per_decade = 8
  let lo_decade = -9 (* 1e-9 s *)
  let hi_decade = 3 (* 1e3 s *)
  let nbuckets = ((hi_decade - lo_decade) * buckets_per_decade) + 1

  type t = {
    name : string;
    buckets : int Atomic.t array;
    min_v : float Atomic.t;
    max_v : float Atomic.t;
  }

  let create name =
    { name;
      buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
      min_v = Atomic.make infinity;
      max_v = Atomic.make neg_infinity }

  let name t = t.name

  let bucket_of v =
    if not (Float.is_finite v) || v <= 0.0 then 0
    else
      let i =
        int_of_float
          (Float.round
             ((Float.log10 v -. float_of_int lo_decade)
             *. float_of_int buckets_per_decade))
      in
      if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

  let bucket_value i =
    Float.pow 10.0
      (float_of_int lo_decade
      +. (float_of_int i /. float_of_int buckets_per_decade))

  let rec cas_min a x =
    let old = Atomic.get a in
    if x < old && not (Atomic.compare_and_set a old x) then cas_min a x

  let rec cas_max a x =
    let old = Atomic.get a in
    if x > old && not (Atomic.compare_and_set a old x) then cas_max a x

  let record t v =
    if enabled () then begin
      ignore (Atomic.fetch_and_add t.buckets.(bucket_of v) 1);
      cas_min t.min_v v;
      cas_max t.max_v v
    end

  type summary = {
    count : int;
    min : float;
    max : float;
    mean : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  let summary t =
    let counts = Array.map Atomic.get t.buckets in
    let count = Array.fold_left ( + ) 0 counts in
    if count = 0 then
      { count = 0; min = 0.0; max = 0.0; mean = 0.0; p50 = 0.0; p95 = 0.0;
        p99 = 0.0 }
    else begin
      let weighted = ref 0.0 in
      Array.iteri
        (fun i c ->
          if c > 0 then
            weighted := !weighted +. (float_of_int c *. bucket_value i))
        counts;
      let quantile q =
        (* the representative value of the bucket holding the q-th
           sample; exact given the bucket resolution, and a pure
           function of the counts (so merge order can't change it) *)
        let rank =
          let r = int_of_float (Float.of_int count *. q) in
          if r >= count then count - 1 else r
        in
        let rec find i acc =
          if i >= nbuckets then bucket_value (nbuckets - 1)
          else
            let acc = acc + counts.(i) in
            if acc > rank then bucket_value i else find (i + 1) acc
        in
        find 0 0
      in
      { count;
        min = Atomic.get t.min_v;
        max = Atomic.get t.max_v;
        mean = !weighted /. float_of_int count;
        p50 = quantile 0.50;
        p95 = quantile 0.95;
        p99 = quantile 0.99 }
    end

  let merge a b =
    let m = create a.name in
    Array.iteri
      (fun i c ->
        Atomic.set m.buckets.(i) (Atomic.get c + Atomic.get b.buckets.(i)))
      a.buckets;
    Atomic.set m.min_v (Float.min (Atomic.get a.min_v) (Atomic.get b.min_v));
    Atomic.set m.max_v (Float.max (Atomic.get a.max_v) (Atomic.get b.max_v));
    m

  let reset t =
    Array.iter (fun b -> Atomic.set b 0) t.buckets;
    Atomic.set t.min_v infinity;
    Atomic.set t.max_v neg_infinity

  let summary_to_json s =
    Json.Obj
      [ ("count", Json.Int s.count);
        ("min", Json.Float s.min);
        ("max", Json.Float s.max);
        ("mean", Json.Float s.mean);
        ("p50", Json.Float s.p50);
        ("p95", Json.Float s.p95);
        ("p99", Json.Float s.p99) ]
end

(* ------------------------------------------------------------------ *)
(* The registry: find-or-create by name so module-level metric handles
   in different libraries share state; registration is mutex-guarded
   (cold path only — the handles themselves are lock-free). *)

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

let registry : metric list ref = ref []
let registry_mutex = Mutex.create ()

let counter name =
  Mutex.lock registry_mutex;
  let r =
    match
      List.find_map
        (function
          | M_counter c when String.equal (Counter.name c) name -> Some c
          | _ -> None)
        !registry
    with
    | Some c -> c
    | None ->
        let c = Counter.create name in
        registry := M_counter c :: !registry;
        c
  in
  Mutex.unlock registry_mutex;
  r

let gauge name =
  Mutex.lock registry_mutex;
  let r =
    match
      List.find_map
        (function
          | M_gauge g when String.equal (Gauge.name g) name -> Some g
          | _ -> None)
        !registry
    with
    | Some g -> g
    | None ->
        let g = Gauge.create name in
        registry := M_gauge g :: !registry;
        g
  in
  Mutex.unlock registry_mutex;
  r

let histogram name =
  Mutex.lock registry_mutex;
  let r =
    match
      List.find_map
        (function
          | M_histogram h when String.equal (Histogram.name h) name -> Some h
          | _ -> None)
        !registry
    with
    | Some h -> h
    | None ->
        let h = Histogram.create name in
        registry := M_histogram h :: !registry;
        h
  in
  Mutex.unlock registry_mutex;
  r

(* ------------------------------------------------------------------ *)
(* Spans: start/stop intervals around pipeline stages, nestable (the
   viewer reconstructs nesting from containment per thread), exported
   as Chrome trace_event JSON.  Storage is an atomic cons-list so
   concurrent domains never block. *)

module Span = struct
  type event = { name : string; t0 : float; dur : float; tid : int }

  let events_list : event list Atomic.t = Atomic.make []

  let rec push e =
    let old = Atomic.get events_list in
    if not (Atomic.compare_and_set events_list old (e :: old)) then push e

  let emit ~name ~t0 ~dur =
    if enabled () then
      push { name; t0; dur; tid = (Domain.self () :> int) }

  let with_ name f =
    if not (enabled ()) then f ()
    else begin
      let t0 = now () in
      Fun.protect ~finally:(fun () -> emit ~name ~t0 ~dur:(now () -. t0)) f
    end

  let events () =
    List.sort
      (fun a b -> compare (a.t0, a.name) (b.t0, b.name))
      (Atomic.get events_list)

  let clear () = Atomic.set events_list []

  let to_chrome () =
    let t_epoch = Atomic.get epoch in
    let us t = Json.Int (int_of_float ((t -. t_epoch) *. 1e6)) in
    Json.Obj
      [ ( "traceEvents",
          Json.List
            (List.map
               (fun e ->
                 Json.Obj
                   [ ("name", Json.Str e.name);
                     ("cat", Json.Str "ujam");
                     ("ph", Json.Str "X");
                     ("ts", us e.t0);
                     ("dur", Json.Int (int_of_float (e.dur *. 1e6)));
                     ("pid", Json.Int 1);
                     ("tid", Json.Int e.tid) ])
               (events ())) );
        ("displayTimeUnit", Json.Str "ms") ]
end

(* ------------------------------------------------------------------ *)
(* Registry-wide operations. *)

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (function
      | M_counter c -> Counter.reset c
      | M_gauge g -> Gauge.reset g
      | M_histogram h -> Histogram.reset h)
    !registry;
  Mutex.unlock registry_mutex;
  Span.clear ()

let dump () =
  Mutex.lock registry_mutex;
  let metrics = !registry in
  Mutex.unlock registry_mutex;
  let by_name f =
    List.sort (fun (a, _) (b, _) -> String.compare a b) (List.filter_map f metrics)
  in
  Json.Obj
    [ ( "counters",
        Json.Obj
          (by_name (function
            | M_counter c -> Some (Counter.name c, Json.Int (Counter.value c))
            | _ -> None)) );
      ( "gauges",
        Json.Obj
          (by_name (function
            | M_gauge g -> Some (Gauge.name g, Json.Float (Gauge.value g))
            | _ -> None)) );
      ( "histograms",
        Json.Obj
          (by_name (function
            | M_histogram h ->
                Some
                  (Histogram.name h,
                   Histogram.summary_to_json (Histogram.summary h))
            | _ -> None)) ) ]
