(** Lock-free, Domain-safe observability substrate.

    A metrics registry (monotonic counters, gauges, log-scale latency
    histograms with p50/p95/p99) plus lightweight span tracing
    exported as Chrome [trace_event] JSON.  The default sink is
    {!Noop}: every record collapses to one atomic flag read, so
    instrumented hot paths cost ~nothing until {!enable} switches the
    process to the in-memory sink.  All record paths are lock-free
    (atomic fetch-and-add / CAS); the only mutex guards metric
    registration, which happens once per name. *)

type sink = Noop | Memory

val sink : unit -> sink
val set_sink : sink -> unit

val enable : unit -> unit
(** Switch to the {!Memory} sink and stamp the trace epoch. *)

val disable : unit -> unit
val enabled : unit -> bool

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); the time base every span
    and stage timer shares. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
  val name : t -> string
end

module Histogram : sig
  type t

  val record : t -> float -> unit
  (** Record a sample (seconds, or any positive quantity).  Lock-free:
      one atomic bucket increment plus CAS min/max. *)

  type summary = {
    count : int;
    min : float;
    max : float;
    mean : float;  (** derived from bucket representatives *)
    p50 : float;
    p95 : float;
    p99 : float;
  }

  val summary : t -> summary
  (** Exactly order-independent: every field is a pure function of the
      integer bucket counts and the CAS min/max, so recording the same
      samples from 1 or N domains yields identical summaries. *)

  val merge : t -> t -> t
  (** Associative (and commutative) bucket-count sum; the result is a
      fresh unregistered histogram carrying the left name. *)

  val summary_to_json : summary -> Json.t
  val name : t -> string

  val bucket_of : float -> int
  (** Exposed for the property suite: the log-scale bucket index. *)
end

val counter : string -> Counter.t
(** Find-or-create by name, so handles created in different libraries
    (or test runs) share state. *)

val gauge : string -> Gauge.t
val histogram : string -> Histogram.t

module Span : sig
  type event = { name : string; t0 : float; dur : float; tid : int }

  val emit : name:string -> t0:float -> dur:float -> unit
  (** Record a completed span with an externally measured interval (the
      stage timers reuse their own [t0]/[dur] so span sums equal the
      timing counters exactly).  No-op under the {!Noop} sink. *)

  val with_ : string -> (unit -> 'a) -> 'a
  (** Run a thunk inside a span.  Nestable; the trace viewer
      reconstructs nesting from containment per thread id. *)

  val events : unit -> event list
  (** Chronological order, whatever the recording interleaving. *)

  val clear : unit -> unit

  val to_chrome : unit -> Json.t
  (** The Chrome [trace_event] envelope: complete ("ph":"X") events
      with microsecond timestamps relative to the {!enable} epoch and
      the recording domain as "tid". *)
end

val reset : unit -> unit
(** Zero every registered metric and drop all spans. *)

val dump : unit -> Json.t
(** Snapshot of the whole registry: counter values, gauge values and
    histogram summaries, each sorted by name. *)
