type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  (* JSON has no Infinity/NaN literals; the balance of a flop-free nest
     is infinite, so render non-finite values as null. *)
  if Float.is_finite f then
    let s = Printf.sprintf "%.6g" f in
    (* "%.6g" may yield "1e+06"-style exponents, valid JSON as-is. *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"
  else "null"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing.  A recursive-descent reader for the dialect the emitter
   above produces (standard JSON; \uXXXX escapes decode to UTF-8).
   Needed so `bench --compare` can diff two perf-trajectory files and
   `ujc trace` can round-trip-validate the trace it just wrote. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" lit)
  in
  let utf8_add buf code =
    (* Good enough for the traces and reports we emit: encode the code
       point; surrogate pairs are not recombined. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char buf e;
                go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                | Some code -> utf8_add buf code
                | None -> fail "bad \\u escape");
                go ()
            | _ -> fail "unknown escape")
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.contains tok '.' || String.contains tok 'e'
      || String.contains tok 'E'
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_list ()
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else
      let rec fields acc =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
        | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      fields []
  and parse_list () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      List []
    end
    else
      let rec elems acc =
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elems (v :: acc)
        | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elems []
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* Accessors used by the compare gate and the trace validator. *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
