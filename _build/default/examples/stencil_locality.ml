(* Walk through the Wolf-Lam reuse machinery on two stencils, and show
   why successive over-relaxation only profits from unroll-and-jam when
   the balance model sees the cache (the sor bars of Figures 8/9).

   Run with: dune exec examples/stencil_locality.exe *)

open Ujam_linalg
open Ujam_core
open Ujam_reuse

let describe nest =
  let d = Ujam_ir.Nest.depth nest in
  let localized = Subspace.span_dims ~dim:d [ d - 1 ] in
  let vn = Ujam_ir.Nest.var_name nest in
  Format.printf "--- %s ---@.%a@." (Ujam_ir.Nest.name nest) Ujam_ir.Nest.pp nest;
  List.iter
    (fun (g : Ugs.t) ->
      Format.printf "@.UGS %s with H =@.%a@." g.Ugs.base Mat.pp g.Ugs.h;
      Format.printf "self-temporal space: %a@." Subspace.pp (Selfreuse.self_temporal g.Ugs.h);
      Format.printf "self-spatial space:  %a@." Subspace.pp (Selfreuse.self_spatial g.Ugs.h);
      let gts = Groups.group_temporal ~localized g in
      Format.printf "group-temporal sets (innermost-localized): %d@." (Groups.count gts);
      List.iteri
        (fun i cls ->
          Format.printf "  GTS %d: %s@." i
            (String.concat ", "
               (List.map
                  (fun (s : Ujam_ir.Site.t) ->
                    Format.asprintf "%a" (Ujam_ir.Site.pp ~var_name:vn) s)
                  cls)))
        gts.Groups.classes;
      let cost = Locality.ugs_cost ~line:4 ~localized g in
      Format.printf "Equation 1: g_T=%d g_S=%d stream=%a -> %.3f accesses/iteration@."
        cost.Locality.g_t cost.Locality.g_s Locality.pp_stream cost.Locality.stream
        cost.Locality.accesses)
    (Ugs.of_nest nest)

let () =
  describe (Ujam_kernels.Kernels.jacobi ~n:64 ());
  Format.printf "@.";
  describe (Ujam_kernels.Kernels.sor ~n:64 ());

  (* sor: the no-cache model thinks the loop is already balanced; the
     cache model sees the miss cost and unrolls. *)
  let machine = Ujam_machine.Presets.alpha in
  let nest = Ujam_kernels.Kernels.sor () in
  List.iter
    (fun cache ->
      let r = Driver.optimize ~bound:6 ~cache ~machine nest in
      let before = Ujam_sim.Runner.run ~machine nest in
      let after =
        Ujam_sim.Runner.run ~machine ~plan:r.Driver.plan r.Driver.transformed
      in
      Format.printf
        "@.sor with %s model: beta_L(0)=%.2f -> chose u=%a, simulated normalized \
         time %.3f@."
        (if cache then "cache" else "no-cache")
        r.Driver.original.Search.balance Vec.pp r.Driver.choice.Search.u
        (Ujam_sim.Runner.normalized ~baseline:before after))
    [ false; true ]
