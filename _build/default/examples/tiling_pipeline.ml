(* The full Wolf-Lam pipeline on a matrix multiply: tile for the cache,
   unroll-and-jam the element loops for registers, scalar-replace, and
   check both the cycle model and the semantics.

   Run with: dune exec examples/tiling_pipeline.exe *)

open Ujam_linalg
open Ujam_ir
open Ujam_core

let () =
  let machine = Ujam_machine.Presets.alpha in
  let nest = Ujam_kernels.Kernels.mmjki ~n:64 () in
  Format.printf "=== original ===@.%a@.@." Nest.pp nest;

  (* 1. cache tiling: J and K in 16x16 tiles *)
  let tiled = Tile.tile nest ~levels:[ 0; 1 ] ~sizes:[ 16; 16 ] in
  Format.printf "=== after tiling (J,K by 16) ===@.%a@.@." Nest.pp tiled;

  (* 2. register tiling: unroll-and-jam the element loops *)
  let u = Vec.of_list [ 0; 0; 1; 3; 0 ] in
  let unrolled = Unroll.unroll_and_jam tiled u in
  let plan = Scalar_replace.plan unrolled in
  let final = Scalar_replace.apply unrolled plan in
  Format.printf "=== + unroll-and-jam %s + scalar replacement: %d statements, "
    (Vec.to_string u)
    (List.length (Nest.body final));
  Format.printf "%a@.@." Scalar_replace.pp_report plan;

  (* 3. semantics: the interpreter must agree exactly *)
  let reference = Ujam_sim.Interp.run nest in
  let pre = Scalar_replace.preheader unrolled plan in
  let result = Ujam_sim.Interp.run ~preheader:(fun _ -> pre) final in
  Format.printf "semantics preserved: %b@.@."
    (Ujam_sim.Interp.equal reference result);

  (* 4. performance: compare the three stages in the simulator *)
  let run ?plan n = Ujam_sim.Runner.run ~machine ?plan n in
  let base = run nest in
  let t = run tiled in
  let f = run ~plan unrolled in
  Format.printf "%-28s %12s %10s %8s@." "configuration" "cycles" "misses" "norm";
  List.iter
    (fun (name, (r : Ujam_sim.Runner.result)) ->
      Format.printf "%-28s %12.0f %10d %8.3f@." name r.Ujam_sim.Runner.cycles
        r.Ujam_sim.Runner.misses
        (Ujam_sim.Runner.normalized ~baseline:base r))
    [ ("original", base); ("tiled 16x16", t); ("tiled + unroll-and-jam", f) ]
