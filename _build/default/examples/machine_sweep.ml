(* How the chosen unroll amounts react to the machine: sweep the
   register-file size and the miss penalty (the paper's future-work
   question about architectures with larger register sets).

   Run with: dune exec examples/machine_sweep.exe *)

open Ujam_linalg
open Ujam_core

let () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:64 () in
  Format.printf "%a@.@." Ujam_ir.Nest.pp nest;

  Format.printf "register-file sweep (miss penalty fixed at 20):@.";
  Format.printf "%-6s %-10s %-8s %-10s %-10s@." "regs" "u" "R(u)" "beta_L" "V_M/V_F";
  List.iter
    (fun fp_registers ->
      let machine = Ujam_machine.Presets.generic ~fp_registers () in
      let r = Driver.optimize ~bound:8 ~machine nest in
      let c = r.Driver.choice in
      Format.printf "%-6d %-10s %-8d %-10.3f %d/%d@." fp_registers
        (Vec.to_string c.Search.u) c.Search.registers c.Search.balance
        c.Search.memory_ops c.Search.flops)
    [ 8; 16; 32; 64; 128 ];

  Format.printf "@.miss-penalty sweep (32 registers):@.";
  Format.printf "%-8s %-10s %-10s@." "penalty" "u" "beta_L";
  List.iter
    (fun miss_penalty ->
      let machine = Ujam_machine.Presets.generic ~miss_penalty () in
      let r = Driver.optimize ~bound:8 ~machine nest in
      Format.printf "%-8d %-10s %-10.3f@." miss_penalty
        (Vec.to_string r.Driver.choice.Search.u) r.Driver.choice.Search.balance)
    [ 0; 5; 10; 20; 40; 80 ]
