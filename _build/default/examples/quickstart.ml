(* Quickstart: write a loop nest with the builder DSL, let the library
   pick unroll amounts for a machine, and look at the result.

   Run with: dune exec examples/quickstart.exe *)

open Ujam_core

let () =
  (* A matrix-matrix multiply in JKI order, written with the DSL.  The
     innermost loop I walks the contiguous (first, column-major)
     subscript of C and A. *)
  let n = 64 in
  let nest =
    let open Ujam_ir.Build in
    let d = 3 in
    let j = var d 0 and k = var d 1 and i = var d 2 in
    nest "matmul-jki"
      [ loop d "J" ~level:0 ~lo:1 ~hi:n ();
        loop d "K" ~level:1 ~lo:1 ~hi:n ();
        loop d "I" ~level:2 ~lo:1 ~hi:n () ]
      [ aref "C" [ i; j ] <<- rd "C" [ i; j ] +: (rd "A" [ i; k ] *: rd "B" [ k; j ]) ]
  in
  Format.printf "=== input ===@.%a@.@." Ujam_ir.Nest.pp nest;

  (* Choose unroll amounts for an Alpha-like machine: balance the loop
     (memory ops per flop, including miss costs) against the machine. *)
  let machine = Ujam_machine.Presets.alpha in
  let report = Driver.optimize ~bound:6 ~machine nest in
  Format.printf "=== decision ===@.%a@.@." Driver.pp report;

  Format.printf "=== after unroll-and-jam ===@.%a@.@." Ujam_ir.Nest.pp
    report.Driver.transformed;
  Format.printf "=== after scalar replacement ===@.%a@.@." Ujam_ir.Nest.pp
    (Scalar_replace.apply report.Driver.transformed report.Driver.plan);

  (* Check the prediction against the cache + CPU simulator. *)
  let before = Ujam_sim.Runner.run ~machine nest in
  let after =
    Ujam_sim.Runner.run ~machine ~plan:report.Driver.plan report.Driver.transformed
  in
  Format.printf "=== simulation ===@.before: %a@.after:  %a@.speedup: %.2fx@."
    Ujam_sim.Runner.pp before Ujam_sim.Runner.pp after
    (before.Ujam_sim.Runner.cycles /. after.Ujam_sim.Runner.cycles)
