(* The paper's storage argument in miniature: build each kernel's
   dependence graph with and without input dependences and report the
   share the UGS model never has to store, plus a small synthetic-corpus
   run (the full Table 1 experiment lives in bench/main.exe).

   Run with: dune exec examples/dependence_savings.exe *)

open Ujam_depend

let () =
  Format.printf "%-10s %-8s %-8s %-8s %s@." "loop" "edges" "input" "other" "input share";
  let tot = ref 0 and tot_input = ref 0 in
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:24 () in
      let stats = Stats.of_graph (Graph.build ~include_input:true nest) in
      let total = Stats.total stats in
      tot := !tot + total;
      tot_input := !tot_input + stats.Stats.input;
      Format.printf "%-10s %-8d %-8d %-8d %s@." e.Ujam_kernels.Catalogue.name total
        stats.Stats.input
        (total - stats.Stats.input)
        (match Stats.input_fraction stats with
        | Some f -> Printf.sprintf "%.0f%%" (100.0 *. f)
        | None -> "-"))
    Ujam_kernels.Catalogue.all;
  Format.printf "%-10s %-8d %-8d %-8d %.0f%%@.@." "total" !tot !tot_input
    (!tot - !tot_input)
    (100.0 *. float_of_int !tot_input /. float_of_int (max 1 !tot));

  Format.printf "synthetic corpus (200 routines):@.";
  let routines = Ujam_workload.Generator.corpus ~count:200 () in
  Format.printf "%a@." Ujam_workload.Corpus.pp (Ujam_workload.Corpus.measure routines)
