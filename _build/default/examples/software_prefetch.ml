(* The balance model's prefetch term (Sec. 3.2): as prefetch-issue
   bandwidth grows, unserviced misses shrink and the cache model
   converges to the all-hits model.

   Run with: dune exec examples/software_prefetch.exe *)

open Ujam_linalg
open Ujam_core

let () =
  let nest = Ujam_kernels.Kernels.dmxpy0 ~n:64 () in
  Format.printf "%a@.@." Ujam_ir.Nest.pp nest;
  Format.printf "%-10s %-10s %-12s %-12s@." "pf/cycle" "u" "beta_L" "misses/iter";
  List.iter
    (fun prefetch_bandwidth ->
      let machine = Ujam_machine.Presets.generic ~prefetch_bandwidth () in
      let r = Driver.optimize ~bound:8 ~machine nest in
      let balance = Balance.prepare ~machine r.Driver.space nest in
      Format.printf "%-10.2f %-10s %-12.3f %-12.3f@." prefetch_bandwidth
        (Vec.to_string r.Driver.choice.Search.u) r.Driver.choice.Search.balance
        (Balance.misses balance r.Driver.choice.Search.u
        /. Vec.fold (fun acc x -> float_of_int (x + 1) *. acc) 1.0 r.Driver.choice.Search.u))
    [ 0.0; 0.05; 0.1; 0.25; 0.5; 1.0 ]
