examples/software_prefetch.mli:
