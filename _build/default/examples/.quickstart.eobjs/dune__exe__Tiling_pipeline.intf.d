examples/tiling_pipeline.mli:
