examples/machine_sweep.mli:
