examples/stencil_locality.ml: Driver Format Groups List Locality Mat Search Selfreuse String Subspace Ugs Ujam_core Ujam_ir Ujam_kernels Ujam_linalg Ujam_machine Ujam_reuse Ujam_sim Vec
