examples/machine_sweep.ml: Driver Format List Search Ujam_core Ujam_ir Ujam_kernels Ujam_linalg Ujam_machine Vec
