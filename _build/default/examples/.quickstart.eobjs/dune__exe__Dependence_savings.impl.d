examples/dependence_savings.ml: Format Graph List Printf Stats Ujam_depend Ujam_kernels Ujam_workload
