examples/tiling_pipeline.ml: Format List Nest Scalar_replace Tile Ujam_core Ujam_ir Ujam_kernels Ujam_linalg Ujam_machine Ujam_sim Unroll Vec
