examples/quickstart.mli:
