examples/dependence_savings.mli:
