examples/quickstart.ml: Driver Format Scalar_replace Ujam_core Ujam_ir Ujam_machine Ujam_sim
