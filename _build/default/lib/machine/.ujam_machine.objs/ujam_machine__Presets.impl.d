lib/machine/presets.ml: Machine
