(* Cache quantities are in 8-byte elements: a 32-byte line is 4 elements.
   The modelled cache is the board-level SRAM whose misses pay the DRAM
   penalty (the 21064's 8 KB on-chip cache sits in front of a 128 KB+
   board cache; the paper's balance model charges the expensive level). *)

let alpha =
  Machine.make ~name:"DEC-Alpha-21064" ~mem_issue:1 ~fp_issue:1 ~fp_latency:6
    ~fp_registers:32 ~cache_size:16384 ~cache_line:4 ~associativity:1
    ~cache_access:1 ~miss_penalty:24 ()

let hppa =
  Machine.make ~name:"HP-PA-RISC-7100" ~mem_issue:1 ~fp_issue:2 ~fp_latency:2
    ~fp_registers:32 ~cache_size:32768 ~cache_line:4 ~associativity:1
    ~cache_access:1 ~miss_penalty:12 ()

let generic ?(fp_registers = 32) ?(miss_penalty = 20) ?(prefetch_bandwidth = 0.0) () =
  Machine.make ~name:"generic" ~fp_registers ~miss_penalty ~prefetch_bandwidth
    ~cache_size:4096 ~cache_line:4 ()

let all = [ alpha; hppa; generic () ]
