type t = {
  name : string;
  mem_issue : int;
  fp_issue : int;
  fp_latency : int;
  fp_registers : int;
  cache_size : int;
  cache_line : int;
  associativity : int;
  cache_access : int;
  miss_penalty : int;
  prefetch_bandwidth : float;
}

let balance t = float_of_int t.mem_issue /. float_of_int t.fp_issue
let miss_ratio_cost t = float_of_int t.miss_penalty /. float_of_int t.cache_access

let make ~name ?(mem_issue = 1) ?(fp_issue = 1) ?(fp_latency = 3)
    ?(fp_registers = 32) ?(cache_size = 1024) ?(cache_line = 4)
    ?(associativity = 1) ?(cache_access = 1) ?(miss_penalty = 20)
    ?(prefetch_bandwidth = 0.0) () =
  if mem_issue <= 0 || fp_issue <= 0 then invalid_arg "Machine.make: issue rates";
  if cache_line <= 0 || cache_size < cache_line then
    invalid_arg "Machine.make: cache geometry";
  if associativity <= 0 || cache_size mod (cache_line * associativity) <> 0 then
    invalid_arg "Machine.make: associativity must divide the cache";
  { name; mem_issue; fp_issue; fp_latency; fp_registers; cache_size;
    cache_line; associativity; cache_access; miss_penalty; prefetch_bandwidth }

let pp ppf t =
  Format.fprintf ppf
    "%s: beta_M=%.2f mem/cyc=%d fp/cyc=%d lat=%d regs=%d cache=%d/%d-elt \
     %d-way hit=%dc miss=+%dc prefetch=%.2f/cyc"
    t.name (balance t) t.mem_issue t.fp_issue t.fp_latency t.fp_registers
    t.cache_size t.cache_line t.associativity t.cache_access t.miss_penalty
    t.prefetch_bandwidth
