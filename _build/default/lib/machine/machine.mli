(** Target-machine descriptions.

    The balance model needs issue rates, the register file size, and the
    cache geometry; the simulator additionally uses latencies.  All cache
    quantities are in array elements (double words), matching the paper's
    convention that a word equals the floating-point precision. *)

type t = {
  name : string;
  mem_issue : int;      (** memory operations issued per cycle *)
  fp_issue : int;       (** floating-point operations issued per cycle *)
  fp_latency : int;     (** cycles until an FP result is available *)
  fp_registers : int;
  cache_size : int;     (** elements *)
  cache_line : int;     (** elements *)
  associativity : int;  (** ways; [cache_size / (line * assoc)] sets *)
  cache_access : int;   (** hit cost [C_s], cycles *)
  miss_penalty : int;   (** additional miss cost [C_m], cycles *)
  prefetch_bandwidth : float;  (** prefetch issues per cycle; 0 = none *)
}

val balance : t -> float
(** Machine balance [beta_M = mem_issue / fp_issue]: words fetched per
    flop at peak. *)

val miss_ratio_cost : t -> float
(** [C_m / C_s]: the unserviced-prefetch multiplier of Sec. 3.2. *)

val make :
  name:string ->
  ?mem_issue:int ->
  ?fp_issue:int ->
  ?fp_latency:int ->
  ?fp_registers:int ->
  ?cache_size:int ->
  ?cache_line:int ->
  ?associativity:int ->
  ?cache_access:int ->
  ?miss_penalty:int ->
  ?prefetch_bandwidth:float ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
