lib/depend/test_pair.ml: Aref Array Depvec Fun List Mat Option String Ujam_ir Ujam_linalg Vec
