lib/depend/depvec.mli: Format Ujam_linalg
