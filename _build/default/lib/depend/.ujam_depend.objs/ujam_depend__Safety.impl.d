lib/depend/safety.ml: Array Depvec Fun Graph List Ujam_ir Ujam_linalg Vec
