lib/depend/graph.mli: Depvec Format Ujam_ir
