lib/depend/stats.ml: Format Graph List
