lib/depend/depvec.ml: Array Format Ujam_linalg Vec
