lib/depend/stats.mli: Format Graph
