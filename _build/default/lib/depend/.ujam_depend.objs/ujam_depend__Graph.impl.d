lib/depend/graph.ml: Affine Aref Array Buffer Depvec Format List Loop Nest Printf Site String Test_pair Ujam_ir
