lib/depend/test_pair.mli: Depvec Ujam_ir
