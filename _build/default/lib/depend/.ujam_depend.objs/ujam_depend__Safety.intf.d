lib/depend/safety.mli: Graph Ujam_linalg
