(** Dependence distance / direction vectors.

    A component is either an exact iteration distance or [Star] when the
    dependence is inconsistent along that loop (the distance varies from
    instance to instance, as with coupled or non-uniformly generated
    subscripts). *)

type elem = Exact of int | Star

type t = elem array

val all_star : int -> t
val exact : Ujam_linalg.Vec.t -> t
val dim : t -> int

val is_zero : t -> bool
(** Every component exactly 0: a loop-independent dependence. *)

val lex_sign : t -> [ `Pos | `Neg | `Zero | `Ambiguous ]
(** Sign of the first non-zero component; [`Ambiguous] when a [Star] is
    encountered before any non-zero exact component. *)

val negate : t -> t

val carried_level : t -> int option
(** First level with a non-zero (or [Star]) component; [None] for a
    loop-independent dependence. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
