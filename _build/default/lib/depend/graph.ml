open Ujam_ir

type kind = Flow | Anti | Output | Input

type edge = { src : Site.t; dst : Site.t; kind : kind; dvec : Depvec.t }

type t = { nest : Nest.t; edges : edge list }

let kind_of_sites (src : Site.t) (dst : Site.t) =
  match (src.Site.kind, dst.Site.kind) with
  | Site.Write, Site.Read -> Flow
  | Site.Read, Site.Write -> Anti
  | Site.Write, Site.Write -> Output
  | Site.Read, Site.Read -> Input

let nest_bounds nest =
  let loops = Nest.loops nest in
  let all_const =
    Array.for_all
      (fun (l : Loop.t) -> Affine.is_constant l.Loop.lo && Affine.is_constant l.Loop.hi)
      loops
  in
  if all_const then
    Some
      (Array.map
         (fun (l : Loop.t) -> (l.Loop.lo.Affine.const, l.Loop.hi.Affine.const))
         loops)
  else None

let build ?(include_input = true) nest =
  let sites = Array.of_list (Site.of_nest nest) in
  let bounds = nest_bounds nest in
  let edges = ref [] in
  let add src dst dvec = edges := { src; dst; kind = kind_of_sites src dst; dvec } :: !edges in
  let n = Array.length sites in
  for a = 0 to n - 1 do
    for b = a to n - 1 do
      let sa = sites.(a) and sb = sites.(b) in
      let both_reads = (not (Site.is_write sa)) && not (Site.is_write sb) in
      if (include_input || not both_reads)
         && String.equal (Aref.base sa.Site.ref_) (Aref.base sb.Site.ref_)
      then
        match Test_pair.test ~bounds sa.Site.ref_ sb.Site.ref_ with
        | Test_pair.Independent -> ()
        | Test_pair.Dependent dvec -> (
            match Depvec.lex_sign dvec with
            | `Pos -> add sa sb dvec
            | `Neg -> add sb sa (Depvec.negate dvec)
            | `Ambiguous -> add sa sb dvec
            | `Zero ->
                (* Loop-independent: only between distinct sites, from the
                   textually earlier one.  Within a statement the reads
                   execute before the write. *)
                if a <> b then begin
                  let earlier, later =
                    if sa.Site.stmt < sb.Site.stmt then (sa, sb)
                    else if sb.Site.stmt < sa.Site.stmt then (sb, sa)
                    else if Site.is_write sb then (sa, sb)
                    else if Site.is_write sa then (sb, sa)
                    else (sa, sb)
                  in
                  add earlier later dvec
                end)
    done
  done;
  { nest; edges = List.rev !edges }

let edges_on t base =
  List.filter (fun e -> String.equal (Aref.base e.src.Site.ref_) base) t.edges

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with Flow -> "flow" | Anti -> "anti" | Output -> "output" | Input -> "input")

let pp ppf t =
  let vn = Nest.var_name t.nest in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%a: %a -> %a %a" pp_kind e.kind (Site.pp ~var_name:vn)
        e.src (Site.pp ~var_name:vn) e.dst Depvec.pp e.dvec)
    t.edges;
  Format.fprintf ppf "@]"

let to_dot t =
  let vn = Nest.var_name t.nest in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dependences {\n  rankdir=LR;\n";
  List.iter
    (fun (s : Site.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" s.Site.id
           (Format.asprintf "%a" (Site.pp ~var_name:vn) s)
           (if Site.is_write s then "box" else "ellipse")))
    (Site.of_nest t.nest);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s %s\"%s];\n" e.src.Site.id
           e.dst.Site.id
           (Format.asprintf "%a" pp_kind e.kind)
           (Format.asprintf "%a" Depvec.pp e.dvec)
           (match e.kind with Input -> ", style=dashed" | Flow | Anti | Output -> "")))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
