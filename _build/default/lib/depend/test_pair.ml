open Ujam_linalg
open Ujam_ir

type result = Independent | Dependent of Depvec.t

(* Distance set of a uniformly generated pair: solutions of H d = c1 - c2.
   The exact components are those untouched by ker H; kernel-spanned
   components vary from instance to instance and become Star. *)
let uniform_distances ~bounds h c1 c2 =
  let rhs = Vec.sub c1 c2 in
  match Mat.solve_int h rhs with
  | None ->
      if Option.is_some (Mat.solve_rat h rhs) && not (Mat.is_separable_siv h) then
        (* A rational solution exists but our particular point is not
           integral and the matrix is coupled: stay conservative. *)
        Some (Depvec.all_star (Mat.cols h))
      else None
  | Some d0 ->
      let kernel = Mat.kernel h in
      let touched = Array.make (Mat.cols h) false in
      List.iter
        (fun k ->
          Array.iteri (fun i x -> if x <> 0 then touched.(i) <- true) (Vec.to_array k))
        kernel;
      let dvec =
        Array.init (Mat.cols h) (fun k ->
            if touched.(k) then Depvec.Star else Depvec.Exact (Vec.get d0 k))
      in
      (* An exact component larger than the loop's iteration range rules
         the whole dependence out. *)
      let out_of_range =
        match bounds with
        | None -> false
        | Some bs ->
            Array.exists
              (fun k ->
                match dvec.(k) with
                | Depvec.Exact x ->
                    let lo, hi = bs.(k) in
                    abs x > hi - lo
                | Depvec.Star -> false)
              (Array.init (Mat.cols h) Fun.id)
      in
      if out_of_range then None else Some dvec

(* Per-dimension GCD + Banerjee tests for a non-uniform pair.  Variables
   are the concatenation (i1, i2). *)
let nonuniform_test ~bounds h1 c1 h2 c2 =
  let dims = Mat.rows h1 in
  let depth = Mat.cols h1 in
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let independent = ref false in
  for r = 0 to dims - 1 do
    if not !independent then begin
      let a1 = Array.init depth (fun k -> Mat.get h1 r k) in
      let a2 = Array.init depth (fun k -> Mat.get h2 r k) in
      let rhs = Vec.get c2 r - Vec.get c1 r in
      (* f(i1,i2) = sum a1 i1 - sum a2 i2 = rhs must be solvable. *)
      let g =
        Array.fold_left (fun acc x -> gcd acc (abs x))
          (Array.fold_left (fun acc x -> gcd acc (abs x)) 0 a1)
          a2
      in
      if g > 0 && rhs mod g <> 0 then independent := true
      else
        match bounds with
        | None -> ()
        | Some bs ->
            (* Banerjee: range of the linear form over the two boxes. *)
            let lo = ref 0 and hi = ref 0 in
            let addc coef (l, h) =
              if coef >= 0 then begin
                lo := !lo + (coef * l);
                hi := !hi + (coef * h)
              end
              else begin
                lo := !lo + (coef * h);
                hi := !hi + (coef * l)
              end
            in
            Array.iteri (fun k c -> addc c bs.(k)) a1;
            Array.iteri (fun k c -> addc (-c) bs.(k)) a2;
            if rhs < !lo || rhs > !hi then independent := true
    end
  done;
  if !independent then Independent else Dependent (Depvec.all_star depth)

let test ~bounds r1 r2 =
  if not (String.equal (Aref.base r1) (Aref.base r2)) then Independent
  else if Aref.rank r1 <> Aref.rank r2 then
    (* Same array viewed at different ranks: treat conservatively. *)
    Dependent (Depvec.all_star (Aref.depth r1))
  else begin
    let h1 = Aref.h_matrix r1 and h2 = Aref.h_matrix r2 in
    let c1 = Aref.c_vector r1 and c2 = Aref.c_vector r2 in
    if Mat.equal h1 h2 then
      match uniform_distances ~bounds h1 c1 c2 with
      | None -> Independent
      | Some d -> Dependent d
    else nonuniform_test ~bounds h1 c1 h2 c2
  end
