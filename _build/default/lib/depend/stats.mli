(** Dependence-graph statistics: the measurements behind Table 1. *)

type t = { flow : int; anti : int; output : int; input : int }

val zero : t
val of_graph : Graph.t -> t
val add : t -> t -> t
val total : t -> int

val input_fraction : t -> float option
(** Fraction of all dependences that are input dependences; [None] when
    the graph is empty (the paper likewise excludes routines without
    dependences). *)

val pp : Format.formatter -> t -> unit
