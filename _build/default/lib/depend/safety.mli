(** Legality of unroll-and-jam.

    Unroll-and-jam of loop [k] fuses [u_k + 1] consecutive iterations of
    loop [k] into one pass of the inner loops.  That is illegal when a
    dependence carried by loop [k] would be reversed by the fusion —
    i.e. when its distance vector has [d_k > 0] followed by a
    lexicographically negative (or unknown) inner suffix; such a
    dependence caps the extra copies at [d_k - 1] (cf. Callahan–Cocke–
    Kennedy, which this paper assumes as given).  The innermost loop is
    never unrolled, so its bound is always 0. *)

val max_safe_unroll : Graph.t -> int array
(** Per-level inclusive upper bound on the number of extra copies;
    [max_int] when unconstrained. *)

val is_safe : Graph.t -> Ujam_linalg.Vec.t -> bool

val legal_permutation : Graph.t -> int array -> bool
(** A loop permutation is legal when every dependence keeps its
    orientation.  For exact distance vectors that is the classical test:
    the reordered vector stays lexicographically non-negative.  A vector
    with [Star] components stands for a whole solution set whose members
    may have either orientation, so the permutation must preserve the
    relative order of all significant components (the [Star]s and the
    non-zero exacts); then each member's leading non-zero survives the
    reordering, and with it the member's sign.  A lone [Star] among
    zeros (a reduction or invariant reference) therefore permutes
    freely, while an unknown (all-[Star]) dependence pins the order.
    Checked against an interpreter on random nests in the test suite. *)
