(** Dependence testing between two array references of a common nest.

    For uniformly generated pairs (same access matrix [H]) the distance
    set [{ d | H d = c1 - c2 }] is computed exactly: a unique distance
    when [ker H] is trivial, otherwise [Star] components on the loops the
    kernel spans.  Non-uniform pairs fall back to per-dimension GCD and
    Banerjee tests, yielding either independence or an all-[Star]
    direction vector — the classical practical-dependence-testing
    pipeline restricted to what the evaluation suite needs. *)

type result =
  | Independent
  | Dependent of Depvec.t
      (** Distance vector of [sink - source] for the pair [(r1, r2)];
          the caller normalises direction from the lexicographic sign. *)

val test : bounds:(int * int) array option -> Ujam_ir.Aref.t -> Ujam_ir.Aref.t -> result
(** [bounds] are per-level inclusive index ranges when the nest has
    constant bounds; they sharpen the tests (distance within the
    iteration space, Banerjee limits). *)
