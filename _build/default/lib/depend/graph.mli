(** Dependence graphs over the reference sites of a nest.

    The graph can be built with or without input (read-read) dependences;
    the size difference between the two is exactly the storage the
    paper's UGS-based model saves (Table 1). *)

type kind = Flow | Anti | Output | Input

type edge = { src : Ujam_ir.Site.t; dst : Ujam_ir.Site.t; kind : kind; dvec : Depvec.t }

type t = { nest : Ujam_ir.Nest.t; edges : edge list }

val build : ?include_input:bool -> Ujam_ir.Nest.t -> t
(** [include_input] defaults to [true].  Edges are normalised so the
    distance vector is lexicographically non-negative: the source is the
    earlier instance.  Loop-independent (all-zero) dependences run from
    the textually earlier site to the later one; ambiguous (leading
    [Star]) dependences keep the id order of the pair. *)

val edges_on : t -> string -> edge list
(** Edges whose endpoints reference the given array. *)

val kind_of_sites : Ujam_ir.Site.t -> Ujam_ir.Site.t -> kind

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** Graphviz rendering: one node per reference site, one edge per
    dependence, labelled with kind and distance vector (input edges
    dashed — the storage the UGS model avoids). *)
