type t = { flow : int; anti : int; output : int; input : int }

let zero = { flow = 0; anti = 0; output = 0; input = 0 }

let of_graph (g : Graph.t) =
  List.fold_left
    (fun acc (e : Graph.edge) ->
      match e.Graph.kind with
      | Graph.Flow -> { acc with flow = acc.flow + 1 }
      | Graph.Anti -> { acc with anti = acc.anti + 1 }
      | Graph.Output -> { acc with output = acc.output + 1 }
      | Graph.Input -> { acc with input = acc.input + 1 })
    zero g.Graph.edges

let add a b =
  { flow = a.flow + b.flow;
    anti = a.anti + b.anti;
    output = a.output + b.output;
    input = a.input + b.input }

let total t = t.flow + t.anti + t.output + t.input

let input_fraction t =
  let n = total t in
  if n = 0 then None else Some (float_of_int t.input /. float_of_int n)

let pp ppf t =
  Format.fprintf ppf "flow=%d anti=%d output=%d input=%d (total %d)" t.flow
    t.anti t.output t.input (total t)
