open Ujam_linalg

type elem = Exact of int | Star

type t = elem array

let all_star n = Array.make n Star
let exact v = Array.map (fun x -> Exact x) (Vec.to_array v)
let dim = Array.length

let is_zero t = Array.for_all (function Exact 0 -> true | Exact _ | Star -> false) t

let lex_sign t =
  let rec go k =
    if k = Array.length t then `Zero
    else
      match t.(k) with
      | Exact 0 -> go (k + 1)
      | Exact x when x > 0 -> `Pos
      | Exact _ -> `Neg
      | Star -> `Ambiguous
  in
  go 0

let negate t = Array.map (function Exact x -> Exact (-x) | Star -> Star) t

let carried_level t =
  let rec go k =
    if k = Array.length t then None
    else match t.(k) with Exact 0 -> go (k + 1) | Exact _ | Star -> Some k
  in
  go 0

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Exact a, Exact b -> a = b
         | Star, Star -> true
         | (Exact _ | Star), _ -> false)
       a b

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf -> function
         | Exact x -> Format.pp_print_int ppf x
         | Star -> Format.pp_print_string ppf "*"))
    (Array.to_list t)
