type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd (Stdlib.abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.num
let den t = t.den

let is_zero t = t.num = 0
let is_integer t = t.den = 1

let to_int_exn t =
  if t.den <> 1 then invalid_arg "Rat.to_int_exn: not an integer";
  t.num

let to_float t = float_of_int t.num /. float_of_int t.den

let neg t = { t with num = -t.num }
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = add a (neg b)
let mul a b = make (a.num * b.num) (a.den * b.den)

let inv t =
  if t.num = 0 then raise Division_by_zero;
  make t.den t.num

let div a b = mul a (inv b)
let abs t = { t with num = Stdlib.abs t.num }

(* Canonical forms make cross-multiplication comparison exact. *)
let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = a.num = b.num && a.den = b.den
let sign t = Stdlib.compare t.num 0

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0

let pp ppf t =
  if Stdlib.( = ) t.den 1 then Format.fprintf ppf "%d" t.num
  else Format.fprintf ppf "%d/%d" t.num t.den

let to_string t = Format.asprintf "%a" pp t
