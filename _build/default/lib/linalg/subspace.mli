(** Rational vector subspaces of Q^n with primitive-integer canonical
    bases.

    Reuse analysis manipulates subspaces of the iteration space: the
    localized vector space, self-temporal ([ker H]) and self-spatial
    ([ker H_s]) reuse spaces, and their intersections.  A subspace is
    stored as the reduced row echelon form of its spanning set, rescaled
    to primitive integer rows, so structural equality coincides with
    subspace equality. *)

type t

val of_basis : dim:int -> Vec.t list -> t
(** Subspace spanned by the given vectors (not necessarily independent). *)

val full : int -> t
val trivial : int -> t

val span_dims : dim:int -> int list -> t
(** [span_dims ~dim ds] is the coordinate subspace spanned by the
    standard basis vectors [e_d] for [d] in [ds]. *)

val ambient_dim : t -> int
val dim : t -> int
val basis : t -> Vec.t list
val is_trivial : t -> bool
val is_full : t -> bool

val mem : Vec.t -> t -> bool

val equal : t -> t -> bool
val subset : t -> t -> bool

val intersect : t -> t -> t
val join : t -> t -> t
(** Smallest subspace containing both (span of the union of bases). *)

val solvable_in : Mat.t -> Vec.t -> t -> bool
(** [solvable_in h c l] decides whether some [x] in [l] satisfies
    [h x = c] with [x] integral.  The witness search is exact for the
    separable-SIV access matrices the paper's algorithms target
    (Sec. 3.5); for general matrices it is sound but may miss non-integer
    parameterisations. *)

val solution_in : Mat.t -> Vec.t -> t -> Vec.t option
(** Like {!solvable_in} but returns the witness [x]. *)

val pp : Format.formatter -> t -> unit
