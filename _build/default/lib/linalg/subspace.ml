type t = { ambient : int; basis : Vec.t list (* canonical RREF rows *) }

let of_basis ~dim vs =
  List.iter
    (fun v -> if Vec.dim v <> dim then invalid_arg "Subspace.of_basis: dimension")
    vs;
  let nonzero = List.filter (fun v -> not (Vec.is_zero v)) vs in
  let basis =
    match nonzero with
    | [] -> []
    | vs -> Mat.row_space (Mat.of_rows (Array.of_list (List.map Vec.to_array vs)))
  in
  { ambient = dim; basis }

let full n = of_basis ~dim:n (List.init n (Vec.unit n))
let trivial n = { ambient = n; basis = [] }
let span_dims ~dim ds = of_basis ~dim (List.map (Vec.unit dim) ds)

let ambient_dim t = t.ambient
let dim t = List.length t.basis
let basis t = t.basis
let is_trivial t = t.basis = []
let is_full t = dim t = t.ambient

let cols_matrix t = Mat.of_cols t.basis t.ambient

let mem v t =
  if Vec.dim v <> t.ambient then invalid_arg "Subspace.mem: dimension";
  if Vec.is_zero v then true
  else if is_trivial t then false
  else Option.is_some (Mat.solve_rat (cols_matrix t) v)

let equal a b = a.ambient = b.ambient && List.equal Vec.equal a.basis b.basis
let subset a b = a.ambient = b.ambient && List.for_all (fun v -> mem v b) a.basis

let join a b =
  if a.ambient <> b.ambient then invalid_arg "Subspace.join: ambient dimension";
  of_basis ~dim:a.ambient (a.basis @ b.basis)

let intersect a b =
  if a.ambient <> b.ambient then invalid_arg "Subspace.intersect: ambient dimension";
  if is_trivial a || is_trivial b then trivial a.ambient
  else begin
    (* x in A ∩ B  iff  x = Ba y1 = Bb y2; solve [Ba | -Bb] (y1,y2) = 0. *)
    let ba = cols_matrix a in
    let bb = cols_matrix b in
    let neg_bb =
      Mat.init ~rows:Mat.(rows bb) ~cols:(Mat.cols bb) (fun i j -> -Mat.get bb i j)
    in
    let combined = Mat.hstack ba neg_bb in
    let ka = dim a in
    let vectors =
      List.map
        (fun k ->
          let y1 = Vec.init ka (Vec.get k) in
          Mat.apply ba y1)
        (Mat.kernel combined)
    in
    of_basis ~dim:a.ambient vectors
  end

let solution_in h c l =
  if Mat.cols h <> l.ambient then invalid_arg "Subspace.solution_in: dimension";
  if Vec.is_zero c then Some (Vec.zero l.ambient)
  else if is_trivial l then None
  else begin
    let b = cols_matrix l in
    let hb = Mat.mul h b in
    match Mat.solve_rat hb c with
    | None -> None
    | Some y ->
        (* x = B y must be integral to be an iteration-space vector. *)
        let x =
          Array.init l.ambient (fun i ->
              let s = ref Rat.zero in
              List.iteri
                (fun j bj -> s := Rat.add !s (Rat.mul y.(j) (Rat.of_int (Vec.get bj i))))
                l.basis;
              !s)
        in
        if Array.for_all Rat.is_integer x then
          Some (Vec.make (Array.map Rat.to_int_exn x))
        else None
  end

let solvable_in h c l = Option.is_some (solution_in h c l)

let pp ppf t =
  if is_trivial t then Format.fprintf ppf "{0}^%d" t.ambient
  else
    Format.fprintf ppf "span{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Vec.pp)
      t.basis
