(** Integer vectors.

    Used for subscript constant vectors, dependence distances, unroll
    vectors and reuse-space basis vectors.  All operations are pure; the
    underlying array is never shared with the caller. *)

type t

val make : int array -> t
(** [make a] copies [a]. *)

val of_list : int list -> t
val init : int -> (int -> int) -> t
val zero : int -> t

val unit : int -> int -> t
(** [unit n i] is the [n]-dimensional standard basis vector [e_i]
    (0-indexed). *)

val dim : t -> int
val get : t -> int -> int
val to_array : t -> int array
val to_list : t -> int list

val set : t -> int -> int -> t
(** Functional update. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val dot : t -> t -> int

val is_zero : t -> bool
val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic order from component 0 (outermost loop first), matching
    the paper's ordering of set leaders. *)

val compare_pointwise : t -> t -> int option
(** Componentwise partial order: [Some 0] if equal, [Some (-1)] if
    [a <= b] pointwise, [Some 1] if [a >= b] pointwise, [None] if
    incomparable. *)

val leq_pointwise : t -> t -> bool
(** [leq_pointwise a b] is [a.(i) <= b.(i)] for every component. *)

val map2 : (int -> int -> int) -> t -> t -> t
val map : (int -> int) -> t -> t
val exists : (int -> bool) -> t -> bool
val for_all : (int -> bool) -> t -> bool
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val pp : Format.formatter -> t -> unit
val to_string : t -> string
