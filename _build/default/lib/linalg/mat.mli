(** Integer matrices and exact linear-system solving.

    An access matrix [H] maps iteration vectors to array-subscript
    vectors ([rows] = array dimensions, [cols] = loop-nest depth).
    Elimination is performed exactly over rationals ({!Rat}); kernel
    bases are rescaled to primitive integer vectors. *)

type t

val of_rows : int array array -> t
(** [of_rows rows] builds a matrix from row vectors.  All rows must have
    the same length.  The arrays are copied. *)

val of_rows_list : int list list -> t
val init : rows:int -> cols:int -> (int -> int -> int) -> t
val zero : rows:int -> cols:int -> t
val identity : int -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> int
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val to_rows : t -> int array array

val equal : t -> t -> bool
val compare : t -> t -> int

val transpose : t -> t
val mul : t -> t -> t
val apply : t -> Vec.t -> Vec.t
(** [apply m v] is the matrix-vector product [m v]. *)

val zero_row : t -> int -> t
(** [zero_row m i] is [m] with row [i] replaced by zeros (used to build
    the self-spatial matrix [H_s] from [H]). *)

val zero_col : t -> int -> t
(** [zero_col m j] is [m] with column [j] replaced by zeros (used to
    remove a loop dimension from consideration). *)

val hstack : t -> t -> t
(** Horizontal concatenation; both must have the same number of rows. *)

val of_cols : Vec.t list -> int -> t
(** [of_cols vs dim] packs the vectors as columns; [dim] is the row count
    used when the list is empty. *)

val rank : t -> int

val kernel : t -> Vec.t list
(** Basis of the rational nullspace, rescaled to primitive integer
    vectors.  The empty list means the kernel is trivial. *)

val solve_rat : t -> Vec.t -> Rat.t array option
(** [solve_rat m c] is a rational solution of [m x = c] (free variables
    set to zero), or [None] if the system is inconsistent. *)

val solve_int : t -> Vec.t -> Vec.t option
(** An integer solution of [m x = c] with free variables zero, if the
    particular rational solution happens to be integral.  Complete for
    separable SIV access matrices (at most one non-zero per row and per
    column), which is the class the paper's algorithms operate on. *)

val row_space : t -> Vec.t list
(** Canonical basis of the row space: the non-zero rows of the reduced
    row echelon form, rescaled to primitive integer vectors.  Two
    matrices span the same row space iff their [row_space] lists are
    equal. *)

val is_separable_siv : t -> bool
(** At most one non-zero entry in every row and every column. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
