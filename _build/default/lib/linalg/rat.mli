(** Exact rational arithmetic over native integers.

    Values are kept in canonical form: the denominator is positive and
    [gcd (abs num) den = 1].  Native [int] (63-bit) precision is ample for
    the small matrices produced by loop-nest analysis; overflow would
    require subscript coefficients far outside any real program. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val is_zero : t -> bool
val is_integer : t -> bool

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val to_float : t -> float

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on division by zero. *)

val inv : t -> t
val abs : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int

val min : t -> t -> t
val max : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
