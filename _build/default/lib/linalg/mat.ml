type t = { nrows : int; ncols : int; data : int array array }

let of_rows rows =
  let nrows = Array.length rows in
  let ncols = if nrows = 0 then 0 else Array.length rows.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> ncols then invalid_arg "Mat.of_rows: ragged rows")
    rows;
  { nrows; ncols; data = Array.map Array.copy rows }

let of_rows_list rows = of_rows (Array.of_list (List.map Array.of_list rows))

let init ~rows ~cols f =
  { nrows = rows; ncols = cols; data = Array.init rows (fun i -> Array.init cols (f i)) }

let zero ~rows ~cols = init ~rows ~cols (fun _ _ -> 0)
let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1 else 0)

let rows t = t.nrows
let cols t = t.ncols
let get t i j = t.data.(i).(j)
let row t i = Vec.make t.data.(i)
let col t j = Vec.init t.nrows (fun i -> t.data.(i).(j))
let to_rows t = Array.map Array.copy t.data

let equal a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && Array.for_all2 (fun ra rb -> Array.for_all2 ( = ) ra rb) a.data b.data

let compare a b = Stdlib.compare (a.nrows, a.ncols, a.data) (b.nrows, b.ncols, b.data)

let transpose t = init ~rows:t.ncols ~cols:t.nrows (fun i j -> t.data.(j).(i))

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Mat.mul: dimension";
  init ~rows:a.nrows ~cols:b.ncols (fun i j ->
      let s = ref 0 in
      for k = 0 to a.ncols - 1 do
        s := !s + (a.data.(i).(k) * b.data.(k).(j))
      done;
      !s)

let apply t v =
  if Vec.dim v <> t.ncols then invalid_arg "Mat.apply: dimension";
  Vec.init t.nrows (fun i ->
      let s = ref 0 in
      for j = 0 to t.ncols - 1 do
        s := !s + (t.data.(i).(j) * Vec.get v j)
      done;
      !s)

let zero_row t i =
  let data = Array.map Array.copy t.data in
  data.(i) <- Array.make t.ncols 0;
  { t with data }

let zero_col t j =
  let data = Array.map Array.copy t.data in
  Array.iter (fun r -> r.(j) <- 0) data;
  { t with data }

let hstack a b =
  if a.nrows <> b.nrows then invalid_arg "Mat.hstack: row count";
  init ~rows:a.nrows ~cols:(a.ncols + b.ncols) (fun i j ->
      if j < a.ncols then a.data.(i).(j) else b.data.(i).(j - a.ncols))

let of_cols vs dim =
  let ncols = List.length vs in
  let arr = Array.of_list vs in
  Array.iter (fun v -> if Vec.dim v <> dim then invalid_arg "Mat.of_cols: dimension") arr;
  init ~rows:dim ~cols:ncols (fun i j -> Vec.get arr.(j) i)

(* Reduced row echelon form over rationals.  Returns the reduced matrix
   and the pivot column of each pivot row. *)
let rref_rat (m : Rat.t array array) : Rat.t array array * int array =
  let nrows = Array.length m in
  let ncols = if nrows = 0 then 0 else Array.length m.(0) in
  let a = Array.map Array.copy m in
  let pivots = ref [] in
  let r = ref 0 in
  for c = 0 to ncols - 1 do
    if !r < nrows then begin
      (* Find a non-zero pivot in column c at or below row !r. *)
      let piv = ref (-1) in
      (try
         for i = !r to nrows - 1 do
           if not (Rat.is_zero a.(i).(c)) then begin
             piv := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !piv >= 0 then begin
        let tmp = a.(!r) in
        a.(!r) <- a.(!piv);
        a.(!piv) <- tmp;
        let inv = Rat.inv a.(!r).(c) in
        a.(!r) <- Array.map (fun x -> Rat.mul x inv) a.(!r);
        for i = 0 to nrows - 1 do
          if i <> !r && not (Rat.is_zero a.(i).(c)) then begin
            let f = a.(i).(c) in
            for j = 0 to ncols - 1 do
              a.(i).(j) <- Rat.sub a.(i).(j) (Rat.mul f a.(!r).(j))
            done
          end
        done;
        pivots := c :: !pivots;
        incr r
      end
    end
  done;
  (a, Array.of_list (List.rev !pivots))

let to_rat t = Array.map (Array.map Rat.of_int) t.data

let rank t =
  let _, pivots = rref_rat (to_rat t) in
  Array.length pivots

(* Rescale a rational vector to a primitive integer vector. *)
let primitive_int (v : Rat.t array) : Vec.t =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let l =
    Array.fold_left
      (fun acc x ->
        let d = Rat.den x in
        acc / gcd acc d * d)
      1 v
  in
  let ints = Array.map (fun x -> Rat.to_int_exn (Rat.mul x (Rat.of_int l))) v in
  let g = Array.fold_left (fun acc x -> gcd acc (abs x)) 0 ints in
  let g = if g = 0 then 1 else g in
  Vec.make (Array.map (fun x -> x / g) ints)

let kernel t =
  if t.ncols = 0 then []
  else begin
    let a, pivots = rref_rat (to_rat t) in
    let is_pivot = Array.make t.ncols false in
    Array.iter (fun c -> is_pivot.(c) <- true) pivots;
    let basis = ref [] in
    for free = t.ncols - 1 downto 0 do
      if not is_pivot.(free) then begin
        let v = Array.make t.ncols Rat.zero in
        v.(free) <- Rat.one;
        Array.iteri
          (fun prow pcol -> v.(pcol) <- Rat.neg a.(prow).(free))
          pivots;
        basis := primitive_int v :: !basis
      end
    done;
    !basis
  end

let solve_rat t c =
  if Vec.dim c <> t.nrows then invalid_arg "Mat.solve_rat: dimension";
  let aug =
    Array.init t.nrows (fun i ->
        Array.init (t.ncols + 1) (fun j ->
            if j < t.ncols then Rat.of_int t.data.(i).(j)
            else Rat.of_int (Vec.get c i)))
  in
  let a, pivots = rref_rat aug in
  if Array.exists (fun p -> p = t.ncols) pivots then None
  else begin
    let x = Array.make t.ncols Rat.zero in
    Array.iteri (fun prow pcol -> x.(pcol) <- a.(prow).(t.ncols)) pivots;
    Some x
  end

let solve_int t c =
  match solve_rat t c with
  | None -> None
  | Some x ->
      if Array.for_all Rat.is_integer x then
        Some (Vec.make (Array.map Rat.to_int_exn x))
      else None

let row_space t =
  let a, pivots = rref_rat (to_rat t) in
  List.init (Array.length pivots) (fun i -> primitive_int a.(i))

let is_separable_siv t =
  let row_ok r = Array.fold_left (fun n x -> if x <> 0 then n + 1 else n) 0 r <= 1 in
  Array.for_all row_ok t.data
  &&
  let cols_count = Array.make t.ncols 0 in
  Array.iter
    (fun r -> Array.iteri (fun j x -> if x <> 0 then cols_count.(j) <- cols_count.(j) + 1) r)
    t.data;
  Array.for_all (fun n -> n <= 1) cols_count

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i r ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           Format.pp_print_int)
        (Array.to_list r))
    t.data;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
