lib/linalg/rat.ml: Format Stdlib
