lib/linalg/subspace.ml: Array Format List Mat Option Rat Vec
