(** Loop-body statements: assignments to array elements or scalars. *)

type lhs = Array_elt of Aref.t | Scalar_var of string

type t = { lhs : lhs; rhs : Expr.t }

val assign : lhs -> Expr.t -> t
val store : Aref.t -> Expr.t -> t
val set_scalar : string -> Expr.t -> t

val flops : t -> int

val writes : t -> Aref.t list
(** The array reference written, if any (singleton or empty list). *)

val reads : t -> Aref.t list

val shift : t -> int array -> t
(** Body copy at iteration offset [o]: both sides shifted. *)

val map_refs : (Aref.t -> Aref.t) -> t -> t

val equal : t -> t -> bool
val pp : var_name:(int -> string) -> Format.formatter -> t -> unit
