(** A single DO loop header.

    Bounds are affine in the indices of *enclosing* loops, which covers
    the triangular nests of the evaluation suite.  Steps are positive
    constants. *)

type t = { var : string; level : int; lo : Affine.t; hi : Affine.t; step : int }

val make : var:string -> level:int -> lo:Affine.t -> hi:Affine.t -> step:int -> t
val make_const : var:string -> level:int -> depth:int -> lo:int -> hi:int -> ?step:int -> unit -> t

val trip_const : t -> int option
(** Trip count when both bounds are constants. *)

val with_step : t -> int -> t
val pp : Format.formatter -> t -> unit
