lib/ir/affine.ml: Array Format Stdlib String
