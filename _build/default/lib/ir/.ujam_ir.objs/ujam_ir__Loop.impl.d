lib/ir/loop.ml: Affine Format Printf
