lib/ir/build.ml: Affine Aref Expr Loop Nest Stmt
