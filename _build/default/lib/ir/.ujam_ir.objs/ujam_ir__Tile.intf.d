lib/ir/tile.mli: Nest
