lib/ir/unroll.ml: Array Fun List Loop Nest Stmt Ujam_linalg Vec
