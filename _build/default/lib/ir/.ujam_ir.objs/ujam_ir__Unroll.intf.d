lib/ir/unroll.mli: Nest Ujam_linalg
