lib/ir/interchange.mli: Nest
