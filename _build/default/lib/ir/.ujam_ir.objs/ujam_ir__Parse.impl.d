lib/ir/parse.ml: Affine Aref Expr Format List Loop Nest Option Stmt String
