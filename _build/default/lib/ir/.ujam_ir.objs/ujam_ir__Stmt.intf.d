lib/ir/stmt.mli: Aref Expr Format
