lib/ir/site.mli: Aref Format Nest
