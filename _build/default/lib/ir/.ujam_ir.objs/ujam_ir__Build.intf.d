lib/ir/build.mli: Affine Aref Expr Loop Nest Stmt
