lib/ir/expr.ml: Aref Float Format List String
