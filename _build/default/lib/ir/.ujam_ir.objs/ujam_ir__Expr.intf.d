lib/ir/expr.mli: Aref Format
