lib/ir/tile.ml: Affine Aref Array Fun Interchange List Loop Nest Stmt
