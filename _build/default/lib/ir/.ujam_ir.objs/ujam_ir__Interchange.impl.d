lib/ir/interchange.ml: Affine Aref Array Fun List Loop Nest Stmt
