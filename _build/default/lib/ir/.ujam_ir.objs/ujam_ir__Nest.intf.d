lib/ir/nest.mli: Aref Format Loop Stmt
