lib/ir/aref.ml: Affine Array Format Mat Stdlib String Ujam_linalg Vec
