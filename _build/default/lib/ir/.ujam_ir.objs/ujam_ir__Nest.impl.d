lib/ir/nest.ml: Affine Aref Array Format List Loop Option Printf Stmt String
