lib/ir/stmt.ml: Aref Expr Format String
