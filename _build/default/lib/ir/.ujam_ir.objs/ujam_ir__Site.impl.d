lib/ir/site.ml: Aref Format List Nest Stmt
