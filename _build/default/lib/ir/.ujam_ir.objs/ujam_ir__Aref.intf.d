lib/ir/aref.mli: Affine Format Ujam_linalg
