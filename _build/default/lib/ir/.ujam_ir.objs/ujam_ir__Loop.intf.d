lib/ir/loop.mli: Affine Format
