lib/ir/parse.mli: Format Nest
