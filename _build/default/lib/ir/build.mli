(** Combinators for writing kernels concisely.

    Typical use (matrix multiply, JIK order):
    {[
      let open Ujam_ir.Build in
      let d = 3 in
      let j = var d 0 and i = var d 1 and k = var d 2 in
      nest "mmjik"
        [ loop d "J" ~level:0 ~lo:1 ~hi:n;
          loop d "I" ~level:1 ~lo:1 ~hi:n;
          loop d "K" ~level:2 ~lo:1 ~hi:n ]
        [ aref "C" [ i; j ] <<- rd "C" [ i; j ] +: (rd "A" [ i; k ] *: rd "B" [ k; j ]) ]
    ]} *)

val var : int -> int -> Affine.t
(** [var depth level] is the loop index at [level]. *)

val cst : int -> int -> Affine.t
(** [cst depth v] is the constant subscript [v]. *)

val ( +$ ) : Affine.t -> int -> Affine.t
val ( -$ ) : Affine.t -> int -> Affine.t
val ( *$ ) : int -> Affine.t -> Affine.t
val ( ++$ ) : Affine.t -> Affine.t -> Affine.t

val f : float -> Expr.t
val s : string -> Expr.t
val rd : string -> Affine.t list -> Expr.t
val aref : string -> Affine.t list -> Aref.t

val ( +: ) : Expr.t -> Expr.t -> Expr.t
val ( -: ) : Expr.t -> Expr.t -> Expr.t
val ( *: ) : Expr.t -> Expr.t -> Expr.t
val ( /: ) : Expr.t -> Expr.t -> Expr.t

val ( <<- ) : Aref.t -> Expr.t -> Stmt.t
val ( <<~ ) : string -> Expr.t -> Stmt.t

val loop : int -> string -> level:int -> lo:int -> hi:int -> ?step:int -> unit -> Loop.t
val loop_aff : string -> level:int -> lo:Affine.t -> hi:Affine.t -> ?step:int -> unit -> Loop.t
val nest : string -> Loop.t list -> Stmt.t list -> Nest.t
