type kind = Read | Write

type t = { id : int; stmt : int; kind : kind; ref_ : Aref.t }

let of_nest nest =
  let next = ref 0 in
  let fresh stmt kind ref_ =
    let id = !next in
    incr next;
    { id; stmt; kind; ref_ }
  in
  List.concat
    (List.mapi
       (fun si s ->
         (* Evaluation order matters: ids must follow list order. *)
         let reads = List.map (fresh si Read) (Stmt.reads s) in
         let writes = List.map (fresh si Write) (Stmt.writes s) in
         reads @ writes)
       (Nest.body nest))

let is_write t = t.kind = Write

let pp ~var_name ppf t =
  Format.fprintf ppf "%s%a#%d"
    (match t.kind with Read -> "r:" | Write -> "w:")
    (Aref.pp ~var_name) t.ref_ t.stmt
