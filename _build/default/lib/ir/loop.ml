type t = { var : string; level : int; lo : Affine.t; hi : Affine.t; step : int }

let make ~var ~level ~lo ~hi ~step =
  if step <= 0 then invalid_arg "Loop.make: step must be positive";
  (* Bounds may only mention outer loops. *)
  let check b =
    for k = level to Affine.depth b - 1 do
      if Affine.uses_level b k then invalid_arg "Loop.make: bound uses inner index"
    done
  in
  check lo;
  check hi;
  { var; level; lo; hi; step }

let make_const ~var ~level ~depth ~lo ~hi ?(step = 1) () =
  make ~var ~level ~lo:(Affine.const ~depth lo) ~hi:(Affine.const ~depth hi) ~step

let trip_const t =
  if Affine.is_constant t.lo && Affine.is_constant t.hi then begin
    let lo = t.lo.Affine.const and hi = t.hi.Affine.const in
    if hi < lo then Some 0 else Some (((hi - lo) / t.step) + 1)
  end
  else None

let with_step t step =
  if step <= 0 then invalid_arg "Loop.with_step: step must be positive";
  { t with step }

let pp ppf t =
  let var_name _ = "?" in
  Format.fprintf ppf "DO %s = %a, %a%s" t.var
    (Affine.pp ~var_name) t.lo (Affine.pp ~var_name) t.hi
    (if t.step = 1 then "" else Printf.sprintf ", %d" t.step)
