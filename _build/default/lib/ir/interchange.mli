(** Loop interchange / permutation of a perfect nest.

    [apply nest perm] reorders the loops so that new level [k] runs the
    loop that was at level [perm.(k)]; subscripts and bounds are
    rewritten accordingly.  The permutation must keep every loop bound's
    dependence on outer loops intact (a triangular loop cannot move
    above the loop its bound mentions).

    Legality with respect to data dependences is a separate question —
    see {!Ujam_depend.Safety.legal_permutation} — because the IR layer
    does not know about dependences. *)

val apply : Nest.t -> int array -> Nest.t
(** @raise Invalid_argument if [perm] is not a permutation of the levels
    or a bound would refer to an inner loop after reordering. *)

val permutations : int -> int array list
(** All permutations of [0..n-1], innermost-last convention. *)
