(** Reference sites: array references paired with their textual position
    in the nest body.

    Dependence and reuse analysis both need to distinguish two textually
    distinct occurrences of the same reference (e.g. the load and store
    of [A(I) = A(I) + ...]), so sites carry a stable id: statement index,
    then reads left-to-right, then the write. *)

type kind = Read | Write

type t = { id : int; stmt : int; kind : kind; ref_ : Aref.t }

val of_nest : Nest.t -> t list
(** All sites in textual order; ids are dense from 0. *)

val is_write : t -> bool
val pp : var_name:(int -> string) -> Format.formatter -> t -> unit
