(** Right-hand-side expressions of loop-body statements.

    Expressions are floating-point computations over array reads,
    loop-invariant scalars and literals.  Each binary operation counts as
    one floating-point operation for balance purposes; negation is folded
    into instruction selection and is free. *)

type binop = Add | Sub | Mul | Div

type t =
  | Const of float
  | Scalar of string
  | Read of Aref.t
  | Neg of t
  | Bin of binop * t * t

val flops : t -> int
(** Number of floating-point operations (binary ops). *)

val reads : t -> Aref.t list
(** Array reads in left-to-right textual order, duplicates preserved. *)

val scalars : t -> string list

val map_refs : (Aref.t -> Aref.t) -> t -> t
val substitute : (Aref.t -> t option) -> t -> t
(** [substitute f e] replaces each read [r] with [v] when [f r = Some v]
    (used by scalar replacement). *)

val shift : t -> int array -> t
(** Shift every array reference by the iteration offset. *)

val equal : t -> t -> bool
val pp : var_name:(int -> string) -> Format.formatter -> t -> unit

val pp_binop : Format.formatter -> binop -> unit
