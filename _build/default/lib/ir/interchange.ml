let is_permutation perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  Array.for_all
    (fun p ->
      p >= 0 && p < n
      &&
      if seen.(p) then false
      else begin
        seen.(p) <- true;
        true
      end)
    perm

(* coefficient vectors are indexed by old levels; new level k holds old
   level perm.(k), so new_coefs.(k) = old_coefs.(perm.(k)) *)
let permute_affine perm (a : Affine.t) =
  { a with Affine.coefs = Array.map (fun old -> a.Affine.coefs.(old)) perm }

let apply nest perm =
  let d = Nest.depth nest in
  if Array.length perm <> d || not (is_permutation perm) then
    invalid_arg "Interchange.apply: not a permutation of the nest levels";
  let old_loops = Nest.loops nest in
  let loops =
    Array.to_list
      (Array.mapi
         (fun k old ->
           let l = old_loops.(old) in
           let lo = permute_affine perm l.Loop.lo in
           let hi = permute_affine perm l.Loop.hi in
           (* Loop.make re-checks that bounds only mention outer levels *)
           try Loop.make ~var:l.Loop.var ~level:k ~lo ~hi ~step:l.Loop.step
           with Invalid_argument _ ->
             invalid_arg
               "Interchange.apply: a loop bound would refer to an inner loop")
         perm)
  in
  let permute_ref (r : Aref.t) =
    { r with Aref.subs = Array.map (permute_affine perm) r.Aref.subs }
  in
  let body = List.map (Stmt.map_refs permute_ref) (Nest.body nest) in
  Nest.make ~name:(Nest.name nest) ~loops ~body

let permutations n =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: rest as l -> (x :: l) :: List.map (fun r -> y :: r) (insert x rest)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: rest -> List.concat_map (insert x) (perms rest)
  in
  List.map Array.of_list (perms (List.init n Fun.id))
