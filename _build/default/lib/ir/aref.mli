(** Array references with affine subscripts.

    A reference [A(f_1(i), ..., f_m(i))] is captured by its base name and
    one affine subscript per array dimension.  Following the paper (and
    Fortran column-major layout) subscript 0 is the memory-contiguous
    dimension.  The access matrix [H] (rows = array dims, columns = loop
    levels) and constant vector [c] of the Wolf–Lam model are derived
    views of the subscripts: two references are *uniformly generated*
    when their base names and [H] matrices coincide. *)

type t = { base : string; subs : Affine.t array }

val make : string -> Affine.t list -> t
val base : t -> string
val rank : t -> int
(** Number of array dimensions. *)

val depth : t -> int
(** Loop-nest depth the subscripts are expressed over. *)

val h_matrix : t -> Ujam_linalg.Mat.t
val c_vector : t -> Ujam_linalg.Vec.t

val shift : t -> int array -> t
(** Reference produced for the body copy at iteration offset [o]
    (constant vector becomes [c + H o]). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val uses_level : t -> int -> bool
val is_separable_siv : t -> bool
(** Each subscript uses at most one induction variable and each induction
    variable appears in at most one subscript (Sec. 3.5). *)

val pp : var_name:(int -> string) -> Format.formatter -> t -> unit
