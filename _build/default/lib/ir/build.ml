let var depth level = Affine.var ~depth level
let cst depth v = Affine.const ~depth v

let ( +$ ) a c = Affine.add_const a c
let ( -$ ) a c = Affine.add_const a (-c)
let ( *$ ) k a = Affine.scale k a
let ( ++$ ) = Affine.add

let f x = Expr.Const x
let s name = Expr.Scalar name
let aref base subs = Aref.make base subs
let rd base subs = Expr.Read (aref base subs)

let ( +: ) a b = Expr.Bin (Expr.Add, a, b)
let ( -: ) a b = Expr.Bin (Expr.Sub, a, b)
let ( *: ) a b = Expr.Bin (Expr.Mul, a, b)
let ( /: ) a b = Expr.Bin (Expr.Div, a, b)

let ( <<- ) r e = Stmt.store r e
let ( <<~ ) name e = Stmt.set_scalar name e

let loop depth v ~level ~lo ~hi ?(step = 1) () =
  Loop.make_const ~var:v ~level ~depth ~lo ~hi ~step ()

let loop_aff v ~level ~lo ~hi ?(step = 1) () = Loop.make ~var:v ~level ~lo ~hi ~step

let nest name loops body = Nest.make ~name ~loops ~body
