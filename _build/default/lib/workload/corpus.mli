(** The Table 1 experiment: input-dependence share of routine dependence
    graphs over a corpus. *)

type routine_stats = {
  name : string;
  stats : Ujam_depend.Stats.t;  (** summed over the routine's nests *)
}

type report = {
  routines : int;                (** corpus size *)
  with_deps : int;               (** routines that have any dependences *)
  total_deps : int;
  total_input : int;
  mean_input_fraction : float;   (** mean over routines with dependences *)
  stddev_input_fraction : float;
  mean_input_count : float;
  buckets : (string * int) list; (** Table 1 rows *)
}

val analyze_routine : Generator.routine -> routine_stats

val measure : Generator.routine list -> report
(** Routines without dependences are excluded from per-routine means,
    exactly as in the paper. *)

val table1_buckets : (string * (float -> bool)) list
(** The paper's bucket boundaries: 0%, 1–32%, 33–39%, …, 90–100%. *)

val pp : Format.formatter -> report -> unit
