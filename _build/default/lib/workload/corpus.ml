open Ujam_depend

type routine_stats = { name : string; stats : Stats.t }

type report = {
  routines : int;
  with_deps : int;
  total_deps : int;
  total_input : int;
  mean_input_fraction : float;
  stddev_input_fraction : float;
  mean_input_count : float;
  buckets : (string * int) list;
}

let analyze_routine (r : Generator.routine) =
  let stats =
    List.fold_left
      (fun acc nest -> Stats.add acc (Stats.of_graph (Graph.build ~include_input:true nest)))
      Stats.zero r.Generator.nests
  in
  { name = r.Generator.name; stats }

let table1_buckets =
  [ ("0%", fun p -> p = 0.0);
    ("1%-32%", fun p -> p > 0.0 && p < 1.0 /. 3.0);
    ("33%-39%", fun p -> p >= 1.0 /. 3.0 && p < 0.40);
    ("40%-49%", fun p -> p >= 0.40 && p < 0.50);
    ("50%-59%", fun p -> p >= 0.50 && p < 0.60);
    ("60%-69%", fun p -> p >= 0.60 && p < 0.70);
    ("70%-79%", fun p -> p >= 0.70 && p < 0.80);
    ("80%-89%", fun p -> p >= 0.80 && p < 0.90);
    ("90%-100%", fun p -> p >= 0.90) ]

let measure routines =
  let all = List.map analyze_routine routines in
  let with_deps = List.filter (fun r -> Stats.total r.stats > 0) all in
  let fractions =
    List.map (fun r -> Option.get (Stats.input_fraction r.stats)) with_deps
  in
  let n = List.length with_deps in
  let mean xs =
    if xs = [] then 0.0
    else List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let mean_frac = mean fractions in
  let stddev =
    if n <= 1 then 0.0
    else
      sqrt
        (List.fold_left (fun acc x -> acc +. ((x -. mean_frac) ** 2.0)) 0.0 fractions
        /. float_of_int n)
  in
  let total_deps = List.fold_left (fun acc r -> acc + Stats.total r.stats) 0 with_deps in
  let total_input =
    List.fold_left (fun acc r -> acc + r.stats.Stats.input) 0 with_deps
  in
  let buckets =
    List.map
      (fun (label, pred) ->
        (label, List.length (List.filter pred fractions)))
      table1_buckets
  in
  { routines = List.length all;
    with_deps = n;
    total_deps;
    total_input;
    mean_input_fraction = mean_frac;
    stddev_input_fraction = stddev;
    mean_input_count =
      mean (List.map (fun r -> float_of_int r.stats.Stats.input) with_deps);
    buckets }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>corpus: %d routines, %d with dependences@,\
     dependences: %d total, %d input (%.1f%% of all)@,\
     per-routine input share: mean %.1f%% (stddev %.1f), mean count %.1f@,\
     %-10s %s@,"
    r.routines r.with_deps r.total_deps r.total_input
    (100.0 *. float_of_int r.total_input /. float_of_int (max 1 r.total_deps))
    (100.0 *. r.mean_input_fraction)
    (100.0 *. r.stddev_input_fraction)
    r.mean_input_count "Range" "Number of Routines";
  List.iter
    (fun (label, count) -> Format.fprintf ppf "%-10s %d@," label count)
    r.buckets;
  Format.fprintf ppf "@]"
