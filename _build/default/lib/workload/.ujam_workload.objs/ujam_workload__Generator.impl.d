lib/workload/generator.ml: Affine Aref Array Expr Fun List Loop Nest Printf Random Stmt Ujam_ir
