lib/workload/generator.mli: Random Ujam_ir
