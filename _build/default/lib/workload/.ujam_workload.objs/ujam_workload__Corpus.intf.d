lib/workload/corpus.mli: Format Generator Ujam_depend
