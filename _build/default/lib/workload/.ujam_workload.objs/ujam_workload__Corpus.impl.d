lib/workload/corpus.ml: Format Generator Graph List Option Stats Ujam_depend
