(** Seeded synthetic routine generator for the Table 1 corpus.

    The paper measured 1187 SPEC92 / Perfect / NAS / local routines; the
    originals are not redistributable, so this generator emits loop nests
    whose reference-pattern mix follows array-heavy scientific Fortran:
    stencils with small constant offsets, reductions over lower-dimension
    arrays, dense linear-algebra accesses (transposed and coefficient-2
    subscripts included), loop-invariant references, and a share of
    routines with no array reuse at all (the paper, too, found 538 of its
    1187 routines dependence-free).  Everything is driven by a seed, so
    the corpus is reproducible. *)

type routine = { name : string; nests : Ujam_ir.Nest.t list }

val routine : Random.State.t -> int -> routine
(** [routine st idx] generates one routine. *)

val corpus : ?seed:int -> count:int -> unit -> routine list
(** [count] routines from the given [seed] (default 1997). *)
