open Ujam_linalg

let spatial_matrix h = if Mat.rows h = 0 then h else Mat.zero_row h 0

let kernel_space h = Subspace.of_basis ~dim:(Mat.cols h) (Mat.kernel h)

let self_temporal h = kernel_space h
let self_spatial h = kernel_space (spatial_matrix h)

let has_self_temporal ~localized h =
  not (Subspace.is_trivial (Subspace.intersect (self_temporal h) localized))

let has_self_spatial ~localized h =
  let st = Subspace.intersect (self_temporal h) localized in
  let ss = Subspace.intersect (self_spatial h) localized in
  Subspace.dim ss > Subspace.dim st
