open Ujam_linalg
open Ujam_ir

type t = { base : string; h : Mat.t; members : Site.t list }

let partition sites =
  let groups : (string * Mat.t, Site.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Site.t) ->
      let key = (Aref.base s.Site.ref_, Aref.h_matrix s.Site.ref_) in
      match Hashtbl.find_opt groups key with
      | Some cell -> cell := s :: !cell
      | None ->
          Hashtbl.add groups key (ref [ s ]);
          order := key :: !order)
    sites;
  List.rev_map
    (fun ((base, h) as key) ->
      { base; h; members = List.rev !(Hashtbl.find groups key) })
    !order

let of_nest nest = partition (Site.of_nest nest)

let leaders t =
  let cmp (a : Site.t) (b : Site.t) =
    Vec.compare (Aref.c_vector a.Site.ref_) (Aref.c_vector b.Site.ref_)
  in
  let sorted = List.stable_sort cmp t.members in
  let rec dedup = function
    | a :: b :: rest when cmp a b = 0 -> dedup (a :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

let constant_vectors t = List.map (fun (s : Site.t) -> Aref.c_vector s.Site.ref_) (leaders t)

let is_separable_siv t = Mat.is_separable_siv t.h

let pp ~var_name ppf t =
  Format.fprintf ppf "@[<v>UGS %s, |members|=%d@,H=@,%a@,members: %a@]" t.base
    (List.length t.members) Mat.pp t.h
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (Site.pp ~var_name))
    t.members
