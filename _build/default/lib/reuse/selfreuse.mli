(** Self-temporal and self-spatial reuse vector spaces (Wolf–Lam).

    A reference with access matrix [H] touches the same address at
    iterations [i] and [i + r] exactly when [H r = 0]: the self-temporal
    space is [ker H].  Zeroing the row of the memory-contiguous array
    dimension (row 0, Fortran column-major) yields [H_s]; [ker H_s]
    additionally contains the directions that stay within an array
    column, i.e. within a cache line: the self-spatial space. *)

open Ujam_linalg

val spatial_matrix : Mat.t -> Mat.t
(** [H_s]: row 0 zeroed. *)

val self_temporal : Mat.t -> Subspace.t
val self_spatial : Mat.t -> Subspace.t

val has_self_temporal : localized:Subspace.t -> Mat.t -> bool
(** [ker H ∩ L] non-trivial: some localized loop revisits the address. *)

val has_self_spatial : localized:Subspace.t -> Mat.t -> bool
(** [ker H_s ∩ L] strictly larger than [ker H ∩ L]: some localized loop
    walks along a cache line without revisiting the address. *)
