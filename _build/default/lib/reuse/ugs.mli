(** Uniformly generated sets (Gannon–Jalby–Gallivan; Wolf–Lam).

    Two references belong to the same UGS when they name the same array
    and share the same access matrix [H]; they then differ only in their
    constant vectors, and all reuse among them is decided by linear
    algebra on [H] — no dependence edges required. *)

type t = {
  base : string;
  h : Ujam_linalg.Mat.t;
  members : Ujam_ir.Site.t list;  (** textual order *)
}

val partition : Ujam_ir.Site.t list -> t list
(** Partition sites into UGSs, preserving first-appearance order. *)

val of_nest : Ujam_ir.Nest.t -> t list

val leaders : t -> Ujam_ir.Site.t list
(** Members sorted by lexicographically increasing constant vector
    (duplicate constant vectors collapse to their first occurrence). *)

val constant_vectors : t -> Ujam_linalg.Vec.t list
(** Distinct constant vectors, lexicographically sorted. *)

val is_separable_siv : t -> bool
val pp : var_name:(int -> string) -> Format.formatter -> t -> unit
