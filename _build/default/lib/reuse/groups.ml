open Ujam_linalg
open Ujam_ir

type partition = { classes : Site.t list list }

let merges_temporal ~localized (u : Ugs.t) ~c1 ~c2 =
  Subspace.solvable_in u.Ugs.h (Vec.sub c1 c2) localized

let truncate_first c = Vec.set c 0 0

let merges_spatial ~localized (u : Ugs.t) ~c1 ~c2 =
  let hs = Selfreuse.spatial_matrix u.Ugs.h in
  Subspace.solvable_in hs (truncate_first (Vec.sub c1 c2)) localized

(* The merge predicates are equivalences on a UGS (solutions negate and
   add within the vector space), so a linear scan against class leaders
   suffices. *)
let partition_constants ~merges cs =
  let sorted = List.sort Vec.compare cs in
  let classes = ref [] in
  List.iter
    (fun c ->
      let rec place = function
        | [] -> classes := !classes @ [ ref [ c ] ]
        | cell :: rest ->
            let leader = List.hd !cell in
            if merges ~c1:c ~c2:leader then cell := !cell @ [ c ] else place rest
      in
      place !classes)
    sorted;
  List.map (fun cell -> !cell) !classes

let partition_sites ~merges (u : Ugs.t) =
  let sorted =
    List.stable_sort
      (fun (a : Site.t) (b : Site.t) ->
        Vec.compare (Aref.c_vector a.Site.ref_) (Aref.c_vector b.Site.ref_))
      u.Ugs.members
  in
  let classes : Site.t list ref list ref = ref [] in
  List.iter
    (fun (s : Site.t) ->
      let c = Aref.c_vector s.Site.ref_ in
      let rec place = function
        | [] -> classes := !classes @ [ ref [ s ] ]
        | cell :: rest ->
            let leader = List.hd !cell in
            if merges ~c1:c ~c2:(Aref.c_vector leader.Site.ref_) then
              cell := !cell @ [ s ]
            else place rest
      in
      place !classes)
    sorted;
  { classes = List.map (fun cell -> !cell) !classes }

let group_temporal ~localized u =
  partition_sites ~merges:(fun ~c1 ~c2 -> merges_temporal ~localized u ~c1 ~c2) u

let group_spatial ~localized u =
  partition_sites ~merges:(fun ~c1 ~c2 -> merges_spatial ~localized u ~c1 ~c2) u

let count p = List.length p.classes
let leaders p = List.map List.hd p.classes
