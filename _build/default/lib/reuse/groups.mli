(** Group-temporal and group-spatial partitions of a UGS.

    Within localized space [L], two members with constants [c1], [c2]
    have group-temporal reuse iff some integral [x] in [L] satisfies
    [H x = c1 - c2]; group-spatial reuse iff [H_s x = t(c1 - c2)] where
    both the matrix row and the difference component of the contiguous
    dimension are zeroed (they then walk the same cache lines).  Both
    relations are equivalences on a UGS, so they partition it. *)

open Ujam_linalg

type partition = {
  classes : Ujam_ir.Site.t list list;
      (** Each class sorted by lexicographic constant vector; classes
          sorted by their leader. *)
}

val group_temporal : localized:Subspace.t -> Ugs.t -> partition
val group_spatial : localized:Subspace.t -> Ugs.t -> partition

val count : partition -> int
val leaders : partition -> Ujam_ir.Site.t list

val merges_temporal : localized:Subspace.t -> Ugs.t -> c1:Vec.t -> c2:Vec.t -> bool
(** The pairwise group-temporal predicate on constant vectors. *)

val merges_spatial : localized:Subspace.t -> Ugs.t -> c1:Vec.t -> c2:Vec.t -> bool

val partition_constants :
  merges:(c1:Vec.t -> c2:Vec.t -> bool) -> Vec.t list -> Vec.t list list
(** Generic partition of constant vectors under a merge predicate;
    exposed for the unrolled-copy (brute-force) computations. *)
