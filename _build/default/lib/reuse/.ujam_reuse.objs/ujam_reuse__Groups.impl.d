lib/reuse/groups.ml: Aref List Selfreuse Site Subspace Ugs Ujam_ir Ujam_linalg Vec
