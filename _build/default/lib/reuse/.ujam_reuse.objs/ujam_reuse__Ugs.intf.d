lib/reuse/ugs.mli: Format Ujam_ir Ujam_linalg
