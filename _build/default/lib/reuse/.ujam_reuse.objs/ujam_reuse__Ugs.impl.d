lib/reuse/ugs.ml: Aref Format Hashtbl List Mat Site Ujam_ir Ujam_linalg Vec
