lib/reuse/groups.mli: Subspace Ugs Ujam_ir Ujam_linalg Vec
