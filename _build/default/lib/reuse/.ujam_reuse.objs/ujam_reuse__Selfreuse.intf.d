lib/reuse/selfreuse.mli: Mat Subspace Ujam_linalg
