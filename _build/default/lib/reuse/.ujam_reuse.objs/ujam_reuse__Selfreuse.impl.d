lib/reuse/selfreuse.ml: Mat Subspace Ujam_linalg
