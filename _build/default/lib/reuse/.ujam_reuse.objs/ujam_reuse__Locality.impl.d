lib/reuse/locality.ml: Float Format Groups List Nest Selfreuse Subspace Ugs Ujam_ir Ujam_linalg
