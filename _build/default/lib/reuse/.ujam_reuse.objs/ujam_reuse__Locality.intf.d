lib/reuse/locality.mli: Format Subspace Ugs Ujam_ir Ujam_linalg
