(** The dependence-based reuse model — the prior art of [Carr PACT'96]
    that the paper's UGS model replaces.

    All reuse information is derived from the dependence graph *including
    input dependences*: group-temporal structure from edges whose
    distance is zero outside the innermost loop, group-spatial structure
    from the same test on line-truncated references, innermost invariance
    from self input dependences.  To evaluate a candidate unroll vector,
    the unrolled body is materialised and its graph rebuilt — the cost
    (and the input-dependence storage) the paper's tables eliminate.

    On separable-SIV nests the dependence distances solve exactly the
    linear systems the UGS model solves, so both models compute the same
    streams; the test suite and the [ablation-model] bench check this. *)

open Ujam_linalg

val metrics : machine:Ujam_machine.Machine.t -> Ujam_ir.Nest.t -> Vec.t -> Bruteforce.metrics

val best :
  cache:bool ->
  machine:Ujam_machine.Machine.t ->
  Unroll_space.t ->
  Ujam_ir.Nest.t ->
  Vec.t * Bruteforce.metrics

val graph_cost : Ujam_ir.Nest.t -> Vec.t -> int * int
(** [(with_input, without_input)]: dependence-edge counts for the body
    unrolled by [u] — the storage comparison of Table 1 at the loop
    level. *)
