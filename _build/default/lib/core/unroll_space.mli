(** The bounded unroll space [%U] and dense tables over it.

    An unroll vector gives the number of *extra* body copies per loop
    level; the innermost level is never unrolled, so its bound is 0.
    The space is the pointwise box [0 <= u <= bounds].  Tables indexed by
    unroll vectors are the paper's central data structure: they are
    filled once from the UGS structure and then answer every candidate
    [u] during the search. *)

open Ujam_linalg

type t

val make : bounds:int array -> t
(** @raise Invalid_argument if any bound is negative or the last bound is
    non-zero. *)

val uniform : depth:int -> bound:int -> unroll_levels:int list -> t
(** Bound [bound] on each level in [unroll_levels], 0 elsewhere. *)

val depth : t -> int
val bounds : t -> int array
val card : t -> int
val mem : t -> Vec.t -> bool
val unroll_levels : t -> int list
(** Levels with a non-zero bound. *)

val iter : t -> (Vec.t -> unit) -> unit
(** Lexicographic enumeration of all vectors in the space. *)

val vectors : t -> Vec.t list

module Table : sig
  type space = t
  type t

  val create : space -> int -> t
  val space : t -> space
  val get : t -> Vec.t -> int
  val set : t -> Vec.t -> int -> unit
  val add : t -> Vec.t -> int -> unit

  val add_from : t -> Vec.t -> int -> unit
  (** [add_from t lo delta] adds [delta] at every [u >= lo] pointwise. *)

  val add_region : t -> from_:Vec.t -> excluding:Vec.t option -> int -> unit
  (** Adds on [{u >= from_} \ {u >= excluding}]: the paper's "between the
      newly computed merge point and the previous superleader's". *)

  val prefix_sum : t -> Vec.t -> int
  (** [sum over 0 <= u' <= u of t[u']] — the paper's [Sum] function. *)

  val merge_add : t -> t -> t
  (** Pointwise sum; spaces must agree. *)

  val to_alist : t -> (Vec.t * int) list
end
