lib/core/search.mli: Balance Ujam_linalg Vec
