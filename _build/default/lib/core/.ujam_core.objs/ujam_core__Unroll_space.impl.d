lib/core/unroll_space.ml: Array List Ujam_linalg Vec
