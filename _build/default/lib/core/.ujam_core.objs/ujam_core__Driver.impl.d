lib/core/driver.ml: Array Balance Float Format List Machine Nest Printf Scalar_replace Search String Ujam_depend Ujam_ir Ujam_linalg Ujam_machine Ujam_reuse Unroll Unroll_space Vec
