lib/core/scalar_replace.mli: Format Streams Ujam_ir
