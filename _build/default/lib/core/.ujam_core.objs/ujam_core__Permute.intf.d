lib/core/permute.mli: Driver Ujam_ir Ujam_machine
