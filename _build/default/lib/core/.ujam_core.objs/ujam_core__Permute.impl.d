lib/core/permute.ml: Array Driver Fun Interchange Machine Nest Ujam_depend Ujam_ir Ujam_machine Ujam_reuse
