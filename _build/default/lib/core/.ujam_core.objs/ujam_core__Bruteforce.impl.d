lib/core/bruteforce.ml: Float Locality Machine Nest Streams Subspace Ujam_ir Ujam_linalg Ujam_machine Ujam_reuse Unroll Unroll_space Vec
