lib/core/scalar_replace.ml: Aref Array Expr Format Hashtbl List Loop Nest Option Printf Site Stmt Streams Subspace Ujam_ir Ujam_linalg
