lib/core/balance.mli: Ujam_ir Ujam_linalg Ujam_machine Unroll_space Vec
