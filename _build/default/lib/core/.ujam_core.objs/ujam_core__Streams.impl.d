lib/core/streams.ml: Aref Array Groups List Mat Selfreuse Site Solvers Subspace Ugs Ujam_ir Ujam_linalg Ujam_reuse Unroll_space Vec
