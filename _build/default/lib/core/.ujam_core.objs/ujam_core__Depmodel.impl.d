lib/core/depmodel.ml: Affine Aref Array Bruteforce Depvec Float Fun Graph Hashtbl List Machine Nest Queue Site Stmt Streams Ujam_depend Ujam_ir Ujam_linalg Ujam_machine Unroll Unroll_space Vec
