lib/core/search.ml: Balance Float Ujam_linalg Ujam_machine Unroll_space Vec
