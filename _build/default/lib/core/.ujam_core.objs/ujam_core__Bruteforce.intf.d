lib/core/bruteforce.mli: Ujam_ir Ujam_linalg Ujam_machine Unroll_space Vec
