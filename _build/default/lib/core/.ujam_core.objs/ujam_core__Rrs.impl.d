lib/core/rrs.ml: Aref Array List Mat Option Site Solvers Streams String Subspace Ugs Ujam_ir Ujam_linalg Ujam_reuse Unroll_space Vec
