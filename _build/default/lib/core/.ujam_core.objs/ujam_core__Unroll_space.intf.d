lib/core/unroll_space.mli: Ujam_linalg Vec
