lib/core/tables.ml: Array Groups List Option Solvers Ugs Ujam_ir Ujam_linalg Ujam_reuse Unroll_space Vec
