lib/core/solvers.ml: Hashtbl List Mat Option Selfreuse Subspace Ujam_linalg Ujam_reuse Vec
