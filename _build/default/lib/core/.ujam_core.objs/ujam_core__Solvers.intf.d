lib/core/solvers.mli: Mat Subspace Ujam_linalg Vec
