lib/core/depmodel.mli: Bruteforce Ujam_ir Ujam_linalg Ujam_machine Unroll_space Vec
