lib/core/balance.ml: Float List Locality Machine Rrs Subspace Tables Ugs Ujam_ir Ujam_linalg Ujam_machine Ujam_reuse Unroll_space Vec
