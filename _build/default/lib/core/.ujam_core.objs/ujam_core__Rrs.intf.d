lib/core/rrs.mli: Streams Subspace Ujam_ir Ujam_linalg Unroll_space
