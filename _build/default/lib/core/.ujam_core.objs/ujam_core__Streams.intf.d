lib/core/streams.mli: Subspace Ugs Ujam_ir Ujam_linalg Ujam_reuse Unroll_space Vec
