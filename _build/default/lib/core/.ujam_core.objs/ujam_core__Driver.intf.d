lib/core/driver.mli: Format Scalar_replace Search Ujam_ir Ujam_machine Unroll_space
