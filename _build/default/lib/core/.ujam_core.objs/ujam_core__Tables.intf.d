lib/core/tables.mli: Solvers Subspace Ujam_linalg Ujam_reuse Unroll_space Vec
