open Ujam_linalg
open Ujam_ir

type plan = {
  streams : Streams.stream list;
  kept : Site.t list;
  eliminated : Site.t list;
  registers : int;
}

let generator (s : Streams.stream) = List.hd s.Streams.members

let plan nest =
  let d = Nest.depth nest in
  let localized = Subspace.span_dims ~dim:d [ d - 1 ] in
  let streams = Streams.of_body ~localized nest in
  let kept = ref [] and eliminated = ref [] in
  List.iter
    (fun (s : Streams.stream) ->
      if s.Streams.invariant then
        List.iter
          (fun (m : Streams.member) -> eliminated := m.Streams.site :: !eliminated)
          s.Streams.members
      else begin
        let g = generator s in
        kept := g.Streams.site :: !kept;
        List.iter
          (fun (m : Streams.member) ->
            if m.Streams.site.Site.id <> g.Streams.site.Site.id then
              eliminated := m.Streams.site :: !eliminated)
          s.Streams.members
      end)
    streams;
  { streams;
    kept = List.rev !kept;
    eliminated = List.rev !eliminated;
    registers = (Streams.summarize streams).Streams.registers }

let issues_memory p (s : Site.t) =
  List.exists (fun (k : Site.t) -> k.Site.id = s.Site.id) p.kept

(* Temporary names: one rotating chain per stream. *)
let temp_name ~stream_idx ~base k = Printf.sprintf "%s_%d_%d" base stream_idx k

let apply nest p =
  (* (stmt, site id) -> replacement scalar name, for reads;
     defs keep their store but also fill the chain head. *)
  let read_subst : (int * int, string) Hashtbl.t = Hashtbl.create 32 in
  let def_heads : (int, string) Hashtbl.t = Hashtbl.create 8 in
  (* site id -> stmt idx *)
  let preloads = ref [] in
  let shifts = ref [] in
  List.iteri
    (fun si (s : Streams.stream) ->
      if not s.Streams.invariant then begin
        let g = generator s in
        let gdelta = g.Streams.delta in
        let chain k = temp_name ~stream_idx:si ~base:s.Streams.base k in
        let needs_chain =
          List.length s.Streams.members > 1
          || List.exists (fun (m : Streams.member) -> m.Streams.delta <> gdelta)
               s.Streams.members
        in
        if needs_chain then begin
          let span =
            List.fold_left
              (fun acc (m : Streams.member) -> max acc (gdelta - m.Streams.delta))
              0 s.Streams.members
          in
          List.iter
            (fun (m : Streams.member) ->
              let k = gdelta - m.Streams.delta in
              if m.Streams.site.Site.id = g.Streams.site.Site.id then begin
                if g.Streams.is_def then
                  Hashtbl.replace def_heads m.Streams.site.Site.stmt (chain 0)
                else begin
                  preloads :=
                    Stmt.set_scalar (chain 0) (Expr.Read g.Streams.site.Site.ref_)
                    :: !preloads;
                  Hashtbl.replace read_subst
                    (m.Streams.site.Site.stmt, m.Streams.site.Site.id)
                    (chain 0)
                end
              end
              else if not m.Streams.is_def then
                Hashtbl.replace read_subst
                  (m.Streams.site.Site.stmt, m.Streams.site.Site.id)
                  (chain k))
            s.Streams.members;
          for k = span downto 1 do
            shifts := Stmt.set_scalar (chain k) (Expr.Scalar (chain (k - 1))) :: !shifts
          done
        end
      end
      else begin
        (* Invariant stream: one scalar, loaded in the preheader; a
           definition updates the scalar and stores it (the reduction
           pattern A(J) = A_inv + ...; A(J) keeps its final store). *)
        let name = Printf.sprintf "%s_inv_%d" s.Streams.base si in
        List.iter
          (fun (m : Streams.member) ->
            if m.Streams.is_def then
              Hashtbl.replace def_heads m.Streams.site.Site.stmt name
            else
              Hashtbl.replace read_subst
                (m.Streams.site.Site.stmt, m.Streams.site.Site.id)
                name)
          s.Streams.members
      end)
    p.streams;
  (* Rewrite statements.  Reads are re-enumerated with the same site-id
     discipline as Site.of_nest so substitution keys line up. *)
  let next_id = ref 0 in
  let body =
    List.mapi
      (fun si (st : Stmt.t) ->
        let reads = Stmt.reads st in
        let ids = List.map (fun _ -> let i = !next_id in incr next_id; i) reads in
        let remaining = ref (List.combine reads ids) in
        let rhs =
          Expr.substitute
            (fun r ->
              match !remaining with
              | (r', id) :: rest when Aref.equal r r' ->
                  remaining := rest;
                  Option.map
                    (fun name -> Expr.Scalar name)
                    (Hashtbl.find_opt read_subst (si, id))
              | _ -> None)
            st.Stmt.rhs
        in
        (* account for the write site's id *)
        (match st.Stmt.lhs with
        | Stmt.Array_elt _ -> incr next_id
        | Stmt.Scalar_var _ -> ());
        match (st.Stmt.lhs, Hashtbl.find_opt def_heads si) with
        | Stmt.Array_elt r, Some head ->
            [ Stmt.set_scalar head rhs; Stmt.store r (Expr.Scalar head) ]
        | (Stmt.Array_elt _ | Stmt.Scalar_var _), _ -> [ { st with Stmt.rhs } ])
      (Nest.body nest)
    |> List.concat
  in
  Nest.with_body nest (List.rev !preloads @ body @ List.rev !shifts)

(* Mirrors [apply]'s naming: stream si's rotating chain is
   [base_si_k]; invariant streams use [base_inv_si]. *)
let preheader nest p =
  let d = Nest.depth nest in
  let inner_step = (Nest.loops nest).(d - 1).Loop.step in
  let shift_inner (r : Aref.t) k =
    let o = Array.make d 0 in
    o.(d - 1) <- -k * inner_step;
    Aref.shift r o
  in
  List.concat
    (List.mapi
       (fun si (s : Streams.stream) ->
         if s.Streams.invariant then begin
           match
             List.find_opt
               (fun (m : Streams.member) -> not m.Streams.is_def)
               s.Streams.members
           with
           | Some m ->
               [ Stmt.set_scalar
                   (Printf.sprintf "%s_inv_%d" s.Streams.base si)
                   (Expr.Read m.Streams.site.Site.ref_) ]
           | None -> []
         end
         else begin
           let g = generator s in
           let gdelta = g.Streams.delta in
           let span =
             List.fold_left
               (fun acc (m : Streams.member) -> max acc (gdelta - m.Streams.delta))
               0 s.Streams.members
           in
           List.init span (fun k ->
               let k = k + 1 in
               Stmt.set_scalar
                 (temp_name ~stream_idx:si ~base:s.Streams.base k)
                 (Expr.Read (shift_inner g.Streams.site.Site.ref_ k)))
         end)
       p.streams)

let pp_report ppf p =
  Format.fprintf ppf
    "scalar replacement: %d streams, %d memory ops kept, %d references \
     register-resident, %d FP registers"
    (List.length p.streams) (List.length p.kept) (List.length p.eliminated)
    p.registers
