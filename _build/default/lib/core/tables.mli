(** The paper's table computations (Figures 2 and 3) and their exact
    counterparts.

    [compute_table] is the incremental [ComputeTable] of Figure 2: start
    every cell at the number of leaders, then for each leader pair
    subtract one over the region of unroll vectors at which the
    lexicographically greater leader's copies merge into the smaller
    (super)leader's group, stopping where an earlier superleader already
    claimed the merge.  The total number of groups after unrolling by [u]
    is the prefix sum over [u' <= u] — the paper's [Sum].

    [exact_count] enumerates the union of merge-key-shifted unroll boxes
    directly; it is the specification the incremental algorithm is tested
    against (and agrees with on separable-SIV nests, the paper's stated
    domain). *)

open Ujam_linalg

val compute_table :
  Unroll_space.t ->
  solver:Solvers.t ->
  kernel_gens:Vec.t list ->
  Vec.t list ->
  Unroll_space.Table.t
(** Leaders must be lexicographically sorted constant vectors;
    [kernel_gens] are the self-merge directions from
    {!Solvers.kernel_moves}. *)

val total : Unroll_space.Table.t -> Vec.t -> int
(** Number of groups after unrolling by [u] (the paper's [Sum]). *)

val exact_count :
  Unroll_space.t ->
  solver:Solvers.t ->
  equiv:Solvers.point_equiv ->
  Vec.t list ->
  Vec.t ->
  int

val gts_table :
  Unroll_space.t -> localized:Subspace.t -> Ujam_reuse.Ugs.t -> Unroll_space.Table.t
(** Figure 2, [ComputeGTSTable]: leaders are the GTS leaders of the UGS
    within the localized space; solver is temporal. *)

val gss_table :
  Unroll_space.t -> localized:Subspace.t -> Ujam_reuse.Ugs.t -> Unroll_space.Table.t
(** Figure 3, [ComputeGSSTable]: GSS leaders with the spatial solver. *)

val applicable :
  Unroll_space.t -> solver:Solvers.t -> kernel_gens:Vec.t list -> Vec.t list -> bool
(** Domain of the incremental algorithm: every pairwise merge key (and
    every self-merge direction) must be orientable — pointwise
    non-negative after negating if needed.  A mixed-sign key means a
    copy's duplicate sits at a lexicographically earlier but pointwise
    incomparable offset, which the per-copy prefix-sum table cannot
    express; the paper's implementation has the same restriction ("this
    case did not appear in our testing", Sec. 5). *)

val gts_applicable :
  Unroll_space.t -> localized:Subspace.t -> Ujam_reuse.Ugs.t -> bool

val gts_exact :
  Unroll_space.t -> localized:Subspace.t -> Ujam_reuse.Ugs.t -> Vec.t -> int

val gss_exact :
  Unroll_space.t -> localized:Subspace.t -> Ujam_reuse.Ugs.t -> Vec.t -> int

val gts_exact_table :
  Unroll_space.t -> localized:Subspace.t -> Ujam_reuse.Ugs.t -> Unroll_space.Table.t
(** Whole-space totals table (cells read with [Unroll_space.Table.get]);
    the component decomposition is done once. *)

val gss_exact_table :
  Unroll_space.t -> localized:Subspace.t -> Ujam_reuse.Ugs.t -> Unroll_space.Table.t
