(** The Wolf–Maydan–Chen-style brute-force baseline (Sec. 2, [2]).

    For every candidate unroll vector the loop body is actually
    materialised with {!Ujam_ir.Unroll.unroll_and_jam} and re-analysed
    from scratch.  It serves two purposes: it is the comparator whose
    cost the paper's tables avoid, and it is the ground truth the table
    computations are tested against. *)

open Ujam_linalg

type metrics = {
  streams : int;
  memory_ops : int;
  registers : int;
  flops : int;
  misses : float;
  balance_cache : float;
  balance_nocache : float;
}

val metrics : machine:Ujam_machine.Machine.t -> Ujam_ir.Nest.t -> Vec.t -> metrics
(** Materialise [nest] unrolled by [u] and measure it. *)

val best :
  cache:bool ->
  machine:Ujam_machine.Machine.t ->
  Unroll_space.t ->
  Ujam_ir.Nest.t ->
  Vec.t * metrics
(** Exhaustive search over the space, same objective and tie-breaks as
    {!Search.best}. *)
