open Ujam_linalg

type choice = {
  u : Vec.t;
  balance : float;
  objective : float;
  registers : int;
  memory_ops : int;
  flops : int;
}

let evaluate ~cache b u =
  let beta_m = Ujam_machine.Machine.balance (Balance.machine b) in
  let balance = Balance.loop_balance b ~cache u in
  { u;
    balance;
    objective = Float.abs (balance -. beta_m);
    registers = Balance.registers b u;
    memory_ops = Balance.memory_ops b u;
    flops = Balance.flops b u }

let copies u = Vec.fold (fun acc x -> acc * (x + 1)) 1 u

let better a b =
  (* Smaller objective wins; ties prefer fewer copies, then lex order. *)
  let c = Float.compare a.objective b.objective in
  if c <> 0 then c < 0
  else
    let c = compare (copies a.u) (copies b.u) in
    if c <> 0 then c < 0 else Vec.compare a.u b.u < 0

let best ~cache b =
  let max_regs = (Balance.machine b).Ujam_machine.Machine.fp_registers in
  let best = ref None in
  Unroll_space.iter (Balance.space b) (fun u ->
      let c = evaluate ~cache b u in
      if c.registers <= max_regs then
        match !best with
        | None -> best := Some c
        | Some cur -> if better c cur then best := Some c);
  match !best with
  | Some c -> c
  | None -> evaluate ~cache b (Vec.zero (Unroll_space.depth (Balance.space b)))
