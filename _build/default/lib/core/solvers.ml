open Ujam_linalg
open Ujam_reuse

type key = { m : Vec.t; delta : int }

type t = c_from:Vec.t -> c_to:Vec.t -> key option

let solver ~h ~localized ~unroll_levels ~truncate =
  let depth = Mat.cols h in
  let joined = Subspace.join localized (Subspace.span_dims ~dim:depth unroll_levels) in
  let innermost = depth - 1 in
  fun ~c_from ~c_to ->
    let diff = Vec.sub c_to c_from in
    let diff = if truncate && Vec.dim diff > 0 then Vec.set diff 0 0 else diff in
    match Subspace.solution_in h diff joined with
    | None -> None
    | Some x ->
        let m =
          Vec.init depth (fun k ->
              if List.mem k unroll_levels then Vec.get x k else 0)
        in
        Some { m; delta = Vec.get x innermost }

let temporal ~h ~localized ~unroll_levels =
  solver ~h ~localized ~unroll_levels ~truncate:false

let spatial ~h ~localized ~unroll_levels =
  solver ~h:(Selfreuse.spatial_matrix h) ~localized ~unroll_levels ~truncate:true

type point_equiv = Vec.t -> Vec.t -> int option

let point_equiv ~h_apply ~h_solve ~localized ~truncate =
  let memo : (Vec.t, int option) Hashtbl.t = Hashtbl.create 64 in
  let innermost = Mat.cols h_apply - 1 in
  fun p r ->
    let diff = Vec.sub p r in
    match Hashtbl.find_opt memo diff with
    | Some res -> res
    | None ->
        let rhs = Mat.apply h_apply diff in
        let rhs = if truncate && Vec.dim rhs > 0 then Vec.set rhs 0 0 else rhs in
        let res =
          Option.map
            (fun x -> Vec.get x innermost)
            (Subspace.solution_in h_solve rhs localized)
        in
        Hashtbl.add memo diff res;
        res

let kernel_moves ~h ~localized ~unroll_levels =
  let depth = Mat.cols h in
  let joined = Subspace.join localized (Subspace.span_dims ~dim:depth unroll_levels) in
  let kernel = Subspace.of_basis ~dim:depth (Mat.kernel h) in
  Subspace.basis (Subspace.intersect kernel joined)
  |> List.filter_map (fun v ->
         let projected =
           Vec.init depth (fun k ->
               if List.mem k unroll_levels then Vec.get v k else 0)
         in
         if Vec.is_zero projected then None else Some projected)

let temporal_point_equiv ~h ~localized =
  point_equiv ~h_apply:h ~h_solve:h ~localized ~truncate:false

let spatial_point_equiv ~h ~localized =
  point_equiv ~h_apply:h ~h_solve:(Selfreuse.spatial_matrix h) ~localized
    ~truncate:true
