(** Loop permutation as a pre-pass to unroll-and-jam.

    Wolf, Maydan and Chen consider permutation together with
    unroll-and-jam (Sec. 2 / 5.3); this module provides the combination
    within our framework: pick the legal loop order with the best
    innermost locality (McKinley–Carr–Tseng loop cost), then run the
    balance-driven unroll-and-jam driver on the result. *)

type choice = {
  permutation : int array;        (** new level -> old level *)
  cost : float;                   (** Equation-1 memory cost per iteration *)
  original_cost : float;          (** cost of the given loop order *)
  permuted : Ujam_ir.Nest.t;
}

val best_legal :
  machine:Ujam_machine.Machine.t -> Ujam_ir.Nest.t -> choice
(** The lowest-cost permutation that is both expressible (triangular
    bounds keep their outer loops) and dependence-legal.  The identity
    permutation is always a candidate, so this never fails. *)

val optimize :
  ?bound:int ->
  ?cache:bool ->
  machine:Ujam_machine.Machine.t ->
  Ujam_ir.Nest.t ->
  choice * Driver.report
(** Permute, then unroll-and-jam. *)
