(** Scalar replacement (Callahan–Carr–Kennedy) on the innermost loop.

    Each value stream is carried in a rotating chain of compiler
    temporaries: the stream generator (the member that touches a location
    first — a store, or the leading load) fills the chain head and the
    remaining members read temporaries instead of memory.  [plan] decides
    the rewrite and [apply] performs a display-oriented source-to-source
    transformation (the chain-priming preheader loads are outside our
    perfect-nest IR and are reported, not emitted; counts are unaffected
    because priming is amortised over the loop).

    The simulator consumes {!issues_memory}: a site reaches the memory
    system only if it generates its stream. *)

type plan = {
  streams : Streams.stream list;
  kept : Ujam_ir.Site.t list;        (** sites that still issue memory ops *)
  eliminated : Ujam_ir.Site.t list;  (** register-resident references *)
  registers : int;
}

val plan : Ujam_ir.Nest.t -> plan

val issues_memory : plan -> Ujam_ir.Site.t -> bool

val apply : Ujam_ir.Nest.t -> plan -> Ujam_ir.Nest.t

val preheader : Ujam_ir.Nest.t -> plan -> Ujam_ir.Stmt.t list
(** Chain-priming statements to execute before every entry of the
    innermost loop (with the innermost index at its lower bound): loads
    that fill the rotating temporaries [t_1..t_span] with the values
    generated 1..span iterations "ago", and the loads of innermost-
    invariant scalars.  Together with {!apply} this is a complete
    lowering: interpreting the transformed nest with this preheader
    (see {!Ujam_sim.Interp.run}) reproduces the original semantics. *)

val pp_report : Format.formatter -> plan -> unit
