open Ujam_linalg

type t = { bounds : int array; strides : int array; card : int }

let make ~bounds =
  let d = Array.length bounds in
  if d = 0 then invalid_arg "Unroll_space.make: empty";
  if Array.exists (fun b -> b < 0) bounds then
    invalid_arg "Unroll_space.make: negative bound";
  if bounds.(d - 1) <> 0 then
    invalid_arg "Unroll_space.make: innermost bound must be 0";
  (* Mixed-radix strides for dense indexing; radix per level is b+1. *)
  let strides = Array.make d 1 in
  for k = d - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * (bounds.(k + 1) + 1)
  done;
  let card = strides.(0) * (bounds.(0) + 1) in
  { bounds = Array.copy bounds; strides; card }

let uniform ~depth ~bound ~unroll_levels =
  let bounds = Array.make depth 0 in
  List.iter
    (fun k ->
      if k < 0 || k >= depth - 1 then
        invalid_arg "Unroll_space.uniform: level out of range";
      bounds.(k) <- bound)
    unroll_levels;
  make ~bounds

let depth t = Array.length t.bounds
let bounds t = Array.copy t.bounds
let card t = t.card

let mem t v =
  Vec.dim v = depth t
  && Array.for_all2 (fun b x -> x >= 0 && x <= b) t.bounds (Vec.to_array v)

let unroll_levels t =
  let acc = ref [] in
  Array.iteri (fun k b -> if b > 0 then acc := k :: !acc) t.bounds;
  List.rev !acc

let iter t f =
  let d = depth t in
  let v = Array.make d 0 in
  let rec go k =
    if k = d then f (Vec.make v)
    else
      for x = 0 to t.bounds.(k) do
        v.(k) <- x;
        go (k + 1)
      done
  in
  go 0

let vectors t =
  let acc = ref [] in
  iter t (fun v -> acc := v :: !acc);
  List.rev !acc

let index t v =
  let idx = ref 0 in
  Array.iteri (fun k s -> idx := !idx + (s * Vec.get v k)) t.strides;
  !idx

module Table = struct
  type space = t
  type nonrec t = { space : space; cells : int array }

  let create space init = { space; cells = Array.make space.card init }
  let space t = t.space

  let check t v =
    if not (mem t.space v) then invalid_arg "Unroll_space.Table: out of space"

  let get t v =
    check t v;
    t.cells.(index t.space v)

  let set t v x =
    check t v;
    t.cells.(index t.space v) <- x

  let add t v x =
    check t v;
    let i = index t.space v in
    t.cells.(i) <- t.cells.(i) + x

  let add_from t lo delta =
    iter t.space (fun u ->
        if Vec.leq_pointwise lo u then add t u delta)

  let add_region t ~from_ ~excluding delta =
    iter t.space (fun u ->
        if Vec.leq_pointwise from_ u then
          let excluded =
            match excluding with
            | Some e -> Vec.leq_pointwise e u
            | None -> false
          in
          if not excluded then add t u delta)

  let prefix_sum t v =
    check t v;
    let s = ref 0 in
    iter t.space (fun u -> if Vec.leq_pointwise u v then s := !s + get t u);
    !s

  let merge_add a b =
    if a.space.bounds <> b.space.bounds then
      invalid_arg "Unroll_space.Table.merge_add: space mismatch";
    { space = a.space; cells = Array.map2 ( + ) a.cells b.cells }

  let to_alist t = List.map (fun u -> (u, get t u)) (vectors t.space)
end
