(** Merge-key solvers.

    The table computations all reduce to one question: given two
    references of a UGS with constants [c_from] and [c_to], at which
    unroll offset does a copy of one coincide (temporally or spatially,
    within the localized space) with a copy of the other?  The answer is
    the *merge key*: the unroll-dimension component [m] of an integral
    solution of [H (m + x) = c_to - c_from] with [x] in the localized
    space, together with the innermost component [delta] that positions
    the two value streams relative to each other in time. *)

open Ujam_linalg

type key = {
  m : Vec.t;    (** support on the unroll levels; may be negative *)
  delta : int;  (** innermost-loop offset of the solution *)
}

type t = c_from:Vec.t -> c_to:Vec.t -> key option

val temporal :
  h:Mat.t -> localized:Subspace.t -> unroll_levels:int list -> t
(** Solver for group-temporal coincidence ([H] as is). *)

val spatial :
  h:Mat.t -> localized:Subspace.t -> unroll_levels:int list -> t
(** Solver for group-spatial coincidence: [H] with the contiguous row
    zeroed and the difference's contiguous component dropped. *)

type point_equiv = Vec.t -> Vec.t -> int option
(** Equivalence of unroll-offset points.  Copies of one reference at
    offsets [p] and [r] denote the same group whenever some [x] in the
    localized space satisfies [H x = H (p - r)]; the witness's innermost
    component is the time shift between the two copies' value streams.
    Both testers memoise on the difference vector. *)

val temporal_point_equiv : h:Mat.t -> localized:Subspace.t -> point_equiv
val spatial_point_equiv : h:Mat.t -> localized:Subspace.t -> point_equiv

val kernel_moves :
  h:Mat.t -> localized:Subspace.t -> unroll_levels:int list -> Vec.t list
(** Generators of the self-merge lattice: directions in the unroll
    dimensions along which copies of a single reference coincide
    (projections of [ker H ∩ (L ⊕ U)] onto the unroll levels).  Pass
    [H_s] for the spatial variant. *)
