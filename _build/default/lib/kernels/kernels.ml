open Ujam_ir.Build

(* All kernels follow the Fortran convention: the first subscript is the
   memory-contiguous one, so the stride-1 loop is innermost wherever the
   original code had it. *)

let jacobi ?(n = 130) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "jacobi"
    [ loop d "J" ~level:0 ~lo:2 ~hi:(n - 1) ();
      loop d "I" ~level:1 ~lo:2 ~hi:(n - 1) () ]
    [ aref "A" [ i; j ]
      <<- f 0.25
          *: (rd "B" [ i -$ 1; j ] +: rd "B" [ i +$ 1; j ]
             +: rd "B" [ i; j -$ 1 ] +: rd "B" [ i; j +$ 1 ]) ]

let afold ?(n = 130) () =
  let d = 2 in
  let i = var d 0 and j = var d 1 in
  nest "afold"
    [ loop d "I" ~level:0 ~lo:1 ~hi:n (); loop d "J" ~level:1 ~lo:1 ~hi:n () ]
    [ aref "A" [ i ] <<- rd "A" [ i ] +: (rd "B" [ j ] *: rd "C" [ i ++$ j -$ 1 ]) ]

(* BTRIX excerpts: block-tridiagonal forward elimination.  The originals
   are 4-deep over 4-D arrays; these keep the reference structure of the
   J-K plane sweeps over 3-D arrays. *)

let btrix1 ?(n = 40) () =
  let d = 3 in
  let j = var d 0 and k = var d 1 and i = var d 2 in
  nest "btrix.1"
    [ loop d "J" ~level:0 ~lo:2 ~hi:n ();
      loop d "K" ~level:1 ~lo:1 ~hi:n ();
      loop d "I" ~level:2 ~lo:1 ~hi:n () ]
    [ aref "S" [ i; j; k ]
      <<- rd "S" [ i; j; k ] -: (rd "A" [ i; j; k ] *: rd "S" [ i; j -$ 1; k ]) ]

let btrix2 ?(n = 40) () =
  let d = 3 in
  let j = var d 0 and k = var d 1 and i = var d 2 in
  nest "btrix.2"
    [ loop d "J" ~level:0 ~lo:1 ~hi:n ();
      loop d "K" ~level:1 ~lo:1 ~hi:n ();
      loop d "I" ~level:2 ~lo:1 ~hi:n () ]
    [ aref "B" [ i; j; k ]
      <<- rd "B" [ i; j; k ]
          -: (rd "A" [ i; j; k ] *: rd "C" [ i; j; k ])
          -: (rd "A" [ i; j; k ] *: rd "C" [ i; j; k -$ 1 ]) ]

let btrix7 ?(n = 40) () =
  let d = 3 in
  let k = var d 0 and j = var d 1 and i = var d 2 in
  nest "btrix.7"
    [ loop d "K" ~level:0 ~lo:2 ~hi:n ();
      loop d "J" ~level:1 ~lo:1 ~hi:n ();
      loop d "I" ~level:2 ~lo:1 ~hi:n () ]
    [ aref "S" [ i; j; k ]
      <<- rd "S" [ i; j; k ]
          -: (rd "B" [ i; j; k ] *: rd "S" [ i; j; k -$ 1 ])
          -: (rd "C" [ i; j; k ] *: rd "S" [ i; j; k -$ 2 ]) ]

let collc2 ?(n = 62) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "collc.2"
    [ loop d "J" ~level:0 ~lo:1 ~hi:n (); loop d "I" ~level:1 ~lo:1 ~hi:n () ]
    [ aref "W" [ i; j ]
      <<- rd "W" [ i; j ]
          +: (f 0.25
             *: (rd "FW" [ 2 *$ i; 2 *$ j ]
                +: rd "FW" [ (2 *$ i) -$ 1; 2 *$ j ]
                +: rd "FW" [ 2 *$ i; (2 *$ j) -$ 1 ]
                +: rd "FW" [ (2 *$ i) -$ 1; (2 *$ j) -$ 1 ])) ]

let cond7 ?(n = 130) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "cond.7"
    [ loop d "J" ~level:0 ~lo:2 ~hi:(n - 1) ();
      loop d "I" ~level:1 ~lo:2 ~hi:(n - 1) () ]
    [ aref "TNEW" [ i; j ]
      <<- rd "T" [ i; j ]
          +: (rd "CN" [ i; j ] *: (rd "T" [ i; j +$ 1 ] -: rd "T" [ i; j ]))
          +: (rd "CS" [ i; j ] *: (rd "T" [ i; j -$ 1 ] -: rd "T" [ i; j ]))
          +: (rd "CE" [ i; j ] *: (rd "T" [ i +$ 1; j ] -: rd "T" [ i; j ]))
          +: (rd "CW" [ i; j ] *: (rd "T" [ i -$ 1; j ] -: rd "T" [ i; j ])) ]

let cond9 ?(n = 130) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "cond.9"
    [ loop d "J" ~level:0 ~lo:1 ~hi:(n - 1) ();
      loop d "I" ~level:1 ~lo:1 ~hi:(n - 1) () ]
    [ aref "CN" [ i; j ]
      <<- rd "SIG" [ i; j ]
          *: (rd "T" [ i; j +$ 1 ] +: rd "T" [ i; j ])
          /: (rd "RHO" [ i; j +$ 1 ] +: rd "RHO" [ i; j ]);
      aref "CE" [ i; j ]
      <<- rd "SIG" [ i; j ]
          *: (rd "T" [ i +$ 1; j ] +: rd "T" [ i; j ])
          /: (rd "RHO" [ i +$ 1; j ] +: rd "RHO" [ i; j ]) ]

let dflux16 ?(n = 130) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "dflux.16"
    [ loop d "J" ~level:0 ~lo:2 ~hi:(n - 1) ();
      loop d "I" ~level:1 ~lo:2 ~hi:(n - 1) () ]
    [ aref "FS" [ i; j ]
      <<- rd "FW" [ i +$ 1; j ] -: rd "FW" [ i; j ];
      aref "DW" [ i; j ]
      <<- rd "DW" [ i; j ] +: (rd "FS" [ i; j ] -: rd "FS" [ i -$ 1; j ]) ]

let dflux17 ?(n = 130) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "dflux.17"
    [ loop d "J" ~level:0 ~lo:2 ~hi:(n - 1) ();
      loop d "I" ~level:1 ~lo:2 ~hi:(n - 1) () ]
    [ aref "GS" [ i; j ]
      <<- rd "FW" [ i; j +$ 1 ] -: rd "FW" [ i; j ];
      aref "DW" [ i; j ]
      <<- rd "DW" [ i; j ] +: (rd "GS" [ i; j ] -: rd "GS" [ i; j -$ 1 ]) ]

let dflux20 ?(n = 130) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "dflux.20"
    [ loop d "J" ~level:0 ~lo:2 ~hi:(n - 1) ();
      loop d "I" ~level:1 ~lo:2 ~hi:(n - 1) () ]
    [ aref "DW" [ i; j ]
      <<- rd "W" [ i +$ 1; j ] +: rd "W" [ i -$ 1; j ]
          +: rd "W" [ i; j +$ 1 ] +: rd "W" [ i; j -$ 1 ]
          -: (f 4.0 *: rd "W" [ i; j ])
          +: rd "DW" [ i; j ] ]

let dmxpy0 ?(n = 162) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "dmxpy0"
    [ loop d "J" ~level:0 ~lo:1 ~hi:n (); loop d "I" ~level:1 ~lo:1 ~hi:n () ]
    [ aref "Y" [ i ] <<- rd "Y" [ i ] +: (rd "X" [ j ] *: rd "M" [ i; j ]) ]

let dmxpy1 ?(n = 162) () =
  let d = 2 in
  let i = var d 0 and j = var d 1 in
  nest "dmxpy1"
    [ loop d "I" ~level:0 ~lo:1 ~hi:n (); loop d "J" ~level:1 ~lo:1 ~hi:n () ]
    [ aref "Y" [ i ] <<- rd "Y" [ i ] +: (rd "X" [ j ] *: rd "M" [ i; j ]) ]

(* The original updates RMATRX in place under triangular bounds that
   guarantee the pivot row/column are disjoint from the updated block;
   with rectangular bounds the factor accesses are split into L and U so
   the same reference pattern stays provably safe (see DESIGN.md). *)
let gmtry3 ?(n = 40) () =
  let d = 3 in
  let i = var d 0 and j = var d 1 and k = var d 2 in
  nest "gmtry.3"
    [ loop d "I" ~level:0 ~lo:1 ~hi:n ();
      loop d "J" ~level:1 ~lo:1 ~hi:n ();
      loop d "K" ~level:2 ~lo:1 ~hi:n () ]
    [ aref "R" [ k; j ]
      <<- rd "R" [ k; j ] -: (rd "L" [ k; i ] *: rd "U" [ i; j ]) ]

let mmjik ?(n = 46) () =
  let d = 3 in
  let j = var d 0 and i = var d 1 and k = var d 2 in
  nest "mmjik"
    [ loop d "J" ~level:0 ~lo:1 ~hi:n ();
      loop d "I" ~level:1 ~lo:1 ~hi:n ();
      loop d "K" ~level:2 ~lo:1 ~hi:n () ]
    [ aref "C" [ i; j ] <<- rd "C" [ i; j ] +: (rd "A" [ i; k ] *: rd "B" [ k; j ]) ]

let mmjki ?(n = 46) () =
  let d = 3 in
  let j = var d 0 and k = var d 1 and i = var d 2 in
  nest "mmjki"
    [ loop d "J" ~level:0 ~lo:1 ~hi:n ();
      loop d "K" ~level:1 ~lo:1 ~hi:n ();
      loop d "I" ~level:2 ~lo:1 ~hi:n () ]
    [ aref "C" [ i; j ] <<- rd "C" [ i; j ] +: (rd "A" [ i; k ] *: rd "B" [ k; j ]) ]

let vpenta7 ?(n = 130) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "vpenta.7"
    [ loop d "J" ~level:0 ~lo:3 ~hi:n (); loop d "I" ~level:1 ~lo:1 ~hi:n () ]
    [ aref "F" [ i; j ]
      <<- rd "F" [ i; j ]
          -: (rd "A" [ i; j ] *: rd "F" [ i; j -$ 2 ])
          -: (rd "B" [ i; j ] *: rd "F" [ i; j -$ 1 ]) ]

let sor ?(n = 130) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "sor"
    [ loop d "J" ~level:0 ~lo:2 ~hi:(n - 1) ();
      loop d "I" ~level:1 ~lo:2 ~hi:(n - 1) () ]
    [ aref "A" [ i; j ]
      <<- (s "OMEGA"
          *: (f 0.25
             *: (rd "A" [ i -$ 1; j ] +: rd "A" [ i +$ 1; j ]
                +: rd "A" [ i; j -$ 1 ] +: rd "A" [ i; j +$ 1 ])))
          +: (s "OMEGA1" *: rd "A" [ i; j ]) ]

let shal ?(n = 98) () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  nest "shal"
    [ loop d "J" ~level:0 ~lo:2 ~hi:(n - 1) ();
      loop d "I" ~level:1 ~lo:2 ~hi:(n - 1) () ]
    [ aref "UNEW" [ i; j ]
      <<- rd "UOLD" [ i; j ]
          +: (s "TDTS8"
             *: (rd "Z" [ i +$ 1; j +$ 1 ] +: rd "Z" [ i +$ 1; j ])
             *: (rd "CV" [ i +$ 1; j +$ 1 ] +: rd "CV" [ i; j +$ 1 ]
                +: rd "CV" [ i; j ] +: rd "CV" [ i +$ 1; j ]))
          -: (s "TDTSDX" *: (rd "H" [ i +$ 1; j ] -: rd "H" [ i; j ]));
      aref "VNEW" [ i; j ]
      <<- rd "VOLD" [ i; j ]
          -: (s "TDTS8"
             *: (rd "Z" [ i +$ 1; j +$ 1 ] +: rd "Z" [ i; j +$ 1 ])
             *: (rd "CU" [ i +$ 1; j +$ 1 ] +: rd "CU" [ i; j +$ 1 ]
                +: rd "CU" [ i; j ] +: rd "CU" [ i +$ 1; j ]))
          -: (s "TDTSDY" *: (rd "H" [ i; j +$ 1 ] -: rd "H" [ i; j ])) ]
