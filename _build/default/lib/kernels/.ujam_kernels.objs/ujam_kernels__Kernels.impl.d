lib/kernels/kernels.ml: Ujam_ir
