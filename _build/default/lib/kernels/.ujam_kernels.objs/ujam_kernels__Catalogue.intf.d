lib/kernels/catalogue.mli: Format Ujam_ir
