lib/kernels/extras.ml: Ujam_ir
