lib/kernels/extras.mli: Nest Ujam_ir
