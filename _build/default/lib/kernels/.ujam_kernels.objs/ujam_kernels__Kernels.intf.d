lib/kernels/kernels.mli: Nest Ujam_ir
