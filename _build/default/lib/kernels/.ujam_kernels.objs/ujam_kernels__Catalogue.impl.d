lib/kernels/catalogue.ml: Format Kernels List String Ujam_ir
