type entry = {
  num : int;
  name : string;
  description : string;
  build : ?n:int -> unit -> Ujam_ir.Nest.t;
}

let all =
  [ { num = 1; name = "jacobi"; description = "Compute Jacobian of a Matrix";
      build = Kernels.jacobi };
    { num = 2; name = "afold"; description = "Adjoint Convolution";
      build = Kernels.afold };
    { num = 3; name = "btrix.1"; description = "SPEC/NASA7/BTRIX";
      build = Kernels.btrix1 };
    { num = 4; name = "btrix.2"; description = "SPEC/NASA7/BTRIX";
      build = Kernels.btrix2 };
    { num = 5; name = "btrix.7"; description = "SPEC/NASA7/BTRIX";
      build = Kernels.btrix7 };
    { num = 6; name = "collc.2"; description = "Perfect/FLO52/COLLC";
      build = Kernels.collc2 };
    { num = 7; name = "cond.7"; description = "local/SIMPLE/CONDUCT";
      build = Kernels.cond7 };
    { num = 8; name = "cond.9"; description = "local/SIMPLE/CONDUCT";
      build = Kernels.cond9 };
    { num = 9; name = "dflux.16"; description = "Perfect/FLO52/DFLUX";
      build = Kernels.dflux16 };
    { num = 10; name = "dflux.17"; description = "Perfect/FLO52/DFLUX";
      build = Kernels.dflux17 };
    { num = 11; name = "dflux.20"; description = "Perfect/FLO52/DFLUX";
      build = Kernels.dflux20 };
    { num = 12; name = "dmxpy0"; description = "Vector-Matrix Multiply";
      build = Kernels.dmxpy0 };
    { num = 13; name = "dmxpy1"; description = "Vector-Matrix Multiply";
      build = Kernels.dmxpy1 };
    { num = 14; name = "gmtry.3"; description = "SPEC/NASA7/GMTRY";
      build = Kernels.gmtry3 };
    { num = 15; name = "mmjik"; description = "Matrix-Matrix Multiply";
      build = Kernels.mmjik };
    { num = 16; name = "mmjki"; description = "Matrix-Matrix Multiply";
      build = Kernels.mmjki };
    { num = 17; name = "vpenta.7"; description = "SPEC/NASA7/VPENTA";
      build = Kernels.vpenta7 };
    { num = 18; name = "sor"; description = "Successive Over Relaxation";
      build = Kernels.sor };
    { num = 19; name = "shal"; description = "Shallow Water Kernel";
      build = Kernels.shal } ]

let find name = List.find_opt (fun e -> String.equal e.name name) all

let pp_table ppf () =
  Format.fprintf ppf "@[<v>%-4s %-10s %s@," "Num" "Loop" "Description";
  List.iter
    (fun e -> Format.fprintf ppf "%-4d %-10s %s@," e.num e.name e.description)
    all;
  Format.fprintf ppf "@]"
