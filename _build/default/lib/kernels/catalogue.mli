(** The evaluation suite as a catalogue: Table 2 of the paper. *)

type entry = {
  num : int;           (** row number in Table 2 *)
  name : string;
  description : string;
  build : ?n:int -> unit -> Ujam_ir.Nest.t;
}

val all : entry list
(** The 19 loops, in Table 2 order. *)

val find : string -> entry option
val pp_table : Format.formatter -> unit -> unit
