(** Kernels beyond Table 2: classical loops used by the examples, the
    documentation and the broader test surface.  Same conventions as
    {!Kernels} (column-major, first subscript contiguous). *)

open Ujam_ir

val mmijk : ?n:int -> unit -> Nest.t
(** Matrix multiply in IJK order (row-walking: the order that needs
    permutation). *)

val mmikj : ?n:int -> unit -> Nest.t
(** Matrix multiply in IKJ order. *)

val transpose : ?n:int -> unit -> Nest.t
(** [B(I,J) = A(J,I)] — no reuse to exploit, a tiling candidate. *)

val stencil27 : ?n:int -> unit -> Nest.t
(** 3-D 7-point stencil (the 3-D jacobi). *)

val conv2d : ?n:int -> ?k:int -> unit -> Nest.t
(** 2-D convolution with a [k x k] kernel (4-deep nest, coupled-free). *)

val lufact : ?n:int -> unit -> Nest.t
(** LU rank-1 update with split factors (the gmtry.3 shape at depth 3). *)

val dot : ?n:int -> unit -> Nest.t
(** Dot-product reduction under an outer batch loop. *)

val saxpy_bands : ?n:int -> unit -> Nest.t
(** Banded triad: [Y(I,J) = Y(I,J) + A(J) * X(I,J-1) + B(J) * X(I,J+1)]. *)

val all : (string * (?n:int -> unit -> Nest.t)) list
