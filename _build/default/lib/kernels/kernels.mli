(** The 19 evaluation loops of Table 2.

    Each builder returns the loop as an IR nest; [?n] scales the problem
    size (defaults chosen so the working set exceeds the smallest
    modelled cache while whole-nest simulation stays fast).  The SPEC92 /
    Perfect / NAS originals are not redistributable, so these are
    faithful hand translations of the published kernels' loop and
    reference structure (see DESIGN.md, substitutions). *)

open Ujam_ir

val jacobi : ?n:int -> unit -> Nest.t
(** Jacobi 5-point relaxation of a matrix. *)

val afold : ?n:int -> unit -> Nest.t
(** Adjoint convolution: [A(I) += B(J) * C(I+J-1)]. *)

val btrix1 : ?n:int -> unit -> Nest.t
val btrix2 : ?n:int -> unit -> Nest.t
val btrix7 : ?n:int -> unit -> Nest.t
(** SPEC/NASA7/BTRIX forward-elimination excerpts (3-deep, 3-D arrays). *)

val collc2 : ?n:int -> unit -> Nest.t
(** Perfect/FLO52/COLLC coarse-grid collection (stride-2 subscripts). *)

val cond7 : ?n:int -> unit -> Nest.t
val cond9 : ?n:int -> unit -> Nest.t
(** local/SIMPLE/CONDUCT heat-conduction stencils. *)

val dflux16 : ?n:int -> unit -> Nest.t
val dflux17 : ?n:int -> unit -> Nest.t
val dflux20 : ?n:int -> unit -> Nest.t
(** Perfect/FLO52/DFLUX dissipative-flux differences. *)

val dmxpy0 : ?n:int -> unit -> Nest.t
val dmxpy1 : ?n:int -> unit -> Nest.t
(** Vector-matrix multiply, both loop orders. *)

val gmtry3 : ?n:int -> unit -> Nest.t
(** SPEC/NASA7/GMTRY Gaussian-elimination update. *)

val mmjik : ?n:int -> unit -> Nest.t
val mmjki : ?n:int -> unit -> Nest.t
(** Matrix-matrix multiply, JIK and JKI orders. *)

val vpenta7 : ?n:int -> unit -> Nest.t
(** SPEC/NASA7/VPENTA pentadiagonal forward sweep. *)

val sor : ?n:int -> unit -> Nest.t
(** Successive over-relaxation sweep. *)

val shal : ?n:int -> unit -> Nest.t
(** Shallow-water kernel (SWIM-style velocity/pressure update). *)
