open Ujam_ir
open Ujam_depend
open Ujam_machine

let rec expr_depth = function
  | Expr.Const _ | Expr.Scalar _ | Expr.Read _ -> 0
  | Expr.Neg e -> expr_depth e
  | Expr.Bin (_, a, b) -> 1 + max (expr_depth a) (expr_depth b)

let recurrence_ii (m : Machine.t) nest =
  let depth = Nest.depth nest in
  let body = Array.of_list (Nest.body nest) in
  let graph = Graph.build ~include_input:false nest in
  (* A same-statement read/write pair on one location stream chains the
     statement's computation across iterations.  The graph records such a
     pair once (a flow or anti edge); a Star inner component is an
     update of the same location every iteration (distance 1). *)
  List.fold_left
    (fun acc (e : Graph.edge) ->
      match e.Graph.kind with
      | (Graph.Flow | Graph.Anti) when e.Graph.src.Site.stmt = e.Graph.dst.Site.stmt
        ->
          let zero_outside =
            let ok = ref true in
            for k = 0 to depth - 2 do
              match e.Graph.dvec.(k) with
              | Depvec.Exact 0 | Depvec.Star -> ()
              | Depvec.Exact _ -> ok := false
            done;
            !ok
          in
          if zero_outside then begin
            let d =
              match e.Graph.dvec.(depth - 1) with
              | Depvec.Exact d when d >= 1 -> Some d
              | Depvec.Star -> Some 1
              | Depvec.Exact _ -> None
            in
            match d with
            | Some d ->
                let chain = expr_depth body.(e.Graph.src.Site.stmt).Stmt.rhs in
                let ii =
                  float_of_int (m.Machine.fp_latency * max 1 chain) /. float_of_int d
                in
                Float.max acc ii
            | None -> acc
          end
          else acc
      | Graph.Flow | Graph.Anti | Graph.Output | Graph.Input -> acc)
    0.0 graph.Graph.edges

let issue_cycles (m : Machine.t) ~mem_ops ~flops =
  Float.max
    (float_of_int mem_ops /. float_of_int m.Machine.mem_issue)
    (float_of_int flops /. float_of_int m.Machine.fp_issue)

let cycles_per_iteration m nest ~mem_ops =
  let flops = Nest.flops_per_iteration nest in
  Float.max (issue_cycles m ~mem_ops ~flops) (recurrence_ii m nest)
