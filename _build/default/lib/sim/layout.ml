open Ujam_ir

type array_info = {
  base : int;
  mins : int array;
  strides : int array;
  extents : int array;
}

type t = { arrays : (string, array_info) Hashtbl.t; footprint : int }

(* Interval of an affine form given per-level index intervals. *)
let affine_interval (a : Affine.t) (ivals : (int * int) array) =
  let lo = ref a.Affine.const and hi = ref a.Affine.const in
  Array.iteri
    (fun k c ->
      let l, h = ivals.(k) in
      if c >= 0 then begin
        lo := !lo + (c * l);
        hi := !hi + (c * h)
      end
      else begin
        lo := !lo + (c * h);
        hi := !hi + (c * l)
      end)
    a.Affine.coefs;
  (!lo, !hi)

(* Per-level index intervals, propagating affine bounds outside-in. *)
let index_intervals nest =
  let loops = Nest.loops nest in
  let d = Array.length loops in
  let ivals = Array.make d (0, 0) in
  for k = 0 to d - 1 do
    let l = loops.(k) in
    let lo, _ = affine_interval l.Loop.lo ivals in
    let _, hi = affine_interval l.Loop.hi ivals in
    ivals.(k) <- (lo, max lo hi)
  done;
  ivals

let of_nest nest ~line =
  if line <= 0 then invalid_arg "Layout.of_nest: line";
  let ivals = index_intervals nest in
  (* Gather min/max subscript values per array dimension. *)
  let ranges : (string, (int * int) array) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (r, _) ->
      let b = Aref.base r in
      let dims = Aref.rank r in
      let cur =
        match Hashtbl.find_opt ranges b with
        | Some cur -> cur
        | None ->
            let cur = Array.make dims (max_int, min_int) in
            Hashtbl.add ranges b cur;
            order := b :: !order;
            cur
      in
      Array.iteri
        (fun i s ->
          let lo, hi = affine_interval s ivals in
          let clo, chi = cur.(i) in
          cur.(i) <- (min clo lo, max chi hi))
        r.Aref.subs)
    (Nest.refs nest);
  let arrays = Hashtbl.create 8 in
  let next = ref 0 in
  List.iter
    (fun b ->
      let rng = Hashtbl.find ranges b in
      let dims = Array.length rng in
      let mins = Array.map fst rng in
      let extents = Array.map (fun (lo, hi) -> hi - lo + 1) rng in
      let strides = Array.make dims 1 in
      for i = 1 to dims - 1 do
        strides.(i) <- strides.(i - 1) * extents.(i - 1)
      done;
      let size = if dims = 0 then 1 else strides.(dims - 1) * extents.(dims - 1) in
      let base = !next in
      (* Line-align and stagger consecutive arrays by a few lines so
         power-of-two extents do not alias pathologically in low-
         associativity caches (the usual inter-array padding). *)
      next := base + (((size + line - 1) / line) * line) + (7 * line);
      Hashtbl.add arrays b { base; mins; strides; extents })
    (List.rev !order);
  { arrays; footprint = !next }

let address t (r : Aref.t) iv =
  match Hashtbl.find_opt t.arrays (Aref.base r) with
  | None -> invalid_arg "Layout.address: unknown array"
  | Some info ->
      let addr = ref info.base in
      Array.iteri
        (fun i s -> addr := !addr + ((Affine.eval s iv - info.mins.(i)) * info.strides.(i)))
        r.Aref.subs;
      !addr

let footprint t = t.footprint

let extent t base =
  match Hashtbl.find_opt t.arrays base with
  | Some info -> Array.copy info.extents
  | None -> raise Not_found
