lib/sim/runner.mli: Format Ujam_core Ujam_ir Ujam_machine
