lib/sim/cpu.mli: Ujam_ir Ujam_machine
