lib/sim/interp.mli: Ujam_ir
