lib/sim/cache.mli: Ujam_machine
