lib/sim/codegen.ml: Affine Aref Array Buffer Expr Format Hashtbl Layout List Loop Nest Printf Stmt String Ujam_ir
