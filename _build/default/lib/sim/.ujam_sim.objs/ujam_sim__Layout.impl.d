lib/sim/layout.ml: Affine Aref Array Hashtbl List Loop Nest Ujam_ir
