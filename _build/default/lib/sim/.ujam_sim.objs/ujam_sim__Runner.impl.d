lib/sim/runner.ml: Array Cache Cpu Float Format Layout List Machine Nest Site Ujam_core Ujam_ir Ujam_machine
