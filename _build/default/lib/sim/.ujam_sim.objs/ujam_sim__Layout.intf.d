lib/sim/layout.mli: Ujam_ir
