lib/sim/interp.ml: Affine Aref Array Expr Float Hashtbl Int64 List Loop Nest Stmt Ujam_ir
