lib/sim/cache.ml: Array Ujam_machine
