lib/sim/codegen.mli: Ujam_ir
