lib/sim/cpu.ml: Array Depvec Expr Float Graph List Machine Nest Site Stmt Ujam_depend Ujam_ir Ujam_machine
