(** Emit a runnable Fortran 77 program for a nest: array declarations
    sized by interval analysis of the subscripts, deterministic
    initialisation, the loop itself, and a checksum PRINT so two
    variants of a kernel can be diffed for semantic equivalence on a real
    compiler — the bridge from the simulator back to hardware. *)

val declarations : Ujam_ir.Nest.t -> (string * int array * int array) list
(** Per array: name, lower bounds, upper bounds of each dimension. *)

val to_program : ?scalars:(string * float) list -> Ujam_ir.Nest.t -> string
(** A complete [PROGRAM] unit.  [scalars] gives values for the free
    scalar variables of the body (default 0.5 each). *)
