(** Column-major memory layout for the arrays of a nest.

    Array extents are derived from the subscript ranges over the
    iteration space (interval analysis of the affine bounds), arrays are
    laid out contiguously in order of first appearance, line-aligned —
    the Fortran picture the paper assumes. *)

type t

val of_nest : Ujam_ir.Nest.t -> line:int -> t

val address : t -> Ujam_ir.Aref.t -> int array -> int
(** Element address of the reference at the given index vector. *)

val footprint : t -> int
(** Total elements allocated. *)

val extent : t -> string -> int array
(** Per-dimension extents of an array.
    @raise Not_found for unknown arrays. *)
