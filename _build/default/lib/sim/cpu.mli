(** Steady-state CPU cycle model.

    Cycles per iteration are bounded below by the issue width of each
    unit and by recurrences: a floating-point chain that feeds itself
    across [d] innermost iterations forces at least
    [latency * depth / d] cycles per iteration (software pipelining is
    assumed, so independent chains overlap — exactly why unroll-and-jam
    of a reduction helps even without cache effects). *)

val expr_depth : Ujam_ir.Expr.t -> int
(** Longest operator chain in an expression. *)

val recurrence_ii : Ujam_machine.Machine.t -> Ujam_ir.Nest.t -> float
(** Minimum initiation interval forced by innermost-carried flow
    recurrences (0 when none). *)

val issue_cycles :
  Ujam_machine.Machine.t -> mem_ops:int -> flops:int -> float

val cycles_per_iteration :
  Ujam_machine.Machine.t -> Ujam_ir.Nest.t -> mem_ops:int -> float
(** Issue- and recurrence-bound cycles per innermost iteration of the
    given body ([mem_ops] already reflects scalar replacement). *)
