(** Reference interpreter: execute a nest over a floating-point store.

    Array contents are initialised deterministically from a hash of the
    element's identity, free scalars from a hash of their name, so two
    semantically equivalent loops produce identical stores — the oracle
    behind `ujc verify` and the transformation tests.  Compiler
    temporaries (scalar assignments in the body) live in a mutable
    environment that persists across iterations, which is exactly what a
    rotating register chain needs. *)

type store

val run : ?preheader:(int array -> Ujam_ir.Stmt.t list) -> Ujam_ir.Nest.t -> store
(** Execute the nest.  When [preheader] is given, its statements run
    before each entry of the innermost loop (receiving the index vector
    with the innermost component at its lower bound) — the chain-priming
    hook used by {!Ujam_core.Scalar_replace} lowering. *)

val checksum : store -> float
(** Order-insensitive digest of the final array contents. *)

val equal : ?eps:float -> store -> store -> bool
(** Same locations written and values equal within [eps] (relative). *)

val read : store -> string -> int list -> float option
(** Final value of one element, if it was written. *)

val written : store -> int
(** Number of distinct locations written. *)
