open Ujam_ir

type store = {
  arrays : (string * int list, float) Hashtbl.t;  (* written locations *)
  scalars : (string, float) Hashtbl.t;
}

let initial_element key =
  float_of_int (Hashtbl.hash key land 0xFFFF) /. 65536.0

let initial_scalar name =
  float_of_int (Hashtbl.hash ("scalar", name) land 0xFF) /. 256.0

let key (r : Aref.t) iv =
  (Aref.base r, Array.to_list (Array.map (fun s -> Affine.eval s iv) r.Aref.subs))

let run ?preheader nest =
  let store = { arrays = Hashtbl.create 4096; scalars = Hashtbl.create 16 } in
  let read_array r iv =
    let k = key r iv in
    match Hashtbl.find_opt store.arrays k with
    | Some x -> x
    | None -> initial_element k
  in
  let read_scalar name =
    match Hashtbl.find_opt store.scalars name with
    | Some x -> x
    | None -> initial_scalar name
  in
  let rec eval iv = function
    | Expr.Const f -> f
    | Expr.Scalar s -> read_scalar s
    | Expr.Read r -> read_array r iv
    | Expr.Neg e -> -.eval iv e
    | Expr.Bin (op, a, b) -> (
        let x = eval iv a and y = eval iv b in
        match op with
        | Expr.Add -> x +. y
        | Expr.Sub -> x -. y
        | Expr.Mul -> x *. y
        | Expr.Div -> x /. (y +. 1.0) (* keep divisions finite *))
  in
  let exec iv (st : Stmt.t) =
    let value = eval iv st.Stmt.rhs in
    match st.Stmt.lhs with
    | Stmt.Array_elt r -> Hashtbl.replace store.arrays (key r iv) value
    | Stmt.Scalar_var s -> Hashtbl.replace store.scalars s value
  in
  let loops = Nest.loops nest in
  let d = Array.length loops in
  let body = Nest.body nest in
  let iv = Array.make d 0 in
  let rec go k =
    let l = loops.(k) in
    let lo = Affine.eval l.Loop.lo iv and hi = Affine.eval l.Loop.hi iv in
    if k = d - 1 then begin
      (match preheader with
      | Some f ->
          iv.(k) <- lo;
          List.iter (exec iv) (f iv)
      | None -> ());
      let i = ref lo in
      while !i <= hi do
        iv.(k) <- !i;
        List.iter (exec iv) body;
        i := !i + l.Loop.step
      done
    end
    else begin
      let i = ref lo in
      while !i <= hi do
        iv.(k) <- !i;
        go (k + 1);
        i := !i + l.Loop.step
      done
    end
  in
  go 0;
  store

let checksum store =
  Hashtbl.fold
    (fun (base, subs) v acc ->
      let h = float_of_int (Hashtbl.hash (base, subs) land 0xFFFF) /. 65536.0 in
      acc +. (v *. (1.0 +. h)))
    store.arrays 0.0

let value_equal eps v v' =
  (* identical computations produce identical bits, including NaN and
     infinities; the epsilon only covers reassociation-free float noise *)
  Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float v')
  || Float.abs (v -. v') <= eps *. Float.max 1.0 (Float.abs v)

let equal ?(eps = 1e-9) a b =
  Hashtbl.length a.arrays = Hashtbl.length b.arrays
  && Hashtbl.fold
       (fun k v acc ->
         acc
         &&
         match Hashtbl.find_opt b.arrays k with
         | Some v' -> value_equal eps v v'
         | None -> false)
       a.arrays true

let read store base subs = Hashtbl.find_opt store.arrays (base, subs)
let written store = Hashtbl.length store.arrays
