(* QCheck generators shared by the property-based suites.

   The central generator produces random separable-SIV loop nests — the
   class the paper's algorithms target (Sec. 3.5) — with stencil offsets,
   reductions, invariant references and multiple statements, so the
   table-vs-materialisation equivalence properties explore well beyond
   the 19 hand-written kernels. *)

open Ujam_ir

let small_offset = QCheck2.Gen.oneofl [ -3; -2; -1; 0; 1; 2; 3 ]

let vec_gen ~dim ~lo ~hi =
  QCheck2.Gen.map
    (fun l -> Ujam_linalg.Vec.of_list l)
    (QCheck2.Gen.list_size (QCheck2.Gen.return dim) (QCheck2.Gen.int_range lo hi))

(* A separable-SIV reference over [depth] loops: an injective partial map
   from array dimensions to loop levels, each with a stencil offset;
   unmapped dimensions are constants. *)
let aref_gen ~depth ~base =
  let open QCheck2.Gen in
  let* rank = int_range 1 (min 3 (depth + 1)) in
  let* perm =
    (* random injective assignment of levels (or None) to dims *)
    let levels = List.init depth Fun.id in
    let* shuffled = shuffle_l levels in
    let padded = List.map (fun l -> Some l) shuffled @ [ None; None; None ] in
    return (Array.of_list padded)
  in
  let* subs =
    flatten_l
      (List.init rank (fun dim ->
           match perm.(dim) with
           | Some level ->
               let* off = small_offset in
               return (Affine.add_const (Affine.var ~depth level) off)
           | None ->
               let* c = int_range 0 3 in
               return (Affine.const ~depth c)))
  in
  return (Aref.make base subs)

(* Several references to the same array sharing one H matrix (a UGS), by
   re-deriving constants over a fixed shape. *)
let ugs_refs_gen ~depth ~base ~count =
  let open QCheck2.Gen in
  let* shape = aref_gen ~depth ~base in
  let h = Aref.h_matrix shape in
  let rank = Aref.rank shape in
  let* consts =
    list_size (return count)
      (list_size (return rank) (int_range (-3) 3))
  in
  return
    (List.map
       (fun cs ->
         Aref.make base
           (List.init rank (fun d ->
                Affine.make
                  ~coefs:(Array.init depth (fun k -> Ujam_linalg.Mat.get h d k))
                  ~const:(List.nth cs d))))
       consts)

let nest_gen ?(max_depth = 3) () =
  let open QCheck2.Gen in
  let* depth = int_range 2 max_depth in
  let loops =
    List.init depth (fun level ->
        Loop.make_const
          ~var:(String.make 1 "IJK".[level])
          ~level ~depth ~lo:1 ~hi:10 ())
  in
  let* n_stmts = int_range 1 3 in
  let* arrays = int_range 1 3 in
  let bases = List.init arrays (fun i -> String.make 1 "ABC".[i]) in
  let* groups =
    flatten_l
      (List.map
         (fun base ->
           let* count = int_range 1 4 in
           ugs_refs_gen ~depth ~base ~count)
         bases)
  in
  let refs = Array.of_list (List.concat groups) in
  let* body =
    flatten_l
      (List.init n_stmts (fun _ ->
           let* lhs_i = int_range 0 (Array.length refs - 1) in
           let* n_reads = int_range 1 3 in
           let* read_is =
             list_size (return n_reads) (int_range 0 (Array.length refs - 1))
           in
           let reads = List.map (fun i -> Expr.Read refs.(i)) read_is in
           let rhs =
             List.fold_left
               (fun acc r -> Expr.Bin (Expr.Add, acc, r))
               (List.hd reads) (List.tl reads)
           in
           return (Stmt.store refs.(lhs_i) rhs)))
  in
  return (Nest.make ~name:"qcheck" ~loops ~body)

let nest_print nest = Nest.to_string nest

(* A bounded unroll space for a nest: unroll one or two of the outer
   levels by up to 3. *)
let space_gen nest =
  let open QCheck2.Gen in
  let depth = Nest.depth nest in
  let* bounds =
    flatten_l
      (List.init depth (fun k ->
           if k = depth - 1 then return 0 else int_range 0 3))
  in
  return (Ujam_core.Unroll_space.make ~bounds:(Array.of_list bounds))

let nest_and_space_gen ?max_depth () =
  let open QCheck2.Gen in
  let* nest = nest_gen ?max_depth () in
  let* space = space_gen nest in
  return (nest, space)

let to_alcotest = QCheck_alcotest.to_alcotest
