open Ujam_linalg

let mat = Alcotest.testable Mat.pp Mat.equal
let vec = Alcotest.testable Vec.pp Vec.equal

let m rows = Mat.of_rows_list rows

let test_construction () =
  Alcotest.check mat "identity" (m [ [ 1; 0 ]; [ 0; 1 ] ]) (Mat.identity 2);
  Alcotest.check mat "zero" (m [ [ 0; 0; 0 ]; [ 0; 0; 0 ] ]) (Mat.zero ~rows:2 ~cols:3);
  Alcotest.(check int) "rows" 2 (Mat.rows (m [ [ 1 ]; [ 2 ] ]));
  Alcotest.(check int) "cols" 1 (Mat.cols (m [ [ 1 ]; [ 2 ] ]));
  Alcotest.check vec "row" (Vec.of_list [ 3; 4 ]) (Mat.row (m [ [ 1; 2 ]; [ 3; 4 ] ]) 1);
  Alcotest.check vec "col" (Vec.of_list [ 2; 4 ]) (Mat.col (m [ [ 1; 2 ]; [ 3; 4 ] ]) 1);
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged rows")
    (fun () -> ignore (m [ [ 1; 2 ]; [ 3 ] ]))

let test_ops () =
  let a = m [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.check mat "transpose" (m [ [ 1; 3 ]; [ 2; 4 ] ]) (Mat.transpose a);
  Alcotest.check mat "mul" (m [ [ 7; 10 ]; [ 15; 22 ] ]) (Mat.mul a a);
  Alcotest.check vec "apply" (Vec.of_list [ 5; 11 ]) (Mat.apply a (Vec.of_list [ 1; 2 ]));
  Alcotest.check mat "zero_row" (m [ [ 0; 0 ]; [ 3; 4 ] ]) (Mat.zero_row a 0);
  Alcotest.check mat "zero_col" (m [ [ 1; 0 ]; [ 3; 0 ] ]) (Mat.zero_col a 1);
  Alcotest.check mat "hstack"
    (m [ [ 1; 2; 1; 0 ]; [ 3; 4; 0; 1 ] ])
    (Mat.hstack a (Mat.identity 2));
  Alcotest.check mat "of_cols"
    (m [ [ 1; 0 ]; [ 0; 2 ] ])
    (Mat.of_cols [ Vec.of_list [ 1; 0 ]; Vec.of_list [ 0; 2 ] ] 2)

let test_rank () =
  Alcotest.(check int) "identity rank" 3 (Mat.rank (Mat.identity 3));
  Alcotest.(check int) "zero rank" 0 (Mat.rank (Mat.zero ~rows:2 ~cols:2));
  Alcotest.(check int) "dependent rows" 1 (Mat.rank (m [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.(check int) "wide full rank" 2 (Mat.rank (m [ [ 1; 0; 1 ]; [ 0; 1; 1 ] ]))

let test_kernel () =
  Alcotest.(check int) "identity kernel trivial" 0
    (List.length (Mat.kernel (Mat.identity 3)));
  (match Mat.kernel (m [ [ 1; 1 ] ]) with
  | [ k ] ->
      Alcotest.check vec "kernel of [1 1] is (1,-1) direction"
        (Vec.of_list [ 1; -1 ])
        (if Vec.get k 0 >= 0 then k else Vec.neg k)
  | ks -> Alcotest.failf "expected 1 kernel vector, got %d" (List.length ks));
  (* kernel vectors really are in the kernel, and primitive *)
  let h = m [ [ 2; 4; 0 ]; [ 0; 0; 3 ] ] in
  List.iter
    (fun k ->
      Alcotest.check vec "H k = 0" (Vec.zero 2) (Mat.apply h k);
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      Alcotest.(check int) "primitive" 1
        (Vec.fold (fun g x -> gcd g (abs x)) 0 k))
    (Mat.kernel h);
  Alcotest.(check int) "kernel dim" 1 (List.length (Mat.kernel h))

let test_solve () =
  (* unique solution *)
  (match Mat.solve_int (m [ [ 2; 0 ]; [ 0; 3 ] ]) (Vec.of_list [ 4; 9 ]) with
  | Some x -> Alcotest.check vec "diag solve" (Vec.of_list [ 2; 3 ]) x
  | None -> Alcotest.fail "expected solution");
  (* inconsistent *)
  Alcotest.(check bool) "inconsistent" true
    (Option.is_none (Mat.solve_rat (m [ [ 1; 0 ]; [ 1; 0 ] ]) (Vec.of_list [ 1; 2 ])));
  (* non-integral *)
  Alcotest.(check bool) "2x = 3 has no integer solution" true
    (Option.is_none (Mat.solve_int (m [ [ 2 ] ]) (Vec.of_list [ 3 ])));
  (match Mat.solve_rat (m [ [ 2 ] ]) (Vec.of_list [ 3 ]) with
  | Some [| x |] -> Alcotest.(check bool) "rational solution 3/2" true (Rat.equal x (Rat.make 3 2))
  | Some _ | None -> Alcotest.fail "expected rational solution");
  (* underdetermined: free variables set to zero *)
  (match Mat.solve_int (m [ [ 1; 1 ] ]) (Vec.of_list [ 5 ]) with
  | Some x ->
      Alcotest.check vec "particular solution" (Vec.of_list [ 5; 0 ]) x
  | None -> Alcotest.fail "expected solution")

let test_row_space () =
  let canon rows = Mat.row_space (m rows) in
  Alcotest.(check bool) "same row space" true
    (List.equal Vec.equal (canon [ [ 1; 2 ]; [ 0; 1 ] ]) (canon [ [ 1; 0 ]; [ 1; 1 ] ]));
  Alcotest.(check int) "rank via row space" 1
    (List.length (canon [ [ 2; 4 ]; [ 1; 2 ] ]))

let test_separable () =
  Alcotest.(check bool) "identity separable" true (Mat.is_separable_siv (Mat.identity 3));
  Alcotest.(check bool) "coupled row not separable" false
    (Mat.is_separable_siv (m [ [ 1; 1 ] ]));
  Alcotest.(check bool) "shared column not separable" false
    (Mat.is_separable_siv (m [ [ 1; 0 ]; [ 1; 0 ] ]));
  Alcotest.(check bool) "permutation separable" true
    (Mat.is_separable_siv (m [ [ 0; 1 ]; [ 1; 0 ] ]));
  Alcotest.(check bool) "zero rows separable" true
    (Mat.is_separable_siv (m [ [ 0; 0 ]; [ 0; 2 ] ]))

let mat_gen ~rows ~cols =
  QCheck2.Gen.(
    map
      (fun ls -> Mat.of_rows_list ls)
      (list_size (return rows) (list_size (return cols) (int_range (-4) 4))))

let prop_kernel_in_kernel =
  QCheck2.Test.make ~name:"mat: kernel basis vectors satisfy Hk=0" ~count:300
    (mat_gen ~rows:2 ~cols:3) (fun h ->
      List.for_all (fun k -> Vec.is_zero (Mat.apply h k)) (Mat.kernel h))

let prop_kernel_dim =
  QCheck2.Test.make ~name:"mat: rank + kernel dim = cols" ~count:300
    (mat_gen ~rows:3 ~cols:3) (fun h ->
      Mat.rank h + List.length (Mat.kernel h) = Mat.cols h)

let prop_solve_sound =
  QCheck2.Test.make ~name:"mat: solve_int solutions satisfy Hx=c" ~count:300
    QCheck2.Gen.(pair (mat_gen ~rows:2 ~cols:3) (Gen.vec_gen ~dim:2 ~lo:(-6) ~hi:6))
    (fun (h, c) ->
      match Mat.solve_int h c with
      | Some x -> Vec.equal (Mat.apply h x) c
      | None -> true)

let prop_solve_complete_separable =
  (* For separable SIV matrices, solve_int finds a solution whenever one
     exists: build c from a known integer x. *)
  QCheck2.Test.make ~name:"mat: solve_int complete on separable SIV" ~count:300
    QCheck2.Gen.(
      pair
        (map
           (fun (a, b) -> Mat.of_rows_list [ [ a; 0; 0 ]; [ 0; 0; b ] ])
           (pair (int_range (-3) 3) (int_range (-3) 3)))
        (Gen.vec_gen ~dim:3 ~lo:(-4) ~hi:4))
    (fun (h, x) ->
      let c = Mat.apply h x in
      Option.is_some (Mat.solve_int h c))

let suite =
  [ Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "ops" `Quick test_ops;
    Alcotest.test_case "rank" `Quick test_rank;
    Alcotest.test_case "kernel" `Quick test_kernel;
    Alcotest.test_case "solve" `Quick test_solve;
    Alcotest.test_case "row space" `Quick test_row_space;
    Alcotest.test_case "separable siv" `Quick test_separable;
    Gen.to_alcotest prop_kernel_in_kernel;
    Gen.to_alcotest prop_kernel_dim;
    Gen.to_alcotest prop_solve_sound;
    Gen.to_alcotest prop_solve_complete_separable ]
