open Ujam_linalg

let v = Vec.of_list
let space = Alcotest.testable Subspace.pp Subspace.equal

let test_construction () =
  Alcotest.(check int) "full dim" 3 (Subspace.dim (Subspace.full 3));
  Alcotest.(check int) "trivial dim" 0 (Subspace.dim (Subspace.trivial 3));
  Alcotest.(check bool) "trivial" true (Subspace.is_trivial (Subspace.trivial 2));
  Alcotest.(check bool) "full" true (Subspace.is_full (Subspace.full 2));
  Alcotest.(check int) "dependent spanning set" 1
    (Subspace.dim (Subspace.of_basis ~dim:2 [ v [ 1; 2 ]; v [ 2; 4 ] ]));
  Alcotest.(check int) "span_dims" 2
    (Subspace.dim (Subspace.span_dims ~dim:4 [ 1; 3 ]))

let test_membership () =
  let l = Subspace.of_basis ~dim:3 [ v [ 1; 1; 0 ]; v [ 0; 0; 1 ] ] in
  Alcotest.(check bool) "member" true (Subspace.mem (v [ 2; 2; 5 ]) l);
  Alcotest.(check bool) "zero always member" true (Subspace.mem (v [ 0; 0; 0 ]) l);
  Alcotest.(check bool) "non-member" false (Subspace.mem (v [ 1; 0; 0 ]) l);
  Alcotest.(check bool) "rational combination member" true
    (Subspace.mem (v [ 1; 1; 0 ]) (Subspace.of_basis ~dim:3 [ v [ 2; 2; 0 ] ]))

let test_canonical_equality () =
  Alcotest.check space "different bases, same space"
    (Subspace.of_basis ~dim:2 [ v [ 1; 0 ]; v [ 1; 1 ] ])
    (Subspace.of_basis ~dim:2 [ v [ 0; 1 ]; v [ 1; 0 ] ]);
  Alcotest.(check bool) "subset" true
    (Subspace.subset
       (Subspace.of_basis ~dim:3 [ v [ 1; 1; 0 ] ])
       (Subspace.span_dims ~dim:3 [ 0; 1 ]))

let test_intersect_join () =
  let xy = Subspace.span_dims ~dim:3 [ 0; 1 ] in
  let yz = Subspace.span_dims ~dim:3 [ 1; 2 ] in
  Alcotest.check space "intersect coordinate planes"
    (Subspace.span_dims ~dim:3 [ 1 ])
    (Subspace.intersect xy yz);
  Alcotest.check space "join spans everything" (Subspace.full 3) (Subspace.join xy yz);
  Alcotest.check space "intersect with trivial" (Subspace.trivial 3)
    (Subspace.intersect xy (Subspace.trivial 3));
  (* non-coordinate intersection *)
  let a = Subspace.of_basis ~dim:2 [ v [ 1; 1 ] ] in
  let b = Subspace.of_basis ~dim:2 [ v [ 1; -1 ] ] in
  Alcotest.check space "lines intersect trivially" (Subspace.trivial 2)
    (Subspace.intersect a b);
  Alcotest.check space "line with itself" a (Subspace.intersect a a)

let test_solvable_in () =
  (* A(I,J) vs A(I,J+2): H = identity, difference (0,2), localized = J *)
  let h = Mat.identity 2 in
  let lj = Subspace.span_dims ~dim:2 [ 1 ] in
  Alcotest.(check bool) "solvable within localized loop" true
    (Subspace.solvable_in h (v [ 0; 2 ]) lj);
  Alcotest.(check bool) "not solvable across the other loop" false
    (Subspace.solvable_in h (v [ 2; 0 ]) lj);
  (match Subspace.solution_in h (v [ 0; 2 ]) lj with
  | Some x -> Alcotest.(check bool) "witness" true (Vec.equal x (v [ 0; 2 ]))
  | None -> Alcotest.fail "expected witness");
  (* zero difference always solvable, even in the trivial space *)
  Alcotest.(check bool) "zero diff" true
    (Subspace.solvable_in h (v [ 0; 0 ]) (Subspace.trivial 2));
  (* integrality: 2x = 1 unsolvable over integers *)
  Alcotest.(check bool) "non-integral rejected" false
    (Subspace.solvable_in (Mat.of_rows_list [ [ 2 ] ]) (v [ 1 ]) (Subspace.full 1));
  (* coupled subscript: H = [1 1], difference 3, localized span (1,-1)
     cannot reach it but the full space can *)
  let hc = Mat.of_rows_list [ [ 1; 1 ] ] in
  Alcotest.(check bool) "coupled reachable in full space" true
    (Subspace.solvable_in hc (v [ 3 ]) (Subspace.full 2));
  Alcotest.(check bool) "kernel direction cannot change the value" false
    (Subspace.solvable_in hc (v [ 3 ]) (Subspace.of_basis ~dim:2 [ v [ 1; -1 ] ]))

let sub_gen =
  QCheck2.Gen.(
    let* n = int_range 0 3 in
    let* basis = list_size (return n) (Gen.vec_gen ~dim:3 ~lo:(-3) ~hi:3) in
    return (Subspace.of_basis ~dim:3 basis))

let prop_intersect_subset =
  QCheck2.Test.make ~name:"subspace: intersection contained in both" ~count:200
    QCheck2.Gen.(pair sub_gen sub_gen)
    (fun (a, b) ->
      let i = Subspace.intersect a b in
      Subspace.subset i a && Subspace.subset i b)

let prop_join_contains =
  QCheck2.Test.make ~name:"subspace: join contains both" ~count:200
    QCheck2.Gen.(pair sub_gen sub_gen)
    (fun (a, b) ->
      let j = Subspace.join a b in
      Subspace.subset a j && Subspace.subset b j)

let prop_dim_formula =
  QCheck2.Test.make ~name:"subspace: dim(a)+dim(b) = dim(a∩b)+dim(a+b)" ~count:200
    QCheck2.Gen.(pair sub_gen sub_gen)
    (fun (a, b) ->
      Subspace.dim a + Subspace.dim b
      = Subspace.dim (Subspace.intersect a b) + Subspace.dim (Subspace.join a b))

let prop_solution_in_sound =
  QCheck2.Test.make ~name:"subspace: solution_in witness is valid" ~count:200
    QCheck2.Gen.(
      triple
        (map (fun ls -> Mat.of_rows_list ls)
           (list_size (return 2) (list_size (return 3) (int_range (-3) 3))))
        (Gen.vec_gen ~dim:2 ~lo:(-4) ~hi:4)
        sub_gen)
    (fun (h, c, l) ->
      match Subspace.solution_in h c l with
      | Some x -> Vec.equal (Mat.apply h x) c && Subspace.mem x l
      | None -> true)

let suite =
  [ Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "membership" `Quick test_membership;
    Alcotest.test_case "canonical equality" `Quick test_canonical_equality;
    Alcotest.test_case "intersect and join" `Quick test_intersect_join;
    Alcotest.test_case "solvable_in" `Quick test_solvable_in;
    Gen.to_alcotest prop_intersect_subset;
    Gen.to_alcotest prop_join_contains;
    Gen.to_alcotest prop_dim_formula;
    Gen.to_alcotest prop_solution_in_sound ]
