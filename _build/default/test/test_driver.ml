(* End-to-end driver and the model baselines (brute force, dependence
   model). *)

open Ujam_linalg
open Ujam_core
open Ujam_machine

let v = Vec.of_list

let test_driver_report () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let r = Driver.optimize ~bound:4 ~machine:Presets.alpha nest in
  Alcotest.(check bool) "chose to unroll" true (not (Vec.is_zero r.Driver.choice.Search.u));
  Alcotest.(check bool) "safety allows it" true
    (Ujam_depend.Safety.is_safe
       (Ujam_depend.Graph.build ~include_input:false nest)
       r.Driver.choice.Search.u);
  Alcotest.(check bool) "balance improved" true
    (r.Driver.choice.Search.objective <= r.Driver.original.Search.objective);
  Alcotest.(check int) "at most two loops unrolled" 2
    (max 2 (List.length r.Driver.unroll_levels));
  Alcotest.(check bool) "registers within machine" true
    (r.Driver.choice.Search.registers <= 32);
  let copies = Vec.fold (fun a x -> a * (x + 1)) 1 r.Driver.choice.Search.u in
  Alcotest.(check int) "transformed body size"
    (copies * List.length (Ujam_ir.Nest.body nest))
    (List.length (Ujam_ir.Nest.body r.Driver.transformed));
  Alcotest.(check bool) "speedup estimate positive" true
    (Driver.speedup_estimate r > 0.0)

let test_driver_respects_safety () =
  (* vpenta's J loop carries distance-1 and -2 flow dependences; they do
     not block unroll-and-jam (inner suffix is zero), but a (1,-1) skew
     does. *)
  let d = 2 in
  let open Ujam_ir.Build in
  let j = var d 0 and i = var d 1 in
  let skew =
    nest "skew"
      [ loop d "J" ~level:0 ~lo:2 ~hi:17 (); loop d "I" ~level:1 ~lo:2 ~hi:17 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i +$ 1; j -$ 1 ] +: rd "B" [ i; j ] ]
  in
  let r = Driver.optimize ~bound:4 ~machine:Presets.alpha skew in
  Alcotest.(check bool) "blocked loop not unrolled" true
    (Vec.is_zero r.Driver.choice.Search.u)

let test_driver_single_loop () =
  (* depth-1 nests have no outer loop to unroll; the driver must still
     produce a coherent report. *)
  let d = 1 in
  let open Ujam_ir.Build in
  let i = var d 0 in
  let nest1 =
    nest "axpy"
      [ loop d "I" ~level:0 ~lo:1 ~hi:64 () ]
      [ aref "Y" [ i ] <<- rd "Y" [ i ] +: (s "A" *: rd "X" [ i ]) ]
  in
  let r = Driver.optimize ~bound:4 ~machine:Presets.alpha nest1 in
  Alcotest.(check bool) "u = 0" true (Vec.is_zero r.Driver.choice.Search.u);
  Alcotest.(check int) "no unroll levels" 0 (List.length r.Driver.unroll_levels)

let test_max_loops () =
  (* 3-deep nest where all three outer candidates carry reuse *)
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let one = Driver.optimize ~bound:2 ~max_loops:1 ~machine:Presets.alpha nest in
  let two = Driver.optimize ~bound:2 ~max_loops:2 ~machine:Presets.alpha nest in
  Alcotest.(check int) "one loop" 1 (List.length one.Driver.unroll_levels);
  Alcotest.(check int) "two loops (paper default)" 2
    (List.length two.Driver.unroll_levels);
  Alcotest.(check bool) "more loops never hurt the objective" true
    (two.Driver.choice.Search.objective
    <= one.Driver.choice.Search.objective +. 1e-12)

let test_no_cache_model_matches_paper_example () =
  (* Section 3.3's example: A(J) = A(J) + B(I).  Original balance 1 (one
     B load per iteration, one flop); unrolling J by 1 gives 2 flops and
     still one load: balance 0.5. *)
  let d = 2 in
  let open Ujam_ir.Build in
  let j = var d 0 and i = var d 1 in
  let nest0 =
    nest "sec33"
      [ loop d "J" ~level:0 ~lo:1 ~hi:16 (); loop d "I" ~level:1 ~lo:1 ~hi:16 () ]
      [ aref "A" [ j ] <<- rd "A" [ j ] +: rd "B" [ i ] ]
  in
  let b = Balance.prepare ~machine:Presets.alpha (Unroll_space.make ~bounds:[| 3; 0 |]) nest0 in
  Alcotest.(check (float 1e-9)) "beta_L(0) = 1" 1.0
    (Balance.loop_balance b ~cache:false (v [ 0; 0 ]));
  Alcotest.(check (float 1e-9)) "beta_L(1) = 0.5" 0.5
    (Balance.loop_balance b ~cache:false (v [ 1; 0 ]))

let test_bruteforce_metrics_consistency () =
  let nest = Ujam_kernels.Kernels.dmxpy0 ~n:12 () in
  let m = Bruteforce.metrics ~machine:Presets.alpha nest (v [ 2; 0 ]) in
  Alcotest.(check int) "flops" 6 m.Bruteforce.flops;
  Alcotest.(check bool) "streams >= memory ops" true
    (m.Bruteforce.streams >= m.Bruteforce.memory_ops);
  Alcotest.(check bool) "balance consistent" true
    (m.Bruteforce.balance_cache >= m.Bruteforce.balance_nocache)

let test_depmodel_agrees_on_siv_suite () =
  let machine = Presets.alpha in
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      if not (String.equal e.Ujam_kernels.Catalogue.name "afold") then begin
        let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
        let d = Ujam_ir.Nest.depth nest in
        let bounds = Array.make d 2 in
        bounds.(d - 1) <- 0;
        let space = Unroll_space.make ~bounds in
        Unroll_space.iter space (fun u ->
            let bf = Bruteforce.metrics ~machine nest u in
            let dm = Depmodel.metrics ~machine nest u in
            Alcotest.(check (pair int int))
              (Printf.sprintf "%s %s V_M,R" e.Ujam_kernels.Catalogue.name
                 (Vec.to_string u))
              (bf.Bruteforce.memory_ops, bf.Bruteforce.registers)
              (dm.Bruteforce.memory_ops, dm.Bruteforce.registers);
            Alcotest.(check (float 1e-9))
              (Printf.sprintf "%s %s misses" e.Ujam_kernels.Catalogue.name
                 (Vec.to_string u))
              bf.Bruteforce.misses dm.Bruteforce.misses)
      end)
    Ujam_kernels.Catalogue.all

let test_depmodel_coupled_divergence () =
  (* afold's C(I+J-1) is coupled: the dependence-vector abstraction
     treats its self-dependence as innermost-invariant and drops the
     load, the linear-algebra model keeps it — the paper's reason for
     restricting the comparison to separable SIV. *)
  let nest = Ujam_kernels.Kernels.afold ~n:12 () in
  let machine = Presets.alpha in
  let u = v [ 0; 0 ] in
  let bf = Bruteforce.metrics ~machine nest u in
  let dm = Depmodel.metrics ~machine nest u in
  Alcotest.(check bool) "known divergence on coupled subscripts" true
    (bf.Bruteforce.memory_ops <> dm.Bruteforce.memory_ops)

let test_depmodel_graph_cost () =
  let nest = Ujam_kernels.Kernels.jacobi ~n:12 () in
  let with_input, without = Depmodel.graph_cost nest (v [ 0; 0 ]) in
  Alcotest.(check bool) "input dominates jacobi" true (with_input > 2 * without);
  let wi2, wo2 = Depmodel.graph_cost nest (v [ 3; 0 ]) in
  Alcotest.(check bool) "unrolling grows the graph" true (wi2 > with_input && wo2 >= without)

let test_model_choices_agree () =
  let machine = Presets.alpha in
  List.iter
    (fun name ->
      let e = Option.get (Ujam_kernels.Catalogue.find name) in
      let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
      let d = Ujam_ir.Nest.depth nest in
      let bounds = Array.make d 3 in
      bounds.(d - 1) <- 0;
      let space = Unroll_space.make ~bounds in
      let b = Balance.prepare ~machine space nest in
      let c = Search.best ~cache:true b in
      let u_dep, _ = Depmodel.best ~cache:true ~machine space nest in
      Alcotest.(check bool)
        (Printf.sprintf "%s: UGS and dependence models pick the same u" name)
        true (Vec.equal c.Search.u u_dep))
    [ "mmjki"; "mmjik"; "dmxpy0"; "dmxpy1"; "jacobi"; "sor"; "vpenta.7" ]

let prop_driver_outcome_valid =
  QCheck2.Test.make ~name:"driver: choice is safe and within registers" ~count:40
    (Gen.nest_gen ~max_depth:2 ()) (fun nest ->
      let machine = Presets.alpha in
      let r = Driver.optimize ~bound:3 ~machine nest in
      let g = Ujam_depend.Graph.build ~include_input:false nest in
      Ujam_depend.Safety.is_safe g r.Driver.choice.Search.u
      && r.Driver.choice.Search.registers <= machine.Machine.fp_registers)

let suite =
  [ Alcotest.test_case "driver report" `Quick test_driver_report;
    Alcotest.test_case "driver respects safety" `Quick test_driver_respects_safety;
    Alcotest.test_case "single-loop nest" `Quick test_driver_single_loop;
    Alcotest.test_case "max_loops knob" `Quick test_max_loops;
    Alcotest.test_case "paper Sec 3.3 example" `Quick test_no_cache_model_matches_paper_example;
    Alcotest.test_case "bruteforce metrics" `Quick test_bruteforce_metrics_consistency;
    Alcotest.test_case "dependence model agrees (SIV suite)" `Slow
      test_depmodel_agrees_on_siv_suite;
    Alcotest.test_case "dependence model diverges on coupled" `Quick
      test_depmodel_coupled_divergence;
    Alcotest.test_case "graph cost" `Quick test_depmodel_graph_cost;
    Alcotest.test_case "model choices agree" `Quick test_model_choices_agree;
    Gen.to_alcotest prop_driver_outcome_valid ]
