open Ujam_linalg

let vec = Alcotest.testable Vec.pp Vec.equal

let test_construction () =
  Alcotest.check vec "of_list/make" (Vec.of_list [ 1; 2; 3 ]) (Vec.make [| 1; 2; 3 |]);
  Alcotest.check vec "zero" (Vec.of_list [ 0; 0 ]) (Vec.zero 2);
  Alcotest.check vec "unit" (Vec.of_list [ 0; 1; 0 ]) (Vec.unit 3 1);
  Alcotest.check vec "init" (Vec.of_list [ 0; 2; 4 ]) (Vec.init 3 (fun i -> 2 * i));
  Alcotest.(check int) "dim" 3 (Vec.dim (Vec.zero 3))

let test_copy_semantics () =
  let a = [| 1; 2 |] in
  let v = Vec.make a in
  a.(0) <- 99;
  Alcotest.(check int) "make copies input" 1 (Vec.get v 0);
  let arr = Vec.to_array v in
  arr.(1) <- 77;
  Alcotest.(check int) "to_array copies output" 2 (Vec.get v 1);
  let v' = Vec.set v 0 5 in
  Alcotest.(check int) "set is functional" 1 (Vec.get v 0);
  Alcotest.(check int) "set updates the copy" 5 (Vec.get v' 0)

let test_arithmetic () =
  let a = Vec.of_list [ 1; 2; 3 ] and b = Vec.of_list [ 4; 5; 6 ] in
  Alcotest.check vec "add" (Vec.of_list [ 5; 7; 9 ]) (Vec.add a b);
  Alcotest.check vec "sub" (Vec.of_list [ -3; -3; -3 ]) (Vec.sub a b);
  Alcotest.check vec "neg" (Vec.of_list [ -1; -2; -3 ]) (Vec.neg a);
  Alcotest.check vec "scale" (Vec.of_list [ 2; 4; 6 ]) (Vec.scale 2 a);
  Alcotest.(check int) "dot" 32 (Vec.dot a b)

let test_orders () =
  let a = Vec.of_list [ 1; 5 ] and b = Vec.of_list [ 2; 0 ] in
  Alcotest.(check bool) "lex a < b" true (Vec.compare a b < 0);
  Alcotest.(check (option int)) "pointwise incomparable" None (Vec.compare_pointwise a b);
  Alcotest.(check (option int)) "pointwise le" (Some (-1))
    (Vec.compare_pointwise (Vec.of_list [ 1; 0 ]) (Vec.of_list [ 1; 5 ]));
  Alcotest.(check (option int)) "pointwise eq" (Some 0)
    (Vec.compare_pointwise a (Vec.of_list [ 1; 5 ]));
  Alcotest.(check bool) "leq_pointwise" true
    (Vec.leq_pointwise (Vec.of_list [ 0; 0 ]) a);
  Alcotest.(check bool) "leq_pointwise dims differ" false
    (Vec.leq_pointwise (Vec.zero 3) a)

let test_predicates () =
  Alcotest.(check bool) "is_zero" true (Vec.is_zero (Vec.zero 4));
  Alcotest.(check bool) "not is_zero" false (Vec.is_zero (Vec.unit 4 2));
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x < 0) (Vec.of_list [ 1; -1 ]));
  Alcotest.(check bool) "for_all" true (Vec.for_all (fun x -> x >= 0) (Vec.of_list [ 0; 3 ]));
  Alcotest.(check int) "fold" 6 (Vec.fold ( + ) 0 (Vec.of_list [ 1; 2; 3 ]))

let prop_add_commutes =
  QCheck2.Test.make ~name:"vec: add commutes" ~count:300
    QCheck2.Gen.(pair (Gen.vec_gen ~dim:4 ~lo:(-10) ~hi:10) (Gen.vec_gen ~dim:4 ~lo:(-10) ~hi:10))
    (fun (a, b) -> Vec.equal (Vec.add a b) (Vec.add b a))

let prop_lex_total =
  QCheck2.Test.make ~name:"vec: lex order total and antisymmetric" ~count:300
    QCheck2.Gen.(pair (Gen.vec_gen ~dim:3 ~lo:(-5) ~hi:5) (Gen.vec_gen ~dim:3 ~lo:(-5) ~hi:5))
    (fun (a, b) ->
      let c = Vec.compare a b in
      if Vec.equal a b then c = 0 else c = -Vec.compare b a && c <> 0)

let prop_pointwise_sound =
  QCheck2.Test.make ~name:"vec: compare_pointwise matches leq_pointwise" ~count:300
    QCheck2.Gen.(pair (Gen.vec_gen ~dim:3 ~lo:(-5) ~hi:5) (Gen.vec_gen ~dim:3 ~lo:(-5) ~hi:5))
    (fun (a, b) ->
      match Vec.compare_pointwise a b with
      | Some 0 -> Vec.leq_pointwise a b && Vec.leq_pointwise b a
      | Some -1 -> Vec.leq_pointwise a b
      | Some 1 -> Vec.leq_pointwise b a
      | Some _ -> false
      | None -> (not (Vec.leq_pointwise a b)) && not (Vec.leq_pointwise b a))

let suite =
  [ Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "copy semantics" `Quick test_copy_semantics;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "orders" `Quick test_orders;
    Alcotest.test_case "predicates" `Quick test_predicates;
    Gen.to_alcotest prop_add_commutes;
    Gen.to_alcotest prop_lex_total;
    Gen.to_alcotest prop_pointwise_sound ]
