(* Strip-mining and tiling. *)

open Ujam_ir

let test_strip_mine_structure () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let t = Tile.strip_mine nest ~level:2 ~size:4 in
  Alcotest.(check int) "depth grows" 4 (Nest.depth t);
  Alcotest.(check string) "controller name" "I_T" (Nest.var_name t 2);
  Alcotest.(check string) "element keeps its name" "I" (Nest.var_name t 3);
  Alcotest.(check int) "controller step" 4 (Nest.loops t).(2).Loop.step;
  Alcotest.(check int) "element step" 1 (Nest.loops t).(3).Loop.step;
  let count n =
    let c = ref 0 in
    Nest.iter_index_vectors n (fun _ -> incr c);
    !c
  in
  Alcotest.(check int) "iteration count preserved" (count nest) (count t)

let test_strip_mine_semantics () =
  List.iter
    (fun (nest, level, size) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s strip-mined at %d/%d" (Nest.name nest) level size)
        true
        (Ujam_sim.Interp.equal (Ujam_sim.Interp.run nest)
           (Ujam_sim.Interp.run (Tile.strip_mine nest ~level ~size))))
    [ (Ujam_kernels.Kernels.mmjki ~n:12 (), 0, 3);
      (Ujam_kernels.Kernels.mmjki ~n:12 (), 1, 4);
      (Ujam_kernels.Kernels.vpenta7 ~n:12 (), 1, 2);
      (Ujam_kernels.Kernels.sor ~n:14 (), 0, 2) ]

let test_strip_mine_nondivisible_is_still_exact () =
  (* strip-mining never drops iterations even when the trip count does
     not divide the tile (the controller's last strip is shorter only if
     the element bound says so — here it overruns, matching the
     divisibility convention; use a divisible size in practice) *)
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  Alcotest.check_raises "size validation"
    (Invalid_argument "Tile.strip_mine: size must be positive") (fun () ->
      ignore (Tile.strip_mine nest ~level:0 ~size:0));
  Alcotest.check_raises "level validation"
    (Invalid_argument "Tile.strip_mine: level out of range") (fun () ->
      ignore (Tile.strip_mine nest ~level:3 ~size:2))

let test_tile_structure () =
  (* tile I and J of jacobi: controllers outside, elements inside *)
  let nest = Ujam_kernels.Kernels.jacobi ~n:18 () in
  let t = Tile.tile nest ~levels:[ 0; 1 ] ~sizes:[ 4; 4 ] in
  Alcotest.(check int) "depth" 4 (Nest.depth t);
  Alcotest.(check (list string)) "loop order"
    [ "J_T"; "I_T"; "J"; "I" ]
    (List.init 4 (Nest.var_name t))

let test_tile_semantics () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let t = Tile.tile nest ~levels:[ 0; 1 ] ~sizes:[ 3; 4 ] in
  Alcotest.(check bool) "tiled matmul equal" true
    (Ujam_sim.Interp.equal (Ujam_sim.Interp.run nest) (Ujam_sim.Interp.run t));
  (* jacobi reads B, writes A: fully tileable *)
  let j = Ujam_kernels.Kernels.jacobi ~n:18 () in
  let tj = Tile.tile j ~levels:[ 0; 1 ] ~sizes:[ 4; 4 ] in
  Alcotest.(check bool) "tiled jacobi equal" true
    (Ujam_sim.Interp.equal (Ujam_sim.Interp.run j) (Ujam_sim.Interp.run tj))

let test_tile_then_ujam () =
  (* the Wolf-Lam pipeline: cache-tile, then register-tile the element
     loops with unroll-and-jam, then scalar replace — all semantics
     preserving *)
  let open Ujam_core in
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let tiled = Tile.tile nest ~levels:[ 0; 1 ] ~sizes:[ 4; 4 ] in
  (* tiled depth is 5: (J_T, K_T, J, K, I); unroll the element loops by
     factors dividing the tile size *)
  let u = Ujam_linalg.Vec.of_list [ 0; 0; 1; 1; 0 ] in
  let t = Unroll.unroll_and_jam tiled u in
  let plan = Scalar_replace.plan t in
  let body = Scalar_replace.apply t plan in
  let pre = Scalar_replace.preheader t plan in
  Alcotest.(check bool) "tile + unroll-and-jam + scalar replace" true
    (Ujam_sim.Interp.equal (Ujam_sim.Interp.run nest)
       (Ujam_sim.Interp.run ~preheader:(fun _ -> pre) body))

let test_tile_improves_cache () =
  (* a transposed access pattern whose working set overflows the cache:
     tiling both loops cuts the misses *)
  let open Ujam_ir.Build in
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  let nest =
    nest "transpose"
      [ loop d "J" ~level:0 ~lo:1 ~hi:256 (); loop d "I" ~level:1 ~lo:1 ~hi:256 () ]
      [ aref "B" [ i; j ] <<- rd "A" [ j; i ] ]
  in
  let machine = Ujam_machine.Presets.alpha in
  let before = Ujam_sim.Runner.run ~machine nest in
  let tiled = Tile.tile nest ~levels:[ 0; 1 ] ~sizes:[ 16; 16 ] in
  let after = Ujam_sim.Runner.run ~machine tiled in
  Alcotest.(check bool)
    (Printf.sprintf "misses drop (%d -> %d)" before.Ujam_sim.Runner.misses
       after.Ujam_sim.Runner.misses)
    true
    (after.Ujam_sim.Runner.misses < before.Ujam_sim.Runner.misses);
  Alcotest.(check bool) "tiling preserved semantics" true
    (Ujam_sim.Interp.equal (Ujam_sim.Interp.run nest) (Ujam_sim.Interp.run tiled))

let prop_strip_mine_semantics =
  QCheck2.Test.make ~name:"tile: strip-mining preserves semantics" ~count:60
    ~print:(fun (nest, _, _) -> Gen.nest_print nest)
    QCheck2.Gen.(
      let* nest = Gen.nest_gen () in
      let* level = int_range 0 (Nest.depth nest - 1) in
      let* size = oneofl [ 2; 5 ] in
      return (nest, level, size))
    (fun (nest, level, size) ->
      (* generator trips are 10: use sizes dividing 10 *)
      Ujam_sim.Interp.equal (Ujam_sim.Interp.run nest)
        (Ujam_sim.Interp.run (Tile.strip_mine nest ~level ~size)))

let suite =
  [ Alcotest.test_case "strip-mine structure" `Quick test_strip_mine_structure;
    Alcotest.test_case "strip-mine semantics" `Quick test_strip_mine_semantics;
    Alcotest.test_case "validation" `Quick test_strip_mine_nondivisible_is_still_exact;
    Alcotest.test_case "tile structure" `Quick test_tile_structure;
    Alcotest.test_case "tile semantics" `Quick test_tile_semantics;
    Alcotest.test_case "tile + unroll-and-jam pipeline" `Quick test_tile_then_ujam;
    Alcotest.test_case "tiling cuts transpose misses" `Quick test_tile_improves_cache;
    Gen.to_alcotest prop_strip_mine_semantics ]
