test/test_subspace.ml: Alcotest Gen Mat QCheck2 Subspace Ujam_linalg Vec
