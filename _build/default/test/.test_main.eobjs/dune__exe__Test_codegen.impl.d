test/test_codegen.ml: Alcotest Codegen Driver List Printf Scalar_replace String Ujam_core Ujam_ir Ujam_kernels Ujam_machine Ujam_sim
