test/test_vec.ml: Alcotest Array Gen QCheck2 Ujam_linalg Vec
