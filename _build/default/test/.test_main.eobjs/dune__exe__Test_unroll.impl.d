test/test_unroll.ml: Affine Alcotest Aref Array Expr Float Gen Hashtbl List Loop Nest Printf QCheck2 Stmt String Ujam_core Ujam_ir Ujam_kernels Ujam_linalg Unroll Vec
