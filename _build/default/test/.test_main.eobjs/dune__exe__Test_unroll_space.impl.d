test/test_unroll_space.ml: Alcotest List Ujam_core Ujam_linalg Unroll_space Vec
