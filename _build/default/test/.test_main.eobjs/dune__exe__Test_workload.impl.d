test/test_workload.ml: Alcotest Corpus Generator List Printf String Ujam_ir Ujam_workload
