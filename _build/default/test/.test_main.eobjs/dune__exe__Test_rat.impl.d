test/test_rat.ml: Alcotest Gen QCheck2 Rat Ujam_linalg
