test/test_kernels.ml: Affine Alcotest Aref Array Catalogue Extras Format Interchange Kernels List Nest Option String Ujam_core Ujam_ir Ujam_kernels Ujam_machine
