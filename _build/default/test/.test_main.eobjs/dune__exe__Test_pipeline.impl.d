test/test_pipeline.ml: Alcotest Array Driver Float Gen Interp List Nest Option Printf QCheck2 Scalar_replace Search String Ujam_core Ujam_ir Ujam_kernels Ujam_linalg Ujam_machine Ujam_sim Unroll Vec
