test/test_interchange.ml: Affine Alcotest Aref Array Driver Gen Interchange List Nest Permute QCheck2 Test_unroll Ujam_core Ujam_depend Ujam_ir Ujam_kernels Ujam_machine Ujam_reuse
