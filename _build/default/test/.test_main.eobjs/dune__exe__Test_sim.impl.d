test/test_sim.ml: Alcotest Array Cache Cpu Expr Layout List Machine Nest Option Presets Printf Runner Ujam_core Ujam_ir Ujam_kernels Ujam_linalg Ujam_machine Ujam_sim
