test/gen.ml: Affine Aref Array Expr Fun List Loop Nest QCheck2 QCheck_alcotest Stmt String Ujam_core Ujam_ir Ujam_linalg
