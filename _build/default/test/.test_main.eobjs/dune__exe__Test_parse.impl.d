test/test_parse.ml: Affine Alcotest Aref Array Driver Expr Gen List Loop Nest Parse Printf QCheck2 Scalar_replace Stmt String Ujam_core Ujam_ir Ujam_kernels Ujam_machine
