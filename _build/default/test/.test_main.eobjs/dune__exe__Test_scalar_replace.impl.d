test/test_scalar_replace.ml: Alcotest Gen List Nest Printf QCheck2 Scalar_replace Site Streams String Subspace Ujam_core Ujam_ir Ujam_kernels Ujam_linalg
