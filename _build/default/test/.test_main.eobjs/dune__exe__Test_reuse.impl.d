test/test_reuse.ml: Alcotest Aref Gen Groups List Locality Mat Nest QCheck2 Selfreuse Site String Subspace Ugs Ujam_ir Ujam_kernels Ujam_linalg Ujam_reuse Vec
