test/test_tile.ml: Alcotest Array Gen List Loop Nest Printf QCheck2 Scalar_replace Tile Ujam_core Ujam_ir Ujam_kernels Ujam_linalg Ujam_machine Ujam_sim Unroll
