test/test_balance.ml: Alcotest Array Balance Bruteforce Gen List Machine Option Presets Printf QCheck2 Search Ujam_core Ujam_ir Ujam_kernels Ujam_linalg Ujam_machine Unroll_space Vec
