test/test_ir.ml: Affine Alcotest Aref Array Expr Gen List Loop Mat Nest Option QCheck2 Site Stmt String Ujam_ir Ujam_kernels Ujam_linalg Vec
