test/test_tables.ml: Alcotest Array Gen Groups List Nest Printf QCheck2 Rrs Streams String Subspace Tables Ugs Ujam_core Ujam_ir Ujam_kernels Ujam_linalg Ujam_reuse Unroll Unroll_space Vec
