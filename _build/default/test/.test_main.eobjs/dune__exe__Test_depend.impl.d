test/test_depend.ml: Alcotest Array Depvec Format Gen Graph List QCheck2 Safety Site Stats String Test_pair Test_unroll Ujam_depend Ujam_ir Ujam_kernels Ujam_linalg Unroll Vec
