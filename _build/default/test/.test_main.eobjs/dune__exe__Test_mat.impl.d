test/test_mat.ml: Alcotest Gen List Mat Option QCheck2 Rat Ujam_linalg Vec
