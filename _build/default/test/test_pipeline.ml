(* End-to-end semantic verification: the interpreter executes the
   original nest and the fully lowered result (unroll-and-jam + scalar
   replacement + chain-priming preheader) and the stores must be
   identical.  This is the strongest statement the repository makes
   about the transformation pipeline. *)

open Ujam_linalg
open Ujam_ir
open Ujam_core
open Ujam_sim

let lower nest u =
  let t = Unroll.unroll_and_jam nest u in
  let plan = Scalar_replace.plan t in
  let body = Scalar_replace.apply t plan in
  let pre = Scalar_replace.preheader t plan in
  (body, fun _iv -> pre)

let check_equal name nest u =
  let reference = Interp.run nest in
  let body, preheader = lower nest (Vec.of_list u) in
  let transformed = Interp.run ~preheader body in
  Alcotest.(check bool)
    (Printf.sprintf "%s at u=%s" name (String.concat "," (List.map string_of_int u)))
    true
    (Interp.equal reference transformed)

(* Kernel sizes are chosen so every unrolled loop's trip count divides
   the factor (the cleanup loop is out of scope, as in the paper). *)
let test_suite_semantics () =
  check_equal "mmjki" (Ujam_kernels.Kernels.mmjki ~n:12 ()) [ 1; 2; 0 ];
  check_equal "mmjik" (Ujam_kernels.Kernels.mmjik ~n:12 ()) [ 2; 3; 0 ];
  check_equal "dmxpy0" (Ujam_kernels.Kernels.dmxpy0 ~n:12 ()) [ 3; 0 ];
  check_equal "dmxpy1" (Ujam_kernels.Kernels.dmxpy1 ~n:12 ()) [ 2; 0 ];
  check_equal "jacobi" (Ujam_kernels.Kernels.jacobi ~n:14 ()) [ 2; 0 ];
  check_equal "cond7" (Ujam_kernels.Kernels.cond7 ~n:14 ()) [ 3; 0 ];
  check_equal "cond9" (Ujam_kernels.Kernels.cond9 ~n:13 ()) [ 2; 0 ];
  check_equal "vpenta" (Ujam_kernels.Kernels.vpenta7 ~n:14 ()) [ 1; 0 ];
  check_equal "afold" (Ujam_kernels.Kernels.afold ~n:12 ()) [ 1; 0 ];
  check_equal "btrix1" (Ujam_kernels.Kernels.btrix1 ~n:11 ()) [ 1; 0; 0 ];
  check_equal "btrix7" (Ujam_kernels.Kernels.btrix7 ~n:11 ()) [ 1; 0; 0 ];
  check_equal "btrix7-j" (Ujam_kernels.Kernels.btrix7 ~n:12 ()) [ 0; 3; 0 ];
  check_equal "gmtry3" (Ujam_kernels.Kernels.gmtry3 ~n:12 ()) [ 2; 1; 0 ];
  check_equal "dflux17" (Ujam_kernels.Kernels.dflux17 ~n:14 ()) [ 3; 0 ];
  check_equal "collc2" (Ujam_kernels.Kernels.collc2 ~n:12 ()) [ 2; 0 ];
  check_equal "shal" (Ujam_kernels.Kernels.shal ~n:14 ()) [ 2; 0 ]

let test_scalar_replacement_alone () =
  (* u = 0: the lowering is pure scalar replacement *)
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:10 () in
      let d = Nest.depth nest in
      check_equal e.Ujam_kernels.Catalogue.name nest
        (List.init d (fun _ -> 0)))
    Ujam_kernels.Catalogue.all

let test_reduction_scalar () =
  (* accumulation through the invariant scalar must preserve the sum *)
  let open Ujam_ir.Build in
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  let nest =
    nest "red"
      [ loop d "J" ~level:0 ~lo:1 ~hi:6 (); loop d "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "A" [ j ] <<- rd "A" [ j ] +: rd "B" [ i; j ] ]
  in
  check_equal "reduction" nest [ 0; 0 ];
  check_equal "reduction unrolled" nest [ 2; 0 ]

let test_interp_basics () =
  let open Ujam_ir.Build in
  let d = 1 in
  let i = var d 0 in
  let nest =
    nest "copy"
      [ loop d "I" ~level:0 ~lo:1 ~hi:4 () ]
      [ aref "A" [ i ] <<- f 2.0 *: rd "B" [ i ] ]
  in
  let st = Interp.run nest in
  Alcotest.(check int) "4 locations written" 4 (Interp.written st);
  Alcotest.(check bool) "A(1) defined" true (Option.is_some (Interp.read st "A" [ 1 ]));
  Alcotest.(check bool) "B never written" true (Option.is_none (Interp.read st "B" [ 1 ]));
  Alcotest.(check bool) "checksum stable" true
    (Float.abs (Interp.checksum st -. Interp.checksum (Interp.run nest)) < 1e-12);
  Alcotest.(check bool) "self equal" true (Interp.equal st (Interp.run nest))

let lower_vec nest u =
  let t = Unroll.unroll_and_jam nest u in
  let plan = Scalar_replace.plan t in
  let body = Scalar_replace.apply t plan in
  let pre = Scalar_replace.preheader t plan in
  (body, fun _iv -> pre)

let prop_driver_pipeline_semantics =
  (* For random nests, take the driver's own (safety-bounded) choice,
     restricted to factors dividing the trip counts, and verify the full
     lowering semantically. *)
  QCheck2.Test.make ~name:"pipeline: driver choice + lowering preserves semantics"
    ~count:40 ~print:Gen.nest_print (Gen.nest_gen ~max_depth:2 ())
    (fun nest ->
      let machine = Ujam_machine.Presets.alpha in
      let r = Driver.optimize ~bound:3 ~machine nest in
      let trips = Option.get (Nest.trip_counts nest) in
      let u =
        Vec.init (Nest.depth nest) (fun k ->
            let want = Vec.get r.Driver.choice.Search.u k + 1 in
            let rec fit f = if f >= 1 && trips.(k) mod f = 0 then f else fit (f - 1) in
            fit want - 1)
      in
      let reference = Interp.run nest in
      let body, preheader = lower_vec nest u in
      Interp.equal reference (Interp.run ~preheader body))

let suite =
  [ Alcotest.test_case "interp basics" `Quick test_interp_basics;
    Alcotest.test_case "suite semantics under unroll+scalar-replace" `Quick
      test_suite_semantics;
    Alcotest.test_case "scalar replacement alone" `Quick test_scalar_replacement_alone;
    Alcotest.test_case "reduction through scalar" `Quick test_reduction_scalar;
    Gen.to_alcotest prop_driver_pipeline_semantics ]
