(* IR building blocks: affine subscripts, references, expressions,
   statements, nests, sites. *)

open Ujam_linalg
open Ujam_ir
open Ujam_ir.Build

let vec = Alcotest.testable Vec.pp Vec.equal
let mat = Alcotest.testable Mat.pp Mat.equal

let test_affine_eval () =
  let d = 3 in
  let a = (2 *$ var d 1) +$ 5 in
  Alcotest.(check int) "eval" 11 (Affine.eval a [| 9; 3; 7 |]);
  Alcotest.(check int) "constant eval" 4 (Affine.eval (cst d 4) [| 1; 2; 3 |]);
  Alcotest.(check bool) "uses_level" true (Affine.uses_level a 1);
  Alcotest.(check bool) "not uses_level" false (Affine.uses_level a 0);
  Alcotest.(check bool) "is_constant" true (Affine.is_constant (cst d 7))

let test_affine_shift () =
  let d = 2 in
  let a = (3 *$ var d 0) ++$ var d 1 in
  let shifted = Affine.shift a [| 2; -1 |] in
  (* coefficients unchanged, constant absorbs 3*2 + 1*(-1) = 5 *)
  Alcotest.(check int) "shifted constant" 5 shifted.Affine.const;
  Alcotest.(check bool) "coefs unchanged" true
    (Array.for_all2 ( = ) a.Affine.coefs shifted.Affine.coefs);
  Alcotest.(check int) "shift = eval difference"
    (Affine.eval a [| 7 + 2; 4 - 1 |])
    (Affine.eval shifted [| 7; 4 |])

let test_aref_hc () =
  let d = 2 in
  let i = var d 1 and j = var d 0 in
  (* A(I+1, J-3) in a (J,I) nest: H rows are array dims *)
  let r = aref "A" [ i +$ 1; j -$ 3 ] in
  Alcotest.check mat "H" (Mat.of_rows_list [ [ 0; 1 ]; [ 1; 0 ] ]) (Aref.h_matrix r);
  Alcotest.check vec "c" (Vec.of_list [ 1; -3 ]) (Aref.c_vector r);
  Alcotest.(check bool) "separable" true (Aref.is_separable_siv r);
  Alcotest.(check bool) "coupled not separable" false
    (Aref.is_separable_siv (aref "C" [ i ++$ j ]))

let test_aref_shift () =
  let d = 2 in
  let r = aref "A" [ var d 1; var d 0 +$ 2 ] in
  let r' = Aref.shift r [| 3; 1 |] in
  Alcotest.check vec "c + H o" (Vec.of_list [ 1; 5 ]) (Aref.c_vector r');
  Alcotest.check mat "H unchanged" (Aref.h_matrix r) (Aref.h_matrix r')

let test_expr_flops_reads () =
  let d = 1 in
  let e = (rd "A" [ var d 0 ] +: rd "B" [ var d 0 ]) *: (f 2.0 -: s "X") in
  Alcotest.(check int) "flops counts binops" 3 (Expr.flops e);
  Alcotest.(check int) "reads" 2 (List.length (Expr.reads e));
  Alcotest.(check (list string)) "scalars" [ "X" ] (Expr.scalars e);
  Alcotest.(check (list string)) "reads in textual order" [ "A"; "B" ]
    (List.map Aref.base (Expr.reads e));
  Alcotest.(check int) "neg free" 0 (Expr.flops (Expr.Neg (f 1.0)))

let test_expr_substitute_order () =
  let d = 1 in
  let e = rd "A" [ var d 0 ] +: (rd "B" [ var d 0 ] *: rd "A" [ var d 0 ]) in
  (* substitution function must see reads left-to-right *)
  let seen = ref [] in
  let _ =
    Expr.substitute
      (fun r ->
        seen := Aref.base r :: !seen;
        None)
      e
  in
  Alcotest.(check (list string)) "traversal order" [ "A"; "B"; "A" ] (List.rev !seen)

let test_stmt () =
  let d = 1 in
  let st = aref "A" [ var d 0 ] <<- rd "A" [ var d 0 -$ 1 ] +: s "C" in
  Alcotest.(check int) "stmt flops" 1 (Stmt.flops st);
  Alcotest.(check int) "writes" 1 (List.length (Stmt.writes st));
  Alcotest.(check int) "reads" 1 (List.length (Stmt.reads st));
  let st' = Stmt.shift st [| 2 |] in
  Alcotest.check vec "lhs shifted" (Vec.of_list [ 2 ])
    (Aref.c_vector (List.hd (Stmt.writes st')));
  Alcotest.check vec "rhs shifted" (Vec.of_list [ 1 ])
    (Aref.c_vector (List.hd (Stmt.reads st')));
  let sc = "t0" <<~ s "x" in
  Alcotest.(check int) "scalar lhs no writes" 0 (List.length (Stmt.writes sc))

let test_nest_validation () =
  let d = 2 in
  Alcotest.check_raises "levels out of order"
    (Invalid_argument "Nest.make: loop levels out of order") (fun () ->
      ignore
        (nest "bad"
           [ loop d "I" ~level:1 ~lo:1 ~hi:5 (); loop d "J" ~level:0 ~lo:1 ~hi:5 () ]
           []));
  Alcotest.check_raises "subscript depth mismatch"
    (Invalid_argument "Nest.make: subscript depth mismatch") (fun () ->
      ignore
        (nest "bad"
           [ loop d "I" ~level:0 ~lo:1 ~hi:5 (); loop d "J" ~level:1 ~lo:1 ~hi:5 () ]
           [ aref "A" [ var 3 0 ] <<- f 1.0 ]));
  Alcotest.check_raises "bound uses inner index"
    (Invalid_argument "Loop.make: bound uses inner index") (fun () ->
      ignore (loop_aff "I" ~level:0 ~lo:(var d 1) ~hi:(cst d 5) ()))

let test_nest_queries () =
  let n = Ujam_kernels.Kernels.mmjki ~n:10 () in
  Alcotest.(check int) "depth" 3 (Nest.depth n);
  Alcotest.(check int) "flops" 2 (Nest.flops_per_iteration n);
  Alcotest.(check (list string)) "arrays" [ "C"; "A"; "B" ] (Nest.arrays n);
  Alcotest.(check int) "refs" 4 (List.length (Nest.refs n));
  Alcotest.(check (option int)) "iterations" (Some 1000) (Nest.iterations n);
  Alcotest.(check string) "var_name" "K" (Nest.var_name n 1)

let test_nest_iteration () =
  (* triangular bounds: DO I = 1,3; DO J = I,3 *)
  let d = 2 in
  let n =
    nest "tri"
      [ loop d "I" ~level:0 ~lo:1 ~hi:3 ();
        loop_aff "J" ~level:1 ~lo:(var d 0) ~hi:(cst d 3) () ]
      [ aref "A" [ var d 1 ] <<- f 0.0 ]
  in
  let count = ref 0 and log = ref [] in
  Nest.iter_index_vectors n (fun iv ->
      incr count;
      log := (iv.(0), iv.(1)) :: !log);
  Alcotest.(check int) "triangular count" 6 !count;
  Alcotest.(check bool) "lower bound respected" true
    (List.for_all (fun (i, j) -> j >= i) !log);
  Alcotest.(check (option int)) "no constant trips" None
    (Option.map Array.length (Nest.trip_counts n))

let test_nest_step_iteration () =
  let d = 1 in
  let n =
    nest "step"
      [ Loop.make_const ~var:"I" ~level:0 ~depth:d ~lo:1 ~hi:10 ~step:3 () ]
      [ aref "A" [ var d 0 ] <<- f 0.0 ]
  in
  let ivs = ref [] in
  Nest.iter_index_vectors n (fun iv -> ivs := iv.(0) :: !ivs);
  Alcotest.(check (list int)) "stepped indices" [ 1; 4; 7; 10 ] (List.rev !ivs)

let test_pretty () =
  let str = Nest.to_string (Ujam_kernels.Kernels.dmxpy0 ~n:5 ()) in
  Alcotest.(check bool) "DO lines" true
    (String.length str > 0
    && List.exists
         (fun line -> String.length line >= 2 && String.sub line 0 2 = "DO")
         (String.split_on_char '\n' str));
  Alcotest.(check bool) "mentions subscript" true
    (let rec contains s sub i =
       if i + String.length sub > String.length s then false
       else if String.sub s i (String.length sub) = sub then true
       else contains s sub (i + 1)
     in
     contains str "M(I,J)" 0)

let test_sites () =
  let n = Ujam_kernels.Kernels.dflux16 ~n:10 () in
  let sites = Site.of_nest n in
  Alcotest.(check int) "site count" 7 (List.length sites);
  List.iteri
    (fun i (s : Site.t) -> Alcotest.(check int) "dense ids in list order" i s.Site.id)
    sites;
  let writes = List.filter Site.is_write sites in
  Alcotest.(check int) "one write per statement" 2 (List.length writes);
  (* reads of a statement precede its write *)
  List.iter
    (fun (w : Site.t) ->
      List.iter
        (fun (s : Site.t) ->
          if s.Site.stmt = w.Site.stmt && not (Site.is_write s) then
            Alcotest.(check bool) "read id < write id" true (s.Site.id < w.Site.id))
        sites)
    writes

let prop_shift_commutes_with_eval =
  QCheck2.Test.make ~name:"ir: Aref.shift matches H*o on constants" ~count:300
    QCheck2.Gen.(pair (Gen.aref_gen ~depth:3 ~base:"A") (Gen.vec_gen ~dim:3 ~lo:(-4) ~hi:4))
    (fun (r, o) ->
      let shifted = Aref.shift r (Vec.to_array o) in
      Vec.equal
        (Aref.c_vector shifted)
        (Vec.add (Aref.c_vector r) (Mat.apply (Aref.h_matrix r) o)))

let suite =
  [ Alcotest.test_case "affine eval" `Quick test_affine_eval;
    Alcotest.test_case "affine shift" `Quick test_affine_shift;
    Alcotest.test_case "aref H and c" `Quick test_aref_hc;
    Alcotest.test_case "aref shift" `Quick test_aref_shift;
    Alcotest.test_case "expr flops/reads" `Quick test_expr_flops_reads;
    Alcotest.test_case "expr substitute order" `Quick test_expr_substitute_order;
    Alcotest.test_case "stmt" `Quick test_stmt;
    Alcotest.test_case "nest validation" `Quick test_nest_validation;
    Alcotest.test_case "nest queries" `Quick test_nest_queries;
    Alcotest.test_case "triangular iteration" `Quick test_nest_iteration;
    Alcotest.test_case "stepped iteration" `Quick test_nest_step_iteration;
    Alcotest.test_case "pretty printer" `Quick test_pretty;
    Alcotest.test_case "sites" `Quick test_sites;
    Gen.to_alcotest prop_shift_commutes_with_eval ]
