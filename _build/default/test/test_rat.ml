open Ujam_linalg

let rat = Alcotest.testable Rat.pp Rat.equal

let check_rat = Alcotest.check rat

let test_normalisation () =
  check_rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  check_rat "-6/4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  check_rat "0/7 = 0" Rat.zero (Rat.make 0 7);
  Alcotest.(check int) "den positive" 2 (Rat.den (Rat.make 1 (-2)));
  Alcotest.(check int) "num carries sign" (-1) (Rat.num (Rat.make 1 (-2)))

let test_arithmetic () =
  check_rat "1/2 + 1/3" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  check_rat "1/2 - 1/3" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  check_rat "2/3 * 3/4" (Rat.make 1 2) (Rat.mul (Rat.make 2 3) (Rat.make 3 4));
  check_rat "1/2 / 1/4" (Rat.of_int 2) (Rat.div (Rat.make 1 2) (Rat.make 1 4));
  check_rat "neg" (Rat.make (-1) 2) (Rat.neg (Rat.make 1 2));
  check_rat "abs" (Rat.make 1 2) (Rat.abs (Rat.make (-1) 2));
  check_rat "inv" (Rat.make 3 2) (Rat.inv (Rat.make 2 3))

let test_division_by_zero () =
  Alcotest.check_raises "make _ 0" Division_by_zero (fun () ->
      ignore (Rat.make 1 0));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Rat.inv Rat.zero));
  Alcotest.check_raises "div by 0" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Rat.(make 1 3 < make 1 2);
  Alcotest.(check bool) "-1/2 < 1/3" true Rat.(make (-1) 2 < make 1 3);
  Alcotest.(check int) "equal compare" 0 (Rat.compare (Rat.make 2 4) (Rat.make 1 2));
  Alcotest.(check int) "sign neg" (-1) (Rat.sign (Rat.make (-3) 7));
  check_rat "min" (Rat.make 1 3) (Rat.min (Rat.make 1 2) (Rat.make 1 3));
  check_rat "max" (Rat.make 1 2) (Rat.max (Rat.make 1 2) (Rat.make 1 3))

let test_integrality () =
  Alcotest.(check bool) "4/2 is integer" true (Rat.is_integer (Rat.make 4 2));
  Alcotest.(check bool) "1/2 not integer" false (Rat.is_integer (Rat.make 1 2));
  Alcotest.(check int) "to_int_exn" 2 (Rat.to_int_exn (Rat.make 4 2));
  Alcotest.check_raises "to_int_exn 1/2"
    (Invalid_argument "Rat.to_int_exn: not an integer") (fun () ->
      ignore (Rat.to_int_exn (Rat.make 1 2)));
  Alcotest.(check (float 1e-9)) "to_float" 0.5 (Rat.to_float (Rat.make 1 2))

let prop_field_ops =
  QCheck2.Test.make ~name:"rat: (a+b)*c = a*c + b*c" ~count:500
    QCheck2.Gen.(
      triple
        (pair (int_range (-50) 50) (int_range 1 20))
        (pair (int_range (-50) 50) (int_range 1 20))
        (pair (int_range (-50) 50) (int_range 1 20)))
    (fun ((an, ad), (bn, bd), (cn, cd)) ->
      let a = Rat.make an ad and b = Rat.make bn bd and c = Rat.make cn cd in
      Rat.equal
        (Rat.mul (Rat.add a b) c)
        (Rat.add (Rat.mul a c) (Rat.mul b c)))

let prop_add_sub_roundtrip =
  QCheck2.Test.make ~name:"rat: a + b - b = a" ~count:500
    QCheck2.Gen.(
      pair
        (pair (int_range (-50) 50) (int_range 1 20))
        (pair (int_range (-50) 50) (int_range 1 20)))
    (fun ((an, ad), (bn, bd)) ->
      let a = Rat.make an ad and b = Rat.make bn bd in
      Rat.equal a (Rat.sub (Rat.add a b) b))

let prop_compare_antisym =
  QCheck2.Test.make ~name:"rat: compare antisymmetric" ~count:500
    QCheck2.Gen.(
      pair
        (pair (int_range (-50) 50) (int_range 1 20))
        (pair (int_range (-50) 50) (int_range 1 20)))
    (fun ((an, ad), (bn, bd)) ->
      let a = Rat.make an ad and b = Rat.make bn bd in
      Rat.compare a b = -Rat.compare b a)

let suite =
  [ Alcotest.test_case "normalisation" `Quick test_normalisation;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "integrality" `Quick test_integrality;
    Gen.to_alcotest prop_field_ops;
    Gen.to_alcotest prop_add_sub_roundtrip;
    Gen.to_alcotest prop_compare_antisym ]
