(* The Fortran-style parser: acceptance, rejection, and the round trip
   with the pretty printer. *)

open Ujam_ir

let parse s =
  match Parse.nest s with
  | Ok n -> n
  | Error e -> Alcotest.failf "parse failed: %a" Parse.pp_error e

let reject ?(substring = "") s =
  match Parse.nest s with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" s
  | Error e ->
      if substring <> "" then
        Alcotest.(check bool)
          (Printf.sprintf "error mentions %S (got %S)" substring e.Parse.message)
          true
          (let n = String.length substring in
           let rec go i =
             if i + n > String.length e.Parse.message then false
             else if String.sub e.Parse.message i n = substring then true
             else go (i + 1)
           in
           go 0)

let test_simple () =
  let n =
    parse {|
DO J = 1, 10
  DO I = 1, 20
    A(I,J) = A(I,J) + B(I-1,J) * 0.25
  ENDDO
ENDDO
|}
  in
  Alcotest.(check int) "depth" 2 (Nest.depth n);
  Alcotest.(check int) "one stmt" 1 (List.length (Nest.body n));
  Alcotest.(check int) "three refs" 3 (List.length (Nest.refs n));
  Alcotest.(check string) "outer var" "J" (Nest.var_name n 0);
  Alcotest.(check (option int)) "iterations" (Some 200) (Nest.iterations n)

let test_features () =
  let n =
    parse {|
DO I = 1, 16, 2            ! stepped loop
  DO J = I, 16             ! triangular bound
    A(2*J-1) = -(B(J) + C) / 4.0 + X(I+J)
  ENDDO
ENDDO
|}
  in
  Alcotest.(check int) "step parsed" 2 (Nest.loops n).(0).Loop.step;
  let w = List.hd (List.filter_map (fun (r, k) -> if k = `Write then Some r else None) (Nest.refs n)) in
  Alcotest.(check bool) "coefficient-2 subscript" true
    (Array.exists (fun c -> c = 2) w.Aref.subs.(0).Affine.coefs);
  Alcotest.(check int) "constant" (-1) w.Aref.subs.(0).Affine.const;
  (* scalar C survives as a scalar, X(I+J) is a coupled read *)
  let stmt = List.hd (Nest.body n) in
  Alcotest.(check (list string)) "scalars" [ "C" ] (Expr.scalars stmt.Stmt.rhs);
  Alcotest.(check int) "reads" 2 (List.length (Stmt.reads stmt));
  Alcotest.(check int) "flops" 3 (Stmt.flops stmt)

let test_scalar_statement () =
  let n =
    parse {|
DO I = 1, 4
  T = A(I) * 2.0
  B(I) = T
ENDDO
|}
  in
  match Nest.body n with
  | [ s1; s2 ] ->
      Alcotest.(check bool) "first assigns a scalar" true
        (match s1.Stmt.lhs with Stmt.Scalar_var "T" -> true | _ -> false);
      Alcotest.(check bool) "second stores" true
        (match s2.Stmt.lhs with Stmt.Array_elt _ -> true | _ -> false)
  | _ -> Alcotest.fail "expected two statements"

let test_errors () =
  reject ~substring:"no DO header" "A(I) = 1.0";
  reject ~substring:"ENDDO" "DO I = 1, 4\n  A(I) = 1.0\n";
  reject ~substring:"unknown loop variable" "DO I = 1, 4\n  A(K) = 1.0\nENDDO";
  reject ~substring:"empty loop body" "DO I = 1, 4\nENDDO";
  reject ~substring:"malformed DO" "DO = 1, 4\n  A(I) = 1.0\nENDDO";
  reject ~substring:"ENDDO" "DO I = 1, 4\n  A(I) = 1.0\nENDDO\nENDDO";
  reject ~substring:"unexpected character" "DO I = 1, 4\n  A(I) = 1.0 @ 2\nENDDO";
  (* inner variable in an outer bound *)
  reject "DO I = J, 4\n  DO J = 1, 3\n    A(I,J) = 1.0\n  ENDDO\nENDDO"

let test_roundtrip_kernels () =
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
      let text = Nest.to_string nest in
      match Parse.nest ~name:(Nest.name nest) text with
      | Error err ->
          Alcotest.failf "%s does not re-parse: %a@.%s" e.Ujam_kernels.Catalogue.name
            Parse.pp_error err text
      | Ok reparsed ->
          Alcotest.(check string)
            (e.Ujam_kernels.Catalogue.name ^ " round-trips")
            text
            (Nest.to_string reparsed))
    Ujam_kernels.Catalogue.all

let test_roundtrip_transformed () =
  (* the pretty-printed output of unroll-and-jam + scalar replacement
     also stays within the parser's language *)
  let open Ujam_core in
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let r = Driver.optimize ~bound:3 ~machine:Ujam_machine.Presets.alpha nest in
  let out = Scalar_replace.apply r.Driver.transformed r.Driver.plan in
  let text = Nest.to_string out in
  match Parse.nest text with
  | Error err -> Alcotest.failf "transformed loop does not re-parse: %a" Parse.pp_error err
  | Ok reparsed ->
      Alcotest.(check string) "transformed round-trips" text (Nest.to_string reparsed)

let prop_roundtrip_random =
  QCheck2.Test.make ~name:"parse: pp then parse is the identity" ~count:150
    ~print:Gen.nest_print (Gen.nest_gen ())
    (fun nest ->
      match Parse.nest (Nest.to_string nest) with
      | Error _ -> false
      | Ok reparsed -> String.equal (Nest.to_string nest) (Nest.to_string reparsed))

let suite =
  [ Alcotest.test_case "simple nest" `Quick test_simple;
    Alcotest.test_case "steps, triangular, coefficients" `Quick test_features;
    Alcotest.test_case "scalar statements" `Quick test_scalar_statement;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "kernel suite round-trips" `Quick test_roundtrip_kernels;
    Alcotest.test_case "transformed code round-trips" `Quick test_roundtrip_transformed;
    Gen.to_alcotest prop_roundtrip_random ]
