  $ ujc list | head -6
  $ ujc show dmxpy0 -n 6
  $ ujc tables dmxpy0 -n 6 -b 2
  $ ujc optimize dmxpy0 -n 16 -b 3 --no-cache | head -4
  $ ujc verify dmxpy0 -n 16 -b 3 | tail -1
  $ ujc graph dmxpy0 -n 6
  $ ujc graph dmxpy0 -n 6 --no-input
  $ cat > my.loop <<'LOOP'
  > DO I = 1, 32
  >   DO J = 1, 32
  >     Y(I) = Y(I) + X(J) * M(I,J)
  >   ENDDO
  > ENDDO
  > LOOP
  $ ujc compile my.loop --permute -b 1 | head -2
