(* Scalar replacement: plan counts, site filtering for the simulator, and
   the display rewrite. *)

open Ujam_linalg
open Ujam_ir
open Ujam_ir.Build
open Ujam_core

let test_plan_counts () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let p = Scalar_replace.plan nest in
  (* C load, C store, A load kept; B register-resident *)
  Alcotest.(check int) "kept" 3 (List.length p.Scalar_replace.kept);
  Alcotest.(check int) "eliminated" 1 (List.length p.Scalar_replace.eliminated);
  Alcotest.(check int) "registers" 4 p.Scalar_replace.registers;
  let sites = Site.of_nest nest in
  let kept = List.filter (Scalar_replace.issues_memory p) sites in
  Alcotest.(check int) "issues_memory consistent" 3 (List.length kept)

let test_plan_matches_streams () =
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
      let p = Scalar_replace.plan nest in
      let d = Nest.depth nest in
      let localized = Subspace.span_dims ~dim:d [ d - 1 ] in
      let summary = Streams.summarize (Streams.of_body ~localized nest) in
      Alcotest.(check int)
        (Printf.sprintf "%s kept = V_M" e.Ujam_kernels.Catalogue.name)
        summary.Streams.memory_ops
        (List.length p.Scalar_replace.kept);
      Alcotest.(check int)
        (Printf.sprintf "%s registers" e.Ujam_kernels.Catalogue.name)
        summary.Streams.registers p.Scalar_replace.registers)
    Ujam_kernels.Catalogue.all

let contains s sub =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then false
    else if String.sub s i n = sub then true
    else go (i + 1)
  in
  go 0

let test_apply_reduction () =
  (* A(J) = A(J) + B(I): A is innermost-invariant (kept in a register),
     B's load survives. *)
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  let nest =
    nest "red"
      [ loop d "J" ~level:0 ~lo:1 ~hi:8 (); loop d "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "A" [ j ] <<- rd "A" [ j ] +: rd "B" [ i ] ]
  in
  let p = Scalar_replace.plan nest in
  Alcotest.(check int) "only B issues memory" 1 (List.length p.Scalar_replace.kept);
  let out = Nest.to_string (Scalar_replace.apply nest p) in
  Alcotest.(check bool) "A read became a scalar" true (contains out "A_inv");
  Alcotest.(check bool) "B load survives" true (contains out "B(I)")

let test_apply_chain () =
  (* A(I,J) = A(I,J-2) + 1: rotating 3-register chain with shifts. *)
  let d = 2 in
  let i = var d 0 and j = var d 1 in
  let nest =
    nest "lag2"
      [ loop d "I" ~level:0 ~lo:1 ~hi:8 (); loop d "J" ~level:1 ~lo:3 ~hi:18 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i; j -$ 2 ] +: f 1.0 ]
  in
  let p = Scalar_replace.plan nest in
  let out = Nest.to_string (Scalar_replace.apply nest p) in
  Alcotest.(check bool) "chain head filled" true (contains out "A_0_0 =");
  Alcotest.(check bool) "store kept" true (contains out "A(I,J) = A_0_0");
  Alcotest.(check bool) "use reads the lag-2 temp" true (contains out "A_0_2");
  Alcotest.(check bool) "rotation emitted" true (contains out "A_0_2 = A_0_1");
  Alcotest.(check bool) "second rotation" true (contains out "A_0_1 = A_0_0")

let test_apply_preserves_flop_count () =
  let nest = Ujam_kernels.Kernels.cond7 ~n:12 () in
  let p = Scalar_replace.plan nest in
  let out = Scalar_replace.apply nest p in
  Alcotest.(check int) "flops unchanged"
    (Nest.flops_per_iteration nest)
    (Nest.flops_per_iteration out)

let prop_kept_plus_eliminated_is_all =
  QCheck2.Test.make ~name:"scalar-replace: kept + eliminated = all sites" ~count:100
    (Gen.nest_gen ()) (fun nest ->
      let p = Scalar_replace.plan nest in
      List.length p.Scalar_replace.kept + List.length p.Scalar_replace.eliminated
      = List.length (Site.of_nest nest))

let prop_every_def_kept_or_invariant =
  QCheck2.Test.make ~name:"scalar-replace: defs issue stores unless invariant"
    ~count:100 (Gen.nest_gen ()) (fun nest ->
      let p = Scalar_replace.plan nest in
      let invariant_sites =
        List.concat_map
          (fun (s : Streams.stream) ->
            if s.Streams.invariant then
              List.map (fun (m : Streams.member) -> m.Streams.site.Site.id) s.Streams.members
            else [])
          p.Scalar_replace.streams
      in
      List.for_all
        (fun (s : Site.t) ->
          (not (Site.is_write s))
          || Scalar_replace.issues_memory p s
          || List.mem s.Site.id invariant_sites)
        (Site.of_nest nest))

let suite =
  [ Alcotest.test_case "plan counts" `Quick test_plan_counts;
    Alcotest.test_case "plan matches streams" `Quick test_plan_matches_streams;
    Alcotest.test_case "apply: reduction" `Quick test_apply_reduction;
    Alcotest.test_case "apply: rotating chain" `Quick test_apply_chain;
    Alcotest.test_case "apply: flops preserved" `Quick test_apply_preserves_flop_count;
    Gen.to_alcotest prop_kept_plus_eliminated_is_all;
    Gen.to_alcotest prop_every_def_kept_or_invariant ]
