open Ujam_linalg
open Ujam_core

let v = Vec.of_list

let test_make () =
  let s = Unroll_space.make ~bounds:[| 2; 3; 0 |] in
  Alcotest.(check int) "card" 12 (Unroll_space.card s);
  Alcotest.(check int) "depth" 3 (Unroll_space.depth s);
  Alcotest.(check (list int)) "unroll levels" [ 0; 1 ] (Unroll_space.unroll_levels s);
  Alcotest.(check bool) "mem" true (Unroll_space.mem s (v [ 2; 3; 0 ]));
  Alcotest.(check bool) "not mem" false (Unroll_space.mem s (v [ 3; 0; 0 ]));
  Alcotest.(check bool) "negative not mem" false (Unroll_space.mem s (v [ -1; 0; 0 ]));
  Alcotest.check_raises "innermost must be zero"
    (Invalid_argument "Unroll_space.make: innermost bound must be 0") (fun () ->
      ignore (Unroll_space.make ~bounds:[| 0; 1 |]))

let test_uniform () =
  let s = Unroll_space.uniform ~depth:3 ~bound:4 ~unroll_levels:[ 0 ] in
  Alcotest.(check int) "card" 5 (Unroll_space.card s);
  Alcotest.check_raises "innermost level rejected"
    (Invalid_argument "Unroll_space.uniform: level out of range") (fun () ->
      ignore (Unroll_space.uniform ~depth:3 ~bound:2 ~unroll_levels:[ 2 ]))

let test_iteration () =
  let s = Unroll_space.make ~bounds:[| 1; 2; 0 |] in
  let vs = Unroll_space.vectors s in
  Alcotest.(check int) "all vectors" 6 (List.length vs);
  Alcotest.(check bool) "lexicographic" true
    (List.for_all2
       (fun a b -> Vec.compare a b < 0)
       (List.filteri (fun i _ -> i < 5) vs)
       (List.tl vs));
  Alcotest.(check bool) "all members" true (List.for_all (Unroll_space.mem s) vs)

let test_table () =
  let s = Unroll_space.make ~bounds:[| 2; 2; 0 |] in
  let t = Unroll_space.Table.create s 5 in
  Alcotest.(check int) "initial" 5 (Unroll_space.Table.get t (v [ 1; 1; 0 ]));
  Unroll_space.Table.set t (v [ 1; 1; 0 ]) 9;
  Unroll_space.Table.add t (v [ 1; 1; 0 ]) 1;
  Alcotest.(check int) "set/add" 10 (Unroll_space.Table.get t (v [ 1; 1; 0 ]));
  Alcotest.(check int) "others untouched" 5 (Unroll_space.Table.get t (v [ 2; 1; 0 ]));
  Alcotest.check_raises "out of space"
    (Invalid_argument "Unroll_space.Table: out of space") (fun () ->
      ignore (Unroll_space.Table.get t (v [ 3; 0; 0 ])))

let test_table_regions () =
  let s = Unroll_space.make ~bounds:[| 2; 2; 0 |] in
  let t = Unroll_space.Table.create s 0 in
  Unroll_space.Table.add_from t (v [ 1; 1; 0 ]) 1;
  Alcotest.(check int) "inside" 1 (Unroll_space.Table.get t (v [ 2; 1; 0 ]));
  Alcotest.(check int) "outside" 0 (Unroll_space.Table.get t (v [ 2; 0; 0 ]));
  let t2 = Unroll_space.Table.create s 0 in
  Unroll_space.Table.add_region t2 ~from_:(v [ 1; 0; 0 ])
    ~excluding:(Some (v [ 2; 0; 0 ])) 1;
  Alcotest.(check int) "in region" 1 (Unroll_space.Table.get t2 (v [ 1; 2; 0 ]));
  Alcotest.(check int) "excluded" 0 (Unroll_space.Table.get t2 (v [ 2; 2; 0 ]));
  Alcotest.(check int) "below" 0 (Unroll_space.Table.get t2 (v [ 0; 0; 0 ]))

let test_prefix_sum () =
  let s = Unroll_space.make ~bounds:[| 2; 2; 0 |] in
  let t = Unroll_space.Table.create s 1 in
  (* Sum over u' <= u of 1 = product of (u_k + 1) *)
  Alcotest.(check int) "prefix at origin" 1
    (Unroll_space.Table.prefix_sum t (v [ 0; 0; 0 ]));
  Alcotest.(check int) "prefix box" 6 (Unroll_space.Table.prefix_sum t (v [ 1; 2; 0 ]));
  Alcotest.(check int) "prefix full" 9 (Unroll_space.Table.prefix_sum t (v [ 2; 2; 0 ]))

let test_merge_add () =
  let s = Unroll_space.make ~bounds:[| 1; 0 |] in
  let a = Unroll_space.Table.create s 1 and b = Unroll_space.Table.create s 2 in
  let c = Unroll_space.Table.merge_add a b in
  Alcotest.(check int) "pointwise sum" 3 (Unroll_space.Table.get c (v [ 1; 0 ]))

let suite =
  [ Alcotest.test_case "make" `Quick test_make;
    Alcotest.test_case "uniform" `Quick test_uniform;
    Alcotest.test_case "iteration" `Quick test_iteration;
    Alcotest.test_case "table basics" `Quick test_table;
    Alcotest.test_case "table regions" `Quick test_table_regions;
    Alcotest.test_case "prefix sum" `Quick test_prefix_sum;
    Alcotest.test_case "merge add" `Quick test_merge_add ]
