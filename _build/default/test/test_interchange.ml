(* Loop interchange, permutation legality, and the permute-then-unroll
   combination. *)

open Ujam_ir
open Ujam_ir.Build
open Ujam_core

let test_permutations () =
  Alcotest.(check int) "3! permutations" 6 (List.length (Interchange.permutations 3));
  Alcotest.(check bool) "identity included" true
    (List.exists (fun p -> p = [| 0; 1; 2 |]) (Interchange.permutations 3))

let test_apply_swaps_everything () =
  let nest = Ujam_kernels.Kernels.mmjik ~n:8 () in
  (* JIK -> JKI: swap levels 1 and 2 *)
  let swapped = Interchange.apply nest [| 0; 2; 1 |] in
  Alcotest.(check string) "new middle loop" "K" (Nest.var_name swapped 1);
  Alcotest.(check string) "new inner loop" "I" (Nest.var_name swapped 2);
  (* C(I,J) must now use level 2 in its first subscript *)
  let c = List.hd (List.filter (fun (r, _) -> Aref.base r = "C") (Nest.refs swapped)) in
  Alcotest.(check bool) "subscripts follow" true
    (Affine.uses_level (fst c).Aref.subs.(0) 2);
  (* and it is textually the jki kernel *)
  Alcotest.(check string) "equal to the jki kernel"
    (Nest.to_string (Ujam_kernels.Kernels.mmjki ~n:8 ()))
    (Nest.to_string swapped)

let test_apply_validation () =
  let jac = Ujam_kernels.Kernels.jacobi ~n:8 () in
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Interchange.apply: not a permutation of the nest levels")
    (fun () -> ignore (Interchange.apply jac [| 0; 0 |]));
  (* triangular: inner bound mentions the outer loop, so the swap is
     inexpressible *)
  let d = 2 in
  let i = var d 0 and j = var d 1 in
  let tri =
    nest "tri"
      [ loop d "I" ~level:0 ~lo:1 ~hi:8 ();
        loop_aff "J" ~level:1 ~lo:(var d 0) ~hi:(cst d 8) () ]
      [ aref "A" [ i; j ] <<- f 0.0 ]
  in
  Alcotest.check_raises "triangular bound blocks interchange"
    (Invalid_argument "Interchange.apply: a loop bound would refer to an inner loop")
    (fun () -> ignore (Interchange.apply tri [| 1; 0 |]))

let test_semantics_preserved () =
  (* independent iterations: interchange must preserve the result *)
  let nest = Ujam_kernels.Kernels.mmjik ~n:10 () in
  let swapped = Interchange.apply nest [| 1; 0; 2 |] in
  Alcotest.(check bool) "interchange preserves matmul" true
    (Test_unroll.stores_equal (Test_unroll.interpret nest) (Test_unroll.interpret swapped))

let test_legality () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  let graph n = Ujam_depend.Graph.build ~include_input:false n in
  (* (1,-1) skew: interchange reverses the dependence *)
  let skew =
    nest "skew"
      [ loop d "J" ~level:0 ~lo:2 ~hi:9 (); loop d "I" ~level:1 ~lo:2 ~hi:9 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i +$ 1; j -$ 1 ] +: f 1.0 ]
  in
  Alcotest.(check bool) "skew blocks interchange" false
    (Ujam_depend.Safety.legal_permutation (graph skew) [| 1; 0 |]);
  Alcotest.(check bool) "identity always legal" true
    (Ujam_depend.Safety.legal_permutation (graph skew) [| 0; 1 |]);
  (* (1,1) forward dependence survives the swap *)
  let fwd =
    nest "fwd"
      [ loop d "J" ~level:0 ~lo:2 ~hi:9 (); loop d "I" ~level:1 ~lo:2 ~hi:9 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i -$ 1; j -$ 1 ] +: f 1.0 ]
  in
  Alcotest.(check bool) "diagonal dependence permits interchange" true
    (Ujam_depend.Safety.legal_permutation (graph fwd) [| 1; 0 |]);
  (* semantic cross-check of both verdicts *)
  let same n perm =
    Test_unroll.stores_equal
      (Test_unroll.interpret n)
      (Test_unroll.interpret (Interchange.apply n perm))
  in
  Alcotest.(check bool) "fwd swap is really safe" true (same fwd [| 1; 0 |]);
  Alcotest.(check bool) "skew swap really breaks" false (same skew [| 1; 0 |])

let test_rank_permutations () =
  (* dmxpy1 walks M along rows; making I innermost (the dmxpy0 order)
     must rank strictly better *)
  let nest = Ujam_kernels.Kernels.dmxpy1 ~n:16 () in
  let ranked = Ujam_reuse.Locality.rank_permutations ~line:4 nest in
  Alcotest.(check int) "both orders ranked" 2 (List.length ranked);
  (match ranked with
  | (best, bc) :: (_, wc) :: _ ->
      Alcotest.(check bool) "swap preferred" true (best = [| 1; 0 |]);
      Alcotest.(check bool) "strictly better" true (bc < wc)
  | _ -> Alcotest.fail "expected two permutations")

let test_permute_optimize () =
  let machine = Ujam_machine.Presets.alpha in
  let dm = Ujam_kernels.Kernels.dmxpy1 ~n:24 () in
  let choice, report = Permute.optimize ~bound:4 ~machine dm in
  Alcotest.(check bool) "permutation applied" true
    (choice.Permute.permutation = [| 1; 0 |]);
  Alcotest.(check bool) "cost improved" true
    (choice.Permute.cost < choice.Permute.original_cost);
  Alcotest.(check string) "driver ran on the permuted nest" "I"
    (Nest.var_name report.Driver.transformed 1);
  (* legality is respected: sor's permutation candidates include the
     illegal swap; best_legal must not pick it *)
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  let skew =
    nest "skew"
      [ loop d "J" ~level:0 ~lo:2 ~hi:9 (); loop d "I" ~level:1 ~lo:2 ~hi:9 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i +$ 1; j -$ 1 ] +: rd "B" [ j; i ] ]
  in
  let c = Permute.best_legal ~machine skew in
  Alcotest.(check bool) "illegal permutation rejected" true
    (c.Permute.permutation = [| 0; 1 |])

let prop_interchange_preserves_refs =
  QCheck2.Test.make ~name:"interchange: reference multiset preserved" ~count:100
    (Gen.nest_gen ()) (fun nest ->
      let d = Nest.depth nest in
      List.for_all
        (fun perm ->
          match Interchange.apply nest perm with
          | permuted ->
              List.length (Nest.refs permuted) = List.length (Nest.refs nest)
          | exception Invalid_argument _ -> true)
        (Interchange.permutations d))

let prop_legal_interchange_semantics =
  QCheck2.Test.make ~name:"interchange: legal permutations preserve semantics"
    ~count:40 ~print:Gen.nest_print (Gen.nest_gen ~max_depth:2 ())
    (fun nest ->
      let graph = Ujam_depend.Graph.build ~include_input:false nest in
      let reference = Test_unroll.interpret nest in
      List.for_all
        (fun perm ->
          if Ujam_depend.Safety.legal_permutation graph perm then
            match Interchange.apply nest perm with
            | permuted -> Test_unroll.stores_equal reference (Test_unroll.interpret permuted)
            | exception Invalid_argument _ -> true
          else true)
        (Interchange.permutations (Nest.depth nest)))

let suite =
  [ Alcotest.test_case "permutations" `Quick test_permutations;
    Alcotest.test_case "apply" `Quick test_apply_swaps_everything;
    Alcotest.test_case "validation" `Quick test_apply_validation;
    Alcotest.test_case "semantics preserved" `Quick test_semantics_preserved;
    Alcotest.test_case "legality" `Quick test_legality;
    Alcotest.test_case "permutation ranking" `Quick test_rank_permutations;
    Alcotest.test_case "permute + unroll-and-jam" `Quick test_permute_optimize;
    Gen.to_alcotest prop_interchange_preserves_refs;
    Gen.to_alcotest prop_legal_interchange_semantics ]
