(* Fortran emission: structural checks (no Fortran compiler is available
   in the sealed test environment, so we validate shape and the
   1-rebasing of subscripts). *)

open Ujam_sim

let contains s sub =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then false
    else if String.sub s i n = sub then true
    else go (i + 1)
  in
  go 0

let test_declarations () =
  let nest = Ujam_kernels.Kernels.jacobi ~n:20 () in
  let decls = Codegen.declarations nest in
  Alcotest.(check int) "two arrays" 2 (List.length decls);
  let _, _, a_ext = List.find (fun (b, _, _) -> b = "A") decls in
  let _, _, b_ext = List.find (fun (b, _, _) -> b = "B") decls in
  (* A touched on 2..19 each dim; B on 1..20 *)
  Alcotest.(check (array int)) "A extents" [| 18; 18 |] a_ext;
  Alcotest.(check (array int)) "B extents" [| 20; 20 |] b_ext

let test_program_shape () =
  let nest = Ujam_kernels.Kernels.sor ~n:16 () in
  let src = Codegen.to_program ~scalars:[ ("OMEGA", 0.9) ] nest in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains src needle))
    [ "PROGRAM SOR";
      "DOUBLE PRECISION A(";
      "DOUBLE PRECISION OMEGA";
      "OMEGA = 0.9D0";
      "DO J =";
      "DO I =";
      "ENDDO";
      "CHKSUM";
      "PRINT *, CHKSUM";
      "END" ]

let test_subscript_rebase () =
  (* A(I-1) with I from 1: the smallest touched index is 0, so emitted
     subscripts must be shifted up by one. *)
  let open Ujam_ir.Build in
  let d = 1 in
  let i = var d 0 in
  let nest =
    nest "shiftme"
      [ loop d "I" ~level:0 ~lo:1 ~hi:9 () ]
      [ aref "A" [ i ] <<- rd "A" [ i -$ 1 ] +: f 1.0 ]
  in
  let src = Codegen.to_program nest in
  Alcotest.(check bool) "write shifted to A(I+1)" true (contains src "A(I+1) =");
  Alcotest.(check bool) "read shifted to A(I)" true (contains src "A(I) + 1.0");
  Alcotest.(check bool) "declared with full range" true
    (contains src "DOUBLE PRECISION A(10)")

let test_all_kernels_emit () =
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:10 () in
      let src = Codegen.to_program nest in
      Alcotest.(check bool)
        (e.Ujam_kernels.Catalogue.name ^ " emits a program")
        true
        (contains src "PROGRAM" && contains src "END"))
    Ujam_kernels.Catalogue.all

let test_transformed_emits () =
  let open Ujam_core in
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let r = Driver.optimize ~bound:3 ~machine:Ujam_machine.Presets.alpha nest in
  let out = Scalar_replace.apply r.Driver.transformed r.Driver.plan in
  let src = Codegen.to_program out in
  Alcotest.(check bool) "temporaries declared or assigned" true (contains src "C_");
  Alcotest.(check bool) "unrolled step" true (contains src "DO J = 1, 12,")

let suite =
  [ Alcotest.test_case "declarations" `Quick test_declarations;
    Alcotest.test_case "program shape" `Quick test_program_shape;
    Alcotest.test_case "subscript rebase" `Quick test_subscript_rebase;
    Alcotest.test_case "all kernels emit" `Quick test_all_kernels_emit;
    Alcotest.test_case "transformed code emits" `Quick test_transformed_emits ]
