(* Dependence analysis: distance vectors, pair tests, graph construction,
   statistics and unroll-and-jam safety. *)

open Ujam_linalg
open Ujam_ir
open Ujam_ir.Build
open Ujam_depend

let v = Vec.of_list
let dvec = Alcotest.testable Depvec.pp Depvec.equal

let test_depvec () =
  Alcotest.(check bool) "zero" true (Depvec.is_zero (Depvec.exact (v [ 0; 0 ])));
  Alcotest.(check bool) "star not zero" false (Depvec.is_zero (Depvec.all_star 2));
  let check_sign name expect d =
    Alcotest.(check string) name expect
      (match Depvec.lex_sign d with
      | `Pos -> "pos"
      | `Neg -> "neg"
      | `Zero -> "zero"
      | `Ambiguous -> "ambiguous")
  in
  check_sign "pos" "pos" (Depvec.exact (v [ 0; 2; -1 ]));
  check_sign "neg" "neg" (Depvec.exact (v [ 0; -1; 5 ]));
  check_sign "zero" "zero" (Depvec.exact (v [ 0; 0 ]));
  check_sign "ambiguous" "ambiguous" [| Depvec.Exact 0; Depvec.Star; Depvec.Exact 1 |];
  Alcotest.check dvec "negate"
    [| Depvec.Exact (-1); Depvec.Star |]
    (Depvec.negate [| Depvec.Exact 1; Depvec.Star |]);
  Alcotest.(check (option int)) "carried level" (Some 1)
    (Depvec.carried_level (Depvec.exact (v [ 0; 3; 0 ])));
  Alcotest.(check (option int)) "loop independent" None
    (Depvec.carried_level (Depvec.exact (v [ 0; 0 ])))

let bounds2 = Some [| (1, 10); (1, 10) |]

let test_pair_uniform () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  (* A(I,J) vs A(I-1,J-2): unique distance (2,1) *)
  let r1 = aref "A" [ i; j ] and r2 = aref "A" [ i -$ 1; j -$ 2 ] in
  (match Test_pair.test ~bounds:bounds2 r1 r2 with
  | Test_pair.Dependent dv ->
      Alcotest.check dvec "strong SIV distance" (Depvec.exact (v [ 2; 1 ])) dv
  | Test_pair.Independent -> Alcotest.fail "expected dependence");
  (* distance exceeding the iteration space *)
  (match Test_pair.test ~bounds:bounds2 r1 (aref "A" [ i -$ 1; j -$ 20 ]) with
  | Test_pair.Independent -> ()
  | Test_pair.Dependent _ -> Alcotest.fail "distance 20 > trip 9");
  (* without bounds the same pair is conservatively dependent *)
  (match Test_pair.test ~bounds:None r1 (aref "A" [ i -$ 1; j -$ 20 ]) with
  | Test_pair.Dependent _ -> ()
  | Test_pair.Independent -> Alcotest.fail "no bounds: cannot disprove")

let test_pair_kernel () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  (* A(J) only uses the outer loop: self distance set spans the inner *)
  let r = aref "A" [ j ] in
  (match Test_pair.test ~bounds:bounds2 r r with
  | Test_pair.Dependent dv ->
      Alcotest.check dvec "invariant self dependence"
        [| Depvec.Exact 0; Depvec.Star |] dv
  | Test_pair.Independent -> Alcotest.fail "expected self dependence");
  (* stride-2 subscripts: A(2J) vs A(2J+1) never overlap *)
  (match Test_pair.test ~bounds:bounds2 (aref "A" [ 2 *$ j ]) (aref "A" [ (2 *$ j) +$ 1 ]) with
  | Test_pair.Independent -> ()
  | Test_pair.Dependent _ -> Alcotest.fail "gcd test should disprove");
  ignore i

let test_pair_nonuniform () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  (* A(I) vs A(J): different H, overlapping ranges -> all-star *)
  (match Test_pair.test ~bounds:bounds2 (aref "A" [ i ]) (aref "A" [ j ]) with
  | Test_pair.Dependent dv -> Alcotest.check dvec "all star" (Depvec.all_star 2) dv
  | Test_pair.Independent -> Alcotest.fail "expected dependence");
  (* Banerjee: disjoint value ranges *)
  (match
     Test_pair.test ~bounds:bounds2 (aref "A" [ i ]) (aref "A" [ j +$ 100 ])
   with
  | Test_pair.Independent -> ()
  | Test_pair.Dependent _ -> Alcotest.fail "Banerjee should disprove");
  (* different arrays never depend *)
  (match Test_pair.test ~bounds:bounds2 (aref "A" [ i ]) (aref "B" [ i ]) with
  | Test_pair.Independent -> ()
  | Test_pair.Dependent _ -> Alcotest.fail "different arrays")

let edge_kinds g =
  List.map
    (fun (e : Graph.edge) -> Format.asprintf "%a" Graph.pp_kind e.Graph.kind)
    g.Graph.edges
  |> List.sort compare

let test_graph_reduction () =
  (* A(J) = A(J) + B(I): flow/anti/output on A are within one location;
     B has a self input dependence. *)
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  let nest =
    nest "reduction"
      [ loop d "J" ~level:0 ~lo:1 ~hi:8 (); loop d "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "A" [ j ] <<- rd "A" [ j ] +: rd "B" [ i ] ]
  in
  let g = Graph.build ~include_input:true nest in
  (* one edge per reference pair: the read/write pair of A carries both
     the flow and anti relation and is recorded once with its star
     distance; each invariant reference has a self input edge *)
  Alcotest.(check (list string)) "edge kinds"
    [ "anti"; "input"; "input"; "output" ]
    (edge_kinds g);
  let no_input = Graph.build ~include_input:false nest in
  Alcotest.(check int) "input excluded" 2 (List.length no_input.Graph.edges);
  let anti =
    List.find (fun (e : Graph.edge) -> e.Graph.kind = Graph.Anti) g.Graph.edges
  in
  Alcotest.check dvec "A pair distance set" [| Depvec.Exact 0; Depvec.Star |]
    anti.Graph.dvec

let test_graph_direction_normalisation () =
  (* write A(I,J); read A(I,J-1): the source must be the write (value
     flows forward one J iteration). *)
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  let fwd_nest =
    nest "fwd"
      [ loop d "J" ~level:0 ~lo:2 ~hi:9 (); loop d "I" ~level:1 ~lo:1 ~hi:9 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i; j -$ 1 ] +: f 1.0 ]
  in
  let g = Graph.build ~include_input:true fwd_nest in
  let flow =
    List.find (fun (e : Graph.edge) -> e.Graph.kind = Graph.Flow) g.Graph.edges
  in
  Alcotest.(check bool) "src is the write" true (Site.is_write flow.Graph.src);
  Alcotest.check dvec "distance (1,0)" (Depvec.exact (v [ 1; 0 ])) flow.Graph.dvec;
  (* loop-independent: read and write of the same element in one stmt *)
  let nest2 =
    nest "li"
      [ loop d "J" ~level:0 ~lo:1 ~hi:9 (); loop d "I" ~level:1 ~lo:1 ~hi:9 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i; j ] +: f 1.0 ]
  in
  let g2 = Graph.build ~include_input:true nest2 in
  let anti =
    List.find (fun (e : Graph.edge) -> e.Graph.kind = Graph.Anti) g2.Graph.edges
  in
  Alcotest.(check bool) "loop-independent anti from the read" true
    (Depvec.is_zero anti.Graph.dvec && not (Site.is_write anti.Graph.src))

let test_stats () =
  let nest = Ujam_kernels.Kernels.jacobi ~n:16 () in
  let s = Stats.of_graph (Graph.build ~include_input:true nest) in
  (* 4 reads of B: C(4,2) = 6 input pairs *)
  Alcotest.(check int) "jacobi input edges" 6 s.Stats.input;
  Alcotest.(check int) "jacobi flow" 0 s.Stats.flow;
  (match Stats.input_fraction s with
  | Some f -> Alcotest.(check bool) "input dominates" true (f > 0.9)
  | None -> Alcotest.fail "expected stats");
  Alcotest.(check (option (float 0.001))) "empty graph fraction" None
    (Stats.input_fraction Stats.zero);
  let z = Stats.add Stats.zero s in
  Alcotest.(check int) "add" (Stats.total s) (Stats.total z)

let test_safety () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  (* forward-only dependence: any amount is safe *)
  let fwd =
    nest "fwd"
      [ loop d "J" ~level:0 ~lo:2 ~hi:9 (); loop d "I" ~level:1 ~lo:1 ~hi:9 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i; j -$ 1 ] +: f 1.0 ]
  in
  let b = Safety.max_safe_unroll (Graph.build ~include_input:false fwd) in
  Alcotest.(check int) "outer unconstrained" max_int b.(0);
  Alcotest.(check int) "innermost never unrolled" 0 b.(1);
  (* (1,-1) dependence: unroll-and-jam of J would reverse it; the carried
     distance 1 caps extra copies at 0. *)
  let skew =
    nest "skew"
      [ loop d "J" ~level:0 ~lo:2 ~hi:9 (); loop d "I" ~level:1 ~lo:1 ~hi:9 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i +$ 1; j -$ 1 ] +: f 1.0 ]
  in
  let b = Safety.max_safe_unroll (Graph.build ~include_input:false skew) in
  Alcotest.(check int) "blocking dependence caps J" 0 b.(0);
  (* distance (2,-1): one extra copy is legal, two are not *)
  let skew2 =
    nest "skew2"
      [ loop d "J" ~level:0 ~lo:3 ~hi:10 (); loop d "I" ~level:1 ~lo:1 ~hi:9 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i +$ 1; j -$ 2 ] +: f 1.0 ]
  in
  let b = Safety.max_safe_unroll (Graph.build ~include_input:false skew2) in
  Alcotest.(check int) "distance 2 allows one extra copy" 1 b.(0);
  Alcotest.(check bool) "is_safe accepts" true
    (Safety.is_safe (Graph.build ~include_input:false skew2) (v [ 1; 0 ]));
  Alcotest.(check bool) "is_safe rejects" false
    (Safety.is_safe (Graph.build ~include_input:false skew2) (v [ 2; 0 ]))

(* Semantic validation of the safety rule: if max_safe_unroll allows u,
   the transformed loop must compute the same values. *)
let test_safety_semantics () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  let skew2 =
    nest "skew2"
      [ loop d "J" ~level:0 ~lo:3 ~hi:10 (); loop d "I" ~level:1 ~lo:2 ~hi:9 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i +$ 1; j -$ 2 ] +: f 1.0 ]
  in
  let same u =
    Test_unroll.stores_equal
      (Test_unroll.interpret skew2)
      (Test_unroll.interpret (Unroll.unroll_and_jam skew2 (v u)))
  in
  Alcotest.(check bool) "safe amount preserves semantics" true (same [ 1; 0 ]);
  Alcotest.(check bool) "unsafe amount breaks semantics" false (same [ 3; 0 ])

let prop_edges_have_valid_distance =
  QCheck2.Test.make ~name:"depend: normalised edges lex-nonneg" ~count:150
    (Gen.nest_gen ()) (fun nest ->
      let g = Graph.build ~include_input:true nest in
      List.for_all
        (fun (e : Graph.edge) ->
          match Depvec.lex_sign e.Graph.dvec with
          | `Pos | `Zero | `Ambiguous -> true
          | `Neg -> false)
        g.Graph.edges)

let prop_input_subset =
  QCheck2.Test.make ~name:"depend: include_input only adds input edges" ~count:150
    (Gen.nest_gen ()) (fun nest ->
      let all = Graph.build ~include_input:true nest in
      let no = Graph.build ~include_input:false nest in
      let non_input =
        List.filter (fun (e : Graph.edge) -> e.Graph.kind <> Graph.Input) all.Graph.edges
      in
      List.length non_input = List.length no.Graph.edges
      && List.for_all
           (fun (e : Graph.edge) -> e.Graph.kind <> Graph.Input)
           no.Graph.edges)

let test_dot_export () =
  let nest = Ujam_kernels.Kernels.dmxpy0 ~n:8 () in
  let dot = Graph.to_dot (Graph.build ~include_input:true nest) in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length dot then false
      else if String.sub dot i n = sub then true
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph");
  Alcotest.(check bool) "write node boxed" true (contains "shape=box");
  Alcotest.(check bool) "input edges dashed" true (contains "style=dashed");
  Alcotest.(check bool) "distance labels" true (contains "(0,*)")

let suite =
  [ Alcotest.test_case "depvec" `Quick test_depvec;
    Alcotest.test_case "uniform pairs" `Quick test_pair_uniform;
    Alcotest.test_case "kernel distances" `Quick test_pair_kernel;
    Alcotest.test_case "non-uniform pairs" `Quick test_pair_nonuniform;
    Alcotest.test_case "reduction graph" `Quick test_graph_reduction;
    Alcotest.test_case "direction normalisation" `Quick test_graph_direction_normalisation;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "safety bounds" `Quick test_safety;
    Alcotest.test_case "safety semantics" `Quick test_safety_semantics;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Gen.to_alcotest prop_edges_have_valid_distance;
    Gen.to_alcotest prop_input_subset ]
