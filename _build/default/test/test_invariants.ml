(* Cross-cutting invariants of the analysis stack, checked on random
   separable-SIV nests. *)

open Ujam_linalg
open Ujam_ir
open Ujam_core

let innermost d = Subspace.span_dims ~dim:d [ d - 1 ]

let copies u = Vec.fold (fun acc x -> acc * (x + 1)) 1 u

let prop_group_counts_monotone =
  QCheck2.Test.make ~name:"invariant: group counts grow pointwise with u" ~count:60
    ~print:(fun (n, _) -> Gen.nest_print n)
    (Gen.nest_and_space_gen ())
    (fun (nest, space) ->
      let d = Nest.depth nest in
      let localized = innermost d in
      let groups = Ujam_reuse.Ugs.of_nest nest in
      let ok = ref true in
      Unroll_space.iter space (fun u ->
          Unroll_space.iter space (fun v ->
              if Vec.leq_pointwise u v then
                List.iter
                  (fun g ->
                    if
                      Tables.gts_exact space ~localized g u
                      > Tables.gts_exact space ~localized g v
                      || Tables.gss_exact space ~localized g u
                         > Tables.gss_exact space ~localized g v
                    then ok := false)
                  groups));
      !ok)

let prop_gs_le_gt_after_unroll =
  QCheck2.Test.make ~name:"invariant: g_S <= g_T at every unroll vector" ~count:60
    (Gen.nest_and_space_gen ())
    (fun (nest, space) ->
      let d = Nest.depth nest in
      let localized = innermost d in
      let groups = Ujam_reuse.Ugs.of_nest nest in
      let ok = ref true in
      Unroll_space.iter space (fun u ->
          List.iter
            (fun g ->
              if
                Tables.gss_exact space ~localized g u
                > Tables.gts_exact space ~localized g u
              then ok := false)
            groups);
      !ok)

let prop_memory_bounded =
  QCheck2.Test.make
    ~name:"invariant: V_M(u) <= V_M(0) * copies and <= sites * copies" ~count:60
    (Gen.nest_and_space_gen ())
    (fun (nest, space) ->
      let d = Nest.depth nest in
      let localized = innermost d in
      let mem = Rrs.memory_table space ~localized nest in
      let v0 = Unroll_space.Table.get mem (Vec.zero d) in
      let sites = List.length (Site.of_nest nest) in
      let ok = ref true in
      Unroll_space.iter space (fun u ->
          let v = Unroll_space.Table.get mem u in
          if v > v0 * copies u || v > sites * copies u then ok := false);
      !ok)

let prop_registers_at_least_streams =
  QCheck2.Test.make ~name:"invariant: registers >= streams >= V_M" ~count:60
    (Gen.nest_and_space_gen ())
    (fun (nest, space) ->
      let d = Nest.depth nest in
      let localized = innermost d in
      let ok = ref true in
      Unroll_space.iter space (fun u ->
          let s =
            Streams.summarize (Streams.of_nest_unrolled space ~localized nest u)
          in
          if
            s.Streams.registers < s.Streams.streams
            || s.Streams.streams < s.Streams.memory_ops
          then ok := false);
      !ok)

let prop_unroll_composes =
  QCheck2.Test.make ~name:"invariant: unrolling composes multiplicatively" ~count:60
    ~print:Gen.nest_print (Gen.nest_gen ())
    (fun nest ->
      let d = Nest.depth nest in
      if d < 2 then true
      else begin
        let level = 0 in
        let u1 = Vec.set (Vec.zero d) level 1 in
        let u2 = Vec.set (Vec.zero d) level 2 in
        let both = Vec.set (Vec.zero d) level 5 in
        (* (1+1)*(2+1) = 6 copies either way, in the same order *)
        String.equal
          (Nest.to_string (Unroll.unroll_and_jam (Unroll.unroll_and_jam nest u1) u2))
          (Nest.to_string (Unroll.unroll_and_jam nest both))
      end)

let prop_safety_innermost_zero =
  QCheck2.Test.make ~name:"invariant: innermost never unrollable" ~count:60
    (Gen.nest_gen ()) (fun nest ->
      let g = Ujam_depend.Graph.build ~include_input:false nest in
      let b = Ujam_depend.Safety.max_safe_unroll g in
      b.(Array.length b - 1) = 0)

let prop_driver_never_worse =
  QCheck2.Test.make ~name:"invariant: driver never worsens the model objective"
    ~count:40 (Gen.nest_gen ~max_depth:2 ())
    (fun nest ->
      let r = Driver.optimize ~bound:3 ~machine:Ujam_machine.Presets.alpha nest in
      r.Driver.choice.Search.objective <= r.Driver.original.Search.objective +. 1e-12)

let prop_interp_deterministic =
  QCheck2.Test.make ~name:"invariant: interpreter is deterministic" ~count:40
    (Gen.nest_gen ()) (fun nest ->
      Ujam_sim.Interp.equal (Ujam_sim.Interp.run nest) (Ujam_sim.Interp.run nest))

let suite =
  [ Gen.to_alcotest prop_group_counts_monotone;
    Gen.to_alcotest prop_gs_le_gt_after_unroll;
    Gen.to_alcotest prop_memory_bounded;
    Gen.to_alcotest prop_registers_at_least_streams;
    Gen.to_alcotest prop_unroll_composes;
    Gen.to_alcotest prop_safety_innermost_zero;
    Gen.to_alcotest prop_driver_never_worse;
    Gen.to_alcotest prop_interp_deterministic ]
