The skewrec kernel is the anti-diagonal recurrence A(I,J) =
A(I-1,J+1)*S + B(I,J): its (1,-1) carried distance fences the outer
loop at 0 extra copies, so the plain pipeline degrades to u=(0,0):

  $ ujc optimize skewrec | head -3
  skewrec on DEC-Alpha-21064 (cache model)
  beta_M = 1.000; original beta_L = 28.500; chosen u = (0,0); final beta_L = 28.500
  registers 3/32, V_M 3, V_F 2

With --seq the engine first searches short verified legalizing
prefixes derived from the dependence cone.  A factor-1 skew of J by I
maps the distance to (1,0), lifts the outer cap from 0 to unbounded,
and the unroll search then finds a Verify-certified vector with a
strictly better objective (27.5 -> 8.39).  The report pins the chosen
sequence, why the step was legal, and the UJ026 certificate:

  $ ujc optimize skewrec --seq --json
  {"kernel":"skewrec","machine":"DEC-Alpha-21064","result":{"nest":"skewrec","model":"ugs","u":[8,0],"balance_before":28.5,"balance_after":9.38889,"objective":8.38889,"registers":19,"memory_ops":19,"flops":18,"speedup":3.0355,"sequence":[{"pass":"skew","spec":"skew[[1,0];[1,1]]","why":"unit lower-triangular skew maps each distance d to S d, whose leading nonzero component is d's — lexicographic order is preserved by construction"}],"diagnostics":[{"rule":"UJ026","severity":"info","loc":{"nest":"skewrec"},"message":"legalized by skew[[1,0];[1,1]]: objective 27.5000 -> 8.3889, safety caps 0,0 -> inf,0","notes":[{"loc":{"nest":"skewrec"},"message":"unit lower-triangular skew maps each distance d to S d, whose leading nonzero component is d's — lexicographic order is preserved by construction"}]}]}}

The human-readable report carries the same sequence line:

  $ ujc optimize skewrec --seq | head -2
  skewrec: u=(8,0) balance 28.500->9.389 regs 19 V_M 19 V_F 18 speedup 3.04
    seq skew[[1,0];[1,1]]: unit lower-triangular skew maps each distance d to S d, whose leading nonzero component is d's — lexicographic order is preserved by construction

explain --seq switches the model to ugs+seq and reports the sequence
with the objective trajectory:

  $ ujc explain skewrec --seq | head -8
  skewrec on DEC-Alpha-21064: model ugs+seq
    depth 2, 2 flops/iteration
    legality caps: [0; 0]
    reuse ranking: loop0 (0.5)
    search box: [0; 0] over loops {}
    sequence:
      - skew[[1,0];[1,1]]: unit lower-triangular skew maps each distance d to S d, whose leading nonzero component is d's — lexicographic order is preserved by construction
    chosen: u=(8,0) balance 9.39, objective 8.39, 19 regs

Without --seq nothing changes: the sequence field is absent and the
JSON stays byte-stable for the plain pipeline:

  $ ujc optimize skewrec --json
  {"kernel":"skewrec","machine":"DEC-Alpha-21064","result":{"nest":"skewrec","model":"ugs","u":[0,0],"balance_before":28.5,"balance_after":28.5,"objective":27.5,"registers":3,"memory_ops":3,"flops":2,"speedup":1.0}}
