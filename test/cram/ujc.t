The kernel catalogue is Table 2 of the paper plus the extra kernels:

  $ ujc list | head -6
  Num  Loop       Description
  1    jacobi     Compute Jacobian of a Matrix
  2    afold      Adjoint Convolution
  3    btrix.1    SPEC/NASA7/BTRIX
  4    btrix.2    SPEC/NASA7/BTRIX
  5    btrix.7    SPEC/NASA7/BTRIX

Kernels print as Fortran-style source:

  $ ujc show dmxpy0 -n 6
  DO J = 1, 6
    DO I = 1, 6
      Y(I) = Y(I) + X(J) * M(I,J)
    ENDDO
  ENDDO

The unroll tables come straight from the UGS structure:

  $ ujc tables dmxpy0 -n 6 -b 2
  u          V_M  R    g_T  g_S
  (0,0)      3    4    3    3   
  (1,0)      5    7    5    4   
  (2,0)      7    10   7    5   

Optimization picks unroll amounts, transforms, and scalar-replaces:

  $ ujc optimize dmxpy0 -n 16 -b 3 --no-cache | head -4
  dmxpy0 on DEC-Alpha-21064 (no-cache model)
  beta_M = 1.000; original beta_L = 1.500; chosen u = (3,0); final beta_L = 1.125
  registers 13/32, V_M 9, V_F 8
  safety bounds: inf,0; locality ranking: L0:0.25

The interpreter verifies the full pipeline end to end:

  $ ujc verify dmxpy0 -n 16 -b 3 | tail -1
  semantics PRESERVED

The dependence graph shows the input edges the UGS model never stores:

  $ ujc graph dmxpy0 -n 6
  input: r:Y(I)#0 -> r:Y(I)#0 (*,0)
  anti: r:Y(I)#0 -> w:Y(I)#0 (*,0)
  input: r:X(J)#0 -> r:X(J)#0 (0,*)
  output: w:Y(I)#0 -> w:Y(I)#0 (*,0)
  flow=0 anti=1 output=1 input=2 (total 4)

  $ ujc graph dmxpy0 -n 6 --no-input
  anti: r:Y(I)#0 -> w:Y(I)#0 (*,0)
  output: w:Y(I)#0 -> w:Y(I)#0 (*,0)
  flow=0 anti=1 output=1 input=0 (total 2)

A typo'd subcommand names the real ones instead of a bare usage error,
while unambiguous prefixes keep dispatching:

  $ ujc frobnicate
  ujc: unknown subcommand "frobnicate"
  known subcommands: analyze, compile, corpus, dot, emit, explain, fortran, fuzz, graph, lint, list, optimize, serve, show, simulate, tables, trace, verify
  [2]

  $ ujc optim dmxpy0 -n 16 -b 3 --no-cache | head -1
  dmxpy0 on DEC-Alpha-21064 (no-cache model)

A loop nest can be compiled from a file:

  $ cat > my.loop <<'LOOP'
  > DO I = 1, 32
  >   DO J = 1, 32
  >     Y(I) = Y(I) + X(J) * M(I,J)
  >   ENDDO
  > ENDDO
  > LOOP
  $ ujc compile my.loop --permute -b 1 | head -2
  permutation [1;0], Eq.1 cost 1.250 -> 0.500
  my on DEC-Alpha-21064 (cache model)
