Machine-readable output. The JSON formats below are a pinned interface:
batch tooling parses them, so any change here is a deliberate format
break.

Reuse/dependence analysis:

  $ ujc analyze dmxpy0 --json
  {"kernel":"dmxpy0","machine":"DEC-Alpha-21064","groups":[{"base":"Y","size":2,"stream":"unit-stride","g_t":1,"g_s":1,"accesses_per_iter":0.25},{"base":"X","size":1,"stream":"invariant","g_t":1,"g_s":1,"accesses_per_iter":0.0},{"base":"M","size":1,"stream":"unit-stride","g_t":1,"g_s":1,"accesses_per_iter":0.25}],"dependences":{"flow":0,"anti":1,"output":1,"input":2,"edges_with_input":4,"edges_without_input":2},"ranking":[{"level":0,"var":"J","accesses_per_iter":0.25}]}

Single-kernel optimization (default UGS-tables strategy):

  $ ujc optimize dmxpy0 --json
  {"kernel":"dmxpy0","machine":"DEC-Alpha-21064","result":{"nest":"dmxpy0","model":"ugs","u":[8,0],"balance_before":7.5,"balance_after":4.38889,"objective":3.38889,"registers":28,"memory_ops":19,"flops":18,"speedup":1.70886}}

Strategy selection by registry name:

  $ ujc optimize sor --json --model brute -b 4
  {"kernel":"sor","machine":"DEC-Alpha-21064","result":{"nest":"sor","model":"brute","u":[4,0],"balance_before":3.14286,"balance_after":1.54286,"objective":0.542857,"registers":22,"memory_ops":12,"flops":35,"speedup":1.62338}}

Unknown strategies are rejected up front:

  $ ujc optimize sor --model magic
  ujc: option '--model': unknown model "magic" (ugs|dep|brute|no-cache|ugs-l2)
  Usage: ujc optimize [OPTION]… [KERNEL]
  Try 'ujc optimize --help' or 'ujc --help' for more information.
  [124]

Engine corpus runs (per-routine reports, slotted by input index):

  $ ujc corpus --count 3 --json
  {"model":"ugs","bound":4,"routines":[{"routine":"routine0000","nests":[{"nest":"nest0","model":"ugs","u":[4,0],"balance_before":75.0,"balance_after":31.8,"objective":30.8,"registers":15,"memory_ops":15,"flops":5,"speedup":2.35849},{"nest":"nest1","model":"ugs","u":[4,0],"balance_before":50.0,"balance_after":21.2,"objective":20.2,"registers":20,"memory_ops":20,"flops":10,"speedup":2.35849}]},{"routine":"routine0001","nests":[{"nest":"nest3","model":"ugs","u":[4,0],"balance_before":32.0,"balance_after":12.4,"objective":11.4,"registers":16,"memory_ops":16,"flops":10,"speedup":2.58065},{"nest":"nest4","model":"ugs","u":[4,0],"balance_before":32.0,"balance_after":12.4,"objective":11.4,"registers":16,"memory_ops":16,"flops":10,"speedup":2.58065}]},{"routine":"routine0002","nests":[{"nest":"nest6","model":"ugs","u":[4,0],"balance_before":75.0,"balance_after":31.8,"objective":30.8,"registers":15,"memory_ops":15,"flops":5,"speedup":2.35849}]}],"ok":5,"failed":0}

The domain count never changes the rendered report:

  $ ujc corpus --count 2 --seed 7 --json > one.json
  $ ujc corpus --count 2 --seed 7 --json --domains 2 > two.json
  $ cmp one.json two.json
