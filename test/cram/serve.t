The serve daemon speaks line-delimited JSON over stdio: one response
line per request line, in order.  The first chunk warms the cache with
an optimize; after a beat, the same request again is answered from the
cache, and the hostile lines (bad JSON, unknown method, unsupported
nest) each cost exactly one typed error response — the daemon drains
and exits cleanly at end of input.

  $ { printf '%s\n' \
  >     '{"id":1,"method":"ping"}' \
  >     '{"id":2,"method":"optimize","params":{"kernel":"mmjik","n":16}}'; \
  >   sleep 1; \
  >   printf '%s\n' \
  >     '{"id":3,"method":"optimize","params":{"kernel":"mmjik","n":16}}' \
  >     'not json at all' \
  >     '{"id":5,"method":"frobnicate"}' \
  >     '{"id":6,"method":"optimize","params":{"name":"stride2","nest":"DO I = 1, 8, 2\n A(I) = A(I) + 1.0\nENDDO"}}' \
  >     '{"id":7,"method":"metrics"}'; \
  > } | ujc serve --stdio --metrics-out metrics.json > out.txt 2> err.txt

The stderr summary counts every line and the cache traffic (the
unsupported nest is a second miss: its typed error is deterministic,
so the cache holds it too):

  $ cat err.txt
  serve: 7 requests, 4 ok, 3 errors, 1 cache hits, 2 misses, 0 evictions
  serve: wrote metrics to metrics.json

  $ sed -n 1p out.txt
  {"id":1,"ok":true,"result":{"pong":true}}

The repeated optimize is answered from the cache, byte-identical to
the original apart from the echoed id:

  $ sed 's/"id":2/"id":X/' < out.txt | sed -n 2p > a.txt
  $ sed 's/"id":3/"id":X/' < out.txt | sed -n 3p > b.txt
  $ cmp a.txt b.txt && echo identical
  identical

Each hostile line gets one typed error response:

  $ sed -n 4,6p out.txt
  {"id":null,"ok":false,"error":{"kind":"protocol","message":"invalid JSON: invalid literal (expected null) at offset 0"}}
  {"id":5,"ok":false,"error":{"kind":"protocol","message":"unknown method \"frobnicate\" (known: optimize, explain, lint, metrics, ping, shutdown)"}}
  {"id":6,"ok":false,"error":{"kind":"analysis","message":"ERROR [validate] stride2: stride2: loop I has step 2; only unit-step loops are modelled","diagnostics":[{"rule":"UJ004","severity":"error","loc":{"nest":"stride2","level":0},"message":"loop I has step 2; the supported class is unit-step"}]}}

The metrics response carries live cache occupancy, and the final
registry dump landed in the file:

  $ grep -o '"cache":{[^}]*}' out.txt
  "cache":{"size":2,"capacity":1024,"hits":1,"misses":2,"evictions":0}
  $ grep -c serve.requests metrics.json
  1

A socket daemon drains on SIGINT: queued work is answered, the final
metrics are flushed, and the socket path is unlinked.

  $ ujc serve --socket sig.sock --metrics-out sig.json --quiet &
  $ for i in 1 2 3 4 5 6 7 8 9 10; do [ -S sig.sock ] && break; sleep 0.2; done
  $ kill -INT $!
  $ wait $!
  $ test -f sig.json && echo metrics flushed
  metrics flushed
  $ test -e sig.sock || echo socket unlinked
  socket unlinked

The result cache survives a restart when --cache-file is set: the
first process misses and persists its answer; a second process reloads
the file, answers the identical request as a cache hit, and writes the
same response bytes.

  $ printf '%s\n' '{"id":1,"method":"optimize","params":{"kernel":"jacobi","n":16}}' \
  > | ujc serve --stdio --cache-file cache.json > cold.txt 2> cold.err
  $ cat cold.err
  serve: 1 requests, 1 ok, 0 errors, 0 cache hits, 1 misses, 0 evictions
  serve: persisted 1 cached results to cache.json
  $ printf '%s\n' '{"id":1,"method":"optimize","params":{"kernel":"jacobi","n":16}}' \
  > | ujc serve --stdio --cache-file cache.json > warm.txt 2> warm.err
  $ cat warm.err
  serve: 1 requests, 1 ok, 0 errors, 1 cache hits, 0 misses, 0 evictions
  serve: loaded 1 cached results from cache.json
  serve: persisted 1 cached results to cache.json
  $ cmp cold.txt warm.txt && echo identical
  identical

An undersized line budget turns a long line into a typed error instead
of a dropped connection:

  $ printf '%s\n' '{"id":1,"method":"ping"}' "{\"pad\":\"$(head -c 600 /dev/zero | tr '\0' x)\"}" '{"id":3,"method":"ping"}' \
  > | ujc serve --stdio --max-request-bytes 256 --quiet
  {"id":1,"ok":true,"result":{"pong":true}}
  {"id":null,"ok":false,"error":{"kind":"oversized","message":"request line exceeds 256 bytes"}}
  {"id":3,"ok":true,"result":{"pong":true}}
