The differential oracle fuzzes generated nests through three check
layers: exact recount of the tables on materialized unrolls, rank
monotonicity against the cache simulator, and cross-model agreement.
A seeded run is deterministic and clean:

  $ ujc fuzz --n 12 --seed 42
  differential oracle: seed=42 machine=DEC-Alpha-21064 bound=4 depth<=3 layers=recount,sim,cross-model,verify,cachepred
  nests: 12 checked (7 routines, 12 draws, 0 out-of-class re-rolls, 0 over depth limit)
  sim layer: 7 nests replayed through the cache model
  cachepred layer: 1 nests checked against the hierarchy simulator
  verify layer: 56 unrolled bodies checked, 0 rejected
  mismatches: 0 total, 0 unexplained
  result: ok

Layers can be restricted; skipping the sim layer skips the replay:

  $ ujc fuzz --n 12 --seed 42 --layers recount,cross-model
  differential oracle: seed=42 machine=DEC-Alpha-21064 bound=4 depth<=3 layers=recount,cross-model
  nests: 12 checked (7 routines, 12 draws, 0 out-of-class re-rolls, 0 over depth limit)
  sim layer: 0 nests replayed through the cache model
  cachepred layer: 0 nests checked against the hierarchy simulator
  verify layer: 0 unrolled bodies checked, 0 rejected
  mismatches: 0 total, 0 unexplained
  result: ok

JSON output for machine consumption:

  $ ujc fuzz --n 12 --seed 42 --json
  {"seed":42,"n":12,"machine":"DEC-Alpha-21064","bound":4,"max_depth":3,"deep":false,"recurrent":false,"layers":["recount","sim","cross-model","verify","cachepred"],"nests":12,"routines":7,"draws":12,"rejected":0,"skipped_depth":0,"deduped":0,"fenced":0,"sim_checked":7,"cachepred_checked":1,"verify_checked":56,"verify_failed":0,"mismatches":0,"unexplained":0,"ok":true,"failures":[]}

Deep-space mode stresses the sweep-based table engine where the
per-cell costs used to bite: 4-deep nests over a bound-8 unroll
space.  The recount layer still re-derives every cell from a literal
materialisation, so a clean run is a parity proof at scale:

  $ ujc fuzz --n 12 --seed 42 --deep-space --layers recount
  differential oracle: seed=42 machine=DEC-Alpha-21064 bound=8 depth<=4 layers=recount deep-space
  nests: 12 checked (9 routines, 13 draws, 0 out-of-class re-rolls, 0 over depth limit)
  sim layer: 0 nests replayed through the cache model
  cachepred layer: 0 nests checked against the hierarchy simulator
  verify layer: 0 unrolled bodies checked, 0 rejected
  mismatches: 0 total, 0 unexplained
  result: ok

A clean run exits 0 (the exit status is the CI gate):

  $ ujc fuzz --n 12 --seed 42 --json > /dev/null && echo clean
  clean
