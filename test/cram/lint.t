The rule-based static analyzer: located diagnostics with stable rule
ids (UJ000...), a JSON rendering pinned here as the machine interface,
and the explain / dot companions.

A supported catalogue kernel is lint-clean — zero Error-severity
diagnostics is part of the contract; Infos (like Star directions) are
expected:

  $ ujc lint dmxpy0
  info UJ007 dmxpy0: 2 dependences on Y carry unknown (*) components; legality uses direction information only
  lint: 1 nest, 0 errors, 0 warnings, 1 info

A loop-nest file with a subscript coefficient outside the modelled
class gets a located UJ005 Error at the offending statement and site,
and the exit code goes to 1:

  $ cat > bigcoef.f << 'EOF'
  > DO J = 1, 8
  >   DO I = 1, 8
  >     Y(3*I) = Y(3*I) + X(J)
  >   ENDDO
  > ENDDO
  > EOF
  $ ujc lint bigcoef.f
  error UJ005 bigcoef:stmt0:site0: Y: subscript 0 uses coefficient 3 (supported class allows |a| <= 2)
  error UJ005 bigcoef:stmt0:site2: Y: subscript 0 uses coefficient 3 (supported class allows |a| <= 2)
  lint: 1 nest, 2 errors, 0 warnings, 0 infos
  [1]

A parse failure surfaces as a located UJ000 through the same front
end, with the source line:

  $ printf 'DO I = 1 8\n  A(I) = 1.0\nENDDO\n' > parseerr.f
  $ ujc lint parseerr.f
  error UJ000 parseerr:line 1: expected 'DO var = lo, hi[, step]'
  lint: 1 nest, 1 error, 0 warnings, 0 infos
  [1]

The JSON schema: machine, bound, per-nest diagnostics with structured
locations, severity totals, and an ok flag:

  $ ujc lint bigcoef.f --json
  {"machine":"DEC-Alpha-21064","bound":8,"nests":[{"nest":"bigcoef","diagnostics":[{"rule":"UJ005","severity":"error","loc":{"nest":"bigcoef","stmt":0,"site":0},"message":"Y: subscript 0 uses coefficient 3 (supported class allows |a| <= 2)"},{"rule":"UJ005","severity":"error","loc":{"nest":"bigcoef","stmt":0,"site":2},"message":"Y: subscript 0 uses coefficient 3 (supported class allows |a| <= 2)"}]}],"errors":2,"warnings":0,"infos":0,"ok":false}
  [1]

Unknown rule ids are rejected up front (exit 2, not 1):

  $ ujc lint bigcoef.f --rules UJ999
  ujc lint: unknown rule id "UJ999" (known: UJ000, UJ001, UJ002, UJ003, UJ004, UJ005, UJ006, UJ007, UJ008, UJ009, UJ010, UJ011, UJ020, UJ021, UJ022, UJ027, UJ028, UJ029, UJ030)
  [2]

Explain mode names the effective selection path and why — here the
paper's ugs path, with the monotonicity guard's verdict spelled out:

  $ ujc explain dmxpy0
  dmxpy0 on DEC-Alpha-21064: model ugs
    depth 2, 2 flops/iteration
    legality caps: [inf; 0]
    reuse ranking: loop0 (0.25)
    search box: [8; 0] over loops {0}
    chosen: u=(8,0) balance 4.39, objective 3.39, 28 regs
    miss profile (DEC-Alpha-21064):
      lvl  cap(lin)  predicted  per-UGS
      L1       4096     0.062  Y=0.000, X=0.000, M=0.250
      at u=(8,0):
      L1       4096     0.007  Y=0.000, X=0.000, M=0.028
    why:
      - 2 dependences with unknown (*) components; legality uses direction information only
      - register table certified monotone; pruned search is sound
      - the cache-miss term does not move the choice: with or without it the search picks (8,0)
    diagnostics:
      info UJ007 dmxpy0: 2 dependences on Y carry unknown (*) components; legality uses direction information only

An unsupported nest degrades to "unsupported" with the same located
diagnostics attached:

  $ ujc explain bigcoef.f
  bigcoef on DEC-Alpha-21064: model unsupported
    depth 2, 1 flops/iteration
    unsupported: bigcoef: subscript 0 of Y has coefficient 3 beyond the modelled stride range (|c| <= 2)
    why:
      - bigcoef: subscript 0 of Y has coefficient 3 beyond the modelled stride range (|c| <= 2)
      - no table model applies; the nest is left alone
    diagnostics:
      error UJ005 bigcoef:stmt0:site0: Y: subscript 0 uses coefficient 3 (supported class allows |a| <= 2)
      error UJ005 bigcoef:stmt0:site2: Y: subscript 0 uses coefficient 3 (supported class allows |a| <= 2)

The dependence graph as Graphviz DOT (reads are ellipses, writes are
boxes; --no-input drops read-read edges as the UGS model does):

  $ ujc dot dmxpy0 --no-input
  digraph dependences {
    rankdir=LR;
    n0 [label="r:Y(I)#0", shape=ellipse];
    n1 [label="r:X(J)#0", shape=ellipse];
    n2 [label="r:M(I,J)#0", shape=ellipse];
    n3 [label="w:Y(I)#0", shape=box];
    n0 -> n3 [label="anti (*,0)"];
    n3 -> n3 [label="output (*,0)"];
  }
