The benchmark harness has a deterministic smoke subset: no wall-clock
numbers, small sizes, fixed seeds — safe to pin.

  $ ujam-bench --quick
  
  =============================================================
  Quick smoke — strategy matrix (shared context per kernel)
  =============================================================
  loop       ugs        dep        brute      no-cache   ugs-l2    
  dmxpy0     (3,0)      (3,0)      (3,0)      (3,0)      (3,0)     
  mmjki      (2,3,0)    (2,3,0)    (2,3,0)    (1,1,0)    (2,3,0)   
  sor        (3,0)      (3,0)      (3,0)      (0,0)      (3,0)     
  jacobi     (3,0)      (3,0)      (3,0)      (0,0)      (3,0)     
  
  =============================================================
  Quick smoke — engine corpus (20 routines, 2 domains)
  =============================================================
  routine0000  nest0: u=(3,0) balance 75.000->34.500 regs 12 V_M 12 V_F 4 speedup 2.17
  routine0000  nest1: u=(3,0) balance 50.000->23.000 regs 16 V_M 16 V_F 8 speedup 2.17
  routine0001  nest3: u=(3,0) balance 32.000->13.625 regs 13 V_M 13 V_F 8 speedup 2.35
  routine0001  nest4: u=(3,0) balance 32.000->13.625 regs 13 V_M 13 V_F 8 speedup 2.35
  routine0002  nest6: u=(3,0) balance 75.000->34.500 regs 12 V_M 12 V_F 4 speedup 2.17
  routine0003  nest9: u=(0,0) balance 6.350->6.350 regs 26 V_M 13 V_F 20 speedup 1.00
  routine0004  nest12: u=(3,0,0) balance 32.000->15.250 regs 14 V_M 14 V_F 8 speedup 2.10
  routine0004  nest13: u=(3,0,0) balance 32.000->15.250 regs 14 V_M 14 V_F 8 speedup 2.10
  routine0005  nest15: u=(0) balance 14.000->14.000 regs 4 V_M 4 V_F 2 speedup 1.00
  routine0006  nest18: u=(0,0,0) balance 18.214->18.214 regs 17 V_M 15 V_F 14 speedup 1.00
  routine0006  nest19: u=(2,0,0) balance 23.571->12.286 regs 27 V_M 24 V_F 21 speedup 1.92
  routine0007  nest21: u=(1,0) balance 9.000->5.321 regs 29 V_M 17 V_F 28 speedup 1.60
  routine0007  nest22: u=(2,0) balance 11.100->5.633 regs 30 V_M 19 V_F 30 speedup 1.87
  routine0008  nest24: u=(1,0) balance 5.381->3.429 regs 31 V_M 18 V_F 42 speedup 1.46
  routine0009  nest27: u=(1,0) balance 11.000->6.950 regs 25 V_M 13 V_F 20 speedup 1.53
  routine0010  nest30: u=(0,0,0) balance 7.500->7.500 regs 9 V_M 9 V_F 6 speedup 1.00
  routine0011  nest33: u=(0,0,0) balance 19.059->19.059 regs 25 V_M 18 V_F 17 speedup 1.00
  routine0011  nest34: u=(1,1,0) balance 27.000->12.679 regs 32 V_M 25 V_F 28 speedup 2.11
  routine0012  nest36: u=(3,0) balance 25.000->11.500 regs 12 V_M 4 V_F 4 speedup 2.17
  routine0013  nest39: u=(1,0) balance 5.905->3.667 regs 32 V_M 16 V_F 42 speedup 1.50
  routine0013  nest40: u=(0,0) balance 8.857->8.857 regs 20 V_M 10 V_F 14 speedup 1.00
  routine0014  nest42: u=(0) balance 14.000->14.000 regs 4 V_M 4 V_F 2 speedup 1.00
  routine0015  nest45: u=(0,0) balance 7.278->7.278 regs 25 V_M 11 V_F 18 speedup 1.00
  routine0016  nest48: u=(0,0,0) balance 18.235->18.235 regs 24 V_M 16 V_F 17 speedup 1.00
  routine0017  nest51: u=(0) balance inf->inf regs 2 V_M 2 V_F 0 speedup 1.00
  routine0018  nest54: u=(3,0) balance 50.000->23.000 regs 16 V_M 16 V_F 8 speedup 2.17
  routine0019  nest57: u=(0) balance 7.500->7.500 regs 4 V_M 3 V_F 2 speedup 1.00
  routine0019  nest58: u=(0) balance 7.500->7.500 regs 4 V_M 3 V_F 2 speedup 1.00
  corpus: 20 routines, 28 nests ok, 0 failed (model ugs)
