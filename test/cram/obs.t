Observability: the perf-trajectory JSON, the regression gate, and the
trace subcommand.

The --quick trajectory schema is pinned with the measured values
scrubbed: every measurement is emitted as a JSON float (the emitter
guarantees a '.' or an 'e'), while structural integers — schema
version, bench generation, seed, item counts — stay exact.

  $ ujam-bench --quick --json --seed 1997 --out B.json
  wrote B.json (2 experiments, schema v1)
  $ sed -E 's/-?[0-9]+\.[0-9]*([eE][+-]?[0-9]+)?|-?[0-9]+[eE][+-]?[0-9]+/<f>/g' B.json
  {"schema_version":1,"bench":8,"seed":1997,"experiments":[{"name":"quick-matrix","wall_s":<f>,"items":4,"throughput":<f>,"minor_words":<f>,"major_words":<f>,"metrics":{}},{"name":"quick-corpus","wall_s":<f>,"items":20,"throughput":<f>,"minor_words":<f>,"major_words":<f>,"metrics":{"ok":<f>,"failed":<f>}}]}

The compare gate diffs two trajectory files by experiment name.  A
synthetic pair keeps the verdicts deterministic: "a" loses 5% (inside
the default 10% threshold), "b" loses half its throughput.

  $ cat > OLD.json << 'EOF'
  > {"schema_version":1,"bench":3,"seed":1997,"experiments":[{"name":"a","wall_s":1.0,"items":100,"throughput":100.0,"metrics":{}},{"name":"b","wall_s":1.0,"items":100,"throughput":100.0,"metrics":{}}]}
  > EOF
  $ cat > NEW.json << 'EOF'
  > {"schema_version":1,"bench":3,"seed":1997,"experiments":[{"name":"a","wall_s":1.0,"items":100,"throughput":95.0,"metrics":{}},{"name":"b","wall_s":1.0,"items":100,"throughput":50.0,"metrics":{}}]}
  > EOF
  $ ujam-bench --compare OLD.json NEW.json
  a                    100.0 -> 95.0 items/s (-5.0%)  OK
  b                    100.0 -> 50.0 items/s (-50.0%)  REGRESSION
  compare: regression beyond thresholds (throughput 10%, alloc 25%)
  [1]

A generous threshold waves the same pair through:

  $ ujam-bench --compare OLD.json NEW.json --threshold 0.6
  a                    100.0 -> 95.0 items/s (-5.0%)  OK
  b                    100.0 -> 50.0 items/s (-50.0%)  OK
  compare: no regression beyond thresholds (throughput 60%, alloc 25%)

When both files carry allocation counts, growth beyond the alloc
threshold is a regression of its own, even at stable throughput; files
without the counts (pre-generation-7) skip the allocation gate, as the
pairs above did:

  $ cat > AOLD.json << 'EOF'
  > {"schema_version":1,"bench":7,"seed":1997,"experiments":[{"name":"a","wall_s":1.0,"items":100,"throughput":100.0,"minor_words":1000.0,"major_words":0.0,"metrics":{}}]}
  > EOF
  $ cat > ANEW.json << 'EOF'
  > {"schema_version":1,"bench":7,"seed":1997,"experiments":[{"name":"a","wall_s":1.0,"items":100,"throughput":100.0,"minor_words":2000.0,"major_words":0.0,"metrics":{}}]}
  > EOF
  $ ujam-bench --compare AOLD.json ANEW.json
  a                    100.0 -> 100.0 items/s (+0.0%)  OK, alloc +100.0% ALLOC-REGRESSION
  compare: regression beyond thresholds (throughput 10%, alloc 25%)
  [1]
  $ ujam-bench --compare AOLD.json ANEW.json --alloc-threshold 2.0
  a                    100.0 -> 100.0 items/s (+0.0%)  OK, alloc +100.0% ok
  compare: no regression beyond thresholds (throughput 10%, alloc 200%)

Experiments missing from the new file are regressions, and files
without the pinned schema version are rejected up front:

  $ cat > SHORT.json << 'EOF'
  > {"schema_version":1,"bench":3,"seed":1997,"experiments":[{"name":"a","wall_s":1.0,"items":100,"throughput":100.0,"metrics":{}}]}
  > EOF
  $ ujam-bench --compare OLD.json SHORT.json
  a                    100.0 -> 100.0 items/s (+0.0%)  OK
  b                    100.0 -> MISSING  REGRESSION
  compare: regression beyond thresholds (throughput 10%, alloc 25%)
  [1]
  $ echo '{"schema_version":99}' > BAD.json
  $ ujam-bench --compare OLD.json BAD.json
  compare: BAD.json has schema_version 99, expected 1
  [2]

ujc trace runs any subcommand with the span sink enabled and writes a
Chrome trace_event file; the summary counts are structural (one span
per pipeline stage invocation plus the corpus envelope), so they pin
exactly.  The file is re-read and validated before success is
reported.

  $ ujc trace -o trace.json engine corpus -- --count 2 --seed 7
  routine0000  nest0: u=(4,0) balance 75.000->31.800 regs 15 V_M 15 V_F 5 speedup 2.36
  routine0001  nest3: u=(4,0) balance 75.000->31.800 regs 15 V_M 15 V_F 5 speedup 2.36
  routine0001  nest4: u=(4,0) balance 75.000->31.800 regs 15 V_M 15 V_F 5 speedup 2.36
  corpus: 2 routines, 3 nests ok, 0 failed (model ugs)
  trace: wrote trace.json (15 events; graph=6 tables=3 search=3 corpus=1)
  trace: trace.json is well-formed Chrome trace JSON

The optional --metrics dump snapshots the whole registry; counter
values are structural, latency summaries are scrubbed like any other
measurement.

  $ ujc trace -o t2.json --metrics m.json engine corpus -- --count 2 --seed 7
  routine0000  nest0: u=(4,0) balance 75.000->31.800 regs 15 V_M 15 V_F 5 speedup 2.36
  routine0001  nest3: u=(4,0) balance 75.000->31.800 regs 15 V_M 15 V_F 5 speedup 2.36
  routine0001  nest4: u=(4,0) balance 75.000->31.800 regs 15 V_M 15 V_F 5 speedup 2.36
  corpus: 2 routines, 3 nests ok, 0 failed (model ugs)
  trace: wrote metrics to m.json
  trace: wrote t2.json (15 events; graph=6 tables=3 search=3 corpus=1)
  trace: t2.json is well-formed Chrome trace JSON
  $ sed -E 's/-?[0-9]+\.[0-9]*([eE][+-]?[0-9]+)?|-?[0-9]+[eE][+-]?[0-9]+/<f>/g' m.json
  {"counters":{"analysis.monotone.checks":3,"analysis.monotone.degraded":0,"engine.jobs.claimed":2,"engine.jobs.stolen":0,"engine.nests.failed":0,"engine.nests.ok":3,"native.compiles":0,"native.runs":0,"native.variants":0,"oracle.failures":0,"oracle.mismatches":0,"oracle.native.checked":0,"oracle.native.skipped":0,"oracle.nests":0,"oracle.shrink.steps":0,"oracle.unexplained":0,"oracle.verify.checked":0,"oracle.verify.failed":0,"seq.candidates":0,"seq.engaged":0,"seq.legalized":0,"sim.cache.accesses":0,"sim.cache.evictions":0,"sim.cache.misses":0},"gauges":{"engine.queue.remaining":<f>},"histograms":{"engine.routine_s":{"count":2,"min":<f>,"max":<f>,"mean":<f>,"p50":<f>,"p95":<f>,"p99":<f>},"engine.stage.graph_s":{"count":3,"min":<f>,"max":<f>,"mean":<f>,"p50":<f>,"p95":<f>,"p99":<f>},"engine.stage.search_s":{"count":3,"min":<f>,"max":<f>,"mean":<f>,"p50":<f>,"p95":<f>,"p99":<f>},"engine.stage.sim_s":{"count":3,"min":<f>,"max":<f>,"mean":<f>,"p50":<f>,"p95":<f>,"p99":<f>},"engine.stage.tables_s":{"count":3,"min":<f>,"max":<f>,"mean":<f>,"p50":<f>,"p95":<f>,"p99":<f>},"search.pruned_cells":{"count":3,"min":<f>,"max":<f>,"mean":<f>,"p50":<f>,"p95":<f>,"p99":<f>},"tables.build_s":{"count":3,"min":<f>,"max":<f>,"mean":<f>,"p50":<f>,"p95":<f>,"p99":<f>}}}
