(* Machine/loop balance and the unroll-amount search. *)

open Ujam_linalg
open Ujam_core
open Ujam_machine

let v = Vec.of_list

let test_machine_balance () =
  Alcotest.(check (float 1e-9)) "alpha" 1.0 (Machine.balance Presets.alpha);
  Alcotest.(check (float 1e-9)) "hppa (fma)" 0.5 (Machine.balance Presets.hppa);
  Alcotest.(check (float 1e-9)) "miss ratio" 24.0 (Machine.miss_ratio_cost Presets.alpha)

let test_machine_validation () =
  Alcotest.check_raises "bad associativity"
    (Invalid_argument
       "Machine.make: cache geometry (cache): size 100 is not a multiple of \
        line 4 * assoc 3")
    (fun () -> ignore (Machine.make ~name:"x" ~cache_size:100 ~associativity:3 ()));
  Alcotest.check_raises "bad geometry"
    (Invalid_argument
       "Machine.make: cache geometry (cache): size must be at least one line")
    (fun () -> ignore (Machine.make ~name:"x" ~cache_size:2 ~cache_line:4 ()))

let prepare ?(machine = Presets.alpha) ?(bounds = [| 4; 4; 0 |]) nest =
  Balance.prepare ~machine (Unroll_space.make ~bounds) nest

let test_flops_scale () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let b = prepare nest in
  Alcotest.(check int) "flops at origin" 2 (Balance.flops b (v [ 0; 0; 0 ]));
  Alcotest.(check int) "flops scale with copies" 24 (Balance.flops b (v [ 2; 3; 0 ]))

let test_memory_and_registers_from_tables () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let b = prepare nest in
  (* same numbers the brute force measures *)
  let machine = Presets.alpha in
  List.iter
    (fun u ->
      let u = v u in
      let m = Bruteforce.metrics ~machine nest u in
      Alcotest.(check int) "V_M" m.Bruteforce.memory_ops (Balance.memory_ops b u);
      Alcotest.(check int) "R" m.Bruteforce.registers (Balance.registers b u);
      Alcotest.(check (float 1e-9)) "misses" m.Bruteforce.misses (Balance.misses b u);
      Alcotest.(check (float 1e-9)) "beta cache" m.Bruteforce.balance_cache
        (Balance.loop_balance b ~cache:true u);
      Alcotest.(check (float 1e-9)) "beta nocache" m.Bruteforce.balance_nocache
        (Balance.loop_balance b ~cache:false u))
    [ [ 0; 0; 0 ]; [ 1; 0; 0 ]; [ 2; 3; 0 ]; [ 4; 4; 0 ] ]

let test_balance_improves_with_unrolling () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let b = prepare nest in
  let b0 = Balance.loop_balance b ~cache:false (v [ 0; 0; 0 ]) in
  let b1 = Balance.loop_balance b ~cache:false (v [ 2; 2; 0 ]) in
  Alcotest.(check bool) "unrolling lowers balance" true (b1 < b0)

let test_group_counts_exposed () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let b = prepare nest in
  let counts = Balance.group_counts b (v [ 1; 1; 0 ]) in
  Alcotest.(check int) "one entry per UGS" 3 (List.length counts);
  List.iter
    (fun (_, gt, gs) -> Alcotest.(check bool) "gs<=gt" true (gs <= gt))
    counts

let test_prefetch_hides_misses () =
  let nest = Ujam_kernels.Kernels.dmxpy0 ~n:12 () in
  let mk bw = Presets.generic ~prefetch_bandwidth:bw () in
  let space = Unroll_space.make ~bounds:[| 4; 0 |] in
  let beta bw =
    Balance.loop_balance
      (Balance.prepare ~machine:(mk bw) space nest)
      ~cache:true (v [ 0; 0 ])
  in
  Alcotest.(check bool) "bandwidth reduces cache balance" true (beta 1.0 < beta 0.0);
  (* with enough bandwidth, the cache model meets the all-hits model *)
  let b = Balance.prepare ~machine:(mk 10.0) space nest in
  Alcotest.(check (float 1e-9)) "fully hidden"
    (Balance.loop_balance b ~cache:false (v [ 0; 0 ]))
    (Balance.loop_balance b ~cache:true (v [ 0; 0 ]))

let test_search_respects_registers () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let machine = Machine.make ~name:"tiny" ~fp_registers:6 () in
  let b = Balance.prepare ~machine (Unroll_space.make ~bounds:[| 6; 6; 0 |]) nest in
  let c = Search.best ~cache:false b in
  Alcotest.(check bool) "register constraint" true (c.Search.registers <= 6)

let test_search_tie_breaks () =
  (* when the original loop is already balanced, keep it *)
  let nest = Ujam_kernels.Kernels.sor ~n:12 () in
  let machine = Presets.alpha in
  let b = Balance.prepare ~machine (Unroll_space.make ~bounds:[| 6; 0 |]) nest in
  let c = Search.best ~cache:false b in
  Alcotest.(check bool) "sor already balanced under all-hits" true
    (Vec.is_zero c.Search.u);
  (* the cache model sees the miss cost and unrolls *)
  let c' = Search.best ~cache:true b in
  Alcotest.(check bool) "cache model unrolls sor" true (not (Vec.is_zero c'.Search.u))

let test_search_agrees_with_bruteforce () =
  let machine = Presets.alpha in
  List.iter
    (fun name ->
      let e = Option.get (Ujam_kernels.Catalogue.find name) in
      let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
      let d = Ujam_ir.Nest.depth nest in
      let bounds = Array.make d 3 in
      bounds.(d - 1) <- 0;
      let space = Unroll_space.make ~bounds in
      let b = Balance.prepare ~machine space nest in
      let c = Search.best ~cache:true b in
      let u_bf, _ = Bruteforce.best ~cache:true ~machine space nest in
      Alcotest.(check bool)
        (Printf.sprintf "%s: table search == brute-force search" name)
        true (Vec.equal c.Search.u u_bf))
    [ "mmjki"; "mmjik"; "dmxpy0"; "dmxpy1"; "jacobi"; "sor"; "vpenta.7"; "btrix.1" ]

let prop_search_optimal =
  QCheck2.Test.make ~name:"search: result minimises the objective" ~count:40
    (Gen.nest_and_space_gen ~max_depth:2 ())
    (fun (nest, space) ->
      let machine = Presets.alpha in
      let b = Balance.prepare ~machine space nest in
      let best = Search.best ~cache:true b in
      let ok = ref true in
      Unroll_space.iter space (fun u ->
          let c = Search.evaluate ~cache:true b u in
          if c.Search.registers <= machine.Machine.fp_registers
             && c.Search.objective < best.Search.objective -. 1e-12
          then ok := false);
      !ok)

let suite =
  [ Alcotest.test_case "machine balance" `Quick test_machine_balance;
    Alcotest.test_case "machine validation" `Quick test_machine_validation;
    Alcotest.test_case "flops scale" `Quick test_flops_scale;
    Alcotest.test_case "tables vs brute force metrics" `Quick
      test_memory_and_registers_from_tables;
    Alcotest.test_case "balance improves" `Quick test_balance_improves_with_unrolling;
    Alcotest.test_case "group counts" `Quick test_group_counts_exposed;
    Alcotest.test_case "prefetch" `Quick test_prefetch_hides_misses;
    Alcotest.test_case "register constraint" `Quick test_search_respects_registers;
    Alcotest.test_case "model choices differ on sor" `Quick test_search_tie_breaks;
    Alcotest.test_case "search == brute force" `Quick test_search_agrees_with_bruteforce;
    Gen.to_alcotest prop_search_optimal ]
