(* Unroll-and-jam legality caps: [Safety.max_safe_unroll] edge cases on
   hand-built dependence graphs — leading Stars, all-zero vectors,
   negative and positive inner suffixes, and multi-edge minima.  The
   graphs are fabricated directly (one self-edge per distance vector)
   so each case pins exactly one rule of the cap computation. *)

open Ujam_ir
open Ujam_ir.Build
open Ujam_depend

let nest_d d =
  let vars = List.init d (fun k -> var d k) in
  let names = List.init d (fun k -> Printf.sprintf "K%d" k) in
  let loops =
    List.mapi (fun k name -> loop d name ~level:k ~lo:1 ~hi:10 ()) names
  in
  nest (Printf.sprintf "synth%d" d) loops
    [ aref "A" vars <<- (rd "A" vars +: f 1.0) ]

let graph_of nest dvecs =
  let site = List.hd (Site.of_nest nest) in
  { Graph.nest;
    edges =
      List.map
        (fun dvec -> { Graph.src = site; dst = site; kind = Graph.Flow; dvec })
        dvecs }

let caps d dvecs = Safety.max_safe_unroll (graph_of (nest_d d) dvecs)

let check name expect actual =
  Alcotest.(check (array int)) name expect actual

(* max_int prints badly in failures; map to -1 for comparison *)
let norm = Array.map (fun c -> if c = max_int then -1 else c)

let e x = Depvec.Exact x
let star = Depvec.Star

let test_no_edges () =
  check "no dependences: only the innermost is pinned" [| -1; 0 |]
    (norm (caps 2 []));
  check "depth 3" [| -1; -1; 0 |] (norm (caps 3 []))

let test_zero_vector () =
  check "loop-independent dependence constrains nothing" [| -1; 0 |]
    (norm (caps 2 [ [| e 0; e 0 |] ]))

let test_exact_suffixes () =
  check "distance 2, negative suffix: cap x-1 = 1" [| 1; 0 |]
    (norm (caps 2 [ [| e 2; e (-1) |] ]));
  check "distance 2, positive suffix: unconstrained" [| -1; 0 |]
    (norm (caps 2 [ [| e 2; e 1 |] ]));
  check "distance 2, zero suffix: unconstrained" [| -1; 0 |]
    (norm (caps 2 [ [| e 2; e 0 |] ]))

let test_star_suffix () =
  check "(2,*): unknown suffix blocks, cap 1" [| 1; 0 |]
    (norm (caps 2 [ [| e 2; star |] ]))

let test_leading_star () =
  check "(*,1): nonzero suffix pins the outer loop at 0" [| 0; 0 |]
    (norm (caps 2 [ [| star; e 1 |] ]));
  check "(*,0): zero suffix leaves the outer loop free" [| -1; 0 |]
    (norm (caps 2 [ [| star; e 0 |] ]));
  check "(*,*): star suffix pins at 0" [| 0; 0 |]
    (norm (caps 2 [ [| star; star |] ]))

let test_multi_edge_min () =
  check "two edges: the tighter cap wins" [| 1; 0 |]
    (norm (caps 2 [ [| e 3; e (-1) |]; [| e 2; e (-1) |] ]));
  check "unconstrained edge does not loosen the cap" [| 2; 0 |]
    (norm (caps 2 [ [| e 3; e (-1) |]; [| e 1; e 1 |] ]))

let test_depth3_mixed () =
  (* (1,*,0): level 0 sees a Star in its suffix -> cap 0; level 1 is a
     Star whose own suffix is all-zero -> free. *)
  check "star in suffix vs star with zero suffix" [| 0; -1; 0 |]
    (norm (caps 3 [ [| e 1; star; e 0 |] ]));
  (* (0,2,-1): only the middle loop is capped. *)
  check "cap carried at the middle level" [| -1; 1; 0 |]
    (norm (caps 3 [ [| e 0; e 2; e (-1) |] ]))

let test_is_safe_consistency () =
  let g = graph_of (nest_d 2) [ [| e 2; e (-1) |] ] in
  Alcotest.(check bool) "u within caps is safe" true
    (Safety.is_safe g (Ujam_linalg.Vec.of_list [ 1; 0 ]));
  Alcotest.(check bool) "u above caps is unsafe" false
    (Safety.is_safe g (Ujam_linalg.Vec.of_list [ 2; 0 ]))

let suite =
  [ Alcotest.test_case "no edges" `Quick test_no_edges;
    Alcotest.test_case "all-zero vector" `Quick test_zero_vector;
    Alcotest.test_case "exact suffixes" `Quick test_exact_suffixes;
    Alcotest.test_case "star suffix" `Quick test_star_suffix;
    Alcotest.test_case "leading star" `Quick test_leading_star;
    Alcotest.test_case "multi-edge min" `Quick test_multi_edge_min;
    Alcotest.test_case "depth-3 mixed" `Quick test_depth3_mixed;
    Alcotest.test_case "is_safe consistency" `Quick test_is_safe_consistency ]
