(* The simulator substrate: cache, layout, CPU model, runner. *)

open Ujam_ir
open Ujam_ir.Build
open Ujam_sim
open Ujam_machine

let test_cache_basics () =
  let c = Cache.create ~size:16 ~line:4 ~assoc:1 () in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "same line hits" true (Cache.access c 3);
  Alcotest.(check bool) "next line misses" false (Cache.access c 4);
  Alcotest.(check int) "accesses" 3 (Cache.accesses c);
  Alcotest.(check int) "misses" 2 (Cache.misses c);
  Alcotest.(check (float 1e-9)) "miss rate" (2.0 /. 3.0) (Cache.miss_rate c);
  Cache.reset c;
  Alcotest.(check int) "reset" 0 (Cache.accesses c)

let test_cache_conflict_directmapped () =
  (* 16 elements, line 4, direct-mapped: 4 sets; addresses 0 and 16 map
     to the same set. *)
  let c = Cache.create ~size:16 ~line:4 ~assoc:1 () in
  ignore (Cache.access c 0);
  ignore (Cache.access c 16);
  Alcotest.(check bool) "conflict evicted" false (Cache.access c 0)

let test_cache_associativity () =
  (* 2-way: both lines coexist. *)
  let c = Cache.create ~size:32 ~line:4 ~assoc:2 () in
  ignore (Cache.access c 0);
  ignore (Cache.access c 32);
  Alcotest.(check bool) "2-way keeps both" true (Cache.access c 0);
  (* LRU: third conflicting line evicts the least recent (32) *)
  ignore (Cache.access c 64);
  Alcotest.(check bool) "0 still resident" true (Cache.access c 0);
  Alcotest.(check bool) "32 evicted" false (Cache.access c 32)

let test_cache_capacity_sweep () =
  let c = Cache.create ~size:64 ~line:4 ~assoc:2 () in
  (* stream over 128 elements twice: no reuse survives *)
  for _pass = 1 to 2 do
    for a = 0 to 127 do
      ignore (Cache.access c a)
    done
  done;
  Alcotest.(check int) "compulsory+capacity misses" 64 (Cache.misses c);
  (* now a stream that fits: second pass all hits *)
  let c2 = Cache.create ~size:64 ~line:4 ~assoc:2 () in
  for _pass = 1 to 2 do
    for a = 0 to 63 do
      ignore (Cache.access c2 a)
    done
  done;
  Alcotest.(check int) "fits: only compulsory" 16 (Cache.misses c2)

let test_layout () =
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  let nest =
    nest "lay"
      [ loop d "J" ~level:0 ~lo:1 ~hi:8 (); loop d "I" ~level:1 ~lo:1 ~hi:10 () ]
      [ aref "A" [ i; j ] <<- rd "B" [ i; j +$ 1 ] ]
  in
  let l = Layout.of_nest nest ~line:4 in
  Alcotest.(check (array int)) "A extents" [| 10; 8 |] (Layout.extent l "A");
  (* B's J+1 subscript ranges over 2..9: extent 8 from its own minimum *)
  Alcotest.(check (array int)) "B extents follow the subscript range" [| 10; 8 |]
    (Layout.extent l "B");
  (* column-major: consecutive I differ by 1, consecutive J by extent *)
  let a = aref "A" [ i; j ] in
  let base = Layout.address l a [| 1; 1 |] in
  Alcotest.(check int) "I stride 1" (base + 1) (Layout.address l a [| 1; 2 |]);
  Alcotest.(check int) "J stride = column" (base + 10) (Layout.address l a [| 2; 1 |]);
  (* arrays are allocated in order of first appearance (B is read before
     A is written) and never overlap *)
  Alcotest.(check bool) "arrays disjoint" true
    (abs (Layout.address l (aref "B" [ i; j +$ 1 ]) [| 1; 1 |] - base) >= 10 * 8);
  Alcotest.(check bool) "footprint covers everything" true
    (Layout.footprint l >= (10 * 8) + (10 * 9));
  Alcotest.check_raises "unknown array" Not_found (fun () ->
      ignore (Layout.extent l "Z"))

let test_layout_triangular () =
  let d = 2 in
  let i = var d 0 and j = var d 1 in
  let nest =
    nest "tri"
      [ loop d "I" ~level:0 ~lo:1 ~hi:6 ();
        loop_aff "J" ~level:1 ~lo:(var d 0) ~hi:(cst d 6) () ]
      [ aref "A" [ i ++$ j ] <<- f 0.0 ]
  in
  let l = Layout.of_nest nest ~line:4 in
  (* subscript I+J ranges over 2..12 *)
  Alcotest.(check (array int)) "interval analysis" [| 11 |] (Layout.extent l "A")

let test_cpu_model () =
  Alcotest.(check int) "expr depth" 2
    (Cpu.expr_depth Expr.(Bin (Add, Bin (Mul, Const 1.0, Const 2.0), Const 3.0)));
  let m = Presets.alpha in
  Alcotest.(check (float 1e-9)) "issue bound mem" 5.0
    (Cpu.issue_cycles m ~mem_ops:5 ~flops:3);
  Alcotest.(check (float 1e-9)) "issue bound fp" 7.0
    (Cpu.issue_cycles m ~mem_ops:5 ~flops:7);
  (* reduction recurrence: one add chained across iterations *)
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  let red =
    nest "red"
      [ loop d "J" ~level:0 ~lo:1 ~hi:8 (); loop d "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "A" [ j ] <<- rd "A" [ j ] +: rd "B" [ i ] ]
  in
  Alcotest.(check bool) "recurrence at least latency" true (Cpu.recurrence_ii m red >= 6.0);
  let stream =
    nest "stream"
      [ loop d "J" ~level:0 ~lo:1 ~hi:8 (); loop d "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "A" [ i; j ] <<- rd "B" [ i; j ] +: f 1.0 ]
  in
  Alcotest.(check (float 1e-9)) "no recurrence" 0.0 (Cpu.recurrence_ii m stream)

let test_runner_counts () =
  let nest = Ujam_kernels.Kernels.jacobi ~n:18 () in
  let machine = Presets.alpha in
  let r = Runner.run ~machine nest in
  Alcotest.(check int) "iterations" (16 * 16) r.Runner.iterations;
  Alcotest.(check int) "accesses = sites x iterations" (5 * 16 * 16) r.Runner.accesses;
  Alcotest.(check bool) "misses bounded by accesses" true (r.Runner.misses <= r.Runner.accesses);
  Alcotest.(check bool) "misses at least cold footprint" true
    (r.Runner.misses >= 2 * 16 * 16 / 4 / 2);
  Alcotest.(check (float 1.0)) "cycles add up" r.Runner.cycles
    (r.Runner.issue_cycles +. r.Runner.stall_cycles)

let test_runner_with_plan () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let machine = Presets.alpha in
  let plan = Ujam_core.Scalar_replace.plan nest in
  let without = Runner.run ~machine nest in
  let with_plan = Runner.run ~machine ~plan nest in
  Alcotest.(check int) "B load eliminated" 3 with_plan.Runner.mem_ops_per_iteration;
  Alcotest.(check bool) "fewer accesses" true
    (with_plan.Runner.accesses < without.Runner.accesses)

let test_runner_normalized () =
  let machine = Presets.alpha in
  let nest = Ujam_kernels.Kernels.dmxpy0 ~n:32 () in
  let base = Runner.run ~machine nest in
  Alcotest.(check (float 1e-9)) "self-normalized" 1.0 (Runner.normalized ~baseline:base base)

let test_prefetch_reduces_stalls () =
  let nest = Ujam_kernels.Kernels.dmxpy0 ~n:32 () in
  let no_pf = Presets.generic ~prefetch_bandwidth:0.0 () in
  let pf = Presets.generic ~prefetch_bandwidth:1.0 () in
  let a = Runner.run ~machine:no_pf nest in
  let b = Runner.run ~machine:pf nest in
  Alcotest.(check bool) "prefetch hides stalls" true
    (b.Runner.stall_cycles < a.Runner.stall_cycles)

let test_model_vs_simulator_misses () =
  (* Equation 1 predicts misses per innermost iteration with the
     innermost-only localized space.  Because it cannot see reuse
     carried by outer loops, it is an (approximate) upper bound on the
     measured steady-state rate for every kernel; and when the cache is
     too small for any outer-carried reuse to survive, the prediction
     becomes tight. *)
  let upper = Presets.alpha in
  List.iter
    (fun name ->
      let e = Option.get (Ujam_kernels.Catalogue.find name) in
      let nest = e.Ujam_kernels.Catalogue.build () in
      let d = Nest.depth nest in
      let space = Ujam_core.Unroll_space.make ~bounds:(Array.make d 0) in
      let b = Ujam_core.Balance.prepare ~machine:upper space nest in
      let model = Ujam_core.Balance.misses b (Ujam_linalg.Vec.zero d) in
      let sim = Runner.run ~machine:upper nest in
      let measured =
        float_of_int sim.Runner.misses /. float_of_int sim.Runner.iterations
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: model %.3f >= measured %.3f" name model measured)
        true
        (measured <= (model *. 1.3) +. 0.05))
    [ "dmxpy0"; "dmxpy1"; "mmjki"; "mmjik"; "jacobi"; "sor"; "vpenta.7";
      "cond.7"; "dflux.20"; "shal" ];
  (* tightness: a 64-element cache kills all outer-carried reuse *)
  (* fully associative so the measurement sees capacity behaviour, not
     direct-mapped conflicts the analytic model never claimed to cover *)
  let tiny =
    Machine.make ~name:"tiny-cache" ~cache_size:64 ~cache_line:4 ~associativity:16
      ~miss_penalty:24 ()
  in
  List.iter
    (fun name ->
      let e = Option.get (Ujam_kernels.Catalogue.find name) in
      let nest = e.Ujam_kernels.Catalogue.build () in
      let d = Nest.depth nest in
      let space = Ujam_core.Unroll_space.make ~bounds:(Array.make d 0) in
      let b = Ujam_core.Balance.prepare ~machine:tiny space nest in
      let model = Ujam_core.Balance.misses b (Ujam_linalg.Vec.zero d) in
      let sim = Runner.run ~machine:tiny nest in
      let measured =
        float_of_int sim.Runner.misses /. float_of_int sim.Runner.iterations
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s (tiny cache): model %.3f ~ measured %.3f" name model
           measured)
        true
        (measured <= (model *. 1.4) +. 0.1 && measured >= (model *. 0.6) -. 0.1))
    [ "dmxpy1"; "dmxpy0"; "mmjki" ]

(* ---- property tests: random access traces through the cache -------- *)

let geom_gen =
  let open QCheck2.Gen in
  let* line = oneofl [ 1; 2; 4; 8 ] in
  let* assoc = oneofl [ 1; 2; 4 ] in
  let* sets = oneofl [ 1; 2; 4; 8 ] in
  return (line * assoc * sets, line, assoc)

let trace_gen =
  let open QCheck2.Gen in
  let* geom = geom_gen in
  let* trace = list_size (int_range 1 200) (int_range 0 511) in
  return (geom, trace)

let trace_print ((size, line, assoc), trace) =
  Printf.sprintf "size=%d line=%d assoc=%d trace=[%s]" size line assoc
    (String.concat ";" (List.map string_of_int trace))

let prop_misses_bounded =
  QCheck2.Test.make ~name:"property: misses <= accesses" ~count:100
    ~print:trace_print trace_gen
    (fun ((size, line, assoc), trace) ->
      let c = Cache.create ~size ~line ~assoc () in
      List.iter (fun a -> ignore (Cache.access c a)) trace;
      Cache.misses c <= Cache.accesses c
      && Cache.accesses c = List.length trace)

let prop_same_line_hits =
  QCheck2.Test.make
    ~name:"property: immediate re-access within the same line hits" ~count:100
    ~print:trace_print trace_gen
    (fun ((size, line, assoc), trace) ->
      let c = Cache.create ~size ~line ~assoc () in
      List.for_all
        (fun a ->
          ignore (Cache.access c a);
          (* the line was just touched: its first element must be resident *)
          Cache.access c (a / line * line))
        trace)

let prop_reset_is_fresh =
  QCheck2.Test.make ~name:"property: reset behaves like a fresh cache"
    ~count:100 ~print:trace_print trace_gen
    (fun ((size, line, assoc), trace) ->
      let replay c = List.map (fun a -> Cache.access c a) trace in
      let warm = Cache.create ~size ~line ~assoc () in
      ignore (replay warm);
      Cache.reset warm;
      let after_reset = replay warm in
      let fresh = Cache.create ~size ~line ~assoc () in
      let from_fresh = replay fresh in
      after_reset = from_fresh
      && Cache.accesses warm = Cache.accesses fresh
      && Cache.misses warm = Cache.misses fresh)

let prop_full_assoc_only_compulsory =
  (* fully associative, working set <= size: after the warm-up pass every
     later pass hits, so misses stay at the compulsory line count *)
  QCheck2.Test.make
    ~name:"property: fully-associative fit has only compulsory misses"
    ~count:100
    ~print:(fun ws -> Printf.sprintf "working set = %d" ws)
    QCheck2.Gen.(int_range 1 64)
    (fun ws ->
      let c = Cache.create ~size:64 ~line:4 ~assoc:16 () in
      for a = 0 to ws - 1 do
        ignore (Cache.access c a)
      done;
      let compulsory = Cache.misses c in
      for _pass = 1 to 3 do
        for a = 0 to ws - 1 do
          ignore (Cache.access c a)
        done
      done;
      Cache.misses c = compulsory && compulsory = ((ws + 3) / 4))

let prop_miss_rate_clean_after_reset =
  QCheck2.Test.make ~name:"property: miss_rate reads 0 after reset" ~count:100
    ~print:trace_print trace_gen
    (fun ((size, line, assoc), trace) ->
      let c = Cache.create ~size ~line ~assoc () in
      List.iter (fun a -> ignore (Cache.access c a)) trace;
      Cache.reset c;
      Cache.miss_rate c = 0.0 && Cache.accesses c = 0 && Cache.misses c = 0)

let assoc_trace_gen =
  let open QCheck2.Gen in
  let* line = oneofl [ 1; 2; 4 ] in
  let* capacity = oneofl [ 1; 2; 4; 8 ] in
  let* trace = list_size (int_range 1 300) (int_range 0 255) in
  return ((line, capacity), trace)

let assoc_trace_print ((line, capacity), trace) =
  Printf.sprintf "line=%d capacity=%d trace=[%s]" line capacity
    (String.concat ";" (List.map string_of_int trace))

let prop_full_assoc_matches_stack =
  (* a fully-associative LRU cache of capacity C lines must hit exactly
     the accesses whose Mattson stack distance is < C — the simulator
     against its executable specification *)
  QCheck2.Test.make
    ~name:"property: fully-associative LRU = reference stack distance"
    ~count:200 ~print:assoc_trace_print assoc_trace_gen
    (fun ((line, capacity), trace) ->
      let c = Cache.create ~size:(line * capacity) ~line ~assoc:capacity () in
      let s = Cache.Stack.create ~line in
      List.for_all
        (fun a ->
          let hit = Cache.access c a in
          let expect =
            match Cache.Stack.access s a with
            | None -> false
            | Some d -> d < capacity
          in
          hit = expect)
        trace)

let hierarchy_trace_gen =
  let open QCheck2.Gen in
  let* line = oneofl [ 1; 2; 4 ] in
  let* caps = list_size (int_range 1 3) (oneofl [ 1; 2; 4; 8; 16 ]) in
  let* trace = list_size (int_range 1 300) (int_range 0 255) in
  return ((line, List.sort compare caps), trace)

let hierarchy_trace_print ((line, caps), trace) =
  Printf.sprintf "line=%d caps=[%s] trace=[%s]" line
    (String.concat ";" (List.map string_of_int caps))
    (String.concat ";" (List.map string_of_int trace))

let prop_hierarchy_misses_monotone =
  (* fully-associative levels with non-decreasing capacities and one
     shared line size: LRU stack inclusion makes per-level miss counts
     non-increasing from L1 outwards *)
  QCheck2.Test.make
    ~name:"property: hierarchy misses are level-monotone" ~count:200
    ~print:hierarchy_trace_print hierarchy_trace_gen
    (fun ((line, caps), trace) ->
      let levels =
        List.mapi
          (fun i cap ->
            Machine.Level.make
              ~name:(Printf.sprintf "L%d" (i + 1))
              ~size:(line * cap) ~line ~assoc:cap ())
          caps
      in
      let h = Cache.Hierarchy.create levels in
      List.iter (fun a -> Cache.Hierarchy.access h a) trace;
      let misses = List.map (fun (_, _, m) -> m) (Cache.Hierarchy.stats h) in
      let rec mono = function
        | a :: (b :: _ as tl) -> a >= b && mono tl
        | _ -> true
      in
      mono misses)

let suite =
  [ Alcotest.test_case "cache basics" `Quick test_cache_basics;
    Gen.to_alcotest prop_miss_rate_clean_after_reset;
    Gen.to_alcotest prop_full_assoc_matches_stack;
    Gen.to_alcotest prop_hierarchy_misses_monotone;
    Gen.to_alcotest prop_misses_bounded;
    Gen.to_alcotest prop_same_line_hits;
    Gen.to_alcotest prop_reset_is_fresh;
    Gen.to_alcotest prop_full_assoc_only_compulsory;
    Alcotest.test_case "direct-mapped conflicts" `Quick test_cache_conflict_directmapped;
    Alcotest.test_case "associativity + LRU" `Quick test_cache_associativity;
    Alcotest.test_case "capacity" `Quick test_cache_capacity_sweep;
    Alcotest.test_case "layout" `Quick test_layout;
    Alcotest.test_case "layout triangular" `Quick test_layout_triangular;
    Alcotest.test_case "cpu model" `Quick test_cpu_model;
    Alcotest.test_case "runner counts" `Quick test_runner_counts;
    Alcotest.test_case "runner with plan" `Quick test_runner_with_plan;
    Alcotest.test_case "runner normalized" `Quick test_runner_normalized;
    Alcotest.test_case "prefetch" `Quick test_prefetch_reduces_stalls;
    Alcotest.test_case "Equation 1 vs simulator" `Quick test_model_vs_simulator_misses ]
