(* Properties of Ir.Hashcons over generated nests: consing changes
   neither structure nor canonical digest, physical equality of consed
   representatives coincides with structural equality, consing is
   idempotent, float constants merge by bit pattern only, and the
   engine work queue built on the work-stealing Par renders
   byte-identically at every domain count.  (The serve daemon's
   1-vs-N-domain byte identity lives in Test_serve.) *)

open Ujam_ir

(* Structural equality including names and labels — exactly the
   equivalence the hashcons tables intern by.  The component [equal]s
   raise on mismatched array lengths (depth or subscript count), which
   here just means "different structure". *)
let nest_equal (a : Nest.t) (b : Nest.t) =
  try
    String.equal (Nest.name a) (Nest.name b)
    && Array.length (Nest.loops a) = Array.length (Nest.loops b)
    && Array.for_all2
         (fun (la : Loop.t) (lb : Loop.t) ->
           String.equal la.Loop.var lb.Loop.var
           && la.Loop.level = lb.Loop.level
           && la.Loop.step = lb.Loop.step
           && Affine.equal la.Loop.lo lb.Loop.lo
           && Affine.equal la.Loop.hi lb.Loop.hi)
         (Nest.loops a) (Nest.loops b)
    && List.equal Stmt.equal (Nest.body a) (Nest.body b)
  with Invalid_argument _ -> false

let structure_preserved =
  QCheck2.Test.make ~name:"consed nest structurally equals the plain nest"
    ~count:200 ~print:Gen.nest_print (Gen.nest_gen ())
    (fun nest -> nest_equal nest (Hashcons.nest nest))

let digest_preserved =
  QCheck2.Test.make ~name:"consing never moves the canonical digest"
    ~count:200 ~print:Gen.nest_print (Gen.nest_gen ())
    (fun nest ->
      let consed = Hashcons.nest nest in
      String.equal (Canon.digest nest) (Canon.digest consed)
      && String.equal (Canon.digest consed) (Canon.digest_uncached consed))

let phys_iff_structural =
  QCheck2.Test.make
    ~name:"consed reps physically equal iff structurally equal" ~count:200
    ~print:(fun (a, b) -> Gen.nest_print a ^ "\n--- vs ---\n" ^ Gen.nest_print b)
    (QCheck2.Gen.pair (Gen.nest_gen ()) (Gen.nest_gen ()))
    (fun (a, b) ->
      Bool.equal (Hashcons.nest a == Hashcons.nest b) (nest_equal a b))

let idempotent =
  QCheck2.Test.make ~name:"consing is idempotent" ~count:200
    ~print:Gen.nest_print (Gen.nest_gen ())
    (fun nest ->
      let c = Hashcons.nest nest in
      Hashcons.nest c == c
      && Hashcons.is_consed_nest c
      && Hashcons.id_nest c <> None)

(* A structurally identical rebuild — fresh objects throughout — must
   intern to the same representative under the same id. *)
let test_fresh_copy_merges () =
  let parse src =
    match Parse.nest src with
    | Ok n -> n
    | Error e -> Alcotest.failf "parse: %a" Parse.pp_error e
  in
  let src = "DO I = 1, 10\nDO J = 1, 8\n A(I,J) = A(I,J-1) + 1.0\nENDDO\nENDDO" in
  let a = Hashcons.nest (parse src) in
  let b = Hashcons.nest (parse src) in
  Alcotest.(check bool) "same representative" true (a == b);
  Alcotest.(check (option int)) "same id" (Hashcons.id_nest a)
    (Hashcons.id_nest b)

(* Float constants merge by IEEE bit pattern, never by [=]: -0.0 and
   0.0 print differently, so conflating them would corrupt rendered
   output; two NaNs with the same payload are the same constant. *)
let test_float_bits () =
  let pos = Hashcons.expr (Expr.Const 0.0) in
  let neg = Hashcons.expr (Expr.Const (-0.0)) in
  Alcotest.(check bool) "-0.0 kept apart from 0.0" false (pos == neg);
  let n1 = Hashcons.expr (Expr.Const Float.nan) in
  let n2 = Hashcons.expr (Expr.Const Float.nan) in
  Alcotest.(check bool) "identical NaNs merge" true (n1 == n2)

(* The corpus runner on the work-stealing queue: every domain count
   must render the identical report.  The process-wide outcome memo is
   cleared between runs so each one does its own full work. *)
let test_corpus_domain_identity () =
  let machine = Ujam_machine.Presets.alpha in
  let routines = Ujam_workload.Generator.corpus ~seed:42 ~count:30 () in
  let render domains =
    Ujam_engine.Engine.memo_clear ();
    Ujam_engine.Engine.to_string
      (Ujam_engine.Engine.run_corpus ~domains ~bound:3 ~machine routines)
  in
  let one = render 1 in
  Alcotest.(check string) "1 = 2 domains" one (render 2);
  Alcotest.(check string) "1 = 4 domains" one (render 4)

let suite =
  [ Gen.to_alcotest structure_preserved;
    Gen.to_alcotest digest_preserved;
    Gen.to_alcotest phys_iff_structural;
    Gen.to_alcotest idempotent;
    Alcotest.test_case "fresh structural copy merges" `Quick
      test_fresh_copy_merges;
    Alcotest.test_case "float constants merge by bits" `Quick test_float_bits;
    Alcotest.test_case "corpus 1 vs N domains" `Quick
      test_corpus_domain_identity ]
