(* The observability substrate: metrics registry, histograms, spans,
   the JSON parser, and the golden span-vs-timings agreement. *)

module Obs = Ujam_obs.Obs
module Json = Ujam_obs.Json
open Ujam_core

(* Every test runs with the memory sink on and leaves the process with
   the default no-op sink and a zeroed registry, so suite order cannot
   leak state between tests. *)
let with_obs f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* Fresh histogram names per call: the registry is find-or-create, so a
   reused name would accumulate across property iterations. *)
let fresh_hist =
  let k = ref 0 in
  fun () ->
    incr k;
    Obs.histogram (Printf.sprintf "test.h.%d" !k)

let summary_eq (a : Obs.Histogram.summary) (b : Obs.Histogram.summary) =
  a.Obs.Histogram.count = b.Obs.Histogram.count
  && a.Obs.Histogram.min = b.Obs.Histogram.min
  && a.Obs.Histogram.max = b.Obs.Histogram.max
  && a.Obs.Histogram.mean = b.Obs.Histogram.mean
  && a.Obs.Histogram.p50 = b.Obs.Histogram.p50
  && a.Obs.Histogram.p95 = b.Obs.Histogram.p95
  && a.Obs.Histogram.p99 = b.Obs.Histogram.p99

(* ---- counters and gauges ---------------------------------------------- *)

let test_counter_basics () =
  with_obs (fun () ->
      let c = Obs.counter "test.counter.basics" in
      Obs.Counter.incr c;
      Obs.Counter.add c 41;
      Alcotest.(check int) "value" 42 (Obs.Counter.value c);
      Alcotest.(check string) "name" "test.counter.basics" (Obs.Counter.name c);
      let c' = Obs.counter "test.counter.basics" in
      Obs.Counter.incr c';
      Alcotest.(check int) "find-or-create shares state" 43 (Obs.Counter.value c))

let test_counter_multi_domain () =
  with_obs (fun () ->
      let c = Obs.counter "test.counter.domains" in
      let per_domain = 10_000 and domains = 4 in
      let spawned =
        List.init domains (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_domain do
                  Obs.Counter.incr c
                done))
      in
      List.iter Domain.join spawned;
      Alcotest.(check int) "no lost increments" (domains * per_domain)
        (Obs.Counter.value c))

let test_disabled_sink_is_noop () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.counter "test.disabled.counter" in
  let g = Obs.gauge "test.disabled.gauge" in
  let h = Obs.histogram "test.disabled.hist" in
  Obs.Counter.incr c;
  Obs.Gauge.set g 3.0;
  Obs.Histogram.record h 0.5;
  Obs.Span.emit ~name:"test.disabled.span" ~t0:0.0 ~dur:1.0;
  ignore (Obs.Span.with_ "test.disabled.span2" (fun () -> 7));
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0 (Obs.Gauge.value g);
  Alcotest.(check int) "histogram untouched" 0
    (Obs.Histogram.summary h).Obs.Histogram.count;
  Alcotest.(check int) "no spans" 0 (List.length (Obs.Span.events ()))

(* ---- histogram properties --------------------------------------------- *)

let samples_gen =
  QCheck2.Gen.(
    list_size (int_range 1 200)
      (map (fun x -> Float.pow 10.0 ((x *. 14.0) -. 10.0)) (float_bound_inclusive 1.0)))

let samples_print vs =
  String.concat ";" (List.map (Printf.sprintf "%.3e") vs)

let prop_summary_order_independent =
  QCheck2.Test.make
    ~name:"property: histogram summary is order-independent" ~count:60
    ~print:samples_print samples_gen
    (fun vs ->
      with_obs (fun () ->
          let h1 = fresh_hist () and h2 = fresh_hist () in
          List.iter (Obs.Histogram.record h1) vs;
          List.iter (Obs.Histogram.record h2) (List.rev vs);
          summary_eq (Obs.Histogram.summary h1) (Obs.Histogram.summary h2)))

let prop_summary_domain_independent =
  (* the same multiset recorded from 1 or N domains yields the identical
     summary: every field is a pure function of integer bucket counts *)
  QCheck2.Test.make
    ~name:"property: 1-domain and N-domain recording agree" ~count:40
    ~print:samples_print samples_gen
    (fun vs ->
      with_obs (fun () ->
          let h1 = fresh_hist () and hn = fresh_hist () in
          List.iter (Obs.Histogram.record h1) vs;
          let chunks = Array.make 4 [] in
          List.iteri (fun i v -> chunks.(i mod 4) <- v :: chunks.(i mod 4)) vs;
          let spawned =
            Array.to_list
              (Array.map
                 (fun chunk ->
                   Domain.spawn (fun () ->
                       List.iter (Obs.Histogram.record hn) chunk))
                 chunks)
          in
          List.iter Domain.join spawned;
          summary_eq (Obs.Histogram.summary h1) (Obs.Histogram.summary hn)))

let prop_merge_associative =
  QCheck2.Test.make
    ~name:"property: histogram merge is associative and commutative"
    ~count:60
    ~print:(fun (a, b, c) ->
      Printf.sprintf "a=[%s] b=[%s] c=[%s]" (samples_print a) (samples_print b)
        (samples_print c))
    QCheck2.Gen.(triple samples_gen samples_gen samples_gen)
    (fun (va, vb, vc) ->
      with_obs (fun () ->
          let ha = fresh_hist () and hb = fresh_hist () and hc = fresh_hist () in
          List.iter (Obs.Histogram.record ha) va;
          List.iter (Obs.Histogram.record hb) vb;
          List.iter (Obs.Histogram.record hc) vc;
          let open Obs.Histogram in
          summary_eq
            (summary (merge (merge ha hb) hc))
            (summary (merge ha (merge hb hc)))
          && summary_eq (summary (merge ha hb)) (summary (merge hb ha))))

let test_histogram_quantiles () =
  with_obs (fun () ->
      let h = fresh_hist () in
      (* 100 samples at 1e-3, one outlier at 1.0: p50/p95 sit in the 1e-3
         bucket, p99 still does (rank 99 of 101), max sees the outlier *)
      for _ = 1 to 100 do
        Obs.Histogram.record h 1e-3
      done;
      Obs.Histogram.record h 1.0;
      let s = Obs.Histogram.summary h in
      Alcotest.(check int) "count" 101 s.Obs.Histogram.count;
      Alcotest.(check (float 1e-12)) "min" 1e-3 s.Obs.Histogram.min;
      Alcotest.(check (float 1e-12)) "max" 1.0 s.Obs.Histogram.max;
      let rep = Obs.Histogram.bucket_of 1e-3 in
      Alcotest.(check int) "p50 in the 1e-3 bucket" rep
        (Obs.Histogram.bucket_of s.Obs.Histogram.p50);
      Alcotest.(check int) "p95 in the 1e-3 bucket" rep
        (Obs.Histogram.bucket_of s.Obs.Histogram.p95);
      Alcotest.(check bool) "p99 below the outlier" true
        (s.Obs.Histogram.p99 < 0.5))

(* ---- sim.cache counters ------------------------------------------------ *)

let test_cache_counters () =
  with_obs (fun () ->
      let accesses = Obs.counter "sim.cache.accesses" in
      let misses = Obs.counter "sim.cache.misses" in
      let a0 = Obs.Counter.value accesses and m0 = Obs.Counter.value misses in
      let c = Ujam_sim.Cache.create ~size:16 ~line:4 ~assoc:1 () in
      for a = 0 to 31 do
        ignore (Ujam_sim.Cache.access c a)
      done;
      Alcotest.(check int) "accesses counted" 32
        (Obs.Counter.value accesses - a0);
      Alcotest.(check int) "misses match the cache's own count"
        (Ujam_sim.Cache.misses c)
        (Obs.Counter.value misses - m0))

(* ---- spans and the golden timing agreement ----------------------------- *)

let stage_sum events name =
  List.fold_left
    (fun acc (e : Obs.Span.event) ->
      if String.equal e.Obs.Span.name name then acc +. e.Obs.Span.dur else acc)
    0.0 events

let test_span_sums_equal_timings () =
  with_obs (fun () ->
      let machine = Ujam_machine.Presets.alpha in
      let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
      let ctx = Analysis_ctx.create ~bound:3 ~machine nest in
      ignore (Analysis_ctx.safety ctx);
      ignore (Analysis_ctx.balance ctx);
      ignore (Ujam_engine.Model.Ugs_tables.analyze ctx);
      let t = Analysis_ctx.timings ctx in
      let events = Obs.Span.events () in
      let check stage expected =
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "span sum = timings for %s" stage)
          expected (stage_sum events stage)
      in
      (* the same dt feeds the timings record and the span, so the sums
         agree to the last bit; the tolerance only covers fp re-summation *)
      check "graph" t.Analysis_ctx.graph_s;
      check "tables" t.Analysis_ctx.tables_s;
      check "search" t.Analysis_ctx.search_s;
      check "sim" t.Analysis_ctx.sim_s;
      Alcotest.(check bool) "at least one stage span recorded" true
        (events <> []))

let test_span_nesting_and_chrome () =
  with_obs (fun () ->
      let r =
        Obs.Span.with_ "outer" (fun () ->
            Obs.Span.with_ "inner" (fun () -> 21) * 2)
      in
      Alcotest.(check int) "with_ passes the result through" 42 r;
      let events = Obs.Span.events () in
      Alcotest.(check int) "two spans" 2 (List.length events);
      let outer =
        List.find (fun e -> e.Obs.Span.name = "outer") events
      in
      let inner =
        List.find (fun e -> e.Obs.Span.name = "inner") events
      in
      Alcotest.(check bool) "inner contained in outer" true
        (inner.Obs.Span.t0 >= outer.Obs.Span.t0
        && inner.Obs.Span.dur <= outer.Obs.Span.dur);
      (* the Chrome envelope round-trips through our own parser *)
      let rendered = Json.to_string (Obs.Span.to_chrome ()) in
      match Json.of_string rendered with
      | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
      | Ok json -> (
          match Json.member "traceEvents" json with
          | Some (Json.List evs) ->
              Alcotest.(check int) "both spans exported" 2 (List.length evs);
              List.iter
                (fun e ->
                  Alcotest.(check bool) "complete event" true
                    (Json.member "ph" e = Some (Json.Str "X"));
                  match (Json.member "ts" e, Json.member "dur" e) with
                  | Some (Json.Int ts), Some (Json.Int dur) ->
                      Alcotest.(check bool) "non-negative microseconds" true
                        (ts >= 0 && dur >= 0)
                  | _ -> Alcotest.fail "ts/dur not integers")
                evs
          | _ -> Alcotest.fail "traceEvents missing"))

let test_dump_shape () =
  with_obs (fun () ->
      Obs.Counter.incr (Obs.counter "test.dump.c");
      Obs.Gauge.set (Obs.gauge "test.dump.g") 2.5;
      Obs.Histogram.record (Obs.histogram "test.dump.h") 0.125;
      let d = Obs.dump () in
      let field k =
        match Json.member k d with
        | Some (Json.Obj kvs) -> kvs
        | _ -> Alcotest.failf "dump lacks %s" k
      in
      Alcotest.(check bool) "counter dumped" true
        (List.mem_assoc "test.dump.c" (field "counters"));
      Alcotest.(check bool) "gauge dumped" true
        (List.mem_assoc "test.dump.g" (field "gauges"));
      match List.assoc_opt "test.dump.h" (field "histograms") with
      | Some (Json.Obj s) ->
          Alcotest.(check bool) "histogram has a count" true
            (List.mem_assoc "count" s)
      | _ -> Alcotest.fail "histogram summary missing")

(* ---- the JSON parser --------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("null", Json.Null);
        ("t", Json.Bool true);
        ("f", Json.Bool false);
        ("i", Json.Int (-42));
        ("x", Json.Float 1.5);
        ("s", Json.Str "a \"quoted\" \\ line\nbreak");
        ("l", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
        ("o", Json.Obj [ ("nested", Json.List [ Json.Null ]) ]) ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.failf "round-trip failed: %s" e

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed input %S" s
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "tru";
  bad "1 2";
  bad "\"unterminated";
  bad "{\"a\" 1}"

let test_json_numbers_and_escapes () =
  (match Json.of_string "[0, -7, 2.5, 1e3, -1.25e-2]" with
  | Ok
      (Json.List
        [ Json.Int 0; Json.Int (-7); Json.Float 2.5; Json.Float 1000.0;
          Json.Float f ]) ->
      Alcotest.(check (float 1e-12)) "exponent" (-0.0125) f
  | Ok other -> Alcotest.failf "unexpected parse: %s" (Json.to_string other)
  | Error e -> Alcotest.failf "numbers failed: %s" e);
  (match Json.of_string "\"a\\u0041\\n\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "unicode escape" "aA\n" s
  | Ok _ | Error _ -> Alcotest.fail "string escapes failed");
  match Json.of_string "1e400" with
  | Ok (Json.Float f) ->
      (* non-finite floats render as null; the emitter guarantee *)
      Alcotest.(check string) "overflow renders as null" "null"
        (Json.to_string (Json.Float f))
  | Ok _ | Error _ -> Alcotest.fail "overflowing literal"

let suite =
  [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "counter across domains" `Quick test_counter_multi_domain;
    Alcotest.test_case "disabled sink is a no-op" `Quick
      test_disabled_sink_is_noop;
    Gen.to_alcotest prop_summary_order_independent;
    Gen.to_alcotest prop_summary_domain_independent;
    Gen.to_alcotest prop_merge_associative;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "sim.cache counters" `Quick test_cache_counters;
    Alcotest.test_case "span sums equal stage timings" `Quick
      test_span_sums_equal_timings;
    Alcotest.test_case "span nesting + chrome export" `Quick
      test_span_nesting_and_chrome;
    Alcotest.test_case "registry dump shape" `Quick test_dump_shape;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json numbers and escapes" `Quick
      test_json_numbers_and_escapes ]
