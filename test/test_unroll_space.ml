open Ujam_linalg
open Ujam_core

let v = Vec.of_list

let test_make () =
  let s = Unroll_space.make ~bounds:[| 2; 3; 0 |] in
  Alcotest.(check int) "card" 12 (Unroll_space.card s);
  Alcotest.(check int) "depth" 3 (Unroll_space.depth s);
  Alcotest.(check (list int)) "unroll levels" [ 0; 1 ] (Unroll_space.unroll_levels s);
  Alcotest.(check bool) "mem" true (Unroll_space.mem s (v [ 2; 3; 0 ]));
  Alcotest.(check bool) "not mem" false (Unroll_space.mem s (v [ 3; 0; 0 ]));
  Alcotest.(check bool) "negative not mem" false (Unroll_space.mem s (v [ -1; 0; 0 ]));
  Alcotest.check_raises "innermost must be zero"
    (Invalid_argument "Unroll_space.make: innermost bound must be 0") (fun () ->
      ignore (Unroll_space.make ~bounds:[| 0; 1 |]))

let test_uniform () =
  let s = Unroll_space.uniform ~depth:3 ~bound:4 ~unroll_levels:[ 0 ] in
  Alcotest.(check int) "card" 5 (Unroll_space.card s);
  Alcotest.check_raises "innermost level rejected"
    (Invalid_argument "Unroll_space.uniform: level out of range") (fun () ->
      ignore (Unroll_space.uniform ~depth:3 ~bound:2 ~unroll_levels:[ 2 ]))

let test_iteration () =
  let s = Unroll_space.make ~bounds:[| 1; 2; 0 |] in
  let vs = Unroll_space.vectors s in
  Alcotest.(check int) "all vectors" 6 (List.length vs);
  Alcotest.(check bool) "lexicographic" true
    (List.for_all2
       (fun a b -> Vec.compare a b < 0)
       (List.filteri (fun i _ -> i < 5) vs)
       (List.tl vs));
  Alcotest.(check bool) "all members" true (List.for_all (Unroll_space.mem s) vs)

let test_table () =
  let s = Unroll_space.make ~bounds:[| 2; 2; 0 |] in
  let t = Unroll_space.Table.create s 5 in
  Alcotest.(check int) "initial" 5 (Unroll_space.Table.get t (v [ 1; 1; 0 ]));
  Unroll_space.Table.set t (v [ 1; 1; 0 ]) 9;
  Unroll_space.Table.add t (v [ 1; 1; 0 ]) 1;
  Alcotest.(check int) "set/add" 10 (Unroll_space.Table.get t (v [ 1; 1; 0 ]));
  Alcotest.(check int) "others untouched" 5 (Unroll_space.Table.get t (v [ 2; 1; 0 ]));
  Alcotest.check_raises "out of space"
    (Invalid_argument "Unroll_space.Table: out of space") (fun () ->
      ignore (Unroll_space.Table.get t (v [ 3; 0; 0 ])))

let test_table_regions () =
  let s = Unroll_space.make ~bounds:[| 2; 2; 0 |] in
  let t = Unroll_space.Table.create s 0 in
  Unroll_space.Table.add_from t (v [ 1; 1; 0 ]) 1;
  Alcotest.(check int) "inside" 1 (Unroll_space.Table.get t (v [ 2; 1; 0 ]));
  Alcotest.(check int) "outside" 0 (Unroll_space.Table.get t (v [ 2; 0; 0 ]));
  let t2 = Unroll_space.Table.create s 0 in
  Unroll_space.Table.add_region t2 ~from_:(v [ 1; 0; 0 ])
    ~excluding:(Some (v [ 2; 0; 0 ])) 1;
  Alcotest.(check int) "in region" 1 (Unroll_space.Table.get t2 (v [ 1; 2; 0 ]));
  Alcotest.(check int) "excluded" 0 (Unroll_space.Table.get t2 (v [ 2; 2; 0 ]));
  Alcotest.(check int) "below" 0 (Unroll_space.Table.get t2 (v [ 0; 0; 0 ]))

let test_prefix_sum () =
  let s = Unroll_space.make ~bounds:[| 2; 2; 0 |] in
  let t = Unroll_space.Table.create s 1 in
  (* Sum over u' <= u of 1 = product of (u_k + 1) *)
  Alcotest.(check int) "prefix at origin" 1
    (Unroll_space.Table.prefix_sum t (v [ 0; 0; 0 ]));
  Alcotest.(check int) "prefix box" 6 (Unroll_space.Table.prefix_sum t (v [ 1; 2; 0 ]));
  Alcotest.(check int) "prefix full" 9 (Unroll_space.Table.prefix_sum t (v [ 2; 2; 0 ]))

let test_merge_add () =
  let s = Unroll_space.make ~bounds:[| 1; 0 |] in
  let a = Unroll_space.Table.create s 1 and b = Unroll_space.Table.create s 2 in
  let c = Unroll_space.Table.merge_add a b in
  Alcotest.(check int) "pointwise sum" 3 (Unroll_space.Table.get c (v [ 1; 0 ]))

(* ------------------------------------------------------------------ *)
(* QCheck parity: random write/read programs executed against the sweep
   engine and the per-cell [Reference] oracle must agree exactly, at
   every cell, for both [get] and [prefix_sum].  Region corners range
   one step outside the box on both sides to exercise the clamping. *)

type op =
  | Set of Vec.t * int
  | Add of Vec.t * int
  | Add_from of Vec.t * int
  | Add_region of Vec.t * Vec.t option * int
  | Add_cover of Vec.t list * int
  | Read of Vec.t  (** forces a materialisation mid-program *)

let vec_to_string u =
  "["
  ^ String.concat ";" (List.map string_of_int (Array.to_list (Vec.to_array u)))
  ^ "]"

let op_to_string = function
  | Set (u, x) -> Printf.sprintf "set %s %d" (vec_to_string u) x
  | Add (u, x) -> Printf.sprintf "add %s %d" (vec_to_string u) x
  | Add_from (u, x) -> Printf.sprintf "add_from %s %d" (vec_to_string u) x
  | Add_region (f, e, x) ->
      Printf.sprintf "add_region %s %s %d" (vec_to_string f)
        (match e with None -> "-" | Some e -> vec_to_string e)
        x
  | Add_cover (ps, x) ->
      Printf.sprintf "add_cover [%s] %d"
        (String.concat " " (List.map vec_to_string ps))
        x
  | Read u -> Printf.sprintf "read %s" (vec_to_string u)

let program_to_string (space, init, ops) =
  Printf.sprintf "bounds=%s init=%d\n%s"
    (String.concat ","
       (Array.to_list (Array.map string_of_int (Unroll_space.bounds space))))
    init
    (String.concat "\n" (List.map op_to_string ops))

let space_gen =
  let open QCheck2.Gen in
  let* d = int_range 2 4 in
  let* bs = flatten_l (List.init (d - 1) (fun _ -> int_range 0 3)) in
  return (Unroll_space.make ~bounds:(Array.of_list (bs @ [ 0 ])))

let program_gen =
  let open QCheck2.Gen in
  let* space = space_gen in
  let bounds = Unroll_space.bounds space in
  let axis_gen lo_pad hi_pad =
    flatten_a (Array.map (fun b -> int_range (-lo_pad) (b + hi_pad)) bounds)
  in
  let in_space = map Vec.make (axis_gen 0 0) in
  let near_space = map Vec.make (axis_gen 1 1) in
  let delta = int_range (-3) 5 in
  let op =
    frequency
      [ (2, map2 (fun u x -> Set (u, x)) in_space delta);
        (2, map2 (fun u x -> Add (u, x)) in_space delta);
        (4, map2 (fun u x -> Add_from (u, x)) near_space delta);
        ( 4,
          map3
            (fun f e x -> Add_region (f, e, x))
            near_space (option near_space) delta );
        ( 3,
          map2
            (fun ps x -> Add_cover (ps, x))
            (list_size (int_range 0 5) near_space)
            delta );
        (3, map (fun u -> Read u) in_space) ]
  in
  let* init = int_range (-2) 2 in
  let* ops = list_size (int_range 1 20) op in
  return (space, init, ops)

let prop_table_parity =
  QCheck2.Test.make
    ~name:"unroll-space: sweep engine == per-cell reference (random programs)"
    ~count:1000 ~print:program_to_string program_gen
    (fun (space, init, ops) ->
      let t = Unroll_space.Table.create space init in
      let r = Unroll_space.Reference.create space init in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Set (u, x) ->
              Unroll_space.Table.set t u x;
              Unroll_space.Reference.set r u x
          | Add (u, x) ->
              Unroll_space.Table.add t u x;
              Unroll_space.Reference.add r u x
          | Add_from (u, x) ->
              Unroll_space.Table.add_from t u x;
              Unroll_space.Reference.add_from r u x
          | Add_region (from_, excluding, x) ->
              Unroll_space.Table.add_region t ~from_ ~excluding x;
              Unroll_space.Reference.add_region r ~from_ ~excluding x
          | Add_cover (ps, x) ->
              Unroll_space.Table.add_cover t ps x;
              Unroll_space.Reference.add_cover r ps x
          | Read u ->
              if
                Unroll_space.Table.get t u <> Unroll_space.Reference.get r u
                || Unroll_space.Table.prefix_sum t u
                   <> Unroll_space.Reference.prefix_sum r u
              then ok := false)
        ops;
      Unroll_space.iter space (fun u ->
          if
            Unroll_space.Table.get t u <> Unroll_space.Reference.get r u
            || Unroll_space.Table.prefix_sum t u
               <> Unroll_space.Reference.prefix_sum r u
          then ok := false);
      !ok)

(* [iter_pruned] with an upward-closed predicate must visit exactly the
   non-pruned cells, in lexicographic order, and account for every
   skipped cell.  Monotone tables come from positive [add_from]s. *)
let pruned_gen =
  let open QCheck2.Gen in
  let* space = space_gen in
  let bounds = Unroll_space.bounds space in
  let corner =
    map Vec.make
      (flatten_a (Array.map (fun b -> int_range (-1) (b + 1)) bounds))
  in
  let* ops = list_size (int_range 0 6) (pair corner (int_range 1 3)) in
  let* threshold = int_range 0 8 in
  return (space, ops, threshold)

let prop_iter_pruned =
  QCheck2.Test.make
    ~name:"unroll-space: pruned iteration == monotone filter" ~count:500
    ~print:(fun (space, ops, thr) ->
      Printf.sprintf "bounds=%s thr=%d\n%s"
        (String.concat ","
           (Array.to_list (Array.map string_of_int (Unroll_space.bounds space))))
        thr
        (String.concat "\n"
           (List.map
              (fun (lo, x) -> Printf.sprintf "add_from %s %d" (vec_to_string lo) x)
              ops)))
    pruned_gen
    (fun (space, ops, thr) ->
      let t = Unroll_space.Table.create space 0 in
      List.iter (fun (lo, x) -> Unroll_space.Table.add_from t lo x) ops;
      let visited = ref [] in
      let pruned =
        Unroll_space.iter_pruned space
          ~prune:(fun u -> Unroll_space.Table.get t u > thr)
          (fun u -> visited := u :: !visited)
      in
      let expected =
        List.filter
          (fun u -> Unroll_space.Table.get t u <= thr)
          (Unroll_space.vectors space)
      in
      List.rev !visited = expected
      && List.length expected + pruned = Unroll_space.card space)

(* Pruning soundness end to end: on every catalogue kernel and both
   machine presets the pruned search returns the choice of the
   exhaustive scan, bit for bit. *)
let test_search_prune_sound () =
  List.iter
    (fun (machine : Ujam_machine.Machine.t) ->
      List.iter
        (fun (e : Ujam_kernels.Catalogue.entry) ->
          let nest = e.Ujam_kernels.Catalogue.build ~n:8 () in
          let ctx = Analysis_ctx.create ~bound:4 ~machine nest in
          let b = Analysis_ctx.balance ctx in
          List.iter
            (fun cache ->
              let fast = Search.best ~prune:true ~cache b in
              let slow = Search.best ~prune:false ~cache b in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s cache=%b"
                   machine.Ujam_machine.Machine.name e.Ujam_kernels.Catalogue.name
                   cache)
                true (fast = slow))
            [ true; false ])
        Ujam_kernels.Catalogue.all)
    [ Ujam_machine.Presets.alpha; Ujam_machine.Presets.hppa ]

let suite =
  [ Alcotest.test_case "make" `Quick test_make;
    Alcotest.test_case "uniform" `Quick test_uniform;
    Alcotest.test_case "iteration" `Quick test_iteration;
    Alcotest.test_case "table basics" `Quick test_table;
    Alcotest.test_case "table regions" `Quick test_table_regions;
    Alcotest.test_case "prefix sum" `Quick test_prefix_sum;
    Alcotest.test_case "merge add" `Quick test_merge_add;
    Gen.to_alcotest prop_table_parity;
    Gen.to_alcotest prop_iter_pruned;
    Alcotest.test_case "search pruning sound (19 kernels x 2 machines)" `Quick
      test_search_prune_sound ]
