(* The Wolf-Lam reuse model: UGS partitioning, self-reuse spaces,
   group-temporal/spatial partitions, Equation 1 and loop ranking. *)

open Ujam_linalg
open Ujam_ir
open Ujam_ir.Build
open Ujam_reuse

let space = Alcotest.testable Subspace.pp Subspace.equal

let innermost d = Subspace.span_dims ~dim:d [ d - 1 ]

let test_ugs_partition () =
  (* A(I,J), A(I,J+1) share H; A(J,I) is transposed; B(I,J) is another
     array. *)
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  let nest =
    nest "mix"
      [ loop d "J" ~level:0 ~lo:1 ~hi:8 (); loop d "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "B" [ i; j ]
        <<- rd "A" [ i; j ] +: rd "A" [ i; j +$ 1 ] +: rd "A" [ j; i ] ]
  in
  let groups = Ugs.of_nest nest in
  Alcotest.(check int) "three UGSs" 3 (List.length groups);
  let a_same =
    List.find
      (fun (g : Ugs.t) ->
        String.equal g.Ugs.base "A" && List.length g.Ugs.members = 2)
      groups
  in
  Alcotest.(check int) "leaders" 2 (List.length (Ugs.leaders a_same));
  Alcotest.(check bool) "leaders lex sorted" true
    (match Ugs.constant_vectors a_same with
    | [ c1; c2 ] -> Vec.compare c1 c2 < 0
    | _ -> false);
  Alcotest.(check bool) "separable" true (Ugs.is_separable_siv a_same)

let test_ugs_duplicate_constants () =
  (* the same reference twice: one leader *)
  let d = 2 in
  let j = var d 0 and i = var d 1 in
  let nest =
    nest "dup"
      [ loop d "J" ~level:0 ~lo:1 ~hi:8 (); loop d "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "B" [ i; j ] <<- rd "A" [ i; j ] *: rd "A" [ i; j ] ]
  in
  let a = List.find (fun (g : Ugs.t) -> String.equal g.Ugs.base "A") (Ugs.of_nest nest) in
  Alcotest.(check int) "two members" 2 (List.length a.Ugs.members);
  Alcotest.(check int) "one leader" 1 (List.length (Ugs.leaders a))

let test_self_reuse_spaces () =
  let d = 3 in
  (* A(I,J) in a (J,K,I) nest: ker H = span(e_K) *)
  let h = Mat.of_rows_list [ [ 0; 0; 1 ]; [ 1; 0; 0 ] ] in
  Alcotest.check space "self-temporal = e_K"
    (Subspace.span_dims ~dim:d [ 1 ])
    (Selfreuse.self_temporal h);
  Alcotest.check space "self-spatial adds the contiguous walker"
    (Subspace.span_dims ~dim:d [ 1; 2 ])
    (Selfreuse.self_spatial h);
  Alcotest.(check bool) "temporal in K-localized" true
    (Selfreuse.has_self_temporal ~localized:(Subspace.span_dims ~dim:d [ 1 ]) h);
  Alcotest.(check bool) "no temporal innermost" false
    (Selfreuse.has_self_temporal ~localized:(innermost d) h);
  Alcotest.(check bool) "spatial innermost" true
    (Selfreuse.has_self_spatial ~localized:(innermost d) h);
  (* row access B(K,J): innermost I not used at all -> temporal, and
     spatial adds nothing beyond temporal *)
  let hb = Mat.of_rows_list [ [ 0; 1; 0 ]; [ 1; 0; 0 ] ] in
  Alcotest.(check bool) "invariant temporal" true
    (Selfreuse.has_self_temporal ~localized:(innermost d) hb);
  Alcotest.(check bool) "invariant not spatial-beyond-temporal" false
    (Selfreuse.has_self_spatial ~localized:(innermost d) hb)

let test_group_temporal () =
  let nest = Ujam_kernels.Kernels.jacobi ~n:16 () in
  let d = Nest.depth nest in
  let b = List.find (fun (g : Ugs.t) -> String.equal g.Ugs.base "B") (Ugs.of_nest nest) in
  (* innermost I: B(I-1,J), B(I,J±0...) merge along I; B(I,J-1), B(I,J+1)
     stay separate *)
  let gts = Groups.group_temporal ~localized:(innermost d) b in
  Alcotest.(check int) "jacobi B: 3 GTSs innermost" 3 (Groups.count gts);
  (* with both loops localized everything merges *)
  let gts_full = Groups.group_temporal ~localized:(Subspace.full d) b in
  Alcotest.(check int) "full space: single GTS" 1 (Groups.count gts_full);
  (* classes are sorted and partition the members *)
  Alcotest.(check int) "partition covers members" 4
    (List.fold_left (fun acc c -> acc + List.length c) 0 gts.Groups.classes)

let test_group_spatial () =
  let jac = Ujam_kernels.Kernels.jacobi ~n:16 () in
  let d = Nest.depth jac in
  let b = List.find (fun (g : Ugs.t) -> String.equal g.Ugs.base "B") (Ugs.of_nest jac) in
  (* spatially, B(I±1,J) and B(I,J) share cache lines; B(I,J±1) still
     differ in the J (column) dimension *)
  let gss = Groups.group_spatial ~localized:(innermost d) b in
  Alcotest.(check int) "jacobi B: 3 GSSs innermost" 3 (Groups.count gss);
  (* A(1,I) vs A(2,I): different rows of one column -> same line walk *)
  let d2 = 2 in
  let i = var d2 1 in
  let nest2 =
    nest "rows"
      [ loop d2 "J" ~level:0 ~lo:1 ~hi:8 (); loop d2 "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "B" [ i ] <<- rd "A" [ cst d2 1; i ] +: rd "A" [ cst d2 2; i ] ]
  in
  let a = List.find (fun (g : Ugs.t) -> String.equal g.Ugs.base "A") (Ugs.of_nest nest2) in
  Alcotest.(check int) "temporally distinct" 2
    (Groups.count (Groups.group_temporal ~localized:(innermost d2) a));
  Alcotest.(check int) "spatially one group" 1
    (Groups.count (Groups.group_spatial ~localized:(innermost d2) a))

let test_eq1_costs () =
  let line = 4 in
  let check_nest name expected nest =
    let d = Nest.depth nest in
    Alcotest.(check (float 0.0001)) name expected
      (Locality.nest_accesses ~line ~localized:(innermost d) nest)
  in
  (* mmjki: C unit-stride 1/4, A unit-stride 1/4, B invariant 0 *)
  check_nest "mmjki" 0.5 (Ujam_kernels.Kernels.mmjki ~n:8 ());
  (* dmxpy0 (inner I): Y unit-stride (r+w merge) 1/4, X invariant, column
     M(I,J) unit-stride 1/4 *)
  check_nest "dmxpy0" 0.5 (Ujam_kernels.Kernels.dmxpy0 ~n:8 ());
  (* dmxpy1 (inner J): Y invariant 0, X unit-stride 1/4, M row walk
     no-reuse 1 *)
  check_nest "dmxpy1" 1.25 (Ujam_kernels.Kernels.dmxpy1 ~n:8 ());
  (* jacobi: A 1/4; B: 3 GTS, 3 GSS, unit-stride: (3 + 0/4) * 1/4 *)
  check_nest "jacobi" 1.0 (Ujam_kernels.Kernels.jacobi ~n:8 ())

let test_eq1_group_sharing () =
  (* A(1,I), A(2,I): adjacent rows of the walked column share lines
     (g_T=2, g_S=1) but the walk itself is strided (no self-spatial
     reuse): (1 + 1/4) * 1 *)
  let d = 2 in
  let i = var d 1 in
  let nest =
    nest "shared"
      [ loop d "J" ~level:0 ~lo:1 ~hi:8 (); loop d "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "B" [ i ] <<- rd "A" [ cst d 1; i ] +: rd "A" [ cst d 2; i ] ]
  in
  let a = List.find (fun (g : Ugs.t) -> String.equal g.Ugs.base "A") (Ugs.of_nest nest) in
  let c = Locality.ugs_cost ~line:4 ~localized:(innermost d) a in
  Alcotest.(check (float 0.0001)) "Eq.1 with line sharing" 1.25 c.Locality.accesses;
  Alcotest.(check int) "g_T" 2 c.Locality.g_t;
  Alcotest.(check int) "g_S" 1 c.Locality.g_s

let test_rank_loops () =
  (* mmjik (J,I,K): localizing I exposes B(K,J)'s spatial reuse...
     compare the two outer candidates on mmjki (J,K,I): K carries A
     reuse, J carries B/C reuse. *)
  let nest = Ujam_kernels.Kernels.mmjki ~n:8 () in
  let ranking = Locality.rank_outer_loops ~line:4 nest in
  Alcotest.(check int) "two candidates" 2 (List.length ranking);
  List.iter
    (fun (level, cost) ->
      Alcotest.(check bool) "outer levels only" true (level < 2);
      Alcotest.(check bool) "cost positive" true (cost >= 0.0))
    ranking;
  Alcotest.(check bool) "sorted ascending" true
    (match ranking with [ (_, a); (_, b) ] -> a <= b | _ -> false)

let prop_group_counts_consistent =
  QCheck2.Test.make ~name:"reuse: g_S <= g_T <= members" ~count:150
    (Gen.nest_gen ()) (fun nest ->
      let d = Nest.depth nest in
      let localized = innermost d in
      List.for_all
        (fun (g : Ugs.t) ->
          let gt = Groups.count (Groups.group_temporal ~localized g) in
          let gs = Groups.count (Groups.group_spatial ~localized g) in
          gs <= gt && gt <= List.length g.Ugs.members && gs >= 1)
        (Ugs.of_nest nest))

let prop_partition_is_partition =
  QCheck2.Test.make ~name:"reuse: GTS classes partition the UGS" ~count:150
    (Gen.nest_gen ()) (fun nest ->
      let d = Nest.depth nest in
      List.for_all
        (fun (g : Ugs.t) ->
          let part = Groups.group_temporal ~localized:(innermost d) g in
          let total = List.fold_left (fun a c -> a + List.length c) 0 part.Groups.classes in
          total = List.length g.Ugs.members
          && List.for_all (fun c -> c <> []) part.Groups.classes)
        (Ugs.of_nest nest))

let prop_spatial_coarsens_temporal =
  QCheck2.Test.make ~name:"reuse: every GTS lies inside one GSS" ~count:150
    (Gen.nest_gen ()) (fun nest ->
      let d = Nest.depth nest in
      let localized = innermost d in
      List.for_all
        (fun (g : Ugs.t) ->
          let gts = Groups.group_temporal ~localized g in
          List.for_all
            (fun cls ->
              match cls with
              | [] -> true
              | leader :: rest ->
                  let c1 = Aref.c_vector leader.Site.ref_ in
                  List.for_all
                    (fun (s : Site.t) ->
                      Groups.merges_spatial ~localized g ~c1
                        ~c2:(Aref.c_vector s.Site.ref_))
                    rest)
            gts.Groups.classes)
        (Ugs.of_nest nest))

(* --- static per-level miss-ratio prediction vs. the hierarchy simulator --- *)

let mismatch_strings (out : Ujam_oracle.Cachepred.outcome) =
  List.map
    (Format.asprintf "%a" Ujam_oracle.Mismatch.pp)
    out.Ujam_oracle.Cachepred.mismatches

(* every shipped kernel, on every preset (flat and hierarchical), must
   predict within the shipped tolerance at every warm level *)
let test_predictor_kernels () =
  let levels = ref 0 in
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build () in
      List.iter
        (fun (machine : Ujam_machine.Machine.t) ->
          let out = Ujam_oracle.Cachepred.check ~machine nest in
          levels := !levels + out.Ujam_oracle.Cachepred.levels_checked;
          Alcotest.(check (list string))
            (Printf.sprintf "%s on %s" e.Ujam_kernels.Catalogue.name
               machine.Ujam_machine.Machine.name)
            [] (mismatch_strings out))
        Ujam_machine.Presets.[ alpha; hppa; alpha_mem; hppa_mem ])
    Ujam_kernels.Catalogue.all;
  Alcotest.(check bool) "kernel levels actually compared" true (!levels >= 40)

(* a pinned seeded slice of the random-nest corpus: the calibration the
   fuzz layer's defaults were tuned against must not regress *)
let test_predictor_corpus () =
  let rs = Random.State.make [| 42 |] in
  let levels = ref 0 in
  for i = 1 to 60 do
    let routine = Ujam_workload.Generator.routine rs i in
    List.iter
      (fun nest ->
        List.iter
          (fun (machine : Ujam_machine.Machine.t) ->
            let out = Ujam_oracle.Cachepred.check ~machine nest in
            levels := !levels + out.Ujam_oracle.Cachepred.levels_checked;
            Alcotest.(check (list string))
              (Printf.sprintf "corpus %d (%s) on %s" i (Nest.name nest)
                 machine.Ujam_machine.Machine.name)
              [] (mismatch_strings out))
          Ujam_machine.Presets.[ alpha_mem; hppa_mem ])
      routine.Ujam_workload.Generator.nests
  done;
  Alcotest.(check bool) "corpus levels actually compared" true (!levels >= 100)

(* the oracle self-test: a fully associative level whose capacity the
   sweep fills exactly.  With correct geometry the sweep just fits
   (steady state is cold misses only) and the strict check is clean;
   stealing a single line tips every first-touch into an LRU capacity
   miss, which the underprediction direction must flag — and the
   reproducer must survive shrinking. *)
let test_predictor_catches_stolen_line () =
  let machine =
    Ujam_machine.Machine.make ~name:"fa-test"
      ~levels:
        [ Ujam_machine.Machine.Level.make ~name:"FA" ~size:4096 ~line:4
            ~assoc:1024 () ]
      ()
  in
  let d = 2 in
  let jv = var d 1 in
  let sweep =
    nest "sweep"
      [ loop d "R" ~level:0 ~lo:1 ~hi:16 ();
        loop d "J" ~level:1 ~lo:0 ~hi:4095 () ]
      [ "t" <<~ rd "A" [ jv ] ]
  in
  let ok = Ujam_oracle.Cachepred.check ~strict:true ~machine sweep in
  Alcotest.(check (list string)) "correct geometry: clean" []
    (mismatch_strings ok);
  Alcotest.(check bool) "level compared" true
    (ok.Ujam_oracle.Cachepred.levels_checked > 0);
  let still_fails n =
    (Ujam_oracle.Cachepred.check ~strict:true ~steal_lines:1 ~machine n)
      .Ujam_oracle.Cachepred.mismatches
    <> []
  in
  Alcotest.(check bool) "one stolen line flagged" true (still_fails sweep);
  let shrunk = Ujam_oracle.Shrink.run ~still_fails sweep in
  Alcotest.(check bool) "shrunk reproducer still fails" true
    (still_fails shrunk);
  Alcotest.(check bool) "shrunk no deeper" true
    (Nest.depth shrunk <= Nest.depth sweep)

let test_machine_geometry_validation () =
  let module M = Ujam_machine.Machine in
  (match
     M.make_checked ~name:"bad" ~cache_size:1000 ~cache_line:16
       ~associativity:1 ()
   with
  | Error e -> Alcotest.(check string) "flat fields named" "cache" e.M.level
  | Ok _ -> Alcotest.fail "non-multiple flat geometry accepted");
  let l ~name ~size = M.Level.make ~name ~size ~line:4 ~assoc:1 () in
  (match
     M.validate_levels [ l ~name:"L1" ~size:1024; l ~name:"L2" ~size:512 ]
   with
  | Error e -> Alcotest.(check string) "shrinking hierarchy named" "L2" e.M.level
  | Ok () -> Alcotest.fail "shrinking hierarchy accepted");
  match
    M.make_checked ~name:"ok"
      ~levels:[ l ~name:"L1" ~size:512; l ~name:"L2" ~size:1024 ]
      ()
  with
  | Ok m ->
      Alcotest.(check int) "two levels kept" 2
        (List.length (M.effective_levels m))
  | Error e -> Alcotest.fail (M.geometry_message e)

let suite =
  [ Alcotest.test_case "ugs partition" `Quick test_ugs_partition;
    Alcotest.test_case "duplicate constants" `Quick test_ugs_duplicate_constants;
    Alcotest.test_case "self reuse spaces" `Quick test_self_reuse_spaces;
    Alcotest.test_case "group temporal" `Quick test_group_temporal;
    Alcotest.test_case "group spatial" `Quick test_group_spatial;
    Alcotest.test_case "equation 1 costs" `Quick test_eq1_costs;
    Alcotest.test_case "equation 1 line sharing" `Quick test_eq1_group_sharing;
    Alcotest.test_case "loop ranking" `Quick test_rank_loops;
    Alcotest.test_case "predictor: kernels within tolerance" `Quick
      test_predictor_kernels;
    Alcotest.test_case "predictor: seeded corpus within tolerance" `Slow
      test_predictor_corpus;
    Alcotest.test_case "predictor: catches a stolen line" `Quick
      test_predictor_catches_stolen_line;
    Alcotest.test_case "machine geometry validation" `Quick
      test_machine_geometry_validation;
    Gen.to_alcotest prop_group_counts_consistent;
    Gen.to_alcotest prop_partition_is_partition;
    Gen.to_alcotest prop_spatial_coarsens_temporal ]
