(* The native ground-truth column: emitted programs, compiled and run
   by the host toolchain, must reproduce the reference interpreter's
   checksums exactly — on the pinned kernel suite and on a large batch
   of QCheck-generated nests — and the differential oracle must catch
   (and shrink) an injected emitter bug.

   Every test that needs a compiler self-skips when no toolchain is on
   PATH: the probe returns a typed error and the assertions reduce to
   the degradation contract. *)

open Ujam_linalg
open Ujam_ir
open Ujam_native

let machine = Ujam_machine.Presets.alpha

(* Self-skip guard: the whole suite must pass on a host without a
   native compiler (satellite 4), so compiler-backed tests become
   no-ops there.  The probe itself is still exercised below. *)
let with_tc f = match Toolchain.find () with Error _ -> () | Ok tc -> f tc

(* ---- discovery ------------------------------------------------------- *)

let test_probe_scrubbed () =
  match Toolchain.probe ~path:"/nonexistent-ujc-test" () with
  | Ok t ->
      Alcotest.failf "probe found %s on a scrubbed PATH" t.Toolchain.command
  | Error msg ->
      Alcotest.(check bool)
        "error message names the missing tools" true
        (String.length msg > 0)

let test_probe_is_pure () =
  (* two scrubbed probes agree, and a scrubbed probe does not poison
     the process-wide cache used by [find] *)
  let a = Toolchain.probe ~path:"" () in
  let b = Toolchain.probe ~path:"" () in
  Alcotest.(check bool) "probe deterministic" true (a = b);
  with_tc (fun tc ->
      Alcotest.(check bool)
        "find still succeeds after scrubbed probes" true
        (String.length tc.Toolchain.command > 0))

(* ---- the pinned suite: 19 kernels x 2 machines ----------------------- *)

let kernel_specs machine =
  List.map
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
      let r =
        Ujam_core.Driver.optimize ~bound:4 ~cache:true ~machine nest
      in
      let u =
        Unroll.clamp_divisible nest r.Ujam_core.Driver.choice.Ujam_core.Search.u
      in
      let variants =
        { Emit.vname = "orig"; nest }
        ::
        (if Vec.is_zero u then []
         else
           [ { Emit.vname = "unrolled"; nest = Unroll.unroll_and_jam nest u } ])
      in
      { Emit.uname = e.Ujam_kernels.Catalogue.name;
        seed = Ujam_sim.Interp.default_seed;
        repeats = 1;
        variants })
    Ujam_kernels.Catalogue.all

(* Every variant must match the interpreter run of its own nest; and
   because the engine's choice is legal and clamped to divisibility,
   the original and unrolled columns must also agree with each other. *)
let check_specs tc specs =
  match Native.run_units tc specs with
  | Error msg -> Alcotest.fail msg
  | Ok results ->
      List.iter2
        (fun (spec : Emit.unit_spec) (res : Native.unit_outcomes) ->
          List.iter
            (fun (e : Native.equivalence) ->
              if e.Native.diffs <> [] then
                Alcotest.failf "%s/%s diverges from the interpreter (err %g)"
                  spec.Emit.uname e.Native.vname e.Native.max_rel_err)
            (Native.equivalences spec res);
          match res.Native.outcomes with
          | [ orig; unrolled ] ->
              Alcotest.(check int)
                (spec.Emit.uname ^ ": same array set")
                (List.length orig.Native.checksums)
                (List.length unrolled.Native.checksums);
              List.iter2
                (fun (b0, c0) (b1, c1) ->
                  Alcotest.(check string)
                    (spec.Emit.uname ^ ": array order") b0 b1;
                  let err =
                    Float.abs (c0 -. c1) /. Float.max 1.0 (Float.abs c0)
                  in
                  if err > Native.default_tolerance then
                    Alcotest.failf "%s array %s: orig %h vs unrolled %h"
                      spec.Emit.uname b0 c0 c1)
                orig.Native.checksums unrolled.Native.checksums
          | _ -> ())
        specs results

let test_pinned_alpha () =
  with_tc (fun tc -> check_specs tc (kernel_specs Ujam_machine.Presets.alpha))

let test_pinned_hppa () =
  with_tc (fun tc -> check_specs tc (kernel_specs Ujam_machine.Presets.hppa))

(* ---- property: generated nests, original vs unrolls vs native -------- *)

(* >= 200 nests drawn from the QCheck nest generator under a fixed
   state, each emitted as original plus up to two legalized unrolls,
   batched ~50 nests per compiled program so the whole property costs a
   handful of compiler invocations rather than hundreds. *)
let property_count = 200

let generated_specs () =
  let rand = Random.State.make [| 0x5eed |] in
  let nests =
    QCheck2.Gen.generate ~rand ~n:property_count (Gen.nest_gen ())
  in
  List.mapi
    (fun idx nest ->
      let ctx = Ujam_core.Analysis_ctx.create ~bound:3 ~machine nest in
      let graph = Ujam_core.Analysis_ctx.graph ctx in
      let depth = Nest.depth nest in
      let candidates =
        List.concat_map
          (fun k -> [ Vec.init depth (fun i -> if i = k then 1 else 0);
                      Vec.init depth (fun i -> if i = k then 2 else 0) ])
          (List.init (max 0 (depth - 1)) Fun.id)
      in
      let legal =
        List.filter_map
          (fun u ->
            match
              Ujam_analysis.Passes.apply_seq ~graph nest
                [ Transform.Unroll u ]
            with
            | Ok (nest', _) ->
                Some (u, { Emit.vname = "u=" ^ Vec.to_string u; nest = nest' })
            | Error _ -> None)
          candidates
      in
      let legal =
        match legal with a :: b :: _ -> [ a; b ] | l -> l
      in
      let spec =
        { Emit.uname = Printf.sprintf "g%03d_%s" idx (Nest.name nest);
          seed = Ujam_sim.Interp.default_seed;
          repeats = 1;
          variants = { Emit.vname = "orig"; nest } :: List.map snd legal }
      in
      (nest, List.map fst legal, spec))
    nests

let rec chunks n = function
  | [] -> []
  | l ->
      let rec take k = function
        | x :: rest when k > 0 ->
            let a, b = take (k - 1) rest in
            (x :: a, b)
        | rest -> ([], rest)
      in
      let batch, rest = take n l in
      batch :: chunks n rest

let test_generated_property () =
  with_tc (fun tc ->
      let cases = generated_specs () in
      List.iter
        (fun batch ->
          let specs = List.map (fun (_, _, s) -> s) batch in
          match Native.run_units tc specs with
          | Error msg -> Alcotest.fail msg
          | Ok results ->
              List.iter2
                (fun (nest, us, (spec : Emit.unit_spec)) res ->
                  (* column 3 == column 1: native vs interpreter, per
                     variant, on the variant's own nest *)
                  List.iter
                    (fun (e : Native.equivalence) ->
                      if e.Native.diffs <> [] then
                        Alcotest.failf
                          "%s/%s: native diverges from interpreter (err %g)"
                          spec.Emit.uname e.Native.vname e.Native.max_rel_err)
                    (Native.equivalences spec res);
                  (* column 2 == column 1 where it must hold exactly:
                     a legal unroll whose factors divide the trips
                     preserves every array cell, hence the checksum *)
                  let find v =
                    List.find_opt
                      (fun (o : Native.outcome) ->
                        String.equal o.Native.vname v)
                      res.Native.outcomes
                  in
                  let orig = Option.get (find "orig") in
                  List.iter
                    (fun u ->
                      if Unroll.divides nest u then
                        match find ("u=" ^ Vec.to_string u) with
                        | None -> Alcotest.failf "%s: missing variant" spec.Emit.uname
                        | Some o ->
                            List.iter2
                              (fun (b0, c0) (b1, c1) ->
                                let err =
                                  Float.abs (c0 -. c1)
                                  /. Float.max 1.0 (Float.abs c0)
                                in
                                if b0 <> b1 || err > Native.default_tolerance
                                then
                                  Alcotest.failf
                                    "%s u=%s array %s: orig %h vs unrolled %h"
                                    spec.Emit.uname (Vec.to_string u) b0 c0 c1)
                              orig.Native.checksums o.Native.checksums)
                    us)
                batch results)
        (chunks 50 cases))

(* ---- fault injection: the oracle catches a broken emitter ------------ *)

(* [native_drop_copy] makes the emitter silently drop the last statement
   of every multi-statement body — the classic lost-jammed-copy bug.
   Unrolled variants all have jammed copies, so the native layer must
   flag unexplained mismatches, and the shrinker must hand back a
   reduced reproducer. *)
let test_injected_emitter_bug () =
  with_tc (fun _tc ->
      let open Ujam_oracle in
      let cfg =
        { (Fuzz.default_config ~machine ()) with
          Fuzz.n = 6;
          seed = 43;
          layers = [ Fuzz.Native ];
          shrink = true }
      in
      let r = Fuzz.run ~native_drop_copy:true cfg in
      Alcotest.(check bool) "injected bug detected" false (Fuzz.ok r);
      Alcotest.(check bool) "unexplained mismatches" true (r.Fuzz.unexplained > 0);
      Alcotest.(check bool)
        "at least one failure shrunk to a reproducer" true
        (List.exists
           (fun (f : Fuzz.failure) -> f.Fuzz.reduced <> None)
           r.Fuzz.failures);
      (* and the uninjected run over the same nests is clean *)
      let clean = Fuzz.run cfg in
      Alcotest.(check bool) "clean without injection" true (Fuzz.ok clean))

(* ---- degradation without a toolchain --------------------------------- *)

let test_skip_without_toolchain () =
  let open Ujam_oracle in
  (* force the no-toolchain path regardless of the host by probing a
     scrubbed PATH; the fuzz layer consults the cached [find], so this
     only checks the probe contract plus the report plumbing types *)
  (match Toolchain.probe ~path:"/nonexistent-ujc-test" () with
  | Ok _ -> Alcotest.fail "scrubbed probe should fail"
  | Error _ -> ());
  let cfg =
    { (Fuzz.default_config ~machine ()) with
      Fuzz.n = 3;
      seed = 7;
      layers = [ Fuzz.Native ];
      shrink = false }
  in
  let r = Fuzz.run cfg in
  (* whichever way discovery went, a native-only run never crashes and
     accounts for every nest as either checked or skipped *)
  Alcotest.(check bool) "no unexplained failures" true (Fuzz.ok r);
  Alcotest.(check int) "every nest accounted for" 3
    (if r.Fuzz.native_skipped > 0 then r.Fuzz.native_skipped
     else if r.Fuzz.native_checked > 0 then 3
     else 0)

let suite =
  [ Alcotest.test_case "probe: scrubbed path is a typed error" `Quick
      test_probe_scrubbed;
    Alcotest.test_case "probe: pure and cache-safe" `Quick test_probe_is_pure;
    Alcotest.test_case "pinned: 19 kernels on alpha" `Slow test_pinned_alpha;
    Alcotest.test_case "pinned: 19 kernels on hppa" `Slow test_pinned_hppa;
    Alcotest.test_case "property: 200 generated nests, three columns agree"
      `Slow test_generated_property;
    Alcotest.test_case "oracle catches injected emitter bug" `Slow
      test_injected_emitter_bug;
    Alcotest.test_case "degrades to skip without a toolchain" `Quick
      test_skip_without_toolchain ]
