let () =
  Alcotest.run "ujam"
    [ ("linalg/rat", Test_rat.suite);
      ("linalg/vec", Test_vec.suite);
      ("linalg/mat", Test_mat.suite);
      ("linalg/subspace", Test_subspace.suite);
      ("ir/core", Test_ir.suite);
      ("ir/unroll", Test_unroll.suite);
      ("ir/parse", Test_parse.suite);
      ("ir/canon", Test_canon.suite);
      ("ir/hashcons", Test_hashcons.suite);
      ("ir/interchange", Test_interchange.suite);
      ("ir/tile", Test_tile.suite);
      ("ir/transform", Test_transform.suite);
      ("depend", Test_depend.suite);
      ("depend/safety", Test_safety.suite);
      ("reuse", Test_reuse.suite);
      ("core/unroll-space", Test_unroll_space.suite);
      ("core/tables", Test_tables.suite);
      ("core/balance-search", Test_balance.suite);
      ("core/scalar-replace", Test_scalar_replace.suite);
      ("core/driver-models", Test_driver.suite);
      ("sim", Test_sim.suite);
      ("pipeline", Test_pipeline.suite);
      ("sim/codegen", Test_codegen.suite);
      ("kernels", Test_kernels.suite);
      ("workload", Test_workload.suite);
      ("engine", Test_engine.suite);
      ("analysis", Test_analysis.suite);
      ("obs", Test_obs.suite);
      ("oracle", Test_oracle.suite);
      ("native", Test_native.suite);
      ("serve", Test_serve.suite);
      ("invariants", Test_invariants.suite) ]
