(* The serve daemon, driven end to end over real Unix sockets: protocol
   edge cases (oversized, truncated, unknown), per-connection response
   order under concurrent clients, LRU eviction under a tiny cache,
   cache-hit byte identity, and 1-vs-N-domain byte identity. *)

open Ujam_serve
module Json = Ujam_engine.Json

let fresh_socket () =
  let path = Filename.temp_file "ujam_serve_test" ".sock" in
  Sys.remove path;
  path

(* Run [f path] against a live daemon, then shut it down over the wire
   and hand back both [f]'s result and the daemon's final summary. *)
let with_server ?(tune = fun c -> c) f =
  let path = fresh_socket () in
  let cfg = tune { (Serve.default_config ()) with Serve.quiet = true } in
  let server = Domain.spawn (fun () -> Serve.run ~listen:path cfg) in
  let finally () =
    (try
       let c = Serve.Client.connect ~retries:10 path in
       (try
          ignore
            (Serve.Client.request c
               (Json.Obj
                  [ ("id", Json.Str "bye"); ("method", Json.Str "shutdown") ]))
        with _ -> ());
       Serve.Client.close c
     with _ -> ());
    Domain.join server
  in
  match f path with
  | result -> (result, finally ())
  | exception exn ->
      let (_ : Serve.summary) = finally () in
      raise exn

let req ?(params = []) ~id meth =
  Json.Obj
    ([ ("id", id); ("method", Json.Str meth) ]
    @ if params = [] then [] else [ ("params", Json.Obj params) ])

let optimize_req ~id kernel =
  req ~id
    ~params:[ ("kernel", Json.Str kernel); ("n", Json.Int 16) ]
    "optimize"

let member_exn name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_string json)

let check_ok ~expect json =
  Alcotest.(check bool)
    (Printf.sprintf "ok=%b in %s" expect (Json.to_string json))
    expect
    (member_exn "ok" json = Json.Bool true)

let error_kind json =
  match Json.member "kind" (member_exn "error" json) with
  | Some (Json.Str k) -> k
  | _ -> Alcotest.failf "no error kind in %s" (Json.to_string json)

(* A line over the byte bound gets one typed [oversized] error and the
   connection keeps serving. *)
let test_oversized () =
  let (), _ =
    with_server
      ~tune:(fun c -> { c with Serve.max_request_bytes = 256 })
      (fun path ->
        let c = Serve.Client.connect path in
        Serve.Client.send_line c ("{\"pad\":\"" ^ String.make 1000 'x' ^ "\"}");
        (match Serve.Client.recv_line c with
        | None -> Alcotest.fail "daemon dropped the connection"
        | Some line ->
            let resp = Result.get_ok (Json.of_string line) in
            check_ok ~expect:false resp;
            Alcotest.(check string) "kind" "oversized" (error_kind resp);
            Alcotest.(check bool)
              "id is null" true
              (member_exn "id" resp = Json.Null));
        let pong = Serve.Client.request c (req ~id:(Json.Int 2) "ping") in
        check_ok ~expect:true pong;
        Serve.Client.close c)
  in
  ()

(* Truncated JSON and an unknown method each cost one [protocol] error
   response, never the connection. *)
let test_malformed () =
  let (), _ =
    with_server (fun path ->
        let c = Serve.Client.connect path in
        Serve.Client.send_line c "{\"id\":1,\"method\":\"ping\"";
        (match Serve.Client.recv_line c with
        | None -> Alcotest.fail "daemon dropped the connection"
        | Some line ->
            let resp = Result.get_ok (Json.of_string line) in
            check_ok ~expect:false resp;
            Alcotest.(check string) "kind" "protocol" (error_kind resp));
        let bad = Serve.Client.request c (req ~id:(Json.Int 2) "frobnicate") in
        check_ok ~expect:false bad;
        Alcotest.(check string) "kind" "protocol" (error_kind bad);
        let pong = Serve.Client.request c (req ~id:(Json.Int 3) "ping") in
        check_ok ~expect:true pong;
        Serve.Client.close c)
  in
  ()

(* Two clients pipelining on one socket: responses come back in request
   order per connection, ids echoed verbatim. *)
let test_concurrent_clients () =
  let kernels = [ "mmjik"; "mmjki"; "jacobi"; "sor"; "afold" ] in
  let (), _ =
    with_server (fun path ->
        let a = Serve.Client.connect path in
        let b = Serve.Client.connect path in
        let n = 10 in
        for i = 0 to n - 1 do
          let k = List.nth kernels (i mod List.length kernels) in
          Serve.Client.send_line a
            (Json.to_string (optimize_req ~id:(Json.Int i) k));
          Serve.Client.send_line b
            (Json.to_string (optimize_req ~id:(Json.Int (100 + i)) k))
        done;
        let drain client base =
          for i = 0 to n - 1 do
            match Serve.Client.recv_line client with
            | None -> Alcotest.fail "connection closed mid-stream"
            | Some line ->
                let resp = Result.get_ok (Json.of_string line) in
                check_ok ~expect:true resp;
                Alcotest.(check bool)
                  (Printf.sprintf "id %d in order" (base + i))
                  true
                  (member_exn "id" resp = Json.Int (base + i))
          done
        in
        drain a 0;
        drain b 100;
        Serve.Client.close a;
        Serve.Client.close b)
  in
  ()

(* A 2-entry cache over 4 distinct nests must evict; the daemon's final
   summary carries the eviction count. *)
let test_eviction () =
  let (), summary =
    with_server
      ~tune:(fun c -> { c with Serve.cache_size = 2 })
      (fun path ->
        let c = Serve.Client.connect path in
        List.iter
          (fun k ->
            check_ok ~expect:true
              (Serve.Client.request c (optimize_req ~id:(Json.Str k) k)))
          [ "mmjik"; "mmjki"; "jacobi"; "sor" ];
        Serve.Client.close c)
  in
  Alcotest.(check bool)
    (Printf.sprintf "evictions > 0 (got %d)" summary.Serve.evictions)
    true (summary.Serve.evictions > 0);
  Alcotest.(check int) "misses" 4 summary.Serve.misses

(* The same request twice: second answer comes from the cache (hit
   counter moves) and is byte-identical to the first. *)
let test_repeat_hit () =
  let (first, second), summary =
    with_server (fun path ->
        let c = Serve.Client.connect path in
        let ask () =
          Serve.Client.send_line c
            (Json.to_string (optimize_req ~id:(Json.Int 7) "mmjik"));
          match Serve.Client.recv_line c with
          | Some line -> line
          | None -> Alcotest.fail "connection closed"
        in
        let first = ask () in
        let second = ask () in
        Serve.Client.close c;
        (first, second))
  in
  Alcotest.(check string) "hit is byte-identical to miss" first second;
  Alcotest.(check bool)
    (Printf.sprintf "hits > 0 (got %d)" summary.Serve.hits)
    true (summary.Serve.hits > 0)

(* One pipelined batch of distinct nests, served by 1 domain and by 4:
   the response streams must be byte-identical. *)
let test_domain_identity () =
  let kernels = [ "mmjik"; "mmjki"; "jacobi"; "sor"; "afold"; "shal" ] in
  let drive domains =
    let lines, _ =
      with_server
        ~tune:(fun c -> { c with Serve.domains })
        (fun path ->
          let c = Serve.Client.connect path in
          List.iteri
            (fun i k ->
              Serve.Client.send_line c
                (Json.to_string (optimize_req ~id:(Json.Int i) k)))
            kernels;
          let lines =
            List.map
              (fun _ ->
                match Serve.Client.recv_line c with
                | Some line -> line
                | None -> Alcotest.fail "connection closed")
              kernels
          in
          Serve.Client.close c;
          lines)
    in
    lines
  in
  let one = drive 1 and four = drive 4 in
  Alcotest.(check (list string)) "1 domain = 4 domains" one four

(* A client that fires requests and vanishes without reading must not
   take the daemon down; the next client is served normally. *)
let test_midstream_disconnect () =
  let (), summary =
    with_server (fun path ->
        let rude = Serve.Client.connect path in
        for i = 0 to 4 do
          Serve.Client.send_line rude
            (Json.to_string (optimize_req ~id:(Json.Int i) "mmjik"))
        done;
        Serve.Client.close rude;
        let polite = Serve.Client.connect path in
        check_ok ~expect:true
          (Serve.Client.request polite (req ~id:(Json.Int 99) "ping"));
        check_ok ~expect:true
          (Serve.Client.request polite (optimize_req ~id:(Json.Int 100) "sor"));
        Serve.Client.close polite)
  in
  Alcotest.(check bool)
    (Printf.sprintf "served after disconnect (%d ok)" summary.Serve.ok)
    true
    (summary.Serve.ok >= 2)

let suite =
  [ Alcotest.test_case "oversized line" `Quick test_oversized;
    Alcotest.test_case "mid-stream disconnect" `Quick test_midstream_disconnect;
    Alcotest.test_case "malformed requests" `Quick test_malformed;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "lru eviction" `Quick test_eviction;
    Alcotest.test_case "repeat is a hit" `Quick test_repeat_hit;
    Alcotest.test_case "1 vs N domains" `Quick test_domain_identity ]
