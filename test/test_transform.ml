(* The transformation algebra: structural correctness of skew/retime,
   the composition laws of Transform sequences, normal-form properties,
   and the gated pipeline (Passes) on kernels and random nests. *)

open Ujam_ir
open Ujam_linalg
open Ujam_depend
open Ujam_analysis

(* ---- helpers ---------------------------------------------------------- *)

(* The multiset of (array, kind, element) accesses performed by a full
   execution — the ground truth a pure iteration-space relabelling like
   skewing must preserve exactly. *)
let accesses nest =
  let out = ref [] in
  Nest.iter_index_vectors nest (fun iv ->
      List.iter
        (fun ((r : Aref.t), kind) ->
          let cell =
            ( Aref.base r,
              kind = `Write,
              Array.to_list (Array.map (fun s -> Affine.eval s iv) r.Aref.subs) )
          in
          out := cell :: !out)
        (Nest.refs nest));
  List.sort compare !out

let no_errors what = function
  | [] -> ()
  | ds ->
      Alcotest.failf "%s: unexpected diagnostics:@ %s" what
        (String.concat "; "
           (List.map (fun d -> d.Diagnostic.message) ds))

(* A(I,J) = A(I-1,J+1) * S — the canonical anti-diagonal recurrence:
   distance (1,-1) caps unrolling of the outer loop at 0 copies until a
   factor-1 skew turns the distance into (1,0). *)
let antidiag ?(n = 8) () =
  let depth = 2 in
  let loops =
    [ Loop.make_const ~var:"I" ~level:0 ~depth ~lo:1 ~hi:n ();
      Loop.make_const ~var:"J" ~level:1 ~depth ~lo:1 ~hi:n () ]
  in
  let v k = Affine.var ~depth k in
  let lhs = Aref.make "A" [ v 0; v 1 ] in
  let read =
    Aref.make "A" [ Affine.add_const (v 0) (-1); Affine.add_const (v 1) 1 ]
  in
  Nest.make ~name:"antidiag" ~loops
    ~body:[ Stmt.store lhs (Expr.Bin (Expr.Mul, Expr.Read read, Expr.Scalar "S")) ]

(* S0: A(I,J) = B(I-1,J+1); S1: B(I,J) = C(I,J) — a cross-statement
   (1,-1) flow edge that retiming statement 0 by (0,1) straightens. *)
let cross_pair ?(n = 8) () =
  let depth = 2 in
  let loops =
    [ Loop.make_const ~var:"I" ~level:0 ~depth ~lo:1 ~hi:n ();
      Loop.make_const ~var:"J" ~level:1 ~depth ~lo:1 ~hi:n () ]
  in
  let v k = Affine.var ~depth k in
  let a = Aref.make "A" [ v 0; v 1 ] in
  let b_read =
    Aref.make "B" [ Affine.add_const (v 0) (-1); Affine.add_const (v 1) 1 ]
  in
  let b_write = Aref.make "B" [ v 0; v 1 ] in
  let c = Aref.make "C" [ v 0; v 1 ] in
  Nest.make ~name:"crosspair" ~loops
    ~body:
      [ Stmt.store a (Expr.Read b_read); Stmt.store b_write (Expr.Read c) ]

let caps nest = Safety.max_safe_unroll (Graph.build ~include_input:false nest)

(* ---- skew ------------------------------------------------------------- *)

let test_skew_inverse () =
  let s = [| [| 1; 0; 0 |]; [| 2; 1; 0 |]; [| -1; 2; 1 |] |] in
  let inv = Skew.inverse s in
  let prod = Array.init 3 (fun i ->
      Array.init 3 (fun j ->
          let acc = ref 0 in
          for k = 0 to 2 do acc := !acc + (s.(i).(k) * inv.(k).(j)) done;
          !acc))
  in
  Alcotest.(check bool) "S * S^-1 = I" true
    (prod = [| [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] |])

let test_skew_relabels () =
  let nest = antidiag () in
  let s = Skew.elementary ~depth:2 ~target:1 ~source:0 ~factor:1 in
  let skewed = Skew.apply nest s in
  Alcotest.(check bool) "same access multiset" true
    (accesses nest = accesses skewed);
  Alcotest.(check bool) "stays in the supported class" true
    (Result.is_ok (Supported.check skewed));
  no_errors "Verify.skew" (Verify.skew ~original:nest ~s skewed)

let test_skew_lifts_cap () =
  let nest = antidiag () in
  Alcotest.(check int) "outer cap before skew" 0 (caps nest).(0);
  let s = Skew.elementary ~depth:2 ~target:1 ~source:0 ~factor:1 in
  let skewed = Skew.apply nest s in
  Alcotest.(check bool) "outer cap lifted by skew" true
    ((caps skewed).(0) > 0)

let test_skew_verify_catches () =
  let nest = antidiag () in
  let s = Skew.elementary ~depth:2 ~target:1 ~source:0 ~factor:1 in
  let skewed = Skew.apply nest s in
  (* Claiming a different skew must fail the post-condition. *)
  let s2 = Skew.elementary ~depth:2 ~target:1 ~source:0 ~factor:2 in
  match Verify.skew ~original:nest ~s:s2 skewed with
  | [] -> Alcotest.fail "wrong skew matrix accepted"
  | d :: _ -> Alcotest.(check string) "rule" "UJ023" d.Diagnostic.rule

(* ---- retime ----------------------------------------------------------- *)

let test_retime_straightens () =
  let nest = cross_pair () in
  Alcotest.(check int) "outer cap before retime" 0 (caps nest).(0);
  let shifts = [| [| 0; 1 |]; [| 0; 0 |] |] in
  let retimed = Retime.apply nest shifts in
  no_errors "Verify.retime" (Verify.retime ~original:nest ~shifts retimed);
  Alcotest.(check bool) "outer cap lifted by retime" true
    ((caps retimed).(0) > 0);
  (* The gate agrees the shifts are legal... *)
  let graph = Graph.build ~include_input:false nest in
  (match Passes.legality ~graph (Transform.Retime shifts) with
  | Ok _ -> ()
  | Error why -> Alcotest.failf "legal retime rejected: %s" why);
  (* ...and rejects shifts that push the leading component negative. *)
  let bad = [| [| 0; 0 |]; [| 2; 0 |] |] in
  match Passes.legality ~graph (Transform.Retime bad) with
  | Ok why -> Alcotest.failf "illegal retime accepted: %s" why
  | Error _ -> ()

let test_retime_verify_catches () =
  let nest = cross_pair () in
  let shifts = [| [| 0; 1 |]; [| 0; 0 |] |] in
  let retimed = Retime.apply nest shifts in
  let wrong = [| [| 0; 2 |]; [| 0; 0 |] |] in
  match Verify.retime ~original:nest ~shifts:wrong retimed with
  | [] -> Alcotest.fail "wrong shifts accepted"
  | d :: _ -> Alcotest.(check string) "rule" "UJ024" d.Diagnostic.rule

(* ---- the algebra ------------------------------------------------------ *)

let transform_gen ~depth =
  let open QCheck2.Gen in
  let unroll =
    let* amounts =
      flatten_l
        (List.init depth (fun k ->
             if k = depth - 1 then return 0 else int_range 0 2))
    in
    return (Transform.Unroll (Vec.of_list amounts))
  in
  let interchange =
    let* perm = shuffle_a (Array.init depth Fun.id) in
    return (Transform.Interchange perm)
  in
  let skew =
    if depth < 2 then unroll
    else
      let* target = int_range 1 (depth - 1) in
      let* source = int_range 0 (target - 1) in
      let* factor = int_range 0 2 in
      return (Transform.Skew (Skew.elementary ~depth ~target ~source ~factor))
  in
  oneof [ unroll; interchange; skew ]

let seq_gen =
  let open QCheck2.Gen in
  let* nest = Gen.nest_gen () in
  let depth = Nest.depth nest in
  let* steps = list_size (int_range 0 3) (transform_gen ~depth) in
  return (nest, steps)

let seq_print (nest, steps) =
  Printf.sprintf "%s\nseq: %s" (Nest.to_string nest)
    (String.concat "; " (List.map Transform.to_string steps))

let prop_apply_seq_is_composition =
  QCheck2.Test.make ~name:"apply_seq [a;..] == fold apply" ~count:300
    ~print:seq_print seq_gen (fun (nest, steps) ->
      let via_seq = Transform.apply_seq steps nest in
      let via_fold =
        List.fold_left
          (fun acc t -> Result.bind acc (fun n ->
               Result.map_error (fun r -> (0, t, r)) (Transform.apply t n)))
          (Ok nest) steps
      in
      match (via_seq, via_fold) with
      | Ok a, Ok b -> a = b
      | Error _, Error _ -> true
      | _ -> false)

(* Fusing adjacent unrolls reorders the jammed copies (combined offsets
   enumerate in one lexicographic pass), so normalization preserves the
   nest up to statement order in the body — headers exactly. *)
let canon nest =
  (Nest.name nest, Nest.loops nest, List.sort compare (Nest.body nest))

let prop_normalize_preserves =
  QCheck2.Test.make ~name:"normalize preserves apply_seq" ~count:300
    ~print:seq_print seq_gen (fun (nest, steps) ->
      match Transform.apply_seq steps nest with
      | Error _ -> QCheck2.assume_fail ()
      | Ok direct -> (
          match Transform.apply_seq (Transform.normalize steps) nest with
          | Error _ -> false
          | Ok normed -> canon direct = canon normed))

let prop_normalize_idempotent =
  QCheck2.Test.make ~name:"normalize idempotent" ~count:500 ~print:seq_print
    seq_gen (fun (_, steps) ->
      let once = Transform.normalize steps in
      List.equal Transform.equal once (Transform.normalize once))

let test_fusion_laws () =
  let u = Vec.of_list [ 1; 0 ] and v = Vec.of_list [ 3; 0 ] in
  (match Transform.fuse (Transform.Unroll u) (Transform.Unroll v) with
  | Some (Transform.Unroll w) ->
      Alcotest.(check bool) "unroll fusion (u+1)(v+1)-1" true
        (Vec.equal w (Vec.of_list [ 7; 0 ]))
  | _ -> Alcotest.fail "unroll pair must fuse");
  (match
     Transform.fuse
       (Transform.Interchange [| 1; 0; 2 |])
       (Transform.Interchange [| 2; 1; 0 |])
   with
  | Some (Transform.Interchange p) ->
      Alcotest.(check bool) "interchange composition" true (p = [| 2; 0; 1 |])
  | _ -> Alcotest.fail "interchange pair must fuse");
  Alcotest.(check bool) "mixed pair does not fuse" true
    (Transform.fuse (Transform.Unroll u) (Transform.Interchange [| 0; 1 |])
    = None);
  Alcotest.(check bool) "identity elimination" true
    (Transform.normalize
       [ Transform.Unroll (Vec.zero 2); Transform.Interchange [| 0; 1 |] ]
    = [])

(* ---- the gated pipeline ----------------------------------------------- *)

let test_passes_gates_unsafe_unroll () =
  let nest = antidiag () in
  let u = Vec.of_list [ 1; 0 ] in
  (match Passes.apply_seq nest [ Transform.Unroll u ] with
  | Ok _ -> Alcotest.fail "unsafe unroll passed the gate"
  | Error (d :: _) -> Alcotest.(check string) "rule" "UJ025" d.Diagnostic.rule
  | Error [] -> Alcotest.fail "empty rejection");
  (* The same unroll is accepted after the legalizing skew prefix. *)
  let s = Skew.elementary ~depth:2 ~target:1 ~source:0 ~factor:1 in
  match Passes.apply_seq nest [ Transform.Skew s; Transform.Unroll u ] with
  | Error ds -> no_errors "skew-then-unroll" ds
  | Ok (_, trace) ->
      Alcotest.(check int) "two gated steps" 2 (List.length trace);
      List.iter
        (fun (st : Passes.step) ->
          Alcotest.(check bool) "step has a why-legal note" true
            (String.length st.Passes.note > 0))
        trace

let test_passes_located_rejection () =
  let nest = antidiag () in
  match Passes.apply_seq nest [ Transform.Unroll (Vec.of_list [ 1; 0 ]) ] with
  | Ok _ -> Alcotest.fail "unsafe unroll passed the gate"
  | Error (d :: _) ->
      Alcotest.(check bool) "diagnostic carries the nest location" true
        (d.Diagnostic.loc.Loc.nest = Some "antidiag")
  | Error [] -> Alcotest.fail "empty rejection"

(* Every kernel x machine: the driver's chosen unroll vector flows
   through the gated pipeline — legality, structure and Verify all
   agree with the one-shot path. *)
let test_kernels_through_gates () =
  List.iter
    (fun machine ->
      List.iter
        (fun (e : Ujam_kernels.Catalogue.entry) ->
          let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
          let r = Ujam_core.Driver.optimize ~bound:4 ~machine nest in
          match
            Passes.apply_seq nest
              [ Transform.Unroll r.Ujam_core.Driver.choice.Ujam_core.Search.u ]
          with
          | Ok (transformed, _) ->
              Alcotest.(check bool)
                (e.Ujam_kernels.Catalogue.name ^ ": gated == one-shot")
                true
                (transformed
                = Unroll.unroll_and_jam nest
                    r.Ujam_core.Driver.choice.Ujam_core.Search.u)
          | Error ds ->
              Alcotest.failf "%s: driver choice rejected: %s"
                e.Ujam_kernels.Catalogue.name
                (String.concat "; "
                   (List.map (fun d -> d.Diagnostic.message) ds)))
        Ujam_kernels.Catalogue.all)
    [ Ujam_machine.Presets.alpha; Ujam_machine.Presets.hppa ]

(* ---- the sequence search ---------------------------------------------- *)

let test_seqsearch_legalizes_antidiag () =
  let nest = antidiag ~n:16 () in
  let machine = Ujam_machine.Presets.alpha in
  let out = Seqsearch.search ~bound:4 ~machine nest in
  Alcotest.(check bool) "baseline is fenced to the zero vector" true
    (Vec.is_zero out.Seqsearch.baseline.Ujam_core.Search.u);
  Alcotest.(check bool) "a legalizing prefix was found" true
    (out.Seqsearch.sequence <> []);
  Alcotest.(check bool) "certified unroll vector is non-zero" true
    (not (Vec.is_zero out.Seqsearch.choice.Ujam_core.Search.u));
  Alcotest.(check bool) "objective strictly improves" true
    (out.Seqsearch.choice.Ujam_core.Search.objective
    < out.Seqsearch.baseline.Ujam_core.Search.objective);
  match out.Seqsearch.diagnostics with
  | [ d ] ->
      Alcotest.(check string) "UJ026 info" "UJ026" d.Diagnostic.rule;
      Alcotest.(check bool) "info severity" true
        (d.Diagnostic.severity = Diagnostic.Info);
      Alcotest.(check bool) "carries why-legal notes" true
        (d.Diagnostic.notes <> [])
  | ds -> Alcotest.failf "expected one UJ026, got %d diagnostics" (List.length ds)

let test_seqsearch_quiet_on_kernels () =
  (* Kernels whose fence does not bind must come back untouched. *)
  let machine = Ujam_machine.Presets.alpha in
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
      let out = Seqsearch.search ~bound:4 ~machine nest in
      if out.Seqsearch.sequence = [] then begin
        Alcotest.(check bool)
          (e.Ujam_kernels.Catalogue.name ^ ": nest untouched")
          true
          (out.Seqsearch.nest == nest);
        Alcotest.(check bool)
          (e.Ujam_kernels.Catalogue.name ^ ": choice is the baseline")
          true
          (out.Seqsearch.choice = out.Seqsearch.baseline)
      end
      else
        (* A kernel may genuinely be legalizable; then the sequence must
           be Verify-certified and strictly better. *)
        Alcotest.(check bool)
          (e.Ujam_kernels.Catalogue.name ^ ": improvement is strict")
          true
          (out.Seqsearch.choice.Ujam_core.Search.objective
          < out.Seqsearch.baseline.Ujam_core.Search.objective))
    Ujam_kernels.Catalogue.all

(* ISSUE 6 acceptance: fuzz-generated recurrent nests the plain engine
   degrades to the zero vector are legalized by a skew or retime prefix
   and receive a Verify-certified unroll vector with a strictly better
   objective.  Pure-skew prefixes must also preserve the per-array
   access multiset (they are iteration-space relabellings). *)
let test_recurrent_generator_legalized () =
  let machine = Ujam_machine.Presets.alpha in
  let stats = Ujam_workload.Generator.stats () in
  let st = Random.State.make [| 42 |] in
  let found = ref 0 in
  for idx = 0 to 39 do
    let r = Ujam_workload.Generator.routine ~recurrent:true ~stats st idx in
    List.iter
      (fun nest ->
        if !found < 3 then begin
          let out = Seqsearch.search ~bound:4 ~machine nest in
          if
            Vec.is_zero out.Seqsearch.baseline.Ujam_core.Search.u
            && out.Seqsearch.sequence <> []
          then begin
            incr found;
            Alcotest.(check bool) "non-zero certified vector" true
              (not (Vec.is_zero out.Seqsearch.choice.Ujam_core.Search.u));
            Alcotest.(check bool) "objective strictly better" true
              (out.Seqsearch.choice.Ujam_core.Search.objective
              < out.Seqsearch.baseline.Ujam_core.Search.objective);
            if
              List.for_all
                (fun (s : Passes.step) ->
                  match s.Passes.transform with
                  | Transform.Skew _ -> true
                  | _ -> false)
                out.Seqsearch.sequence
            then
              Alcotest.(check bool) "skew prefix preserves accesses" true
                (accesses nest = accesses out.Seqsearch.nest)
          end
        end)
      r.Ujam_workload.Generator.nests
  done;
  Alcotest.(check bool) "generator produced fence-binding nests" true
    (stats.Ujam_workload.Generator.fenced > 0);
  Alcotest.(check bool) "at least one recurrent nest was legalized" true
    (!found >= 1)

(* The engine layer: ~seq:true reopens skewrec's fenced space and the
   report carries the sequence plus its UJ026 certificate; without it
   the plain pipeline still degrades to the zero vector. *)
let test_engine_seq_report () =
  let machine = Ujam_machine.Presets.alpha in
  let nest = Ujam_kernels.Extras.skewrec ~n:16 () in
  (match Ujam_engine.Engine.analyze ~bound:8 ~machine nest with
  | Ok r ->
      Alcotest.(check bool) "plain engine degrades to zero" true
        (Vec.is_zero r.Ujam_engine.Engine.u);
      Alcotest.(check bool) "no sequence without seq mode" true
        (r.Ujam_engine.Engine.sequence = [])
  | Error _ -> Alcotest.fail "plain analyze failed");
  match Ujam_engine.Engine.analyze ~bound:8 ~seq:true ~machine nest with
  | Ok r ->
      Alcotest.(check bool) "seq engine finds a non-zero vector" true
        (not (Vec.is_zero r.Ujam_engine.Engine.u));
      Alcotest.(check bool) "report carries the sequence" true
        (r.Ujam_engine.Engine.sequence <> []);
      Alcotest.(check bool) "UJ026 certificate attached" true
        (List.exists
           (fun (d : Diagnostic.t) -> d.Diagnostic.rule = "UJ026")
           r.Ujam_engine.Engine.diagnostics)
  | Error _ -> Alcotest.fail "seq analyze failed"

let suite =
  [ Alcotest.test_case "skew inverse" `Quick test_skew_inverse;
    Alcotest.test_case "skew is a pure relabelling" `Quick test_skew_relabels;
    Alcotest.test_case "skew lifts the safety cap" `Quick test_skew_lifts_cap;
    Alcotest.test_case "skew post-condition catches wrong matrix" `Quick
      test_skew_verify_catches;
    Alcotest.test_case "retime straightens a cross-statement edge" `Quick
      test_retime_straightens;
    Alcotest.test_case "retime post-condition catches wrong shifts" `Quick
      test_retime_verify_catches;
    Alcotest.test_case "fusion laws and identity elimination" `Quick
      test_fusion_laws;
    Alcotest.test_case "gate rejects unsafe unroll, accepts after skew" `Quick
      test_passes_gates_unsafe_unroll;
    Alcotest.test_case "rejections carry locations" `Quick
      test_passes_located_rejection;
    Alcotest.test_case "19 kernels x 2 machines through the gates" `Quick
      test_kernels_through_gates;
    Alcotest.test_case "seq search legalizes the anti-diagonal recurrence"
      `Quick test_seqsearch_legalizes_antidiag;
    Alcotest.test_case "seq search leaves unfenced kernels alone" `Quick
      test_seqsearch_quiet_on_kernels;
    Alcotest.test_case "recurrent generator nests get legalized" `Quick
      test_recurrent_generator_legalized;
    Alcotest.test_case "engine seq report on skewrec" `Quick
      test_engine_seq_report;
    Gen.to_alcotest prop_apply_seq_is_composition;
    Gen.to_alcotest prop_normalize_preserves;
    Gen.to_alcotest prop_normalize_idempotent ]
